// The paper's §4 credit-card monitoring example, end to end:
//
//   persistent class CredCard {
//     ...
//     event after Buy, after PayBill, BigBuy;
//     trigger DenyCredit() : perpetual
//         after Buy & (currBal > credLim) ==> { BlackMark(...); tabort; }
//     trigger AutoRaiseLimit(float amount) :
//         relative((after Buy & MoreCred()), after PayBill)
//             ==> RaiseLimit(amount);
//   };
//
// The program walks the exact scenario the paper narrates and also prints
// the AutoRaiseLimit finite state machine — Figure 1.

#include <cstdio>

#include "odepp/params.h"
#include "odepp/session.h"
#include "trigger/event_registry.h"

namespace {

using namespace ode;

struct CredCard {
  float cred_lim = 0;
  float curr_bal = 0;
  int32_t black_marks = 0;
  bool good_hist = true;

  void Buy(float amount) { curr_bal += amount; }
  void PayBill(float amount) { curr_bal -= amount; }
  void RaiseLimit(float amount) { cred_lim += amount; }
  bool MoreCred() const { return curr_bal > 0.8f * cred_lim && good_hist; }

  void Encode(Encoder& enc) const {
    enc.PutFloat(cred_lim);
    enc.PutFloat(curr_bal);
    enc.PutI32(black_marks);
    enc.PutBool(good_hist);
  }
  static Result<CredCard> Decode(Decoder& dec) {
    CredCard c;
    ODE_RETURN_NOT_OK(dec.GetFloat(&c.cred_lim));
    ODE_RETURN_NOT_OK(dec.GetFloat(&c.curr_bal));
    ODE_RETURN_NOT_OK(dec.GetI32(&c.black_marks));
    ODE_RETURN_NOT_OK(dec.GetBool(&c.good_hist));
    return c;
  }
};

#define CHECK_OK(expr)                                                  \
  do {                                                                  \
    ::ode::Status _st = (expr);                                         \
    if (!_st.ok()) {                                                    \
      std::fprintf(stderr, "FAILED at %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                             \
      std::exit(1);                                                     \
    }                                                                   \
  } while (0)

}  // namespace

int main() {
  Schema schema;
  schema.DeclareClass<CredCard>("CredCard")
      .Event("after Buy")
      .Event("after PayBill")
      .Event("BigBuy")
      .Method("Buy", &CredCard::Buy)
      .Method("PayBill", &CredCard::PayBill)
      .Mask("(currBal>credLim)",
            [](const CredCard& c, MaskEvalContext&) -> Result<bool> {
              return c.curr_bal > c.cred_lim;
            })
      .Mask("MoreCred()",
            [](const CredCard& c, MaskEvalContext&) -> Result<bool> {
              return c.MoreCred();
            })
      .Trigger(
          "DenyCredit", "after Buy & (currBal>credLim)",
          [](CredCard& c, TriggerFireContext& ctx) -> Status {
            ++c.black_marks;  // BlackMark("Over Limit", today())
            std::printf("    [DenyCredit] over limit (bal %.0f > lim %.0f)"
                        " -> black mark + tabort\n",
                        c.curr_bal, c.cred_lim);
            ctx.Tabort("over limit");
            return Status::OK();
          },
          CouplingMode::kImmediate, /*perpetual=*/true)
      .Trigger(
          "AutoRaiseLimit",
          "relative((after Buy & MoreCred()), after PayBill)",
          [](CredCard& c, TriggerFireContext& ctx) -> Status {
            auto params = UnpackParams<float>(ctx.params());
            if (!params.ok()) return params.status();
            float amount = std::get<0>(*params);
            c.RaiseLimit(amount);
            std::printf("    [AutoRaiseLimit] customer may need credit:"
                        " limit +%.0f -> %.0f\n",
                        amount, c.cred_lim);
            return Status::OK();
          },
          CouplingMode::kImmediate, /*perpetual=*/false);
  CHECK_OK(schema.Freeze());

  // Print Figure 1: the FSM compiled for AutoRaiseLimit.
  {
    const ClassRecord* rec = schema.RecordByName("CredCard");
    const TriggerInfo* info =
        rec->descriptor->FindTrigger("AutoRaiseLimit", nullptr);
    std::unordered_map<Symbol, std::string> names;
    for (const EventDecl& e : rec->descriptor->AllEvents()) {
      names[e.symbol] = e.name;
    }
    std::printf("Figure 1 — AutoRaiseLimit's finite state machine:\n%s\n",
                info->fsm.ToTable(names, {{0, "MoreCred()"}}).c_str());
  }

  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  CHECK_OK(session.status());
  Session& s = **session;

  PRef<CredCard> card;
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    CredCard c;
    c.cred_lim = 1000;
    auto r = s.New(txn, c);
    ODE_RETURN_NOT_OK(r.status());
    card = *r;
    // credcard->DenyCredit(); credcard->AutoRaiseLimit(500.0);
    ODE_RETURN_NOT_OK(s.Activate(txn, card, "DenyCredit").status());
    ODE_RETURN_NOT_OK(
        s.Activate(txn, card, "AutoRaiseLimit", PackParams(500.0f))
            .status());
    return Status::OK();
  }));
  std::printf("issued card: limit 1000, both triggers activated\n\n");

  auto buy = [&](float amount) {
    std::printf("  pcred->Buy(%.0f)\n", amount);
    return s.WithTransaction([&](Transaction* txn) -> Status {
      return s.Invoke(txn, card, &CredCard::Buy, amount);
    });
  };
  auto pay = [&](float amount) {
    std::printf("  pcred->PayBill(%.0f)\n", amount);
    return s.WithTransaction([&](Transaction* txn) -> Status {
      return s.Invoke(txn, card, &CredCard::PayBill, amount);
    });
  };
  auto show = [&] {
    CredCard c;
    CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
      auto r = s.Load(txn, card);
      ODE_RETURN_NOT_OK(r.status());
      c = *r;
      return Status::OK();
    }));
    std::printf("  -> balance %.0f, limit %.0f, black marks %d\n\n",
                c.curr_bal, c.cred_lim, c.black_marks);
  };

  std::printf("scenario 1: ordinary purchases under the limit\n");
  CHECK_OK(buy(300));
  CHECK_OK(buy(200));
  show();

  std::printf("scenario 2: a purchase that would exceed the limit\n");
  Status st = buy(900);
  if (!st.IsTransactionAborted()) CHECK_OK(st);
  std::printf("  purchase status: %s\n", st.ToString().c_str());
  show();  // balance unchanged: DenyCredit aborted the purchase

  std::printf("scenario 3: heavy usage arms AutoRaiseLimit...\n");
  CHECK_OK(buy(400));  // balance 900 > 80%% of 1000: MoreCred() true
  std::printf("...and the next bill payment fires it\n");
  CHECK_OK(pay(250));
  show();  // limit is now 1500

  std::printf("scenario 4: AutoRaiseLimit was once-only; it is gone now\n");
  CHECK_OK(buy(800));  // balance 1450 > 80%% of 1500
  CHECK_OK(pay(100));
  show();  // limit still 1500

  std::printf("credit card example ok\n");
  return 0;
}
