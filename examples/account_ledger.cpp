// Account ledger — combines the object store's B-tree index (§5.6: the
// structure disk Ode offers) with triggers: accounts are indexed by
// account number, deposits/withdrawals fire an audit trigger, and a
// range scan over the index drives a branch report.

#include <cstdio>

#include "objstore/btree.h"
#include "odepp/session.h"

namespace {

using namespace ode;

struct Account {
  uint64_t number = 0;
  int64_t cents = 0;
  int32_t audit_entries = 0;

  void Apply(int64_t delta) { cents += delta; }

  void Encode(Encoder& enc) const {
    enc.PutU64(number);
    enc.PutI64(cents);
    enc.PutI32(audit_entries);
  }
  static Result<Account> Decode(Decoder& dec) {
    Account a;
    ODE_RETURN_NOT_OK(dec.GetU64(&a.number));
    ODE_RETURN_NOT_OK(dec.GetI64(&a.cents));
    ODE_RETURN_NOT_OK(dec.GetI32(&a.audit_entries));
    return a;
  }
};

#define CHECK_OK(expr)                                                  \
  do {                                                                  \
    ::ode::Status _st = (expr);                                         \
    if (!_st.ok()) {                                                    \
      std::fprintf(stderr, "FAILED at %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                             \
      std::exit(1);                                                     \
    }                                                                   \
  } while (0)

}  // namespace

int main() {
  Schema schema;
  schema.DeclareClass<Account>("Account")
      .Event("after Apply")
      .Method("Apply", &Account::Apply)
      .Mask("LargeMove()",
            [](const Account&, MaskEvalContext& ctx) -> Result<bool> {
              auto args = UnpackParams<int64_t>(ctx.event_args());
              if (!args.ok()) return args.status();
              int64_t delta = std::get<0>(*args);
              return delta > 100000 || delta < -100000;
            })
      .Trigger("Audit", "after Apply & LargeMove()",
               [](Account& a, TriggerFireContext&) -> Status {
                 ++a.audit_entries;
                 return Status::OK();
               },
               CouplingMode::kImmediate, /*perpetual=*/true);
  CHECK_OK(schema.Freeze());

  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  CHECK_OK(session.status());
  Session& s = **session;

  // Create accounts and index them by account number.
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    auto index = BTree::Open(s.db(), txn, "accounts_by_number");
    ODE_RETURN_NOT_OK(index.status());
    for (uint64_t number : {1001, 1002, 1003, 2001, 2002, 3001}) {
      Account a;
      a.number = number;
      a.cents = 50000;
      auto ref = s.New(txn, a);
      ODE_RETURN_NOT_OK(ref.status());
      ODE_RETURN_NOT_OK(s.Activate(txn, *ref, "Audit").status());
      ODE_RETURN_NOT_OK((*index)->Insert(
          txn, Slice(btree_key::FromU64(number)), ref->oid()));
    }
    return Status::OK();
  }));
  std::printf("6 accounts created and indexed\n");

  // Look an account up by number and post transactions to it.
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    auto index = BTree::Open(s.db(), txn, "accounts_by_number");
    ODE_RETURN_NOT_OK(index.status());
    auto oid =
        (*index)->Lookup(txn, Slice(btree_key::FromU64(1002)));
    ODE_RETURN_NOT_OK(oid.status());
    PRef<Account> acct(*oid);
    std::printf("account 1002: deposit 2500.00 (audited), withdraw "
                "3.50\n");
    ODE_RETURN_NOT_OK(
        s.Invoke(txn, acct, &Account::Apply, int64_t{250000}));
    return s.Invoke(txn, acct, &Account::Apply, int64_t{-350});
  }));

  // Branch report: range scan over account numbers 1000..1999.
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    auto index = BTree::Open(s.db(), txn, "accounts_by_number");
    ODE_RETURN_NOT_OK(index.status());
    std::printf("branch-1 report (accounts 1000..1999):\n");
    Status inner = Status::OK();
    ODE_RETURN_NOT_OK((*index)->Scan(
        txn, Slice(btree_key::FromU64(1000)),
        Slice(btree_key::FromU64(2000)), [&](Slice, Oid oid) {
          auto acct = s.Load(txn, PRef<Account>(oid));
          if (!acct.ok()) {
            inner = acct.status();
            return false;
          }
          std::printf("  #%llu  balance %8.2f  audits %d\n",
                      static_cast<unsigned long long>(acct->number),
                      acct->cents / 100.0, acct->audit_entries);
          return true;
        }));
    return inner;
  }));

  std::printf("account ledger example ok\n");
  return 0;
}
