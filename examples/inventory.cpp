// Inventory monitoring: demonstrates the ECA coupling modes (§4.2) and
// transaction events (§5.5) on a warehouse schema, plus cluster
// iteration over the class extent.
//
//   * ReorderCheck (end/deferred)  — when stock drops below the reorder
//     point, place a purchase order just before the transaction commits
//     (so a ship-then-restock within one transaction orders only once,
//     based on the final quantity).
//   * AuditTrail (!dependent)      — every large shipment is recorded in
//     a separate, independent transaction: even if the shipment itself
//     is rolled back, the attempt stays on the audit record.
//   * CommitStamp (before tcomplete, immediate) — counts the committed
//     transactions that touched the item.

#include <cstdio>

#include "odepp/params.h"
#include "odepp/session.h"

namespace {

using namespace ode;

struct Item {
  int32_t quantity = 0;
  int32_t reorder_point = 20;
  int32_t orders_placed = 0;
  int32_t audit_entries = 0;
  int32_t commits_seen = 0;

  void Ship(int32_t n) { quantity -= n; }
  void Restock(int32_t n) { quantity += n; }

  void Encode(Encoder& enc) const {
    enc.PutI32(quantity);
    enc.PutI32(reorder_point);
    enc.PutI32(orders_placed);
    enc.PutI32(audit_entries);
    enc.PutI32(commits_seen);
  }
  static Result<Item> Decode(Decoder& dec) {
    Item it;
    ODE_RETURN_NOT_OK(dec.GetI32(&it.quantity));
    ODE_RETURN_NOT_OK(dec.GetI32(&it.reorder_point));
    ODE_RETURN_NOT_OK(dec.GetI32(&it.orders_placed));
    ODE_RETURN_NOT_OK(dec.GetI32(&it.audit_entries));
    ODE_RETURN_NOT_OK(dec.GetI32(&it.commits_seen));
    return it;
  }
};

#define CHECK_OK(expr)                                                  \
  do {                                                                  \
    ::ode::Status _st = (expr);                                         \
    if (!_st.ok()) {                                                    \
      std::fprintf(stderr, "FAILED at %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                             \
      std::exit(1);                                                     \
    }                                                                   \
  } while (0)

}  // namespace

int main() {
  Schema schema;
  schema.DeclareClass<Item>("Item")
      .Event("after Ship")
      .Event("after Restock")
      .Event("before tcomplete")
      .Method("Ship", &Item::Ship)
      .Method("Restock", &Item::Restock)
      .Mask("LowStock()",
            [](const Item& it, MaskEvalContext&) -> Result<bool> {
              return it.quantity < it.reorder_point;
            })
      .Mask("BigShipment()",
            [](const Item& it, MaskEvalContext&) -> Result<bool> {
              // Heuristic: a big shipment leaves the quantity well down.
              return it.quantity < it.reorder_point / 2;
            })
      .Trigger(
          "ReorderCheck", "after Ship & LowStock()",
          [](Item& it, TriggerFireContext&) -> Status {
            if (it.quantity >= it.reorder_point) {
              std::printf("    [ReorderCheck@commit] restocked in the "
                          "meantime (qty %d): no order\n",
                          it.quantity);
              return Status::OK();
            }
            ++it.orders_placed;
            std::printf("    [ReorderCheck@commit] qty %d below %d -> "
                        "purchase order #%d\n",
                        it.quantity, it.reorder_point, it.orders_placed);
            return Status::OK();
          },
          CouplingMode::kDeferred, /*perpetual=*/true)
      .Trigger(
          "AuditTrail", "after Ship & BigShipment()",
          [](Item& it, TriggerFireContext&) -> Status {
            ++it.audit_entries;
            std::printf("    [AuditTrail/!dependent] big shipment "
                        "recorded (entry #%d)\n",
                        it.audit_entries);
            return Status::OK();
          },
          CouplingMode::kIndependent, /*perpetual=*/true)
      .Trigger(
          "CommitStamp", "before tcomplete",
          [](Item& it, TriggerFireContext&) -> Status {
            ++it.commits_seen;
            return Status::OK();
          },
          CouplingMode::kImmediate, /*perpetual=*/true);
  CHECK_OK(schema.Freeze());

  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  CHECK_OK(session.status());
  Session& s = **session;

  // A small warehouse of items; triggers activated per object.
  std::vector<PRef<Item>> items;
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    for (int i = 0; i < 3; ++i) {
      Item it;
      it.quantity = 50;
      auto r = s.New(txn, it);
      ODE_RETURN_NOT_OK(r.status());
      ODE_RETURN_NOT_OK(s.Activate(txn, *r, "ReorderCheck").status());
      ODE_RETURN_NOT_OK(s.Activate(txn, *r, "AuditTrail").status());
      ODE_RETURN_NOT_OK(s.Activate(txn, *r, "CommitStamp").status());
      items.push_back(*r);
    }
    return Status::OK();
  }));
  std::printf("3 items stocked at 50; triggers active\n\n");

  std::printf("case 1: ship-then-restock in ONE transaction — the "
              "deferred trigger sees the final quantity, no order\n");
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s.Invoke(txn, items[0], &Item::Ship, 40));
    ODE_RETURN_NOT_OK(s.Invoke(txn, items[0], &Item::Restock, 35));
    return Status::OK();
  }));

  std::printf("\ncase 2: plain shipment below the reorder point — "
              "ordered at commit\n");
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    return s.Invoke(txn, items[1], &Item::Ship, 35);
  }));

  std::printf("\ncase 3: big shipment that the user then aborts — the "
              "!dependent audit entry survives the rollback\n");
  Status st = s.WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s.Invoke(txn, items[2], &Item::Ship, 45));
    std::printf("    ...user changes their mind: tabort\n");
    if (Status ab = s.Abort(txn); !ab.ok()) return ab;
    return Status::TransactionAborted("user abort");
  });
  if (!st.IsTransactionAborted()) CHECK_OK(st);

  std::printf("\nwarehouse state (via the Item cluster):\n");
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    auto cluster = s.Cluster<Item>(txn);
    ODE_RETURN_NOT_OK(cluster.status());
    int i = 0;
    for (PRef<Item> ref : *cluster) {
      auto it = s.Load(txn, ref);
      ODE_RETURN_NOT_OK(it.status());
      std::printf("  item %d: qty=%d orders=%d audits=%d commits=%d\n",
                  i++, it->quantity, it->orders_placed, it->audit_entries,
                  it->commits_seen);
    }
    return Status::OK();
  }));

  std::printf("inventory example ok\n");
  return 0;
}
