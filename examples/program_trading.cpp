// Program trading — the paper's motivating application for composite
// events (§3: "applications such as program trading whose actions are
// triggered based on patterns of event occurrences as opposed to single
// basic events").
//
// Each Stock object receives Tick(price) events. Triggers watch for
// patterns:
//   * DipBuyer   — three consecutive drops followed by a rise, with the
//                  price still below the moving anchor: buy the dip
//                  (sequence + masks, perpetual).
//   * StopLoss   — any tick under the stop price while holding a
//                  position: liquidate (mask, perpetual).
//   * Momentum   — relative(breakout over threshold, volume spike):
//                  once a breakout happened, any later volume spike
//                  confirms the momentum (the paper's `relative`).

#include <cstdio>

#include "odepp/params.h"
#include "odepp/session.h"

namespace {

using namespace ode;

struct Stock {
  float price = 100;
  float prev_price = 100;
  int32_t drops_in_a_row = 0;
  int32_t drops_before_rise = 0;
  bool rose_last = false;
  int32_t shares = 0;
  float cash_spent = 0;
  int32_t buys = 0, sells = 0, momentum_alerts = 0;

  void Tick(float new_price) {
    prev_price = price;
    if (new_price < price) {
      ++drops_in_a_row;
      rose_last = false;
    } else if (new_price > price) {
      drops_before_rise = drops_in_a_row;
      drops_in_a_row = 0;
      rose_last = true;
    }
    price = new_price;
  }

  void VolumeSpike() {}  // event-only method

  void BuyShares(int32_t n) {
    shares += n;
    cash_spent += n * price;
    ++buys;
  }
  void Liquidate() {
    shares = 0;
    ++sells;
  }

  void Encode(Encoder& enc) const {
    enc.PutFloat(price);
    enc.PutFloat(prev_price);
    enc.PutI32(drops_in_a_row);
    enc.PutI32(drops_before_rise);
    enc.PutBool(rose_last);
    enc.PutI32(shares);
    enc.PutFloat(cash_spent);
    enc.PutI32(buys);
    enc.PutI32(sells);
    enc.PutI32(momentum_alerts);
  }
  static Result<Stock> Decode(Decoder& dec) {
    Stock s;
    ODE_RETURN_NOT_OK(dec.GetFloat(&s.price));
    ODE_RETURN_NOT_OK(dec.GetFloat(&s.prev_price));
    ODE_RETURN_NOT_OK(dec.GetI32(&s.drops_in_a_row));
    ODE_RETURN_NOT_OK(dec.GetI32(&s.drops_before_rise));
    ODE_RETURN_NOT_OK(dec.GetBool(&s.rose_last));
    ODE_RETURN_NOT_OK(dec.GetI32(&s.shares));
    ODE_RETURN_NOT_OK(dec.GetFloat(&s.cash_spent));
    ODE_RETURN_NOT_OK(dec.GetI32(&s.buys));
    ODE_RETURN_NOT_OK(dec.GetI32(&s.sells));
    ODE_RETURN_NOT_OK(dec.GetI32(&s.momentum_alerts));
    return s;
  }
};

#define CHECK_OK(expr)                                                  \
  do {                                                                  \
    ::ode::Status _st = (expr);                                         \
    if (!_st.ok()) {                                                    \
      std::fprintf(stderr, "FAILED at %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                             \
      std::exit(1);                                                     \
    }                                                                   \
  } while (0)

}  // namespace

int main() {
  Schema schema;
  schema.DeclareClass<Stock>("Stock")
      .Event("after Tick")
      .Event("after VolumeSpike")
      .Method("Tick", &Stock::Tick)
      .Method("VolumeSpike", &Stock::VolumeSpike)
      .Mask("DippedThrice()",
            [](const Stock& s, MaskEvalContext&) -> Result<bool> {
              // After the rising tick, we need: just rose, and before
              // that at least 3 consecutive drops.
              return s.rose_last && s.drops_before_rise >= 3;
            })
      .Mask("UnderStop()",
            [](const Stock& s, MaskEvalContext& ctx) -> Result<bool> {
              auto stop = UnpackParams<float>(ctx.params());
              if (!stop.ok()) return stop.status();
              return s.shares > 0 && s.price < std::get<0>(*stop);
            })
      .Mask("Breakout()",
            [](const Stock& s, MaskEvalContext& ctx) -> Result<bool> {
              auto level = UnpackParams<float>(ctx.params());
              if (!level.ok()) return level.status();
              return s.price > std::get<0>(*level);
            })
      .Trigger(
          "DipBuyer", "after Tick & DippedThrice()",
          [](Stock& s, TriggerFireContext&) -> Status {
            s.BuyShares(100);
            std::printf("    [DipBuyer] 3 drops then a rise at %.2f ->"
                        " buy 100 (now %d shares)\n",
                        s.price, s.shares);
            return Status::OK();
          },
          CouplingMode::kImmediate, /*perpetual=*/true)
      .Trigger(
          "StopLoss", "after Tick & UnderStop()",
          [](Stock& s, TriggerFireContext&) -> Status {
            std::printf("    [StopLoss] price %.2f under stop ->"
                        " liquidate %d shares\n",
                        s.price, s.shares);
            s.Liquidate();
            return Status::OK();
          },
          CouplingMode::kImmediate, /*perpetual=*/true)
      .Trigger(
          "Momentum",
          "relative((after Tick & Breakout()), after VolumeSpike)",
          [](Stock& s, TriggerFireContext&) -> Status {
            ++s.momentum_alerts;
            std::printf("    [Momentum] breakout earlier + volume spike"
                        " now: alert #%d\n",
                        s.momentum_alerts);
            return Status::OK();
          },
          CouplingMode::kImmediate, /*perpetual=*/false);
  CHECK_OK(schema.Freeze());

  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  CHECK_OK(session.status());
  Session& s = **session;

  PRef<Stock> stock;
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    auto r = s.New(txn, Stock{});
    ODE_RETURN_NOT_OK(r.status());
    stock = *r;
    ODE_RETURN_NOT_OK(s.Activate(txn, stock, "DipBuyer").status());
    ODE_RETURN_NOT_OK(
        s.Activate(txn, stock, "StopLoss", PackParams(85.0f)).status());
    ODE_RETURN_NOT_OK(
        s.Activate(txn, stock, "Momentum", PackParams(110.0f)).status());
    return Status::OK();
  }));
  std::printf("monitoring stock: DipBuyer, StopLoss(85), "
              "Momentum(breakout 110)\n\n");

  auto tick = [&](float price) {
    std::printf("  tick %.2f\n", price);
    CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
      return s.Invoke(txn, stock, &Stock::Tick, price);
    }));
  };
  auto spike = [&] {
    std::printf("  volume spike\n");
    CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
      return s.Invoke(txn, stock, &Stock::VolumeSpike);
    }));
  };

  std::printf("phase 1: a dip with recovery (DipBuyer pattern)\n");
  for (float p : {99.f, 97.f, 94.f, 92.f, 95.f}) tick(p);

  std::printf("\nphase 2: crash through the stop (StopLoss)\n");
  for (float p : {90.f, 84.f}) tick(p);

  std::printf("\nphase 3: breakout, then later a volume spike "
              "(relative/Momentum)\n");
  for (float p : {95.f, 105.f, 112.f, 108.f}) tick(p);
  spike();

  Stock final_state;
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    auto r = s.Load(txn, stock);
    ODE_RETURN_NOT_OK(r.status());
    final_state = *r;
    return Status::OK();
  }));
  std::printf("\nsummary: buys=%d sells=%d momentum_alerts=%d "
              "(final price %.2f)\n",
              final_state.buys, final_state.sells,
              final_state.momentum_alerts, final_state.price);
  std::printf("program trading example ok\n");
  return 0;
}
