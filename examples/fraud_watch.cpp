// Fraud watch — demonstrates the §8 "future work" features this
// reproduction implements beyond the paper's shipping system:
//
//   * event attributes — masks inspect the arguments of the invocation
//     that posted the event ("after Charge & LargeAmount()");
//   * local rules — a transient trigger active only inside one batch
//     transaction, with no persistent storage;
//   * timed triggers — a scheduled user event ("CardExpired") fires when
//     the logical clock passes its due time;
//   * constraints — "balance never exceeds 2x the limit", checked at
//     commit, aborting violating transactions.

#include <cstdio>

#include "odepp/params.h"
#include "odepp/session.h"

namespace {

using namespace ode;

struct Card {
  float limit = 1000;
  float balance = 0;
  int32_t alerts = 0;
  bool frozen = false;

  void Charge(float amount) { balance += amount; }
  void Freeze() { frozen = true; }

  void Encode(Encoder& enc) const {
    enc.PutFloat(limit);
    enc.PutFloat(balance);
    enc.PutI32(alerts);
    enc.PutBool(frozen);
  }
  static Result<Card> Decode(Decoder& dec) {
    Card c;
    ODE_RETURN_NOT_OK(dec.GetFloat(&c.limit));
    ODE_RETURN_NOT_OK(dec.GetFloat(&c.balance));
    ODE_RETURN_NOT_OK(dec.GetI32(&c.alerts));
    ODE_RETURN_NOT_OK(dec.GetBool(&c.frozen));
    return c;
  }
};

#define CHECK_OK(expr)                                                  \
  do {                                                                  \
    ::ode::Status _st = (expr);                                         \
    if (!_st.ok()) {                                                    \
      std::fprintf(stderr, "FAILED at %s:%d: %s\n", __FILE__, __LINE__, \
                   _st.ToString().c_str());                             \
      std::exit(1);                                                     \
    }                                                                   \
  } while (0)

}  // namespace

int main() {
  Schema schema;
  schema.DeclareClass<Card>("Card")
      .Event("after Charge")
      .Event("CardExpired")
      .Method("Charge", &Card::Charge)
      .Method("Freeze", &Card::Freeze)
      // Event attribute mask: looks at the Charge() argument, not the
      // object state.
      .Mask("LargeAmount()",
            [](const Card&, MaskEvalContext& ctx) -> Result<bool> {
              auto args = UnpackParams<float>(ctx.event_args());
              if (!args.ok()) return args.status();
              return std::get<0>(*args) > 500.0f;
            })
      .Trigger("LargeChargeAlert", "after Charge & LargeAmount()",
               [](Card& c, TriggerFireContext& ctx) -> Status {
                 auto args = UnpackParams<float>(ctx.event_args());
                 if (!args.ok()) return args.status();
                 ++c.alerts;
                 std::printf("    [LargeChargeAlert] charge of %.0f "
                             "flagged (alert #%d)\n",
                             std::get<0>(*args), c.alerts);
                 return Status::OK();
               },
               CouplingMode::kImmediate, /*perpetual=*/true)
      // Three large charges in one monitored window -> freeze the card.
      .Trigger("VelocityCheck",
               "(after Charge & LargeAmount()), any*, "
               "(after Charge & LargeAmount()), any*, "
               "(after Charge & LargeAmount())",
               [](Card& c, TriggerFireContext&) -> Status {
                 c.Freeze();
                 std::printf("    [VelocityCheck] 3 large charges -> "
                             "card frozen\n");
                 return Status::OK();
               },
               CouplingMode::kImmediate, /*perpetual=*/false)
      .Trigger("Expiry", "CardExpired",
               [](Card& c, TriggerFireContext&) -> Status {
                 c.Freeze();
                 std::printf("    [Expiry] card expired -> frozen\n");
                 return Status::OK();
               },
               CouplingMode::kImmediate, /*perpetual=*/false)
      .Constraint("WithinHardLimit",
                  [](const Card& c, MaskEvalContext&) -> Result<bool> {
                    return c.balance <= 2 * c.limit;
                  },
                  "balance exceeded the hard limit");
  CHECK_OK(schema.Freeze());

  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  CHECK_OK(session.status());
  Session& s = **session;

  PRef<Card> card;
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    auto r = s.New(txn, Card{});
    ODE_RETURN_NOT_OK(r.status());
    card = *r;
    ODE_RETURN_NOT_OK(s.Activate(txn, card, "LargeChargeAlert").status());
    ODE_RETURN_NOT_OK(s.Activate(txn, card, "WithinHardLimit").status());
    // Expiry at logical day 30.
    ODE_RETURN_NOT_OK(s.Activate(txn, card, "Expiry").status());
    return s.ScheduleUserEvent(txn, card, "CardExpired", 30);
  }));
  std::printf("card issued; alerts, hard-limit constraint, and day-30 "
              "expiry armed\n\n");

  std::printf("event attributes: small charges pass, large ones alert\n");
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s.Invoke(txn, card, &Card::Charge, 100.0f));
    ODE_RETURN_NOT_OK(s.Invoke(txn, card, &Card::Charge, 800.0f));
    return s.Invoke(txn, card, &Card::Charge, 50.0f);
  }));

  std::printf("\nlocal rule: batch import with a transaction-scoped "
              "velocity check\n");
  Status st = s.WithTransaction([&](Transaction* txn) -> Status {
    // Transient activation: alive only inside this batch.
    ODE_RETURN_NOT_OK(s.ActivateLocal(txn, card, "VelocityCheck").status());
    ODE_RETURN_NOT_OK(s.Invoke(txn, card, &Card::Charge, 600.0f));
    ODE_RETURN_NOT_OK(s.Invoke(txn, card, &Card::Charge, 700.0f));
    return s.Invoke(txn, card, &Card::Charge, 900.0f);
  });
  // The batch blew the hard-limit constraint at commit: rolled back, and
  // the local rule died with the transaction.
  std::printf("  batch status: %s\n", st.ToString().c_str());

  std::printf("\nconstraint kept the card consistent:\n");
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    auto c = s.Load(txn, card);
    ODE_RETURN_NOT_OK(c.status());
    std::printf("  balance %.0f (limit %.0f), alerts %d, frozen=%d\n",
                c->balance, c->limit, c->alerts, c->frozen ? 1 : 0);
    return Status::OK();
  }));

  std::printf("\ntimed trigger: advancing the clock past day 30\n");
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    return s.AdvanceTime(txn, 31);
  }));
  CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    auto c = s.Load(txn, card);
    ODE_RETURN_NOT_OK(c.status());
    std::printf("  frozen=%d after expiry\n", c->frozen ? 1 : 0);
    return Status::OK();
  }));

  std::printf("fraud watch example ok\n");
  return 0;
}
