// Quickstart: a persistent Account class with one trigger.
//
// Shows the full Ode workflow: declare a schema (class, events, methods,
// masks, triggers), freeze it (this compiles the event expressions into
// FSMs), open a database, and watch the trigger fire when its composite
// event — "a withdrawal that overdraws the account" — is detected.

#include <cstdio>

#include "odepp/session.h"

namespace {

struct Account {
  float balance = 0;

  void Deposit(float amount) { balance += amount; }
  void Withdraw(float amount) { balance -= amount; }

  void Encode(ode::Encoder& enc) const { enc.PutFloat(balance); }
  static ode::Result<Account> Decode(ode::Decoder& dec) {
    Account a;
    ODE_RETURN_NOT_OK(dec.GetFloat(&a.balance));
    return a;
  }
};

}  // namespace

int main() {
  using namespace ode;

  Schema schema;
  schema.DeclareClass<Account>("Account")
      .Event("after Deposit")
      .Event("after Withdraw")
      .Method("Deposit", &Account::Deposit)
      .Method("Withdraw", &Account::Withdraw)
      .Mask("(balance < 0)",
            [](const Account& a, MaskEvalContext&) -> Result<bool> {
              return a.balance < 0;
            })
      // Perpetual immediate trigger: every withdrawal that overdraws the
      // account charges a fee and reports it.
      .Trigger(
          "Overdraft", "after Withdraw & (balance < 0)",
          [](Account& a, TriggerFireContext&) -> Status {
            std::printf("  [trigger Overdraft] balance %.2f -> charging "
                        "25.00 fee\n",
                        a.balance);
            a.balance -= 25.0f;
            return Status::OK();
          },
          CouplingMode::kImmediate, /*perpetual=*/true);
  Status st = schema.Freeze();
  if (!st.ok()) {
    std::fprintf(stderr, "schema error: %s\n", st.ToString().c_str());
    return 1;
  }

  // A main-memory (MM-Ode) database; pass StorageKind::kDisk and a path
  // for the disk-based variant — the code is identical (paper §5.6).
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  if (!session.ok()) {
    std::fprintf(stderr, "open error: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  Session& s = **session;

  st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto account = s.New(txn, Account{100.0f});
    if (!account.ok()) return account.status();

    // Activate the trigger for this object (triggers must be explicitly
    // activated, §4.1).
    auto trig = s.Activate(txn, *account, "Overdraft");
    if (!trig.ok()) return trig.status();

    std::printf("deposit 50\n");
    ODE_RETURN_NOT_OK(s.Invoke(txn, *account, &Account::Deposit, 50.0f));

    std::printf("withdraw 120 (balance stays positive, no fire)\n");
    ODE_RETURN_NOT_OK(s.Invoke(txn, *account, &Account::Withdraw, 120.0f));

    std::printf("withdraw 60 (overdraws: trigger fires)\n");
    ODE_RETURN_NOT_OK(s.Invoke(txn, *account, &Account::Withdraw, 60.0f));

    auto value = s.Load(txn, *account);
    if (!value.ok()) return value.status();
    std::printf("final balance: %.2f (includes the fee)\n",
                value->balance);
    return Status::OK();
  });
  if (!st.ok()) {
    std::fprintf(stderr, "transaction failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("quickstart ok\n");
  return 0;
}
