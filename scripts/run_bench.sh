#!/usr/bin/env bash
# Runs the posting-overhead benchmark (experiment E1) and records the
# results as JSON for regression tracking. Usage:
#
#   scripts/run_bench.sh [build-dir] [output-json]
#
# Defaults: build dir `build`, output `BENCH_posting.json` in the repo
# root. The build must already exist (cmake -B build -S . && cmake
# --build build -j).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_posting.json}"

bench_bin="$build_dir/bench/bench_posting_overhead"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not built (run: cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

"$bench_bin" \
  --benchmark_format=json \
  --benchmark_out="$out_json" \
  --benchmark_out_format=json

# The benchmark embeds metrics-registry readings (counter totals and
# posting-latency percentiles from the session's own DumpMetricsText
# surface) in the JSON context, and per-record counters carry cache hit
# ratios. Fail loudly if that wiring ever regresses.
for key in ode_trigger_posts_total ode_trigger_post_latency_p99_ns; do
  if ! grep -q "\"$key\"" "$out_json"; then
    echo "error: $out_json is missing embedded metric '$key'" >&2
    exit 1
  fi
done

echo "wrote $out_json (with embedded registry metrics)"
