#!/usr/bin/env bash
# Runs the tracked benchmarks and records the results as JSON for
# regression tracking:
#
#   * bench_posting_overhead (experiment E1) -> BENCH_posting.json
#   * bench_commit_throughput (experiment E9) -> BENCH_commit.json
#
# Usage:
#
#   scripts/run_bench.sh [build-dir] [posting-json] [commit-json]
#
# Defaults: build dir `build`, outputs `BENCH_posting.json` and
# `BENCH_commit.json` in the repo root. The build must already exist
# (cmake -B build -S . && cmake --build build -j).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_posting.json}"
commit_json="${3:-$repo_root/BENCH_commit.json}"

# Extracts an embedded `"key": "<number>"` context value from a benchmark
# JSON and fails if it is missing or exceeds the budget (in percent).
# Used for the silent-corruption defense gate: page-checksum verification
# must stay within 5% on both the posting and the commit path.
check_overhead() {
  local json="$1" key="$2" limit="$3"
  local val
  val="$(sed -n 's/.*"'"$key"'": "\(-\{0,1\}[0-9.]*\)".*/\1/p' "$json" | head -n1)"
  if [[ -z "$val" ]]; then
    echo "error: $json is missing embedded metric '$key'" >&2
    exit 1
  fi
  if ! awk -v v="$val" -v lim="$limit" 'BEGIN { exit !(v <= lim) }'; then
    echo "error: $json: $key = $val% exceeds the ${limit}% budget" >&2
    exit 1
  fi
  echo "$json: $key = $val% (budget ${limit}%)"
}

bench_bin="$build_dir/bench/bench_posting_overhead"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not built (run: cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

"$bench_bin" \
  --benchmark_format=json \
  --benchmark_out="$out_json" \
  --benchmark_out_format=json

# The benchmark embeds metrics-registry readings (counter totals and
# posting-latency percentiles from the session's own DumpMetricsText
# surface) plus the span-tracer on/off delta (tracing_overhead_pct,
# gated at <= 5% with default 1-in-32 sampling) in the JSON context,
# and per-record counters carry cache hit ratios. Fail loudly if that
# wiring ever regresses.
for key in ode_trigger_posts_total ode_trigger_post_latency_p99_ns \
           tracing_overhead_pct containment_overhead_pct; do
  if ! grep -q "\"$key\"" "$out_json"; then
    echo "error: $out_json is missing embedded metric '$key'" >&2
    exit 1
  fi
done
check_overhead "$out_json" checksum_overhead_pct 5
# The containment layer (cascade budgets, failure windows, admission
# gauge) rides the trigger hot path; its no-fault overhead is gated at
# the same 5% budget as checksums and tracing.
check_overhead "$out_json" containment_overhead_pct 5

echo "wrote $out_json (with embedded registry metrics)"

commit_bin="$build_dir/bench/bench_commit_throughput"
if [[ ! -x "$commit_bin" ]]; then
  echo "error: $commit_bin not built (run: cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

"$commit_bin" \
  --benchmark_format=json \
  --benchmark_out="$commit_json" \
  --benchmark_out_format=json

# The commit benchmark's headline numbers are committed-txns/sec at 8
# threads (group on vs off, sync on) and fsyncs_per_commit, which the
# group-commit pipeline must amortize well below 1 under concurrency.
# It also embeds the commit-pipeline tracing_overhead_pct delta.
for key in fsyncs_per_commit fsyncs_saved_total tracing_overhead_pct; do
  if ! grep -q "\"$key\"" "$commit_json"; then
    echo "error: $commit_json is missing counter '$key'" >&2
    exit 1
  fi
done
check_overhead "$commit_json" checksum_overhead_pct 5

echo "wrote $commit_json (group-commit throughput + fsync amortization)"
