#!/usr/bin/env bash
# Runs the posting-overhead benchmark (experiment E1) and records the
# results as JSON for regression tracking. Usage:
#
#   scripts/run_bench.sh [build-dir] [output-json]
#
# Defaults: build dir `build`, output `BENCH_posting.json` in the repo
# root. The build must already exist (cmake -B build -S . && cmake
# --build build -j).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_posting.json}"

bench_bin="$build_dir/bench/bench_posting_overhead"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not built (run: cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

"$bench_bin" \
  --benchmark_format=json \
  --benchmark_out="$out_json" \
  --benchmark_out_format=json

echo "wrote $out_json"
