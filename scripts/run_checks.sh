#!/usr/bin/env bash
# One-command CI entry point.
#
#   scripts/run_checks.sh            # tier-1: configure + build + full ctest
#   scripts/run_checks.sh faults     # only the fault-injection/crash-torture
#                                    # suites (ctest -L faults)
#   scripts/run_checks.sh asan       # fault suites under AddressSanitizer
#   scripts/run_checks.sh tsan       # fault suites under ThreadSanitizer
#   scripts/run_checks.sh all        # tier-1, then asan, then tsan
#
# Each sanitizer uses its own build tree (build-asan/, build-tsan/) so the
# plain tier-1 tree is never reconfigured under it.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

configure_and_build() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
}

tier1() {
  echo "== tier-1: build + full test suite =="
  configure_and_build build
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

faults_only() {
  echo "== fault-injection suites (ctest -L faults) =="
  configure_and_build build
  ctest --test-dir build --output-on-failure -L faults
}

sanitized() {
  local name="$1" flag="$2"
  echo "== ${name}: fault-injection suites under ${flag} =="
  configure_and_build "build-${name}" "-DODE_${name^^}=ON"
  ctest --test-dir "build-${name}" --output-on-failure -L faults
}

case "${1:-tier1}" in
  tier1)  tier1 ;;
  faults) faults_only ;;
  asan)   sanitized asan ODE_ASAN ;;
  tsan)   sanitized tsan ODE_TSAN ;;
  all)    tier1; sanitized asan ODE_ASAN; sanitized tsan ODE_TSAN ;;
  *)
    echo "usage: $0 [tier1|faults|asan|tsan|all]" >&2
    exit 2
    ;;
esac

echo "OK"
