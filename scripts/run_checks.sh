#!/usr/bin/env bash
# One-command CI entry point.
#
#   scripts/run_checks.sh            # tier-1: configure + build + full ctest
#   scripts/run_checks.sh faults     # only the fault-injection/crash-torture
#                                    # suites (ctest -L faults)
#   scripts/run_checks.sh asan       # fault + commit + trace suites under
#                                    # ASan
#   scripts/run_checks.sh tsan       # fault + commit + trace suites under
#                                    # TSan
#   scripts/run_checks.sh bench-smoke # build + run every benchmark once
#                                    # (one tiny repetition; catches bench
#                                    # bit-rot without paying for real runs)
#   scripts/run_checks.sh all        # tier-1, asan, tsan, bench-smoke
#
# Each sanitizer uses its own build tree (build-asan/, build-tsan/) so the
# plain tier-1 tree is never reconfigured under it. The sanitizers run the
# `faults`, `commit`, `trace`, and `scrub` ctest labels: crash torture,
# fault injection, the group-commit concurrency suites, the span-tracer
# concurrent-writer suites, and the silent-corruption suites (page
# validation against hostile slot directories is exactly what ASan is
# there to police).

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

configure_and_build() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
}

tier1() {
  echo "== tier-1: build + full test suite =="
  configure_and_build build
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

faults_only() {
  echo "== fault-injection suites (ctest -L faults) =="
  configure_and_build build
  ctest --test-dir build --output-on-failure -L faults
}

sanitized() {
  local name="$1" flag="$2"
  echo "== ${name}: fault-injection + commit + trace + cascade suites under ${flag} =="
  configure_and_build "build-${name}" "-DODE_${name^^}=ON"
  ctest --test-dir "build-${name}" --output-on-failure -L 'faults|commit|trace|scrub|cascade'
}

bench_smoke() {
  echo "== bench-smoke: one tiny repetition of every benchmark =="
  configure_and_build build
  local failed=0
  for bin in build/bench/bench_*; do
    [[ -x "$bin" && ! -d "$bin" ]] || continue
    echo "-- $bin"
    if ! "$bin" --benchmark_min_time=0.01 --benchmark_repetitions=1 \
         > /dev/null; then
      echo "error: $bin failed" >&2
      failed=1
    fi
  done
  return "$failed"
}

case "${1:-tier1}" in
  tier1)  tier1 ;;
  faults) faults_only ;;
  asan)   sanitized asan ODE_ASAN ;;
  tsan)   sanitized tsan ODE_TSAN ;;
  bench-smoke) bench_smoke ;;
  all)    tier1; sanitized asan ODE_ASAN; sanitized tsan ODE_TSAN; bench_smoke ;;
  *)
    echo "usage: $0 [tier1|faults|asan|tsan|bench-smoke|all]" >&2
    exit 2
    ;;
esac

echo "OK"
