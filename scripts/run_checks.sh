#!/usr/bin/env bash
# One-command CI entry point.
#
#   scripts/run_checks.sh            # tier-1: configure + build + full ctest
#   scripts/run_checks.sh faults     # only the fault-injection/crash-torture
#                                    # suites (ctest -L faults)
#   scripts/run_checks.sh asan       # fault + commit + trace suites under
#                                    # ASan
#   scripts/run_checks.sh tsan       # fault + commit + trace suites under
#                                    # TSan
#   scripts/run_checks.sh ubsan      # same label set under UBSan
#   scripts/run_checks.sh ranks      # Debug build (runtime lock-rank
#                                    # validator compiled in) + full ctest
#   scripts/run_checks.sh thread-safety # clang -Wthread-safety as errors
#                                    # (skipped when clang++ is absent)
#   scripts/run_checks.sh tidy       # clang-tidy over src/ using the
#                                    # .clang-tidy config (skipped when
#                                    # clang-tidy is absent)
#   scripts/run_checks.sh bench-smoke # build + run every benchmark once
#                                    # (one tiny repetition; catches bench
#                                    # bit-rot without paying for real runs)
#   scripts/run_checks.sh all        # tier-1, ranks, asan, tsan, ubsan,
#                                    # thread-safety, tidy, bench-smoke
#
# Each lane uses its own build tree (build-asan/, build-tsan/, ...) so the
# plain tier-1 tree is never reconfigured under it. The sanitizers run the
# `faults`, `commit`, `trace`, `scrub`, `cascade`, and `ranks` ctest
# labels: crash torture, fault injection, the group-commit concurrency
# suites, the span-tracer concurrent-writer suites, the silent-corruption
# suites, and the lock-rank validator death tests (the validator is
# compiled into every sanitizer tree).

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

configure_and_build() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
}

tier1() {
  echo "== tier-1: build + full test suite =="
  configure_and_build build
  ctest --test-dir build --output-on-failure -j "$JOBS"
}

faults_only() {
  echo "== fault-injection suites (ctest -L faults) =="
  configure_and_build build
  ctest --test-dir build --output-on-failure -L faults
}

sanitized() {
  local name="$1" flag="$2"
  echo "== ${name}: fault + commit + trace + cascade + ranks suites under ${flag} =="
  configure_and_build "build-${name}" "-DODE_${name^^}=ON"
  ctest --test-dir "build-${name}" --output-on-failure \
        -L 'faults|commit|trace|scrub|cascade|ranks'
}

ranks() {
  echo "== ranks: Debug build with the runtime lock-rank validator, full suite =="
  configure_and_build build-debug -DCMAKE_BUILD_TYPE=Debug
  ctest --test-dir build-debug --output-on-failure -j "$JOBS"
}

thread_safety() {
  echo "== thread-safety: clang -Wthread-safety -Werror=thread-safety =="
  local cxx=""
  for c in clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16 \
           clang++-15 clang++-14; do
    if command -v "$c" > /dev/null 2>&1; then cxx="$c"; break; fi
  done
  if [[ -z "$cxx" ]]; then
    echo "SKIP: no clang++ on PATH; thread-safety annotations are no-ops" \
         "under this compiler and cannot be checked"
    return 0
  fi
  configure_and_build build-tsa "-DCMAKE_CXX_COMPILER=${cxx}" \
                      -DODE_THREAD_SAFETY=ON
}

tidy() {
  echo "== tidy: clang-tidy over src/ =="
  local ct=""
  for c in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
           clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$c" > /dev/null 2>&1; then ct="$c"; break; fi
  done
  if [[ -z "$ct" ]]; then
    echo "SKIP: no clang-tidy on PATH"
    return 0
  fi
  # The tier-1 tree exports compile_commands.json (CMakeLists sets
  # CMAKE_EXPORT_COMPILE_COMMANDS ON).
  configure_and_build build
  find src -name '*.cc' -print0 \
    | xargs -0 -P "$JOBS" -n 8 "$ct" -p build --quiet
}

bench_smoke() {
  echo "== bench-smoke: one tiny repetition of every benchmark =="
  configure_and_build build
  local failed=0
  for bin in build/bench/bench_*; do
    [[ -x "$bin" && ! -d "$bin" ]] || continue
    echo "-- $bin"
    if ! "$bin" --benchmark_min_time=0.01 --benchmark_repetitions=1 \
         > /dev/null; then
      echo "error: $bin failed" >&2
      failed=1
    fi
  done
  return "$failed"
}

case "${1:-tier1}" in
  tier1)  tier1 ;;
  faults) faults_only ;;
  asan)   sanitized asan ODE_ASAN ;;
  tsan)   sanitized tsan ODE_TSAN ;;
  ubsan)  sanitized ubsan ODE_UBSAN ;;
  ranks)  ranks ;;
  thread-safety) thread_safety ;;
  tidy)   tidy ;;
  bench-smoke) bench_smoke ;;
  all)
    tier1
    ranks
    sanitized asan ODE_ASAN
    sanitized tsan ODE_TSAN
    sanitized ubsan ODE_UBSAN
    thread_safety
    tidy
    bench_smoke
    ;;
  *)
    echo "usage: $0 [tier1|faults|asan|tsan|ubsan|ranks|thread-safety|tidy|bench-smoke|all]" >&2
    exit 2
    ;;
esac

echo "OK"
