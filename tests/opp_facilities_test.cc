// Tests for the remaining O++ §2 facilities: persistent sets, versioned
// objects, and cluster queries (Select).

#include <gtest/gtest.h>

#include "odepp/session.h"

namespace ode {
namespace {

struct Part {
  int32_t weight = 0;
  void Encode(Encoder& enc) const { enc.PutI32(weight); }
  static Result<Part> Decode(Decoder& dec) {
    Part p;
    ODE_RETURN_NOT_OK(dec.GetI32(&p.weight));
    return p;
  }
};

class OppFacilitiesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_.DeclareClass<Part>("Part");
    ASSERT_TRUE(schema_.Freeze().ok());
    auto session = Session::Open(StorageKind::kMainMemory, "", &schema_);
    ASSERT_TRUE(session.ok());
    s_ = std::move(session).value();
  }

  PRef<Part> NewPart(int32_t weight) {
    PRef<Part> ref;
    Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
      Part p;
      p.weight = weight;
      auto r = s_->New(txn, p);
      ODE_RETURN_NOT_OK(r.status());
      ref = *r;
      return Status::OK();
    });
    EXPECT_TRUE(st.ok());
    return ref;
  }

  Schema schema_;
  std::unique_ptr<Session> s_;
};

// ---------------------------------------------------------------- sets

TEST_F(OppFacilitiesTest, SetBasics) {
  PRef<Part> a = NewPart(1), b = NewPart(2), c = NewPart(3);
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto set = s_->NewSet<Part>(txn);
    ODE_RETURN_NOT_OK(set.status());
    ODE_RETURN_NOT_OK(s_->SetInsert(txn, *set, a));
    ODE_RETURN_NOT_OK(s_->SetInsert(txn, *set, b));
    EXPECT_EQ(s_->SetInsert(txn, *set, a).code(),
              StatusCode::kAlreadyExists);

    EXPECT_TRUE(s_->SetContains(txn, *set, a).ValueOr(false));
    EXPECT_FALSE(s_->SetContains(txn, *set, c).ValueOr(true));
    EXPECT_EQ(s_->SetSize(txn, *set).ValueOr(0), 2u);

    ODE_RETURN_NOT_OK(s_->SetErase(txn, *set, a));
    EXPECT_TRUE(s_->SetErase(txn, *set, a).IsNotFound());
    auto members = s_->SetMembers(txn, *set);
    ODE_RETURN_NOT_OK(members.status());
    EXPECT_EQ(members->size(), 1u);
    EXPECT_EQ((*members)[0], b);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST_F(OppFacilitiesTest, SetPersistsAndRollsBack) {
  PRef<Part> a = NewPart(1);
  PSet<Part> set;
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto r = s_->NewSet<Part>(txn);
    ODE_RETURN_NOT_OK(r.status());
    set = *r;
    return s_->SetInsert(txn, set, a);
  });
  ASSERT_TRUE(st.ok());

  // Aborted mutation rolls back.
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->SetErase(txn, set, a));
    return Status::Internal("force abort");
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    EXPECT_TRUE(s_->SetContains(txn, set, a).ValueOr(false));
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST_F(OppFacilitiesTest, LoadingASetAsAnObjectFailsCleanly) {
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto set = s_->NewSet<Part>(txn);
    ODE_RETURN_NOT_OK(set.status());
    PRef<Part> bogus(set->oid());
    EXPECT_FALSE(s_->Load(txn, bogus).ok());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

// ------------------------------------------------------------- versions

TEST_F(OppFacilitiesTest, VersionChains) {
  PRef<Part> v1 = NewPart(10);
  PRef<Part> v2, v3;
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto r2 = s_->NewVersion(txn, v1);
    ODE_RETURN_NOT_OK(r2.status());
    v2 = *r2;
    // Mutate the new version; the base stays untouched.
    Part p;
    p.weight = 20;
    ODE_RETURN_NOT_OK(s_->Store(txn, v2, p));
    auto r3 = s_->NewVersion(txn, v2);
    ODE_RETURN_NOT_OK(r3.status());
    v3 = *r3;
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto base = s_->Load(txn, v1);
    ODE_RETURN_NOT_OK(base.status());
    EXPECT_EQ(base->weight, 10) << "old version untouched";
    auto mid = s_->Load(txn, v2);
    ODE_RETURN_NOT_OK(mid.status());
    EXPECT_EQ(mid->weight, 20);
    auto top = s_->Load(txn, v3);
    ODE_RETURN_NOT_OK(top.status());
    EXPECT_EQ(top->weight, 20) << "v3 initialized from v2's value";

    auto chain = s_->VersionChain(txn, v3);
    ODE_RETURN_NOT_OK(chain.status());
    EXPECT_EQ(chain->size(), 3u);
    if (chain->size() == 3) {
      EXPECT_EQ((*chain)[0], v3);
      EXPECT_EQ((*chain)[1], v2);
      EXPECT_EQ((*chain)[2], v1);
    }

    auto single = s_->VersionChain(txn, v1);
    ODE_RETURN_NOT_OK(single.status());
    EXPECT_EQ(single->size(), 1u);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

// --------------------------------------------------------------- select

TEST_F(OppFacilitiesTest, SelectFiltersTheCluster) {
  for (int w : {5, 15, 25, 35}) NewPart(w);
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto heavy = s_->Select<Part>(
        txn, [](const Part& p) { return p.weight > 20; });
    ODE_RETURN_NOT_OK(heavy.status());
    EXPECT_EQ(heavy->size(), 2u);
    for (PRef<Part> ref : *heavy) {
      auto p = s_->Load(txn, ref);
      ODE_RETURN_NOT_OK(p.status());
      EXPECT_GT(p->weight, 20);
    }
    auto none = s_->Select<Part>(
        txn, [](const Part& p) { return p.weight > 100; });
    ODE_RETURN_NOT_OK(none.status());
    EXPECT_TRUE(none->empty());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace ode
