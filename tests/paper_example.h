#ifndef ODE_TESTS_PAPER_EXAMPLE_H_
#define ODE_TESTS_PAPER_EXAMPLE_H_

// The paper's §4 credit-card monitoring example, realized in the odepp
// API. Shared by the trigger semantics tests, the integration tests, and
// several benchmarks.

#include <string>

#include "odepp/params.h"
#include "odepp/session.h"

namespace ode {
namespace paper {

struct CredCard {
  float cred_lim = 0;
  float curr_bal = 0;
  int32_t black_marks = 0;
  bool good_hist = true;

  void Buy(float amount) { curr_bal += amount; }
  void PayBill(float amount) { curr_bal -= amount; }
  void RaiseLimit(float amount) { cred_lim += amount; }
  void BlackMark() { ++black_marks; }
  bool MoreCred() const {
    return curr_bal > 0.8f * cred_lim && good_hist;
  }

  void Encode(Encoder& enc) const {
    enc.PutFloat(cred_lim);
    enc.PutFloat(curr_bal);
    enc.PutI32(black_marks);
    enc.PutBool(good_hist);
  }
  static Result<CredCard> Decode(Decoder& dec) {
    CredCard c;
    ODE_RETURN_NOT_OK(dec.GetFloat(&c.cred_lim));
    ODE_RETURN_NOT_OK(dec.GetFloat(&c.curr_bal));
    ODE_RETURN_NOT_OK(dec.GetI32(&c.black_marks));
    ODE_RETURN_NOT_OK(dec.GetBool(&c.good_hist));
    return c;
  }
};

/// Declares the CredCard class exactly as in the paper:
///
///   event after Buy, after PayBill, BigBuy;
///   trigger DenyCredit() : perpetual
///     after Buy & (currBal > credLim) ==> { BlackMark(...); tabort; }
///   trigger AutoRaiseLimit(float amount) :
///     relative((after Buy & MoreCred()), after PayBill)
///       ==> RaiseLimit(amount);
inline void DeclareCredCard(Schema* schema) {
  schema->DeclareClass<CredCard>("CredCard")
      .Event("after Buy")
      .Event("after PayBill")
      .Event("BigBuy")
      .Method("Buy", &CredCard::Buy)
      .Method("PayBill", &CredCard::PayBill)
      .Mask("(currBal>credLim)",
            [](const CredCard& c, MaskEvalContext&) -> Result<bool> {
              return c.curr_bal > c.cred_lim;
            })
      .Mask("MoreCred()",
            [](const CredCard& c, MaskEvalContext&) -> Result<bool> {
              return c.MoreCred();
            })
      .Trigger(
          "DenyCredit", "after Buy & (currBal>credLim)",
          [](CredCard& c, TriggerFireContext& ctx) -> Status {
            c.BlackMark();
            ctx.Tabort("over limit");
            return Status::OK();
          },
          CouplingMode::kImmediate, /*perpetual=*/true)
      .Trigger(
          "AutoRaiseLimit",
          "relative((after Buy & MoreCred()), after PayBill)",
          [](CredCard& c, TriggerFireContext& ctx) -> Status {
            auto amount = UnpackParams<float>(ctx.params());
            if (!amount.ok()) return amount.status();
            c.RaiseLimit(std::get<0>(*amount));
            return Status::OK();
          },
          CouplingMode::kImmediate, /*perpetual=*/false);
}

}  // namespace paper
}  // namespace ode

#endif  // ODE_TESTS_PAPER_EXAMPLE_H_
