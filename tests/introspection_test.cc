// Introspection utilities: the O++-style schema rendering and the
// graphviz export of compiled FSMs.

#include <gtest/gtest.h>

#include "events/event_parser.h"
#include "paper_example.h"

namespace ode {
namespace {

TEST(OppSource, RendersThePaperSchema) {
  Schema schema;
  paper::DeclareCredCard(&schema);
  ASSERT_TRUE(schema.Freeze().ok());
  std::string src = schema.ToOppSource();

  EXPECT_NE(src.find("persistent class CredCard {"), std::string::npos);
  EXPECT_NE(src.find("event after Buy, after PayBill, BigBuy;"),
            std::string::npos);
  EXPECT_NE(src.find("trigger DenyCredit() : perpetual after Buy & "
                     "(currBal>credLim) ==> { ... };"),
            std::string::npos);
  EXPECT_NE(src.find("trigger AutoRaiseLimit() : relative((after Buy & "
                     "MoreCred()), after PayBill) ==> { ... };"),
            std::string::npos);
}

TEST(OppSource, RendersInheritanceAndModes) {
  struct Base {
    void Encode(Encoder&) const {}
    static Result<Base> Decode(Decoder&) { return Base{}; }
  };
  struct Derived : Base {
    void Encode(Encoder&) const {}
    static Result<Derived> Decode(Decoder&) { return Derived{}; }
  };
  Schema schema;
  schema.DeclareClass<Base>("Base").Event("Tick").Trigger(
      "Deferred", "Tick",
      [](Base&, TriggerFireContext&) { return Status::OK(); },
      CouplingMode::kDeferred, false);
  schema.DeclareClass<Derived, Base>("Derived", "Base")
      .Event("Tock")
      .Trigger("Detached", "Tock",
               [](Derived&, TriggerFireContext&) { return Status::OK(); },
               CouplingMode::kIndependent, true);
  ASSERT_TRUE(schema.Freeze().ok());
  std::string src = schema.ToOppSource();
  EXPECT_NE(src.find("persistent class Derived : public Base {"),
            std::string::npos);
  EXPECT_NE(src.find("trigger Deferred() : end Tick ==> { ... };"),
            std::string::npos);
  EXPECT_NE(src.find("trigger Detached() : perpetual !dependent Tock"),
            std::string::npos);
}

TEST(FsmDot, RendersFigure1Shape) {
  auto parsed =
      ParseEventExpr("relative((after Buy & MoreCred()), after PayBill)");
  ASSERT_TRUE(parsed.ok());
  CompileInput input;
  input.expr = parsed->expr;
  input.alphabet = {2, 3, 4};
  input.event_symbols = {{"BigBuy", 2}, {"after PayBill", 3},
                         {"after Buy", 4}};
  input.mask_ids = {{"MoreCred()", 0}};
  auto fsm = CompileFsm(input);
  ASSERT_TRUE(fsm.ok());
  std::string dot = fsm->ToDot({{2, "BigBuy"},
                                {3, "after PayBill"},
                                {4, "after Buy"}},
                               {{0, "MoreCred()"}});
  EXPECT_NE(dot.find("digraph fsm"), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos)
      << "mask state drawn as diamond";
  EXPECT_NE(dot.find("shape=doublecircle"), std::string::npos)
      << "accept state double-circled";
  EXPECT_NE(dot.find("label=\"True\""), std::string::npos);
  // Self-loops with merged labels, e.g. "BigBuy || after PayBill" on s0.
  EXPECT_NE(dot.find(" || "), std::string::npos);
}

TEST(ListActive, ReportsTriggerStates) {
  Schema schema;
  paper::DeclareCredCard(&schema);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Session& s = **session;

  PRef<paper::CredCard> card;
  Status st = s.WithTransaction([&](Transaction* txn) -> Status {
    paper::CredCard c;
    c.cred_lim = 1000;
    auto r = s.New(txn, c);
    ODE_RETURN_NOT_OK(r.status());
    card = *r;
    ODE_RETURN_NOT_OK(s.Activate(txn, card, "DenyCredit").status());
    ODE_RETURN_NOT_OK(
        s.Activate(txn, card, "AutoRaiseLimit", PackParams(1.0f)).status());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());

  // Arm AutoRaiseLimit so its statenum moves off the start state.
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    return s.Invoke(txn, card, &paper::CredCard::Buy, 900.0f);
  });
  ASSERT_TRUE(st.ok());

  st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto active = s.triggers()->ListActive(txn, card.oid());
    ODE_RETURN_NOT_OK(active.status());
    EXPECT_EQ(active->size(), 2u);
    bool saw_deny = false, saw_raise = false;
    for (const auto& t : *active) {
      EXPECT_EQ(t.defining_class, "CredCard");
      EXPECT_FALSE(t.dead);
      EXPECT_EQ(t.anchors, std::vector<Oid>{card.oid()});
      if (t.trigger_name == "DenyCredit") {
        saw_deny = true;
      } else if (t.trigger_name == "AutoRaiseLimit") {
        saw_raise = true;
        EXPECT_EQ(t.statenum, 2) << "armed: Figure 1 state 2";
        EXPECT_FALSE(t.accepting);
      }
    }
    EXPECT_TRUE(saw_deny);
    EXPECT_TRUE(saw_raise);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace ode
