// Trigger runtime semantics (paper §4, §5.4, §5.5): activation and
// deactivation, masks, perpetual vs once-only, coupling modes,
// transaction events, rollback, inheritance, and the credit-card example
// end to end.

#include <gtest/gtest.h>

#include <cstdio>

#include "paper_example.h"

namespace ode {
namespace {

using paper::CredCard;

// A small auxiliary class whose trigger coupling/expression is chosen per
// test. The default action increments `fires` on the object itself, so
// tests observe firing through committed object state.
struct Widget {
  int32_t hits = 0;
  int32_t fires = 0;

  void Hit() { ++hits; }
  void Ping() {}

  void Encode(Encoder& enc) const {
    enc.PutI32(hits);
    enc.PutI32(fires);
  }
  static Result<Widget> Decode(Decoder& dec) {
    Widget w;
    ODE_RETURN_NOT_OK(dec.GetI32(&w.hits));
    ODE_RETURN_NOT_OK(dec.GetI32(&w.fires));
    return w;
  }
};

void DeclareWidget(Schema* schema, const std::string& expr,
                   CouplingMode coupling, bool perpetual,
                   std::function<Status(Widget&, TriggerFireContext&)>
                       action = nullptr) {
  if (!action) {
    action = [](Widget& w, TriggerFireContext&) -> Status {
      ++w.fires;
      return Status::OK();
    };
  }
  schema->DeclareClass<Widget>("Widget")
      .Event("after Hit")
      .Event("after Ping")
      .Event("Poke")
      .Event("before tcomplete")
      .Event("before tabort")
      .Method("Hit", &Widget::Hit)
      .Method("Ping", &Widget::Ping)
      .Trigger("T", expr, std::move(action), coupling, perpetual);
}

class CredCardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    paper::DeclareCredCard(&schema_);
    ASSERT_TRUE(schema_.Freeze().ok());
    auto session = Session::Open(StorageKind::kMainMemory, "", &schema_);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    session_ = std::move(session).value();
  }

  PRef<CredCard> NewCard(float lim, float bal) {
    PRef<CredCard> ref;
    Status st = session_->WithTransaction([&](Transaction* txn) -> Status {
      CredCard c;
      c.cred_lim = lim;
      c.curr_bal = bal;
      auto r = session_->New(txn, c);
      ODE_RETURN_NOT_OK(r.status());
      ref = *r;
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return ref;
  }

  CredCard LoadCard(PRef<CredCard> ref) {
    CredCard out;
    Status st = session_->WithTransaction([&](Transaction* txn) -> Status {
      auto c = session_->Load(txn, ref);
      ODE_RETURN_NOT_OK(c.status());
      out = *c;
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  }

  /// One Buy in its own transaction; returns the commit/abort status.
  Status Buy(PRef<CredCard> ref, float amount) {
    return session_->WithTransaction([&](Transaction* txn) -> Status {
      return session_->Invoke(txn, ref, &CredCard::Buy, amount);
    });
  }

  Status PayBill(PRef<CredCard> ref, float amount) {
    return session_->WithTransaction([&](Transaction* txn) -> Status {
      return session_->Invoke(txn, ref, &CredCard::PayBill, amount);
    });
  }

  Result<TriggerId> Activate(PRef<CredCard> ref, const std::string& name,
                             std::vector<char> params = {}) {
    TriggerId id;
    Status st = session_->WithTransaction([&](Transaction* txn) -> Status {
      auto r = session_->Activate(txn, ref, name, params);
      ODE_RETURN_NOT_OK(r.status());
      id = *r;
      return Status::OK();
    });
    if (!st.ok()) return st;
    return id;
  }

  Schema schema_;
  std::unique_ptr<Session> session_;
};

// ------------------------------------------------------------ paper §4

TEST_F(CredCardTest, TriggersMustBeExplicitlyActivated) {
  PRef<CredCard> card = NewCard(1000, 0);
  // No activation: over-limit purchase goes through untriggered.
  ASSERT_TRUE(Buy(card, 5000).ok());
  EXPECT_FLOAT_EQ(LoadCard(card).curr_bal, 5000);
}

TEST_F(CredCardTest, DenyCreditAbortsOverLimitPurchase) {
  PRef<CredCard> card = NewCard(1000, 0);
  ASSERT_TRUE(Activate(card, "DenyCredit").ok());

  // Within limit: fine.
  ASSERT_TRUE(Buy(card, 800).ok());
  EXPECT_FLOAT_EQ(LoadCard(card).curr_bal, 800);

  // Over limit: the trigger black-marks and taborts; the purchase (and
  // the black mark, which rolls back with the transaction) are undone.
  Status st = Buy(card, 500);
  EXPECT_TRUE(st.IsTransactionAborted()) << st.ToString();
  CredCard after = LoadCard(card);
  EXPECT_FLOAT_EQ(after.curr_bal, 800);
  EXPECT_EQ(after.black_marks, 0) << "aborted actions roll back (§5.5)";
}

TEST_F(CredCardTest, DenyCreditIsPerpetual) {
  PRef<CredCard> card = NewCard(100, 0);
  ASSERT_TRUE(Activate(card, "DenyCredit").ok());
  EXPECT_TRUE(Buy(card, 500).IsTransactionAborted());
  EXPECT_TRUE(Buy(card, 500).IsTransactionAborted())
      << "perpetual triggers remain in force after firing";
  EXPECT_TRUE(Buy(card, 50).ok());
}

TEST_F(CredCardTest, AutoRaiseLimitFullScenario) {
  PRef<CredCard> card = NewCard(1000, 0);
  ASSERT_TRUE(Activate(card, "AutoRaiseLimit", PackParams(500.0f)).ok());

  // Small purchase: MoreCred() false (balance under 80% of limit).
  ASSERT_TRUE(Buy(card, 100).ok());
  // Large purchase: balance 900 > 0.8 * 1000 -> armed.
  ASSERT_TRUE(Buy(card, 800).ok());
  EXPECT_FLOAT_EQ(LoadCard(card).cred_lim, 1000) << "not fired yet";

  // A bill payment satisfies relative(...): the limit rises by 500.
  ASSERT_TRUE(PayBill(card, 50).ok());
  EXPECT_FLOAT_EQ(LoadCard(card).cred_lim, 1500);
}

TEST_F(CredCardTest, AutoRaiseLimitIsOnceOnly) {
  PRef<CredCard> card = NewCard(1000, 0);
  ASSERT_TRUE(Activate(card, "AutoRaiseLimit", PackParams(500.0f)).ok());
  ASSERT_TRUE(Buy(card, 900).ok());
  ASSERT_TRUE(PayBill(card, 10).ok());
  EXPECT_FLOAT_EQ(LoadCard(card).cred_lim, 1500);

  // Fired once; deactivated. Another qualifying pattern changes nothing.
  ASSERT_TRUE(Buy(card, 700).ok());
  ASSERT_TRUE(PayBill(card, 10).ok());
  EXPECT_FLOAT_EQ(LoadCard(card).cred_lim, 1500);
}

TEST_F(CredCardTest, RelativeAnyFuturePayBillSatisfies) {
  // Once armed, noise events in between do not disarm (Figure 1 state 2).
  PRef<CredCard> card = NewCard(1000, 0);
  ASSERT_TRUE(Activate(card, "AutoRaiseLimit", PackParams(250.0f)).ok());
  ASSERT_TRUE(Buy(card, 900).ok());  // armed
  ASSERT_TRUE(Buy(card, 50).ok());   // noise (MoreCred not re-evaluated)
  Status st = session_->WithTransaction([&](Transaction* txn) -> Status {
    return session_->PostUserEvent(txn, card, "BigBuy");  // more noise
  });
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(PayBill(card, 10).ok());
  EXPECT_FLOAT_EQ(LoadCard(card).cred_lim, 1250);
}

TEST_F(CredCardTest, ExplicitDeactivation) {
  PRef<CredCard> card = NewCard(100, 0);
  auto id = Activate(card, "DenyCredit");
  ASSERT_TRUE(id.ok());
  Status st = session_->WithTransaction([&](Transaction* txn) -> Status {
    return session_->Deactivate(txn, *id);
  });
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(Buy(card, 500).ok()) << "deactivated trigger must not fire";
}

// ------------------------------------------------------------- rollback

TEST_F(CredCardTest, ActivationRollsBackOnAbort) {
  PRef<CredCard> card = NewCard(100, 0);
  Status st = session_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(session_->Activate(txn, card, "DenyCredit").status());
    return Status::Internal("force abort");
  });
  ASSERT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_TRUE(Buy(card, 500).ok())
      << "activation from the aborted transaction must not survive";
}

TEST_F(CredCardTest, FsmStateRollsBackOnAbort) {
  PRef<CredCard> card = NewCard(1000, 0);
  ASSERT_TRUE(Activate(card, "AutoRaiseLimit", PackParams(500.0f)).ok());

  // Arm the trigger inside a transaction that then aborts.
  Status st = session_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(session_->Invoke(txn, card, &CredCard::Buy, 900.0f));
    return Status::Internal("force abort");
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);

  // The arming rolled back: a PayBill alone must not fire.
  ASSERT_TRUE(PayBill(card, 10).ok());
  EXPECT_FLOAT_EQ(LoadCard(card).cred_lim, 1000)
      << "events of aborted transactions are rolled back (§5.5)";
}

TEST_F(CredCardTest, FsmStatePersistsAcrossTransactions) {
  PRef<CredCard> card = NewCard(1000, 0);
  ASSERT_TRUE(Activate(card, "AutoRaiseLimit", PackParams(500.0f)).ok());
  ASSERT_TRUE(Buy(card, 900).ok());     // txn 1: arm
  ASSERT_TRUE(PayBill(card, 10).ok());  // txn 2: fire
  EXPECT_FLOAT_EQ(LoadCard(card).cred_lim, 1500);
}

TEST(CredCardPersistence, TriggerStateSurvivesSessionRestart) {
  // "Ode supports global composite events — composite events whose
  // constituent basic events may span more than one application" (§7):
  // TriggerStates live in the database.
  std::string path = ::testing::TempDir() + "/ode_trigger_restart.db";
  std::remove(path.c_str());

  Schema schema;
  paper::DeclareCredCard(&schema);
  ASSERT_TRUE(schema.Freeze().ok());

  PRef<CredCard> card;
  {
    auto session = Session::Open(StorageKind::kMainMemory, path, &schema);
    ASSERT_TRUE(session.ok());
    Status st = (*session)->WithTransaction([&](Transaction* txn) -> Status {
      CredCard c;
      c.cred_lim = 1000;
      auto r = (*session)->New(txn, c);
      ODE_RETURN_NOT_OK(r.status());
      card = *r;
      ODE_RETURN_NOT_OK((*session)
                            ->Activate(txn, card, "AutoRaiseLimit",
                                       PackParams(500.0f))
                            .status());
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    // Arm in this "application".
    st = (*session)->WithTransaction([&](Transaction* txn) -> Status {
      return (*session)->Invoke(txn, card, &CredCard::Buy, 900.0f);
    });
    ASSERT_TRUE(st.ok());
    ASSERT_TRUE((*session)->Close().ok());
  }
  {
    // A second "application" completes the composite event.
    auto session = Session::Open(StorageKind::kMainMemory, path, &schema);
    ASSERT_TRUE(session.ok());
    Status st = (*session)->WithTransaction([&](Transaction* txn) -> Status {
      return (*session)->Invoke(txn, card, &CredCard::PayBill, 10.0f);
    });
    ASSERT_TRUE(st.ok());
    float lim = 0;
    st = (*session)->WithTransaction([&](Transaction* txn) -> Status {
      auto c = (*session)->Load(txn, card);
      ODE_RETURN_NOT_OK(c.status());
      lim = c->cred_lim;
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    EXPECT_FLOAT_EQ(lim, 1500);
  }
  std::remove(path.c_str());
}

// ------------------------------------------------------- coupling modes

class WidgetHarness {
 public:
  WidgetHarness(const std::string& expr, CouplingMode coupling,
                bool perpetual,
                std::function<Status(Widget&, TriggerFireContext&)> action =
                    nullptr) {
    DeclareWidget(&schema_, expr, coupling, perpetual, std::move(action));
    Status st = schema_.Freeze();
    ODE_CHECK(st.ok()) << st.ToString();
    auto session = Session::Open(StorageKind::kMainMemory, "", &schema_);
    ODE_CHECK(session.ok()) << session.status().ToString();
    session_ = std::move(session).value();

    st = session_->WithTransaction([&](Transaction* txn) -> Status {
      auto r = session_->New(txn, Widget{});
      ODE_RETURN_NOT_OK(r.status());
      widget_ = *r;
      return session_->Activate(txn, widget_, "T").status();
    });
    ODE_CHECK(st.ok()) << st.ToString();
  }

  Session& session() { return *session_; }
  PRef<Widget> widget() const { return widget_; }

  Widget Load() {
    Widget out;
    Status st = session_->WithTransaction([&](Transaction* txn) -> Status {
      auto w = session_->Load(txn, widget_);
      ODE_RETURN_NOT_OK(w.status());
      out = *w;
      return Status::OK();
    });
    ODE_CHECK(st.ok()) << st.ToString();
    return out;
  }

  Status HitOnce() {
    return session_->WithTransaction([&](Transaction* txn) -> Status {
      return session_->Invoke(txn, widget_, &Widget::Hit);
    });
  }

 private:
  Schema schema_;
  std::unique_ptr<Session> session_;
  PRef<Widget> widget_;
};

TEST(CouplingModes, ImmediateFiresInsideTheTransaction) {
  WidgetHarness h("after Hit", CouplingMode::kImmediate, true);
  Status st = h.session().WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(h.session().Invoke(txn, h.widget(), &Widget::Hit));
    auto w = h.session().Load(txn, h.widget());
    ODE_RETURN_NOT_OK(w.status());
    EXPECT_EQ(w->fires, 1) << "immediate: visible before commit";
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST(CouplingModes, DeferredFiresAtCommit) {
  WidgetHarness h("after Hit", CouplingMode::kDeferred, true);
  Status st = h.session().WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(h.session().Invoke(txn, h.widget(), &Widget::Hit));
    auto w = h.session().Load(txn, h.widget());
    ODE_RETURN_NOT_OK(w.status());
    EXPECT_EQ(w->fires, 0) << "end trigger must not fire at detection";
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(h.Load().fires, 1) << "end trigger fires at commit";
}

TEST(CouplingModes, DeferredDoesNotFireOnAbort) {
  WidgetHarness h("after Hit", CouplingMode::kDeferred, true);
  Status st = h.session().WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(h.session().Invoke(txn, h.widget(), &Widget::Hit));
    return Status::Internal("force abort");
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(h.Load().fires, 0);
}

TEST(CouplingModes, DeferredTabortAbortsTheWholeTransaction) {
  WidgetHarness h("after Hit", CouplingMode::kDeferred, true,
                  [](Widget&, TriggerFireContext& ctx) -> Status {
                    ctx.Tabort("deferred veto");
                    return Status::OK();
                  });
  Status st = h.HitOnce();
  EXPECT_TRUE(st.IsTransactionAborted()) << st.ToString();
  EXPECT_EQ(h.Load().hits, 0) << "commit turned into rollback";
}

TEST(CouplingModes, DependentRunsAfterCommit) {
  WidgetHarness h("after Hit", CouplingMode::kDependent, true);
  ASSERT_TRUE(h.HitOnce().ok());
  Widget w = h.Load();
  EXPECT_EQ(w.hits, 1);
  EXPECT_EQ(w.fires, 1) << "dependent action ran in a system transaction";
}

TEST(CouplingModes, DependentDiesWithAbortedTransaction) {
  WidgetHarness h("after Hit", CouplingMode::kDependent, true);
  Status st = h.session().WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(h.session().Invoke(txn, h.widget(), &Widget::Hit));
    return Status::Internal("force abort");
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(h.Load().fires, 0)
      << "dependent actions have a commit dependency on the detecting txn";
}

TEST(CouplingModes, IndependentRunsAfterCommit) {
  WidgetHarness h("after Hit", CouplingMode::kIndependent, true);
  ASSERT_TRUE(h.HitOnce().ok());
  EXPECT_EQ(h.Load().fires, 1);
}

TEST(CouplingModes, IndependentSurvivesAbort) {
  WidgetHarness h("after Hit", CouplingMode::kIndependent, true);
  Status st = h.session().WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(h.session().Invoke(txn, h.widget(), &Widget::Hit));
    return Status::Internal("force abort");
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  Widget w = h.Load();
  EXPECT_EQ(w.hits, 0) << "the Hit itself rolled back";
  EXPECT_EQ(w.fires, 1)
      << "!dependent action commits even though the detecting txn aborted";
}

// ----------------------------------------------------- transaction events

TEST(TxnEvents, BeforeTCompleteFiresDuringCommit) {
  WidgetHarness h("before tcomplete", CouplingMode::kImmediate, true);
  // The setup transaction (New + Activate) touched the object, so its own
  // commit already posted one `before tcomplete` -> fires == 1. The Hit
  // transaction posts the second.
  ASSERT_TRUE(h.HitOnce().ok());
  EXPECT_EQ(h.Load().fires, 2);
}

TEST(TxnEvents, BeforeTCompleteNotPostedOnAbort) {
  WidgetHarness h("before tcomplete", CouplingMode::kImmediate, true);
  Status st = h.session().WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(h.session().Invoke(txn, h.widget(), &Widget::Hit));
    return Status::Internal("force abort");
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  // Only the setup transaction's commit fired the trigger; the aborted
  // transaction posted nothing.
  EXPECT_EQ(h.Load().fires, 1);
}

TEST(TxnEvents, BeforeTAbortEffectsRollBackButIndependentSurvives) {
  // The §5.5 subtlety: a trigger on `before tabort` with immediate
  // coupling has its effects rolled back with the transaction, but a
  // !dependent trigger on the same event makes permanent changes.
  WidgetHarness h("before tabort", CouplingMode::kIndependent, true);
  Status st = h.session().WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(h.session().Invoke(txn, h.widget(), &Widget::Hit));
    return h.session().Abort(txn).ok()
               ? Status::TransactionAborted("explicit tabort")
               : Status::Internal("abort failed");
  });
  EXPECT_TRUE(st.IsTransactionAborted());
  Widget w = h.Load();
  EXPECT_EQ(w.hits, 0);
  EXPECT_EQ(w.fires, 1);
}

TEST(TxnEvents, BeforeTAbortImmediateEffectsRollBack) {
  WidgetHarness h("before tabort", CouplingMode::kImmediate, true);
  Status st = h.session().WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(h.session().Invoke(txn, h.widget(), &Widget::Hit));
    return h.session().Abort(txn).ok()
               ? Status::TransactionAborted("explicit tabort")
               : Status::Internal("abort failed");
  });
  EXPECT_TRUE(st.IsTransactionAborted());
  EXPECT_EQ(h.Load().fires, 0)
      << "immediate before-tabort effects roll back with the txn";
}

// ------------------------------------------------------------- semantics

TEST(Semantics, FireAtMostOncePerPosting) {
  // Several subsequences may match at the same basic event (footnote 5);
  // the trigger still fires exactly once per posting.
  WidgetHarness h("after Hit || (after Ping, after Hit)",
                  CouplingMode::kImmediate, true);
  Status st = h.session().WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(h.session().Invoke(txn, h.widget(), &Widget::Ping));
    return h.session().Invoke(txn, h.widget(), &Widget::Hit);
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(h.Load().fires, 1);
}

TEST(Semantics, PerpetualFiresOnEveryMatch) {
  WidgetHarness h("after Hit", CouplingMode::kImmediate, true);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(h.HitOnce().ok());
  EXPECT_EQ(h.Load().fires, 3);
}

TEST(Semantics, OnceOnlyDeactivatesAfterFiring) {
  WidgetHarness h("after Hit", CouplingMode::kImmediate, false);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(h.HitOnce().ok());
  EXPECT_EQ(h.Load().fires, 1);
}

TEST(Semantics, MaskIsolation) {
  // "No triggers are fired until all triggers have had the basic event
  // posted. This is to prevent the action of one trigger from affecting
  // the mask of another trigger" (§5.4.5). Trigger A fires on Hit and
  // sets hits to 100; trigger B's mask (hits < 10) must have been
  // evaluated against the pre-action state, so both fire.
  Schema schema;
  schema.DeclareClass<Widget>("Widget")
      .Event("after Hit")
      .Method("Hit", &Widget::Hit)
      .Mask("(hits<10)",
            [](const Widget& w, MaskEvalContext&) -> Result<bool> {
              return w.hits < 10;
            })
      .Trigger("A", "after Hit",
               [](Widget& w, TriggerFireContext&) -> Status {
                 w.hits = 100;
                 return Status::OK();
               },
               CouplingMode::kImmediate, true)
      .Trigger("B", "after Hit & (hits<10)",
               [](Widget& w, TriggerFireContext&) -> Status {
                 ++w.fires;
                 return Status::OK();
               },
               CouplingMode::kImmediate, true);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Session& s = **session;

  PRef<Widget> ref;
  Status st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto r = s.New(txn, Widget{});
    ODE_RETURN_NOT_OK(r.status());
    ref = *r;
    ODE_RETURN_NOT_OK(s.Activate(txn, ref, "A").status());
    return s.Activate(txn, ref, "B").status();
  });
  ASSERT_TRUE(st.ok());
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    return s.Invoke(txn, ref, &Widget::Hit);
  });
  ASSERT_TRUE(st.ok());
  Widget w;
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto r = s.Load(txn, ref);
    ODE_RETURN_NOT_OK(r.status());
    w = *r;
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(w.hits, 100) << "A fired";
  EXPECT_EQ(w.fires, 1) << "B's mask saw the pre-action state";
}

TEST(Semantics, UserEventsMustBePostedExplicitly) {
  WidgetHarness h("Poke", CouplingMode::kImmediate, true);
  ASSERT_TRUE(h.HitOnce().ok());
  EXPECT_EQ(h.Load().fires, 0) << "method events don't match user events";
  Status st = h.session().WithTransaction([&](Transaction* txn) -> Status {
    return h.session().PostUserEvent(txn, h.widget(), "Poke");
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(h.Load().fires, 1);
}

TEST(Semantics, UndeclaredUserEventIsRejected) {
  WidgetHarness h("Poke", CouplingMode::kImmediate, true);
  Status st = h.session().WithTransaction([&](Transaction* txn) -> Status {
    return h.session().PostUserEvent(txn, h.widget(), "Nudge");
  });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(Semantics, ImmediateCascadeDepthLimited) {
  // A trigger whose action re-invokes the method it triggers on would
  // recurse forever; the runtime reports the runaway instead of hanging.
  Schema schema;
  schema.DeclareClass<Widget>("Widget")
      .Event("after Hit")
      .Method("Hit", &Widget::Hit)
      .Trigger("Loop", "after Hit",
               [](Widget&, TriggerFireContext& ctx) -> Status {
                 // Re-post the event through the manager directly.
                 auto* type = ctx.triggers()->FindType("Widget");
                 const EventDecl* decl = type->FindEvent("after Hit");
                 return ctx.triggers()->PostEvent(ctx.txn(), ctx.anchor(),
                                                  type, decl->symbol);
               },
               CouplingMode::kImmediate, true);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Session& s = **session;

  PRef<Widget> ref;
  Status st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto r = s.New(txn, Widget{});
    ODE_RETURN_NOT_OK(r.status());
    ref = *r;
    return s.Activate(txn, ref, "Loop").status();
  });
  ASSERT_TRUE(st.ok());
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    return s.Invoke(txn, ref, &Widget::Hit);
  });
  EXPECT_EQ(st.code(), StatusCode::kCascadeOverflow);
  EXPECT_NE(st.message().find("depth"), std::string::npos);
}

// ------------------------------------------------------------ fast path

TEST(FastPath, ObjectsWithoutTriggersSkipTheIndex) {
  WidgetHarness h("after Hit", CouplingMode::kImmediate, true);
  // A second widget with no activations.
  PRef<Widget> plain;
  Status st = h.session().WithTransaction([&](Transaction* txn) -> Status {
    auto r = h.session().New(txn, Widget{});
    ODE_RETURN_NOT_OK(r.status());
    plain = *r;
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());

  uint64_t skips_before = h.session().triggers()->stats().fast_path_skips;
  st = h.session().WithTransaction([&](Transaction* txn) -> Status {
    return h.session().Invoke(txn, plain, &Widget::Hit);
  });
  ASSERT_TRUE(st.ok());
  EXPECT_GT(h.session().triggers()->stats().fast_path_skips, skips_before)
      << "footnote 3: no index lookup for objects without triggers";
}

// ----------------------------------------------------------- inheritance

struct GoldCard : CredCard {
  int32_t perks = 0;

  void Upgrade() { ++perks; }

  void Encode(Encoder& enc) const {
    CredCard::Encode(enc);  // base fields first (required convention)
    enc.PutI32(perks);
  }
  static Result<GoldCard> Decode(Decoder& dec) {
    auto base = CredCard::Decode(dec);
    if (!base.ok()) return base.status();
    GoldCard g;
    static_cast<CredCard&>(g) = *base;
    ODE_RETURN_NOT_OK(dec.GetI32(&g.perks));
    return g;
  }
};

class InheritanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    paper::DeclareCredCard(&schema_);
    schema_.DeclareClass<GoldCard, CredCard>("GoldCard", "CredCard")
        .Event("after Upgrade")
        .Method("Upgrade", &GoldCard::Upgrade)
        .Trigger("PerkWatch", "after Upgrade, after Buy",
                 [](GoldCard& g, TriggerFireContext&) -> Status {
                   g.perks += 10;
                   return Status::OK();
                 },
                 CouplingMode::kImmediate, true);
    ASSERT_TRUE(schema_.Freeze().ok());
    auto session = Session::Open(StorageKind::kMainMemory, "", &schema_);
    ASSERT_TRUE(session.ok());
    session_ = std::move(session).value();

    Status st = session_->WithTransaction([&](Transaction* txn) -> Status {
      GoldCard g;
      g.cred_lim = 1000;
      auto r = session_->New(txn, g);
      ODE_RETURN_NOT_OK(r.status());
      gold_ = *r;
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
  }

  Schema schema_;
  std::unique_ptr<Session> session_;
  PRef<GoldCard> gold_;
};

TEST_F(InheritanceTest, BaseTriggerWorksOnDerivedObject) {
  // Events "will also be posted to objects of classes derived from
  // class CredCard" (§4).
  Status st = session_->WithTransaction([&](Transaction* txn) -> Status {
    return session_
        ->Activate(txn, gold_, "AutoRaiseLimit", PackParams(500.0f))
        .status();
  });
  ASSERT_TRUE(st.ok());

  st = session_->WithTransaction([&](Transaction* txn) -> Status {
    return session_->Invoke(txn, gold_, &CredCard::Buy, 900.0f);
  });
  ASSERT_TRUE(st.ok());
  st = session_->WithTransaction([&](Transaction* txn) -> Status {
    return session_->Invoke(txn, gold_, &CredCard::PayBill, 10.0f);
  });
  ASSERT_TRUE(st.ok());

  st = session_->WithTransaction([&](Transaction* txn) -> Status {
    auto g = session_->Load(txn, gold_);
    ODE_RETURN_NOT_OK(g.status());
    EXPECT_FLOAT_EQ(g->cred_lim, 1500);
    EXPECT_EQ(g->perks, 0) << "derived fields untouched (no slicing)";
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST_F(InheritanceTest, DerivedEventsDoNotDisturbBaseTriggers) {
  // "A base class trigger should not see the events of a derived class"
  // (§5.4.3): an Upgrade between arming and PayBill must not matter.
  Status st = session_->WithTransaction([&](Transaction* txn) -> Status {
    return session_
        ->Activate(txn, gold_, "AutoRaiseLimit", PackParams(500.0f))
        .status();
  });
  ASSERT_TRUE(st.ok());
  st = session_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(session_->Invoke(txn, gold_, &CredCard::Buy, 900.0f));
    ODE_RETURN_NOT_OK(session_->Invoke(txn, gold_, &GoldCard::Upgrade));
    return session_->Invoke(txn, gold_, &CredCard::PayBill, 10.0f);
  });
  ASSERT_TRUE(st.ok());
  st = session_->WithTransaction([&](Transaction* txn) -> Status {
    auto g = session_->Load(txn, gold_);
    ODE_RETURN_NOT_OK(g.status());
    EXPECT_FLOAT_EQ(g->cred_lim, 1500);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST_F(InheritanceTest, DerivedTriggerUsesBaseAndDerivedEvents) {
  Status st = session_->WithTransaction([&](Transaction* txn) -> Status {
    return session_->Activate(txn, gold_, "PerkWatch").status();
  });
  ASSERT_TRUE(st.ok());
  st = session_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(session_->Invoke(txn, gold_, &GoldCard::Upgrade));
    return session_->Invoke(txn, gold_, &CredCard::Buy, 10.0f);
  });
  ASSERT_TRUE(st.ok());
  st = session_->WithTransaction([&](Transaction* txn) -> Status {
    auto g = session_->Load(txn, gold_);
    ODE_RETURN_NOT_OK(g.status());
    EXPECT_EQ(g->perks, 11);  // 1 from Upgrade, 10 from the trigger
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

// --------------------------------------------------------- multi-object

TEST(MultiObject, TriggersAreRootedAtObjects) {
  Schema schema;
  paper::DeclareCredCard(&schema);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Session& s = **session;

  PRef<CredCard> a, b;
  Status st = s.WithTransaction([&](Transaction* txn) -> Status {
    CredCard c;
    c.cred_lim = 100;
    auto ra = s.New(txn, c);
    ODE_RETURN_NOT_OK(ra.status());
    a = *ra;
    auto rb = s.New(txn, c);
    ODE_RETURN_NOT_OK(rb.status());
    b = *rb;
    // Only `a` gets DenyCredit.
    return s.Activate(txn, a, "DenyCredit").status();
  });
  ASSERT_TRUE(st.ok());

  st = s.WithTransaction([&](Transaction* txn) -> Status {
    return s.Invoke(txn, a, &CredCard::Buy, 500.0f);
  });
  EXPECT_TRUE(st.IsTransactionAborted());

  st = s.WithTransaction([&](Transaction* txn) -> Status {
    return s.Invoke(txn, b, &CredCard::Buy, 500.0f);
  });
  EXPECT_TRUE(st.ok()) << "b has no trigger: the purchase goes through";
}

TEST(MultiObject, FreeDeactivatesRemainingTriggers) {
  Schema schema;
  paper::DeclareCredCard(&schema);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Session& s = **session;

  PRef<CredCard> card;
  Status st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto r = s.New(txn, CredCard{});
    ODE_RETURN_NOT_OK(r.status());
    card = *r;
    return s.Activate(txn, card, "DenyCredit").status();
  });
  ASSERT_TRUE(st.ok());
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    return s.Free(txn, card);
  });
  ASSERT_TRUE(st.ok());
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    EXPECT_EQ(s.triggers()->ActiveCount(txn, card.oid()), 0);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

}  // namespace
}  // namespace ode
