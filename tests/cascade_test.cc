// Trigger-runtime containment: cascade budgets, poisoned-trigger
// quarantine, deadlock-abort retry, admission backpressure, and the
// dead-letter ring. The centerpiece is a multi-threaded torture run
// mixing a perpetually self-re-posting trigger and a permanently
// tabort'ing trigger with a well-behaved one: the store must stay
// live, the bad triggers must end up quarantined (with the failure
// provenance recorded), and the good trigger must keep firing.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "odepp/session.h"

namespace ode {
namespace {

struct RCell {
  int32_t hits = 0;
  int32_t fires = 0;

  void Hit() { ++hits; }
  void Ping() {}

  void Encode(Encoder& enc) const {
    enc.PutI32(hits);
    enc.PutI32(fires);
  }
  static Result<RCell> Decode(Decoder& dec) {
    RCell c;
    ODE_RETURN_NOT_OK(dec.GetI32(&c.hits));
    ODE_RETURN_NOT_OK(dec.GetI32(&c.fires));
    return c;
  }
};

using CellAction = std::function<Status(RCell&, TriggerFireContext&)>;

/// Re-posts "after Hit" to the action's own anchor: a dependent
/// trigger with this action forms a perpetual detached cascade, an
/// immediate one recurses in place.
Status RepostHit(RCell&, TriggerFireContext& ctx) {
  auto* type = ctx.triggers()->FindType("RCell");
  const EventDecl* decl = type->FindEvent("after Hit");
  return ctx.triggers()->PostEvent(ctx.txn(), ctx.anchor(), type,
                                   decl->symbol);
}

CellAction CountFires() {
  return [](RCell& c, TriggerFireContext&) -> Status {
    ++c.fires;
    return Status::OK();
  };
}

/// Schema with one RCell class; triggers are appended by each test.
class CascadeHarness {
 public:
  struct TriggerSpec {
    std::string name;
    std::string expr;
    CellAction action;
    CouplingMode coupling = CouplingMode::kDependent;
  };

  CascadeHarness(std::vector<TriggerSpec> specs, Session::Options options,
                 size_t cells = 1) {
    auto builder = schema_.DeclareClass<RCell>("RCell")
                       .Event("after Hit")
                       .Event("after Ping")
                       .Method("Hit", &RCell::Hit)
                       .Method("Ping", &RCell::Ping);
    for (TriggerSpec& spec : specs) {
      builder.Trigger(spec.name, spec.expr, std::move(spec.action),
                      spec.coupling, /*perpetual=*/true);
    }
    Status st = schema_.Freeze();
    ODE_CHECK(st.ok()) << st.ToString();
    auto session =
        Session::Open(StorageKind::kMainMemory, "", &schema_, options);
    ODE_CHECK(session.ok()) << session.status().ToString();
    session_ = std::move(session).value();
    st = session_->WithTransaction([&](Transaction* txn) -> Status {
      for (size_t i = 0; i < cells; ++i) {
        auto r = session_->New(txn, RCell{});
        ODE_RETURN_NOT_OK(r.status());
        cells_.push_back(*r);
      }
      return Status::OK();
    });
    ODE_CHECK(st.ok()) << st.ToString();
  }

  Session& session() { return *session_; }
  PRef<RCell> cell(size_t i = 0) const { return cells_[i]; }

  Status Activate(size_t cell, const std::string& trigger) {
    return session_->WithTransaction([&](Transaction* txn) -> Status {
      return session_->Activate(txn, cells_[cell], trigger).status();
    });
  }

  Status Hit(size_t cell) {
    return session_->WithTransaction([&](Transaction* txn) -> Status {
      return session_->Invoke(txn, cells_[cell], &RCell::Hit);
    });
  }

  Status Ping(size_t cell) {
    return session_->WithTransaction([&](Transaction* txn) -> Status {
      return session_->Invoke(txn, cells_[cell], &RCell::Ping);
    });
  }

  RCell Load(size_t cell) {
    RCell out;
    Status st = session_->WithTransaction([&](Transaction* txn) -> Status {
      auto c = session_->Load(txn, cells_[cell]);
      ODE_RETURN_NOT_OK(c.status());
      out = *c;
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  }

  uint64_t Counter(const std::string& name) {
    return session_->metrics()->GetCounter(name)->value();
  }
  int64_t Gauge(const std::string& name) {
    return session_->metrics()->GetGauge(name)->value();
  }

 private:
  Schema schema_;
  std::unique_ptr<Session> session_;
  std::vector<PRef<RCell>> cells_;
};

Session::Options FastContainment() {
  Session::Options o;
  o.max_cascade_depth = 5;
  o.trigger_failure_threshold = 3;
  o.action_retry_attempts = 2;
  o.action_retry_backoff_us = 10;
  o.dead_letter_capacity = 32;
  return o;
}

// ------------------------------------------------------------- torture

TEST(CascadeTorture, PoisonedTriggersQuarantineWhileTheStoreStaysLive) {
  // Cell 0: "Runaway" re-posts itself forever (cut by the depth budget,
  // each cut charging its failure window). Cell 1: "Veto" taborts its
  // system transaction every time. Cell 2: "Good" just counts.
  Session::Options opts = FastContainment();
  CascadeHarness h(
      {{"Runaway", "after Hit", RepostHit},
       {"Veto", "after Hit",
        [](RCell&, TriggerFireContext& ctx) -> Status {
          ctx.Tabort("poisoned: always vetoes");
          return Status::OK();
        }},
       {"Good", "after Hit", CountFires()}},
      opts, /*cells=*/3);
  ASSERT_TRUE(h.Activate(0, "Runaway").ok());
  ASSERT_TRUE(h.Activate(1, "Veto").ok());
  ASSERT_TRUE(h.Activate(2, "Good").ok());
  {
    auto q = h.session().QuarantinedTriggers();
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_TRUE(q->empty()) << "fresh database: nothing quarantined yet";
  }

  constexpr int kThreads = 4;
  constexpr int kIters = 18;  // round-robin: each cell hit 6x per thread
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        Status st = h.Hit(static_cast<size_t>((t + i) % 3));
        // Every user transaction must succeed: the poison is contained
        // in detached system transactions, never billed to the caller.
        if (!st.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The store survived and still serves reads and writes.
  EXPECT_GT(h.Load(0).hits, 0);
  ASSERT_TRUE(h.Hit(2).ok());

  // Both poisoned triggers are quarantined, with provenance; the good
  // one is not, and kept firing after its neighbors were contained.
  auto q = h.session().QuarantinedTriggers();
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->size(), 2u);
  bool saw_runaway = false, saw_veto = false;
  for (const auto& entry : *q) {
    EXPECT_EQ(entry.defining_class, "RCell");
    EXPECT_GE(entry.failures, opts.trigger_failure_threshold);
    EXPECT_FALSE(entry.reason.empty());
    if (entry.trigger_name == "Runaway") {
      saw_runaway = true;
      EXPECT_NE(entry.reason.find("cascade-overflow"), std::string::npos)
          << entry.reason;
    } else if (entry.trigger_name == "Veto") {
      saw_veto = true;
      EXPECT_NE(entry.reason.find("action-failure"), std::string::npos)
          << entry.reason;
    }
  }
  EXPECT_TRUE(saw_runaway);
  EXPECT_TRUE(saw_veto);
  EXPECT_GT(h.Load(2).fires, 0);
  EXPECT_EQ(h.Gauge("ode_trigger_quarantined"), 2);
  EXPECT_GT(h.Counter("ode_cascade_overflows_total"), 0u);

  // The cut and diverted firings landed in the dead-letter ring, in
  // order, bounded by capacity.
  auto letters = h.session().DeadLetters();
  ASSERT_TRUE(letters.ok()) << letters.status().ToString();
  ASSERT_FALSE(letters->empty());
  EXPECT_LE(letters->size(), opts.dead_letter_capacity);
  for (size_t i = 1; i < letters->size(); ++i) {
    EXPECT_LT((*letters)[i - 1].seq, (*letters)[i].seq);
  }
  EXPECT_EQ(h.Gauge("ode_deadletter_depth"),
            static_cast<int64_t>(letters->size()));

  // Quarantined triggers are deactivated: hitting cell 0 no longer
  // starts a cascade.
  const uint64_t cuts = h.Counter("ode_cascade_overflows_total");
  ASSERT_TRUE(h.Hit(0).ok());
  EXPECT_EQ(h.Counter("ode_cascade_overflows_total"), cuts);
}

// ------------------------------------------------------ cascade budgets

TEST(CascadeBudgets, DepthCutQuarantinesAfterRepeatedOverflowsThenRearms) {
  Session::Options opts = FastContainment();
  CascadeHarness h({{"Loop", "after Hit", RepostHit}}, opts);
  ASSERT_TRUE(h.Activate(0, "Loop").ok());

  for (uint32_t i = 0; i < opts.trigger_failure_threshold; ++i) {
    ASSERT_TRUE(h.Hit(0).ok()) << "user transactions never see the cut";
  }
  EXPECT_GE(h.Counter("ode_cascade_overflows_total"),
            static_cast<uint64_t>(opts.trigger_failure_threshold));
  auto q = h.session().QuarantinedTriggers();
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->size(), 1u);
  EXPECT_EQ((*q)[0].trigger_name, "Loop");
  auto letters = h.session().DeadLetters();
  ASSERT_TRUE(letters.ok());
  ASSERT_FALSE(letters->empty());
  EXPECT_NE(letters->front().reason.find("depth budget"), std::string::npos)
      << letters->front().reason;

  // Explicit re-activation is the re-arm: it clears the quarantine
  // entry (and the gauge) in the same transaction.
  ASSERT_TRUE(h.Activate(0, "Loop").ok());
  q = h.session().QuarantinedTriggers();
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(h.Gauge("ode_trigger_quarantined"), 0);
}

TEST(CascadeBudgets, ActionBudgetBoundsTotalWorkPerRoot) {
  Session::Options opts = FastContainment();
  opts.max_cascade_depth = 1000;  // depth alone would allow a long chain
  opts.max_cascade_actions = 8;
  CascadeHarness h({{"Loop", "after Hit", RepostHit}}, opts);
  ASSERT_TRUE(h.Activate(0, "Loop").ok());
  ASSERT_TRUE(h.Hit(0).ok());
  EXPECT_GT(h.Counter("ode_cascade_overflows_total"), 0u);
  auto letters = h.session().DeadLetters();
  ASSERT_TRUE(letters.ok());
  ASSERT_FALSE(letters->empty());
  EXPECT_NE(letters->front().reason.find("cascade"), std::string::npos);
}

// ------------------------------------------------------- retry / backoff

TEST(ActionRetry, TransientDeadlockAbortsAreRetriedToSuccess) {
  auto attempts = std::make_shared<std::atomic<int>>(0);
  Session::Options opts = FastContainment();
  opts.action_retry_attempts = 3;
  CascadeHarness h({{"Flaky", "after Hit",
                     [attempts](RCell& c, TriggerFireContext&) -> Status {
                       if (attempts->fetch_add(1) < 2) {
                         return Status::Deadlock("synthetic wait-for cycle");
                       }
                       ++c.fires;
                       return Status::OK();
                     }}},
                   opts);
  ASSERT_TRUE(h.Activate(0, "Flaky").ok());
  ASSERT_TRUE(h.Hit(0).ok());
  EXPECT_EQ(attempts->load(), 3);
  EXPECT_EQ(h.Load(0).fires, 1) << "third attempt committed";
  EXPECT_EQ(h.Counter("ode_action_retries_total"), 2u);
  EXPECT_EQ(h.Counter("ode_action_retries_exhausted_total"), 0u);
  // Contention is not poison: no window advanced, nothing quarantined.
  auto q = h.session().QuarantinedTriggers();
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->empty());
}

TEST(ActionRetry, ExhaustionDeadLettersWithoutQuarantining) {
  Session::Options opts = FastContainment();
  opts.action_retry_attempts = 2;
  CascadeHarness h({{"Contended", "after Hit",
                     [](RCell&, TriggerFireContext&) -> Status {
                       return Status::Deadlock("synthetic wait-for cycle");
                     }}},
                   opts);
  ASSERT_TRUE(h.Activate(0, "Contended").ok());
  ASSERT_TRUE(h.Hit(0).ok()) << "exhaustion is absorbed, not propagated";
  EXPECT_EQ(h.Load(0).fires, 0);
  EXPECT_GE(h.Counter("ode_action_retries_exhausted_total"), 1u);
  auto letters = h.session().DeadLetters();
  ASSERT_TRUE(letters.ok());
  ASSERT_EQ(letters->size(), 1u);
  EXPECT_NE(letters->front().reason.find("deadlock"), std::string::npos);
  // Deadlock victims are innocent: the trigger stays armed.
  auto q = h.session().QuarantinedTriggers();
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->empty());
}

// ------------------------------------------------------------ watchdog

TEST(Watchdog, OverrunningActionsAreQuarantinedAfterTheFact) {
  Session::Options opts = FastContainment();
  opts.trigger_action_timeout_us = 200;
  opts.trigger_failure_threshold = 2;
  CascadeHarness h({{"Slow", "after Hit",
                     [](RCell& c, TriggerFireContext&) -> Status {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(3));
                       ++c.fires;
                       return Status::OK();
                     }}},
                   opts);
  ASSERT_TRUE(h.Activate(0, "Slow").ok());
  // The action cannot be preempted, so each overrun still commits; the
  // second one trips the window.
  ASSERT_TRUE(h.Hit(0).ok());
  ASSERT_TRUE(h.Hit(0).ok());
  EXPECT_EQ(h.Load(0).fires, 2);
  auto q = h.session().QuarantinedTriggers();
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->size(), 1u);
  EXPECT_EQ((*q)[0].trigger_name, "Slow");
  EXPECT_NE((*q)[0].reason.find("action-timeout"), std::string::npos)
      << (*q)[0].reason;
}

// ------------------------------------------------------- backpressure

TEST(Backpressure, IndependentBatchesShedAtTheHighWaterMark) {
  struct Gate {
    std::mutex mu;
    std::condition_variable cv;
    bool open = false;
  };
  auto gate = std::make_shared<Gate>();
  Session::Options opts = FastContainment();
  opts.max_inflight_system_actions = 1;
  CascadeHarness h({{"Notify", "after Ping",
                     [gate](RCell& c, TriggerFireContext&) -> Status {
                       std::unique_lock<std::mutex> lock(gate->mu);
                       gate->cv.wait(lock, [&] { return gate->open; });
                       ++c.fires;
                       return Status::OK();
                     },
                     CouplingMode::kIndependent}},
                   opts, /*cells=*/2);
  ASSERT_TRUE(h.Activate(0, "Notify").ok());
  ASSERT_TRUE(h.Activate(1, "Notify").ok());

  // Thread A's !dependent action parks inside its system transaction,
  // pinning the in-flight gauge at the high-water mark.
  std::thread blocked([&] { EXPECT_TRUE(h.Ping(0).ok()); });
  for (int spin = 0; h.Gauge("ode_system_actions_inflight") < 1; ++spin) {
    ASSERT_LT(spin, 5000) << "first system action never started";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // A second !dependent batch arriving now is shed, not queued.
  ASSERT_TRUE(h.Ping(1).ok());
  EXPECT_EQ(h.Counter("ode_trigger_actions_shed_total"), 1u);
  auto letters = h.session().DeadLetters();
  ASSERT_TRUE(letters.ok());
  ASSERT_EQ(letters->size(), 1u);
  EXPECT_NE(letters->front().reason.find("shed"), std::string::npos);
  EXPECT_EQ(letters->front().coupling, "!dependent");

  {
    std::lock_guard<std::mutex> lock(gate->mu);
    gate->open = true;
  }
  gate->cv.notify_all();
  blocked.join();
  EXPECT_EQ(h.Load(0).fires, 1) << "admitted action ran to completion";
  EXPECT_EQ(h.Load(1).fires, 0) << "shed action never ran";
  EXPECT_EQ(h.Gauge("ode_system_actions_inflight"), 0);
}

// -------------------------------------------- local triggers + aborts

TEST(LocalTriggers, ActivateDeactivateRaceAbortingCascades) {
  // Four threads churn transient local rules on their own cells while a
  // persistent dependent trigger cascades (bounded by the depth budget)
  // and half the transactions abort. Exercises the TxnCtx teardown
  // paths (commit, abort, local dealloc) against the containment
  // bookkeeping under TSan.
  Session::Options opts = FastContainment();
  opts.trigger_failure_threshold = 0;  // churn forever, never quarantine
  CascadeHarness h({{"Chain", "after Hit", RepostHit},
                    {"Local", "after Hit", CountFires(),
                     CouplingMode::kImmediate}},
                   opts, /*cells=*/4);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(h.Activate(i, "Chain").ok());
  }

  std::atomic<int> unexpected{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Session& s = h.session();
      for (int i = 0; i < 25; ++i) {
        auto txn = s.Begin();
        if (!txn.ok()) {
          unexpected.fetch_add(1);
          continue;
        }
        auto local = s.ActivateLocal(*txn, h.cell(t), "Local");
        if (!local.ok()) {
          unexpected.fetch_add(1);
          (void)s.Abort(*txn);
          continue;
        }
        Status st = s.Invoke(*txn, h.cell(t), &RCell::Hit);
        if (!st.ok()) {
          unexpected.fetch_add(1);
          (void)s.Abort(*txn);
          continue;
        }
        if (i % 3 == 0) {
          st = s.DeactivateLocal(*txn, *local);
          if (!st.ok()) unexpected.fetch_add(1);
        }
        if (i % 2 == 0) {
          if (!s.Abort(*txn).ok()) unexpected.fetch_add(1);
        } else {
          if (!s.Commit(*txn).ok()) unexpected.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(unexpected.load(), 0);
  // The store is live and every committed Hit stuck.
  for (size_t i = 0; i < 4; ++i) {
    RCell c = h.Load(i);
    EXPECT_GT(c.hits, 0);
    EXPECT_LE(c.fires, c.hits) << "local fires roll back with their txns";
  }
}

// ------------------------------------------------------ option hygiene

TEST(OptionsValidation, ZeroedStructuralKnobsAreRejectedByName) {
  Schema schema;
  schema.DeclareClass<RCell>("RCell")
      .Event("after Hit")
      .Method("Hit", &RCell::Hit);
  ASSERT_TRUE(schema.Freeze().ok());

  struct Case {
    const char* field;
    std::function<void(Session::Options&)> poison;
  };
  const std::vector<Case> cases = {
      {"trigger_index_buckets",
       [](Session::Options& o) { o.trigger_index_buckets = 0; }},
      {"trigger_lock_stripes",
       [](Session::Options& o) { o.trigger_lock_stripes = 0; }},
      {"commit_batch_max_txns",
       [](Session::Options& o) { o.commit_batch_max_txns = 0; }},
      {"trace_sample_every_n_txns",
       [](Session::Options& o) { o.trace_sample_every_n_txns = 0; }},
      {"max_cascade_depth",
       [](Session::Options& o) { o.max_cascade_depth = 0; }},
  };
  for (const Case& c : cases) {
    Session::Options opts;
    c.poison(opts);
    auto session = Session::Open(StorageKind::kMainMemory, "", &schema, opts);
    ASSERT_FALSE(session.ok()) << c.field;
    EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument)
        << c.field;
    EXPECT_NE(session.status().message().find(c.field), std::string::npos)
        << "message must name the offending field: "
        << session.status().ToString();
  }

  // Zero depth is only incoherent while containment is on; with the
  // layer off it is never consulted.
  Session::Options off;
  off.trigger_containment = false;
  off.max_cascade_depth = 0;
  EXPECT_TRUE(Session::ValidateOptions(off).ok());
  EXPECT_TRUE(Session::ValidateOptions(Session::Options()).ok());
}

TEST(OptionsValidation, ContainmentOffRestoresLegacyDepthBehavior) {
  // With the layer off, an immediate runaway is still stopped by the
  // legacy recursion guard (billed to the caller), but nothing is
  // counted, quarantined, or dead-lettered.
  Session::Options opts;
  opts.trigger_containment = false;
  CascadeHarness h({{"Loop", "after Hit", RepostHit,
                     CouplingMode::kImmediate}},
                   opts);
  ASSERT_TRUE(h.Activate(0, "Loop").ok());
  Status st = h.Hit(0);
  EXPECT_TRUE(st.IsCascadeOverflow()) << st.ToString();
  EXPECT_EQ(h.Counter("ode_cascade_overflows_total"), 0u);
  auto q = h.session().QuarantinedTriggers();
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->empty());
  auto letters = h.session().DeadLetters();
  ASSERT_TRUE(letters.ok());
  EXPECT_TRUE(letters->empty());
}

}  // namespace
}  // namespace ode
