// Tests for the metrics registry (counters, gauges, log-bucketed latency
// histograms, snapshots/deltas, text exposition) and for the end-to-end
// wiring: one Session run must surface trigger, storage, transaction,
// and lock metrics on the database-wide registry.

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "storage/lock_manager.h"
#include "paper_example.h"

namespace ode {
namespace {

// ---------------------------------------------------------------- Counter

TEST(Counter, IncrementsAndReads) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  EXPECT_EQ(c->value(), 0u);
  c->Inc();
  c->Inc(41);
  EXPECT_EQ(c->value(), 42u);
  // std::atomic-compatible spellings used by pre-registry call sites.
  EXPECT_EQ(c->load(), 42u);
  EXPECT_EQ(static_cast<uint64_t>(*c), 42u);
}

TEST(Counter, GetIsCreateOrGet) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("same");
  Counter* b = reg.GetCounter("same");
  EXPECT_EQ(a, b);
  a->Inc();
  EXPECT_EQ(b->value(), 1u);
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kIncrements; ++i) c->Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), uint64_t(kThreads) * kIncrements);
}

TEST(Counter, DisabledRegistryDropsWrites) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  reg.set_enabled(false);
  c->Inc(100);
  EXPECT_EQ(c->value(), 0u);
  reg.set_enabled(true);
  c->Inc(7);
  EXPECT_EQ(c->value(), 7u);
}

// ------------------------------------------------------------------ Gauge

TEST(Gauge, SetAddSub) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("g");
  g->Set(10);
  g->Add(5);
  g->Sub(8);
  EXPECT_EQ(g->value(), 7);
  reg.set_enabled(false);
  g->Add(100);
  EXPECT_EQ(g->value(), 7);
}

// -------------------------------------------------------------- Histogram

TEST(Histogram, BucketIndexBoundaries) {
  using metrics_internal::BucketIndex;
  using metrics_internal::BucketLower;
  using metrics_internal::BucketUpper;
  EXPECT_EQ(BucketIndex(0), 0u);
  EXPECT_EQ(BucketIndex(1), 1u);
  EXPECT_EQ(BucketIndex(2), 2u);
  EXPECT_EQ(BucketIndex(3), 2u);
  EXPECT_EQ(BucketIndex(4), 3u);
  EXPECT_EQ(BucketIndex(1023), 10u);
  EXPECT_EQ(BucketIndex(1024), 11u);
  EXPECT_EQ(BucketIndex(UINT64_MAX), 64u);
  // Every bucket's bounds agree with the index function.
  for (size_t i = 0; i < metrics_internal::kBuckets; ++i) {
    EXPECT_EQ(BucketIndex(BucketLower(i)), i) << "bucket " << i;
    EXPECT_EQ(BucketIndex(BucketUpper(i)), i) << "bucket " << i;
  }
}

TEST(Histogram, RecordsCountSumMax) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h");
  h->Record(100);
  h->Record(200);
  h->Record(50);
  HistogramData data = h->data();
  EXPECT_EQ(data.count, 3u);
  EXPECT_EQ(data.sum, 350u);
  EXPECT_EQ(data.max, 200u);
}

TEST(Histogram, PercentilesLandInTheRightBucket) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h");
  // 1000 identical samples: every percentile must resolve inside the
  // bucket holding 500 ([256, 511]) and clamp to the observed max.
  for (int i = 0; i < 1000; ++i) h->Record(500);
  HistogramData data = h->data();
  EXPECT_EQ(data.count, 1000u);
  EXPECT_EQ(data.max, 500u);
  for (double p : {50.0, 95.0, 99.0}) {
    double v = data.Percentile(p);
    EXPECT_GE(v, 256.0) << "p" << p;
    EXPECT_LE(v, 500.0) << "p" << p;
  }
  EXPECT_DOUBLE_EQ(data.Mean(), 500.0);
}

TEST(Histogram, PercentilesOrderOnSpreadData) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h");
  // 90 fast ops, 10 slow ops: p50 stays fast, p99 must see the tail.
  for (int i = 0; i < 90; ++i) h->Record(100);
  for (int i = 0; i < 10; ++i) h->Record(100000);
  HistogramData data = h->data();
  double p50 = data.Percentile(50);
  double p99 = data.Percentile(99);
  EXPECT_LE(p50, 127.0);  // inside [64, 127], the bucket holding 100
  EXPECT_GE(p99, 65536.0);  // inside the bucket holding 100000
  EXPECT_LE(p99, 100000.0);  // clamped to observed max
  EXPECT_EQ(data.Percentile(0), data.Percentile(0));  // no NaN
  EXPECT_EQ(HistogramData{}.Percentile(50), 0.0);     // empty histogram
}

TEST(Histogram, ConcurrentRecordsAreExact) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h");
  constexpr int kThreads = 4;
  constexpr int kRecords = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kRecords; ++i) h->Record(uint64_t(t) + 1);
    });
  }
  for (auto& t : threads) t.join();
  HistogramData data = h->data();
  EXPECT_EQ(data.count, uint64_t(kThreads) * kRecords);
  EXPECT_EQ(data.max, uint64_t(kThreads));
}

TEST(Histogram, SamplingMaskRoundsToPowerOfTwo) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.GetHistogram("h1", 1)->sample_every(), 1u);
  EXPECT_EQ(reg.GetHistogram("h16", 16)->sample_every(), 16u);
  EXPECT_EQ(reg.GetHistogram("h20", 20)->sample_every(), 32u);
  // A sampled histogram admits roughly 1 in N ShouldSample calls.
  Histogram* h = reg.GetHistogram("h16");
  int admitted = 0;
  for (int i = 0; i < 1600; ++i) {
    if (h->ShouldSample()) ++admitted;
  }
  EXPECT_EQ(admitted, 100);
  reg.set_enabled(false);
  EXPECT_FALSE(reg.GetHistogram("h1")->ShouldSample());
}

TEST(LatencyTimer, RecordsElapsedTime) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h");
  { LatencyTimer timer(h); }
  { LatencyTimer none(nullptr); }  // null histogram: no-op
  HistogramData data = h->data();
  EXPECT_EQ(data.count, 1u);
}

// --------------------------------------------------- Snapshot and deltas

TEST(Snapshot, CapturesAllKindsSorted) {
  MetricsRegistry reg;
  reg.GetCounter("b_counter")->Inc(3);
  reg.GetGauge("a_gauge")->Set(-2);
  reg.GetHistogram("c_hist")->Record(9);
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.metrics().size(), 3u);
  EXPECT_EQ(snap.metrics()[0].name, "a_gauge");
  EXPECT_EQ(snap.metrics()[1].name, "b_counter");
  EXPECT_EQ(snap.metrics()[2].name, "c_hist");
  EXPECT_EQ(snap.CounterValue("b_counter"), 3u);
  EXPECT_EQ(snap.Find("a_gauge")->gauge, -2);
  EXPECT_EQ(snap.HistogramValue("c_hist").count, 1u);
  EXPECT_EQ(snap.Find("nope"), nullptr);
  EXPECT_EQ(snap.CounterValue("nope"), 0u);
}

TEST(Snapshot, DeltaIsolatesAWindow) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  Histogram* h = reg.GetHistogram("h");
  c->Inc(10);
  h->Record(4);
  MetricsSnapshot before = reg.Snapshot();
  c->Inc(5);
  h->Record(4);
  h->Record(4);
  MetricsSnapshot delta = reg.Snapshot().Delta(before);
  EXPECT_EQ(delta.CounterValue("c"), 5u);
  HistogramData hd = delta.HistogramValue("h");
  EXPECT_EQ(hd.count, 2u);
  EXPECT_EQ(hd.sum, 8u);
}

TEST(Snapshot, TextExpositionFormat) {
  MetricsRegistry reg;
  reg.GetCounter("ode_demo_total")->Inc(2);
  reg.GetHistogram("ode_demo_latency_ns")->Record(300);
  std::string text = reg.DumpText();
  EXPECT_NE(text.find("# TYPE ode_demo_total counter"), std::string::npos);
  EXPECT_NE(text.find("ode_demo_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ode_demo_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(text.find("ode_demo_latency_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("ode_demo_latency_ns_sum 300"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("# p50"), std::string::npos);
}

// ----------------------------------------------------- LockManager wiring

TEST(LockMetrics, ContentionAccruesWaitTime) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, Oid(7), LockMode::kExclusive).ok());
  std::thread waiter([&] {
    EXPECT_TRUE(locks.Acquire(2, Oid(7), LockMode::kShared).ok());
    locks.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  locks.ReleaseAll(1);
  waiter.join();
  EXPECT_EQ(locks.conflicts(), 1u);
  EXPECT_GT(locks.wait_ns(), 0u);
}

// ------------------------------------------- Session end-to-end exposure

class SessionMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    paper::DeclareCredCard(&schema_);
    ASSERT_TRUE(schema_.Freeze().ok());
  }

  std::unique_ptr<Session> OpenSession(Session::Options options) {
    auto session =
        Session::Open(StorageKind::kMainMemory, "", &schema_, options);
    EXPECT_TRUE(session.ok()) << session.status().ToString();
    return std::move(session).value();
  }

  // Activates AutoRaiseLimit and drives it to fire once: Buy over 80% of
  // the limit, then PayBill (the relative() sequence of §4).
  Status RunPaperWorkload(Session* s) {
    return s->WithTransaction([&](Transaction* txn) -> Status {
      auto card = s->New(txn, paper::CredCard{1000, 0, 0, true});
      ODE_RETURN_NOT_OK(card.status());
      auto trig = s->Activate(txn, *card, "AutoRaiseLimit",
                              PackParams(250.0f));
      ODE_RETURN_NOT_OK(trig.status());
      ODE_RETURN_NOT_OK(
          s->Invoke(txn, *card, &paper::CredCard::Buy, 900.0f));
      ODE_RETURN_NOT_OK(
          s->Invoke(txn, *card, &paper::CredCard::PayBill, 100.0f));
      auto loaded = s->Load(txn, *card);
      ODE_RETURN_NOT_OK(loaded.status());
      EXPECT_FLOAT_EQ(loaded->cred_lim, 1250.0f);  // trigger fired
      return Status::OK();
    });
  }

  Schema schema_;
};

TEST_F(SessionMetricsTest, OneRunSurfacesAllFourLayers) {
  std::unique_ptr<Session> s = OpenSession(Session::Options{});
  ASSERT_TRUE(RunPaperWorkload(s.get()).ok());

  MetricsSnapshot snap = s->MetricsSnapshot();
  EXPECT_GT(snap.CounterValue("ode_trigger_posts_total"), 0u);
  EXPECT_GT(snap.CounterValue("ode_trigger_fires_total"), 0u);
  EXPECT_GT(snap.CounterValue("ode_storage_object_reads_total"), 0u);
  EXPECT_GT(snap.CounterValue("ode_storage_object_writes_total"), 0u);
  EXPECT_GT(snap.CounterValue("ode_txn_commits_total"), 0u);
  EXPECT_EQ(snap.Find("ode_txn_active")->gauge, 0);
  ASSERT_NE(snap.Find("ode_lock_conflicts_total"), nullptr);
  EXPECT_GT(snap.HistogramValue("ode_txn_commit_latency_ns").count, 0u);

  std::string text = s->DumpMetricsText();
  for (const char* name :
       {"ode_trigger_posts_total", "ode_storage_object_reads_total",
        "ode_txn_commits_total", "ode_lock_conflicts_total",
        "ode_trigger_post_latency_ns",
        "ode_trigger_action_latency_ns_immediate"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
}

TEST_F(SessionMetricsTest, DisabledMetricsStillRunTriggers) {
  Session::Options options;
  options.enable_metrics = false;
  std::unique_ptr<Session> s = OpenSession(options);
  EXPECT_FALSE(s->metrics()->enabled());
  ASSERT_TRUE(RunPaperWorkload(s.get()).ok());  // semantics unaffected
  MetricsSnapshot snap = s->MetricsSnapshot();
  EXPECT_EQ(snap.CounterValue("ode_trigger_posts_total"), 0u);
  EXPECT_EQ(snap.CounterValue("ode_txn_commits_total"), 0u);
}

}  // namespace
}  // namespace ode
