// Posting hot-path cache tests: per-transaction decoded-TriggerState and
// index-lookup caches (write-back once at commit, discard on abort,
// invalidation by Activate/Deactivate) and the sharded TriggerManager
// under concurrent sessions. The multi-threaded cases are the ones meant
// to run under -DODE_TSAN=ON.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "odepp/session.h"

namespace ode {
namespace {

struct Cell {
  int64_t fires = 0;

  void Encode(Encoder& enc) const { enc.PutI64(fires); }
  static Result<Cell> Decode(Decoder& dec) {
    Cell c;
    ODE_RETURN_NOT_OK(dec.GetI64(&c.fires));
    return c;
  }
};

void DeclareCell(Schema* schema) {
  schema->DeclareClass<Cell>("Cell")
      .Event("Poke")
      .Event("E1")
      .Event("E2")
      .Trigger("OnPoke", "Poke",
               [](Cell& c, TriggerFireContext&) -> Status {
                 ++c.fires;
                 return Status::OK();
               },
               CouplingMode::kImmediate, /*perpetual=*/true)
      // Leading any* so a stray E2 before the E1 doesn't kill the
      // machine — the test below posts E2 first on purpose.
      .Trigger("OnSequence", "any*, E1, any*, E2",
               [](Cell& c, TriggerFireContext&) -> Status {
                 ++c.fires;
                 return Status::OK();
               },
               CouplingMode::kImmediate, /*perpetual=*/true);
}

class TriggerCacheTest : public ::testing::Test {
 protected:
  void Open(Session::Options options) {
    DeclareCell(&schema_);
    ASSERT_TRUE(schema_.Freeze().ok());
    options.auto_cluster = false;
    auto s = Session::Open(StorageKind::kMainMemory, "", &schema_, options);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    s_ = std::move(s).value();
  }
  void Open() { Open(Session::Options()); }

  Result<PRef<Cell>> NewCell() {
    PRef<Cell> ref;
    ODE_RETURN_NOT_OK(s_->WithTransaction([&](Transaction* txn) -> Status {
      ODE_ASSIGN_OR_RETURN(ref, s_->New(txn, Cell{}));
      return Status::OK();
    }));
    return ref;
  }

  int64_t Fires(PRef<Cell> ref) {
    int64_t out = -1;
    Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
      ODE_ASSIGN_OR_RETURN(Cell c, s_->Load(txn, ref));
      out = c.fires;
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  }

  Schema schema_;
  std::unique_ptr<Session> s_;
};

// Activate -> post -> deactivate -> post inside ONE transaction: the
// lookup cache must be invalidated in both directions (a cached "no
// triggers" result must not hide the new activation; a cached trigger
// list must not resurrect the deactivated one).
TEST_F(TriggerCacheTest, InTxnActivateDeactivateInvalidateLookupCache) {
  Open();
  auto ref = NewCell();
  ASSERT_TRUE(ref.ok());
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    // Prime the lookup cache with "no active triggers".
    ODE_RETURN_NOT_OK(s_->PostUserEvent(txn, *ref, "Poke"));
    ODE_ASSIGN_OR_RETURN(TriggerId id, s_->Activate(txn, *ref, "OnPoke"));
    ODE_RETURN_NOT_OK(s_->PostUserEvent(txn, *ref, "Poke"));  // fires
    ODE_RETURN_NOT_OK(s_->Deactivate(txn, id));
    ODE_RETURN_NOT_OK(s_->PostUserEvent(txn, *ref, "Poke"));  // silent
    EXPECT_FALSE(s_->IsTriggerActive(txn, id));
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(Fires(*ref), 1);
}

// A transaction's events advance the cached TriggerState in memory; the
// encoded object is written back once, at pre-commit.
TEST_F(TriggerCacheTest, StatesWrittenBackOncePerTransaction) {
  Open();
  auto ref = NewCell();
  ASSERT_TRUE(ref.ok());
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Activate(txn, *ref, "OnSequence").status();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  const auto& stats = s_->triggers()->stats();
  uint64_t misses0 = stats.state_cache_misses.load();
  uint64_t writebacks0 = stats.state_writebacks.load();
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    for (int i = 0; i < 8; ++i) {
      ODE_RETURN_NOT_OK(s_->PostUserEvent(txn, *ref, "E1"));
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  // One decode on first touch, seven in-memory hits, one write-back.
  EXPECT_EQ(stats.state_cache_misses.load() - misses0, 1u);
  EXPECT_EQ(stats.state_cache_hits.load(), 7u);
  EXPECT_EQ(stats.state_writebacks.load() - writebacks0, 1u);
}

// Abort must discard dirty cached states: an FSM advanced inside an
// aborted transaction is back at its pre-transaction state afterwards.
TEST_F(TriggerCacheTest, AbortDiscardsDirtyCachedStates) {
  Open();
  auto ref = NewCell();
  ASSERT_TRUE(ref.ok());
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Activate(txn, *ref, "OnSequence").status();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  // Advance to "seen E1" in a transaction that aborts.
  auto txn = s_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(s_->PostUserEvent(*txn, *ref, "E1").ok());
  ASSERT_TRUE(s_->Abort(*txn).ok());

  // If the dirty state had leaked, this E2 would complete the sequence.
  st = s_->WithTransaction([&](Transaction* txn2) -> Status {
    return s_->PostUserEvent(txn2, *ref, "E2");
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(Fires(*ref), 0);

  // The machine still works from scratch: E1 then E2 fires exactly once.
  st = s_->WithTransaction([&](Transaction* txn2) -> Status {
    ODE_RETURN_NOT_OK(s_->PostUserEvent(txn2, *ref, "E1"));
    return s_->PostUserEvent(txn2, *ref, "E2");
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(Fires(*ref), 1);
}

// ListActive/IsActive observe this transaction's uncommitted cached
// state (the advanced statenum), not the stored image.
TEST_F(TriggerCacheTest, ListActiveSeesUncommittedCachedState) {
  Open();
  auto ref = NewCell();
  ASSERT_TRUE(ref.ok());
  TriggerId id;
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_ASSIGN_OR_RETURN(id, s_->Activate(txn, *ref, "OnSequence"));
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_ASSIGN_OR_RETURN(auto before,
                         s_->triggers()->ListActive(txn, ref->oid()));
    EXPECT_EQ(before.size(), 1u);
    int32_t start_state = before[0].statenum;
    ODE_RETURN_NOT_OK(s_->PostUserEvent(txn, *ref, "E1"));
    ODE_ASSIGN_OR_RETURN(auto after,
                         s_->triggers()->ListActive(txn, ref->oid()));
    EXPECT_EQ(after.size(), 1u);
    EXPECT_NE(after[0].statenum, start_state);
    EXPECT_TRUE(s_->IsTriggerActive(txn, id));
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

// With the caches disabled (capacity 0) the semantics are unchanged —
// the per-event write path of the seed.
TEST_F(TriggerCacheTest, DisabledCachesKeepSemantics) {
  Session::Options options;
  options.trigger_state_cache_entries = 0;
  options.trigger_lookup_cache_entries = 0;
  Open(options);
  auto ref = NewCell();
  ASSERT_TRUE(ref.ok());
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_ASSIGN_OR_RETURN(TriggerId id, s_->Activate(txn, *ref, "OnPoke"));
    ODE_RETURN_NOT_OK(s_->PostUserEvent(txn, *ref, "Poke"));
    ODE_RETURN_NOT_OK(s_->PostUserEvent(txn, *ref, "Poke"));
    ODE_RETURN_NOT_OK(s_->Deactivate(txn, id));
    ODE_RETURN_NOT_OK(s_->PostUserEvent(txn, *ref, "Poke"));
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(Fires(*ref), 2);
  EXPECT_EQ(s_->triggers()->stats().state_cache_hits.load(), 0u);
  EXPECT_EQ(s_->triggers()->stats().state_writebacks.load(), 0u);
}

// A tiny cache capacity forces evictions (dirty victims written back
// early); results must match the unbounded cache.
TEST_F(TriggerCacheTest, EvictionWritesBackDirtyVictims) {
  Session::Options options;
  options.trigger_state_cache_entries = 1;
  Open(options);
  auto ref = NewCell();
  ASSERT_TRUE(ref.ok());
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->Activate(txn, *ref, "OnPoke").status());
    ODE_RETURN_NOT_OK(s_->Activate(txn, *ref, "OnSequence").status());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    for (int i = 0; i < 4; ++i) {
      ODE_RETURN_NOT_OK(s_->PostUserEvent(txn, *ref, "Poke"));
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(Fires(*ref), 4);
}

// Two threads posting to DISJOINT anchor objects through one shared
// TriggerManager: no lock conflicts, exact fire counts.
TEST_F(TriggerCacheTest, ConcurrentSessionsDisjointAnchors) {
  Open();
  constexpr int kThreads = 2;
  constexpr int kTxnsPerThread = 50;
  constexpr int kEventsPerTxn = 4;

  std::vector<PRef<Cell>> refs(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    auto ref = NewCell();
    ASSERT_TRUE(ref.ok());
    refs[t] = *ref;
    Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
      return s_->Activate(txn, refs[t], "OnPoke").status();
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
          for (int e = 0; e < kEventsPerTxn; ++e) {
            ODE_RETURN_NOT_OK(s_->PostUserEvent(txn, refs[t], "Poke"));
          }
          return Status::OK();
        });
        if (!st.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(Fires(refs[t]), kTxnsPerThread * kEventsPerTxn);
  }
}

// Two threads posting to the SAME anchor object: the exclusive lock on
// the Cell serializes them; deadlock/timeout victims retry. Committed
// work must account for every fire exactly.
TEST_F(TriggerCacheTest, ConcurrentSessionsOverlappingAnchor) {
  Open();
  auto ref = NewCell();
  ASSERT_TRUE(ref.ok());
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Activate(txn, *ref, "OnPoke").status();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  constexpr int kThreads = 2;
  constexpr int kTxnsPerThread = 25;
  constexpr int kEventsPerTxn = 2;
  std::atomic<int> committed{0};
  std::atomic<int> hard_failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        for (int attempt = 0; attempt < 32; ++attempt) {
          Status txn_st = s_->WithTransaction([&](Transaction* txn) ->
                                              Status {
            for (int e = 0; e < kEventsPerTxn; ++e) {
              ODE_RETURN_NOT_OK(s_->PostUserEvent(txn, *ref, "Poke"));
            }
            return Status::OK();
          });
          if (txn_st.ok()) {
            committed.fetch_add(1);
            break;
          }
          if (!txn_st.IsDeadlock() &&
              txn_st.code() != StatusCode::kLockTimeout &&
              !txn_st.IsTransactionAborted()) {
            hard_failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_GT(committed.load(), 0);
  EXPECT_EQ(Fires(*ref), committed.load() * kEventsPerTxn);
}

}  // namespace
}  // namespace ode
