// Write-ahead-log tests: framing, checksums, torn tails, truncation.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace ode {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ode_wal_test.log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

WalRecord Upsert(TxnId txn, uint64_t oid, const std::string& image) {
  WalRecord r;
  r.type = WalRecord::Type::kUpsert;
  r.txn = txn;
  r.oid = Oid(oid);
  r.image.assign(image.begin(), image.end());
  return r;
}

TEST_F(WalTest, AppendAndReadBack) {
  Wal wal(path_);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append({WalRecord::Type::kBegin, 1, Oid(), "", {}}).ok());
  ASSERT_TRUE(wal.Append(Upsert(1, 42, "payload")).ok());
  WalRecord root;
  root.type = WalRecord::Type::kSetRoot;
  root.txn = 1;
  root.oid = Oid(42);
  root.name = "catalog";
  ASSERT_TRUE(wal.Append(root).ok());
  ASSERT_TRUE(wal.Append({WalRecord::Type::kCommit, 1, Oid(), "", {}}).ok());
  ASSERT_TRUE(wal.Sync().ok());

  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].type, WalRecord::Type::kBegin);
  EXPECT_EQ(records[1].type, WalRecord::Type::kUpsert);
  EXPECT_EQ(records[1].oid, Oid(42));
  EXPECT_EQ(std::string(records[1].image.begin(), records[1].image.end()),
            "payload");
  EXPECT_EQ(records[2].name, "catalog");
  EXPECT_EQ(records[3].type, WalRecord::Type::kCommit);
  ASSERT_TRUE(wal.Close().ok());
}

TEST_F(WalTest, MissingFileReadsEmpty) {
  Wal wal(path_);
  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  EXPECT_TRUE(records.empty());
}

TEST_F(WalTest, TornTailIsDiscarded) {
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open().ok());
    ASSERT_TRUE(wal.Append(Upsert(1, 1, "first")).ok());
    ASSERT_TRUE(wal.Append(Upsert(1, 2, "second")).ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Chop a few bytes off the end (simulated crash mid-append).
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - 5), 0);
  std::fclose(f);

  Wal wal(path_);
  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].oid, Oid(1));
}

// Flips one byte at `offset` in the log file.
void FlipByteAt(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, offset, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, offset, SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);
}

// Byte offset where record `n` (0-based) starts.
long FrameOffset(const std::string& path, int n) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  long pos = 0;
  for (int i = 0; i < n; ++i) {
    std::fseek(f, pos, SEEK_SET);
    uint32_t len = 0;
    EXPECT_EQ(std::fread(&len, 4, 1, f), 1u);
    pos += 12 + static_cast<long>(len);
  }
  std::fclose(f);
  return pos;
}

TEST_F(WalTest, MidFileCorruptionIsReported) {
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open().ok());
    ASSERT_TRUE(wal.Append(Upsert(1, 1, "first")).ok());
    ASSERT_TRUE(wal.Append(Upsert(1, 2, "second")).ok());
    ASSERT_TRUE(wal.Append(Upsert(1, 3, "third")).ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Flip the second record's type byte: record 3 is still intact after
  // the damage, so this is mid-file corruption, not a torn tail.
  FlipByteAt(path_, FrameOffset(path_, 1) + 12);

  Wal wal(path_);
  std::vector<WalRecord> records;
  Status st = wal.ReadAll(&records);
  EXPECT_EQ(st.code(), StatusCode::kCorruption)
      << "intact records after the damage mean committed history would be "
         "lost: "
      << st.ToString();
  // The intact prefix is still salvaged.
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].oid, Oid(1));
}

TEST_F(WalTest, CorruptFinalRecordIsATornTail) {
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open().ok());
    ASSERT_TRUE(wal.Append(Upsert(1, 1, "first")).ok());
    ASSERT_TRUE(wal.Append(Upsert(1, 2, "second")).ok());
    ASSERT_TRUE(wal.Append(Upsert(1, 3, "third")).ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Damage the LAST record only: nothing intact follows, so this is
  // indistinguishable from a crash mid-append and is silently discarded.
  FlipByteAt(path_, FrameOffset(path_, 2) + 12);

  Wal wal(path_);
  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].oid, Oid(2));
}

TEST_F(WalTest, TruncateEmptiesTheLog) {
  Wal wal(path_);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append(Upsert(1, 1, "x")).ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.Truncate().ok());

  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  EXPECT_TRUE(records.empty());

  // The log is still usable after truncation.
  ASSERT_TRUE(wal.Append(Upsert(2, 2, "y")).ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].txn, 2u);
  ASSERT_TRUE(wal.Close().ok());
}

TEST_F(WalTest, LargeImagesRoundTrip) {
  Wal wal(path_);
  ASSERT_TRUE(wal.Open().ok());
  std::string big(100000, 'B');
  ASSERT_TRUE(wal.Append(Upsert(1, 7, big)).ok());
  ASSERT_TRUE(wal.Sync().ok());
  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].image.size(), big.size());
  ASSERT_TRUE(wal.Close().ok());
}

}  // namespace
}  // namespace ode
