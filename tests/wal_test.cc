// Write-ahead-log tests: framing, checksums, torn tails, truncation.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace ode {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ode_wal_test.log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

WalRecord Upsert(TxnId txn, uint64_t oid, const std::string& image) {
  WalRecord r;
  r.type = WalRecord::Type::kUpsert;
  r.txn = txn;
  r.oid = Oid(oid);
  r.image.assign(image.begin(), image.end());
  return r;
}

TEST_F(WalTest, AppendAndReadBack) {
  Wal wal(path_);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append({WalRecord::Type::kBegin, 1, Oid(), "", {}}).ok());
  ASSERT_TRUE(wal.Append(Upsert(1, 42, "payload")).ok());
  WalRecord root;
  root.type = WalRecord::Type::kSetRoot;
  root.txn = 1;
  root.oid = Oid(42);
  root.name = "catalog";
  ASSERT_TRUE(wal.Append(root).ok());
  ASSERT_TRUE(wal.Append({WalRecord::Type::kCommit, 1, Oid(), "", {}}).ok());
  ASSERT_TRUE(wal.Sync().ok());

  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].type, WalRecord::Type::kBegin);
  EXPECT_EQ(records[1].type, WalRecord::Type::kUpsert);
  EXPECT_EQ(records[1].oid, Oid(42));
  EXPECT_EQ(std::string(records[1].image.begin(), records[1].image.end()),
            "payload");
  EXPECT_EQ(records[2].name, "catalog");
  EXPECT_EQ(records[3].type, WalRecord::Type::kCommit);
  ASSERT_TRUE(wal.Close().ok());
}

TEST_F(WalTest, MissingFileReadsEmpty) {
  Wal wal(path_);
  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  EXPECT_TRUE(records.empty());
}

TEST_F(WalTest, TornTailIsDiscarded) {
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open().ok());
    ASSERT_TRUE(wal.Append(Upsert(1, 1, "first")).ok());
    ASSERT_TRUE(wal.Append(Upsert(1, 2, "second")).ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Chop a few bytes off the end (simulated crash mid-append).
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  ASSERT_EQ(ftruncate(fileno(f), size - 5), 0);
  std::fclose(f);

  Wal wal(path_);
  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].oid, Oid(1));
}

TEST_F(WalTest, CorruptChecksumStopsReplay) {
  {
    Wal wal(path_);
    ASSERT_TRUE(wal.Open().ok());
    ASSERT_TRUE(wal.Append(Upsert(1, 1, "first")).ok());
    ASSERT_TRUE(wal.Append(Upsert(1, 2, "second")).ok());
    ASSERT_TRUE(wal.Append(Upsert(1, 3, "third")).ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Flip a byte inside the second record's body.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  Wal wal(path_);
  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  EXPECT_LT(records.size(), 3u) << "replay stops at the corrupt record";
  if (!records.empty()) {
    EXPECT_EQ(records[0].oid, Oid(1));
  }
}

TEST_F(WalTest, TruncateEmptiesTheLog) {
  Wal wal(path_);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_TRUE(wal.Append(Upsert(1, 1, "x")).ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.Truncate().ok());

  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  EXPECT_TRUE(records.empty());

  // The log is still usable after truncation.
  ASSERT_TRUE(wal.Append(Upsert(2, 2, "y")).ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].txn, 2u);
  ASSERT_TRUE(wal.Close().ok());
}

TEST_F(WalTest, LargeImagesRoundTrip) {
  Wal wal(path_);
  ASSERT_TRUE(wal.Open().ok());
  std::string big(100000, 'B');
  ASSERT_TRUE(wal.Append(Upsert(1, 7, big)).ok());
  ASSERT_TRUE(wal.Sync().ok());
  std::vector<WalRecord> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].image.size(), big.size());
  ASSERT_TRUE(wal.Close().ok());
}

}  // namespace
}  // namespace ode
