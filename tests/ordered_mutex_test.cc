// Tests for the ranked-mutex runtime validator (src/common/ordered_mutex.h).
//
// The death tests only exist in builds where ODE_LOCK_RANK_CHECKS is 1
// (Debug and every sanitizer lane — see the top-level CMakeLists); in a
// Release tree the validator is compiled out and those tests GTEST_SKIP.

#include "common/ordered_mutex.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace ode {
namespace {

// Private ranks so these tests cannot collide with real subsystem locks
// acquired by other code on the same thread.
constexpr uint16_t kOuter = 1000;
constexpr uint16_t kMiddle = 1100;
constexpr uint16_t kInner = 1200;

TEST(OrderedMutexTest, IncreasingRankOrderPasses) {
  OrderedMutex outer(kOuter, "test.outer");
  OrderedMutex middle(kMiddle, "test.middle");
  OrderedMutex inner(kInner, "test.inner");
  MutexLock a(&outer);
  MutexLock b(&middle);
  MutexLock c(&inner);
#if ODE_LOCK_RANK_CHECKS
  EXPECT_EQ(rank_internal::HeldCount(), 3u);
#endif
}

TEST(OrderedMutexTest, NonLifoReleaseIsLegal) {
  OrderedMutex outer(kOuter, "test.outer");
  OrderedMutex inner(kInner, "test.inner");
  outer.lock();
  inner.lock();
  outer.unlock();  // release the OUTER lock first
  inner.unlock();
#if ODE_LOCK_RANK_CHECKS
  EXPECT_EQ(rank_internal::HeldCount(), 0u);
#endif
}

TEST(OrderedMutexTest, ReacquireAfterReleaseAtSameRank) {
  // Sequential (not nested) same-rank acquisition is fine — the rule
  // constrains only what is held simultaneously.
  OrderedMutex stripe_a(kMiddle, "test.stripe_a");
  OrderedMutex stripe_b(kMiddle, "test.stripe_b");
  { MutexLock a(&stripe_a); }
  { MutexLock b(&stripe_b); }
}

TEST(OrderedMutexDeathTest, OutOfOrderAcquireAborts) {
#if !ODE_LOCK_RANK_CHECKS
  GTEST_SKIP() << "rank validator compiled out (ODE_LOCK_RANK_CHECKS=0)";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedMutex outer(kOuter, "test.outer");
  OrderedMutex inner(kInner, "test.inner");
  EXPECT_DEATH(
      {
        MutexLock a(&inner);
        MutexLock b(&outer);  // rank 1000 while holding 1200
      },
      "lock-rank violation");
#endif
}

TEST(OrderedMutexDeathTest, DuplicateRankAcquireAborts) {
  // Two same-rank stripes held at once — the nesting the stripe design
  // promises never happens.
#if !ODE_LOCK_RANK_CHECKS
  GTEST_SKIP() << "rank validator compiled out (ODE_LOCK_RANK_CHECKS=0)";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedMutex stripe_a(kMiddle, "test.stripe_a");
  OrderedMutex stripe_b(kMiddle, "test.stripe_b");
  EXPECT_DEATH(
      {
        MutexLock a(&stripe_a);
        MutexLock b(&stripe_b);
      },
      "lock-rank violation");
#endif
}

TEST(OrderedMutexDeathTest, SelfDeadlockAbortsInsteadOfHanging) {
  // NoteAcquire runs BEFORE blocking, so a recursive lock() aborts with
  // a diagnostic instead of deadlocking the test binary.
#if !ODE_LOCK_RANK_CHECKS
  GTEST_SKIP() << "rank validator compiled out (ODE_LOCK_RANK_CHECKS=0)";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedMutex mu(kOuter, "test.mu");
  EXPECT_DEATH(
      {
        mu.lock();
        mu.lock();  // same mutex: rank not strictly greater
      },
      "recursive lock or shared->exclusive");
#endif
}

TEST(OrderedMutexDeathTest, SharedThenExclusiveUpgradeAborts) {
  // std::shared_mutex deadlocks on an in-place upgrade; the validator
  // turns that hang into an abort (shared and exclusive share a rank).
#if !ODE_LOCK_RANK_CHECKS
  GTEST_SKIP() << "rank validator compiled out (ODE_LOCK_RANK_CHECKS=0)";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  OrderedSharedMutex mu(kMiddle, "test.shared");
  EXPECT_DEATH(
      {
        mu.lock_shared();
        mu.lock();
      },
      "lock-rank violation");
#endif
}

TEST(OrderedMutexTest, SharedAcquisitionsTrackAndRelease) {
  OrderedSharedMutex mu(kMiddle, "test.shared");
  {
    ReaderMutexLock r(&mu);
#if ODE_LOCK_RANK_CHECKS
    EXPECT_EQ(rank_internal::HeldCount(), 1u);
#endif
  }
  {
    WriterMutexLock w(&mu);
#if ODE_LOCK_RANK_CHECKS
    EXPECT_EQ(rank_internal::HeldCount(), 1u);
#endif
  }
#if ODE_LOCK_RANK_CHECKS
  EXPECT_EQ(rank_internal::HeldCount(), 0u);
#endif
}

TEST(OrderedMutexTest, HeldStackIsPerThread) {
  // The validator must not confuse one thread's held set with
  // another's: both threads hold their own out-of-rank-order PAIR of
  // locks relative to each other, which is fine — order is per-thread.
  OrderedMutex outer(kOuter, "test.outer");
  OrderedMutex inner(kInner, "test.inner");
  std::atomic<bool> t1_has_inner{false};
  std::atomic<bool> t2_done{false};

  std::thread t1([&] {
    MutexLock a(&inner);  // holds ONLY the high-rank lock
    t1_has_inner.store(true);
    while (!t2_done.load()) std::this_thread::yield();
  });
  std::thread t2([&] {
    while (!t1_has_inner.load()) std::this_thread::yield();
    // This thread's stack is empty, so taking the low-rank lock is
    // legal even though t1 currently holds a higher rank.
    MutexLock b(&outer);
#if ODE_LOCK_RANK_CHECKS
    EXPECT_EQ(rank_internal::HeldCount(), 1u);
#endif
    t2_done.store(true);
  });
  t1.join();
  t2.join();
#if ODE_LOCK_RANK_CHECKS
  EXPECT_EQ(rank_internal::HeldCount(), 0u);
#endif
}

TEST(OrderedMutexTest, CondVarWaitKeepsRankBookkeeping) {
  // The wait releases and reacquires through the tracked adapter; after
  // it returns the thread must still be recorded as holding the mutex.
  OrderedMutex mu(kOuter, "test.cv_mu");
  CondVar cv;
  bool ready = false;

  std::thread waker([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  });

  {
    MutexLock lock(&mu);
    cv.Wait(mu, [&]() ODE_NO_THREAD_SAFETY_ANALYSIS { return ready; });
#if ODE_LOCK_RANK_CHECKS
    EXPECT_EQ(rank_internal::HeldCount(), 1u);
#endif
    // Still holding mu: a deeper lock must be acquirable...
    OrderedMutex inner(kInner, "test.cv_inner");
    MutexLock deep(&inner);
  }
  waker.join();
#if ODE_LOCK_RANK_CHECKS
  EXPECT_EQ(rank_internal::HeldCount(), 0u);
#endif
}

TEST(OrderedMutexTest, CondVarWaitForTimesOut) {
  OrderedMutex mu(kOuter, "test.cv_mu");
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_FALSE(cv.WaitFor(mu, std::chrono::milliseconds(5),
                          []() ODE_NO_THREAD_SAFETY_ANALYSIS { return false; }));
#if ODE_LOCK_RANK_CHECKS
  EXPECT_EQ(rank_internal::HeldCount(), 1u);
#endif
}

TEST(OrderedMutexTest, ManyThreadsContendWithoutFalsePositives) {
  // TSan-friendly stress: threads hammer a correct outer->inner order;
  // the validator must stay silent and the thread-local stacks must not
  // interfere.
  OrderedMutex outer(kOuter, "test.outer");
  OrderedMutex inner(kInner, "test.inner");
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        MutexLock a(&outer);
        MutexLock b(&inner);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  MutexLock a(&outer);
  EXPECT_EQ(counter, 8 * 200);
}

}  // namespace
}  // namespace ode
