// Transaction-manager tests: lifecycle, hook ordering, abort-from-hook,
// outcome tracking, system transactions.

#include "txn/transaction_manager.h"

#include <gtest/gtest.h>

#include "storage/mm_storage_manager.h"

namespace ode {
namespace {

class TxnTest : public ::testing::Test {
 protected:
  TxnTest() : store_(""), txns_(&store_, &locks_) {
    Status st = store_.Open();
    EXPECT_TRUE(st.ok());
  }
  ~TxnTest() override {
    Status st = store_.Close();
    EXPECT_TRUE(st.ok());
  }

  MMStorageManager store_;
  LockManager locks_;
  TransactionManager txns_;
};

TEST_F(TxnTest, BeginCommit) {
  auto txn = txns_.Begin();
  ASSERT_TRUE(txn.ok());
  TxnId id = (*txn)->id();
  EXPECT_TRUE((*txn)->active());
  EXPECT_FALSE((*txn)->system());
  ASSERT_TRUE(txns_.Commit(*txn).ok());
  EXPECT_EQ(txns_.Outcome(id), TxnState::kCommitted);
  EXPECT_EQ(txns_.commits(), 1u);
}

TEST_F(TxnTest, BeginAbort) {
  auto txn = txns_.Begin();
  ASSERT_TRUE(txn.ok());
  TxnId id = (*txn)->id();
  ASSERT_TRUE(txns_.Abort(*txn).ok());
  EXPECT_EQ(txns_.Outcome(id), TxnState::kAborted);
  EXPECT_EQ(txns_.aborts(), 1u);
}

TEST_F(TxnTest, DistinctMonotonicIds) {
  auto a = txns_.Begin();
  auto b = txns_.Begin();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT((*a)->id(), (*b)->id());
  ASSERT_TRUE(txns_.Commit(*a).ok());
  ASSERT_TRUE(txns_.Commit(*b).ok());
}

TEST_F(TxnTest, SystemTransactionsFlagged) {
  auto txn = txns_.Begin(/*system=*/true);
  ASSERT_TRUE(txn.ok());
  EXPECT_TRUE((*txn)->system());
  ASSERT_TRUE(txns_.Commit(*txn).ok());
}

TEST_F(TxnTest, CommitReleasesLocks) {
  auto txn = txns_.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(locks_.Acquire((*txn)->id(), Oid(5), LockMode::kExclusive).ok());
  ASSERT_TRUE(txns_.Commit(*txn).ok());
  // A new transaction can take the lock immediately.
  auto other = txns_.Begin();
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(
      locks_.Acquire((*other)->id(), Oid(5), LockMode::kExclusive).ok());
  ASSERT_TRUE(txns_.Commit(*other).ok());
}

TEST_F(TxnTest, HookOrderOnCommit) {
  std::vector<std::string> order;
  txns_.SetPreCommitHook([&](Transaction*) {
    order.push_back("pre-commit");
    return Status::OK();
  });
  txns_.SetPostCommitHook([&](Transaction*) {
    order.push_back("post-commit");
    return Status::OK();
  });
  txns_.SetPreAbortHook([&](Transaction*) {
    order.push_back("pre-abort");
    return Status::OK();
  });
  txns_.SetPostAbortHook([&](Transaction*) {
    order.push_back("post-abort");
    return Status::OK();
  });

  auto txn = txns_.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txns_.Commit(*txn).ok());
  EXPECT_EQ(order, (std::vector<std::string>{"pre-commit", "post-commit"}));
}

TEST_F(TxnTest, HookOrderOnAbort) {
  std::vector<std::string> order;
  txns_.SetPreAbortHook([&](Transaction*) {
    order.push_back("pre-abort");
    return Status::OK();
  });
  txns_.SetPostAbortHook([&](Transaction*) {
    order.push_back("post-abort");
    return Status::OK();
  });
  auto txn = txns_.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txns_.Abort(*txn).ok());
  EXPECT_EQ(order, (std::vector<std::string>{"pre-abort", "post-abort"}));
}

TEST_F(TxnTest, NonExplicitAbortSkipsPreAbortHook) {
  bool pre_abort_ran = false;
  txns_.SetPreAbortHook([&](Transaction*) {
    pre_abort_ran = true;
    return Status::OK();
  });
  auto txn = txns_.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txns_.Abort(*txn, /*explicit_request=*/false).ok());
  EXPECT_FALSE(pre_abort_ran)
      << "before-tabort events only fire for explicit abort requests (§6)";
}

TEST_F(TxnTest, PreCommitAbortTurnsCommitIntoRollback) {
  bool vetoed = false;
  txns_.SetPreCommitHook([&](Transaction* txn) -> Status {
    if (vetoed) return Status::OK();  // only veto the first commit
    vetoed = true;
    txn->RequestAbort("deferred veto");
    return Status::TransactionAborted("deferred veto");
  });
  auto txn = txns_.Begin();
  ASSERT_TRUE(txn.ok());
  TxnId id = (*txn)->id();
  // The transaction's write must roll back.
  auto oid = store_.Allocate(id, Slice(std::string("doomed")));
  ASSERT_TRUE(oid.ok());

  Status st = txns_.Commit(*txn);
  EXPECT_TRUE(st.IsTransactionAborted());
  EXPECT_EQ(txns_.Outcome(id), TxnState::kAborted);

  auto check = txns_.Begin();
  ASSERT_TRUE(check.ok());
  EXPECT_FALSE(store_.Exists((*check)->id(), *oid));
  ASSERT_TRUE(txns_.Commit(*check).ok());
}

TEST_F(TxnTest, PostCommitHookMayStartSystemTransactions) {
  // Models detached trigger actions: the post-commit hook runs work in a
  // fresh system transaction.
  Oid written;
  txns_.SetPostCommitHook([&](Transaction* txn) -> Status {
    if (txn->system()) return Status::OK();  // don't recurse
    ODE_ASSIGN_OR_RETURN(Transaction * sys, txns_.Begin(/*system=*/true));
    ODE_ASSIGN_OR_RETURN(
        Oid oid, store_.Allocate(sys->id(), Slice(std::string("detached"))));
    written = oid;
    return txns_.Commit(sys);
  });

  auto txn = txns_.Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(txns_.Commit(*txn).ok());

  auto check = txns_.Begin();
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(store_.Exists((*check)->id(), written));
  ASSERT_TRUE(txns_.Commit(*check).ok());
}

TEST_F(TxnTest, OutcomeOfUnknownTxnIsActive) {
  EXPECT_EQ(txns_.Outcome(9999), TxnState::kActive);
}

TEST_F(TxnTest, RequestAbortRecordsReason) {
  auto txn = txns_.Begin();
  ASSERT_TRUE(txn.ok());
  (*txn)->RequestAbort("because tests");
  EXPECT_TRUE((*txn)->abort_requested());
  EXPECT_EQ((*txn)->abort_reason(), "because tests");
  ASSERT_TRUE(txns_.Abort(*txn).ok());
}

}  // namespace
}  // namespace ode
