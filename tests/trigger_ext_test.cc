// Tests for the §8 "future work" extensions implemented in this
// reproduction: local (transient) triggers, event attributes, declarative
// constraints, inter-object (group) triggers, and timed triggers.

#include <gtest/gtest.h>

#include "odepp/params.h"
#include "odepp/session.h"

namespace ode {
namespace {

struct Gauge {
  int64_t value = 0;
  int64_t fires = 0;
  std::string log;

  void Add(int64_t amount) { value += amount; }
  void Mark(int32_t tag) { log += std::to_string(tag) + ";"; }

  void Encode(Encoder& enc) const {
    enc.PutI64(value);
    enc.PutI64(fires);
    enc.PutString(log);
  }
  static Result<Gauge> Decode(Decoder& dec) {
    Gauge g;
    ODE_RETURN_NOT_OK(dec.GetI64(&g.value));
    ODE_RETURN_NOT_OK(dec.GetI64(&g.fires));
    ODE_RETURN_NOT_OK(dec.GetString(&g.log));
    return g;
  }
};

class ExtensionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_.DeclareClass<Gauge>("Gauge")
        .Event("after Add")
        .Event("after Mark")
        .Event("Alarm")
        .Method("Add", &Gauge::Add)
        .Method("Mark", &Gauge::Mark)
        .Mask("BigAdd()",
              [](const Gauge&, MaskEvalContext& ctx) -> Result<bool> {
                // Event attribute: the Add amount (§8 future work).
                auto args = UnpackParams<int64_t>(ctx.event_args());
                if (!args.ok()) return args.status();
                return std::get<0>(*args) > 100;
              })
        .Trigger("OnAdd", "after Add",
                 [](Gauge& g, TriggerFireContext&) -> Status {
                   ++g.fires;
                   return Status::OK();
                 },
                 CouplingMode::kImmediate, /*perpetual=*/true)
        .Trigger("OnBigAdd", "after Add & BigAdd()",
                 [](Gauge& g, TriggerFireContext&) -> Status {
                   ++g.fires;
                   return Status::OK();
                 },
                 CouplingMode::kImmediate, /*perpetual=*/true)
        .Trigger("OnAlarm", "Alarm",
                 [](Gauge& g, TriggerFireContext&) -> Status {
                   ++g.fires;
                   return Status::OK();
                 },
                 CouplingMode::kImmediate, /*perpetual=*/true)
        // Note the any* separator: this class declares `before tcomplete`
        // (via the Constraint below), so that event is in every trigger's
        // alphabet and would break a contiguous two-Mark sequence at each
        // commit boundary.
        .Trigger("PairWatch", "after Mark, any*, after Mark",
                 [](Gauge& g, TriggerFireContext&) -> Status {
                   ++g.fires;
                   return Status::OK();
                 },
                 CouplingMode::kImmediate, /*perpetual=*/false)
        .Constraint("NonNegative",
                    [](const Gauge& g, MaskEvalContext&) -> Result<bool> {
                      return g.value >= 0;
                    },
                    "gauge went negative");
    ASSERT_TRUE(schema_.Freeze().ok());
    auto session = Session::Open(StorageKind::kMainMemory, "", &schema_);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    s_ = std::move(session).value();
  }

  PRef<Gauge> NewGauge(int64_t value = 0) {
    PRef<Gauge> ref;
    Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
      Gauge g;
      g.value = value;
      auto r = s_->New(txn, g);
      ODE_RETURN_NOT_OK(r.status());
      ref = *r;
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return ref;
  }

  Gauge Load(PRef<Gauge> ref) {
    Gauge out;
    Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
      auto g = s_->Load(txn, ref);
      ODE_RETURN_NOT_OK(g.status());
      out = *g;
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  }

  Schema schema_;
  std::unique_ptr<Session> s_;
};

// ------------------------------------------------------- local triggers

TEST_F(ExtensionTest, LocalTriggerFiresWithinItsTransaction) {
  PRef<Gauge> g = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->ActivateLocal(txn, g, "OnAdd").status());
    ODE_RETURN_NOT_OK(s_->Invoke(txn, g, &Gauge::Add, int64_t{5}));
    auto v = s_->Load(txn, g);
    ODE_RETURN_NOT_OK(v.status());
    EXPECT_EQ(v->fires, 1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST_F(ExtensionTest, LocalTriggerDiesAtEndOfTransaction) {
  PRef<Gauge> g = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->ActivateLocal(txn, g, "OnAdd").status();
  });
  ASSERT_TRUE(st.ok());
  // Next transaction: the local rule is gone.
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Invoke(txn, g, &Gauge::Add, int64_t{5});
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(Load(g).fires, 0)
      << "local rules are deallocated at end-of-transaction (§8)";
}

TEST_F(ExtensionTest, LocalTriggerNeedsNoPersistentStorage) {
  PRef<Gauge> g = NewGauge();
  uint64_t objects_before = s_->db()->store()->stats().objects;
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->ActivateLocal(txn, g, "OnAdd").status());
    return s_->Invoke(txn, g, &Gauge::Add, int64_t{5});
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(s_->db()->store()->stats().objects, objects_before)
      << "no TriggerState object, no index growth (§8: 'No persistent "
         "storage is required for such triggers')";
}

TEST_F(ExtensionTest, LocalTriggerExplicitDeactivation) {
  PRef<Gauge> g = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto id = s_->ActivateLocal(txn, g, "OnAdd");
    ODE_RETURN_NOT_OK(id.status());
    ODE_RETURN_NOT_OK(s_->DeactivateLocal(txn, *id));
    ODE_RETURN_NOT_OK(s_->Invoke(txn, g, &Gauge::Add, int64_t{5}));
    auto v = s_->Load(txn, g);
    ODE_RETURN_NOT_OK(v.status());
    EXPECT_EQ(v->fires, 0);
    // Double-deactivation is an error.
    EXPECT_TRUE(s_->DeactivateLocal(txn, *id).IsNotFound());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST_F(ExtensionTest, OnceOnlyLocalTriggerFiresOnce) {
  PRef<Gauge> g = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->ActivateLocal(txn, g, "PairWatch").status());
    ODE_RETURN_NOT_OK(s_->Invoke(txn, g, &Gauge::Mark, 1));
    ODE_RETURN_NOT_OK(s_->Invoke(txn, g, &Gauge::Mark, 2));  // fires
    ODE_RETURN_NOT_OK(s_->Invoke(txn, g, &Gauge::Mark, 3));
    ODE_RETURN_NOT_OK(s_->Invoke(txn, g, &Gauge::Mark, 4));  // must not
    auto v = s_->Load(txn, g);
    ODE_RETURN_NOT_OK(v.status());
    EXPECT_EQ(v->fires, 1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST_F(ExtensionTest, LocalAndPersistentTriggersCoexist) {
  PRef<Gauge> g = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Activate(txn, g, "OnAdd").status();  // persistent
  });
  ASSERT_TRUE(st.ok());
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->ActivateLocal(txn, g, "OnAdd").status());
    return s_->Invoke(txn, g, &Gauge::Add, int64_t{1});
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(Load(g).fires, 2) << "both the persistent and the local "
                                 "activation fired";
}

// ------------------------------------------------------ event attributes

TEST_F(ExtensionTest, MaskSeesInvocationArguments) {
  PRef<Gauge> g = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Activate(txn, g, "OnBigAdd").status();
  });
  ASSERT_TRUE(st.ok());
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->Invoke(txn, g, &Gauge::Add, int64_t{50}));
    ODE_RETURN_NOT_OK(s_->Invoke(txn, g, &Gauge::Add, int64_t{500}));
    ODE_RETURN_NOT_OK(s_->Invoke(txn, g, &Gauge::Add, int64_t{70}));
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(Load(g).fires, 1) << "only the Add(500) satisfies the mask";
}

// ------------------------------------------------------------ constraints

TEST_F(ExtensionTest, ConstraintAbortsViolatingCommit) {
  PRef<Gauge> g = NewGauge(10);
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Activate(txn, g, "NonNegative").status();
  });
  ASSERT_TRUE(st.ok());

  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Invoke(txn, g, &Gauge::Add, int64_t{-50});
  });
  EXPECT_TRUE(st.IsTransactionAborted()) << st.ToString();
  EXPECT_NE(st.message().find("gauge went negative"), std::string::npos);
  EXPECT_EQ(Load(g).value, 10) << "violating transaction rolled back";
}

TEST_F(ExtensionTest, ConstraintAllowsValidCommit) {
  PRef<Gauge> g = NewGauge(10);
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Activate(txn, g, "NonNegative").status();
  });
  ASSERT_TRUE(st.ok());
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Invoke(txn, g, &Gauge::Add, int64_t{-5});
  });
  EXPECT_TRUE(st.ok()) << "value 5 >= 0: constraint holds";
  EXPECT_EQ(Load(g).value, 5);
}

TEST_F(ExtensionTest, ConstraintCheckedAtCommitNotMidTransaction) {
  PRef<Gauge> g = NewGauge(10);
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Activate(txn, g, "NonNegative").status();
  });
  ASSERT_TRUE(st.ok());
  // Temporarily violate, then repair before commit: must succeed.
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->Invoke(txn, g, &Gauge::Add, int64_t{-100}));
    return s_->Invoke(txn, g, &Gauge::Add, int64_t{200});
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(Load(g).value, 110);
}

// ---------------------------------------------------- inter-object triggers

TEST_F(ExtensionTest, GroupTriggerSpansObjects) {
  PRef<Gauge> a = NewGauge(), b = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    // "after Mark, after Mark" completed by events from TWO objects.
    return s_->ActivateGroup<Gauge>(txn, {a, b}, "PairWatch").status();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Invoke(txn, a, &Gauge::Mark, 1);
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(Load(a).fires, 0) << "one Mark is not enough";

  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Invoke(txn, b, &Gauge::Mark, 2);
  });
  ASSERT_TRUE(st.ok());
  // Fires with anchor a (the primary anchor) as the action's object.
  EXPECT_EQ(Load(a).fires, 1)
      << "the second Mark — on the OTHER object — completed the pattern";
  EXPECT_EQ(Load(b).fires, 0);
}

TEST_F(ExtensionTest, GroupTriggerOnceOnlyDeactivatesEverywhere) {
  PRef<Gauge> a = NewGauge(), b = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->ActivateGroup<Gauge>(txn, {a, b}, "PairWatch").status();
  });
  ASSERT_TRUE(st.ok());
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->Invoke(txn, a, &Gauge::Mark, 1));
    ODE_RETURN_NOT_OK(s_->Invoke(txn, b, &Gauge::Mark, 2));  // fires
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    EXPECT_EQ(s_->triggers()->ActiveCount(txn, a.oid()), 0);
    EXPECT_EQ(s_->triggers()->ActiveCount(txn, b.oid()), 0);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST_F(ExtensionTest, GroupTriggerMaskSeesAllAnchors) {
  // A trigger whose mask inspects every anchor: fire an Alarm-like check
  // when the SUM of two gauges exceeds a bound.
  Schema schema;
  schema.DeclareClass<Gauge>("Gauge")
      .Event("after Add")
      .Method("Add", &Gauge::Add)
      .Mask("SumOver100()",
            [](const Gauge&, MaskEvalContext& ctx) -> Result<bool> {
              int64_t sum = 0;
              for (Oid anchor : ctx.anchors()) {
                std::vector<char> image;
                ODE_RETURN_NOT_OK(
                    ctx.db()->ReadObject(ctx.txn(), anchor, &image));
                Decoder dec(image);
                std::string cls;
                ODE_RETURN_NOT_OK(dec.GetString(&cls));
                auto g = Gauge::Decode(dec);
                ODE_RETURN_NOT_OK(g.status());
                sum += g->value;
              }
              return sum > 100;
            })
      .Trigger("SumWatch", "after Add & SumOver100()",
               [](Gauge& g, TriggerFireContext&) -> Status {
                 ++g.fires;
                 return Status::OK();
               },
               CouplingMode::kImmediate, /*perpetual=*/true);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Session& s = **session;

  PRef<Gauge> x, y;
  Status st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto rx = s.New(txn, Gauge{});
    ODE_RETURN_NOT_OK(rx.status());
    x = *rx;
    auto ry = s.New(txn, Gauge{});
    ODE_RETURN_NOT_OK(ry.status());
    y = *ry;
    return s.ActivateGroup<Gauge>(txn, {x, y}, "SumWatch").status();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  st = s.WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s.Invoke(txn, x, &Gauge::Add, int64_t{60}));
    // sum = 60: no fire yet.
    return s.Invoke(txn, y, &Gauge::Add, int64_t{70});
    // sum = 130: fires, anchored at x.
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto gx = s.Load(txn, x);
    ODE_RETURN_NOT_OK(gx.status());
    EXPECT_EQ(gx->fires, 1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST_F(ExtensionTest, GroupTriggerRejectsWrongTypes) {
  PRef<Gauge> a = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    PRef<Gauge> bogus(Oid(999999));
    auto r = s_->ActivateGroup<Gauge>(txn, {a, bogus}, "PairWatch");
    EXPECT_FALSE(r.ok());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

// -------------------------------------------------------- timed triggers

TEST_F(ExtensionTest, ScheduledEventFiresOnAdvance) {
  PRef<Gauge> g = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->Activate(txn, g, "OnAlarm").status());
    auto now = s_->Now(txn);
    ODE_RETURN_NOT_OK(now.status());
    EXPECT_EQ(*now, 0);
    return s_->ScheduleUserEvent(txn, g, "Alarm", 100);
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  // Advancing short of the due time fires nothing.
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->AdvanceTime(txn, 50);
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(Load(g).fires, 0);

  // Crossing the due time fires the trigger.
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->AdvanceTime(txn, 150);
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(Load(g).fires, 1);

  // The entry was consumed.
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->AdvanceTime(txn, 300);
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(Load(g).fires, 1);
}

TEST_F(ExtensionTest, ScheduledEventsFireInTimeOrder) {
  PRef<Gauge> g = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->Activate(txn, g, "OnAlarm").status());
    // Scheduled out of order.
    ODE_RETURN_NOT_OK(s_->ScheduleUserEvent(txn, g, "Alarm", 30));
    ODE_RETURN_NOT_OK(s_->ScheduleUserEvent(txn, g, "Alarm", 10));
    ODE_RETURN_NOT_OK(s_->ScheduleUserEvent(txn, g, "Alarm", 20));
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->AdvanceTime(txn, 100);
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(Load(g).fires, 3);
}

TEST_F(ExtensionTest, SchedulingValidation) {
  PRef<Gauge> g = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->AdvanceTime(txn, 100));
    // Not after `now`.
    EXPECT_EQ(s_->ScheduleUserEvent(txn, g, "Alarm", 100).code(),
              StatusCode::kInvalidArgument);
    // Unknown event.
    EXPECT_EQ(s_->ScheduleUserEvent(txn, g, "Snooze", 200).code(),
              StatusCode::kInvalidArgument);
    // Member event, not a user event.
    EXPECT_EQ(s_->ScheduleUserEvent(txn, g, "after Add", 200).code(),
              StatusCode::kInvalidArgument);
    // Time cannot go backwards.
    EXPECT_EQ(s_->AdvanceTime(txn, 50).code(),
              StatusCode::kInvalidArgument);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST_F(ExtensionTest, ScheduleRollsBackOnAbort) {
  PRef<Gauge> g = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Activate(txn, g, "OnAlarm").status();
  });
  ASSERT_TRUE(st.ok());
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->ScheduleUserEvent(txn, g, "Alarm", 10));
    return Status::Internal("force abort");
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->AdvanceTime(txn, 100);
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(Load(g).fires, 0) << "aborted schedule must not fire";
}

// ------------------------------------------- extension interactions

TEST_F(ExtensionTest, EventArgsReachDetachedActions) {
  // Event attributes captured at detection must reach actions that run
  // later in a system transaction (!dependent coupling).
  Schema schema;
  int64_t seen = -1;
  schema.DeclareClass<Gauge>("Gauge")
      .Event("after Add")
      .Method("Add", &Gauge::Add)
      .Trigger("Detached", "after Add",
               [&seen](Gauge&, TriggerFireContext& ctx) -> Status {
                 auto args = UnpackParams<int64_t>(ctx.event_args());
                 if (!args.ok()) return args.status();
                 seen = std::get<0>(*args);
                 return Status::OK();
               },
               CouplingMode::kIndependent, true);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Session& s = **session;
  PRef<Gauge> g;
  Status st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto r = s.New(txn, Gauge{});
    ODE_RETURN_NOT_OK(r.status());
    g = *r;
    return s.Activate(txn, g, "Detached").status();
  });
  ASSERT_TRUE(st.ok());
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    return s.Invoke(txn, g, &Gauge::Add, int64_t{4321});
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(seen, 4321)
      << "arguments travel with the queued action into the system txn";
}

TEST_F(ExtensionTest, GroupTriggerWithDeferredCoupling) {
  Schema schema;
  schema.DeclareClass<Gauge>("Gauge")
      .Event("after Mark")
      .Method("Mark", &Gauge::Mark)
      .Trigger("DeferredPair", "after Mark, any*, after Mark",
               [](Gauge& g, TriggerFireContext&) -> Status {
                 ++g.fires;
                 return Status::OK();
               },
               CouplingMode::kDeferred, false);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Session& s = **session;

  PRef<Gauge> a, b;
  Status st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto ra = s.New(txn, Gauge{});
    ODE_RETURN_NOT_OK(ra.status());
    a = *ra;
    auto rb = s.New(txn, Gauge{});
    ODE_RETURN_NOT_OK(rb.status());
    b = *rb;
    return s.ActivateGroup<Gauge>(txn, {a, b}, "DeferredPair").status();
  });
  ASSERT_TRUE(st.ok());

  st = s.WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s.Invoke(txn, a, &Gauge::Mark, 1));
    ODE_RETURN_NOT_OK(s.Invoke(txn, b, &Gauge::Mark, 2));
    // Deferred: not fired yet inside the transaction.
    auto g = s.Load(txn, a);
    ODE_RETURN_NOT_OK(g.status());
    EXPECT_EQ(g->fires, 0);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  Status check = s.WithTransaction([&](Transaction* txn) -> Status {
    auto g = s.Load(txn, a);
    ODE_RETURN_NOT_OK(g.status());
    EXPECT_EQ(g->fires, 1) << "fired at commit, anchored at a";
    return Status::OK();
  });
  ASSERT_TRUE(check.ok());
}

TEST_F(ExtensionTest, TimerFiresDeferredTrigger) {
  Schema schema;
  schema.DeclareClass<Gauge>("Gauge")
      .Event("Alarm")
      .Trigger("LateAlarm", "Alarm",
               [](Gauge& g, TriggerFireContext&) -> Status {
                 ++g.fires;
                 return Status::OK();
               },
               CouplingMode::kDeferred, true);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Session& s = **session;
  PRef<Gauge> g;
  Status st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto r = s.New(txn, Gauge{});
    ODE_RETURN_NOT_OK(r.status());
    g = *r;
    ODE_RETURN_NOT_OK(s.Activate(txn, g, "LateAlarm").status());
    return s.ScheduleUserEvent(txn, g, "Alarm", 5);
  });
  ASSERT_TRUE(st.ok());
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    return s.AdvanceTime(txn, 10);
  });
  ASSERT_TRUE(st.ok());
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto v = s.Load(txn, g);
    ODE_RETURN_NOT_OK(v.status());
    EXPECT_EQ(v->fires, 1)
        << "the timer-posted event queued a deferred action that ran at "
           "the advancing transaction's commit";
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST_F(ExtensionTest, LocalTriggerRollsBackWithAbortedWork) {
  // A local trigger's action writes to the object; aborting the txn
  // rolls that back like everything else.
  PRef<Gauge> g = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->ActivateLocal(txn, g, "OnAdd").status());
    ODE_RETURN_NOT_OK(s_->Invoke(txn, g, &Gauge::Add, int64_t{5}));
    return Status::Internal("force abort");
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  Gauge v = Load(g);
  EXPECT_EQ(v.fires, 0);
  EXPECT_EQ(v.value, 0);
}

TEST_F(ExtensionTest, ScheduleForDeletedObjectIsSkipped) {
  PRef<Gauge> g = NewGauge();
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    ODE_RETURN_NOT_OK(s_->ScheduleUserEvent(txn, g, "Alarm", 10));
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Free(txn, g);
  });
  ASSERT_TRUE(st.ok());
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->AdvanceTime(txn, 100);
  });
  EXPECT_TRUE(st.ok()) << "due events for deleted objects are skipped: "
                       << st.ToString();
}

}  // namespace
}  // namespace ode
