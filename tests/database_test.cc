// Object-manager (Database) tests: locked object access, persistent
// roots, per-database metatype ids, clusters.

#include "objstore/database.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace ode {
namespace {

class DatabaseTest : public ::testing::TestWithParam<StorageKind> {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ode_database_test.db";
    Cleanup();
    OpenDb();
  }
  void TearDown() override {
    if (db_ != nullptr) {
      ASSERT_TRUE(db_->Close().ok());
    }
    Cleanup();
  }

  void Cleanup() {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }

  void OpenDb() {
    auto db = Database::Open(GetParam(), path_);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(db).value();
  }

  void ReopenDb() {
    ASSERT_TRUE(db_->Close().ok());
    db_.reset();
    OpenDb();
  }

  Transaction* Begin() {
    auto txn = db_->txns()->Begin();
    EXPECT_TRUE(txn.ok());
    return txn.ValueOr(nullptr);
  }

  std::string path_;
  std::unique_ptr<Database> db_;
};

TEST_P(DatabaseTest, ObjectLifecycle) {
  Transaction* txn = Begin();
  auto oid = db_->NewObject(txn, Slice(std::string("obj")));
  ASSERT_TRUE(oid.ok());
  std::vector<char> out;
  ASSERT_TRUE(db_->ReadObject(txn, *oid, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "obj");
  ASSERT_TRUE(db_->WriteObject(txn, *oid, Slice(std::string("new"))).ok());
  ASSERT_TRUE(db_->FreeObject(txn, *oid).ok());
  EXPECT_FALSE(db_->ObjectExists(txn, *oid));
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_P(DatabaseTest, ReadTakesSharedWriteTakesExclusive) {
  Transaction* setup = Begin();
  auto oid = db_->NewObject(setup, Slice(std::string("x")));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(db_->txns()->Commit(setup).ok());

  Transaction* reader = Begin();
  std::vector<char> out;
  ASSERT_TRUE(db_->ReadObject(reader, *oid, &out).ok());
  EXPECT_TRUE(db_->locks()->Holds(reader->id(), *oid, LockMode::kShared));
  EXPECT_FALSE(
      db_->locks()->Holds(reader->id(), *oid, LockMode::kExclusive));

  Transaction* reader2 = Begin();
  ASSERT_TRUE(db_->ReadObject(reader2, *oid, &out).ok())
      << "shared readers coexist";

  ASSERT_TRUE(db_->txns()->Commit(reader).ok());
  ASSERT_TRUE(db_->txns()->Commit(reader2).ok());
  Transaction* writer = Begin();
  ASSERT_TRUE(db_->ReadObjectForUpdate(writer, *oid, &out).ok());
  EXPECT_TRUE(db_->locks()->Holds(writer->id(), *oid, LockMode::kExclusive));
  ASSERT_TRUE(db_->txns()->Commit(writer).ok());
}

TEST_P(DatabaseTest, MetatypeIdsAreStablePerDatabase) {
  Transaction* txn = Begin();
  auto cred = db_->MetatypeId(txn, "CredCard");
  auto person = db_->MetatypeId(txn, "Person");
  ASSERT_TRUE(cred.ok());
  ASSERT_TRUE(person.ok());
  EXPECT_NE(*cred, *person);
  // Idempotent within the txn.
  EXPECT_EQ(db_->MetatypeId(txn, "CredCard").ValueOr(0), *cred);
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());

  // Stable across reopen ("each database has its own metatype object").
  ReopenDb();
  Transaction* txn2 = Begin();
  EXPECT_EQ(db_->MetatypeId(txn2, "CredCard").ValueOr(0), *cred);
  EXPECT_EQ(db_->MetatypeName(txn2, *cred).ValueOr(""), "CredCard");
  EXPECT_TRUE(db_->MetatypeName(txn2, 9999).status().IsNotFound());
  ASSERT_TRUE(db_->txns()->Commit(txn2).ok());
}

TEST_P(DatabaseTest, ClustersCollectObjects) {
  Transaction* txn = Begin();
  std::vector<Oid> members;
  for (int i = 0; i < 5; ++i) {
    auto oid = db_->NewObject(txn, Slice(std::string("m")));
    ASSERT_TRUE(oid.ok());
    ASSERT_TRUE(db_->AddToCluster(txn, "cards", *oid).ok());
    members.push_back(*oid);
  }
  auto contents = db_->ClusterContents(txn, "cards");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->size(), 5u);

  ASSERT_TRUE(db_->RemoveFromCluster(txn, "cards", members[0]).ok());
  contents = db_->ClusterContents(txn, "cards");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->size(), 4u);
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());

  // Cluster membership persists.
  ReopenDb();
  Transaction* txn2 = Begin();
  contents = db_->ClusterContents(txn2, "cards");
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->size(), 4u);
  ASSERT_TRUE(db_->txns()->Commit(txn2).ok());
}

TEST_P(DatabaseTest, EmptyClusterReadsEmpty) {
  Transaction* txn = Begin();
  auto contents = db_->ClusterContents(txn, "nothing");
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->empty());
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_P(DatabaseTest, RootsRoundTripThroughDatabase) {
  Transaction* txn = Begin();
  auto oid = db_->NewObject(txn, Slice(std::string("rooted")));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(db_->SetRoot(txn, "entry", *oid).ok());
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());

  ReopenDb();
  Transaction* txn2 = Begin();
  EXPECT_EQ(db_->GetRoot(txn2, "entry").ValueOr(Oid()), *oid);
  ASSERT_TRUE(db_->txns()->Commit(txn2).ok());
}

INSTANTIATE_TEST_SUITE_P(BothKinds, DatabaseTest,
                         ::testing::Values(StorageKind::kDisk,
                                           StorageKind::kMainMemory),
                         [](const ::testing::TestParamInfo<StorageKind>& i) {
                           return i.param == StorageKind::kDisk ? "disk"
                                                                : "mm";
                         });

}  // namespace
}  // namespace ode
