// Storage-manager contract tests, parameterized over the two
// implementations (disk / EOS analogue and main-memory / Dali analogue) —
// they must be behaviorally identical, as MM-Ode and disk Ode are fully
// source-compatible (paper §5.6).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>

#include "common/random.h"
#include "storage/disk_storage_manager.h"
#include "storage/mm_storage_manager.h"
#include "storage/storage_manager.h"

namespace ode {
namespace {

enum class Kind { kDisk, kMainMemory };

struct StorageTestParam {
  Kind kind;
  const char* name;
};

class StorageTest : public ::testing::TestWithParam<StorageTestParam> {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ode_storage_" +
            GetParam().name + ".db";
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
    store_ = MakeStore();
    ASSERT_TRUE(store_->Open().ok());
  }

  void TearDown() override {
    if (store_ != nullptr) {
      ASSERT_TRUE(store_->Close().ok());
    }
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }

  std::unique_ptr<StorageManager> MakeStore() {
    if (GetParam().kind == Kind::kDisk) {
      return std::make_unique<DiskStorageManager>(path_);
    }
    return std::make_unique<MMStorageManager>(path_);
  }

  /// Close the store and reopen a fresh instance (clean restart).
  void Reopen() {
    ASSERT_TRUE(store_->Close().ok());
    store_ = MakeStore();
    ASSERT_TRUE(store_->Open().ok());
  }

  Oid Put(TxnId txn, const std::string& data) {
    auto oid = store_->Allocate(txn, Slice(data));
    EXPECT_TRUE(oid.ok()) << oid.status().ToString();
    return oid.ValueOr(Oid());
  }

  std::string Get(TxnId txn, Oid oid) {
    std::vector<char> out;
    Status st = store_->Read(txn, oid, &out);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return std::string(out.begin(), out.end());
  }

  std::string path_;
  std::unique_ptr<StorageManager> store_;
};

TEST_P(StorageTest, AllocateReadWriteFree) {
  ASSERT_TRUE(store_->BeginTxn(1).ok());
  Oid oid = Put(1, "v1");
  EXPECT_EQ(Get(1, oid), "v1");
  ASSERT_TRUE(store_->Write(1, oid, Slice(std::string("v2"))).ok());
  EXPECT_EQ(Get(1, oid), "v2");
  ASSERT_TRUE(store_->Free(1, oid).ok());
  std::vector<char> out;
  EXPECT_TRUE(store_->Read(1, oid, &out).IsNotFound());
  ASSERT_TRUE(store_->CommitTxn(1).ok());
}

TEST_P(StorageTest, DistinctOidsAssigned) {
  ASSERT_TRUE(store_->BeginTxn(1).ok());
  Oid a = Put(1, "a"), b = Put(1, "b");
  EXPECT_NE(a, b);
  ASSERT_TRUE(store_->CommitTxn(1).ok());
}

TEST_P(StorageTest, AbortDiscardsEverything) {
  ASSERT_TRUE(store_->BeginTxn(1).ok());
  Oid keep = Put(1, "keep");
  ASSERT_TRUE(store_->CommitTxn(1).ok());

  ASSERT_TRUE(store_->BeginTxn(2).ok());
  Oid lost = Put(2, "lost");
  ASSERT_TRUE(store_->Write(2, keep, Slice(std::string("dirty"))).ok());
  ASSERT_TRUE(store_->Free(2, keep).ok());
  ASSERT_TRUE(store_->AbortTxn(2).ok());

  ASSERT_TRUE(store_->BeginTxn(3).ok());
  EXPECT_EQ(Get(3, keep), "keep");
  EXPECT_FALSE(store_->Exists(3, lost));
  ASSERT_TRUE(store_->CommitTxn(3).ok());
}

TEST_P(StorageTest, TransactionsSeeOwnWritesNotOthers) {
  ASSERT_TRUE(store_->BeginTxn(1).ok());
  Oid oid = Put(1, "base");
  ASSERT_TRUE(store_->CommitTxn(1).ok());

  ASSERT_TRUE(store_->BeginTxn(2).ok());
  ASSERT_TRUE(store_->BeginTxn(3).ok());
  ASSERT_TRUE(store_->Write(2, oid, Slice(std::string("t2"))).ok());
  EXPECT_EQ(Get(2, oid), "t2") << "txn sees its own write";
  EXPECT_EQ(Get(3, oid), "base") << "other txn sees committed state";
  ASSERT_TRUE(store_->CommitTxn(2).ok());
  ASSERT_TRUE(store_->CommitTxn(3).ok());
}

TEST_P(StorageTest, WriteToMissingObjectFails) {
  ASSERT_TRUE(store_->BeginTxn(1).ok());
  EXPECT_TRUE(store_->Write(1, Oid(9999), Slice(std::string("x")))
                  .IsNotFound());
  EXPECT_TRUE(store_->Free(1, Oid(9999)).IsNotFound());
  ASSERT_TRUE(store_->CommitTxn(1).ok());
}

TEST_P(StorageTest, DoubleFreeInSameTxnFails) {
  ASSERT_TRUE(store_->BeginTxn(1).ok());
  Oid oid = Put(1, "x");
  ASSERT_TRUE(store_->Free(1, oid).ok());
  EXPECT_TRUE(store_->Free(1, oid).IsNotFound());
  ASSERT_TRUE(store_->CommitTxn(1).ok());
}

TEST_P(StorageTest, Roots) {
  ASSERT_TRUE(store_->BeginTxn(1).ok());
  EXPECT_TRUE(store_->GetRoot(1, "catalog").status().IsNotFound());
  Oid oid = Put(1, "the catalog");
  ASSERT_TRUE(store_->SetRoot(1, "catalog", oid).ok());
  EXPECT_EQ(store_->GetRoot(1, "catalog").ValueOr(Oid()), oid);
  ASSERT_TRUE(store_->CommitTxn(1).ok());

  ASSERT_TRUE(store_->BeginTxn(2).ok());
  EXPECT_EQ(store_->GetRoot(2, "catalog").ValueOr(Oid()), oid);
  ASSERT_TRUE(store_->CommitTxn(2).ok());
}

TEST_P(StorageTest, RootUpdateRollsBackOnAbort) {
  ASSERT_TRUE(store_->BeginTxn(1).ok());
  Oid a = Put(1, "a");
  ASSERT_TRUE(store_->SetRoot(1, "r", a).ok());
  ASSERT_TRUE(store_->CommitTxn(1).ok());

  ASSERT_TRUE(store_->BeginTxn(2).ok());
  Oid b = Put(2, "b");
  ASSERT_TRUE(store_->SetRoot(2, "r", b).ok());
  EXPECT_EQ(store_->GetRoot(2, "r").ValueOr(Oid()), b);
  ASSERT_TRUE(store_->AbortTxn(2).ok());

  ASSERT_TRUE(store_->BeginTxn(3).ok());
  EXPECT_EQ(store_->GetRoot(3, "r").ValueOr(Oid()), a);
  ASSERT_TRUE(store_->CommitTxn(3).ok());
}

TEST_P(StorageTest, PersistsAcrossReopen) {
  ASSERT_TRUE(store_->BeginTxn(1).ok());
  Oid oid = Put(1, "durable");
  ASSERT_TRUE(store_->SetRoot(1, "r", oid).ok());
  ASSERT_TRUE(store_->CommitTxn(1).ok());

  Reopen();

  ASSERT_TRUE(store_->BeginTxn(2).ok());
  EXPECT_EQ(store_->GetRoot(2, "r").ValueOr(Oid()), oid);
  EXPECT_EQ(Get(2, oid), "durable");
  // Fresh oids must not collide with recovered ones.
  Oid fresh = Put(2, "fresh");
  EXPECT_NE(fresh, oid);
  ASSERT_TRUE(store_->CommitTxn(2).ok());
}

TEST_P(StorageTest, LargeObjectsRoundTrip) {
  // Exercises the disk manager's overflow chains (and MM's plain path).
  ASSERT_TRUE(store_->BeginTxn(1).ok());
  std::string big(50000, 'L');
  for (size_t i = 0; i < big.size(); i += 97) big[i] = 'M';
  Oid oid = Put(1, big);
  EXPECT_EQ(Get(1, oid), big);
  ASSERT_TRUE(store_->CommitTxn(1).ok());

  Reopen();

  ASSERT_TRUE(store_->BeginTxn(2).ok());
  EXPECT_EQ(Get(2, oid), big);
  // Shrink it back to a small object (frees the overflow chain).
  ASSERT_TRUE(store_->Write(2, oid, Slice(std::string("small"))).ok());
  ASSERT_TRUE(store_->CommitTxn(2).ok());
  ASSERT_TRUE(store_->BeginTxn(3).ok());
  EXPECT_EQ(Get(3, oid), "small");
  ASSERT_TRUE(store_->CommitTxn(3).ok());
}

TEST_P(StorageTest, GrowAcrossInlineBoundary) {
  ASSERT_TRUE(store_->BeginTxn(1).ok());
  Oid oid = Put(1, "tiny");
  ASSERT_TRUE(store_->CommitTxn(1).ok());
  ASSERT_TRUE(store_->BeginTxn(2).ok());
  std::string big(10000, 'G');
  ASSERT_TRUE(store_->Write(2, oid, Slice(big)).ok());
  ASSERT_TRUE(store_->CommitTxn(2).ok());
  ASSERT_TRUE(store_->BeginTxn(3).ok());
  EXPECT_EQ(Get(3, oid), big);
  ASSERT_TRUE(store_->CommitTxn(3).ok());
}

TEST_P(StorageTest, ManyObjectsSurviveReopen) {
  constexpr int kCount = 500;
  ASSERT_TRUE(store_->BeginTxn(1).ok());
  std::vector<Oid> oids;
  for (int i = 0; i < kCount; ++i) {
    oids.push_back(Put(1, "obj-" + std::to_string(i)));
  }
  ASSERT_TRUE(store_->CommitTxn(1).ok());

  Reopen();

  ASSERT_TRUE(store_->BeginTxn(2).ok());
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(Get(2, oids[i]), "obj-" + std::to_string(i));
  }
  ASSERT_TRUE(store_->CommitTxn(2).ok());
  EXPECT_EQ(store_->stats().objects, static_cast<uint64_t>(kCount));
}

TEST_P(StorageTest, RandomizedAgainstReferenceModel) {
  // Random committed/aborted transactions vs an in-memory reference.
  Random rng(0xbeef);
  std::unordered_map<uint64_t, std::string> model;
  std::vector<Oid> known;
  TxnId next_txn = 10;

  for (int round = 0; round < 60; ++round) {
    TxnId txn = next_txn++;
    ASSERT_TRUE(store_->BeginTxn(txn).ok());
    auto local = model;  // txn-local view
    std::vector<Oid> local_known = known;
    for (int op = 0; op < 20; ++op) {
      int what = static_cast<int>(rng.Uniform(3));
      if (what == 0 || local_known.empty()) {
        std::string data(rng.Uniform(3000), static_cast<char>('a' + rng.Uniform(26)));
        auto oid = store_->Allocate(txn, Slice(data));
        ASSERT_TRUE(oid.ok());
        local[oid->value()] = data;
        local_known.push_back(*oid);
      } else if (what == 1) {
        Oid oid = local_known[rng.Uniform(local_known.size())];
        if (local.count(oid.value()) == 0) continue;
        std::string data(rng.Uniform(3000), 'w');
        ASSERT_TRUE(store_->Write(txn, oid, Slice(data)).ok());
        local[oid.value()] = data;
      } else {
        Oid oid = local_known[rng.Uniform(local_known.size())];
        if (local.count(oid.value()) == 0) continue;
        ASSERT_TRUE(store_->Free(txn, oid).ok());
        local.erase(oid.value());
      }
    }
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(store_->AbortTxn(txn).ok());
    } else {
      ASSERT_TRUE(store_->CommitTxn(txn).ok());
      model = std::move(local);
      known = std::move(local_known);
    }
  }

  // Verify the committed state object by object.
  TxnId check = next_txn++;
  ASSERT_TRUE(store_->BeginTxn(check).ok());
  for (const auto& [oid, data] : model) {
    std::vector<char> out;
    ASSERT_TRUE(store_->Read(check, Oid(oid), &out).ok());
    EXPECT_EQ(std::string(out.begin(), out.end()), data);
  }
  for (Oid oid : known) {
    EXPECT_EQ(store_->Exists(check, oid), model.count(oid.value()) == 1);
  }
  ASSERT_TRUE(store_->CommitTxn(check).ok());

  // And once more after a clean restart.
  Reopen();
  check = next_txn++;
  ASSERT_TRUE(store_->BeginTxn(check).ok());
  for (const auto& [oid, data] : model) {
    std::vector<char> out;
    ASSERT_TRUE(store_->Read(check, Oid(oid), &out).ok());
    EXPECT_EQ(std::string(out.begin(), out.end()), data);
  }
  ASSERT_TRUE(store_->CommitTxn(check).ok());
}

INSTANTIATE_TEST_SUITE_P(
    BothManagers, StorageTest,
    ::testing::Values(StorageTestParam{Kind::kDisk, "disk"},
                      StorageTestParam{Kind::kMainMemory, "mm"}),
    [](const ::testing::TestParamInfo<StorageTestParam>& info) {
      return info.param.name;
    });

// Committed-state reads go through the shared_mutex fast lane and must
// not serialize behind in-flight group commits: two reader threads hammer
// a committed object and a committed root while two committer threads
// push write transactions through the group-commit pipeline (linger
// enabled so readers overlap real batched-fsync windows). Readers must
// always see the committed values; committers must get read-your-writes
// on their own acked commits. Run under TSAN this is also the data-race
// regression test for the split commit/state locking.
TEST(DiskStorageConcurrency, ReadersDoNotBlockBehindGroupFsync) {
  const std::string path =
      ::testing::TempDir() + "/ode_storage_readers_vs_committers.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  DiskStorageManager::Options options;
  options.group_commit = true;
  options.commit_batch_max_txns = 4;
  options.commit_batch_max_wait_us = 100;
  DiskStorageManager store(path, options);
  ASSERT_TRUE(store.Open().ok());

  const std::string kAnchorPayload = "anchor payload";
  ASSERT_TRUE(store.BeginTxn(1).ok());
  auto anchor = store.Allocate(1, Slice(kAnchorPayload));
  ASSERT_TRUE(anchor.ok());
  ASSERT_TRUE(store.SetRoot(1, "anchor", *anchor).ok());
  ASSERT_TRUE(store.CommitTxn(1).ok());

  constexpr int kCommitters = 2;
  constexpr int kReaders = 2;
  constexpr int kTxnsPerCommitter = 50;
  std::atomic<int> committers_done{0};
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int c = 0; c < kCommitters; ++c) {
    threads.emplace_back([&, c] {
      for (int t = 0; t < kTxnsPerCommitter && !failed.load(); ++t) {
        TxnId id = 100 + static_cast<TxnId>(c) * kTxnsPerCommitter + t;
        std::string payload = "c" + std::to_string(c) + ":" +
                              std::to_string(t);
        if (!store.BeginTxn(id).ok()) { failed = true; break; }
        auto oid = store.Allocate(id, Slice(payload));
        if (!oid.ok() || !store.CommitTxn(id).ok()) { failed = true; break; }
        // Read-your-writes: the acked commit must be visible to a
        // fresh transaction immediately.
        TxnId check = 10000 + id;
        std::vector<char> out;
        if (!store.BeginTxn(check).ok() ||
            !store.Read(check, *oid, &out).ok() ||
            std::string(out.begin(), out.end()) != payload ||
            !store.CommitTxn(check).ok()) {
          failed = true;
          break;
        }
      }
      committers_done.fetch_add(1);
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      TxnId id = 50000 + static_cast<TxnId>(r) * 1000000;
      while (committers_done.load() < kCommitters && !failed.load()) {
        ++id;
        std::vector<char> out;
        if (!store.BeginTxn(id).ok() ||
            !store.Read(id, *anchor, &out).ok() ||
            std::string(out.begin(), out.end()) != kAnchorPayload ||
            store.GetRoot(id, "anchor").ValueOr(Oid()) != *anchor ||
            !store.CommitTxn(id).ok()) {
          failed = true;
          break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_TRUE(store.Close().ok());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

}  // namespace
}  // namespace ode
