// Span tracer, firing provenance, and flight recorder tests:
//
//  - end-to-end timeline of a committed disk transaction (begin, locks,
//    postings with FSM transitions, WAL append, the shared group-commit
//    fsync batch, page apply, commit ack) in causal order;
//  - ExplainFiring reconstructing the paper's relative(a,b,c) perpetual
//    trigger chain across transactions;
//  - Chrome trace_event JSON validity (checked by a small recursive-
//    descent parser) and the flight-recorder dump on a wedged store;
//  - FaultInjectionEnv crash callbacks;
//  - concurrent-writer torture for both span rings (run under TSan via
//    the `trace` ctest label);
//  - TriggerTraceRing wraparound/drop accounting regression;
//  - the ODE_LOG_LEVEL parse table;
//  - Prometheus text exposition conformance of MetricsSnapshot::ToText.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/tracing.h"
#include "odepp/session.h"
#include "storage/disk_storage_manager.h"
#include "storage/fault_injection_env.h"
#include "trigger/provenance.h"
#include "trigger/trigger_trace.h"

namespace ode {
namespace {

// ------------------------------------------------------------ test schema

struct Cell {
  int32_t count = 0;
  int32_t fired = 0;

  void Bump() { ++count; }

  void Encode(Encoder& enc) const {
    enc.PutI32(count);
    enc.PutI32(fired);
  }
  static Result<Cell> Decode(Decoder& dec) {
    Cell c;
    ODE_RETURN_NOT_OK(dec.GetI32(&c.count));
    ODE_RETURN_NOT_OK(dec.GetI32(&c.fired));
    return c;
  }
};

// Declares Cell with the TripleBump perpetual composite trigger — the
// paper's relative(a, b, c): every third Bump fires the action.
void DeclareCellSchema(Schema* schema) {
  schema->DeclareClass<Cell>("Cell")
      .Event("after Bump")
      .Method("Bump", &Cell::Bump)
      .Trigger(
          "TripleBump", "relative(after Bump, after Bump, after Bump)",
          [](Cell& c, TriggerFireContext&) -> Status {
            ++c.fired;
            return Status::OK();
          },
          CouplingMode::kImmediate, /*perpetual=*/true);
  ASSERT_TRUE(schema->Freeze().ok());
}

Session::Options TracedOptions() {
  Session::Options opts;
  opts.trace_sample_every_n_txns = 1;  // trace every transaction
  return opts;
}

size_t IndexOfKind(const std::vector<Span>& spans, SpanKind kind) {
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].kind == kind) return i;
  }
  return spans.size();
}

// ------------------------------------------- minimal JSON validity checker

// Recursive-descent checker for the JSON grammar — enough to prove the
// exporter's output would load in chrome://tracing / Perfetto.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* word) {
    size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

// ------------------------------------------------------- session fixtures

class TraceSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ode_trace_test.db";
    Cleanup();
    DeclareCellSchema(&schema_);
  }
  void TearDown() override { Cleanup(); }

  void Cleanup() {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
    std::remove((path_ + ".flight.json").c_str());
  }

  Schema schema_;
  std::string path_;
};

TEST_F(TraceSessionTest, DiskCommitTimelineOrdered) {
  auto session =
      Session::Open(StorageKind::kDisk, path_, &schema_, TracedOptions());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  Session* s = session->get();

  PRef<Cell> cell{Oid()};
  TriggerId trig;
  ASSERT_TRUE(s->WithTransaction([&](Transaction* txn) -> Status {
                 ODE_ASSIGN_OR_RETURN(cell, s->New(txn, Cell{}));
                 ODE_ASSIGN_OR_RETURN(trig,
                                      s->Activate(txn, cell, "TripleBump"));
                 return Status::OK();
               }).ok());

  auto txn = s->Begin();
  ASSERT_TRUE(txn.ok());
  const TxnId id = (*txn)->id();
  ASSERT_TRUE(s->Invoke(*txn, cell, &Cell::Bump).ok());
  ASSERT_TRUE(s->Commit(*txn).ok());

  std::vector<Span> spans = s->tracer()->TxnSpans(id);
  ASSERT_FALSE(spans.empty());

  // Sequence numbers are strictly increasing (chronological order).
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].seq, spans[i].seq);
  }

  // The full commit pipeline appears, in causal order: begin, the lock
  // for the bump, the event posting and the FSM move it caused, the
  // pre-commit stage, WAL append, the group-commit fsync batch the txn
  // rode, page apply, and the ack.
  const size_t begin = IndexOfKind(spans, SpanKind::kTxnBegin);
  const size_t lock = IndexOfKind(spans, SpanKind::kLockAcquire);
  const size_t posted = IndexOfKind(spans, SpanKind::kEventPosted);
  const size_t moved = IndexOfKind(spans, SpanKind::kFsmTransition);
  const size_t pre = IndexOfKind(spans, SpanKind::kPreCommit);
  const size_t wal = IndexOfKind(spans, SpanKind::kWalAppend);
  const size_t fsync = IndexOfKind(spans, SpanKind::kFsyncBatch);
  const size_t apply = IndexOfKind(spans, SpanKind::kPageApply);
  const size_t ack = IndexOfKind(spans, SpanKind::kCommitAck);
  ASSERT_LT(begin, spans.size()) << "missing txn-begin";
  ASSERT_LT(lock, spans.size()) << "missing lock-acquire";
  ASSERT_LT(posted, spans.size()) << "missing event-posted";
  ASSERT_LT(moved, spans.size()) << "missing fsm-transition";
  ASSERT_LT(pre, spans.size()) << "missing pre-commit";
  ASSERT_LT(wal, spans.size()) << "missing wal-append";
  ASSERT_LT(fsync, spans.size()) << "missing fsync-batch";
  ASSERT_LT(apply, spans.size()) << "missing page-apply";
  ASSERT_LT(ack, spans.size()) << "missing commit-ack";
  EXPECT_LT(begin, lock);
  EXPECT_LT(lock, posted);
  EXPECT_LT(posted, moved);
  EXPECT_LT(moved, pre);
  EXPECT_LT(pre, wal);
  EXPECT_LT(wal, fsync);
  EXPECT_LT(fsync, apply);
  EXPECT_LT(apply, ack);
  EXPECT_EQ(ack + 1, spans.size()) << "commit-ack must be the last span";

  // The fsync span carries the batch ticket: a committed-alone txn rode
  // a batch of size 1 with a positive ticket id.
  EXPECT_GE(spans[fsync].b, 1);
  EXPECT_GT(spans[fsync].a, 0);

  // The FSM transition belongs to the activated trigger and moved the
  // machine off its start state.
  EXPECT_EQ(spans[moved].trigger, trig);
  EXPECT_NE(spans[moved].a, spans[moved].b);

  const std::string timeline = s->DumpTimeline(id);
  EXPECT_NE(timeline.find("txn-begin"), std::string::npos);
  EXPECT_NE(timeline.find("fsm-transition"), std::string::npos);
  EXPECT_NE(timeline.find("wal-append"), std::string::npos);
  EXPECT_NE(timeline.find("fsync-batch"), std::string::npos);
  EXPECT_NE(timeline.find("commit-ack"), std::string::npos);
  // The namer resolves event symbols to their declared names.
  EXPECT_NE(timeline.find("after Bump"), std::string::npos) << timeline;
}

TEST_F(TraceSessionTest, UnsampledTransactionRecordsNothing) {
  Session::Options opts;
  opts.trace_sample_every_n_txns = 1 << 30;  // sample (nearly) nothing
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema_, opts);
  ASSERT_TRUE(session.ok());
  Session* s = session->get();

  PRef<Cell> cell{Oid()};
  ASSERT_TRUE(s->WithTransaction([&](Transaction* txn) -> Status {
                 ODE_ASSIGN_OR_RETURN(cell, s->New(txn, Cell{}));
                 return s->Activate(txn, cell, "TripleBump").status();
               }).ok());

  auto txn = s->Begin();
  ASSERT_TRUE(txn.ok());
  const TxnId id = (*txn)->id();
  ASSERT_NE(id & ((1u << 30) - 1), 0u) << "txn id happened to sample";
  ASSERT_TRUE(s->Invoke(*txn, cell, &Cell::Bump).ok());
  ASSERT_TRUE(s->Commit(*txn).ok());

  EXPECT_TRUE(s->tracer()->TxnSpans(id).empty());
  EXPECT_NE(s->DumpTimeline(id).find("no spans recorded"),
            std::string::npos);
}

TEST_F(TraceSessionTest, ExplainFiringRelativeChain) {
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema_,
                               TracedOptions());
  ASSERT_TRUE(session.ok());
  Session* s = session->get();

  PRef<Cell> cell{Oid()};
  TriggerId trig;
  ASSERT_TRUE(s->WithTransaction([&](Transaction* txn) -> Status {
                 ODE_ASSIGN_OR_RETURN(cell, s->New(txn, Cell{}));
                 ODE_ASSIGN_OR_RETURN(trig,
                                      s->Activate(txn, cell, "TripleBump"));
                 return Status::OK();
               }).ok());

  // An unfired machine with no postings yet has no FSM activity.
  auto before = s->ExplainFiring(trig);
  EXPECT_TRUE(!before.ok() && before.status().IsNotFound());

  // Three bumps in three separate transactions drive relative(a,b,c)
  // to its accept state.
  std::vector<TxnId> bump_txns;
  for (int i = 0; i < 3; ++i) {
    auto txn = s->Begin();
    ASSERT_TRUE(txn.ok());
    bump_txns.push_back((*txn)->id());
    ASSERT_TRUE(s->Invoke(*txn, cell, &Cell::Bump).ok());
    ASSERT_TRUE(s->Commit(*txn).ok());
  }
  ASSERT_TRUE(s->WithTransaction([&](Transaction* txn) -> Status {
                 ODE_ASSIGN_OR_RETURN(Cell c, s->Load(txn, cell));
                 EXPECT_EQ(c.count, 3);
                 EXPECT_EQ(c.fired, 1);
                 return Status::OK();
               }).ok());

  auto explained = s->ExplainFiring(trig);
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  const FiringExplanation& e = explained.value();
  EXPECT_TRUE(e.fired);
  EXPECT_EQ(e.trigger, trig);
  ASSERT_EQ(e.steps.size(), 3u);
  EXPECT_EQ(e.firing_txn, bump_txns[2]);
  // The chain is connected: each step starts where the previous ended,
  // and the last step enters the accept state.
  for (size_t i = 0; i < e.steps.size(); ++i) {
    EXPECT_EQ(e.steps[i].txn, bump_txns[i]);
    EXPECT_NE(e.steps[i].symbol, 0u);
    if (i > 0) {
      EXPECT_EQ(e.steps[i].from_state, e.steps[i - 1].to_state);
    }
  }
  EXPECT_EQ(e.steps.back().to_state, e.accept_state);
  const std::string rendered = e.ToString();
  EXPECT_NE(rendered.find("FIRED"), std::string::npos) << rendered;

  // relative(a,b,c) is satisfied by history, so its accept state is
  // absorbing: with the trigger perpetual, every later bump re-fires.
  // The explanation tracks the latest firing's transaction but still
  // attributes it to the three events that drove the machine into
  // accept — there are no new transitions to report.
  for (int i = 0; i < 3; ++i) {
    auto txn = s->Begin();
    ASSERT_TRUE(txn.ok());
    bump_txns.push_back((*txn)->id());
    ASSERT_TRUE(s->Invoke(*txn, cell, &Cell::Bump).ok());
    ASSERT_TRUE(s->Commit(*txn).ok());
  }
  auto again = s->ExplainFiring(trig);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->steps.size(), 3u);
  EXPECT_EQ(again->firing_txn, bump_txns[5]);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(again->steps[i].txn, bump_txns[i]);
  }
  EXPECT_EQ(again->steps.back().to_state, again->accept_state);

  // A trigger with no recorded FSM activity is NotFound.
  auto missing = s->ExplainFiring(TriggerId(999999));
  EXPECT_TRUE(!missing.ok() && missing.status().IsNotFound());
}

TEST_F(TraceSessionTest, ChromeTraceJsonIsValidAndDumpable) {
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema_,
                               TracedOptions());
  ASSERT_TRUE(session.ok());
  Session* s = session->get();

  PRef<Cell> cell{Oid()};
  ASSERT_TRUE(s->WithTransaction([&](Transaction* txn) -> Status {
                 ODE_ASSIGN_OR_RETURN(cell, s->New(txn, Cell{}));
                 ODE_RETURN_NOT_OK(
                     s->Activate(txn, cell, "TripleBump").status());
                 return s->Invoke(txn, cell, &Cell::Bump);
               }).ok());

  const std::string json = s->ExportChromeTrace();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":"), std::string::npos);
  EXPECT_NE(json.find("fsm-transition"), std::string::npos);

  // The flight-recorder file form carries its reason and stays valid.
  const std::string dump_path = path_ + ".flight.json";
  ASSERT_TRUE(s->tracer()->DumpToFile(dump_path, "test \"dump\"\n"));
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dumped = buffer.str();
  EXPECT_TRUE(JsonChecker(dumped).Valid()) << dumped.substr(0, 400);
  EXPECT_NE(dumped.find("odeFlightRecorder"), std::string::npos);
  EXPECT_EQ(s->MetricsSnapshot().CounterValue(
                "ode_flight_recorder_dumps_total"),
            1u);
}

TEST_F(TraceSessionTest, FlightRecorderDumpsWhenStoreWedges) {
  FaultInjectionEnv env;
  DiskStorageManager::Options dopts;
  dopts.env = &env;
  auto session = Session::OpenWith(
      std::make_unique<DiskStorageManager>(path_, dopts), &schema_,
      TracedOptions());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  Session* s = session->get();

  PRef<Cell> cell{Oid()};
  ASSERT_TRUE(s->WithTransaction([&](Transaction* txn) -> Status {
                 ODE_ASSIGN_OR_RETURN(cell, s->New(txn, Cell{}));
                 return Status::OK();
               }).ok());

  // Fail the commit's WAL stage: the store wedges mid-commit, which
  // must auto-dump the flight recorder. The dump itself uses plain
  // stdio, so the injected faults cannot block it.
  SetLogLevel(LogLevel::kSilence);
  env.FailNextOps(50);
  auto txn = s->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(s->Invoke(*txn, cell, &Cell::Bump).ok());
  EXPECT_FALSE(s->Commit(*txn).ok());
  env.FailNextOps(0);
  SetLogLevel(LogLevel::kWarn);

  std::ifstream in(path_ + ".flight.json");
  ASSERT_TRUE(in.good()) << "wedge did not produce a flight-recorder dump";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dumped = buffer.str();
  EXPECT_TRUE(JsonChecker(dumped).Valid());
  EXPECT_NE(dumped.find("wedged"), std::string::npos);
  EXPECT_GE(s->MetricsSnapshot().CounterValue(
                "ode_flight_recorder_dumps_total"),
            1u);
}

// ------------------------------------------------ fault crash callbacks

TEST(FaultCrashCallbackTest, FiresOncePerCrashPointOutsideTheMutex) {
  const std::string path = ::testing::TempDir() + "/ode_cb_test";
  std::remove(path.c_str());
  FaultInjectionEnv env;
  std::vector<std::string> fired;
  // Calling back into the env here would deadlock if the callback ran
  // under the env mutex; crashed() taking the lock proves it does not.
  env.SetCrashCallback([&](const char* what) {
    EXPECT_TRUE(env.crashed());
    fired.push_back(what);
  });

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env.NewWritableFile(path, &file).ok());
  ASSERT_TRUE(file->Append(Slice("hello", 5)).ok());
  env.ArmCrashAfterNextSync();
  ASSERT_TRUE(file->Sync().ok());  // sync succeeds, then the crash trips
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "post-sync crash");

  // Ops after the crash fail but do not re-fire the callback.
  EXPECT_FALSE(file->Append(Slice("x", 1)).ok());
  EXPECT_EQ(fired.size(), 1u);

  // A crash-at-op point reports the op that lost power.
  env.ResetAfterCrash();
  env.SetTornWrites(false);
  env.SetCrashAtOp(env.ops() + 1);
  EXPECT_FALSE(file->Append(Slice("y", 1)).ok());
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], "append");
  ASSERT_TRUE(file->Close().ok());
  std::remove(path.c_str());
}

// ------------------------------------------- concurrent writers (TSan)

TEST(TracerConcurrencyTest, ParallelWritersNoTornSpans) {
  Tracer::Options topts;
  topts.span_capacity = 512;
  topts.sample_every_n_txns = 1;
  Tracer tracer(topts);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Span s;
        s.kind = SpanKind::kEventPosted;
        s.txn = static_cast<TxnId>(t + 1);
        s.a = i;
        s.b = static_cast<int64_t>(t + 1) * 1000003 + i;  // torn-write canary
        s.detail = std::to_string(t + 1) + ":" + std::to_string(i);
        tracer.Instant(std::move(s));
      }
    });
  }
  for (auto& th : threads) th.join();

  const std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 512u);
  EXPECT_EQ(tracer.total_recorded(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(tracer.total_dropped(), uint64_t{kThreads} * kPerThread - 512);
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (i > 0) {
      EXPECT_LT(spans[i - 1].seq, s.seq);  // monotone, no duplicates
    }
    // Every surviving span is internally consistent — all fields from
    // the same logical write.
    EXPECT_EQ(s.b, static_cast<int64_t>(s.txn) * 1000003 + s.a);
    EXPECT_EQ(s.detail, std::to_string(s.txn) + ":" + std::to_string(s.a));
  }
}

TEST(TriggerTraceRingConcurrencyTest, ParallelWritersNoTornEvents) {
  TriggerTraceRing ring(256);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceEvent e;
        e.kind = TraceEvent::Kind::kEventPosted;
        e.txn = static_cast<TxnId>(t + 1);
        e.a = i;
        e.b = (t + 1) * 100003 + i;  // torn-write canary
        ring.Record(e);
      }
    });
  }
  for (auto& th : threads) th.join();

  const std::vector<TraceEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 256u);
  EXPECT_EQ(ring.total_recorded(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(ring.total_dropped(), uint64_t{kThreads} * kPerThread - 256);
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) {
      EXPECT_LT(events[i - 1].seq, e.seq);
    }
    EXPECT_EQ(e.b, static_cast<int32_t>(e.txn) * 100003 + e.a);
  }
}

// --------------------------------- trigger trace ring drop accounting

TEST(TriggerTraceRingTest, WraparoundKeepsChronologicalOrder) {
  TriggerTraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.a = i;
    ring.Record(e);
  }
  const std::vector<TraceEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first across the wraparound point: 6, 7, 8, 9.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, static_cast<int32_t>(6 + i));
    EXPECT_EQ(events[i].seq, 6 + i);
  }
}

TEST(TriggerTraceRingTest, DropCounterTracksOverwritesNotClear) {
  MetricsRegistry registry;
  TriggerTraceRing ring(4);
  ring.BindMetrics(&registry);
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.a = i;
    ring.Record(e);
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  EXPECT_EQ(ring.total_dropped(), 6u);
  EXPECT_EQ(
      registry.Snapshot().CounterValue("ode_trigger_trace_dropped_total"),
      6u);
  std::string dump = ring.Dump();
  EXPECT_NE(dump.find("4 event(s) shown, 10 recorded (6 dropped)"),
            std::string::npos)
      << dump;

  // Regression: after Clear(), surfaced-then-cleared events must not be
  // re-reported as dropped (the old header computed total - shown).
  ring.Clear();
  ring.Record(TraceEvent{});
  EXPECT_EQ(ring.total_dropped(), 6u);
  dump = ring.Dump();
  EXPECT_NE(dump.find("1 event(s) shown, 11 recorded (6 dropped)"),
            std::string::npos)
      << dump;
}

// ----------------------------------------------- ODE_LOG_LEVEL parsing

TEST(LogLevelTest, ParseTable) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("ERROR"), LogLevel::kError);
  // `off` and its aliases map to the silence threshold.
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kSilence);
  EXPECT_EQ(ParseLogLevel("OFF"), LogLevel::kSilence);
  EXPECT_EQ(ParseLogLevel("none"), LogLevel::kSilence);
  EXPECT_EQ(ParseLogLevel("silence"), LogLevel::kSilence);
  // Unrecognized values parse to nothing — the env hook then warns once
  // and leaves the level unchanged.
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("warn "), std::nullopt);
  EXPECT_EQ(ParseLogLevel("2"), std::nullopt);
}

// -------------------------------------- Prometheus exposition conformance

TEST(MetricsTextTest, TypeLineOncePerFamilyWithSeriesGrouped) {
  MetricsRegistry registry;
  registry.GetCounter("foo_total{shard=\"a\"}")->Inc(1);
  registry.GetCounter("foo_total{shard=\"b\"}")->Inc(2);
  // Sorts BETWEEN "foo_total" and "foo_total{...}" ('{' > 'x'), so naive
  // sorted emission would split the foo_total family.
  registry.GetCounter("foo_totalx")->Inc(3);

  const std::string text = registry.Snapshot().ToText();
  auto count = [&text](const std::string& needle) {
    size_t n = 0;
    for (size_t pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count("# TYPE foo_total counter"), 1u) << text;
  EXPECT_EQ(count("# TYPE foo_totalx counter"), 1u) << text;
  EXPECT_NE(text.find("foo_total{shard=\"a\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("foo_total{shard=\"b\"} 2\n"), std::string::npos);
  // Both series sit directly under their family's TYPE line.
  const size_t type_pos = text.find("# TYPE foo_total counter");
  const size_t type_x_pos = text.find("# TYPE foo_totalx counter");
  const size_t series_a = text.find("foo_total{shard=\"a\"}");
  const size_t series_b = text.find("foo_total{shard=\"b\"}");
  EXPECT_LT(type_pos, series_a);
  EXPECT_LT(series_a, series_b);
  EXPECT_LT(series_b, type_x_pos) << text;
}

TEST(MetricsTextTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  // Raw quote, backslash, and newline inside label values.
  registry.GetCounter("esc_total{path=\"va\"lue\"}")->Inc(4);
  registry.GetCounter(std::string("esc2_total{p=\"a\nb\\c\"}"))->Inc(5);

  const std::string text = registry.Snapshot().ToText();
  EXPECT_NE(text.find("esc_total{path=\"va\\\"lue\"} 4\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("esc2_total{p=\"a\\nb\\\\c\"} 5\n"),
            std::string::npos)
      << text;
  // No raw newline may survive inside a series name.
  const size_t line_start = text.find("esc2_total{");
  ASSERT_NE(line_start, std::string::npos);
  const size_t line_end = text.find('\n', line_start);
  EXPECT_NE(text.substr(line_start, line_end - line_start).find("\\n"),
            std::string::npos);
}

TEST(MetricsTextTest, LabeledHistogramFoldsLabelsBeforeLe) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat_ns{op=\"put\"}", 1);
  h->Record(100);
  h->Record(5000);

  const std::string text = registry.Snapshot().ToText();
  EXPECT_NE(text.find("# TYPE lat_ns histogram"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_ns_bucket{op=\"put\",le=\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_ns_bucket{op=\"put\",le=\"+Inf\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_ns_sum{op=\"put\"} 5100\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_ns_count{op=\"put\"} 2\n"), std::string::npos)
      << text;
}

// --------------------------------------------------- tracer unit tests

TEST(TracerTest, SamplingGate) {
  Tracer::Options topts;
  topts.span_capacity = 16;
  topts.sample_every_n_txns = 4;
  Tracer tracer(topts);
  EXPECT_TRUE(tracer.enabled());
  EXPECT_EQ(tracer.sample_every(), 4u);
  EXPECT_TRUE(tracer.Sampled(4));
  EXPECT_TRUE(tracer.Sampled(8));
  EXPECT_FALSE(tracer.Sampled(3));
  EXPECT_FALSE(tracer.Sampled(5));

  // Non-power-of-two rounds up.
  topts.sample_every_n_txns = 5;
  tracer.Configure(topts);
  EXPECT_EQ(tracer.sample_every(), 8u);

  // Capacity 0 disables the tracer entirely.
  topts.span_capacity = 0;
  tracer.Configure(topts);
  EXPECT_FALSE(tracer.enabled());
  EXPECT_FALSE(tracer.Sampled(0));
  EXPECT_FALSE(tracer.Sampled(4));
}

TEST(TracerTest, WraparoundSnapshotStaysChronological) {
  Tracer::Options topts;
  topts.span_capacity = 4;
  topts.sample_every_n_txns = 1;
  Tracer tracer(topts);
  for (int i = 0; i < 11; ++i) {
    Span s;
    s.kind = SpanKind::kEventPosted;
    s.a = i;
    tracer.Instant(std::move(s));
  }
  const std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].a, static_cast<int64_t>(7 + i));
    EXPECT_EQ(spans[i].seq, 7 + i);
  }
  EXPECT_EQ(tracer.total_recorded(), 11u);
  EXPECT_EQ(tracer.total_dropped(), 7u);
}

}  // namespace
}  // namespace ode
