// Full-stack property test: for random trigger expressions and random
// user-event streams, the number of firings observed through the whole
// system (schema -> session -> persistent trigger state -> PostEvent)
// must equal the number of accepting positions of the reference NFA
// simulation over the same stream.

#include <gtest/gtest.h>

#include "expr_gen.h"
#include "odepp/session.h"

namespace ode {
namespace {

struct Probe {
  int64_t fires = 0;
  void Encode(Encoder& enc) const { enc.PutI64(fires); }
  static Result<Probe> Decode(Decoder& dec) {
    Probe p;
    ODE_RETURN_NOT_OK(dec.GetI64(&p.fires));
    return p;
  }
};

class TriggerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TriggerProperty, FiresMatchNfaOracle) {
  Random rng(GetParam());
  const char* event_names[] = {"a", "b", "c"};

  for (int round = 0; round < 25; ++round) {
    ExprPtr expr = testgen::RandomExpr(rng, 3, /*with_masks=*/false);

    // Oracle: simulate the (unanchored) NFA over a random stream.
    CompileInput input;
    input.expr = expr;
    input.anchored = false;
    // Alphabet symbols must match what the schema will intern. Build the
    // schema first, then read the symbols back.
    Schema schema;
    schema.DeclareClass<Probe>("Probe" + std::to_string(round))
        .Event("a")
        .Event("b")
        .Event("c")
        .Trigger("T", ToString(expr),
                 [](Probe& p, TriggerFireContext&) -> Status {
                   ++p.fires;
                   return Status::OK();
                 },
                 CouplingMode::kImmediate, /*perpetual=*/true);
    Status frozen = schema.Freeze();
    ASSERT_TRUE(frozen.ok()) << ToString(expr) << ": " << frozen.ToString();

    const ClassRecord* rec =
        schema.RecordByName("Probe" + std::to_string(round));
    for (const EventDecl& decl : rec->descriptor->AllEvents()) {
      input.alphabet.push_back(decl.symbol);
      input.event_symbols[decl.name] = decl.symbol;
    }
    auto nfa = BuildNfa(input);
    ASSERT_TRUE(nfa.ok()) << ToString(expr);

    size_t len = 1 + rng.Uniform(30);
    std::vector<int> stream;  // indexes into event_names
    std::vector<Symbol> symbols;
    for (size_t i = 0; i < len; ++i) {
      int e = static_cast<int>(rng.Uniform(3));
      stream.push_back(e);
      symbols.push_back(input.event_symbols[event_names[e]]);
    }
    std::vector<std::vector<bool>> no_masks(len);
    std::vector<bool> accepts = SimulateNfa(*nfa, symbols, no_masks);
    int64_t expected = 0;
    for (bool a : accepts) expected += a ? 1 : 0;

    // Drive the full system with the same stream.
    auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
    ASSERT_TRUE(session.ok());
    Session& s = **session;
    PRef<Probe> probe;
    Status st = s.WithTransaction([&](Transaction* txn) -> Status {
      auto r = s.New(txn, Probe{});
      ODE_RETURN_NOT_OK(r.status());
      probe = *r;
      return s.Activate(txn, probe, "T").status();
    });
    ASSERT_TRUE(st.ok());

    // Split the stream across several transactions (state must persist).
    size_t pos = 0;
    while (pos < len) {
      size_t chunk = 1 + rng.Uniform(5);
      st = s.WithTransaction([&](Transaction* txn) -> Status {
        for (size_t i = 0; i < chunk && pos < len; ++i, ++pos) {
          ODE_RETURN_NOT_OK(
              s.PostUserEvent(txn, probe, event_names[stream[pos]]));
        }
        return Status::OK();
      });
      ASSERT_TRUE(st.ok()) << st.ToString();
    }

    int64_t actual = -1;
    st = s.WithTransaction([&](Transaction* txn) -> Status {
      auto p = s.Load(txn, probe);
      ODE_RETURN_NOT_OK(p.status());
      actual = p->fires;
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    ASSERT_EQ(actual, expected)
        << "expr: " << ToString(expr) << " seed " << GetParam()
        << " round " << round << " stream length " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriggerProperty,
                         ::testing::Values(3, 1337, 777777));

}  // namespace
}  // namespace ode
