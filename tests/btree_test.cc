// B+-tree tests: basic operations, splits, deletion collapse, range
// scans, transactionality (rollback for free), persistence, and a
// randomized property test against std::map.

#include "objstore/btree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace ode {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(StorageKind::kMainMemory, "");
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }

  Transaction* Begin() {
    auto txn = db_->txns()->Begin();
    EXPECT_TRUE(txn.ok());
    return txn.ValueOr(nullptr);
  }

  std::unique_ptr<BTree> OpenTree(Transaction* txn, size_t max_keys = 4) {
    auto tree = BTree::Open(db_.get(), txn, "test", max_keys);
    EXPECT_TRUE(tree.ok()) << tree.status().ToString();
    return std::move(tree).value();
  }

  std::unique_ptr<Database> db_;
};

TEST_F(BTreeTest, InsertLookupDelete) {
  Transaction* txn = Begin();
  auto tree = OpenTree(txn);
  ASSERT_TRUE(tree->Insert(txn, Slice(std::string("b")), Oid(2)).ok());
  ASSERT_TRUE(tree->Insert(txn, Slice(std::string("a")), Oid(1)).ok());
  ASSERT_TRUE(tree->Insert(txn, Slice(std::string("c")), Oid(3)).ok());

  EXPECT_EQ(tree->Lookup(txn, Slice(std::string("a"))).ValueOr(Oid()),
            Oid(1));
  EXPECT_EQ(tree->Lookup(txn, Slice(std::string("b"))).ValueOr(Oid()),
            Oid(2));
  EXPECT_TRUE(
      tree->Lookup(txn, Slice(std::string("x"))).status().IsNotFound());
  EXPECT_EQ(tree->Size(txn).ValueOr(0), 3u);

  ASSERT_TRUE(tree->Delete(txn, Slice(std::string("b"))).ok());
  EXPECT_TRUE(
      tree->Lookup(txn, Slice(std::string("b"))).status().IsNotFound());
  EXPECT_TRUE(
      tree->Delete(txn, Slice(std::string("b"))).IsNotFound());
  EXPECT_EQ(tree->Size(txn).ValueOr(0), 2u);
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_F(BTreeTest, DuplicateInsertRejectedPutReplaces) {
  Transaction* txn = Begin();
  auto tree = OpenTree(txn);
  ASSERT_TRUE(tree->Insert(txn, Slice(std::string("k")), Oid(1)).ok());
  EXPECT_EQ(tree->Insert(txn, Slice(std::string("k")), Oid(2)).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(tree->Put(txn, Slice(std::string("k")), Oid(9)).ok());
  EXPECT_EQ(tree->Lookup(txn, Slice(std::string("k"))).ValueOr(Oid()),
            Oid(9));
  EXPECT_EQ(tree->Size(txn).ValueOr(0), 1u);
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_F(BTreeTest, SplitsKeepEverythingReachable) {
  Transaction* txn = Begin();
  auto tree = OpenTree(txn, /*max_keys=*/4);
  constexpr int kCount = 500;  // forces several levels at fanout 4
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(
        tree->Insert(txn, Slice(btree_key::FromU64(i * 7 % kCount)),
                     Oid(1000 + i * 7 % kCount))
            .ok())
        << i;
  }
  ASSERT_TRUE(tree->CheckStructure(txn).ok());
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(tree->Lookup(txn, Slice(btree_key::FromU64(i))).ValueOr(Oid()),
              Oid(1000 + i));
  }
  EXPECT_EQ(tree->Size(txn).ValueOr(0), static_cast<uint64_t>(kCount));
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_F(BTreeTest, RangeScan) {
  Transaction* txn = Begin();
  auto tree = OpenTree(txn);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        tree->Insert(txn, Slice(btree_key::FromU64(i)), Oid(i + 1)).ok());
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(tree->Scan(txn, Slice(btree_key::FromU64(20)),
                         Slice(btree_key::FromU64(30)),
                         [&](Slice, Oid value) {
                           seen.push_back(value.value() - 1);
                           return true;
                         })
                  .ok());
  ASSERT_EQ(seen.size(), 10u);
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 20 + i);

  // Unbounded scans and early stop.
  size_t total = 0;
  ASSERT_TRUE(tree->Scan(txn, Slice(), Slice(), [&](Slice, Oid) {
    ++total;
    return true;
  }).ok());
  EXPECT_EQ(total, 100u);
  size_t stopped = 0;
  ASSERT_TRUE(tree->Scan(txn, Slice(), Slice(), [&](Slice, Oid) {
    return ++stopped < 5;
  }).ok());
  EXPECT_EQ(stopped, 5u);
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_F(BTreeTest, SignedKeysOrderCorrectly) {
  Transaction* txn = Begin();
  auto tree = OpenTree(txn);
  for (int64_t v : {-5ll, 3ll, -100ll, 0ll, 77ll}) {
    ASSERT_TRUE(tree->Insert(txn, Slice(btree_key::FromI64(v)),
                             Oid(static_cast<uint64_t>(v + 1000)))
                    .ok());
  }
  std::vector<int64_t> order;
  ASSERT_TRUE(tree->Scan(txn, Slice(), Slice(), [&](Slice, Oid value) {
    order.push_back(static_cast<int64_t>(value.value()) - 1000);
    return true;
  }).ok());
  EXPECT_EQ(order, (std::vector<int64_t>{-100, -5, 0, 3, 77}));
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_F(BTreeTest, MassDeleteCollapsesTree) {
  Transaction* txn = Begin();
  auto tree = OpenTree(txn, 4);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        tree->Insert(txn, Slice(btree_key::FromU64(i)), Oid(i + 1)).ok());
  }
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree->Delete(txn, Slice(btree_key::FromU64(i))).ok()) << i;
    ASSERT_TRUE(tree->CheckStructure(txn).ok()) << "after deleting " << i;
  }
  EXPECT_EQ(tree->Size(txn).ValueOr(99), 0u);
  // The empty tree is still usable.
  ASSERT_TRUE(
      tree->Insert(txn, Slice(std::string("again")), Oid(5)).ok());
  EXPECT_EQ(tree->Lookup(txn, Slice(std::string("again"))).ValueOr(Oid()),
            Oid(5));
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_F(BTreeTest, RollbackUndoesTreeChanges) {
  Transaction* setup = Begin();
  auto tree = OpenTree(setup);
  ASSERT_TRUE(tree->Insert(setup, Slice(std::string("keep")), Oid(1)).ok());
  ASSERT_TRUE(db_->txns()->Commit(setup).ok());

  Transaction* doomed = Begin();
  ASSERT_TRUE(
      tree->Insert(doomed, Slice(std::string("lost")), Oid(2)).ok());
  ASSERT_TRUE(tree->Delete(doomed, Slice(std::string("keep"))).ok());
  ASSERT_TRUE(db_->txns()->Abort(doomed).ok());

  Transaction* check = Begin();
  EXPECT_EQ(tree->Lookup(check, Slice(std::string("keep"))).ValueOr(Oid()),
            Oid(1));
  EXPECT_TRUE(
      tree->Lookup(check, Slice(std::string("lost"))).status().IsNotFound());
  EXPECT_EQ(tree->Size(check).ValueOr(0), 1u);
  ASSERT_TRUE(db_->txns()->Commit(check).ok());
}

TEST(BTreePersistence, SurvivesReopenOnDisk) {
  std::string path = ::testing::TempDir() + "/ode_btree_disk.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  {
    auto db = Database::Open(StorageKind::kDisk, path);
    ASSERT_TRUE(db.ok());
    auto txn = (*db)->txns()->Begin();
    ASSERT_TRUE(txn.ok());
    auto tree = BTree::Open(db->get(), *txn, "idx", 8);
    ASSERT_TRUE(tree.ok());
    for (uint64_t i = 0; i < 300; ++i) {
      ASSERT_TRUE((*tree)
                      ->Insert(*txn, Slice(btree_key::FromU64(i)),
                               Oid(i + 1))
                      .ok());
    }
    ASSERT_TRUE((*db)->txns()->Commit(*txn).ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  {
    auto db = Database::Open(StorageKind::kDisk, path);
    ASSERT_TRUE(db.ok());
    auto txn = (*db)->txns()->Begin();
    ASSERT_TRUE(txn.ok());
    auto tree = BTree::Open(db->get(), *txn, "idx");
    ASSERT_TRUE(tree.ok());
    EXPECT_EQ((*tree)->Size(*txn).ValueOr(0), 300u);
    for (uint64_t i = 0; i < 300; i += 17) {
      EXPECT_EQ(
          (*tree)->Lookup(*txn, Slice(btree_key::FromU64(i))).ValueOr(Oid()),
          Oid(i + 1));
    }
    ASSERT_TRUE((*tree)->CheckStructure(*txn).ok());
    ASSERT_TRUE((*db)->txns()->Commit(*txn).ok());
    ASSERT_TRUE((*db)->Close().ok());
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST_F(BTreeTest, DuplicateInsertDuringRootSplitKeepsTreeIntact) {
  // Regression: a duplicate insert that arrives while the root is full
  // triggers a preemptive root split; the early kAlreadyExists return
  // must not leave the halved old root installed as the tree root.
  Transaction* txn = Begin();
  auto tree = OpenTree(txn, /*max_keys=*/4);
  for (uint64_t i = 0; i < 4; ++i) {  // exactly fill the root
    ASSERT_TRUE(
        tree->Insert(txn, Slice(btree_key::FromU64(i)), Oid(i + 1)).ok());
  }
  // Duplicate insert with a full root.
  EXPECT_EQ(tree->Insert(txn, Slice(btree_key::FromU64(2)), Oid(99)).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(tree->CheckStructure(txn).ok());
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tree->Lookup(txn, Slice(btree_key::FromU64(i))).ValueOr(Oid()),
              Oid(i + 1))
        << "key " << i << " lost after split + duplicate";
  }
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

class BTreeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeFuzz, MatchesStdMap) {
  auto db = Database::Open(StorageKind::kMainMemory, "");
  ASSERT_TRUE(db.ok());
  auto txn = (*db)->txns()->Begin();
  ASSERT_TRUE(txn.ok());
  auto tree = BTree::Open(db->get(), *txn, "fuzz", /*max_keys=*/4);
  ASSERT_TRUE(tree.ok());

  Random rng(GetParam());
  std::map<std::string, uint64_t> model;
  for (int step = 0; step < 3000; ++step) {
    std::string key = btree_key::FromU64(rng.Uniform(400));
    int op = static_cast<int>(rng.Uniform(4));
    if (op == 0) {  // insert
      Status st = (*tree)->Insert(*txn, Slice(key), Oid(step + 1));
      if (model.count(key)) {
        EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
      } else {
        ASSERT_TRUE(st.ok()) << st.ToString();
        model[key] = static_cast<uint64_t>(step + 1);
      }
    } else if (op == 1) {  // put
      ASSERT_TRUE((*tree)->Put(*txn, Slice(key), Oid(step + 1)).ok());
      model[key] = static_cast<uint64_t>(step + 1);
    } else if (op == 2) {  // delete
      Status st = (*tree)->Delete(*txn, Slice(key));
      EXPECT_EQ(st.ok(), model.erase(key) == 1) << st.ToString();
    } else {  // lookup
      auto found = (*tree)->Lookup(*txn, Slice(key));
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(found.status().IsNotFound());
      } else {
        ASSERT_TRUE(found.ok());
        EXPECT_EQ(found->value(), it->second);
      }
    }
    if (step % 250 == 0) {
      ASSERT_TRUE((*tree)->CheckStructure(*txn).ok()) << "step " << step;
    }
  }
  ASSERT_TRUE((*tree)->CheckStructure(*txn).ok());
  EXPECT_EQ((*tree)->Size(*txn).ValueOr(0), model.size());

  // Full scan matches the model exactly, in order.
  std::vector<std::pair<std::string, uint64_t>> scanned;
  ASSERT_TRUE((*tree)
                  ->Scan(*txn, Slice(), Slice(),
                         [&](Slice key, Oid value) {
                           scanned.emplace_back(key.ToString(),
                                                value.value());
                           return true;
                         })
                  .ok());
  ASSERT_EQ(scanned.size(), model.size());
  size_t i = 0;
  for (const auto& [key, value] : model) {
    EXPECT_EQ(scanned[i].first, key);
    EXPECT_EQ(scanned[i].second, value);
    ++i;
  }
  ASSERT_TRUE((*db)->txns()->Commit(*txn).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzz,
                         ::testing::Values(21, 42, 63, 84));

}  // namespace
}  // namespace ode
