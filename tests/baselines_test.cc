// Baseline-implementation tests: the Sentinel-style string-triple event
// table (E2), the dense transition matrix (E3), and the history-scan
// detector (E6) must agree with the primary implementations.

#include <gtest/gtest.h>

#include "baselines/dense_fsm.h"
#include "baselines/history_scan_detector.h"
#include "baselines/string_event_rep.h"
#include "common/random.h"
#include "events/event_parser.h"
#include "events/fsm.h"

namespace ode {
namespace {

constexpr Symbol kSymA = 2, kSymB = 3, kSymC = 4;

CompileInput Input(const std::string& text) {
  auto parsed = ParseEventExpr(text);
  EXPECT_TRUE(parsed.ok());
  CompileInput input;
  input.expr = parsed->expr;
  input.anchored = parsed->anchored;
  input.alphabet = {kSymA, kSymB, kSymC};
  input.event_symbols = {{"a", kSymA}, {"b", kSymB}, {"c", kSymC}};
  return input;
}

TEST(StringEventTable, InternAndLookup) {
  StringEventTable table;
  StringEventRep buy{"CredCard", "void Buy(Merchant*, float)", "end"};
  StringEventRep pay{"CredCard", "void PayBill(float)", "end"};
  uint32_t buy_id = table.Intern(buy);
  uint32_t pay_id = table.Intern(pay);
  EXPECT_NE(buy_id, pay_id);
  EXPECT_EQ(table.Intern(buy), buy_id);
  EXPECT_EQ(table.Lookup(buy), buy_id);
  EXPECT_EQ(table.Lookup({"CredCard", "void Buy(Merchant*, float)",
                          "begin"}),
            0u)
      << "begin/end are distinct events";
  EXPECT_EQ(table.size(), 2u);
}

TEST(DenseFsm, MatchesSparseOnAllStatesAndSymbols) {
  Random rng(99);
  for (const char* text :
       {"a, b", "a || b || c", "(a, b)+, c", "a, any*, b"}) {
    auto fsm = CompileFsm(Input(text));
    ASSERT_TRUE(fsm.ok()) << text;
    DenseFsm dense(*fsm, 8);
    for (size_t s = 0; s < fsm->NumStates(); ++s) {
      for (Symbol sym = 0; sym < 8; ++sym) {
        EXPECT_EQ(dense.Move(static_cast<int32_t>(s), sym),
                  fsm->Move(static_cast<int32_t>(s), sym))
            << text << " state " << s << " sym " << sym;
      }
      EXPECT_EQ(dense.Accepting(static_cast<int32_t>(s)),
                fsm->Accepting(static_cast<int32_t>(s)));
    }
  }
}

TEST(DenseFsm, WideTableCostsMemory) {
  auto fsm = CompileFsm(Input("a, b, c"));
  ASSERT_TRUE(fsm.ok());
  DenseFsm narrow(*fsm, 8);
  DenseFsm wide(*fsm, 4096);  // globally-unique event integers (§6)
  EXPECT_GT(wide.MemoryBytes(), 100 * narrow.MemoryBytes());
  EXPECT_GT(wide.MemoryBytes(), fsm->MemoryBytes())
      << "the dense global table is what the paper abandoned";
}

TEST(HistoryScan, AgreesWithFsmOnRandomStreams) {
  Random rng(7);
  for (const char* text :
       {"a, b", "a || c", "(a, b)+", "a, any*, c", "b+"}) {
    CompileInput input = Input(text);
    auto fsm = CompileFsm(input);
    auto nfa = BuildNfa(input);
    ASSERT_TRUE(fsm.ok());
    ASSERT_TRUE(nfa.ok());
    HistoryScanDetector scan(std::move(nfa).value());

    int32_t state = fsm->start();
    for (int i = 0; i < 200; ++i) {
      Symbol sym = static_cast<Symbol>(kSymA + rng.Uniform(3));
      state = fsm->Move(state, sym);
      bool fsm_accepts = fsm->Accepting(state);
      bool scan_accepts = scan.Post(sym);
      ASSERT_EQ(fsm_accepts, scan_accepts)
          << text << " at position " << i;
    }
    EXPECT_EQ(scan.history_size(), 200u)
        << "the baseline keeps the whole history (that's its cost)";
    scan.Reset();
    EXPECT_EQ(scan.history_size(), 0u);
  }
}

}  // namespace
}  // namespace ode
