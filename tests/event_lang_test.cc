// Event-language tests: AST builders/utilities and the concrete-syntax
// parser (paper §5.1's operators: ',', '||', '*', '&', relative, any, ^).

#include <gtest/gtest.h>

#include "events/event_expr.h"
#include "events/event_parser.h"

namespace ode {
namespace {

// ------------------------------------------------------------------ AST

TEST(EventExpr, ToStringRendersOperators) {
  ExprPtr e = Seq(Mask(Basic("after Buy"), "MoreCred()"),
                  Or(Basic("BigBuy"), Star(Any())));
  EXPECT_EQ(ToString(e), "after Buy & MoreCred(), BigBuy || any*");
}

TEST(EventExpr, ToStringParenthesizesByPrecedence) {
  // Star of a sequence needs parentheses; star of a basic does not.
  EXPECT_EQ(ToString(Star(Seq(Basic("a"), Basic("b")))), "(a, b)*");
  EXPECT_EQ(ToString(Star(Basic("a"))), "a*");
  EXPECT_EQ(ToString(Seq(Or(Basic("a"), Basic("b")), Basic("c"))),
            "a || b, c");
  EXPECT_EQ(ToString(Or(Basic("a"), Seq(Basic("b"), Basic("c")))),
            "a || (b, c)");
}

TEST(EventExpr, EqualsIsStructural) {
  ExprPtr a = Relative(Basic("x"), Basic("y"));
  ExprPtr b = Relative(Basic("x"), Basic("y"));
  ExprPtr c = Relative(Basic("x"), Basic("z"));
  EXPECT_TRUE(ExprEquals(a, b));
  EXPECT_FALSE(ExprEquals(a, c));
  EXPECT_FALSE(ExprEquals(a, Basic("x")));
}

TEST(EventExpr, ReferencedEventsInOrderAndDeduped) {
  ExprPtr e = Seq(Basic("b"), Seq(Basic("a"), Basic("b")));
  EXPECT_EQ(ReferencedEvents(e), (std::vector<std::string>{"b", "a"}));
}

TEST(EventExpr, ReferencedMasks) {
  ExprPtr e = Seq(Mask(Basic("a"), "p()"), Mask(Basic("b"), "(x>1)"));
  EXPECT_EQ(ReferencedMasks(e),
            (std::vector<std::string>{"p()", "(x>1)"}));
}

TEST(EventExpr, Nullable) {
  EXPECT_FALSE(Nullable(Basic("a")));
  EXPECT_FALSE(Nullable(Any()));
  EXPECT_TRUE(Nullable(Star(Basic("a"))));
  EXPECT_TRUE(Nullable(Opt(Basic("a"))));
  EXPECT_FALSE(Nullable(Plus(Basic("a"))));
  EXPECT_TRUE(Nullable(Plus(Star(Basic("a")))));
  EXPECT_TRUE(Nullable(Seq(Star(Basic("a")), Opt(Basic("b")))));
  EXPECT_FALSE(Nullable(Seq(Star(Basic("a")), Basic("b"))));
  EXPECT_TRUE(Nullable(Or(Basic("a"), Star(Basic("b")))));
}

// --------------------------------------------------------------- parser

Result<ParsedEvent> P(const std::string& text) {
  return ParseEventExpr(text);
}

TEST(Parser, BasicEvents) {
  auto r = P("after Buy");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(r->expr), "after Buy");
  EXPECT_FALSE(r->anchored);

  r = P("before PayBill");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(r->expr), "before PayBill");

  r = P("BigBuy");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->expr->kind, EventExpr::Kind::kBasic);
  EXPECT_EQ(r->expr->event_name, "BigBuy");
}

TEST(Parser, TransactionEvents) {
  auto r = P("before tcomplete || before tabort");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(r->expr), "before tcomplete || before tabort");
}

TEST(Parser, PrecedenceSeqLowerThanOr) {
  auto r = P("a || b, c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->expr->kind, EventExpr::Kind::kSeq);
  EXPECT_EQ(ToString(r->expr->left), "a || b");
}

TEST(Parser, MaskBindsTighterThanOr) {
  auto r = P("a & p() || b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->expr->kind, EventExpr::Kind::kOr);
  EXPECT_EQ(ToString(r->expr->left), "a & p()");
}

TEST(Parser, PostfixOperators) {
  auto r = P("a*, b+, c?");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(r->expr), "a*, b+, c?");
  r = P("(a, b)*");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->expr->kind, EventExpr::Kind::kStar);
}

TEST(Parser, MaskCallForm) {
  auto r = P("after Buy & MoreCred()");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->expr->kind, EventExpr::Kind::kMask);
  EXPECT_EQ(r->expr->mask_name, "MoreCred()");
}

TEST(Parser, MaskRawPredicateForm) {
  auto r = P("after Buy & (currBal > credLim)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->expr->mask_name, "(currBal > credLim)");
}

TEST(Parser, MaskRawPredicateNestedParens) {
  auto r = P("a & (f(x) && g(y))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->expr->mask_name, "(f(x) && g(y))");
}

TEST(Parser, ChainedMasks) {
  auto r = P("a & p() & q()");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(r->expr), "a & p() & q()");
  EXPECT_EQ(r->expr->mask_name, "q()");
  EXPECT_EQ(r->expr->left->mask_name, "p()");
}

TEST(Parser, RelativeFromThePaper) {
  auto r = P("relative((after Buy & MoreCred()), after PayBill)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->expr->kind, EventExpr::Kind::kRelative);
  EXPECT_EQ(ToString(r->expr->left), "after Buy & MoreCred()");
  EXPECT_EQ(ToString(r->expr->right), "after PayBill");
}

TEST(Parser, RelativeSecondArgMayBeSequence) {
  auto r = P("relative(a, b, c)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(r->expr->right), "b, c");
}

TEST(Parser, Anchor) {
  auto r = P("^(a, b)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->anchored);
  EXPECT_EQ(ToString(r->expr), "a, b");
}

TEST(Parser, AnyKeyword) {
  auto r = P("a, any*, b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(r->expr), "a, any*, b");
}

TEST(Parser, WhitespaceInsensitive) {
  auto a = P("  a ,b||c  ");
  auto b = P("a, b || c");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(ExprEquals(a->expr, b->expr));
}

TEST(Parser, RoundTripThroughToString) {
  for (const char* text :
       {"after Buy", "a, b, c", "a || b || c", "a & p(), b",
        "relative(a, b)", "(a || b)*, c", "a+, b?",
        "after Buy & (x > y) & q()"}) {
    auto first = P(text);
    ASSERT_TRUE(first.ok()) << text;
    auto second = P(ToString(first->expr));
    ASSERT_TRUE(second.ok()) << ToString(first->expr);
    EXPECT_TRUE(ExprEquals(first->expr, second->expr)) << text;
  }
}

TEST(Parser, BoundedRepetitionExact) {
  auto r = P("a{3}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(r->expr), "a, a, a");
}

TEST(Parser, BoundedRepetitionRange) {
  auto r = P("a{1,3}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(r->expr), "a, a?, a?");
  r = P("(a || b){2}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(r->expr), "a || b, a || b");
}

TEST(Parser, BoundedRepetitionErrors) {
  for (const char* text :
       {"a{0}", "a{3,1}", "a{", "a{x}", "a{1", "a{99}" /* ok */}) {
    auto r = P(text);
    if (std::string(text) == "a{99}") {
      EXPECT_FALSE(r.ok()) << "above the 64 cap";
    } else {
      EXPECT_FALSE(r.ok()) << text;
    }
  }
  EXPECT_TRUE(P("a{64}").ok());
}

class ParserErrors : public ::testing::TestWithParam<const char*> {};

TEST_P(ParserErrors, Rejected) {
  auto r = P(GetParam());
  ASSERT_FALSE(r.ok()) << GetParam();
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

INSTANTIATE_TEST_SUITE_P(
    BadInputs, ParserErrors,
    ::testing::Values("", "a,", "a ||", "(a", "a)", "a & ", "a & (",
                      "relative(a)", "relative(a,)", "relative a, b",
                      "after", "before", "a b", "&a", "*a", ", a",
                      "a & ()"));

}  // namespace
}  // namespace ode
