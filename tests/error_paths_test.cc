// Error-path and edge-case coverage across the trigger runtime and
// schema layer: unregistered types with persistent triggers, schema
// misuse, concurrent event interning, and miscellaneous validations.

#include <gtest/gtest.h>

#include <thread>

#include "odepp/session.h"
#include "trigger/event_registry.h"

namespace ode {
namespace {

struct Thing {
  int32_t n = 0;
  void Poke() { ++n; }
  void Encode(Encoder& enc) const { enc.PutI32(n); }
  static Result<Thing> Decode(Decoder& dec) {
    Thing t;
    ODE_RETURN_NOT_OK(dec.GetI32(&t.n));
    return t;
  }
};

void DeclareThing(Schema* schema, bool with_trigger) {
  auto def = schema->DeclareClass<Thing>("Thing");
  def.Event("after Poke").Method("Poke", &Thing::Poke);
  if (with_trigger) {
    def.Trigger("T", "after Poke",
                [](Thing&, TriggerFireContext&) { return Status::OK(); },
                CouplingMode::kImmediate, true);
  }
}

TEST(ErrorPaths, PersistentTriggerOfUnregisteredClass) {
  // A database carries an activation from a program that knew class
  // "Thing"; a program whose schema lacks the class must get a clean
  // error when an event reaches that trigger — not a crash.
  std::string path = ::testing::TempDir() + "/ode_unregistered.db";
  std::remove(path.c_str());

  PRef<Thing> obj;
  {
    Schema schema;
    DeclareThing(&schema, true);
    ASSERT_TRUE(schema.Freeze().ok());
    auto session = Session::Open(StorageKind::kMainMemory, path, &schema);
    ASSERT_TRUE(session.ok());
    Status st = (*session)->WithTransaction([&](Transaction* txn) -> Status {
      auto r = (*session)->New(txn, Thing{});
      ODE_RETURN_NOT_OK(r.status());
      obj = *r;
      return (*session)->Activate(txn, obj, "T").status();
    });
    ASSERT_TRUE(st.ok());
    ASSERT_TRUE((*session)->Close().ok());
  }
  {
    // Post the event via the trigger manager directly (the typed Session
    // can't even name the class here, which is the point).
    Schema empty;
    ASSERT_TRUE(empty.Freeze().ok());
    auto session = Session::Open(StorageKind::kMainMemory, path, &empty);
    ASSERT_TRUE(session.ok());
    Status st = (*session)->WithTransaction([&](Transaction* txn) -> Status {
      Symbol symbol = EventRegistry::Global().Intern("Thing", "after Poke");
      return (*session)->triggers()->PostEvent(txn, obj.oid(), nullptr,
                                               symbol);
    });
    EXPECT_EQ(st.code(), StatusCode::kNotFound);
    EXPECT_NE(st.message().find("not registered"), std::string::npos)
        << st.ToString();
    ASSERT_TRUE((*session)->Close().ok());
  }
  std::remove(path.c_str());
}

TEST(ErrorPaths, ActivateUnknownTrigger) {
  Schema schema;
  DeclareThing(&schema, true);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Status st = (*session)->WithTransaction([&](Transaction* txn) -> Status {
    auto r = (*session)->New(txn, Thing{});
    ODE_RETURN_NOT_OK(r.status());
    auto bad = (*session)->Activate(txn, *r, "NoSuchTrigger");
    EXPECT_TRUE(bad.status().IsNotFound());
    auto bad_local = (*session)->ActivateLocal(txn, *r, "NoSuchTrigger");
    EXPECT_TRUE(bad_local.status().IsNotFound());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST(ErrorPaths, DeactivateTwiceFails) {
  Schema schema;
  DeclareThing(&schema, true);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Status st = (*session)->WithTransaction([&](Transaction* txn) -> Status {
    auto r = (*session)->New(txn, Thing{});
    ODE_RETURN_NOT_OK(r.status());
    auto id = (*session)->Activate(txn, *r, "T");
    ODE_RETURN_NOT_OK(id.status());
    ODE_RETURN_NOT_OK((*session)->Deactivate(txn, *id));
    EXPECT_FALSE((*session)->Deactivate(txn, *id).ok());
    EXPECT_FALSE((*session)->IsTriggerActive(txn, *id));
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(ErrorPaths, SchemaValidationAtFreeze) {
  {  // duplicate trigger name
    Schema schema;
    auto def = schema.DeclareClass<Thing>("Thing");
    def.Event("after Poke");
    auto noop = [](Thing&, TriggerFireContext&) { return Status::OK(); };
    def.Trigger("T", "after Poke", noop);
    def.Trigger("T", "after Poke", noop);
    EXPECT_EQ(schema.Freeze().code(), StatusCode::kInvalidArgument);
  }
  {  // duplicate event
    Schema schema;
    schema.DeclareClass<Thing>("Thing")
        .Event("after Poke")
        .Event("after Poke");
    EXPECT_EQ(schema.Freeze().code(), StatusCode::kInvalidArgument);
  }
  {  // trigger references undeclared event
    Schema schema;
    schema.DeclareClass<Thing>("Thing").Trigger(
        "T", "after Vanish",
        [](Thing&, TriggerFireContext&) { return Status::OK(); });
    EXPECT_EQ(schema.Freeze().code(), StatusCode::kInvalidArgument);
  }
  {  // trigger references unregistered mask
    Schema schema;
    schema.DeclareClass<Thing>("Thing").Event("after Poke").Trigger(
        "T", "after Poke & Ghost()",
        [](Thing&, TriggerFireContext&) { return Status::OK(); });
    EXPECT_EQ(schema.Freeze().code(), StatusCode::kInvalidArgument);
  }
  {  // unparseable expression
    Schema schema;
    schema.DeclareClass<Thing>("Thing").Event("after Poke").Trigger(
        "T", "after Poke ,,",
        [](Thing&, TriggerFireContext&) { return Status::OK(); });
    EXPECT_EQ(schema.Freeze().code(), StatusCode::kParseError);
  }
  {  // base class never declared
    struct Derived : Thing {
      void Encode(Encoder& enc) const { Thing::Encode(enc); }
      static Result<Derived> Decode(Decoder& dec) {
        auto base = Thing::Decode(dec);
        if (!base.ok()) return base.status();
        Derived d;
        static_cast<Thing&>(d) = *base;
        return d;
      }
    };
    Schema schema;
    schema.DeclareClass<Derived, Thing>("Derived", "Base");
    EXPECT_EQ(schema.Freeze().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ErrorPaths, EventRegistryIsThreadSafe) {
  EventRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kEvents = 200;
  std::vector<std::vector<Symbol>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int e = 0; e < kEvents; ++e) {
        seen[t].push_back(
            registry.Intern("C" + std::to_string(e % 7),
                            "after f" + std::to_string(e)));
      }
    });
  }
  for (auto& t : threads) t.join();
  // All threads resolved each (class, event) pair to the same symbol.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]);
  }
  // And distinct pairs got distinct symbols.
  std::set<Symbol> unique(seen[0].begin(), seen[0].end());
  EXPECT_EQ(unique.size(), seen[0].size());
}

}  // namespace
}  // namespace ode
