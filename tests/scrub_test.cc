// Integrity-scrub tests: VerifyIntegrity sweeps the page file for
// silent corruption, repairs what WAL redo still covers, quarantines
// the rest, and degrades reads of lost objects to loud kCorruption
// failures instead of serving rotten bytes.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "odepp/session.h"
#include "storage/disk_storage_manager.h"

namespace ode {
namespace {

// XORs one bit of the file at `offset` — decayed medium, not a torn
// write. Safe to call while a store holds the file open (POSIX).
void FlipBit(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  ASSERT_NE(std::fputc(byte ^ 0x08, f), EOF);
  ASSERT_EQ(std::fclose(f), 0);
}

struct SCell {
  int32_t v = 0;
  // Padding keeps each cell a few hundred bytes so a set of cells spans
  // many pages (the degraded-open test rots a page in the middle).
  std::string pad;
  void Encode(Encoder& enc) const {
    enc.PutI32(v);
    enc.PutString(pad);
  }
  static Result<SCell> Decode(Decoder& dec) {
    SCell c;
    ODE_RETURN_NOT_OK(dec.GetI32(&c.v));
    ODE_RETURN_NOT_OK(dec.GetString(&c.pad));
    return c;
  }
};

class ScrubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ode_scrub_test.db";
    Cleanup();
    schema_.DeclareClass<SCell>("SCell");
    ASSERT_TRUE(schema_.Freeze().ok());
  }
  void TearDown() override {
    SetLogLevel(LogLevel::kWarn);
    Cleanup();
  }

  void Cleanup() {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
    std::remove((path_ + ".flight.json").c_str());
  }

  std::string path_;
  Schema schema_;
};

TEST_F(ScrubTest, CleanStoreScrubsCleanThroughTheSession) {
  auto session = Session::Open(StorageKind::kDisk, path_, &schema_);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  Session* s = session->get();
  ASSERT_TRUE(s->WithTransaction([&](Transaction* txn) -> Status {
                 for (int i = 0; i < 64; ++i) {
                   ODE_RETURN_NOT_OK(s->New(txn, SCell{i, ""}).status());
                 }
                 return Status::OK();
               }).ok());

  auto report = s->VerifyIntegrity();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->clean());
  EXPECT_GT(report->pages_scanned, 0u);
  EXPECT_EQ(report->bad_pages, 0u);
  EXPECT_EQ(report->repaired_pages, 0u);

  EXPECT_GT(s->metrics()->GetCounter("ode_scrub_pages_total")->value(), 0u);
  EXPECT_EQ(s->metrics()->GetGauge("ode_quarantined_pages")->value(), 0);

  // The sweep itself lands in the flight recorder.
  bool scrub_span = false;
  for (const Span& span : s->tracer()->Snapshot()) {
    if (span.kind == SpanKind::kScrub) {
      scrub_span = true;
      EXPECT_EQ(span.a, static_cast<int64_t>(report->pages_scanned));
      EXPECT_EQ(span.b, 0);
    }
  }
  EXPECT_TRUE(scrub_span);
  ASSERT_TRUE(s->Close().ok());
}

TEST_F(ScrubTest, MainMemoryStoreAlwaysScrubsClean) {
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema_);
  ASSERT_TRUE(session.ok());
  auto report = (*session)->VerifyIntegrity();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean());
  EXPECT_EQ(report->pages_scanned, 0u);
  ASSERT_TRUE((*session)->Close().ok());
}

TEST_F(ScrubTest, RuntimeScrubRepairsWalCoveredCorruption) {
  SetLogLevel(LogLevel::kSilence);  // the repair path logs by design
  DiskStorageManager::Options opts;
  opts.buffer_pool_pages = 2;  // force evictions: pages reach the disk
  DiskStorageManager store(path_, opts);
  ASSERT_TRUE(store.Open().ok());

  std::vector<Oid> oids;
  ASSERT_TRUE(store.BeginTxn(1).ok());
  for (int i = 0; i < 40; ++i) {
    auto oid = store.Allocate(1, Slice(std::string(300, 'a')));
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  ASSERT_TRUE(store.CommitTxn(1).ok());
  ASSERT_TRUE(store.Checkpoint().ok());  // truncates the WAL...

  // ...so these updates are the only WAL coverage, and they cover every
  // object.
  ASSERT_TRUE(store.BeginTxn(2).ok());
  for (size_t i = 0; i < oids.size(); ++i) {
    ASSERT_TRUE(
        store.Write(2, oids[i], Slice("v2-" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(store.CommitTxn(2).ok());

  // Churn the 2-frame pool so every data page's post-update image has
  // been evicted (= written) to disk; then rot a bit in page 1 behind
  // the store's back.
  ASSERT_TRUE(store.BeginTxn(3).ok());
  for (size_t i = oids.size(); i-- > 0;) {
    std::vector<char> out;
    ASSERT_TRUE(store.Read(3, oids[i], &out).ok());
  }
  ASSERT_TRUE(store.CommitTxn(3).ok());
  FlipBit(path_, static_cast<long>(kPageSize) + 128);

  auto report = store.VerifyIntegrity();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->bad_pages, 1u);
  EXPECT_EQ(report->repaired_pages, 1u);
  EXPECT_EQ(report->quarantined_pages, 0u);
  EXPECT_TRUE(report->lost_oids.empty());
  EXPECT_FALSE(report->unknown_losses);
  EXPECT_FALSE(store.degraded());

  // Every object reads back with its post-update image.
  ASSERT_TRUE(store.BeginTxn(4).ok());
  for (size_t i = 0; i < oids.size(); ++i) {
    std::vector<char> out;
    ASSERT_TRUE(store.Read(4, oids[i], &out).ok()) << "oid " << i;
    EXPECT_EQ(std::string(out.begin(), out.end()),
              "v2-" + std::to_string(i));
  }
  ASSERT_TRUE(store.CommitTxn(4).ok());

  // The repair is durable: a crash right after the scrub loses nothing.
  store.SimulateCrash();
  DiskStorageManager reopened(path_, opts);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_FALSE(reopened.degraded());
  ASSERT_TRUE(reopened.BeginTxn(5).ok());
  for (size_t i = 0; i < oids.size(); ++i) {
    std::vector<char> out;
    ASSERT_TRUE(reopened.Read(5, oids[i], &out).ok());
    EXPECT_EQ(std::string(out.begin(), out.end()),
              "v2-" + std::to_string(i));
  }
  ASSERT_TRUE(reopened.CommitTxn(5).ok());
  ASSERT_TRUE(reopened.Close().ok());
}

TEST_F(ScrubTest, ScrubQuarantinesUncoveredCorruption) {
  SetLogLevel(LogLevel::kSilence);
  DiskStorageManager store(path_);
  ASSERT_TRUE(store.Open().ok());

  std::vector<Oid> oids;
  ASSERT_TRUE(store.BeginTxn(1).ok());
  for (int i = 0; i < 40; ++i) {
    auto oid = store.Allocate(1, Slice(std::string(400, 'b')));
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  ASSERT_TRUE(store.CommitTxn(1).ok());
  // Checkpoint truncates the WAL: nothing covers the pages any more.
  ASSERT_TRUE(store.Checkpoint().ok());
  FlipBit(path_, static_cast<long>(kPageSize) + 512);

  auto report = store.VerifyIntegrity();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->bad_pages, 1u);
  EXPECT_EQ(report->repaired_pages, 0u);
  EXPECT_EQ(report->quarantined_pages, 1u);
  ASSERT_FALSE(report->lost_oids.empty());
  EXPECT_TRUE(store.degraded());

  std::set<uint64_t> lost;
  for (Oid o : report->lost_oids) lost.insert(o.value());
  ASSERT_TRUE(store.BeginTxn(2).ok());
  for (Oid oid : oids) {
    std::vector<char> out;
    Status st = store.Read(2, oid, &out);
    if (lost.count(oid.value()) != 0) {
      EXPECT_TRUE(st.IsCorruption()) << st.ToString();
    } else {
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
  }
  // The store stays writable: new allocations steer clear of the
  // quarantined page and read back fine.
  auto fresh = store.Allocate(2, Slice(std::string("fresh")));
  ASSERT_TRUE(fresh.ok());
  std::vector<char> out;
  ASSERT_TRUE(store.Read(2, *fresh, &out).ok());
  ASSERT_TRUE(store.CommitTxn(2).ok());

  // A second sweep finds nothing new but still reports the standing
  // quarantine and losses.
  auto again = store.VerifyIntegrity();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->bad_pages, 0u);
  EXPECT_EQ(again->quarantined_pages, 1u);
  EXPECT_EQ(again->lost_oids.size(), report->lost_oids.size());
  ASSERT_TRUE(store.Close().ok());
}

TEST_F(ScrubTest, DegradedOpenSurfacesThroughTheSession) {
  SetLogLevel(LogLevel::kSilence);
  std::vector<PRef<SCell>> refs;
  {
    auto session = Session::Open(StorageKind::kDisk, path_, &schema_);
    ASSERT_TRUE(session.ok());
    Session* s = session->get();
    ASSERT_TRUE(s->WithTransaction([&](Transaction* txn) -> Status {
                   for (int i = 0; i < 200; ++i) {
                     ODE_ASSIGN_OR_RETURN(
                         PRef<SCell> r,
                         s->New(txn, SCell{i, std::string(400, 'p')}));
                     refs.push_back(r);
                   }
                   return Status::OK();
                 }).ok());
    ASSERT_TRUE(s->Close().ok());  // checkpoints: WAL coverage gone
  }
  // Rot a data page well past the first few (which hold the catalogs the
  // session itself needs to boot).
  FlipBit(path_, 6 * static_cast<long>(kPageSize) + 1024);

  auto session = Session::Open(StorageKind::kDisk, path_, &schema_);
  ASSERT_TRUE(session.ok())
      << "a degraded store must still open: " << session.status().ToString();
  Session* s = session->get();
  auto report = s->VerifyIntegrity();
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->quarantined_pages, 1u);
  EXPECT_GT(s->metrics()->GetGauge("ode_quarantined_pages")->value(), 0);

  // Every cell is either served intact or refused loudly — never wrong.
  int lost = 0, served = 0;
  Status st = s->WithTransaction([&](Transaction* txn) -> Status {
    for (size_t i = 0; i < refs.size(); ++i) {
      auto cell = s->Load(txn, refs[i]);
      if (cell.ok()) {
        EXPECT_EQ(cell->v, static_cast<int32_t>(i));
        ++served;
      } else if (cell.status().IsCorruption()) {
        ++lost;
      } else {
        return cell.status();
      }
    }
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(lost, 0) << "the rotten page held at least one cell";
  EXPECT_GT(served, 0) << "objects on healthy pages stay readable";
  ASSERT_TRUE(s->Close().ok());
}

}  // namespace
}  // namespace ode
