// FSM compilation tests: the pipeline of paper §5.1 (expression -> NFA ->
// DFA with mask states -> minimized run-time FSM), including the exact
// reproduction of Figure 1.

#include "events/fsm.h"

#include <gtest/gtest.h>

#include "events/event_parser.h"
#include "events/minimize.h"

namespace ode {
namespace {

// Symbols mirroring the paper's CredCardEvents numbering intuition.
constexpr Symbol kBigBuy = 2;
constexpr Symbol kAfterPayBill = 3;
constexpr Symbol kAfterBuy = 4;

CompileInput CredCardInput(const std::string& text) {
  auto parsed = ParseEventExpr(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  CompileInput input;
  input.expr = parsed->expr;
  input.anchored = parsed->anchored;
  input.alphabet = {kBigBuy, kAfterPayBill, kAfterBuy};
  input.event_symbols = {{"BigBuy", kBigBuy},
                         {"after PayBill", kAfterPayBill},
                         {"after Buy", kAfterBuy}};
  input.mask_ids = {{"MoreCred()", 0}, {"(currBal>credLim)", 0}};
  return input;
}

Result<Fsm> Compile(const std::string& text) {
  return CompileFsm(CredCardInput(text));
}

int32_t MoveResolved(const Fsm& fsm, int32_t state, Symbol symbol,
                     bool mask_value) {
  int32_t next = fsm.Move(state, symbol);
  auto resolved = fsm.ResolveMasks(
      next, [&](int32_t) -> Result<bool> { return mask_value; });
  EXPECT_TRUE(resolved.ok());
  return resolved.value();
}

// ------------------------------------------------------------- Figure 1

// The AutoRaiseLimit FSM of Figure 1:
//   state 0 (start): after Buy -> 1; BigBuy, after PayBill -> 0
//   state 1 (mask):  MoreCred() True -> 2, False -> 0
//   state 2:         after PayBill -> 3; BigBuy, after Buy -> 2
//   state 3 (accept)
TEST(Figure1, ExactShape) {
  auto fsm = Compile("relative((after Buy & MoreCred()), after PayBill)");
  ASSERT_TRUE(fsm.ok()) << fsm.status().ToString();

  ASSERT_EQ(fsm->NumStates(), 4u);
  const auto& states = fsm->states();

  // State 0: start, no mask, not accepting.
  EXPECT_FALSE(states[0].accept);
  EXPECT_EQ(states[0].mask, -1);
  EXPECT_EQ(fsm->Move(0, kAfterBuy), 1);
  EXPECT_EQ(fsm->Move(0, kBigBuy), 0);
  EXPECT_EQ(fsm->Move(0, kAfterPayBill), 0);

  // State 1: the mask state (marked * in the figure).
  EXPECT_TRUE(fsm->IsMaskState(1));
  EXPECT_EQ(states[1].mask, 0);
  EXPECT_EQ(states[1].true_next, 2);
  EXPECT_EQ(states[1].false_next, 0);
  EXPECT_TRUE(states[1].transitions.empty())
      << "mask states do not wait for external events";

  // State 2.
  EXPECT_FALSE(states[2].accept);
  EXPECT_EQ(fsm->Move(2, kAfterPayBill), 3);
  EXPECT_EQ(fsm->Move(2, kBigBuy), 2);
  EXPECT_EQ(fsm->Move(2, kAfterBuy), 2);

  // State 3: accepting; with (any*) semantics further PayBills keep
  // satisfying the relative event.
  EXPECT_TRUE(states[3].accept);
  EXPECT_EQ(fsm->Move(3, kAfterPayBill), 3);
}

TEST(Figure1, ScenarioWalk) {
  auto fsm = Compile("relative((after Buy & MoreCred()), after PayBill)");
  ASSERT_TRUE(fsm.ok());

  // Buy with MoreCred false: back to searching.
  int32_t s = MoveResolved(*fsm, 0, kAfterBuy, false);
  EXPECT_EQ(s, 0);

  // Buy with MoreCred true: armed.
  s = MoveResolved(*fsm, 0, kAfterBuy, true);
  EXPECT_EQ(s, 2);

  // Unrelated events don't disturb the armed state.
  s = MoveResolved(*fsm, s, kBigBuy, false);
  EXPECT_EQ(s, 2);
  s = MoveResolved(*fsm, s, kAfterBuy, false);
  EXPECT_EQ(s, 2) << "re-buying must not re-evaluate the mask (Figure 1 "
                     "has a plain self-loop here)";

  // PayBill satisfies the trigger.
  s = MoveResolved(*fsm, s, kAfterPayBill, false);
  EXPECT_TRUE(fsm->Accepting(s));

  // relative: "any future occurrences of after PayBill will satisfy".
  s = MoveResolved(*fsm, s, kBigBuy, false);
  s = MoveResolved(*fsm, s, kAfterPayBill, false);
  EXPECT_TRUE(fsm->Accepting(s));
}

TEST(Figure1, TablePrinting) {
  auto fsm = Compile("relative((after Buy & MoreCred()), after PayBill)");
  ASSERT_TRUE(fsm.ok());
  std::string table = fsm->ToTable(
      {{kBigBuy, "BigBuy"},
       {kAfterPayBill, "after PayBill"},
       {kAfterBuy, "after Buy"}},
      {{0, "MoreCred()"}});
  EXPECT_NE(table.find("state 0 (start)"), std::string::npos);
  EXPECT_NE(table.find("state 1 *"), std::string::npos);
  EXPECT_NE(table.find("state 3 [accept]"), std::string::npos);
  EXPECT_NE(table.find("MoreCred()"), std::string::npos);
}

// ------------------------------------------------- DenyCredit's machine

TEST(MaskFsm, DenyCreditShape) {
  // after Buy & (currBal>credLim): fires on every Buy that satisfies the
  // mask (used perpetually in §4).
  auto fsm = Compile("after Buy & (currBal>credLim)");
  ASSERT_TRUE(fsm.ok());

  int32_t s = MoveResolved(*fsm, 0, kAfterBuy, true);
  EXPECT_TRUE(fsm->Accepting(s));

  // Next Buy under the limit: not accepting.
  s = MoveResolved(*fsm, s, kAfterBuy, false);
  EXPECT_FALSE(fsm->Accepting(s));

  // Over the limit again: accepting again.
  s = MoveResolved(*fsm, s, kAfterBuy, true);
  EXPECT_TRUE(fsm->Accepting(s));

  // A PayBill never accepts.
  s = MoveResolved(*fsm, s, kAfterPayBill, true);
  EXPECT_FALSE(fsm->Accepting(s));
}

// ----------------------------------------------------- basic operators

TEST(FsmOperators, Sequence) {
  auto fsm = Compile("after Buy, after PayBill");
  ASSERT_TRUE(fsm.ok());
  int32_t s = fsm->start();
  s = fsm->Move(s, kAfterBuy);
  EXPECT_FALSE(fsm->Accepting(s));
  s = fsm->Move(s, kAfterPayBill);
  EXPECT_TRUE(fsm->Accepting(s));
}

TEST(FsmOperators, SequenceMatchesSubsequence) {
  // Unanchored: (any*,) prepended; the pair can appear anywhere, with
  // noise in between matching "subsequences in the event stream".
  auto fsm = Compile("after Buy, after PayBill");
  ASSERT_TRUE(fsm.ok());
  int32_t s = fsm->start();
  for (Symbol noise : {kBigBuy, kAfterPayBill, kBigBuy}) {
    s = fsm->Move(s, noise);
  }
  s = fsm->Move(s, kAfterBuy);
  // Interleaved noise: 'after Buy, after PayBill' as a *contiguous*
  // subsequence requires PayBill right after Buy.
  int32_t noisy = fsm->Move(s, kBigBuy);
  noisy = fsm->Move(noisy, kAfterPayBill);
  EXPECT_FALSE(fsm->Accepting(noisy))
      << "',' is the regular sequence operator: contiguous";
  s = fsm->Move(s, kAfterPayBill);
  EXPECT_TRUE(fsm->Accepting(s));
}

TEST(FsmOperators, Union) {
  auto fsm = Compile("BigBuy || after PayBill");
  ASSERT_TRUE(fsm.ok());
  EXPECT_TRUE(fsm->Accepting(fsm->Move(fsm->start(), kBigBuy)));
  EXPECT_TRUE(fsm->Accepting(fsm->Move(fsm->start(), kAfterPayBill)));
  EXPECT_FALSE(fsm->Accepting(fsm->Move(fsm->start(), kAfterBuy)));
}

TEST(FsmOperators, StarRepetition) {
  // Three consecutive buys.
  auto fsm = Compile("after Buy, after Buy, after Buy");
  ASSERT_TRUE(fsm.ok());
  int32_t s = fsm->start();
  s = fsm->Move(s, kAfterBuy);
  s = fsm->Move(s, kAfterBuy);
  EXPECT_FALSE(fsm->Accepting(s));
  s = fsm->Move(s, kAfterBuy);
  EXPECT_TRUE(fsm->Accepting(s));
  // Still accepting on a fourth (the last three form the pattern).
  s = fsm->Move(s, kAfterBuy);
  EXPECT_TRUE(fsm->Accepting(s));
}

TEST(FsmOperators, PlusAndOptional) {
  auto plus = Compile("BigBuy+, after PayBill");
  ASSERT_TRUE(plus.ok());
  int32_t s = plus->start();
  s = plus->Move(s, kAfterPayBill);
  EXPECT_FALSE(plus->Accepting(s)) << "needs at least one BigBuy first";
  s = plus->Move(s, kBigBuy);
  s = plus->Move(s, kAfterPayBill);
  EXPECT_TRUE(plus->Accepting(s));

  auto opt = Compile("BigBuy?, after PayBill");
  ASSERT_TRUE(opt.ok());
  EXPECT_TRUE(opt->Accepting(opt->Move(opt->start(), kAfterPayBill)));
}

TEST(FsmOperators, Any) {
  auto fsm = Compile("after Buy, any, after Buy");
  ASSERT_TRUE(fsm.ok());
  int32_t s = fsm->start();
  s = fsm->Move(s, kAfterBuy);
  s = fsm->Move(s, kAfterPayBill);  // `any` matches it
  s = fsm->Move(s, kAfterBuy);
  EXPECT_TRUE(fsm->Accepting(s));
}

TEST(FsmOperators, BoundedRepetition) {
  // BigBuy{2,3}, after PayBill: two or three BigBuys then a payment.
  auto fsm = Compile("BigBuy{2,3}, after PayBill");
  ASSERT_TRUE(fsm.ok());
  auto run = [&](int buys) {
    int32_t s = fsm->start();
    for (int i = 0; i < buys; ++i) s = fsm->Move(s, kBigBuy);
    s = fsm->Move(s, kAfterPayBill);
    return fsm->Accepting(s);
  };
  EXPECT_FALSE(run(1));
  EXPECT_TRUE(run(2));
  EXPECT_TRUE(run(3));
  // With the (any*,) prefix, 4 buys still end with 3 in a row.
  EXPECT_TRUE(run(4));
}

TEST(FsmOperators, NestedRelative) {
  // relative can nest: once (Buy then PayBill-sometime) happened, any
  // later BigBuy satisfies.
  auto fsm =
      Compile("relative((relative(after Buy, after PayBill)), BigBuy)");
  ASSERT_TRUE(fsm.ok());
  int32_t s = fsm->start();
  s = fsm->Move(s, kBigBuy);  // too early
  EXPECT_FALSE(fsm->Accepting(s));
  s = fsm->Move(s, kAfterBuy);
  s = fsm->Move(s, kAfterPayBill);
  EXPECT_FALSE(fsm->Accepting(s));
  s = fsm->Move(s, kBigBuy);
  EXPECT_TRUE(fsm->Accepting(s));
}

// ----------------------------------------------------------- anchoring

TEST(Anchoring, AnchoredDiesOnMismatch) {
  // ^(after Buy, after PayBill): search from the activation point with
  // nothing ignored (§5.1.1).
  auto fsm = Compile("^(after Buy, after PayBill)");
  ASSERT_TRUE(fsm.ok());
  int32_t s = fsm->start();
  s = fsm->Move(s, kBigBuy);
  EXPECT_EQ(s, Fsm::kDeadState);
  EXPECT_FALSE(fsm->Accepting(s));
  // Dead machines stay dead.
  EXPECT_EQ(fsm->Move(s, kAfterBuy), Fsm::kDeadState);
}

TEST(Anchoring, AnchoredExactMatch) {
  auto fsm = Compile("^(after Buy, after PayBill)");
  ASSERT_TRUE(fsm.ok());
  int32_t s = fsm->start();
  s = fsm->Move(s, kAfterBuy);
  ASSERT_NE(s, Fsm::kDeadState);
  s = fsm->Move(s, kAfterPayBill);
  EXPECT_TRUE(fsm->Accepting(s));
}

TEST(Anchoring, UnanchoredMachinesAreTotal) {
  for (const char* text :
       {"after Buy", "after Buy, after PayBill", "BigBuy || after Buy",
        "relative((after Buy & MoreCred()), after PayBill)",
        "(after Buy, BigBuy)+ || after PayBill"}) {
    auto fsm = Compile(text);
    ASSERT_TRUE(fsm.ok()) << text;
    for (const Fsm::State& state : fsm->states()) {
      if (state.mask >= 0) continue;
      for (Symbol sym : fsm->alphabet()) {
        EXPECT_NE(fsm->Move(state.statenum, sym), Fsm::kDeadState)
            << text << " state " << state.statenum << " symbol " << sym;
      }
    }
  }
}

// --------------------------------------------------- ignore semantics

TEST(IgnoreSemantics, OutOfAlphabetEventsAreIgnored) {
  // Derived-class events (symbols outside the base class's alphabet) must
  // not disturb base-class triggers (§5.4.3).
  auto fsm = Compile("after Buy, after PayBill");
  ASSERT_TRUE(fsm.ok());
  constexpr Symbol kDerivedEvent = 99;
  int32_t s = fsm->start();
  s = fsm->Move(s, kAfterBuy);
  int32_t before = s;
  s = fsm->Move(s, kDerivedEvent);
  EXPECT_EQ(s, before);
  s = fsm->Move(s, kAfterPayBill);
  EXPECT_TRUE(fsm->Accepting(s));
}

TEST(IgnoreSemantics, AnchoredAlsoIgnoresOutOfAlphabet) {
  auto fsm = Compile("^(after Buy)");
  ASSERT_TRUE(fsm.ok());
  int32_t s = fsm->Move(fsm->start(), 99);
  EXPECT_EQ(s, fsm->start()) << "only alphabet symbols can kill anchored "
                                "machines";
}

// -------------------------------------------------------------- errors

TEST(CompileErrors, UndeclaredEvent) {
  auto fsm = Compile("after Refund");
  ASSERT_FALSE(fsm.ok());
  EXPECT_EQ(fsm.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompileErrors, UnregisteredMask) {
  auto fsm = Compile("after Buy & Unknown()");
  ASSERT_FALSE(fsm.ok());
  EXPECT_EQ(fsm.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompileErrors, NullableMaskedOperand) {
  auto fsm = Compile("(after Buy)* & MoreCred()");
  ASSERT_FALSE(fsm.ok());
  EXPECT_EQ(fsm.status().code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------------------- minimization

TEST(Minimization, EquivalentStatesMerge) {
  // (a || a) compiles to the same machine as a.
  auto a = Compile("after Buy");
  auto aa = Compile("after Buy || after Buy");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(aa.ok());
  EXPECT_EQ(a->NumStates(), aa->NumStates());
}

TEST(Minimization, PreservesMaskStructure) {
  auto fsm = Compile("after Buy & MoreCred(), after PayBill");
  ASSERT_TRUE(fsm.ok());
  int mask_states = 0;
  for (const auto& s : fsm->states()) {
    if (s.mask >= 0) ++mask_states;
  }
  EXPECT_EQ(mask_states, 1);
}

TEST(Minimization, StartsNumberedFromZero) {
  auto fsm = Compile("relative((after Buy & MoreCred()), after PayBill)");
  ASSERT_TRUE(fsm.ok());
  EXPECT_EQ(fsm->start(), 0);
  for (size_t i = 0; i < fsm->NumStates(); ++i) {
    EXPECT_EQ(fsm->states()[i].statenum, static_cast<int32_t>(i));
  }
}

// ------------------------------------------------- chained mask states

TEST(MaskChains, TwoMasksEvaluateInSequence) {
  CompileInput input = CredCardInput("after Buy & MoreCred() & (currBal>credLim)");
  input.mask_ids = {{"MoreCred()", 0}, {"(currBal>credLim)", 1}};
  auto fsm = CompileFsm(input);
  ASSERT_TRUE(fsm.ok()) << fsm.status().ToString();

  std::vector<int32_t> evaluated;
  auto eval_true = [&](int32_t id) -> Result<bool> {
    evaluated.push_back(id);
    return true;
  };
  int32_t s = fsm->Move(fsm->start(), kAfterBuy);
  auto resolved = fsm->ResolveMasks(s, eval_true);
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(fsm->Accepting(resolved.value()));
  EXPECT_EQ(evaluated, (std::vector<int32_t>{0, 1}));

  // First true, second false: not accepted.
  evaluated.clear();
  auto eval_mixed = [&](int32_t id) -> Result<bool> {
    evaluated.push_back(id);
    return id == 0;
  };
  s = fsm->Move(fsm->start(), kAfterBuy);
  resolved = fsm->ResolveMasks(s, eval_mixed);
  ASSERT_TRUE(resolved.ok());
  EXPECT_FALSE(fsm->Accepting(resolved.value()));
}

TEST(MaskChains, EvaluatorErrorPropagates) {
  auto fsm = Compile("after Buy & MoreCred()");
  ASSERT_TRUE(fsm.ok());
  int32_t s = fsm->Move(fsm->start(), kAfterBuy);
  auto resolved = fsm->ResolveMasks(s, [](int32_t) -> Result<bool> {
    return Status::Internal("mask blew up");
  });
  EXPECT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kInternal);
}

// --------------------------------------------------------- statistics

TEST(FsmStats, CountsAreConsistent) {
  auto fsm = Compile("relative((after Buy & MoreCred()), after PayBill)");
  ASSERT_TRUE(fsm.ok());
  size_t transitions = 0;
  for (const auto& s : fsm->states()) transitions += s.transitions.size();
  EXPECT_EQ(fsm->NumTransitions(), transitions);
  EXPECT_GT(fsm->MemoryBytes(), 0u);
}

}  // namespace
}  // namespace ode
