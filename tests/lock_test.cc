// Lock-manager tests: mode compatibility, upgrade, FIFO fairness,
// deadlock detection, timeout, and multi-threaded stress.

#include "storage/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace ode {
namespace {

const Oid kA(100), kB(200);

TEST(LockManager, SharedLocksAreCompatible) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, kA, LockMode::kShared).ok());
  EXPECT_TRUE(locks.Acquire(2, kA, LockMode::kShared).ok());
  EXPECT_TRUE(locks.Holds(1, kA, LockMode::kShared));
  EXPECT_TRUE(locks.Holds(2, kA, LockMode::kShared));
  EXPECT_FALSE(locks.Holds(1, kA, LockMode::kExclusive));
}

TEST(LockManager, ReacquireIsIdempotent) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, kA, LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Acquire(1, kA, LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Acquire(1, kA, LockMode::kShared).ok())
      << "S under held X is a no-op";
  EXPECT_EQ(locks.LocksHeld(1), 1u);
}

TEST(LockManager, UpgradeSoleHolder) {
  LockManager locks;
  EXPECT_TRUE(locks.Acquire(1, kA, LockMode::kShared).ok());
  EXPECT_TRUE(locks.Acquire(1, kA, LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Holds(1, kA, LockMode::kExclusive));
}

TEST(LockManager, ExclusiveBlocksUntilRelease) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, kA, LockMode::kExclusive).ok());

  std::atomic<bool> acquired{false};
  std::thread t([&] {
    Status st = locks.Acquire(2, kA, LockMode::kShared);
    EXPECT_TRUE(st.ok()) << st.ToString();
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired);
  locks.ReleaseAll(1);
  t.join();
  EXPECT_TRUE(acquired);
  EXPECT_GT(locks.conflicts(), 0u);
}

TEST(LockManager, DeadlockDetected) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, kA, LockMode::kExclusive).ok());
  ASSERT_TRUE(locks.Acquire(2, kB, LockMode::kExclusive).ok());

  std::thread t([&] {
    // Txn 1 waits for B (held by 2).
    Status st = locks.Acquire(1, kB, LockMode::kExclusive);
    EXPECT_TRUE(st.ok()) << "winner should eventually acquire";
    locks.ReleaseAll(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Txn 2 requesting A closes the cycle: it must be chosen as victim.
  Status st = locks.Acquire(2, kA, LockMode::kExclusive);
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  // The message names the wait-for edge that closed the cycle: the
  // victim, the contended oid, and the holder whose chain leads back.
  EXPECT_NE(st.message().find("wait-for cycle"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("victim txn 2"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find(kA.ToString()), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("held by txn 1"), std::string::npos)
      << st.ToString();
  EXPECT_GE(locks.deadlocks(), 1u);
  locks.ReleaseAll(2);
  t.join();
}

TEST(LockManager, UpgradeDeadlockDetected) {
  // Two shared holders both upgrading: the second must be the victim.
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, kA, LockMode::kShared).ok());
  ASSERT_TRUE(locks.Acquire(2, kA, LockMode::kShared).ok());

  std::thread t([&] {
    Status st = locks.Acquire(1, kA, LockMode::kExclusive);
    EXPECT_TRUE(st.ok());
    locks.ReleaseAll(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Status st = locks.Acquire(2, kA, LockMode::kExclusive);
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  EXPECT_NE(st.message().find("wait-for cycle"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("victim txn 2"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("held by txn 1"), std::string::npos)
      << st.ToString();
  locks.ReleaseAll(2);
  t.join();
}

TEST(LockManager, TimeoutFires) {
  LockManager::Options options;
  options.timeout = std::chrono::milliseconds(50);
  LockManager locks(options);
  ASSERT_TRUE(locks.Acquire(1, kA, LockMode::kExclusive).ok());
  Status st = locks.Acquire(2, kA, LockMode::kExclusive);
  EXPECT_EQ(st.code(), StatusCode::kLockTimeout);
  locks.ReleaseAll(1);
  EXPECT_TRUE(locks.Acquire(2, kA, LockMode::kExclusive).ok());
  locks.ReleaseAll(2);
}

TEST(LockManager, WritersNotStarvedByReaders) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, kA, LockMode::kShared).ok());

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    EXPECT_TRUE(locks.Acquire(2, kA, LockMode::kExclusive).ok());
    writer_done = true;
    locks.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_FALSE(writer_done);

  // A new reader behind a queued writer must wait, not jump the queue.
  std::atomic<bool> reader_done{false};
  std::thread reader([&] {
    EXPECT_TRUE(locks.Acquire(3, kA, LockMode::kShared).ok());
    reader_done = true;
    locks.ReleaseAll(3);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(reader_done) << "reader must queue behind the writer";

  locks.ReleaseAll(1);
  writer.join();
  reader.join();
  EXPECT_TRUE(writer_done);
  EXPECT_TRUE(reader_done);
}

TEST(LockManager, ReleaseAllFreesEverything) {
  LockManager locks;
  ASSERT_TRUE(locks.Acquire(1, kA, LockMode::kExclusive).ok());
  ASSERT_TRUE(locks.Acquire(1, kB, LockMode::kShared).ok());
  EXPECT_EQ(locks.LocksHeld(1), 2u);
  locks.ReleaseAll(1);
  EXPECT_EQ(locks.LocksHeld(1), 0u);
  EXPECT_TRUE(locks.Acquire(2, kA, LockMode::kExclusive).ok());
  EXPECT_TRUE(locks.Acquire(2, kB, LockMode::kExclusive).ok());
  locks.ReleaseAll(2);
}

TEST(LockManager, StressManyThreadsMutualExclusion) {
  LockManager locks;
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  int counter = 0;  // protected by the X lock on kA
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        TxnId txn = static_cast<TxnId>(t * kRounds + i + 1);
        Status st = locks.Acquire(txn, kA, LockMode::kExclusive);
        if (!st.ok()) {
          ++failures;
          continue;
        }
        ++counter;  // would race without mutual exclusion
        locks.ReleaseAll(txn);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kRounds - failures.load());
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace ode
