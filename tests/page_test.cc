// Slotted-page tests (disk storage manager substrate), including a
// randomized property test against a reference map.

#include "storage/page.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/hash.h"
#include "common/random.h"

namespace ode {
namespace {

std::string PayloadOf(const Page& page, uint16_t slot) {
  uint64_t oid;
  std::vector<char> payload;
  Status st = page.Read(slot, &oid, &payload);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return std::string(payload.begin(), payload.end());
}

TEST(Page, FormatIsEmpty) {
  Page page;
  page.Format(7);
  EXPECT_EQ(page.page_id(), 7u);
  EXPECT_EQ(page.slot_count(), 0u);
  EXPECT_GT(page.FreeSpaceForInsert(), 4000u);
}

TEST(Page, InsertAndRead) {
  Page page;
  page.Format(1);
  std::string data = "hello page";
  auto slot = page.Insert(42, Slice(data));
  ASSERT_TRUE(slot.ok());
  uint64_t oid;
  std::vector<char> payload;
  ASSERT_TRUE(page.Read(*slot, &oid, &payload).ok());
  EXPECT_EQ(oid, 42u);
  EXPECT_EQ(std::string(payload.begin(), payload.end()), data);
}

TEST(Page, EmptyPayloadAllowed) {
  Page page;
  page.Format(1);
  auto slot = page.Insert(1, Slice());
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(PayloadOf(page, *slot), "");
}

TEST(Page, DeleteFreesSlotForReuse) {
  Page page;
  page.Format(1);
  auto a = page.Insert(1, Slice(std::string("aaa")));
  auto b = page.Insert(2, Slice(std::string("bbb")));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(page.Delete(*a).ok());
  EXPECT_FALSE(page.SlotLive(*a));
  auto c = page.Insert(3, Slice(std::string("ccc")));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a) << "dead slots are reused";
  EXPECT_EQ(PayloadOf(page, *b), "bbb");
}

TEST(Page, ReadDeadSlotFails) {
  Page page;
  page.Format(1);
  auto a = page.Insert(1, Slice(std::string("x")));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(page.Delete(*a).ok());
  uint64_t oid;
  std::vector<char> payload;
  EXPECT_TRUE(page.Read(*a, &oid, &payload).IsNotFound());
  EXPECT_TRUE(page.Delete(*a).IsNotFound());
  EXPECT_TRUE(page.Read(99, &oid, &payload).IsNotFound());
}

TEST(Page, UpdateInPlaceAndGrow) {
  Page page;
  page.Format(1);
  auto slot = page.Insert(5, Slice(std::string("short")));
  ASSERT_TRUE(slot.ok());
  // Shrink.
  ASSERT_TRUE(page.Update(*slot, Slice(std::string("s"))).ok());
  EXPECT_EQ(PayloadOf(page, *slot), "s");
  // Grow (relocates within the page, same slot).
  std::string big(1000, 'z');
  ASSERT_TRUE(page.Update(*slot, Slice(big)).ok());
  EXPECT_EQ(PayloadOf(page, *slot), big);
}

TEST(Page, FillUntilFull) {
  Page page;
  page.Format(1);
  std::string rec(100, 'r');
  int inserted = 0;
  while (true) {
    auto slot = page.Insert(static_cast<uint64_t>(inserted), Slice(rec));
    if (!slot.ok()) break;
    ++inserted;
  }
  // 4096 bytes / (100 payload + 8 oid + 4 slot) ~ 36 records.
  EXPECT_GT(inserted, 30);
  EXPECT_LT(inserted, 40);
  // All are intact.
  int seen = 0;
  page.ForEach([&](uint16_t, uint64_t, Slice payload) {
    EXPECT_EQ(payload.size(), rec.size());
    ++seen;
  });
  EXPECT_EQ(seen, inserted);
}

TEST(Page, OversizedRecordRejected) {
  Page page;
  page.Format(1);
  std::string big(Page::kMaxPayload + 1, 'x');
  EXPECT_FALSE(page.Insert(1, Slice(big)).ok());
  std::string max(Page::kMaxPayload, 'x');
  EXPECT_TRUE(page.Insert(1, Slice(max)).ok());
}

TEST(Page, CompactionReclaimsDeletedSpace) {
  Page page;
  page.Format(1);
  std::string rec(500, 'a');
  std::vector<uint16_t> slots;
  while (true) {
    auto slot = page.Insert(slots.size(), Slice(rec));
    if (!slot.ok()) break;
    slots.push_back(*slot);
  }
  ASSERT_GE(slots.size(), 4u);
  // Delete every other record; a record of ~1000 bytes now only fits
  // after compaction.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page.Delete(slots[i]).ok());
  }
  std::string big(1000, 'b');
  auto slot = page.Insert(999, Slice(big));
  ASSERT_TRUE(slot.ok()) << "compaction should make room";
  EXPECT_EQ(PayloadOf(page, *slot), big);
  // Survivors unharmed.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(PayloadOf(page, slots[i]), rec);
  }
}

TEST(Page, SurvivesSerializationRoundTrip) {
  Page page;
  page.Format(3);
  auto a = page.Insert(10, Slice(std::string("abc")));
  auto b = page.Insert(20, Slice(std::string("defgh")));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  Page copy;
  copy.Load(page.data());
  EXPECT_EQ(copy.page_id(), 3u);
  EXPECT_EQ(PayloadOf(copy, *a), "abc");
  EXPECT_EQ(PayloadOf(copy, *b), "defgh");
}

// --- checksums and structural validation (silent-corruption defense) ---

TEST(Crc32c, KnownVector) {
  // The CRC32C check value: crc of the ASCII digits "123456789".
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xE3069283u);
}

TEST(Crc32c, SeedChainsIncrementally) {
  const char data[] = "hello, page checksums";
  uint32_t whole = Crc32c(data, sizeof(data) - 1);
  uint32_t part = Crc32c(data, 5);
  part = Crc32c(data + 5, sizeof(data) - 1 - 5, part);
  EXPECT_EQ(part, whole);
}

TEST(PageChecksum, RoundTripAndFlippedBitDetection) {
  Page page;
  page.Format(11);
  ASSERT_TRUE(page.Insert(1, Slice(std::string("payload"))).ok());
  page.UpdateChecksum();
  EXPECT_TRUE(page.VerifyChecksum());
  EXPECT_EQ(page.stored_checksum(), PageChecksum(page.data()));

  // Any single flipped bit — payload, header, or slot directory — is
  // detected.
  for (size_t off : {size_t{0}, size_t{20}, kPageSize - 3}) {
    page.mutable_data()[off] ^= 0x10;
    EXPECT_FALSE(page.VerifyChecksum()) << "offset " << off;
    page.mutable_data()[off] ^= 0x10;
  }
  EXPECT_TRUE(page.VerifyChecksum());

  // A flip inside the stored checksum field itself is detected too.
  page.mutable_data()[9] ^= 0x01;
  EXPECT_FALSE(page.VerifyChecksum());
}

TEST(PageValidate, AcceptsWellFormedPages) {
  Page page;
  page.Format(1);
  EXPECT_TRUE(page.ValidateStructure().ok());
  ASSERT_TRUE(page.Insert(1, Slice(std::string("aaa"))).ok());
  ASSERT_TRUE(page.Insert(2, Slice(std::string(900, 'b'))).ok());
  EXPECT_TRUE(page.ValidateStructure().ok());
}

TEST(PageValidate, RejectsMalformedSlotDirectory) {
  auto make_page = [] {
    Page page;
    page.Format(1);
    EXPECT_TRUE(page.Insert(7, Slice(std::string("record"))).ok());
    return page;
  };

  {  // Slot count larger than the page could possibly hold.
    Page page = make_page();
    page.mutable_data()[4] = static_cast<char>(0xff);
    page.mutable_data()[5] = static_cast<char>(0xff);
    Status st = page.ValidateStructure();
    EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  }
  {  // Free pointer pointing inside the header.
    Page page = make_page();
    page.mutable_data()[6] = 2;
    page.mutable_data()[7] = 0;
    EXPECT_TRUE(page.ValidateStructure().IsCorruption());
  }
  {  // Slot offset sends the record past the directory.
    Page page = make_page();
    size_t dir = kPageSize - 4;
    page.mutable_data()[dir] = static_cast<char>(0xf0);
    page.mutable_data()[dir + 1] = static_cast<char>(0x0f);
    EXPECT_TRUE(page.ValidateStructure().IsCorruption());
  }
  {  // Slot length overruns the record area.
    Page page = make_page();
    size_t dir = kPageSize - 4;
    page.mutable_data()[dir + 2] = static_cast<char>(0xff);
    page.mutable_data()[dir + 3] = static_cast<char>(0x0f);
    EXPECT_TRUE(page.ValidateStructure().IsCorruption());
  }
}

// Property test: random insert/update/delete against a reference map.
class PageFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageFuzz, MatchesReferenceModel) {
  Random rng(GetParam());
  Page page;
  page.Format(1);
  std::map<uint16_t, std::pair<uint64_t, std::string>> model;
  uint64_t next_oid = 1;

  for (int step = 0; step < 2000; ++step) {
    int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {  // insert
      std::string data(rng.Uniform(200), static_cast<char>('a' + rng.Uniform(26)));
      auto slot = page.Insert(next_oid, Slice(data));
      if (slot.ok()) {
        model[*slot] = {next_oid, data};
        ++next_oid;
      }
    } else if (op == 1 && !model.empty()) {  // update
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      std::string data(rng.Uniform(300), 'u');
      Status st = page.Update(it->first, Slice(data));
      if (st.ok()) {
        it->second.second = data;
      } else {
        // Page::Update contract: on kNotSupported the slot is gone.
        ASSERT_EQ(st.code(), StatusCode::kNotSupported);
        model.erase(it);
      }
    } else if (!model.empty()) {  // delete
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(page.Delete(it->first).ok());
      model.erase(it);
    }
  }

  // Final state matches the model exactly.
  size_t live = 0;
  page.ForEach([&](uint16_t slot, uint64_t oid, Slice payload) {
    auto it = model.find(slot);
    ASSERT_NE(it, model.end());
    EXPECT_EQ(it->second.first, oid);
    EXPECT_EQ(it->second.second, payload.ToString());
    ++live;
  });
  EXPECT_EQ(live, model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageFuzz,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace ode
