// Property-based tests of the FSM compilation pipeline: for randomly
// generated event expressions and random event streams (with random mask
// oracles), the compiled, minimized DFA must accept exactly where the
// reference NFA simulation accepts; minimization must not change
// behavior; and the parser must round-trip ToString output.

#include <gtest/gtest.h>

#include "common/random.h"
#include "events/event_parser.h"
#include "events/fsm.h"
#include "events/minimize.h"
#include "expr_gen.h"

namespace ode {
namespace {

constexpr Symbol kSymA = 2, kSymB = 3, kSymC = 4;

CompileInput MakeInput(ExprPtr expr, bool anchored) {
  CompileInput input;
  input.expr = std::move(expr);
  input.anchored = anchored;
  input.alphabet = {kSymA, kSymB, kSymC};
  input.event_symbols = {{"a", kSymA}, {"b", kSymB}, {"c", kSymC}};
  input.mask_ids = {{"p0()", 0}, {"p1()", 1}};
  return input;
}

/// Runs the compiled FSM over the stream with the per-position oracle,
/// returning the acceptance trace.
std::vector<bool> RunFsm(const Fsm& fsm, const std::vector<Symbol>& stream,
                         const std::vector<std::vector<bool>>& masks) {
  std::vector<bool> accepts;
  int32_t s = fsm.start();
  EXPECT_FALSE(fsm.IsMaskState(s)) << "start must not be a mask state";
  for (size_t i = 0; i < stream.size(); ++i) {
    s = fsm.Move(s, stream[i]);
    auto resolved = fsm.ResolveMasks(s, [&](int32_t m) -> Result<bool> {
      return masks[i][static_cast<size_t>(m)];
    });
    EXPECT_TRUE(resolved.ok()) << resolved.status().ToString();
    s = resolved.ValueOr(Fsm::kDeadState);
    accepts.push_back(fsm.Accepting(s));
  }
  return accepts;
}

class FsmProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FsmProperty, DfaMatchesNfaReference) {
  Random rng(GetParam());
  int tested = 0;
  for (int round = 0; round < 60; ++round) {
    CompileInput input =
        MakeInput(testgen::RandomExpr(rng, 3), rng.Bernoulli(0.3));
    auto nfa = BuildNfa(input);
    if (!nfa.ok()) continue;  // e.g. rejected nullable-mask combinations
    auto fsm = CompileFsm(input);
    ASSERT_TRUE(fsm.ok()) << ToString(input.expr) << ": "
                          << fsm.status().ToString();
    ++tested;

    for (int trial = 0; trial < 10; ++trial) {
      size_t len = 1 + rng.Uniform(20);
      std::vector<Symbol> stream;
      std::vector<std::vector<bool>> masks;
      for (size_t i = 0; i < len; ++i) {
        stream.push_back(
            static_cast<Symbol>(kSymA + rng.Uniform(3)));
        masks.push_back({rng.Bernoulli(0.5), rng.Bernoulli(0.5)});
      }
      std::vector<bool> expected = SimulateNfa(*nfa, stream, masks);
      std::vector<bool> actual = RunFsm(*fsm, stream, masks);
      ASSERT_EQ(actual, expected)
          << "expr: " << (input.anchored ? "^" : "")
          << ToString(input.expr) << " seed " << GetParam() << " round "
          << round << " trial " << trial;
    }
  }
  EXPECT_GT(tested, 20) << "generator should produce mostly-valid exprs";
}

TEST_P(FsmProperty, MinimizationPreservesBehavior) {
  Random rng(GetParam() ^ 0xfeed);
  for (int round = 0; round < 40; ++round) {
    CompileInput input =
        MakeInput(testgen::RandomExpr(rng, 3), rng.Bernoulli(0.3));
    auto nfa = BuildNfa(input);
    if (!nfa.ok()) continue;
    auto dfa = BuildDfa(*nfa);
    ASSERT_TRUE(dfa.ok());
    Dfa minimized = MinimizeDfa(*dfa);
    EXPECT_LE(minimized.states.size(), dfa->states.size());

    Fsm full(*dfa, input.alphabet);
    Fsm small(minimized, input.alphabet);
    for (int trial = 0; trial < 6; ++trial) {
      size_t len = 1 + rng.Uniform(16);
      std::vector<Symbol> stream;
      std::vector<std::vector<bool>> masks;
      for (size_t i = 0; i < len; ++i) {
        stream.push_back(static_cast<Symbol>(kSymA + rng.Uniform(3)));
        masks.push_back({rng.Bernoulli(0.5), rng.Bernoulli(0.5)});
      }
      EXPECT_EQ(RunFsm(small, stream, masks), RunFsm(full, stream, masks))
          << "expr: " << ToString(input.expr);
    }
  }
}

TEST_P(FsmProperty, ParserRoundTripsRandomExpressions) {
  Random rng(GetParam() ^ 0xc0ffee);
  for (int round = 0; round < 100; ++round) {
    ExprPtr expr = testgen::RandomExpr(rng, 3);
    std::string text = ToString(expr);
    auto parsed = ParseEventExpr(text);
    ASSERT_TRUE(parsed.ok()) << text << ": "
                             << parsed.status().ToString();
    EXPECT_TRUE(ExprEquals(parsed->expr, expr))
        << "original: " << text
        << "\nreparsed: " << ToString(parsed->expr);
  }
}

TEST_P(FsmProperty, OutOfAlphabetSymbolsNeverChangeState) {
  Random rng(GetParam() ^ 0xdead);
  for (int round = 0; round < 20; ++round) {
    CompileInput input = MakeInput(testgen::RandomExpr(rng, 3), false);
    auto fsm = CompileFsm(input);
    if (!fsm.ok()) continue;
    for (const Fsm::State& state : fsm->states()) {
      if (state.mask >= 0) continue;
      EXPECT_EQ(fsm->Move(state.statenum, 999), state.statenum);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FsmProperty,
                         ::testing::Values(1, 7, 42, 1234, 0xabcdef));

}  // namespace
}  // namespace ode
