#ifndef ODE_TESTS_EXPR_GEN_H_
#define ODE_TESTS_EXPR_GEN_H_

// Random event-expression generator shared by the property-based tests.

#include "common/random.h"
#include "events/event_expr.h"

namespace ode {
namespace testgen {

/// Random expression over events {a,b,c} and masks {p0(),p1()}. Masked
/// operands are made non-nullable so the expression always compiles.
/// With `with_masks` false, only pure regular expressions are produced.
inline ExprPtr RandomExpr(Random& rng, int depth, bool with_masks = true) {
  const char* events[] = {"a", "b", "c"};
  if (depth <= 0) {
    if (rng.Bernoulli(0.15)) return Any();
    return Basic(events[rng.Uniform(3)]);
  }
  switch (rng.Uniform(with_masks ? 8 : 7)) {
    case 0:
      return Basic(events[rng.Uniform(3)]);
    case 1:
      return Any();
    case 2:
      return Seq(RandomExpr(rng, depth - 1, with_masks),
                 RandomExpr(rng, depth - 1, with_masks));
    case 3:
      return Or(RandomExpr(rng, depth - 1, with_masks),
                RandomExpr(rng, depth - 1, with_masks));
    case 4:
      return Star(RandomExpr(rng, depth - 1, with_masks));
    case 5:
      return Plus(RandomExpr(rng, depth - 1, with_masks));
    case 6:
      return Opt(RandomExpr(rng, depth - 1, with_masks));
    default: {
      ExprPtr inner = RandomExpr(rng, depth - 1, with_masks);
      if (Nullable(inner)) {
        inner = Seq(Basic(events[rng.Uniform(3)]), std::move(inner));
      }
      return Mask(std::move(inner), rng.Bernoulli(0.5) ? "p0()" : "p1()");
    }
  }
}

}  // namespace testgen
}  // namespace ode

#endif  // ODE_TESTS_EXPR_GEN_H_
