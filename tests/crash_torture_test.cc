// Crash-torture harness: runs a trigger-heavy workload (composite
// events, persistent TriggerStates) on a disk database behind a
// FaultInjectionEnv, crashes it at EVERY mutating I/O operation, drops
// unsynced data the way a power loss would, reopens, and asserts the
// joint recovery invariant:
//
//   the recovered database equals the state after some committed-txn
//   prefix j, with j >= the number of commits that were acknowledged
//   before the crash. One snapshot covers objects AND trigger FSM
//   states, so a TriggerState that ran ahead of (or lagged behind) its
//   anchor object's committed image can never match any reference
//   snapshot and is reported as a violation.
//
// Acked commits must be durable (j >= acked); unacked work may round up
// to at most whole committed transactions (a commit record that reached
// the OS cache and survived the torn tail is a legitimate commit the
// caller merely never heard about); aborted transactions appear in no
// reference snapshot and so must be invisible.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "storage/disk_storage_manager.h"
#include "storage/fault_injection_env.h"
#include "odepp/session.h"

namespace ode {
namespace {

// A counter cell. TripleBump is a perpetual composite-event trigger:
// every third Bump (tracked across transactions by a persistent
// TriggerState FSM) increments `fired` — so the trigger state and the
// object image must advance in lockstep or recovery is broken.
struct TCell {
  int32_t count = 0;
  int32_t fired = 0;

  void Bump() { ++count; }

  void Encode(Encoder& enc) const {
    enc.PutI32(count);
    enc.PutI32(fired);
  }
  static Result<TCell> Decode(Decoder& dec) {
    TCell c;
    ODE_RETURN_NOT_OK(dec.GetI32(&c.count));
    ODE_RETURN_NOT_OK(dec.GetI32(&c.fired));
    return c;
  }
};

constexpr int kCells = 3;
constexpr int kTxns = 30;
constexpr uint64_t kWorkloadSeed = 42;

struct RunResult {
  int acked = 0;         // setup + workload commits acknowledged OK
  bool completed = false;  // workload ran to the end and Close succeeded
};

class CrashTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ode_crash_torture.db";
    Cleanup();
    DeclareSchema();
    // Every crash run intentionally wedges the store and logs kError;
    // at hundreds of sweep points that would drown the test output.
    SetLogLevel(LogLevel::kSilence);
  }
  void TearDown() override {
    SetLogLevel(LogLevel::kWarn);
    Cleanup();
  }

  void Cleanup() {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }

  void DeclareSchema() {
    schema_.DeclareClass<TCell>("TCell")
        .Event("after Bump")
        .Method("Bump", &TCell::Bump)
        .Trigger(
            "TripleBump", "relative(after Bump, after Bump, after Bump)",
            [](TCell& c, TriggerFireContext&) -> Status {
              ++c.fired;
              return Status::OK();
            },
            CouplingMode::kImmediate, /*perpetual=*/true);
    ASSERT_TRUE(schema_.Freeze().ok());
  }

  Result<std::unique_ptr<Session>> OpenSession(FaultInjectionEnv* env,
                                               uint32_t retry_attempts,
                                               DiskStorageManager** store) {
    DiskStorageManager::Options dopts;
    dopts.env = env;
    dopts.io_retry_attempts = retry_attempts;
    dopts.io_retry_backoff_us = 1;
    auto dsm = std::make_unique<DiskStorageManager>(path_, dopts);
    if (store != nullptr) *store = dsm.get();
    return Session::OpenWith(std::move(dsm), &schema_, Session::Options());
  }

  /// Canonical rendering of the whole logical state: every cell's value
  /// plus the FSM state of every active trigger, in a deterministic
  /// order. Two equal strings mean object images and trigger states are
  /// both at the same committed-transaction boundary.
  std::string Snapshot(Session* s) {
    std::string out;
    Status st = s->WithTransaction([&](Transaction* txn) -> Status {
      ODE_ASSIGN_OR_RETURN(std::vector<PRef<TCell>> refs,
                           s->Cluster<TCell>(txn));
      std::sort(refs.begin(), refs.end(),
                [](PRef<TCell> a, PRef<TCell> b) {
                  return a.oid().value() < b.oid().value();
                });
      for (PRef<TCell> ref : refs) {
        ODE_ASSIGN_OR_RETURN(TCell c, s->Load(txn, ref));
        out += std::to_string(ref.oid().value()) + "=" +
               std::to_string(c.count) + "/" + std::to_string(c.fired);
        ODE_ASSIGN_OR_RETURN(auto active,
                             s->triggers()->ListActive(txn, ref.oid()));
        std::sort(active.begin(), active.end(),
                  [](const TriggerManager::ActiveTrigger& a,
                     const TriggerManager::ActiveTrigger& b) {
                    return a.id.value() < b.id.value();
                  });
        for (const auto& t : active) {
          out += ":" + t.trigger_name + "@" + std::to_string(t.statenum);
          if (t.dead) out += "!";
        }
        out += ";";
      }
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return out;
  }

  /// Runs the deterministic workload. With `snaps` non-null (the clean
  /// reference run) a snapshot is recorded after every acked commit;
  /// snapshot reads are not counted as mutating ops, so the reference
  /// and the crash runs see an identical mutating-op sequence. Returns
  /// at the first failed operation (the injected crash).
  RunResult RunWorkload(FaultInjectionEnv* env,
                        std::vector<std::string>* snaps,
                        uint32_t retry_attempts = 0) {
    RunResult res;
    DiskStorageManager* store = nullptr;
    auto session = OpenSession(env, retry_attempts, &store);
    if (!session.ok()) return res;
    Session* s = session->get();
    if (snaps != nullptr) snaps->push_back(Snapshot(s));  // pre-setup

    // Setup txn: the cells and their perpetual triggers.
    std::vector<PRef<TCell>> cells;
    Status st = s->WithTransaction([&](Transaction* txn) -> Status {
      for (int i = 0; i < kCells; ++i) {
        ODE_ASSIGN_OR_RETURN(PRef<TCell> ref, s->New(txn, TCell{}));
        ODE_RETURN_NOT_OK(s->Activate(txn, ref, "TripleBump").status());
        cells.push_back(ref);
      }
      return Status::OK();
    });
    if (!st.ok()) return res;
    ++res.acked;
    if (snaps != nullptr) snaps->push_back(Snapshot(s));

    Random rng(kWorkloadSeed);
    for (int t = 0; t < kTxns; ++t) {
      auto txn = s->Begin();
      if (!txn.ok()) return res;
      int cell = static_cast<int>(rng.Uniform(kCells));
      int bumps = 1 + static_cast<int>(rng.Uniform(2));
      for (int b = 0; b < bumps; ++b) {
        if (!s->Invoke(*txn, cells[cell], &TCell::Bump).ok()) return res;
      }
      if (t % 7 == 6) {
        // Aborted on purpose: its bumps must never resurface.
        if (!s->Abort(*txn).ok()) return res;
      } else {
        if (!s->Commit(*txn).ok()) return res;
        ++res.acked;
        if (snaps != nullptr) snaps->push_back(Snapshot(s));
      }
      if ((t + 1) % 10 == 0 && !store->Checkpoint().ok()) return res;
    }
    if (!s->Close().ok()) return res;
    res.completed = true;
    return res;
  }

  /// Reopens after a crash and checks the recovered state against the
  /// reference snapshots.
  void ValidateRecovery(FaultInjectionEnv* env, int acked,
                        const std::vector<std::string>& snaps,
                        uint64_t crash_op, bool torn) {
    auto session = OpenSession(env, /*retry_attempts=*/0, nullptr);
    if (!session.ok()) {
      // Only a store that was never durably created may fail to reopen
      // (the header page itself was rolled back by the crash).
      EXPECT_EQ(acked, 0)
          << "crash op " << crash_op << " torn=" << torn
          << ": store with acked commits failed to reopen: "
          << session.status().ToString();
      return;
    }
    std::string got = Snapshot(session->get());
    bool matched = false;
    for (size_t j = static_cast<size_t>(acked); j < snaps.size(); ++j) {
      if (snaps[j] == got) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched)
        << "crash op " << crash_op << " torn=" << torn << " acked=" << acked
        << ": recovered state matches no committed prefix >= acked:\n  "
        << got;
    (void)(*session)->Close();
  }

  Schema schema_;
  std::string path_;
};

TEST_F(CrashTortureTest, EveryCrashPointRecoversToACommittedPrefix) {
  // Clean reference run: records the op budget and one snapshot per
  // acked commit.
  FaultInjectionEnv ref_env;
  std::vector<std::string> snaps;
  RunResult ref = RunWorkload(&ref_env, &snaps);
  ASSERT_TRUE(ref.completed);
  const uint64_t total_ops = ref_env.ops();
  ASSERT_GE(total_ops, 100u) << "workload too small for a meaningful sweep";
  ASSERT_EQ(snaps.size(), static_cast<size_t>(ref.acked) + 1);

  int swept = 0;
  for (int torn = 0; torn <= 1; ++torn) {
    for (uint64_t k = 1; k <= total_ops; ++k) {
      Cleanup();
      FaultInjectionEnv env;
      env.SetTornWrites(torn == 1);
      env.SetCrashAtOp(k);
      RunResult run = RunWorkload(&env, nullptr);
      ASSERT_TRUE(env.crashed())
          << "crash point " << k << " was never reached";
      ASSERT_FALSE(run.completed);
      ASSERT_TRUE(env.DropUnsyncedData(/*seed=*/1000 + k).ok());
      env.ResetAfterCrash();
      ValidateRecovery(&env, run.acked, snaps, k, torn == 1);
      ++swept;
      if (HasFatalFailure()) return;
    }
  }
  EXPECT_GE(swept, 200) << "acceptance floor: >= 200 randomized crash points";
}

// ---- concurrent committers under crash torture --------------------------
//
// Four threads commit increments to four disjoint cells through the
// group-commit pipeline (small leader linger so real multi-txn batches
// form, putting crash points inside the batched fsync window). Each
// thread's txns are sequential and each reads the value its predecessor
// committed, so after recovery thread i's cell must hold a value v with
//
//   acked_i <= v <= attempts_i
//
// acked_i counts CommitTxn calls that returned OK — an acked follower
// whose kCommit did not survive the crash is exactly the bug this sweep
// exists to catch. attempts_i bounds legal round-up: a commit the caller
// never heard back about may still have become durable.

constexpr int kCommitThreads = 4;
constexpr int kTxnsPerThread = 8;

struct ConcurrentRunResult {
  std::array<int, kCommitThreads> acked{};
  std::array<int, kCommitThreads> attempts{};
  std::array<Oid, kCommitThreads> cells;
  bool setup_acked = false;
  bool completed = false;
};

TEST_F(CrashTortureTest, ConcurrentCommittersNeverLoseAckedCommits) {
  auto run_workload = [&](FaultInjectionEnv* env) {
    ConcurrentRunResult res;
    DiskStorageManager::Options opts;
    opts.env = env;
    opts.group_commit = true;
    opts.commit_batch_max_txns = kCommitThreads;
    opts.commit_batch_max_wait_us = 200;  // widen the batched fsync window
    DiskStorageManager store(path_, opts);
    if (!store.Open().ok()) return res;
    if (store.BeginTxn(1).ok()) {
      bool ok = true;
      for (int i = 0; i < kCommitThreads; ++i) {
        auto r = store.Allocate(1, Slice(std::string("0")));
        if (!r.ok()) {
          ok = false;
          break;
        }
        res.cells[i] = *r;
      }
      res.setup_acked = ok && store.CommitTxn(1).ok();
    }
    if (res.setup_acked) {
      std::vector<std::thread> threads;
      for (int i = 0; i < kCommitThreads; ++i) {
        threads.emplace_back([&store, &res, i] {
          for (int t = 0; t < kTxnsPerThread; ++t) {
            TxnId id = 100 + static_cast<TxnId>(i) * kTxnsPerThread + t;
            if (!store.BeginTxn(id).ok()) return;
            std::vector<char> cur;
            if (!store.Read(id, res.cells[i], &cur).ok()) return;
            int v = std::atoi(std::string(cur.begin(), cur.end()).c_str());
            if (!store.Write(id, res.cells[i],
                             Slice(std::to_string(v + 1)))
                     .ok()) {
              return;
            }
            ++res.attempts[i];
            if (!store.CommitTxn(id).ok()) return;
            ++res.acked[i];
          }
        });
      }
      for (auto& th : threads) th.join();
    }
    if (!store.Close().ok()) return res;
    res.completed = res.setup_acked;
    for (int i = 0; i < kCommitThreads; ++i) {
      if (res.acked[i] != kTxnsPerThread) res.completed = false;
    }
    return res;
  };

  auto validate = [&](FaultInjectionEnv* env, const ConcurrentRunResult& res,
                      uint64_t crash_op, bool torn) {
    DiskStorageManager::Options opts;
    opts.env = env;
    DiskStorageManager store(path_, opts);
    Status ost = store.Open();
    if (!ost.ok()) {
      EXPECT_FALSE(res.setup_acked)
          << "crash op " << crash_op << " torn=" << torn
          << ": store with an acked setup commit failed to reopen: "
          << ost.ToString();
      return;
    }
    if (res.setup_acked) {
      ASSERT_TRUE(store.BeginTxn(999).ok());
      for (int i = 0; i < kCommitThreads; ++i) {
        std::vector<char> cur;
        ASSERT_TRUE(store.Read(999, res.cells[i], &cur).ok())
            << "crash op " << crash_op << " torn=" << torn << ": cell " << i
            << " of the acked setup commit is gone";
        int v = std::atoi(std::string(cur.begin(), cur.end()).c_str());
        EXPECT_GE(v, res.acked[i])
            << "crash op " << crash_op << " torn=" << torn << " thread " << i
            << ": an acked commit did not survive — a follower was acked "
               "without a durable kCommit";
        EXPECT_LE(v, res.attempts[i])
            << "crash op " << crash_op << " torn=" << torn << " thread " << i
            << ": recovered state exceeds everything the thread attempted";
      }
    }
    EXPECT_TRUE(store.Close().ok());
  };

  // Clean reference run: sizes the sweep.
  FaultInjectionEnv ref_env;
  ConcurrentRunResult ref = run_workload(&ref_env);
  ASSERT_TRUE(ref.completed);
  const uint64_t total_ops = ref_env.ops();
  ASSERT_GE(total_ops, 50u) << "workload too small for a meaningful sweep";

  // Thread scheduling makes each run's op sequence nondeterministic, so
  // a crash point beyond a given run's op count simply lets that run
  // finish — which is then validated like any other outcome.
  int crashed_runs = 0;
  for (int torn = 0; torn <= 1; ++torn) {
    for (uint64_t k = 1; k <= total_ops; ++k) {
      Cleanup();
      FaultInjectionEnv env;
      env.SetTornWrites(torn == 1);
      env.SetCrashAtOp(k);
      ConcurrentRunResult run = run_workload(&env);
      if (env.crashed()) {
        ++crashed_runs;
        ASSERT_TRUE(env.DropUnsyncedData(/*seed=*/5000 + k).ok());
        env.ResetAfterCrash();
      } else {
        ASSERT_TRUE(run.completed)
            << "crash point " << k << " not reached, yet the run failed";
        // Disarm: this run used fewer env ops than the reference run
        // (batch formation is timing-dependent), so the still-armed
        // crash point would otherwise fire during validation's reopen.
        env.SetCrashAtOp(0);
      }
      validate(&env, run, k, torn == 1);
      if (HasFatalFailure()) return;
    }
  }
  EXPECT_GE(crashed_runs, 50)
      << "the sweep must actually crash inside the commit pipeline";
}

// ---- silent-corruption torture: bit-flip and garbage-read sweeps --------
//
// The corruption invariant is weaker than the crash invariant (rotten
// bits genuinely destroy data) but just as sharp: after any single
// flipped bit, every committed object is either served with its exact
// committed image or refused with an explicit error (kCorruption, a
// degraded open, or a failed open). Silently serving a wrong image at
// any sweep point is the bug this harness exists to catch.

std::string SlurpFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void DumpFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  ASSERT_EQ(std::fclose(f), 0);
}

TEST_F(CrashTortureTest, BitFlipSweepNeverServesSilentlyWrongData) {
  // Clean run; Close() flushes everything, so the page file alone holds
  // the final committed state.
  FaultInjectionEnv ref_env;
  std::vector<std::string> snaps;
  RunResult ref = RunWorkload(&ref_env, &snaps);
  ASSERT_TRUE(ref.completed);

  // Reference per-object images from the pristine store.
  std::unordered_map<uint64_t, std::pair<int32_t, int32_t>> expect;
  {
    FaultInjectionEnv env;
    auto session = OpenSession(&env, 0, nullptr);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    Session* s = session->get();
    Status st = s->WithTransaction([&](Transaction* txn) -> Status {
      ODE_ASSIGN_OR_RETURN(std::vector<PRef<TCell>> refs,
                           s->Cluster<TCell>(txn));
      for (PRef<TCell> r : refs) {
        ODE_ASSIGN_OR_RETURN(TCell c, s->Load(txn, r));
        expect[r.oid().value()] = {c.count, c.fired};
      }
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_TRUE(s->Close().ok());
  }
  ASSERT_EQ(expect.size(), static_cast<size_t>(kCells));

  const std::string pristine_db = SlurpFile(path_);
  const std::string pristine_wal = SlurpFile(path_ + ".wal");
  ASSERT_GE(pristine_db.size(), 2 * kPageSize);
  const size_t pages = pristine_db.size() / kPageSize;

  int swept = 0, explicit_failures = 0, clean_reads = 0;
  for (size_t page = 0; page < pages; ++page) {
    for (size_t off : {size_t{2}, size_t{9}, size_t{700}, size_t{4090}}) {
      DumpFile(path_, pristine_db);
      DumpFile(path_ + ".wal", pristine_wal);
      FaultInjectionEnv env;
      ASSERT_TRUE(
          env.FlipBitAt(path_, page * kPageSize + off, /*bit=*/5).ok());
      ++swept;

      DiskStorageManager* store = nullptr;
      auto session = OpenSession(&env, 0, &store);
      if (!session.ok()) {
        // A failed open is an explicit refusal, never silent damage
        // (e.g. the flipped bit hit the file-header magic).
        ++explicit_failures;
        continue;
      }
      Session* s = session->get();
      bool any_corrupt = store->degraded();
      bool all_correct = true;
      Status st = s->WithTransaction([&](Transaction* txn) -> Status {
        for (const auto& [oid, want] : expect) {
          auto cell = s->Load(txn, PRef<TCell>(Oid(oid)));
          if (!cell.ok()) {
            EXPECT_TRUE(cell.status().IsCorruption())
                << "page " << page << " off " << off
                << ": a damaged object must fail with kCorruption, got "
                << cell.status().ToString();
            any_corrupt = true;
            all_correct = false;
            continue;
          }
          EXPECT_EQ(cell->count, want.first)
              << "page " << page << " off " << off << " oid " << oid
              << ": SILENTLY WRONG image served";
          EXPECT_EQ(cell->fired, want.second)
              << "page " << page << " off " << off << " oid " << oid
              << ": SILENTLY WRONG image served";
        }
        return Status::OK();
      });
      if (!st.ok()) {
        // The transaction machinery itself tripped on the rot (e.g. a
        // lost catalog): explicit, acceptable.
        any_corrupt = true;
      }
      if (any_corrupt) {
        ++explicit_failures;
      } else if (all_correct) {
        ++clean_reads;
      }
      (void)s->Close();
      if (HasFatalFailure()) return;
    }
  }
  // The sweep must have exercised both outcomes: flips that land in live
  // data get refused, flips in dead space are absorbed.
  EXPECT_GT(explicit_failures, 0) << "swept " << swept << " points";
  EXPECT_GT(clean_reads, 0) << "swept " << swept << " points";
}

TEST_F(CrashTortureTest, BitFlipOnWalCoveredPagesAlwaysRepairsOnReopen) {
  FaultInjectionEnv env;
  DiskStorageManager::Options opts;
  opts.env = &env;
  constexpr int kObjects = 40;
  std::vector<Oid> oids;
  {
    DiskStorageManager store(path_, opts);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.BeginTxn(1).ok());
    for (int i = 0; i < kObjects; ++i) {
      auto oid = store.Allocate(1, Slice(std::string(300, 'c')));
      ASSERT_TRUE(oid.ok());
      oids.push_back(*oid);
    }
    ASSERT_TRUE(store.CommitTxn(1).ok());
    // Checkpoint persists the pages and truncates the WAL; the update
    // txn below then re-covers every object with a fresh WAL image.
    ASSERT_TRUE(store.Checkpoint().ok());
    ASSERT_TRUE(store.BeginTxn(2).ok());
    for (int i = 0; i < kObjects; ++i) {
      ASSERT_TRUE(
          store.Write(2, oids[i], Slice("r-" + std::to_string(i))).ok());
    }
    ASSERT_TRUE(store.CommitTxn(2).ok());
    store.SimulateCrash();  // pages on disk keep the pre-update images
  }
  const std::string dirty_db = SlurpFile(path_);
  const std::string dirty_wal = SlurpFile(path_ + ".wal");
  ASSERT_FALSE(dirty_wal.empty()) << "the update txn must live in the WAL";
  const size_t pages = dirty_db.size() / kPageSize;
  ASSERT_GE(pages, 4u);

  // Rot every data page in turn: recovery must repair each one from WAL
  // redo with zero losses.
  int repaired_sweeps = 0;
  for (size_t page = 1; page < pages; ++page) {
    DumpFile(path_, dirty_db);
    DumpFile(path_ + ".wal", dirty_wal);
    ASSERT_TRUE(
        env.FlipBitAt(path_, page * kPageSize + 77, /*bit=*/2).ok());

    DiskStorageManager recovered(path_, opts);
    ASSERT_TRUE(recovered.Open().ok()) << "page " << page;
    EXPECT_FALSE(recovered.degraded())
        << "page " << page << ": WAL redo covers everything, no quarantine";
    EXPECT_TRUE(recovered.LostObjects().empty()) << "page " << page;
    ASSERT_TRUE(recovered.BeginTxn(9).ok());
    for (int i = 0; i < kObjects; ++i) {
      std::vector<char> out;
      ASSERT_TRUE(recovered.Read(9, oids[i], &out).ok())
          << "page " << page << " oid " << i;
      EXPECT_EQ(std::string(out.begin(), out.end()),
                "r-" + std::to_string(i));
    }
    ASSERT_TRUE(recovered.CommitTxn(9).ok());
    ASSERT_TRUE(recovered.Close().ok());
    ++repaired_sweeps;
    if (HasFatalFailure()) return;
  }
  EXPECT_GE(repaired_sweeps, 3);
}

TEST_F(CrashTortureTest, GarbageReadsAreRejectedNotServed) {
  FaultInjectionEnv env;
  DiskStorageManager::Options opts;
  opts.env = &env;
  opts.buffer_pool_pages = 2;  // constant re-reads from the medium
  DiskStorageManager store(path_, opts);
  ASSERT_TRUE(store.Open().ok());

  constexpr int kObjects = 30;
  std::vector<Oid> oids;
  ASSERT_TRUE(store.BeginTxn(1).ok());
  for (int i = 0; i < kObjects; ++i) {
    auto oid = store.Allocate(
        1, Slice("g-" + std::to_string(i) + std::string(700, 'g')));
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  ASSERT_TRUE(store.CommitTxn(1).ok());
  ASSERT_TRUE(store.Checkpoint().ok());

  // 30% of page reads now return scrambled bytes. Every object read must
  // either return the exact committed image or kCorruption.
  env.SetGarbageReadProbability(0.3, /*seed=*/7);
  ASSERT_TRUE(store.BeginTxn(2).ok());
  int rejected = 0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < kObjects; ++i) {
      std::vector<char> out;
      Status st = store.Read(2, oids[i], &out);
      if (st.IsCorruption()) {
        ++rejected;
        continue;
      }
      ASSERT_TRUE(st.ok()) << st.ToString();
      std::string prefix = "g-" + std::to_string(i);
      ASSERT_GE(out.size(), prefix.size());
      EXPECT_EQ(std::string(out.begin(), out.begin() + prefix.size()),
                prefix)
          << "round " << round << ": garbage served as data";
    }
  }
  ASSERT_TRUE(store.CommitTxn(2).ok());
  EXPECT_GT(rejected, 0) << "the garbage injection must actually fire";
  EXPECT_GT(env.faults_injected(), 0u);

  // The rejection is transient, not sticky: with a healthy medium every
  // object reads back perfectly — no corrupt frame was ever cached.
  env.SetGarbageReadProbability(0.0, /*seed=*/7);
  ASSERT_TRUE(store.BeginTxn(3).ok());
  for (int i = 0; i < kObjects; ++i) {
    std::vector<char> out;
    ASSERT_TRUE(store.Read(3, oids[i], &out).ok()) << "oid " << i;
  }
  ASSERT_TRUE(store.CommitTxn(3).ok());
  ASSERT_TRUE(store.Close().ok());
}

TEST_F(CrashTortureTest, TransientNoiseWithRetriesRunsToCompletion) {
  // Reference: a clean run's final state.
  FaultInjectionEnv clean_env;
  std::vector<std::string> snaps;
  RunResult clean = RunWorkload(&clean_env, &snaps);
  ASSERT_TRUE(clean.completed);

  // Same workload with a 2% transient-EIO rate on every faultable op;
  // the bounded-retry policy must absorb all of it.
  Cleanup();
  FaultInjectionEnv env;
  env.SetTransientFaultProbability(0.02, /*seed=*/99);
  DiskStorageManager* store = nullptr;
  auto session = OpenSession(&env, /*retry_attempts=*/5, &store);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  Session* s = session->get();

  std::vector<PRef<TCell>> cells;
  Status st = s->WithTransaction([&](Transaction* txn) -> Status {
    for (int i = 0; i < kCells; ++i) {
      ODE_ASSIGN_OR_RETURN(PRef<TCell> ref, s->New(txn, TCell{}));
      ODE_RETURN_NOT_OK(s->Activate(txn, ref, "TripleBump").status());
      cells.push_back(ref);
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  Random rng(kWorkloadSeed);
  for (int t = 0; t < kTxns; ++t) {
    auto txn = s->Begin();
    ASSERT_TRUE(txn.ok());
    int cell = static_cast<int>(rng.Uniform(kCells));
    int bumps = 1 + static_cast<int>(rng.Uniform(2));
    for (int b = 0; b < bumps; ++b) {
      ASSERT_TRUE(s->Invoke(*txn, cells[cell], &TCell::Bump).ok());
    }
    if (t % 7 == 6) {
      ASSERT_TRUE(s->Abort(*txn).ok());
    } else {
      ASSERT_TRUE(s->Commit(*txn).ok());
    }
    if ((t + 1) % 10 == 0) {
      ASSERT_TRUE(store->Checkpoint().ok());
    }
  }

  EXPECT_GT(env.faults_injected(), 0u) << "the noise must actually fire";
  EXPECT_GT(s->metrics()->GetCounter("ode_io_retries_total")->value(), 0u);
  EXPECT_EQ(s->metrics()->GetCounter("ode_io_retry_exhausted_total")->value(),
            0u);
  std::string final_state = Snapshot(s);
  EXPECT_EQ(final_state, snaps.back())
      << "retried I/O must converge on the exact clean-run state";
  ASSERT_TRUE(s->Close().ok());
}

// ---- containment state under crash torture ------------------------------
//
// A poisoned dependent trigger drives the containment layer on a disk
// database: after trigger_failure_threshold firings it is quarantined,
// and every failed batch lands in the dead-letter ring — both through
// committed system transactions. Crashing at every mutating I/O op and
// reopening must find that state exactly-or-empty: both tables read
// back cleanly (never torn or corrupt), a recovered quarantine entry
// can only describe the poisoned trigger with a full failure window,
// and dead-letter sequence numbers are strictly increasing.

TEST_F(CrashTortureTest, QuarantineAndDeadLettersSurviveCrashRecovery) {
  Schema schema;
  schema.DeclareClass<TCell>("TCell")
      .Event("after Bump")
      .Method("Bump", &TCell::Bump)
      .Trigger(
          "Poison", "after Bump",
          [](TCell&, TriggerFireContext&) -> Status {
            return Status::Internal("poisoned action");
          },
          CouplingMode::kDependent, /*perpetual=*/true);
  ASSERT_TRUE(schema.Freeze().ok());

  Session::Options sopts;
  sopts.trigger_failure_threshold = 2;
  sopts.action_retry_attempts = 1;
  sopts.dead_letter_capacity = 8;

  auto open = [&](FaultInjectionEnv* env) {
    DiskStorageManager::Options dopts;
    dopts.env = env;
    dopts.io_retry_backoff_us = 1;
    return Session::OpenWith(
        std::make_unique<DiskStorageManager>(path_, dopts), &schema, sopts);
  };

  // Returns true iff the workload ran to the end; `acked` counts commits
  // acknowledged before the crash.
  auto workload = [&](FaultInjectionEnv* env, int* acked) {
    *acked = 0;
    auto session = open(env);
    if (!session.ok()) return false;
    Session* s = session->get();
    PRef<TCell> cell;
    Status st = s->WithTransaction([&](Transaction* txn) -> Status {
      ODE_ASSIGN_OR_RETURN(cell, s->New(txn, TCell{}));
      return s->Activate(txn, cell, "Poison").status();
    });
    if (!st.ok()) return false;
    ++*acked;
    for (int t = 0; t < 6; ++t) {
      st = s->WithTransaction([&](Transaction* txn) -> Status {
        return s->Invoke(txn, cell, &TCell::Bump);
      });
      if (!st.ok()) return false;
      ++*acked;
    }
    return s->Close().ok();
  };

  // Clean reference run: the trigger ends quarantined with both failed
  // batches dead-lettered.
  FaultInjectionEnv ref_env;
  int ref_acked = 0;
  ASSERT_TRUE(workload(&ref_env, &ref_acked));
  {
    FaultInjectionEnv env;
    auto session = open(&env);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    auto q = (*session)->QuarantinedTriggers();
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    ASSERT_EQ(q->size(), 1u);
    EXPECT_EQ((*q)[0].trigger_name, "Poison");
    auto letters = (*session)->DeadLetters();
    ASSERT_TRUE(letters.ok()) << letters.status().ToString();
    EXPECT_EQ(letters->size(), 2u);
    ASSERT_TRUE((*session)->Close().ok());
  }
  const uint64_t total_ops = ref_env.ops();
  ASSERT_GT(total_ops, 0u);

  for (uint64_t k = 1; k <= total_ops; ++k) {
    Cleanup();
    FaultInjectionEnv env;
    env.SetTornWrites(true);
    env.SetCrashAtOp(k);
    int acked = 0;
    bool completed = workload(&env, &acked);
    ASSERT_TRUE(env.crashed()) << "crash point " << k << " never reached";
    ASSERT_FALSE(completed);
    ASSERT_TRUE(env.DropUnsyncedData(/*seed=*/7000 + k).ok());
    env.ResetAfterCrash();

    auto session = open(&env);
    if (!session.ok()) {
      EXPECT_EQ(acked, 0)
          << "crash op " << k
          << ": store with acked commits failed to reopen (containment "
             "tables must never wedge recovery): "
          << session.status().ToString();
      continue;
    }
    Session* s = session->get();
    auto q = s->QuarantinedTriggers();
    ASSERT_TRUE(q.ok()) << "crash op " << k << ": " << q.status().ToString();
    ASSERT_LE(q->size(), 1u) << "crash op " << k;
    for (const auto& entry : *q) {
      EXPECT_EQ(entry.trigger_name, "Poison") << "crash op " << k;
      EXPECT_EQ(entry.defining_class, "TCell") << "crash op " << k;
      EXPECT_GE(entry.failures, sopts.trigger_failure_threshold)
          << "crash op " << k;
      EXPECT_FALSE(entry.reason.empty()) << "crash op " << k;
    }
    auto letters = s->DeadLetters();
    ASSERT_TRUE(letters.ok())
        << "crash op " << k << ": " << letters.status().ToString();
    EXPECT_LE(letters->size(), sopts.dead_letter_capacity)
        << "crash op " << k;
    for (size_t i = 0; i < letters->size(); ++i) {
      EXPECT_EQ((*letters)[i].trigger_name, "Poison") << "crash op " << k;
      EXPECT_EQ((*letters)[i].coupling, "dependent") << "crash op " << k;
      if (i > 0) {
        EXPECT_LT((*letters)[i - 1].seq, (*letters)[i].seq)
            << "crash op " << k;
      }
    }
    (void)s->Close();
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace ode
