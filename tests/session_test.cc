// Session/odepp facade tests: typed persistence, Invoke (the WithPost
// wrapper), slicing protection, clusters, parameter packing.

#include "odepp/session.h"

#include <gtest/gtest.h>

#include "odepp/params.h"

namespace ode {
namespace {

struct Point {
  int32_t x = 0, y = 0;

  void MoveBy(int32_t dx, int32_t dy) {
    x += dx;
    y += dy;
  }
  int32_t Manhattan() const { return std::abs(x) + std::abs(y); }
  int32_t Scale(int32_t k) {
    x *= k;
    y *= k;
    return x + y;
  }

  void Encode(Encoder& enc) const {
    enc.PutI32(x);
    enc.PutI32(y);
  }
  static Result<Point> Decode(Decoder& dec) {
    Point p;
    ODE_RETURN_NOT_OK(dec.GetI32(&p.x));
    ODE_RETURN_NOT_OK(dec.GetI32(&p.y));
    return p;
  }
};

struct Point3 : Point {
  int32_t z = 0;

  void Encode(Encoder& enc) const {
    Point::Encode(enc);
    enc.PutI32(z);
  }
  static Result<Point3> Decode(Decoder& dec) {
    auto base = Point::Decode(dec);
    if (!base.ok()) return base.status();
    Point3 p;
    static_cast<Point&>(p) = *base;
    ODE_RETURN_NOT_OK(dec.GetI32(&p.z));
    return p;
  }
};

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_.DeclareClass<Point>("Point")
        .Event("after MoveBy")
        .Method("MoveBy", &Point::MoveBy)
        .Method("Manhattan", &Point::Manhattan)
        .Method("Scale", &Point::Scale);
    schema_.DeclareClass<Point3, Point>("Point3", "Point");
    ASSERT_TRUE(schema_.Freeze().ok());
    auto session = Session::Open(StorageKind::kMainMemory, "", &schema_);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    s_ = std::move(session).value();
  }

  Schema schema_;
  std::unique_ptr<Session> s_;
};

TEST_F(SessionTest, NewLoadStoreFree) {
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto p = s_->New(txn, Point{3, 4});
    ODE_RETURN_NOT_OK(p.status());
    auto loaded = s_->Load(txn, *p);
    ODE_RETURN_NOT_OK(loaded.status());
    EXPECT_EQ(loaded->x, 3);
    EXPECT_EQ(loaded->y, 4);

    ODE_RETURN_NOT_OK(s_->Store(txn, *p, Point{7, 8}));
    loaded = s_->Load(txn, *p);
    ODE_RETURN_NOT_OK(loaded.status());
    EXPECT_EQ(loaded->x, 7);

    ODE_RETURN_NOT_OK(s_->Free(txn, *p));
    EXPECT_TRUE(s_->Load(txn, *p).status().IsNotFound());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST_F(SessionTest, InvokeMutatesAndReturnsValues) {
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto p = s_->New(txn, Point{1, 2});
    ODE_RETURN_NOT_OK(p.status());
    // void method.
    ODE_RETURN_NOT_OK(s_->Invoke(txn, *p, &Point::MoveBy, 10, 20));
    // non-void method sees the mutation and returns a value.
    auto sum = s_->Invoke(txn, *p, &Point::Scale, 2);
    ODE_RETURN_NOT_OK(sum.status());
    EXPECT_EQ(*sum, (11 * 2) + (22 * 2));
    // const method.
    auto dist = s_->Invoke(txn, *p, &Point::Manhattan);
    ODE_RETURN_NOT_OK(dist.status());
    EXPECT_EQ(*dist, 22 + 44);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST_F(SessionTest, InvokePersistsAcrossTransactions) {
  PRef<Point> ref;
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto p = s_->New(txn, Point{0, 0});
    ODE_RETURN_NOT_OK(p.status());
    ref = *p;
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    return s_->Invoke(txn, ref, &Point::MoveBy, 5, 5);
  });
  ASSERT_TRUE(st.ok());
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto p = s_->Load(txn, ref);
    ODE_RETURN_NOT_OK(p.status());
    EXPECT_EQ(p->x, 5);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST_F(SessionTest, UnregisteredTypeRejected) {
  struct Stranger {
    void Encode(Encoder&) const {}
    static Result<Stranger> Decode(Decoder&) { return Stranger{}; }
  };
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto r = s_->New(txn, Stranger{});
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST_F(SessionTest, DerivedObjectThroughBaseRef) {
  PRef<Point3> ref;
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    Point3 p;
    p.x = 1;
    p.z = 9;
    auto r = s_->New(txn, p);
    ODE_RETURN_NOT_OK(r.status());
    ref = *r;

    // Base-typed load returns the base view.
    PRef<Point> base = ref.As<Point>();
    auto view = s_->Load(txn, base);
    ODE_RETURN_NOT_OK(view.status());
    EXPECT_EQ(view->x, 1);

    // Base-typed Invoke must not slice the derived fields.
    ODE_RETURN_NOT_OK(s_->Invoke(txn, base, &Point::MoveBy, 1, 1));
    auto full = s_->Load(txn, ref);
    ODE_RETURN_NOT_OK(full.status());
    EXPECT_EQ(full->x, 2);
    EXPECT_EQ(full->z, 9) << "derived fields preserved through base call";

    // Base-typed Store would slice: rejected.
    Status store = s_->Store(txn, base, Point{0, 0});
    EXPECT_EQ(store.code(), StatusCode::kInvalidArgument);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST_F(SessionTest, LoadWrongTypeRejected) {
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto p = s_->New(txn, Point{1, 1});
    ODE_RETURN_NOT_OK(p.status());
    // A Point is not a Point3.
    PRef<Point3> wrong(p->oid());
    EXPECT_EQ(s_->Load(txn, wrong).status().code(),
              StatusCode::kInvalidArgument);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST_F(SessionTest, ClusterListsClassExtent) {
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    for (int i = 0; i < 3; ++i) {
      ODE_RETURN_NOT_OK(s_->New(txn, Point{i, i}).status());
    }
    ODE_RETURN_NOT_OK(s_->New(txn, Point3{}).status());
    auto points = s_->Cluster<Point>(txn);
    ODE_RETURN_NOT_OK(points.status());
    EXPECT_EQ(points->size(), 3u);
    auto point3s = s_->Cluster<Point3>(txn);
    ODE_RETURN_NOT_OK(point3s.status());
    EXPECT_EQ(point3s->size(), 1u);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST_F(SessionTest, FreeRemovesFromCluster) {
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto p = s_->New(txn, Point{});
    ODE_RETURN_NOT_OK(p.status());
    ODE_RETURN_NOT_OK(s_->Free(txn, *p));
    auto points = s_->Cluster<Point>(txn);
    ODE_RETURN_NOT_OK(points.status());
    EXPECT_TRUE(points->empty());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST_F(SessionTest, WithTransactionAbortsOnError) {
  PRef<Point> ref;
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto p = s_->New(txn, Point{});
    ODE_RETURN_NOT_OK(p.status());
    ref = *p;
    return Status::IOError("synthetic failure");
  });
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  st = s_->WithTransaction([&](Transaction* txn) -> Status {
    EXPECT_FALSE(s_->db()->ObjectExists(txn, ref.oid()));
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST_F(SessionTest, OpenRequiresFrozenSchema) {
  Schema raw;
  auto session = Session::Open(StorageKind::kMainMemory, "", &raw);
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------- parameters

TEST(Params, RoundTripAllTypes) {
  auto bytes = PackParams(true, int32_t{-5}, uint64_t{99}, 2.5f, -1.25,
                          std::string("hello"), Oid(42));
  auto unpacked =
      UnpackParams<bool, int32_t, uint64_t, float, double, std::string,
                   Oid>(Slice(bytes));
  ASSERT_TRUE(unpacked.ok());
  auto [b, i, u, f, d, s, o] = *unpacked;
  EXPECT_TRUE(b);
  EXPECT_EQ(i, -5);
  EXPECT_EQ(u, 99u);
  EXPECT_FLOAT_EQ(f, 2.5f);
  EXPECT_DOUBLE_EQ(d, -1.25);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(o, Oid(42));
}

TEST(Params, EmptyPack) {
  auto bytes = PackParams();
  EXPECT_TRUE(bytes.empty());
  auto unpacked = UnpackParams<>(Slice(bytes));
  EXPECT_TRUE(unpacked.ok());
}

TEST(Params, TypeMismatchIsError) {
  auto bytes = PackParams(2.5f);  // 4 bytes
  auto unpacked = UnpackParams<double>(Slice(bytes));  // wants 8
  EXPECT_FALSE(unpacked.ok());
}

}  // namespace
}  // namespace ode
