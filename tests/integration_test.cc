// Cross-module integration tests: before-events, anchored triggers end
// to end, the credit-card example on the disk backend including crash
// recovery of trigger state, and multi-threaded trigger traffic with
// deadlock-retry.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "paper_example.h"
#include "storage/disk_storage_manager.h"

namespace ode {
namespace {

using paper::CredCard;

struct Sensor {
  int32_t reading = 0;
  int32_t before_sum = 0;
  int32_t after_sum = 0;
  int32_t fires = 0;

  void Set(int32_t value) { reading = value; }

  void Encode(Encoder& enc) const {
    enc.PutI32(reading);
    enc.PutI32(before_sum);
    enc.PutI32(after_sum);
    enc.PutI32(fires);
  }
  static Result<Sensor> Decode(Decoder& dec) {
    Sensor s;
    ODE_RETURN_NOT_OK(dec.GetI32(&s.reading));
    ODE_RETURN_NOT_OK(dec.GetI32(&s.before_sum));
    ODE_RETURN_NOT_OK(dec.GetI32(&s.after_sum));
    ODE_RETURN_NOT_OK(dec.GetI32(&s.fires));
    return s;
  }
};

// -------------------------------------------------- before-member events

TEST(BeforeEvents, BeforeEventSeesPreCallState) {
  Schema schema;
  schema.DeclareClass<Sensor>("Sensor")
      .Event("before Set")
      .Event("after Set")
      .Method("Set", &Sensor::Set)
      // The before-trigger records the OLD reading; the after-trigger the
      // NEW one, proving the wrapper posts around the call (§5.3).
      .Trigger("PreSet", "before Set",
               [](Sensor& s, TriggerFireContext&) -> Status {
                 s.before_sum += s.reading;
                 return Status::OK();
               },
               CouplingMode::kImmediate, true)
      .Trigger("PostSet", "after Set",
               [](Sensor& s, TriggerFireContext&) -> Status {
                 s.after_sum += s.reading;
                 return Status::OK();
               },
               CouplingMode::kImmediate, true);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Session& s = **session;

  PRef<Sensor> sensor;
  Status st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto r = s.New(txn, Sensor{});
    ODE_RETURN_NOT_OK(r.status());
    sensor = *r;
    ODE_RETURN_NOT_OK(s.Activate(txn, sensor, "PreSet").status());
    ODE_RETURN_NOT_OK(s.Activate(txn, sensor, "PostSet").status());
    ODE_RETURN_NOT_OK(s.Invoke(txn, sensor, &Sensor::Set, 10));
    return s.Invoke(txn, sensor, &Sensor::Set, 25);
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto v = s.Load(txn, sensor);
    ODE_RETURN_NOT_OK(v.status());
    EXPECT_EQ(v->before_sum, 0 + 10) << "before events saw old readings";
    EXPECT_EQ(v->after_sum, 10 + 25) << "after events saw new readings";
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

// ----------------------------------------------- anchored (^) triggers

TEST(AnchoredTriggers, DieOnFirstMismatch) {
  Schema schema;
  schema.DeclareClass<Sensor>("Sensor")
      .Event("after Set")
      .Event("Ping")
      .Event("Pong")
      .Method("Set", &Sensor::Set)
      // ^ (Ping, Pong): must see exactly Ping then Pong from activation,
      // nothing ignored (§5.1.1).
      .Trigger("Strict", "^(Ping, Pong)",
               [](Sensor& s, TriggerFireContext&) -> Status {
                 ++s.fires;
                 return Status::OK();
               },
               CouplingMode::kImmediate, true);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Session& s = **session;

  auto run_scenario = [&](const std::vector<std::string>& events) {
    PRef<Sensor> obj;
    Status st = s.WithTransaction([&](Transaction* txn) -> Status {
      auto r = s.New(txn, Sensor{});
      ODE_RETURN_NOT_OK(r.status());
      obj = *r;
      ODE_RETURN_NOT_OK(s.Activate(txn, obj, "Strict").status());
      for (const std::string& e : events) {
        ODE_RETURN_NOT_OK(s.PostUserEvent(txn, obj, e));
      }
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    int fires = -1;
    st = s.WithTransaction([&](Transaction* txn) -> Status {
      auto v = s.Load(txn, obj);
      ODE_RETURN_NOT_OK(v.status());
      fires = v->fires;
      return Status::OK();
    });
    EXPECT_TRUE(st.ok());
    return fires;
  };

  EXPECT_EQ(run_scenario({"Ping", "Pong"}), 1) << "exact match fires";
  EXPECT_EQ(run_scenario({"Pong", "Ping", "Pong"}), 0)
      << "wrong first event kills the anchored machine for good";
  EXPECT_EQ(run_scenario({"Ping", "Ping", "Pong"}), 0)
      << "anchored machines ignore nothing";
}

// ------------------------------------------ disk backend + crash recovery

TEST(DiskIntegration, CreditCardScenarioOnDisk) {
  std::string path = ::testing::TempDir() + "/ode_integration_disk.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  Schema schema;
  paper::DeclareCredCard(&schema);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kDisk, path, &schema);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  Session& s = **session;

  PRef<CredCard> card;
  Status st = s.WithTransaction([&](Transaction* txn) -> Status {
    CredCard c;
    c.cred_lim = 1000;
    auto r = s.New(txn, c);
    ODE_RETURN_NOT_OK(r.status());
    card = *r;
    ODE_RETURN_NOT_OK(s.Activate(txn, card, "DenyCredit").status());
    return s
        .Activate(txn, card, "AutoRaiseLimit", PackParams(500.0f))
        .status();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  // Over-limit purchase rejected on disk too.
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    return s.Invoke(txn, card, &CredCard::Buy, 1500.0f);
  });
  EXPECT_TRUE(st.IsTransactionAborted());

  // Arm and fire AutoRaiseLimit across transactions.
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    return s.Invoke(txn, card, &CredCard::Buy, 900.0f);
  });
  ASSERT_TRUE(st.ok());
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    return s.Invoke(txn, card, &CredCard::PayBill, 100.0f);
  });
  ASSERT_TRUE(st.ok());
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto c = s.Load(txn, card);
    ODE_RETURN_NOT_OK(c.status());
    EXPECT_FLOAT_EQ(c->cred_lim, 1500);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(s.Close().ok());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST(DiskIntegration, TriggerStateSurvivesCrash) {
  std::string path = ::testing::TempDir() + "/ode_integration_crash.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  Schema schema;
  paper::DeclareCredCard(&schema);
  ASSERT_TRUE(schema.Freeze().ok());

  PRef<CredCard> card;
  {
    auto store = std::make_unique<DiskStorageManager>(path);
    DiskStorageManager* raw = store.get();
    Session::Options options;
    auto session = Session::OpenWith(std::move(store), &schema, options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    Session& s = **session;

    Status st = s.WithTransaction([&](Transaction* txn) -> Status {
      CredCard c;
      c.cred_lim = 1000;
      auto r = s.New(txn, c);
      ODE_RETURN_NOT_OK(r.status());
      card = *r;
      return s
          .Activate(txn, card, "AutoRaiseLimit", PackParams(500.0f))
          .status();
    });
    ASSERT_TRUE(st.ok());
    // Arm the relative pattern...
    st = s.WithTransaction([&](Transaction* txn) -> Status {
      return s.Invoke(txn, card, &CredCard::Buy, 900.0f);
    });
    ASSERT_TRUE(st.ok());
    // ...and crash without checkpointing. Recovery must rebuild the
    // armed FSM state from the WAL.
    raw->SimulateCrash();
  }
  {
    auto session = Session::Open(StorageKind::kDisk, path, &schema);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    Session& s = **session;
    Status st = s.WithTransaction([&](Transaction* txn) -> Status {
      return s.Invoke(txn, card, &CredCard::PayBill, 50.0f);
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
    st = s.WithTransaction([&](Transaction* txn) -> Status {
      auto c = s.Load(txn, card);
      ODE_RETURN_NOT_OK(c.status());
      EXPECT_FLOAT_EQ(c->cred_lim, 1500)
          << "armed trigger state survived the crash";
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    ASSERT_TRUE(s.Close().ok());
  }
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

// --------------------------------------------------- concurrent triggers

TEST(Concurrency, ParallelTriggeredUpdatesStayConsistent) {
  // N threads each perform M purchases on their own card plus M on one
  // shared card, retrying on deadlock/timeout. Each purchase fires a
  // perpetual counting trigger. At the end every counter must equal the
  // number of successful purchases.
  Schema schema;
  schema.DeclareClass<Sensor>("Sensor")
      .Event("after Set")
      .Method("Set", &Sensor::Set)
      .Trigger("Count", "after Set",
               [](Sensor& s, TriggerFireContext&) -> Status {
                 ++s.fires;
                 return Status::OK();
               },
               CouplingMode::kImmediate, true);
  ASSERT_TRUE(schema.Freeze().ok());
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Session& s = **session;

  constexpr int kThreads = 4;
  constexpr int kOps = 50;

  PRef<Sensor> shared;
  std::vector<PRef<Sensor>> own(kThreads);
  Status st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto r = s.New(txn, Sensor{});
    ODE_RETURN_NOT_OK(r.status());
    shared = *r;
    ODE_RETURN_NOT_OK(s.Activate(txn, shared, "Count").status());
    for (int i = 0; i < kThreads; ++i) {
      auto ri = s.New(txn, Sensor{});
      ODE_RETURN_NOT_OK(ri.status());
      own[i] = *ri;
      ODE_RETURN_NOT_OK(s.Activate(txn, own[i], "Count").status());
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());

  std::atomic<int> shared_successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        // Own object: no contention; must always succeed (retry anyway).
        for (int attempt = 0; attempt < 50; ++attempt) {
          Status op = s.WithTransaction([&](Transaction* txn) {
            return s.Invoke(txn, own[t], &Sensor::Set, i);
          });
          if (op.ok()) break;
          ASSERT_TRUE(op.IsDeadlock() ||
                      op.code() == StatusCode::kLockTimeout)
              << op.ToString();
        }
        // Shared object: heavy contention; count successes.
        Status op = s.WithTransaction([&](Transaction* txn) {
          return s.Invoke(txn, shared, &Sensor::Set, i);
        });
        if (op.ok()) {
          ++shared_successes;
        } else {
          ASSERT_TRUE(op.IsDeadlock() ||
                      op.code() == StatusCode::kLockTimeout)
              << op.ToString();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  st = s.WithTransaction([&](Transaction* txn) -> Status {
    for (int t = 0; t < kThreads; ++t) {
      auto v = s.Load(txn, own[t]);
      ODE_RETURN_NOT_OK(v.status());
      EXPECT_EQ(v->fires, kOps) << "thread " << t;
    }
    auto v = s.Load(txn, shared);
    ODE_RETURN_NOT_OK(v.status());
    EXPECT_EQ(v->fires, shared_successes.load())
        << "every committed purchase fired exactly once";
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace ode
