// Disk storage manager under memory pressure: a tiny buffer pool forces
// eviction and re-reads, which must never lose data.

#include <gtest/gtest.h>

#include <cstdio>

#include "common/random.h"
#include "storage/disk_storage_manager.h"

namespace ode {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ode_bufpool_test.db";
    Cleanup();
  }
  void TearDown() override { Cleanup(); }

  void Cleanup() {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }

  std::unique_ptr<DiskStorageManager> OpenTinyPool(size_t pages) {
    DiskStorageManager::Options options;
    options.buffer_pool_pages = pages;
    options.sync_commits = false;  // speed; durability tested elsewhere
    auto store = std::make_unique<DiskStorageManager>(path_, options);
    Status st = store->Open();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return store;
  }

  std::string path_;
};

TEST_F(BufferPoolTest, EvictionPreservesData) {
  auto store = OpenTinyPool(4);
  constexpr int kObjects = 200;  // ~200 KB of 1 KB objects >> 4 pages
  std::vector<Oid> oids;
  ASSERT_TRUE(store->BeginTxn(1).ok());
  for (int i = 0; i < kObjects; ++i) {
    std::string data(1000, static_cast<char>('a' + i % 26));
    auto oid = store->Allocate(1, Slice(data));
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  ASSERT_TRUE(store->CommitTxn(1).ok());

  // Read everything back (random order to defeat the LRU).
  Random rng(5);
  ASSERT_TRUE(store->BeginTxn(2).ok());
  for (int i = 0; i < kObjects * 2; ++i) {
    int pick = static_cast<int>(rng.Uniform(kObjects));
    std::vector<char> out;
    ASSERT_TRUE(store->Read(2, oids[pick], &out).ok());
    ASSERT_EQ(out.size(), 1000u);
    EXPECT_EQ(out[0], static_cast<char>('a' + pick % 26));
  }
  ASSERT_TRUE(store->CommitTxn(2).ok());

  StorageStats stats = store->stats();
  EXPECT_GT(stats.buffer_misses, 0u) << "tiny pool must miss on re-reads";
  EXPECT_GT(stats.page_writes, 0u) << "evictions write dirty pages";
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BufferPoolTest, UpdatesSurviveEvictionAndReopen) {
  std::vector<Oid> oids;
  {
    auto store = OpenTinyPool(2);
    ASSERT_TRUE(store->BeginTxn(1).ok());
    for (int i = 0; i < 50; ++i) {
      auto oid = store->Allocate(1, Slice(std::string(500, 'x')));
      ASSERT_TRUE(oid.ok());
      oids.push_back(*oid);
    }
    ASSERT_TRUE(store->CommitTxn(1).ok());
    // Update every object in a second txn (each update dirties a page
    // that may already have been evicted).
    ASSERT_TRUE(store->BeginTxn(2).ok());
    for (int i = 0; i < 50; ++i) {
      std::string data = "updated-" + std::to_string(i);
      ASSERT_TRUE(store->Write(2, oids[i], Slice(data)).ok());
    }
    ASSERT_TRUE(store->CommitTxn(2).ok());
    ASSERT_TRUE(store->Close().ok());
  }
  {
    auto store = OpenTinyPool(2);
    ASSERT_TRUE(store->BeginTxn(3).ok());
    for (int i = 0; i < 50; ++i) {
      std::vector<char> out;
      ASSERT_TRUE(store->Read(3, oids[i], &out).ok());
      EXPECT_EQ(std::string(out.begin(), out.end()),
                "updated-" + std::to_string(i));
    }
    ASSERT_TRUE(store->CommitTxn(3).ok());
    ASSERT_TRUE(store->Close().ok());
  }
}

// A frame whose on-disk bytes fail checksum verification is rejected
// with kCorruption and — crucially — never enters the pool, so a
// transient bad read is not sticky: once the medium is healthy again
// the same page reads fine.
TEST_F(BufferPoolTest, CorruptedFrameIsRejectedAndNotCached) {
  auto store = OpenTinyPool(2);
  std::vector<Oid> oids;
  ASSERT_TRUE(store->BeginTxn(1).ok());
  for (int i = 0; i < 50; ++i) {
    std::string data = "obj-" + std::to_string(i) +
                       std::string(900, static_cast<char>('a' + i % 26));
    auto oid = store->Allocate(1, Slice(data));
    ASSERT_TRUE(oid.ok());
    oids.push_back(*oid);
  }
  ASSERT_TRUE(store->CommitTxn(1).ok());
  // Push every dirty frame to disk so our corruption below cannot be
  // overwritten by a later eviction.
  ASSERT_TRUE(store->Checkpoint().ok());

  // Flip one bit in the middle of data page 1, out from under the store.
  const long kOffset = static_cast<long>(kPageSize) + 2048;
  auto flip = [&] {
    FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, kOffset, SEEK_SET), 0);
    int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    ASSERT_EQ(std::fseek(f, kOffset, SEEK_SET), 0);
    ASSERT_NE(std::fputc(byte ^ 0x40, f), EOF);
    ASSERT_EQ(std::fclose(f), 0);
  };
  flip();

  // The tiny pool (2 frames) guarantees page 1 is evicted while we walk
  // 50 objects spread over ~15 pages, so its next read comes from the
  // corrupted medium. Every object must be served correctly or rejected
  // as kCorruption — never silently wrong.
  ASSERT_TRUE(store->BeginTxn(2).ok());
  int corrupt_reads = 0;
  for (int i = 49; i >= 0; --i) {  // reverse: page 1 reads come last,
                                   // after the 2-frame pool has churned
    std::vector<char> out;
    Status st = store->Read(2, oids[i], &out);
    if (st.IsCorruption()) {
      ++corrupt_reads;
      continue;
    }
    ASSERT_TRUE(st.ok()) << st.ToString();
    std::string prefix = "obj-" + std::to_string(i);
    ASSERT_GE(out.size(), prefix.size());
    EXPECT_EQ(std::string(out.begin(), out.begin() + prefix.size()), prefix);
  }
  EXPECT_GT(corrupt_reads, 0) << "page 1 held at least one object";
  ASSERT_TRUE(store->CommitTxn(2).ok());

  // Heal the medium; because the rejected frame was never cached, the
  // same reads now succeed without reopening the store.
  flip();
  ASSERT_TRUE(store->BeginTxn(3).ok());
  for (int i = 0; i < 50; ++i) {
    std::vector<char> out;
    ASSERT_TRUE(store->Read(3, oids[i], &out).ok()) << "oid " << i;
  }
  ASSERT_TRUE(store->CommitTxn(3).ok());
  ASSERT_TRUE(store->Close().ok());
}

TEST_F(BufferPoolTest, HitRateImprovesWithLargerPool) {
  auto workload = [&](size_t pool_pages) -> double {
    Cleanup();
    auto store = OpenTinyPool(pool_pages);
    std::vector<Oid> oids;
    TxnId txn = 1;
    EXPECT_TRUE(store->BeginTxn(txn).ok());
    for (int i = 0; i < 100; ++i) {
      auto oid = store->Allocate(txn, Slice(std::string(800, 'd')));
      EXPECT_TRUE(oid.ok());
      oids.push_back(*oid);
    }
    EXPECT_TRUE(store->CommitTxn(txn).ok());
    ++txn;
    Random rng(7);
    EXPECT_TRUE(store->BeginTxn(txn).ok());
    for (int i = 0; i < 2000; ++i) {
      std::vector<char> out;
      EXPECT_TRUE(
          store->Read(txn, oids[rng.Uniform(oids.size())], &out).ok());
    }
    EXPECT_TRUE(store->CommitTxn(txn).ok());
    StorageStats stats = store->stats();
    EXPECT_TRUE(store->Close().ok());
    return static_cast<double>(stats.buffer_hits) /
           static_cast<double>(stats.buffer_hits + stats.buffer_misses);
  };

  double small = workload(2);
  double large = workload(256);
  EXPECT_GT(large, small) << "bigger pool, better hit rate";
  EXPECT_GT(large, 0.95) << "everything fits at 256 pages";
}

}  // namespace
}  // namespace ode
