// Crash-recovery tests for the disk storage manager: a "crash" abandons
// the DiskStorageManager without Close/Checkpoint, so reopening must
// rebuild committed state purely from pages + WAL redo.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/random.h"
#include "storage/disk_storage_manager.h"
#include "storage/fault_injection_env.h"

namespace ode {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ode_recovery_test.db";
    Cleanup();
  }
  void TearDown() override { Cleanup(); }

  void Cleanup() {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }

  std::unique_ptr<DiskStorageManager> OpenStore() {
    auto store = std::make_unique<DiskStorageManager>(path_);
    Status st = store->Open();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return store;
  }

  /// Simulates a crash: nothing is flushed or checkpointed.
  void Crash(std::unique_ptr<DiskStorageManager> store) {
    store->SimulateCrash();
  }

  std::string path_;
};

TEST_F(RecoveryTest, CommittedTransactionsSurviveCrash) {
  auto store = OpenStore();
  ASSERT_TRUE(store->BeginTxn(1).ok());
  auto oid = store->Allocate(1, Slice(std::string("survivor")));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store->SetRoot(1, "r", *oid).ok());
  ASSERT_TRUE(store->CommitTxn(1).ok());
  Crash(std::move(store));

  auto recovered = OpenStore();
  ASSERT_TRUE(recovered->BeginTxn(2).ok());
  EXPECT_EQ(recovered->GetRoot(2, "r").ValueOr(Oid()), *oid);
  std::vector<char> out;
  ASSERT_TRUE(recovered->Read(2, *oid, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "survivor");
  ASSERT_TRUE(recovered->CommitTxn(2).ok());
  ASSERT_TRUE(recovered->Close().ok());
}

TEST_F(RecoveryTest, UncommittedTransactionsVanish) {
  auto store = OpenStore();
  ASSERT_TRUE(store->BeginTxn(1).ok());
  auto committed = store->Allocate(1, Slice(std::string("yes")));
  ASSERT_TRUE(committed.ok());
  ASSERT_TRUE(store->CommitTxn(1).ok());

  ASSERT_TRUE(store->BeginTxn(2).ok());
  auto uncommitted = store->Allocate(2, Slice(std::string("no")));
  ASSERT_TRUE(uncommitted.ok());
  ASSERT_TRUE(
      store->Write(2, *committed, Slice(std::string("dirty"))).ok());
  // Crash before commit.
  Crash(std::move(store));

  auto recovered = OpenStore();
  ASSERT_TRUE(recovered->BeginTxn(3).ok());
  std::vector<char> out;
  ASSERT_TRUE(recovered->Read(3, *committed, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "yes");
  EXPECT_FALSE(recovered->Exists(3, *uncommitted));
  ASSERT_TRUE(recovered->CommitTxn(3).ok());
  ASSERT_TRUE(recovered->Close().ok());
}

TEST_F(RecoveryTest, FreesAreRedone) {
  auto store = OpenStore();
  ASSERT_TRUE(store->BeginTxn(1).ok());
  auto a = store->Allocate(1, Slice(std::string("a")));
  auto b = store->Allocate(1, Slice(std::string("b")));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(store->CommitTxn(1).ok());
  // Make the allocation durable in pages, then free in a later txn that
  // lives only in the WAL.
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(store->BeginTxn(2).ok());
  ASSERT_TRUE(store->Free(2, *a).ok());
  ASSERT_TRUE(store->CommitTxn(2).ok());
  Crash(std::move(store));

  auto recovered = OpenStore();
  ASSERT_TRUE(recovered->BeginTxn(3).ok());
  EXPECT_FALSE(recovered->Exists(3, *a));
  EXPECT_TRUE(recovered->Exists(3, *b));
  ASSERT_TRUE(recovered->CommitTxn(3).ok());
  ASSERT_TRUE(recovered->Close().ok());
}

TEST_F(RecoveryTest, RepeatedCrashesAreIdempotent) {
  auto store = OpenStore();
  ASSERT_TRUE(store->BeginTxn(1).ok());
  auto oid = store->Allocate(1, Slice(std::string("v1")));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store->CommitTxn(1).ok());
  Crash(std::move(store));

  // Recover, write more, crash again — twice.
  for (int round = 2; round <= 3; ++round) {
    auto s = OpenStore();
    TxnId txn = static_cast<TxnId>(round);
    ASSERT_TRUE(s->BeginTxn(txn).ok());
    ASSERT_TRUE(
        s->Write(txn, *oid, Slice("v" + std::to_string(round))).ok());
    ASSERT_TRUE(s->CommitTxn(txn).ok());
    Crash(std::move(s));
  }

  auto final_store = OpenStore();
  ASSERT_TRUE(final_store->BeginTxn(9).ok());
  std::vector<char> out;
  ASSERT_TRUE(final_store->Read(9, *oid, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "v3");
  ASSERT_TRUE(final_store->CommitTxn(9).ok());
  ASSERT_TRUE(final_store->Close().ok());
}

TEST_F(RecoveryTest, LargeObjectSurvivesCrash) {
  std::string big(30000, 'R');
  auto store = OpenStore();
  ASSERT_TRUE(store->BeginTxn(1).ok());
  auto oid = store->Allocate(1, Slice(big));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store->CommitTxn(1).ok());
  Crash(std::move(store));

  auto recovered = OpenStore();
  ASSERT_TRUE(recovered->BeginTxn(2).ok());
  std::vector<char> out;
  ASSERT_TRUE(recovered->Read(2, *oid, &out).ok());
  EXPECT_EQ(out.size(), big.size());
  ASSERT_TRUE(recovered->CommitTxn(2).ok());
  ASSERT_TRUE(recovered->Close().ok());
}

TEST_F(RecoveryTest, CheckpointThenMoreCommitsThenCrash) {
  // Recovery must merge durable pages (from the checkpoint) with the
  // WAL suffix written afterwards.
  auto store = OpenStore();
  ASSERT_TRUE(store->BeginTxn(1).ok());
  auto before = store->Allocate(1, Slice(std::string("before-ckpt")));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(store->CommitTxn(1).ok());
  ASSERT_TRUE(store->Checkpoint().ok());

  ASSERT_TRUE(store->BeginTxn(2).ok());
  auto after = store->Allocate(2, Slice(std::string("after-ckpt")));
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(
      store->Write(2, *before, Slice(std::string("updated"))).ok());
  ASSERT_TRUE(store->CommitTxn(2).ok());
  Crash(std::move(store));

  auto recovered = OpenStore();
  ASSERT_TRUE(recovered->BeginTxn(3).ok());
  std::vector<char> out;
  ASSERT_TRUE(recovered->Read(3, *before, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "updated");
  ASSERT_TRUE(recovered->Read(3, *after, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "after-ckpt");
  ASSERT_TRUE(recovered->CommitTxn(3).ok());
  ASSERT_TRUE(recovered->Close().ok());
}

// Chops `n` bytes off the end of `path` (a crash mid-append).
void ChopTail(const std::string& path, long n) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  ASSERT_GT(size, n);
  ASSERT_EQ(ftruncate(fileno(f), size - n), 0);
  std::fclose(f);
}

TEST_F(RecoveryTest, TornSetRootRecordDiscardsTheWholeTxn) {
  auto store = OpenStore();
  ASSERT_TRUE(store->BeginTxn(1).ok());
  auto first = store->Allocate(1, Slice(std::string("one")));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(store->SetRoot(1, "r", *first).ok());
  ASSERT_TRUE(store->CommitTxn(1).ok());

  // Txn 2 repoints the root; its WAL batch ends kSetRoot, kCommit. Tear
  // into the tail so txn 2's commit never became durable.
  ASSERT_TRUE(store->BeginTxn(2).ok());
  auto second = store->Allocate(2, Slice(std::string("two")));
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(store->SetRoot(2, "r", *second).ok());
  ASSERT_TRUE(store->CommitTxn(2).ok());
  Crash(std::move(store));
  ChopTail(path_ + ".wal", 3);

  auto recovered = OpenStore();
  EXPECT_FALSE(recovered->salvage_mode())
      << "a torn tail is benign, not corruption";
  ASSERT_TRUE(recovered->BeginTxn(3).ok());
  EXPECT_EQ(recovered->GetRoot(3, "r").ValueOr(Oid()), *first)
      << "the torn txn's root update must be rolled back with it";
  EXPECT_FALSE(recovered->Exists(3, *second));
  ASSERT_TRUE(recovered->CommitTxn(3).ok());
  ASSERT_TRUE(recovered->Close().ok());
}

TEST_F(RecoveryTest, TornFreeRecordKeepsTheObject) {
  auto store = OpenStore();
  ASSERT_TRUE(store->BeginTxn(1).ok());
  auto oid = store->Allocate(1, Slice(std::string("undead")));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store->CommitTxn(1).ok());
  // Make the object durable in pages so only the free lives in the WAL.
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(store->BeginTxn(2).ok());
  ASSERT_TRUE(store->Free(2, *oid).ok());
  ASSERT_TRUE(store->CommitTxn(2).ok());
  Crash(std::move(store));
  ChopTail(path_ + ".wal", 3);

  auto recovered = OpenStore();
  ASSERT_TRUE(recovered->BeginTxn(3).ok());
  EXPECT_TRUE(recovered->Exists(3, *oid))
      << "the free's commit record was torn away: the free never happened";
  std::vector<char> out;
  ASSERT_TRUE(recovered->Read(3, *oid, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "undead");
  ASSERT_TRUE(recovered->CommitTxn(3).ok());
  ASSERT_TRUE(recovered->Close().ok());
}

TEST_F(RecoveryTest, CrashBetweenWalSyncAndPageWrites) {
  // The window the no-steal/redo-only design exists for: the commit
  // fsync hit the log, the page applies after it did not. A tiny buffer
  // pool forces real page I/O during the apply.
  FaultInjectionEnv env;
  DiskStorageManager::Options opts;
  opts.env = &env;
  opts.buffer_pool_pages = 2;
  Oid early, late;
  {
    DiskStorageManager store(path_, opts);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.BeginTxn(1).ok());
    auto a = store.Allocate(1, Slice(std::string("checkpointed")));
    ASSERT_TRUE(a.ok());
    early = *a;
    ASSERT_TRUE(store.CommitTxn(1).ok());
    ASSERT_TRUE(store.Checkpoint().ok());

    ASSERT_TRUE(store.BeginTxn(2).ok());
    auto b = store.Allocate(2, Slice(std::string(9000, 'w')));
    ASSERT_TRUE(b.ok());
    late = *b;
    env.ArmCrashAfterNextSync();
    (void)store.CommitTxn(2);  // WAL batch is durable; page applies die
    store.SimulateCrash();
  }
  ASSERT_TRUE(env.DropUnsyncedData(/*seed=*/17).ok());
  env.ResetAfterCrash();

  DiskStorageManager recovered(path_, opts);
  ASSERT_TRUE(recovered.Open().ok());
  ASSERT_TRUE(recovered.BeginTxn(3).ok());
  std::vector<char> out;
  ASSERT_TRUE(recovered.Read(3, early, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "checkpointed");
  ASSERT_TRUE(recovered.Read(3, late, &out).ok())
      << "the fsynced commit record makes txn 2 committed, pages or not";
  EXPECT_EQ(out.size(), 9000u);
  ASSERT_TRUE(recovered.CommitTxn(3).ok());
  ASSERT_TRUE(recovered.Close().ok());
}

// --- silent corruption: flipped bits on the page file ---

// XORs one bit of `path` at `offset` (decayed medium, not a torn write).
void FlipBit(const std::string& path, long offset, int bit = 3) {
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  ASSERT_NE(std::fputc(byte ^ (1 << bit), f), EOF);
  ASSERT_EQ(std::fclose(f), 0);
}

TEST_F(RecoveryTest, FlippedBitOnDataPageIsRepairedFromWalRedo) {
  std::vector<Oid> oids;
  {
    auto store = OpenStore();
    ASSERT_TRUE(store->BeginTxn(1).ok());
    for (int i = 0; i < 8; ++i) {
      auto oid = store->Allocate(1, Slice(std::string(300, 'o')));
      ASSERT_TRUE(oid.ok());
      oids.push_back(*oid);
    }
    ASSERT_TRUE(store->CommitTxn(1).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    // Update every object after the checkpoint so the WAL suffix holds a
    // fresh image of everything the corrupted page can lose.
    ASSERT_TRUE(store->BeginTxn(2).ok());
    for (size_t i = 0; i < oids.size(); ++i) {
      ASSERT_TRUE(
          store->Write(2, oids[i], Slice("new-" + std::to_string(i))).ok());
    }
    ASSERT_TRUE(store->CommitTxn(2).ok());
    Crash(std::move(store));
  }
  // Rot a bit in the first data page (it still holds the checkpointed
  // pre-update images — the post-checkpoint updates live only in the WAL).
  FlipBit(path_, static_cast<long>(kPageSize) + 100);

  auto recovered = OpenStore();
  EXPECT_FALSE(recovered->degraded())
      << "WAL redo covers every object on the rotten page";
  EXPECT_TRUE(recovered->LostObjects().empty());
  ASSERT_TRUE(recovered->BeginTxn(3).ok());
  for (size_t i = 0; i < oids.size(); ++i) {
    std::vector<char> out;
    ASSERT_TRUE(recovered->Read(3, oids[i], &out).ok()) << "oid " << i;
    EXPECT_EQ(std::string(out.begin(), out.end()),
              "new-" + std::to_string(i));
  }
  ASSERT_TRUE(recovered->CommitTxn(3).ok());
  ASSERT_TRUE(recovered->Close().ok());
}

TEST_F(RecoveryTest, FlippedBitPastWalCoverageQuarantinesTheObjects) {
  std::vector<Oid> oids;
  {
    auto store = OpenStore();
    ASSERT_TRUE(store->BeginTxn(1).ok());
    for (int i = 0; i < 30; ++i) {
      auto oid = store->Allocate(1, Slice(std::string(500, 'q')));
      ASSERT_TRUE(oid.ok());
      oids.push_back(*oid);
    }
    ASSERT_TRUE(store->CommitTxn(1).ok());
    // Checkpoint truncates the WAL: nothing covers the pages any more.
    ASSERT_TRUE(store->Checkpoint().ok());
    ASSERT_TRUE(store->Close().ok());
  }
  FlipBit(path_, static_cast<long>(kPageSize) + 200);

  auto recovered = OpenStore();
  EXPECT_TRUE(recovered->degraded());
  std::vector<Oid> lost = recovered->LostObjects();
  ASSERT_FALSE(lost.empty());
  std::set<uint64_t> lost_set;
  for (Oid o : lost) lost_set.insert(o.value());

  ASSERT_TRUE(recovered->BeginTxn(2).ok());
  int explicit_losses = 0;
  for (Oid oid : oids) {
    std::vector<char> out;
    Status st = recovered->Read(2, oid, &out);
    if (lost_set.count(oid.value()) != 0) {
      EXPECT_TRUE(st.IsCorruption())
          << "lost objects must fail loudly: " << st.ToString();
      EXPECT_TRUE(recovered->Exists(2, oid))
          << "lost, not vanished: Exists stays true";
      ++explicit_losses;
    } else {
      ASSERT_TRUE(st.ok()) << st.ToString();
      EXPECT_EQ(out.size(), 500u);
    }
  }
  EXPECT_GT(explicit_losses, 0);

  // A lost object can be rewritten — that is the application-level
  // repair path — after which it reads normally again.
  ASSERT_TRUE(
      recovered->Write(2, lost[0], Slice(std::string("restored"))).ok());
  std::vector<char> out;
  ASSERT_TRUE(recovered->Read(2, lost[0], &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "restored");
  ASSERT_TRUE(recovered->CommitTxn(2).ok());
  ASSERT_TRUE(recovered->Close().ok());
}

TEST_F(RecoveryTest, FlippedBitOnRootsObjectPageFailsRootLookupsLoudly) {
  Oid target;
  {
    auto store = OpenStore();
    ASSERT_TRUE(store->BeginTxn(1).ok());
    auto oid = store->Allocate(1, Slice(std::string("pointed-at")));
    ASSERT_TRUE(oid.ok());
    target = *oid;
    ASSERT_TRUE(store->SetRoot(1, "r", target).ok());
    ASSERT_TRUE(store->CommitTxn(1).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    ASSERT_TRUE(store->Close().ok());
  }
  // The roots directory (reserved oid 1) sits on the first data page.
  FlipBit(path_, static_cast<long>(kPageSize) + 64);

  auto recovered = OpenStore();
  EXPECT_TRUE(recovered->degraded());
  ASSERT_TRUE(recovered->BeginTxn(2).ok());
  auto root = recovered->GetRoot(2, "r");
  ASSERT_FALSE(root.ok());
  EXPECT_TRUE(root.status().IsCorruption())
      << "a lost roots directory must not masquerade as 'no such root': "
      << root.status().ToString();
  ASSERT_TRUE(recovered->CommitTxn(2).ok());
  ASSERT_TRUE(recovered->Close().ok());
}

TEST_F(RecoveryTest, FlippedBitMidOverflowChainLosesOnlyThatObject) {
  std::string big(30000, 'B');
  Oid big_oid, small_oid;
  {
    auto store = OpenStore();
    ASSERT_TRUE(store->BeginTxn(1).ok());
    auto a = store->Allocate(1, Slice(big));
    auto b = store->Allocate(1, Slice(std::string("bystander")));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    big_oid = *a;
    small_oid = *b;
    ASSERT_TRUE(store->CommitTxn(1).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    ASSERT_TRUE(store->Close().ok());
  }
  // Find an overflow page (marker 0xffff where a slot count would be)
  // and rot a byte in its data area.
  long ovf_offset = -1;
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[8];
    for (long page = 1;; ++page) {
      if (std::fseek(f, page * static_cast<long>(kPageSize), SEEK_SET) != 0)
        break;
      if (std::fread(buf, 1, sizeof(buf), f) != sizeof(buf)) break;
      if (static_cast<unsigned char>(buf[4]) == 0xff &&
          static_cast<unsigned char>(buf[5]) == 0xff) {
        ovf_offset = page * static_cast<long>(kPageSize);
        break;
      }
    }
    std::fclose(f);
  }
  ASSERT_GT(ovf_offset, 0) << "a 30 KB object must use overflow pages";
  FlipBit(path_, ovf_offset + 1000);

  auto recovered = OpenStore();
  EXPECT_TRUE(recovered->degraded());
  ASSERT_TRUE(recovered->BeginTxn(2).ok());
  std::vector<char> out;
  Status st = recovered->Read(2, big_oid, &out);
  EXPECT_TRUE(st.IsCorruption())
      << "an unreadable overflow chain must fail loudly: " << st.ToString();
  ASSERT_TRUE(recovered->Read(2, small_oid, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "bystander");
  ASSERT_TRUE(recovered->CommitTxn(2).ok());
  ASSERT_TRUE(recovered->Close().ok());
}

class RecoveryFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryFuzz, CommittedPrefixAlwaysRecovers) {
  std::string path = ::testing::TempDir() + "/ode_recovery_fuzz_" +
                     std::to_string(GetParam()) + ".db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  Random rng(GetParam());
  std::unordered_map<uint64_t, std::string> model;
  TxnId next_txn = 1;

  for (int session = 0; session < 4; ++session) {
    auto store = std::make_unique<DiskStorageManager>(path);
    ASSERT_TRUE(store->Open().ok());

    // Verify the model right after recovery.
    TxnId check = next_txn++;
    ASSERT_TRUE(store->BeginTxn(check).ok());
    for (const auto& [oid, data] : model) {
      std::vector<char> out;
      ASSERT_TRUE(store->Read(check, Oid(oid), &out).ok())
          << "oid " << oid << " lost after crash " << session;
      EXPECT_EQ(std::string(out.begin(), out.end()), data);
    }
    ASSERT_TRUE(store->CommitTxn(check).ok());

    // Random committed transactions, then one uncommitted, then crash.
    std::vector<uint64_t> oids;
    for (const auto& [oid, data] : model) {
      (void)data;
      oids.push_back(oid);
    }
    int txns = 1 + static_cast<int>(rng.Uniform(4));
    for (int t = 0; t < txns; ++t) {
      TxnId txn = next_txn++;
      ASSERT_TRUE(store->BeginTxn(txn).ok());
      auto local = model;
      for (int op = 0; op < 8; ++op) {
        if (oids.empty() || rng.Bernoulli(0.5)) {
          std::string data(rng.Uniform(5000), static_cast<char>('a' + rng.Uniform(26)));
          auto oid = store->Allocate(txn, Slice(data));
          ASSERT_TRUE(oid.ok());
          local[oid->value()] = data;
          oids.push_back(oid->value());
        } else {
          uint64_t oid = oids[rng.Uniform(oids.size())];
          if (local.count(oid) == 0) continue;
          std::string data(rng.Uniform(5000), 'z');
          ASSERT_TRUE(store->Write(txn, Oid(oid), Slice(data)).ok());
          local[oid] = data;
        }
      }
      ASSERT_TRUE(store->CommitTxn(txn).ok());
      model = std::move(local);
    }
    // Uncommitted garbage that must vanish.
    TxnId loser = next_txn++;
    ASSERT_TRUE(store->BeginTxn(loser).ok());
    ASSERT_TRUE(store->Allocate(loser, Slice(std::string("garbage"))).ok());
    store->SimulateCrash();
  }

  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzz, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace ode
