// Unit tests for the trigger runtime's building blocks: the eventRep
// registry (§5.2), TriggerState encoding (§5.4.1), and the persistent
// object -> active-triggers index (§5.4.1).

#include <gtest/gtest.h>

#include "objstore/database.h"
#include "trigger/event_registry.h"
#include "trigger/trigger_index.h"
#include "trigger/trigger_state.h"

namespace ode {
namespace {

// --------------------------------------------------------- EventRegistry

TEST(EventRegistry, SamePairSameSymbol) {
  EventRegistry reg;
  Symbol a = reg.Intern("CredCard", "after Buy");
  Symbol b = reg.Intern("CredCard", "after Buy");
  EXPECT_EQ(a, b);
}

TEST(EventRegistry, DistinctPairsDistinctSymbols) {
  // "each underlying event is mapped to exactly one integer and no two
  // distinct events map to the same integer" (§5.2).
  EventRegistry reg;
  Symbol a = reg.Intern("CredCard", "after Buy");
  Symbol b = reg.Intern("CredCard", "after PayBill");
  Symbol c = reg.Intern("Account", "after Buy");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(EventRegistry, SymbolsStartAfterPseudoEvents) {
  EventRegistry reg;
  Symbol a = reg.Intern("X", "e");
  EXPECT_GE(a, kFirstEventSymbol);
  EXPECT_NE(a, kTrueSymbol);
  EXPECT_NE(a, kFalseSymbol);
}

TEST(EventRegistry, FindWithoutInterning) {
  EventRegistry reg;
  EXPECT_EQ(reg.Find("X", "e"), 0u);
  Symbol a = reg.Intern("X", "e");
  EXPECT_EQ(reg.Find("X", "e"), a);
}

TEST(EventRegistry, NameOf) {
  EventRegistry reg;
  Symbol a = reg.Intern("CredCard", "BigBuy");
  EXPECT_EQ(reg.NameOf(a), "CredCard::BigBuy");
  EXPECT_EQ(reg.NameOf(99999), "ev99999");
}

// ---------------------------------------------------------- TriggerState

TEST(TriggerState, EncodeDecodeRoundTrip) {
  TriggerState state;
  state.triggernum = 1;  // "AutoRaiseLimit is 2nd trigger" (§5.4.1)
  state.trigobj = Oid(77);
  state.statenum = 2;
  state.trigobjtype = 5;
  state.params = {1, 2, 3, 4};

  auto decoded = TriggerState::Decode(Slice(state.Encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->triggernum, 1u);
  EXPECT_EQ(decoded->trigobj, Oid(77));
  EXPECT_EQ(decoded->statenum, 2);
  EXPECT_EQ(decoded->trigobjtype, 5u);
  EXPECT_EQ(decoded->params, (std::vector<char>{1, 2, 3, 4}));
}

TEST(TriggerState, DecodeRejectsTruncation) {
  TriggerState state;
  auto bytes = state.Encode();
  auto truncated =
      TriggerState::Decode(Slice(bytes.data(), bytes.size() - 1));
  EXPECT_FALSE(truncated.ok());
}

TEST(TriggerState, DeadFsmStateRoundTrips) {
  TriggerState state;
  state.statenum = -1;  // dead anchored machine
  auto decoded = TriggerState::Decode(Slice(state.Encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->statenum, -1);
}

// ---------------------------------------------------------- TriggerIndex

class TriggerIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(StorageKind::kMainMemory, "");
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    index_ = std::make_unique<TriggerIndex>(db_.get(), 8);
  }

  Transaction* Begin() {
    auto txn = db_->txns()->Begin();
    EXPECT_TRUE(txn.ok());
    return txn.ValueOr(nullptr);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<TriggerIndex> index_;
};

TEST_F(TriggerIndexTest, InsertLookupRemove) {
  Transaction* txn = Begin();
  ASSERT_TRUE(index_->Insert(txn, Oid(1), Oid(100)).ok());
  ASSERT_TRUE(index_->Insert(txn, Oid(1), Oid(101)).ok());
  ASSERT_TRUE(index_->Insert(txn, Oid(2), Oid(102)).ok());

  auto one = index_->Lookup(txn, Oid(1));
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->size(), 2u);
  auto two = index_->Lookup(txn, Oid(2));
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->size(), 1u);
  auto none = index_->Lookup(txn, Oid(3));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  ASSERT_TRUE(index_->Remove(txn, Oid(1), Oid(100)).ok());
  one = index_->Lookup(txn, Oid(1));
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, std::vector<Oid>{Oid(101)});
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_F(TriggerIndexTest, DuplicateInsertRejected) {
  Transaction* txn = Begin();
  ASSERT_TRUE(index_->Insert(txn, Oid(1), Oid(100)).ok());
  EXPECT_EQ(index_->Insert(txn, Oid(1), Oid(100)).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_F(TriggerIndexTest, RemoveMissingIsNotFound) {
  Transaction* txn = Begin();
  EXPECT_TRUE(index_->Remove(txn, Oid(1), Oid(100)).IsNotFound());
  ASSERT_TRUE(index_->Insert(txn, Oid(1), Oid(100)).ok());
  EXPECT_TRUE(index_->Remove(txn, Oid(1), Oid(999)).IsNotFound());
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_F(TriggerIndexTest, InsertRollsBackOnAbort) {
  Transaction* txn = Begin();
  ASSERT_TRUE(index_->Insert(txn, Oid(1), Oid(100)).ok());
  ASSERT_TRUE(db_->txns()->Abort(txn).ok());

  Transaction* check = Begin();
  auto result = index_->Lookup(check, Oid(1));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  ASSERT_TRUE(db_->txns()->Commit(check).ok());
}

TEST_F(TriggerIndexTest, ForEachVisitsEverything) {
  Transaction* txn = Begin();
  // Enough entries to hit several buckets.
  for (uint64_t obj = 1; obj <= 40; ++obj) {
    ASSERT_TRUE(index_->Insert(txn, Oid(obj), Oid(1000 + obj)).ok());
  }
  int count = 0;
  ASSERT_TRUE(index_
                  ->ForEach(txn,
                            [&](Oid obj, Oid trig) {
                              EXPECT_EQ(trig.value(), 1000 + obj.value());
                              ++count;
                            })
                  .ok());
  EXPECT_EQ(count, 40);
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_F(TriggerIndexTest, ForEachOnEmptyDatabase) {
  Transaction* txn = Begin();
  int count = 0;
  ASSERT_TRUE(index_->ForEach(txn, [&](Oid, Oid) { ++count; }).ok());
  EXPECT_EQ(count, 0);
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

}  // namespace
}  // namespace ode
