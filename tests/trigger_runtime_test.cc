// Unit tests for the trigger runtime's building blocks: the eventRep
// registry (§5.2), TriggerState encoding (§5.4.1), and the persistent
// object -> active-triggers index (§5.4.1).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "objstore/database.h"
#include "paper_example.h"
#include "trigger/event_registry.h"
#include "trigger/trigger_index.h"
#include "trigger/trigger_state.h"
#include "trigger/trigger_trace.h"

namespace ode {
namespace {

// --------------------------------------------------------- EventRegistry

TEST(EventRegistry, SamePairSameSymbol) {
  EventRegistry reg;
  Symbol a = reg.Intern("CredCard", "after Buy");
  Symbol b = reg.Intern("CredCard", "after Buy");
  EXPECT_EQ(a, b);
}

TEST(EventRegistry, DistinctPairsDistinctSymbols) {
  // "each underlying event is mapped to exactly one integer and no two
  // distinct events map to the same integer" (§5.2).
  EventRegistry reg;
  Symbol a = reg.Intern("CredCard", "after Buy");
  Symbol b = reg.Intern("CredCard", "after PayBill");
  Symbol c = reg.Intern("Account", "after Buy");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(EventRegistry, SymbolsStartAfterPseudoEvents) {
  EventRegistry reg;
  Symbol a = reg.Intern("X", "e");
  EXPECT_GE(a, kFirstEventSymbol);
  EXPECT_NE(a, kTrueSymbol);
  EXPECT_NE(a, kFalseSymbol);
}

TEST(EventRegistry, FindWithoutInterning) {
  EventRegistry reg;
  EXPECT_EQ(reg.Find("X", "e"), 0u);
  Symbol a = reg.Intern("X", "e");
  EXPECT_EQ(reg.Find("X", "e"), a);
}

TEST(EventRegistry, NameOf) {
  EventRegistry reg;
  Symbol a = reg.Intern("CredCard", "BigBuy");
  EXPECT_EQ(reg.NameOf(a), "CredCard::BigBuy");
  EXPECT_EQ(reg.NameOf(99999), "ev99999");
}

// ---------------------------------------------------------- TriggerState

TEST(TriggerState, EncodeDecodeRoundTrip) {
  TriggerState state;
  state.triggernum = 1;  // "AutoRaiseLimit is 2nd trigger" (§5.4.1)
  state.trigobj = Oid(77);
  state.statenum = 2;
  state.trigobjtype = 5;
  state.params = {1, 2, 3, 4};

  auto decoded = TriggerState::Decode(Slice(state.Encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->triggernum, 1u);
  EXPECT_EQ(decoded->trigobj, Oid(77));
  EXPECT_EQ(decoded->statenum, 2);
  EXPECT_EQ(decoded->trigobjtype, 5u);
  EXPECT_EQ(decoded->params, (std::vector<char>{1, 2, 3, 4}));
}

TEST(TriggerState, DecodeRejectsTruncation) {
  TriggerState state;
  auto bytes = state.Encode();
  auto truncated =
      TriggerState::Decode(Slice(bytes.data(), bytes.size() - 1));
  EXPECT_FALSE(truncated.ok());
}

TEST(TriggerState, DeadFsmStateRoundTrips) {
  TriggerState state;
  state.statenum = -1;  // dead anchored machine
  auto decoded = TriggerState::Decode(Slice(state.Encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->statenum, -1);
}

// ---------------------------------------------------------- TriggerIndex

class TriggerIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Database::Open(StorageKind::kMainMemory, "");
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    index_ = std::make_unique<TriggerIndex>(db_.get(), 8);
  }

  Transaction* Begin() {
    auto txn = db_->txns()->Begin();
    EXPECT_TRUE(txn.ok());
    return txn.ValueOr(nullptr);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<TriggerIndex> index_;
};

TEST_F(TriggerIndexTest, InsertLookupRemove) {
  Transaction* txn = Begin();
  ASSERT_TRUE(index_->Insert(txn, Oid(1), Oid(100)).ok());
  ASSERT_TRUE(index_->Insert(txn, Oid(1), Oid(101)).ok());
  ASSERT_TRUE(index_->Insert(txn, Oid(2), Oid(102)).ok());

  auto one = index_->Lookup(txn, Oid(1));
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->size(), 2u);
  auto two = index_->Lookup(txn, Oid(2));
  ASSERT_TRUE(two.ok());
  EXPECT_EQ(two->size(), 1u);
  auto none = index_->Lookup(txn, Oid(3));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  ASSERT_TRUE(index_->Remove(txn, Oid(1), Oid(100)).ok());
  one = index_->Lookup(txn, Oid(1));
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(*one, std::vector<Oid>{Oid(101)});
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_F(TriggerIndexTest, DuplicateInsertRejected) {
  Transaction* txn = Begin();
  ASSERT_TRUE(index_->Insert(txn, Oid(1), Oid(100)).ok());
  EXPECT_EQ(index_->Insert(txn, Oid(1), Oid(100)).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_F(TriggerIndexTest, RemoveMissingIsNotFound) {
  Transaction* txn = Begin();
  EXPECT_TRUE(index_->Remove(txn, Oid(1), Oid(100)).IsNotFound());
  ASSERT_TRUE(index_->Insert(txn, Oid(1), Oid(100)).ok());
  EXPECT_TRUE(index_->Remove(txn, Oid(1), Oid(999)).IsNotFound());
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_F(TriggerIndexTest, InsertRollsBackOnAbort) {
  Transaction* txn = Begin();
  ASSERT_TRUE(index_->Insert(txn, Oid(1), Oid(100)).ok());
  ASSERT_TRUE(db_->txns()->Abort(txn).ok());

  Transaction* check = Begin();
  auto result = index_->Lookup(check, Oid(1));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
  ASSERT_TRUE(db_->txns()->Commit(check).ok());
}

TEST_F(TriggerIndexTest, ForEachVisitsEverything) {
  Transaction* txn = Begin();
  // Enough entries to hit several buckets.
  for (uint64_t obj = 1; obj <= 40; ++obj) {
    ASSERT_TRUE(index_->Insert(txn, Oid(obj), Oid(1000 + obj)).ok());
  }
  int count = 0;
  ASSERT_TRUE(index_
                  ->ForEach(txn,
                            [&](Oid obj, Oid trig) {
                              EXPECT_EQ(trig.value(), 1000 + obj.value());
                              ++count;
                            })
                  .ok());
  EXPECT_EQ(count, 40);
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

TEST_F(TriggerIndexTest, ForEachOnEmptyDatabase) {
  Transaction* txn = Begin();
  int count = 0;
  ASSERT_TRUE(index_->ForEach(txn, [&](Oid, Oid) { ++count; }).ok());
  EXPECT_EQ(count, 0);
  ASSERT_TRUE(db_->txns()->Commit(txn).ok());
}

// ------------------------------------------------------- TriggerTraceRing

TEST(TriggerTraceRing, WrapsAndKeepsNewest) {
  TriggerTraceRing ring(3);
  for (int i = 0; i < 5; ++i) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::kEventPosted;
    event.a = i;
    ring.Record(event);
  }
  EXPECT_EQ(ring.total_recorded(), 5u);
  std::vector<TraceEvent> events = ring.Events();
  ASSERT_EQ(events.size(), 3u);
  // Oldest surviving first; seq assigned by the ring itself.
  EXPECT_EQ(events[0].a, 2);
  EXPECT_EQ(events[2].a, 4);
  EXPECT_EQ(events[0].seq + 2, events[2].seq);
  EXPECT_NE(ring.Dump().find("(2 dropped)"), std::string::npos);
  ring.Clear();
  EXPECT_TRUE(ring.Events().empty());
  EXPECT_EQ(ring.total_recorded(), 5u);  // Clear keeps the sequence
}

// The trace ring observed through a Session running the paper's §4
// credit-card example (Fig. 1's relative() machine).
class TriggerTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    paper::DeclareCredCard(&schema_);
    ASSERT_TRUE(schema_.Freeze().ok());
    Session::Options options;
    options.trigger_trace_capacity = 256;
    auto session =
        Session::Open(StorageKind::kMainMemory, "", &schema_, options);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    s_ = std::move(session).value();
  }

  static bool HasKind(const std::vector<TraceEvent>& events,
                      TraceEvent::Kind kind) {
    return std::any_of(events.begin(), events.end(),
                       [kind](const TraceEvent& e) { return e.kind == kind; });
  }

  Schema schema_;
  std::unique_ptr<Session> s_;
};

TEST_F(TriggerTraceTest, FiredTriggerLeavesItsFullTransitionPath) {
  // AutoRaiseLimit: relative((after Buy & MoreCred()), after PayBill).
  // First transaction: Buy to 90% of the limit advances the machine to
  // its intermediate state, which must be written back at commit.
  // Second transaction: PayBill reaches accept and runs the action.
  TriggerId trig = TriggerId::Null();
  PRef<paper::CredCard> card;
  ASSERT_TRUE(s_->WithTransaction([&](Transaction* txn) -> Status {
                  auto created =
                      s_->New(txn, paper::CredCard{1000, 0, 0, true});
                  ODE_RETURN_NOT_OK(created.status());
                  card = *created;
                  auto t = s_->Activate(txn, card, "AutoRaiseLimit",
                                        PackParams(250.0f));
                  ODE_RETURN_NOT_OK(t.status());
                  trig = *t;
                  return s_->Invoke(txn, card, &paper::CredCard::Buy, 900.0f);
                }).ok());
  ASSERT_TRUE(s_->WithTransaction([&](Transaction* txn) -> Status {
                  return s_->Invoke(txn, card, &paper::CredCard::PayBill,
                                    100.0f);
                }).ok());

  std::vector<TraceEvent> events = s_->triggers()->trace()->Events();
  EXPECT_TRUE(HasKind(events, TraceEvent::Kind::kEventPosted));
  EXPECT_TRUE(HasKind(events, TraceEvent::Kind::kStateWriteBack));

  // This trigger's own path: at least one FSM move, a True mask verdict,
  // an accept, and the action run — in that order.
  auto index_of = [&](TraceEvent::Kind kind, auto pred) -> int {
    for (size_t i = 0; i < events.size(); ++i) {
      if (events[i].kind == kind && events[i].trigger == trig &&
          pred(events[i])) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  auto any = [](const TraceEvent&) { return true; };
  int moved = index_of(TraceEvent::Kind::kFsmTransition, any);
  int masked = index_of(TraceEvent::Kind::kMaskEvaluated,
                        [](const TraceEvent& e) { return e.mask_result(); });
  int accepted = index_of(TraceEvent::Kind::kAcceptReached, any);
  int ran = index_of(TraceEvent::Kind::kActionRan, any);
  ASSERT_GE(moved, 0);
  ASSERT_GE(masked, 0);
  ASSERT_GE(accepted, 0);
  ASSERT_GE(ran, 0);
  EXPECT_LT(moved, accepted);
  EXPECT_LT(masked, accepted);
  EXPECT_LT(accepted, ran);
  EXPECT_EQ(events[ran].coupling, CouplingMode::kImmediate);

  // The dump renders the whole path in order.
  std::string dump = s_->DumpTrace();
  EXPECT_NE(dump.find("fsm-transition"), std::string::npos);
  EXPECT_NE(dump.find("accept-reached"), std::string::npos);
  EXPECT_NE(dump.find("action-ran"), std::string::npos);
}

TEST_F(TriggerTraceTest, AbortedTransactionRecordsItsDiscards) {
  // DenyCredit taborts when a Buy pushes the balance over the limit; the
  // perpetual machine's dirty state is discarded with the transaction.
  Status st = s_->WithTransaction([&](Transaction* txn) -> Status {
    auto card = s_->New(txn, paper::CredCard{100, 0, 0, true});
    ODE_RETURN_NOT_OK(card.status());
    ODE_RETURN_NOT_OK(s_->Activate(txn, *card, "DenyCredit").status());
    return s_->Invoke(txn, *card, &paper::CredCard::Buy, 500.0f);
  });
  EXPECT_TRUE(st.IsTransactionAborted()) << st.ToString();

  std::vector<TraceEvent> events = s_->triggers()->trace()->Events();
  EXPECT_TRUE(HasKind(events, TraceEvent::Kind::kAcceptReached));
  EXPECT_TRUE(HasKind(events, TraceEvent::Kind::kActionRan));
  EXPECT_TRUE(HasKind(events, TraceEvent::Kind::kAbortDiscard));
  EXPECT_FALSE(HasKind(events, TraceEvent::Kind::kStateWriteBack));
}

TEST_F(TriggerTraceTest, DiskCommitsRecordTheirGroupCommitBatch) {
  // The MM store does not batch commits, so the fixture session must
  // never emit commit-batch events...
  ASSERT_TRUE(s_->WithTransaction([&](Transaction* txn) -> Status {
                  return s_->New(txn, paper::CredCard{100, 0, 0, true})
                      .status();
                })
                  .ok());
  EXPECT_FALSE(HasKind(s_->triggers()->trace()->Events(),
                       TraceEvent::Kind::kCommitBatch));

  // ...while a disk-backed session attributes every committed write
  // transaction to the group-commit batch whose fsync it shared.
  const std::string path = ::testing::TempDir() + "/ode_trace_batch.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  Session::Options options;
  options.trigger_trace_capacity = 256;
  auto disk = Session::Open(StorageKind::kDisk, path, &schema_, options);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ASSERT_TRUE((*disk)
                  ->WithTransaction([&](Transaction* txn) -> Status {
                    return (*disk)
                        ->New(txn, paper::CredCard{100, 0, 0, true})
                        .status();
                  })
                  .ok());
  std::vector<TraceEvent> events = (*disk)->triggers()->trace()->Events();
  auto it = std::find_if(events.begin(), events.end(), [](const TraceEvent& e) {
    return e.kind == TraceEvent::Kind::kCommitBatch;
  });
  ASSERT_NE(it, events.end());
  EXPECT_GT(it->batch_id(), 0);
  EXPECT_GE(it->batch_size(), 1);
  disk->reset();
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

TEST_F(TriggerTraceTest, DumpWithoutTracingExplainsItself) {
  auto plain = Session::Open(StorageKind::kMainMemory, "", &schema_);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ((*plain)->triggers()->trace(), nullptr);
  EXPECT_NE((*plain)->DumpTrace().find("disabled"), std::string::npos);
}

}  // namespace
}  // namespace ode
