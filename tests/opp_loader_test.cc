// Tests for the O++-style schema text loader: the paper's CredCard class
// written as source text, loaded, and driven end to end; plus error
// reporting.

#include "odepp/opp_loader.h"

#include <gtest/gtest.h>

#include "odepp/params.h"
#include "odepp/session.h"
#include "paper_example.h"

namespace ode {
namespace {

using paper::CredCard;

constexpr const char* kCredCardSource = R"(
// The paper's section-4 example, as O++-style source.
persistent class CredCard {
  event after Buy, after PayBill, BigBuy;

  trigger DenyCredit :
      perpetual after Buy & (currBal>credLim) ==> deny_credit;

  trigger AutoRaiseLimit :
      relative((after Buy & MoreCred()), after PayBill) ==> raise_limit;
};
)";

void Bind(OppBindings* bindings) {
  bindings->Class<CredCard>("CredCard");
  bindings->Method("CredCard", "Buy", &CredCard::Buy);
  bindings->Method("CredCard", "PayBill", &CredCard::PayBill);
  bindings->Mask<CredCard>(
      "CredCard", "(currBal>credLim)",
      [](const CredCard& c, MaskEvalContext&) -> Result<bool> {
        return c.curr_bal > c.cred_lim;
      });
  bindings->Mask<CredCard>(
      "CredCard", "MoreCred()",
      [](const CredCard& c, MaskEvalContext&) -> Result<bool> {
        return c.MoreCred();
      });
  bindings->Action<CredCard>(
      "CredCard", "deny_credit",
      [](CredCard& c, TriggerFireContext& ctx) -> Status {
        c.BlackMark();
        ctx.Tabort("over limit");
        return Status::OK();
      });
  bindings->Action<CredCard>(
      "CredCard", "raise_limit",
      [](CredCard& c, TriggerFireContext& ctx) -> Status {
        auto amount = UnpackParams<float>(ctx.params());
        if (!amount.ok()) return amount.status();
        c.RaiseLimit(std::get<0>(*amount));
        return Status::OK();
      });
}

TEST(OppLoader, LoadsAndRunsThePaperSchema) {
  OppBindings bindings;
  Bind(&bindings);
  Schema schema;
  Status st = LoadOppSchema(kCredCardSource, bindings, &schema);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(schema.Freeze().ok());

  // The loaded schema behaves exactly like the hand-registered one.
  auto session = Session::Open(StorageKind::kMainMemory, "", &schema);
  ASSERT_TRUE(session.ok());
  Session& s = **session;
  PRef<CredCard> card;
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    CredCard c;
    c.cred_lim = 1000;
    auto r = s.New(txn, c);
    ODE_RETURN_NOT_OK(r.status());
    card = *r;
    ODE_RETURN_NOT_OK(s.Activate(txn, card, "DenyCredit").status());
    return s
        .Activate(txn, card, "AutoRaiseLimit", PackParams(500.0f))
        .status();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();

  // DenyCredit rejects the over-limit purchase.
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    return s.Invoke(txn, card, &CredCard::Buy, 1500.0f);
  });
  EXPECT_TRUE(st.IsTransactionAborted());

  // AutoRaiseLimit arms and fires.
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    return s.Invoke(txn, card, &CredCard::Buy, 900.0f);
  });
  ASSERT_TRUE(st.ok());
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    return s.Invoke(txn, card, &CredCard::PayBill, 50.0f);
  });
  ASSERT_TRUE(st.ok());
  st = s.WithTransaction([&](Transaction* txn) -> Status {
    auto c = s.Load(txn, card);
    ODE_RETURN_NOT_OK(c.status());
    EXPECT_FLOAT_EQ(c->cred_lim, 1500);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST(OppLoader, CouplingKeywords) {
  OppBindings bindings;
  Bind(&bindings);
  Schema schema;
  Status st = LoadOppSchema(R"(
class CredCard {
  event after Buy;
  trigger A : end after Buy ==> raise_limit;
  trigger B : dependent after Buy ==> raise_limit;
  trigger C : perpetual !dependent after Buy ==> raise_limit;
};)",
                            bindings, &schema);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(schema.Freeze().ok());
  const TypeDescriptor* type =
      schema.RecordByName("CredCard")->descriptor.get();
  EXPECT_EQ(type->FindTrigger("A", nullptr)->coupling,
            CouplingMode::kDeferred);
  EXPECT_EQ(type->FindTrigger("B", nullptr)->coupling,
            CouplingMode::kDependent);
  const TriggerInfo* c = type->FindTrigger("C", nullptr);
  EXPECT_EQ(c->coupling, CouplingMode::kIndependent);
  EXPECT_TRUE(c->perpetual);
}

TEST(OppLoader, ErrorsCarryLineNumbers) {
  OppBindings bindings;
  Bind(&bindings);
  {
    Schema schema;
    Status st = LoadOppSchema("class Unknown { };", bindings, &schema);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("no C++ binding"), std::string::npos);
  }
  {
    Schema schema;
    Status st = LoadOppSchema(R"(
class CredCard {
  event after Buy;
  trigger T : after Buy ==> no_such_action;
};)",
                              bindings, &schema);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("no_such_action"), std::string::npos);
    EXPECT_NE(st.message().find("line 4"), std::string::npos)
        << st.ToString();
  }
  {
    Schema schema;
    Status st = LoadOppSchema("struct CredCard { };", bindings, &schema);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kParseError);
  }
  {
    Schema schema;
    Status st = LoadOppSchema(R"(
class CredCard {
  widget foo;
};)",
                              bindings, &schema);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("'event', 'trigger'"), std::string::npos);
  }
}

TEST(OppLoader, RoundTripWithToOppSource) {
  // A schema loaded from text renders back to equivalent declarations.
  OppBindings bindings;
  Bind(&bindings);
  Schema schema;
  ASSERT_TRUE(LoadOppSchema(kCredCardSource, bindings, &schema).ok());
  ASSERT_TRUE(schema.Freeze().ok());
  std::string rendered = schema.ToOppSource();
  EXPECT_NE(rendered.find("persistent class CredCard {"),
            std::string::npos);
  EXPECT_NE(rendered.find("event after Buy, after PayBill, BigBuy;"),
            std::string::npos);
  EXPECT_NE(rendered.find("perpetual after Buy & (currBal>credLim)"),
            std::string::npos);
}

}  // namespace
}  // namespace ode
