// Unit tests for the common runtime: Status/Result, binary coding,
// slices, hashing, and the deterministic PRNG.

#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace ode {
namespace {

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing widget");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "not found: missing widget");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kParseError); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(Status, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    ODE_RETURN_NOT_OK(Status::IOError("disk gone"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kIOError);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r(Status::Corruption("bad bytes"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(Result, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("nope");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    ODE_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 8);
  EXPECT_TRUE(outer(true).status().IsNotFound());
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(Coding, FixedWidthRoundTrip) {
  Encoder enc;
  enc.PutU8(0xab);
  enc.PutU16(0xbeef);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefull);
  enc.PutI32(-12345);
  enc.PutI64(-9876543210ll);
  enc.PutBool(true);
  enc.PutFloat(3.5f);
  enc.PutDouble(-2.25);

  Decoder dec(Slice(enc.buffer()));
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  bool b;
  float f;
  double d;
  ASSERT_TRUE(dec.GetU8(&u8).ok());
  ASSERT_TRUE(dec.GetU16(&u16).ok());
  ASSERT_TRUE(dec.GetU32(&u32).ok());
  ASSERT_TRUE(dec.GetU64(&u64).ok());
  ASSERT_TRUE(dec.GetI32(&i32).ok());
  ASSERT_TRUE(dec.GetI64(&i64).ok());
  ASSERT_TRUE(dec.GetBool(&b).ok());
  ASSERT_TRUE(dec.GetFloat(&f).ok());
  ASSERT_TRUE(dec.GetDouble(&d).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0xbeef);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_EQ(i32, -12345);
  EXPECT_EQ(i64, -9876543210ll);
  EXPECT_TRUE(b);
  EXPECT_FLOAT_EQ(f, 3.5f);
  EXPECT_DOUBLE_EQ(d, -2.25);
  EXPECT_TRUE(dec.AtEnd());
}

TEST(Coding, StringsAndBytes) {
  Encoder enc;
  enc.PutString("");
  enc.PutString("hello ode");
  std::vector<char> blob(300, 'x');
  enc.PutBytes(Slice(blob));

  Decoder dec(Slice(enc.buffer()));
  std::string a, b;
  std::vector<char> c;
  ASSERT_TRUE(dec.GetString(&a).ok());
  ASSERT_TRUE(dec.GetString(&b).ok());
  ASSERT_TRUE(dec.GetBytes(&c).ok());
  EXPECT_EQ(a, "");
  EXPECT_EQ(b, "hello ode");
  EXPECT_EQ(c, blob);
}

TEST(Coding, TruncationIsCorruption) {
  Encoder enc;
  enc.PutU64(7);
  Decoder dec(Slice(enc.buffer().data(), 3));
  uint64_t v;
  EXPECT_EQ(dec.GetU64(&v).code(), StatusCode::kCorruption);
}

TEST(Coding, TruncatedStringIsCorruption) {
  Encoder enc;
  enc.PutString("abcdef");
  Decoder dec(Slice(enc.buffer().data(), 4));
  std::string s;
  EXPECT_EQ(dec.GetString(&s).code(), StatusCode::kCorruption);
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  Encoder enc;
  enc.PutVarint(GetParam());
  Decoder dec(Slice(enc.buffer()));
  uint64_t v;
  ASSERT_TRUE(dec.GetVarint(&v).ok());
  EXPECT_EQ(v, GetParam());
  EXPECT_TRUE(dec.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull,
                                           16383ull, 16384ull,
                                           (1ull << 32) - 1, 1ull << 32,
                                           ~0ull));

TEST(Coding, VarintTruncated) {
  Encoder enc;
  enc.PutVarint(1ull << 40);
  Decoder dec(Slice(enc.buffer().data(), 2));
  uint64_t v;
  EXPECT_EQ(dec.GetVarint(&v).code(), StatusCode::kCorruption);
}

TEST(Slice, ComparesByContent) {
  std::string a = "abc", b = "abc", c = "abd";
  EXPECT_TRUE(Slice(a) == Slice(b));
  EXPECT_FALSE(Slice(a) == Slice(c));
  EXPECT_TRUE(Slice() == Slice());
}

TEST(Hash, DeterministicAndSpread) {
  EXPECT_EQ(Hash64("ode", 3), Hash64("ode", 3));
  EXPECT_NE(Hash64("ode", 3), Hash64("odf", 3));
  EXPECT_NE(MixU64(1), MixU64(2));
}

TEST(Random, DeterministicPerSeed) {
  Random a(1), b(1), c(2);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Random, UniformStaysInRange) {
  Random r(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
    int64_t v = r.Range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace ode
