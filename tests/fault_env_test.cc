// Fault-injection env tests: transparent pass-through, fail-Nth-op and
// transient faults, the I/O retry policy, crash emulation with
// DropUnsyncedData, the wedged-store rule, and WAL salvage mode.

#include "storage/fault_injection_env.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "storage/disk_storage_manager.h"
#include "storage/wal.h"

namespace ode {
namespace {

class FaultEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ode_fault_env_test.db";
    Cleanup();
    // The tests below provoke wedges, salvages, and exhausted retries on
    // purpose; keep the expected kWarn/kError spam out of the output.
    SetLogLevel(LogLevel::kSilence);
  }
  void TearDown() override {
    SetLogLevel(LogLevel::kWarn);
    Cleanup();
  }

  void Cleanup() {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }

  DiskStorageManager::Options WithEnv(FaultInjectionEnv* env,
                                      uint32_t retries = 0) {
    DiskStorageManager::Options opts;
    opts.env = env;
    opts.io_retry_attempts = retries;
    opts.io_retry_backoff_us = 1;  // keep tests fast
    return opts;
  }

  std::string path_;
};

TEST_F(FaultEnvTest, PassesThroughWhenNoFaultsArmed) {
  FaultInjectionEnv env;
  Oid oid;
  {
    DiskStorageManager store(path_, WithEnv(&env));
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.BeginTxn(1).ok());
    auto r = store.Allocate(1, Slice(std::string("hello")));
    ASSERT_TRUE(r.ok());
    oid = *r;
    ASSERT_TRUE(store.CommitTxn(1).ok());
    ASSERT_TRUE(store.Close().ok());
  }
  EXPECT_EQ(env.faults_injected(), 0u);
  EXPECT_GT(env.ops(), 0u) << "mutating ops must be counted";

  // The files the env wrote are ordinary files: a plain-env store reads
  // them back.
  DiskStorageManager store(path_);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.BeginTxn(2).ok());
  std::vector<char> out;
  ASSERT_TRUE(store.Read(2, oid, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "hello");
  ASSERT_TRUE(store.Close().ok());
}

TEST_F(FaultEnvTest, ReadsAreNotCountedAsOps) {
  FaultInjectionEnv env;
  DiskStorageManager store(path_, WithEnv(&env));
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.BeginTxn(1).ok());
  auto oid = store.Allocate(1, Slice(std::string("x")));
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(store.CommitTxn(1).ok());
  uint64_t before = env.ops();
  ASSERT_TRUE(store.BeginTxn(2).ok());
  std::vector<char> out;
  ASSERT_TRUE(store.Read(2, *oid, &out).ok());
  ASSERT_TRUE(store.CommitTxn(2).ok());  // read-only: no WAL batch
  EXPECT_EQ(env.ops(), before)
      << "reads and read-only commits must not advance the op counter";
  ASSERT_TRUE(store.Close().ok());
}

TEST_F(FaultEnvTest, TransientFaultFailsWithoutRetryPolicy) {
  FaultInjectionEnv env;
  DiskStorageManager store(path_, WithEnv(&env, /*retries=*/0));
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.BeginTxn(1).ok());
  ASSERT_TRUE(store.Allocate(1, Slice(std::string("doomed"))).ok());
  env.FailNextOps(1);
  Status st = store.CommitTxn(1);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(store.wedged()) << "a mid-commit failure must wedge the store";
  EXPECT_GE(env.faults_injected(), 1u);
}

TEST_F(FaultEnvTest, RetryPolicyAbsorbsTransientFaults) {
  FaultInjectionEnv env;
  MetricsRegistry registry;
  DiskStorageManager store(path_, WithEnv(&env, /*retries=*/3));
  store.BindMetrics(&registry);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.BeginTxn(1).ok());
  auto oid = store.Allocate(1, Slice(std::string("survives")));
  ASSERT_TRUE(oid.ok());
  env.FailNextOps(2);  // fewer than the retry budget of every op
  ASSERT_TRUE(store.CommitTxn(1).ok());
  EXPECT_FALSE(store.wedged());
  EXPECT_GE(registry.GetCounter("ode_io_retries_total")->value(), 2u);
  EXPECT_EQ(registry.GetCounter("ode_io_retry_exhausted_total")->value(), 0u);
  ASSERT_TRUE(store.Close().ok());

  DiskStorageManager reread(path_);
  ASSERT_TRUE(reread.Open().ok());
  ASSERT_TRUE(reread.BeginTxn(2).ok());
  std::vector<char> out;
  ASSERT_TRUE(reread.Read(2, *oid, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "survives");
  ASSERT_TRUE(reread.Close().ok());
}

TEST_F(FaultEnvTest, RetryExhaustionIsCountedAndFails) {
  FaultInjectionEnv env;
  MetricsRegistry registry;
  DiskStorageManager store(path_, WithEnv(&env, /*retries=*/2));
  store.BindMetrics(&registry);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.BeginTxn(1).ok());
  ASSERT_TRUE(store.Allocate(1, Slice(std::string("doomed"))).ok());
  env.FailNextOps(50);  // far beyond any one op's retry budget
  Status st = store.CommitTxn(1);
  EXPECT_FALSE(st.ok());
  EXPECT_GE(registry.GetCounter("ode_io_retry_exhausted_total")->value(), 1u);
  EXPECT_GE(registry.GetCounter("ode_io_retries_total")->value(), 2u);
}

TEST_F(FaultEnvTest, WedgedStoreRefusesWorkUntilReopen) {
  FaultInjectionEnv env;
  DiskStorageManager store(path_, WithEnv(&env));
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.BeginTxn(1).ok());
  auto committed = store.Allocate(1, Slice(std::string("pre-wedge")));
  ASSERT_TRUE(committed.ok());
  ASSERT_TRUE(store.CommitTxn(1).ok());

  ASSERT_TRUE(store.BeginTxn(2).ok());
  ASSERT_TRUE(store.Allocate(2, Slice(std::string("half"))).ok());
  env.FailNextOps(1);
  ASSERT_FALSE(store.CommitTxn(2).ok());
  ASSERT_TRUE(store.wedged());

  // Everything but abort is refused: pages and WAL may disagree.
  EXPECT_EQ(store.BeginTxn(3).code(), StatusCode::kIOError);
  std::vector<char> out;
  EXPECT_EQ(store.Read(3, *committed, &out).code(), StatusCode::kIOError);
  EXPECT_EQ(store.Checkpoint().code(), StatusCode::kIOError);
  EXPECT_TRUE(store.AbortTxn(2).ok()) << "aborts are in-memory, always legal";
  store.SimulateCrash();

  // Reopen on the same env: WAL recovery reconciles, txn 2 is gone.
  DiskStorageManager reopened(path_, WithEnv(&env));
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_FALSE(reopened.wedged());
  ASSERT_TRUE(reopened.BeginTxn(4).ok());
  ASSERT_TRUE(reopened.Read(4, *committed, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "pre-wedge");
  ASSERT_TRUE(reopened.Close().ok());
}

TEST_F(FaultEnvTest, CrashAtOpThenDropUnsyncedDataRecovers) {
  FaultInjectionEnv env;
  // Commit one durable txn, then crash at the first op of the second
  // commit and lose whatever was not fsynced.
  DiskStorageManager store(path_, WithEnv(&env));
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.BeginTxn(1).ok());
  auto keeper = store.Allocate(1, Slice(std::string("durable")));
  ASSERT_TRUE(keeper.ok());
  ASSERT_TRUE(store.CommitTxn(1).ok());

  ASSERT_TRUE(store.BeginTxn(2).ok());
  auto loser = store.Allocate(2, Slice(std::string("lost")));
  ASSERT_TRUE(loser.ok());
  env.SetCrashAtOp(env.ops() + 1);
  ASSERT_FALSE(store.CommitTxn(2).ok());
  ASSERT_TRUE(env.crashed());
  store.SimulateCrash();

  ASSERT_TRUE(env.DropUnsyncedData(/*seed=*/7).ok());
  env.ResetAfterCrash();

  DiskStorageManager recovered(path_, WithEnv(&env));
  ASSERT_TRUE(recovered.Open().ok());
  ASSERT_TRUE(recovered.BeginTxn(3).ok());
  std::vector<char> out;
  ASSERT_TRUE(recovered.Read(3, *keeper, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "durable");
  EXPECT_FALSE(recovered.Exists(3, *loser));
  ASSERT_TRUE(recovered.Close().ok());
}

TEST_F(FaultEnvTest, MidFileWalCorruptionEntersSalvageMode) {
  FaultInjectionEnv env;
  Oid checkpointed, walled;
  {
    DiskStorageManager store(path_, WithEnv(&env));
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.BeginTxn(1).ok());
    auto a = store.Allocate(1, Slice(std::string("in-pages")));
    ASSERT_TRUE(a.ok());
    checkpointed = *a;
    ASSERT_TRUE(store.CommitTxn(1).ok());
    ASSERT_TRUE(store.Checkpoint().ok());  // durable in pages, WAL empty
    ASSERT_TRUE(store.BeginTxn(2).ok());
    auto b = store.Allocate(2, Slice(std::string("in-wal-only")));
    ASSERT_TRUE(b.ok());
    walled = *b;
    ASSERT_TRUE(store.CommitTxn(2).ok());
    store.SimulateCrash();  // WAL still holds txn 2
  }
  // Flip a byte in the middle of the log. Txn 2's commit record is
  // intact after the damage, so this is corruption, not a torn tail.
  std::string wal_path = path_ + ".wal";
  std::FILE* f = std::fopen(wal_path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, size / 2, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  MetricsRegistry registry;
  DiskStorageManager store(path_, WithEnv(&env));
  store.BindMetrics(&registry);
  ASSERT_TRUE(store.Open().ok()) << "salvage mode still opens for reads";
  EXPECT_TRUE(store.salvage_mode());
  EXPECT_EQ(registry.GetGauge("ode_wal_salvage_mode")->value(), 1);

  // Reads of checkpointed state work; mutations and checkpoints do not.
  ASSERT_TRUE(store.BeginTxn(3).ok());
  std::vector<char> out;
  ASSERT_TRUE(store.Read(3, checkpointed, &out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "in-pages");
  EXPECT_FALSE(store.Exists(3, walled))
      << "the txn behind the corruption must not be half-replayed";
  EXPECT_EQ(store.Allocate(3, Slice(std::string("no"))).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(store.Checkpoint().code(), StatusCode::kCorruption)
      << "a checkpoint would truncate the only copy of the damaged log";
  ASSERT_TRUE(store.Close().ok());

  // The damaged log is untouched: a second open salvages identically.
  DiskStorageManager again(path_, WithEnv(&env));
  ASSERT_TRUE(again.Open().ok());
  EXPECT_TRUE(again.salvage_mode());
  ASSERT_TRUE(again.Close().ok());
}

TEST_F(FaultEnvTest, CrashBetweenWalSyncAndPageWrites) {
  FaultInjectionEnv env;
  Oid oid;
  {
    DiskStorageManager::Options opts = WithEnv(&env);
    opts.buffer_pool_pages = 2;  // force evictions (page writes) early
    DiskStorageManager store(path_, opts);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.BeginTxn(1).ok());
    auto r = store.Allocate(1, Slice(std::string(9000, 'p')));
    ASSERT_TRUE(r.ok());
    oid = *r;
    // The commit fsyncs the WAL batch, then applies to pages. Crash on
    // the sync boundary: the WAL record is durable, the pages are not.
    env.ArmCrashAfterNextSync();
    Status st = store.CommitTxn(1);
    // The commit record reached the disk, so whether CommitTxn managed
    // to return OK before the page writes failed is a wedge detail; the
    // recovery guarantee below is what matters.
    (void)st;
    store.SimulateCrash();
  }
  ASSERT_TRUE(env.DropUnsyncedData(/*seed=*/3).ok());
  env.ResetAfterCrash();

  DiskStorageManager recovered(path_, WithEnv(&env));
  ASSERT_TRUE(recovered.Open().ok());
  ASSERT_TRUE(recovered.BeginTxn(2).ok());
  std::vector<char> out;
  ASSERT_TRUE(recovered.Read(2, oid, &out).ok())
      << "txn 1's WAL batch was fsynced before the crash: it is committed";
  EXPECT_EQ(out.size(), 9000u);
  ASSERT_TRUE(recovered.Close().ok());
}

// Builds a store whose commit leader lingers until four committers have
// queued, so the four transactions below land in ONE group-commit batch
// and the armed fault strikes inside the batched WAL/fsync window.
TEST_F(FaultEnvTest, MidBatchTransientEioIsRetriedInvisibly) {
  FaultInjectionEnv env;
  MetricsRegistry registry;
  DiskStorageManager::Options opts = WithEnv(&env, /*retries=*/5);
  opts.commit_batch_max_txns = 4;
  opts.commit_batch_max_wait_us = 500000;  // plenty for 4 threads to queue
  DiskStorageManager store(path_, opts);
  store.BindMetrics(&registry);
  ASSERT_TRUE(store.Open().ok());
  std::array<Oid, 4> oids;
  for (TxnId t = 1; t <= 4; ++t) {
    ASSERT_TRUE(store.BeginTxn(t).ok());
    auto r = store.Allocate(t, Slice("member" + std::to_string(t)));
    ASSERT_TRUE(r.ok());
    oids[t - 1] = *r;
  }
  env.FailNextOps(2);  // transient: fewer than any one op's retry budget
  std::array<Status, 4> results;
  {
    std::vector<std::thread> committers;
    for (TxnId t = 1; t <= 4; ++t) {
      committers.emplace_back(
          [&store, &results, t] { results[t - 1] = store.CommitTxn(t); });
    }
    for (auto& th : committers) th.join();
  }
  for (TxnId t = 1; t <= 4; ++t) {
    EXPECT_TRUE(results[t - 1].ok()) << "txn " << t << ": "
                                     << results[t - 1].ToString();
  }
  EXPECT_FALSE(store.wedged());
  EXPECT_GE(registry.GetCounter("ode_io_retries_total")->value(), 2u);
  EXPECT_EQ(registry.GetCounter("ode_io_retry_exhausted_total")->value(), 0u);
  // Every commit either paid an fsync or rode one: regardless of how the
  // four split into batches, the identity fsyncs + saved == commits
  // holds — and the linger should make it one batch (saved == 3).
  const uint64_t fsyncs =
      registry.GetCounter("ode_commit_fsyncs_total")->value();
  const uint64_t saved =
      registry.GetCounter("ode_commit_fsyncs_saved_total")->value();
  EXPECT_EQ(fsyncs + saved, 4u);
  EXPECT_EQ(saved, 3u) << "the lingering leader should fold all 4 txns "
                          "into one batch";
  ASSERT_TRUE(store.Close().ok());

  DiskStorageManager reread(path_);
  ASSERT_TRUE(reread.Open().ok());
  ASSERT_TRUE(reread.BeginTxn(9).ok());
  for (const Oid& oid : oids) {
    std::vector<char> out;
    EXPECT_TRUE(reread.Read(9, oid, &out).ok());
  }
  ASSERT_TRUE(reread.Close().ok());
}

TEST_F(FaultEnvTest, MidBatchHardFailureWedgesTheWholeGroup) {
  FaultInjectionEnv env;
  DiskStorageManager::Options opts = WithEnv(&env, /*retries=*/0);
  opts.commit_batch_max_txns = 4;
  opts.commit_batch_max_wait_us = 500000;
  DiskStorageManager store(path_, opts);
  ASSERT_TRUE(store.Open().ok());
  for (TxnId t = 1; t <= 4; ++t) {
    ASSERT_TRUE(store.BeginTxn(t).ok());
    ASSERT_TRUE(store.Allocate(t, Slice("doomed" + std::to_string(t))).ok());
  }
  env.FailNextOps(1);  // no retry budget: the batch's first append dies
  std::array<Status, 4> results;
  {
    std::vector<std::thread> committers;
    for (TxnId t = 1; t <= 4; ++t) {
      committers.emplace_back(
          [&store, &results, t] { results[t - 1] = store.CommitTxn(t); });
    }
    for (auto& th : committers) th.join();
  }
  // One I/O failure inside the batch fails every member: followers must
  // never be acked ahead of a durable kCommit, and the store wedges for
  // the whole group exactly as for a solo commit.
  for (TxnId t = 1; t <= 4; ++t) {
    EXPECT_EQ(results[t - 1].code(), StatusCode::kIOError) << "txn " << t;
  }
  EXPECT_TRUE(store.wedged());
  EXPECT_GE(env.faults_injected(), 1u);
  for (TxnId t = 1; t <= 4; ++t) {
    EXPECT_TRUE(store.AbortTxn(t).ok());
  }

  // Reopen: recovery finds no durable kCommit for any member.
  store.SimulateCrash();
  DiskStorageManager reopened(path_, WithEnv(&env));
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_FALSE(reopened.wedged());
  EXPECT_EQ(reopened.stats().objects, 0u);
  ASSERT_TRUE(reopened.Close().ok());
}

TEST_F(FaultEnvTest, RetryIoBacksOffAndGivesUp) {
  // Unit-level check of the policy itself, no store involved.
  MetricsRegistry registry;
  IoRetryPolicy policy;
  policy.env = Env::Default();
  policy.attempts = 3;
  policy.backoff_us = 1;
  policy.retries = registry.GetCounter("retries");
  policy.exhausted = registry.GetCounter("exhausted");

  int calls = 0;
  Status st = RetryIo(&policy, "flaky", [&] {
    return ++calls < 3 ? Status::IOError("transient") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(policy.retries->value(), 2u);
  EXPECT_EQ(policy.exhausted->value(), 0u);

  calls = 0;
  st = RetryIo(&policy, "dead", [&] {
    ++calls;
    return Status::IOError("permanent");
  });
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 4) << "first try + 3 retries";
  EXPECT_EQ(policy.exhausted->value(), 1u);

  // Non-transient errors are never retried.
  calls = 0;
  st = RetryIo(&policy, "corrupt", [&] {
    ++calls;
    return Status::Corruption("bad bits");
  });
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace ode
