// Design goal 5 (§3): "Adding (deleting) triggers to (from) a class or
// modifying an existing trigger definition should not change the
// persistent object storage layout. Otherwise, such changes will require
// data conversion."
//
// Because trigger state lives outside the objects (§5.1.3), a database
// written under one schema version stays readable under another that
// adds events and triggers to the same class.

#include <gtest/gtest.h>

#include <cstdio>

#include "odepp/session.h"

namespace ode {
namespace {

struct Meter {
  int64_t value = 0;
  int64_t fires = 0;

  void Bump(int64_t by) { value += by; }

  void Encode(Encoder& enc) const {
    enc.PutI64(value);
    enc.PutI64(fires);
  }
  static Result<Meter> Decode(Decoder& dec) {
    Meter m;
    ODE_RETURN_NOT_OK(dec.GetI64(&m.value));
    ODE_RETURN_NOT_OK(dec.GetI64(&m.fires));
    return m;
  }
};

void DeclareV1(Schema* schema) {
  // Version 1: no events, no triggers at all.
  schema->DeclareClass<Meter>("Meter").Method("Bump", &Meter::Bump);
}

void DeclareV2(Schema* schema) {
  // Version 2: the same class now has an event and a trigger.
  schema->DeclareClass<Meter>("Meter")
      .Event("after Bump")
      .Method("Bump", &Meter::Bump)
      .Trigger("OnBump", "after Bump",
               [](Meter& m, TriggerFireContext&) -> Status {
                 ++m.fires;
                 return Status::OK();
               },
               CouplingMode::kImmediate, true);
}

TEST(SchemaEvolution, AddingTriggersNeedsNoDataConversion) {
  std::string path = ::testing::TempDir() + "/ode_evolution.db";
  std::remove(path.c_str());

  PRef<Meter> meter;
  {
    Schema v1;
    DeclareV1(&v1);
    ASSERT_TRUE(v1.Freeze().ok());
    auto session = Session::Open(StorageKind::kMainMemory, path, &v1);
    ASSERT_TRUE(session.ok());
    Status st = (*session)->WithTransaction([&](Transaction* txn) -> Status {
      Meter m;
      m.value = 7;
      auto r = (*session)->New(txn, m);
      ODE_RETURN_NOT_OK(r.status());
      meter = *r;
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    ASSERT_TRUE((*session)->Close().ok());
  }
  {
    // Reopen under v2: the old object is readable unchanged, and the new
    // trigger can be activated on it immediately.
    Schema v2;
    DeclareV2(&v2);
    ASSERT_TRUE(v2.Freeze().ok());
    auto session = Session::Open(StorageKind::kMainMemory, path, &v2);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    Session& s = **session;
    Status st = s.WithTransaction([&](Transaction* txn) -> Status {
      auto m = s.Load(txn, meter);
      ODE_RETURN_NOT_OK(m.status());
      EXPECT_EQ(m->value, 7) << "v1 object readable under v2 unchanged";
      return s.Activate(txn, meter, "OnBump").status();
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
    st = s.WithTransaction([&](Transaction* txn) -> Status {
      return s.Invoke(txn, meter, &Meter::Bump, int64_t{3});
    });
    ASSERT_TRUE(st.ok());
    st = s.WithTransaction([&](Transaction* txn) -> Status {
      auto m = s.Load(txn, meter);
      ODE_RETURN_NOT_OK(m.status());
      EXPECT_EQ(m->value, 10);
      EXPECT_EQ(m->fires, 1) << "new trigger fires on the old object";
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    ASSERT_TRUE(s.Close().ok());
  }
  std::remove(path.c_str());
}

TEST(SchemaEvolution, DowngradeStillReadsObjects) {
  // Removing triggers likewise leaves object layout untouched: a
  // database written under v2 (with trigger activity) reads fine under
  // v1, as long as no v2 trigger activations are left behind.
  std::string path = ::testing::TempDir() + "/ode_evolution_down.db";
  std::remove(path.c_str());

  PRef<Meter> meter;
  {
    Schema v2;
    DeclareV2(&v2);
    ASSERT_TRUE(v2.Freeze().ok());
    auto session = Session::Open(StorageKind::kMainMemory, path, &v2);
    ASSERT_TRUE(session.ok());
    Session& s = **session;
    Status st = s.WithTransaction([&](Transaction* txn) -> Status {
      auto r = s.New(txn, Meter{});
      ODE_RETURN_NOT_OK(r.status());
      meter = *r;
      auto id = s.Activate(txn, meter, "OnBump");
      ODE_RETURN_NOT_OK(id.status());
      ODE_RETURN_NOT_OK(s.Invoke(txn, meter, &Meter::Bump, int64_t{1}));
      // Deactivate before downgrading (live activations of removed
      // triggers would dangle).
      return s.Deactivate(txn, *id);
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_TRUE(s.Close().ok());
  }
  {
    Schema v1;
    DeclareV1(&v1);
    ASSERT_TRUE(v1.Freeze().ok());
    auto session = Session::Open(StorageKind::kMainMemory, path, &v1);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    Session& s = **session;
    Status st = s.WithTransaction([&](Transaction* txn) -> Status {
      auto m = s.Load(txn, meter);
      ODE_RETURN_NOT_OK(m.status());
      EXPECT_EQ(m->value, 1);
      EXPECT_EQ(m->fires, 1);
      return s.Invoke(txn, meter, &Meter::Bump, int64_t{5});
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_TRUE(s.Close().ok());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ode
