// Robustness fuzzing: random and adversarial bytes fed to every decoder
// and to the event-expression parser must produce clean errors, never
// crashes or hangs.

#include <gtest/gtest.h>

#include <cstdio>

#include "common/coding.h"
#include "common/random.h"
#include "events/event_parser.h"
#include "storage/disk_storage_manager.h"
#include "storage/mm_storage_manager.h"
#include "trigger/trigger_state.h"

namespace ode {
namespace {

std::string RandomBytes(Random& rng, size_t max_len) {
  std::string out(rng.Uniform(max_len + 1), '\0');
  for (char& c : out) c = static_cast<char>(rng.Uniform(256));
  return out;
}

TEST(Fuzz, ParserNeverCrashes) {
  Random rng(0xf00d);
  const std::string charset = "abc ,|&*+?(){}^0123456789_relativeanyXY";
  for (int i = 0; i < 5000; ++i) {
    std::string text(rng.Uniform(40), ' ');
    for (char& c : text) c = charset[rng.Uniform(charset.size())];
    auto parsed = ParseEventExpr(text);
    if (parsed.ok()) {
      // Whatever parses must round-trip.
      auto again = ParseEventExpr(ToString(parsed->expr));
      ASSERT_TRUE(again.ok()) << text << " -> " << ToString(parsed->expr);
      EXPECT_TRUE(ExprEquals(parsed->expr, again->expr)) << text;
    } else {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError) << text;
    }
  }
}

TEST(Fuzz, ParserHandlesArbitraryBytes) {
  Random rng(0xfeed);
  for (int i = 0; i < 2000; ++i) {
    std::string text = RandomBytes(rng, 60);
    auto parsed = ParseEventExpr(text);
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
    }
  }
}

TEST(Fuzz, DecoderRejectsGarbage) {
  Random rng(0xdead);
  for (int i = 0; i < 2000; ++i) {
    std::string bytes = RandomBytes(rng, 64);
    Decoder dec{Slice(bytes)};  // braces: avoid the most vexing parse
    // Exercise a mix of getters; all must return rather than crash.
    std::string s;
    uint64_t v;
    std::vector<char> blob;
    (void)dec.GetVarint(&v);
    (void)dec.GetString(&s);
    (void)dec.GetU64(&v);
    (void)dec.GetBytes(&blob);
  }
}

TEST(Fuzz, TriggerStateDecodeRejectsGarbage) {
  Random rng(0xbead);
  for (int i = 0; i < 2000; ++i) {
    std::string bytes = RandomBytes(rng, 80);
    auto state = TriggerState::Decode(Slice(bytes));
    if (!state.ok()) {
      EXPECT_EQ(state.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(Fuzz, TruncatedTriggerStatesAllFail) {
  TriggerState state;
  state.triggernum = 3;
  state.trigobj = Oid(42);
  state.statenum = 7;
  state.trigobjtype = 1;
  state.params = {1, 2, 3};
  state.anchors = {Oid(42), Oid(43)};
  std::vector<char> bytes = state.Encode();
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto decoded = TriggerState::Decode(Slice(bytes.data(), len));
    EXPECT_FALSE(decoded.ok()) << "prefix of length " << len;
  }
  EXPECT_TRUE(TriggerState::Decode(Slice(bytes)).ok());
}

TEST(Fuzz, OpeningForeignFilesFailsCleanly) {
  std::string path = ::testing::TempDir() + "/ode_fuzz_foreign.db";
  Random rng(0xcafe);
  for (int trial = 0; trial < 10; ++trial) {
    // A file that is definitely not ours (random bytes, random length,
    // including page-sized ones so header parsing is reached).
    std::string junk =
        RandomBytes(rng, trial % 2 == 0 ? 64 : 8192);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);

    {
      MMStorageManager mm(path);
      Status st = mm.Open();
      EXPECT_FALSE(st.ok()) << "trial " << trial;
      if (st.ok()) {
        ASSERT_TRUE(mm.Close().ok());
      }
    }
    if (junk.size() >= kPageSize) {
      DiskStorageManager disk(path);
      Status st = disk.Open();
      EXPECT_FALSE(st.ok()) << "trial " << trial;
      if (st.ok()) {
        ASSERT_TRUE(disk.Close().ok());
      }
      std::remove((path + ".wal").c_str());
    }
  }
  std::remove(path.c_str());
}

// A page whose slot directory is arbitrary garbage must either fail
// ValidateStructure with kCorruption or be fully traversable with no
// out-of-bounds access — validation is the only gate between raw disk
// bytes and the record accessors. Run under ASan (run_checks.sh) this
// is an OOB hunt, not just an API check.
TEST(Fuzz, PageValidationGatesGarbageDirectories) {
  Random rng(0xbadd);
  for (int trial = 0; trial < 3000; ++trial) {
    Page page;
    if (trial % 3 == 0) {
      // Whole-page garbage.
      std::string junk = RandomBytes(rng, kPageSize);
      junk.resize(kPageSize, '\0');
      page.Load(junk.data());
    } else {
      // A well-formed page with a scrambled slot directory and header —
      // the adversarial shape: plausible counts, hostile offsets.
      page.Format(static_cast<uint32_t>(rng.Uniform(1000)));
      for (int i = 0; i < 20; ++i) {
        std::string data(rng.Uniform(300), 'f');
        if (!page.Insert(i, Slice(data)).ok()) break;
      }
      int scrambles = 1 + static_cast<int>(rng.Uniform(6));
      for (int i = 0; i < scrambles; ++i) {
        size_t off = rng.Bernoulli(0.5)
                         ? rng.Uniform(kPageHeaderSize)
                         : kPageSize - 1 - rng.Uniform(100);
        page.mutable_data()[off] =
            static_cast<char>(rng.Uniform(256));
      }
    }
    Status st = page.ValidateStructure();
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kCorruption);
      continue;
    }
    // Validated: every accessor must stay in bounds for every slot.
    page.ForEach([&](uint16_t, uint64_t, Slice payload) {
      char acc = 0;
      for (size_t i = 0; i < payload.size(); ++i) {
        acc = static_cast<char>(acc ^ payload[i]);
      }
      volatile char sink = acc;  // force the reads; ASan watches them
      (void)sink;
    });
    for (uint32_t slot = 0; slot < page.slot_count(); ++slot) {
      uint64_t oid;
      std::vector<char> payload;
      (void)page.Read(static_cast<uint16_t>(slot), &oid, &payload);
    }
  }
}

}  // namespace
}  // namespace ode
