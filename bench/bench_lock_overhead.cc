// Experiment E5 (§6): "triggers turn read access into write access,
// increasing both the amount of time the transactions spend waiting for
// locks and the likelihood of deadlock."
//
// Threads repeatedly invoke a *const* method on a shared object in short
// transactions. Without triggers, every access takes only shared locks
// and the threads proceed in parallel. With an active trigger, each
// posting must advance the persistent TriggerState under an exclusive
// lock, serializing the "readers". The lock manager's conflict counter
// quantifies the waiting the paper describes.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace ode {
namespace bench {
namespace {

struct Probe {
  int64_t hits = 0;
  void Peek() const {}
  void Encode(Encoder& enc) const { enc.PutI64(hits); }
  static Result<Probe> Decode(Decoder& dec) {
    Probe p;
    ODE_RETURN_NOT_OK(dec.GetI64(&p.hits));
    return p;
  }
};

/// Harness with a const (read-only) method whose `after Peek` event is
/// declared, plus optionally one active trigger on it.
struct PeekHarness {
  explicit PeekHarness(bool with_trigger) {
    auto def = schema.DeclareClass<Probe>("Probe");
    def.Event("after Peek").Method("Peek", &Probe::Peek);
    def.Trigger("Watch", "after Peek",
                [](Probe&, TriggerFireContext&) -> Status {
                  return Status::OK();
                },
                CouplingMode::kImmediate, /*perpetual=*/true);
    BENCH_CHECK_OK(schema.Freeze());
    Session::Options options;
    options.auto_cluster = false;
    auto s = Session::Open(StorageKind::kMainMemory, "", &schema, options);
    BENCH_CHECK_OK(s.status());
    session = std::move(s).value();
    BENCH_CHECK_OK(session->WithTransaction([&](Transaction* txn) -> Status {
      auto r = session->New(txn, Probe{});
      ODE_RETURN_NOT_OK(r.status());
      probe = *r;
      if (with_trigger) {
        ODE_RETURN_NOT_OK(session->Activate(txn, probe, "Watch").status());
      }
      return Status::OK();
    }));
  }

  Schema schema;
  std::unique_ptr<Session> session;
  PRef<Probe> probe;
};

// Thread-safe, leak-on-exit singletons (all benchmark threads race to
// the first use; function-local static init serializes them).
PeekHarness& NoTriggerHarness() {
  static PeekHarness& h = *new PeekHarness(false);
  return h;
}
PeekHarness& WithTriggerHarness() {
  static PeekHarness& h = *new PeekHarness(true);
  return h;
}

void RunReaders(benchmark::State& state, PeekHarness* h) {
  uint64_t conflicts_before = 0;
  if (state.thread_index() == 0) {
    conflicts_before = h->session->db()->locks()->conflicts();
  }
  for (auto _ : state) {
    Status st = h->session->WithTransaction([&](Transaction* txn) {
      return h->session->Invoke(txn, h->probe, &Probe::Peek);
    });
    // Deadlocks/timeouts count as retried work, not fatal.
    if (!st.ok() && !st.IsDeadlock() &&
        st.code() != StatusCode::kLockTimeout) {
      BENCH_CHECK_OK(st);
    }
  }
  if (state.thread_index() == 0) {
    state.counters["lock_conflicts"] = static_cast<double>(
        h->session->db()->locks()->conflicts() - conflicts_before);
    state.counters["deadlocks"] =
        static_cast<double>(h->session->db()->locks()->deadlocks());
  }
}

void BM_ConcurrentReads_NoTrigger(benchmark::State& state) {
  RunReaders(state, &NoTriggerHarness());
}
BENCHMARK(BM_ConcurrentReads_NoTrigger)->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime();

void BM_ConcurrentReads_WithTrigger(benchmark::State& state) {
  RunReaders(state, &WithTriggerHarness());
}
BENCHMARK(BM_ConcurrentReads_WithTrigger)->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
