// Experiment E4 (§4.2, §5.5): cost of the four ECA coupling modes.
//
// Each iteration is a full transaction (begin, one triggering Invoke,
// commit). `immediate` runs the action inline; `end` queues it for
// commit processing; `dependent` and `!dependent` spawn a system
// transaction after commit — the paper's architecture makes that an
// entire extra transaction, which is the dominant cost.

#include "bench_common.h"

namespace ode {
namespace bench {
namespace {

void RunTxnPerIteration(benchmark::State& state, CounterHarness& h) {
  for (auto _ : state) {
    BENCH_CHECK_OK(h.session->WithTransaction([&](Transaction* txn) {
      return h.session->Invoke(txn, h.counter, &Counter::Hit);
    }));
  }
  state.counters["fires"] =
      static_cast<double>(h.session->triggers()->stats().fires.load());
  state.counters["txn_commits"] =
      static_cast<double>(h.session->db()->txns()->commits());
}

void BM_TxnNoTrigger(benchmark::State& state) {
  CounterHarness h(/*declared=*/1, /*active=*/0);
  RunTxnPerIteration(state, h);
}
BENCHMARK(BM_TxnNoTrigger);

void BM_TxnImmediate(benchmark::State& state) {
  CounterHarness h(1, 1, "after Hit", CouplingMode::kImmediate);
  RunTxnPerIteration(state, h);
}
BENCHMARK(BM_TxnImmediate);

void BM_TxnDeferred(benchmark::State& state) {
  CounterHarness h(1, 1, "after Hit", CouplingMode::kDeferred);
  RunTxnPerIteration(state, h);
}
BENCHMARK(BM_TxnDeferred);

void BM_TxnDependent(benchmark::State& state) {
  CounterHarness h(1, 1, "after Hit", CouplingMode::kDependent);
  RunTxnPerIteration(state, h);
}
BENCHMARK(BM_TxnDependent);

void BM_TxnIndependent(benchmark::State& state) {
  CounterHarness h(1, 1, "after Hit", CouplingMode::kIndependent);
  RunTxnPerIteration(state, h);
}
BENCHMARK(BM_TxnIndependent);

/// An aborting transaction with a queued !dependent action still runs a
/// system transaction (§5.5) — measure the abort path.
void BM_TxnAbortWithIndependent(benchmark::State& state) {
  CounterHarness h(1, 1, "after Hit", CouplingMode::kIndependent);
  for (auto _ : state) {
    auto txn = h.session->Begin();
    BENCH_CHECK_OK(txn.status());
    BENCH_CHECK_OK(h.session->Invoke(*txn, h.counter, &Counter::Hit));
    BENCH_CHECK_OK(h.session->Abort(*txn));
  }
}
BENCHMARK(BM_TxnAbortWithIndependent);

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
