// Experiment E9: commit throughput under concurrency — what does group
// commit buy? Multi-threaded committers drive DiskStorageManager::
// CommitTxn directly (one small object write per transaction), sweeping
//
//   * group commit on/off  (off = the pre-batching serialized path:
//     every committer appends and fsyncs alone), and
//   * sync_commits on/off  (off isolates the WAL-append/lock cost from
//     the fsync cost).
//
// The headline numbers are items_per_second (committed txns/sec) at 8
// threads with sync on, group on vs off, plus fsyncs_per_commit — with
// batching it must drop well below 1 at that concurrency.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/tracing.h"
#include "storage/disk_storage_manager.h"

namespace ode {
namespace bench {
namespace {

constexpr char kPath[] = "/tmp/ode_bench_commit.db";

void RemoveFiles() {
  std::remove(kPath);
  std::remove((std::string(kPath) + ".wal").c_str());
}

// Shared across the benchmark's threads; (re)built by thread 0, which
// google-benchmark synchronizes with the worker threads at the measured
// loop's boundaries.
std::unique_ptr<DiskStorageManager> g_store;
std::unique_ptr<MetricsRegistry> g_registry;
std::atomic<uint64_t> g_next_txn{1};

void BM_CommitThroughput(benchmark::State& state) {
  const bool group = state.range(0) != 0;
  const bool sync = state.range(1) != 0;
  if (state.thread_index() == 0) {
    SetLogLevel(LogLevel::kSilence);  // the sync=0 configs warn on open
    RemoveFiles();
    DiskStorageManager::Options options;
    options.group_commit = group;
    options.sync_commits = sync;
    g_registry = std::make_unique<MetricsRegistry>();
    g_store = std::make_unique<DiskStorageManager>(kPath, options);
    g_store->BindMetrics(g_registry.get());
    BENCH_CHECK_OK(g_store->Open());
    g_next_txn.store(1);
  }

  const std::string payload(64, 'x');
  for (auto _ : state) {
    TxnId txn = g_next_txn.fetch_add(1);
    BENCH_CHECK_OK(g_store->BeginTxn(txn));
    auto oid = g_store->Allocate(txn, Slice(payload));
    BENCH_CHECK_OK(oid.status());
    BENCH_CHECK_OK(g_store->CommitTxn(txn));
  }
  state.SetItemsProcessed(state.iterations());

  if (state.thread_index() == 0) {
    const uint64_t commits = g_next_txn.load() - 1;
    MetricsSnapshot snap = g_registry->Snapshot();
    const double fsyncs =
        static_cast<double>(snap.CounterValue("ode_commit_fsyncs_total"));
    const double saved = static_cast<double>(
        snap.CounterValue("ode_commit_fsyncs_saved_total"));
    state.counters["fsyncs_per_commit"] =
        commits == 0 ? 0.0 : fsyncs / static_cast<double>(commits);
    state.counters["fsyncs_saved_total"] = saved;
    HistogramData batch =
        snap.HistogramValue("ode_group_commit_batch_size");
    if (batch.count > 0) {
      state.counters["batch_size_p50"] = batch.Percentile(50);
      state.counters["batch_size_max"] = static_cast<double>(batch.max);
    }
    HistogramData fsync_lat =
        snap.HistogramValue("ode_wal_fsync_latency_ns");
    if (fsync_lat.count > 0) {
      state.counters["fsync_latency_p50_ns"] = fsync_lat.Percentile(50);
    }
    BENCH_CHECK_OK(g_store->Close());
    g_store.reset();
    g_registry.reset();
    RemoveFiles();
  }
}
BENCHMARK(BM_CommitThroughput)
    ->ArgNames({"group", "sync"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

/// Measures the single-threaded commit pipeline (WAL append + apply +
/// ack; sync off, so the fsync does not drown the CPU cost being gated)
/// with the span tracer disabled vs at its default 1-in-32 sampling,
/// and embeds the delta as `tracing_overhead_pct` context in
/// BENCH_commit.json. run_bench.sh fails if the key goes missing; the
/// acceptance gate is <= 5% at default sampling. The two stores run
/// interleaved rounds so file-system and clock drift hit both sides
/// equally instead of biasing whichever ran second.
struct TracedCommitRig {
  explicit TracedCommitRig(bool tracing)
      : path(std::string(kPath) + (tracing ? ".cal_on" : ".cal_off")) {
    Remove();
    Tracer::Options topts;
    if (!tracing) topts.span_capacity = 0;
    tracer = std::make_unique<Tracer>(topts);
    DiskStorageManager::Options options;
    options.sync_commits = false;
    store = std::make_unique<DiskStorageManager>(path, options);
    store->BindTracer(tracer.get());
    BENCH_CHECK_OK(store->Open());
  }
  ~TracedCommitRig() {
    BENCH_CHECK_OK(store->Close());
    store.reset();
    Remove();
  }
  void Remove() {
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
  }
  double RoundNs(int txns) {
    const std::string payload(64, 'x');
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < txns; ++t) {
      TxnId txn = next++;
      BENCH_CHECK_OK(store->BeginTxn(txn));
      auto oid = store->Allocate(txn, Slice(payload));
      BENCH_CHECK_OK(oid.status());
      BENCH_CHECK_OK(store->CommitTxn(txn));
    }
    const auto end = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
  }

  std::string path;
  std::unique_ptr<Tracer> tracer;
  std::unique_ptr<DiskStorageManager> store;
  TxnId next = 1;
};

void EmbedTracingOverheadContext() {
  SetLogLevel(LogLevel::kSilence);  // sync=0 opens warn
  constexpr int kRounds = 32;
  constexpr int kTxnsPerRound = 256;
  auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return (v.size() % 2) != 0
               ? v[v.size() / 2]
               : 0.5 * (v[v.size() / 2 - 1] + v[v.size() / 2]);
  };
  std::vector<double> off_ns, on_ns, ratios;
  {
    TracedCommitRig off_rig(false);
    TracedCommitRig on_rig(true);
    off_rig.RoundNs(256);  // warmup
    on_rig.RoundNs(256);
    for (int r = 0; r < kRounds; ++r) {
      // Each pair of rounds is time-adjacent, so its on/off ratio
      // cancels the slow drift (writeback, frequency) that swamps the
      // real delta in absolute commit times. Alternate which side goes
      // first so second-in-pair costs hit both sides equally, and take
      // the median ratio — single writeback stalls land in one round
      // and would otherwise swing a mean.
      double o, n;
      if (r % 2 == 0) {
        o = off_rig.RoundNs(kTxnsPerRound);
        n = on_rig.RoundNs(kTxnsPerRound);
      } else {
        n = on_rig.RoundNs(kTxnsPerRound);
        o = off_rig.RoundNs(kTxnsPerRound);
      }
      off_ns.push_back(o);
      on_ns.push_back(n);
      if (o > 0) ratios.push_back(n / o);
    }
  }
  const double off = median(off_ns) / kTxnsPerRound;
  const double on = median(on_ns) / kTxnsPerRound;
  const double pct = ratios.empty() ? 0.0 : (median(ratios) - 1.0) * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", pct);
  benchmark::AddCustomContext("tracing_off_ns_per_commit",
                              std::to_string(off));
  benchmark::AddCustomContext("tracing_on_ns_per_commit",
                              std::to_string(on));
  benchmark::AddCustomContext("tracing_overhead_pct", buf);
}

/// Same interleaved-rounds rig, but sweeping page checksums instead of
/// tracing: verify_page_checksums off vs on (the default). CRC32C is
/// stamped when a frame is written back and verified when a page is
/// (re)read from the medium, so the rig runs a deliberately small
/// buffer pool: the allocate stream continuously evicts, making every
/// round pay the stamp on write-back — with sync off, close to the
/// worst case per commit. run_bench.sh gates the embedded
/// `checksum_overhead_pct` at <= 5%.
struct ChecksumCommitRig {
  explicit ChecksumCommitRig(bool verify)
      : path(std::string(kPath) + (verify ? ".ck_on" : ".ck_off")) {
    Remove();
    DiskStorageManager::Options options;
    options.sync_commits = false;
    options.buffer_pool_pages = 32;
    options.verify_page_checksums = verify;
    store = std::make_unique<DiskStorageManager>(path, options);
    BENCH_CHECK_OK(store->Open());
  }
  ~ChecksumCommitRig() {
    BENCH_CHECK_OK(store->Close());
    store.reset();
    Remove();
  }
  void Remove() {
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
  }
  double RoundNs(int txns) {
    const std::string payload(64, 'x');
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < txns; ++t) {
      TxnId txn = next++;
      BENCH_CHECK_OK(store->BeginTxn(txn));
      auto oid = store->Allocate(txn, Slice(payload));
      BENCH_CHECK_OK(oid.status());
      BENCH_CHECK_OK(store->CommitTxn(txn));
    }
    const auto end = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
  }

  std::string path;
  std::unique_ptr<DiskStorageManager> store;
  TxnId next = 1;
};

void EmbedChecksumOverheadContext() {
  SetLogLevel(LogLevel::kSilence);
  constexpr int kRounds = 32;
  constexpr int kTxnsPerRound = 256;
  auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return (v.size() % 2) != 0
               ? v[v.size() / 2]
               : 0.5 * (v[v.size() / 2 - 1] + v[v.size() / 2]);
  };
  std::vector<double> off_ns, on_ns, ratios;
  {
    ChecksumCommitRig off_rig(false);
    ChecksumCommitRig on_rig(true);
    off_rig.RoundNs(256);  // warmup
    on_rig.RoundNs(256);
    for (int r = 0; r < kRounds; ++r) {
      double o, n;
      if (r % 2 == 0) {
        o = off_rig.RoundNs(kTxnsPerRound);
        n = on_rig.RoundNs(kTxnsPerRound);
      } else {
        n = on_rig.RoundNs(kTxnsPerRound);
        o = off_rig.RoundNs(kTxnsPerRound);
      }
      off_ns.push_back(o);
      on_ns.push_back(n);
      if (o > 0) ratios.push_back(n / o);
    }
  }
  const double off = median(off_ns) / kTxnsPerRound;
  const double on = median(on_ns) / kTxnsPerRound;
  const double pct = ratios.empty() ? 0.0 : (median(ratios) - 1.0) * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", pct);
  benchmark::AddCustomContext("checksum_off_ns_per_commit",
                              std::to_string(off));
  benchmark::AddCustomContext("checksum_on_ns_per_commit",
                              std::to_string(on));
  benchmark::AddCustomContext("checksum_overhead_pct", buf);
}

}  // namespace
}  // namespace bench
}  // namespace ode

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ode::bench::EmbedTracingOverheadContext();
  ode::bench::EmbedChecksumOverheadContext();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
