// Experiment E9: commit throughput under concurrency — what does group
// commit buy? Multi-threaded committers drive DiskStorageManager::
// CommitTxn directly (one small object write per transaction), sweeping
//
//   * group commit on/off  (off = the pre-batching serialized path:
//     every committer appends and fsyncs alone), and
//   * sync_commits on/off  (off isolates the WAL-append/lock cost from
//     the fsync cost).
//
// The headline numbers are items_per_second (committed txns/sec) at 8
// threads with sync on, group on vs off, plus fsyncs_per_commit — with
// batching it must drop well below 1 at that concurrency.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "storage/disk_storage_manager.h"

namespace ode {
namespace bench {
namespace {

constexpr char kPath[] = "/tmp/ode_bench_commit.db";

void RemoveFiles() {
  std::remove(kPath);
  std::remove((std::string(kPath) + ".wal").c_str());
}

// Shared across the benchmark's threads; (re)built by thread 0, which
// google-benchmark synchronizes with the worker threads at the measured
// loop's boundaries.
std::unique_ptr<DiskStorageManager> g_store;
std::unique_ptr<MetricsRegistry> g_registry;
std::atomic<uint64_t> g_next_txn{1};

void BM_CommitThroughput(benchmark::State& state) {
  const bool group = state.range(0) != 0;
  const bool sync = state.range(1) != 0;
  if (state.thread_index() == 0) {
    SetLogLevel(LogLevel::kSilence);  // the sync=0 configs warn on open
    RemoveFiles();
    DiskStorageManager::Options options;
    options.group_commit = group;
    options.sync_commits = sync;
    g_registry = std::make_unique<MetricsRegistry>();
    g_store = std::make_unique<DiskStorageManager>(kPath, options);
    g_store->BindMetrics(g_registry.get());
    BENCH_CHECK_OK(g_store->Open());
    g_next_txn.store(1);
  }

  const std::string payload(64, 'x');
  for (auto _ : state) {
    TxnId txn = g_next_txn.fetch_add(1);
    BENCH_CHECK_OK(g_store->BeginTxn(txn));
    auto oid = g_store->Allocate(txn, Slice(payload));
    BENCH_CHECK_OK(oid.status());
    BENCH_CHECK_OK(g_store->CommitTxn(txn));
  }
  state.SetItemsProcessed(state.iterations());

  if (state.thread_index() == 0) {
    const uint64_t commits = g_next_txn.load() - 1;
    MetricsSnapshot snap = g_registry->Snapshot();
    const double fsyncs =
        static_cast<double>(snap.CounterValue("ode_commit_fsyncs_total"));
    const double saved = static_cast<double>(
        snap.CounterValue("ode_commit_fsyncs_saved_total"));
    state.counters["fsyncs_per_commit"] =
        commits == 0 ? 0.0 : fsyncs / static_cast<double>(commits);
    state.counters["fsyncs_saved_total"] = saved;
    HistogramData batch =
        snap.HistogramValue("ode_group_commit_batch_size");
    if (batch.count > 0) {
      state.counters["batch_size_p50"] = batch.Percentile(50);
      state.counters["batch_size_max"] = static_cast<double>(batch.max);
    }
    HistogramData fsync_lat =
        snap.HistogramValue("ode_wal_fsync_latency_ns");
    if (fsync_lat.count > 0) {
      state.counters["fsync_latency_p50_ns"] = fsync_lat.Percentile(50);
    }
    BENCH_CHECK_OK(g_store->Close());
    g_store.reset();
    g_registry.reset();
    RemoveFiles();
  }
}
BENCHMARK(BM_CommitThroughput)
    ->ArgNames({"group", "sync"})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 0})
    ->Args({1, 0})
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
