// Experiment E2 (§7, Ode vs Sentinel): event representation cost.
//
// "Ode's mapping of basic events to globally unique integers is likely to
// have significantly lower event posting overhead than Sentinel's method
// of representing an event as a triple of strings: the class name, the
// member function prototype, and the string 'begin' or 'end'."
//
// Ode's wrapper passes a pre-interned integer (CredCardEvents[1]); the
// event-identification cost at posting time is essentially zero, and the
// FSM consumes the integer directly. A Sentinel-style runtime builds and
// hashes the string triple on every posting.

#include <benchmark/benchmark.h>

#include "baselines/string_event_rep.h"
#include "events/event_parser.h"
#include "events/fsm.h"
#include "trigger/event_registry.h"

namespace ode {
namespace {

constexpr Symbol kSymA = 2, kSymB = 3, kSymC = 4;

Fsm MakeFsm() {
  auto parsed = ParseEventExpr("a, b, c");
  CompileInput input;
  input.expr = parsed->expr;
  input.alphabet = {kSymA, kSymB, kSymC};
  input.event_symbols = {{"a", kSymA}, {"b", kSymB}, {"c", kSymC}};
  auto fsm = CompileFsm(input);
  return std::move(fsm).value();
}

/// Ode: the posting site already holds the interned integer; identifying
/// the event plus advancing the FSM is an integer binary search.
void BM_OdeIntegerRep_PostAndMove(benchmark::State& state) {
  Fsm fsm = MakeFsm();
  Symbol events[] = {kSymA, kSymB, kSymC};
  int32_t s = fsm.start();
  size_t i = 0;
  for (auto _ : state) {
    s = fsm.Move(s, events[i++ % 3]);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_OdeIntegerRep_PostAndMove);

/// Sentinel: every posting constructs the (class, prototype, position)
/// triple and resolves it through a hash table before the detector can
/// consume it.
void BM_SentinelStringRep_PostAndMove(benchmark::State& state) {
  Fsm fsm = MakeFsm();
  StringEventTable table;
  const char* protos[] = {"void a()", "void b()", "void c()"};
  for (int i = 0; i < 3; ++i) {
    table.Intern({"Counter", protos[i], "end"});
  }
  int32_t s = fsm.start();
  size_t i = 0;
  for (auto _ : state) {
    // The per-posting work a string-triple runtime cannot avoid:
    StringEventRep rep{"Counter", protos[i % 3], "end"};
    uint32_t id = table.Lookup(rep);
    s = fsm.Move(s, kSymA + id - 1);
    benchmark::DoNotOptimize(s);
    ++i;
  }
}
BENCHMARK(BM_SentinelStringRep_PostAndMove);

/// Interning cost at startup (paid once per event in Ode, §5.2).
void BM_OdeIntern_Startup(benchmark::State& state) {
  for (auto _ : state) {
    EventRegistry registry;
    for (int i = 0; i < 16; ++i) {
      benchmark::DoNotOptimize(
          registry.Intern("CredCard", "after f" + std::to_string(i)));
    }
  }
}
BENCHMARK(BM_OdeIntern_Startup);

/// Pure identification comparison, no FSM: integer pass-through vs
/// triple construction + hash lookup.
void BM_IdentifyOnly_Integer(benchmark::State& state) {
  Symbol symbol = kSymB;
  for (auto _ : state) {
    benchmark::DoNotOptimize(symbol);
  }
}
BENCHMARK(BM_IdentifyOnly_Integer);

void BM_IdentifyOnly_StringTriple(benchmark::State& state) {
  StringEventTable table;
  table.Intern({"CredCard", "void PayBill(float)", "end"});
  for (auto _ : state) {
    StringEventRep rep{"CredCard", "void PayBill(float)", "end"};
    benchmark::DoNotOptimize(table.Lookup(rep));
  }
}
BENCHMARK(BM_IdentifyOnly_StringTriple);

}  // namespace
}  // namespace ode

BENCHMARK_MAIN();
