// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   A1 — trigger-index fanout: the object->triggers index is a bucketed
//        persistent hash table; one posting reads one bucket. With too
//        few buckets every posting decodes a bucket holding many
//        unrelated objects' entries; with enough buckets the per-posting
//        cost is flat.
//   A2 — DFA minimization: states/memory of the machines with and
//        without the Moore minimization pass (the run-time Move cost is
//        identical — both are binary searches — so size is the payoff).
//   A3 — the footnote-3 fast path: cost of posting to a trigger-less
//        object while *other* objects carry many activations, with the
//        in-memory count check short-circuiting the index probe.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "events/event_parser.h"
#include "events/minimize.h"

namespace ode {
namespace bench {
namespace {

// ------------------------------------------------------- A1: index fanout

void BM_IndexFanout(benchmark::State& state) {
  size_t buckets = static_cast<size_t>(state.range(0));
  constexpr int kObjects = 256;

  Schema schema;
  DeclareCounter(&schema, 1);
  BENCH_CHECK_OK(schema.Freeze());
  Session::Options options;
  options.auto_cluster = false;
  options.trigger_index_buckets = buckets;
  auto session =
      Session::Open(StorageKind::kMainMemory, "", &schema, options);
  BENCH_CHECK_OK(session.status());
  Session& s = **session;

  // Many objects, each with one active trigger, so buckets fill up.
  std::vector<PRef<Counter>> objects;
  BENCH_CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    for (int i = 0; i < kObjects; ++i) {
      auto r = s.New(txn, Counter{});
      ODE_RETURN_NOT_OK(r.status());
      ODE_RETURN_NOT_OK(s.Activate(txn, *r, "T0").status());
      objects.push_back(*r);
    }
    return Status::OK();
  }));

  auto txn = s.Begin();
  BENCH_CHECK_OK(txn.status());
  size_t i = 0;
  for (auto _ : state) {
    BENCH_CHECK_OK(
        s.Invoke(*txn, objects[i++ % kObjects], &Counter::Hit));
  }
  BENCH_CHECK_OK(s.Abort(*txn));
  state.counters["buckets"] = static_cast<double>(buckets);
  state.counters["objects"] = kObjects;
}
BENCHMARK(BM_IndexFanout)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// ----------------------------------------------------- A2: minimization

void BM_MinimizationEffect(benchmark::State& state) {
  // A union-heavy expression whose raw subset construction has
  // mergeable states.
  const char* text =
      "(a, b) || (a, c) || (a, b) || (a, any, b), (b || c)";
  auto parsed = ParseEventExpr(text);
  CompileInput input;
  input.expr = parsed->expr;
  input.alphabet = {2, 3, 4};
  input.event_symbols = {{"a", 2}, {"b", 3}, {"c", 4}};

  size_t raw_states = 0, min_states = 0, raw_bytes = 0, min_bytes = 0;
  for (auto _ : state) {
    auto nfa = BuildNfa(input);
    auto dfa = BuildDfa(*nfa);
    Fsm raw(*dfa, input.alphabet);
    Dfa minimized = MinimizeDfa(*dfa);
    Fsm small(minimized, input.alphabet);
    benchmark::DoNotOptimize(small);
    raw_states = raw.NumStates();
    min_states = small.NumStates();
    raw_bytes = raw.MemoryBytes();
    min_bytes = small.MemoryBytes();
  }
  state.counters["raw_states"] = static_cast<double>(raw_states);
  state.counters["min_states"] = static_cast<double>(min_states);
  state.counters["raw_bytes"] = static_cast<double>(raw_bytes);
  state.counters["min_bytes"] = static_cast<double>(min_bytes);
}
BENCHMARK(BM_MinimizationEffect);

// -------------------------------------------------- A3: fast-path value

void BM_FastPath_ColdObjectAmongHot(benchmark::State& state) {
  // 256 objects carry triggers; we post to one that doesn't. The
  // footnote-3 count check must keep this near the eventless cost
  // regardless of how much trigger traffic the database carries.
  Schema schema;
  DeclareCounter(&schema, 1);
  BENCH_CHECK_OK(schema.Freeze());
  Session::Options options;
  options.auto_cluster = false;
  auto session =
      Session::Open(StorageKind::kMainMemory, "", &schema, options);
  BENCH_CHECK_OK(session.status());
  Session& s = **session;

  PRef<Counter> cold;
  BENCH_CHECK_OK(s.WithTransaction([&](Transaction* txn) -> Status {
    for (int i = 0; i < 256; ++i) {
      auto r = s.New(txn, Counter{});
      ODE_RETURN_NOT_OK(r.status());
      ODE_RETURN_NOT_OK(s.Activate(txn, *r, "T0").status());
    }
    auto r = s.New(txn, Counter{});
    ODE_RETURN_NOT_OK(r.status());
    cold = *r;  // no activation
    return Status::OK();
  }));

  auto txn = s.Begin();
  BENCH_CHECK_OK(txn.status());
  for (auto _ : state) {
    BENCH_CHECK_OK(s.Invoke(*txn, cold, &Counter::Hit));
  }
  BENCH_CHECK_OK(s.Abort(*txn));
  state.counters["skips"] = static_cast<double>(
      s.triggers()->stats().fast_path_skips.load());
}
BENCHMARK(BM_FastPath_ColdObjectAmongHot);

// ------------------------------- A4: local vs persistent trigger cost

// §8 claims local rules are "low cost ... no persistent storage is
// required for such triggers ... never require obtaining write locks."
// Compare one posting against a persistent activation (index lookup +
// X-locked TriggerState read) with one against a transaction-local
// activation (an in-memory struct).

void BM_PersistentTriggerPosting(benchmark::State& state) {
  CounterHarness h(1, 1);
  auto txn = h.session->Begin();
  BENCH_CHECK_OK(txn.status());
  for (auto _ : state) {
    BENCH_CHECK_OK(h.session->Invoke(*txn, h.counter, &Counter::Hit));
  }
  BENCH_CHECK_OK(h.session->Abort(*txn));
}
BENCHMARK(BM_PersistentTriggerPosting);

void BM_LocalTriggerPosting(benchmark::State& state) {
  CounterHarness h(1, 0);  // declared but not persistently activated
  auto txn = h.session->Begin();
  BENCH_CHECK_OK(txn.status());
  auto local = h.session->ActivateLocal(*txn, h.counter, "T0");
  BENCH_CHECK_OK(local.status());
  for (auto _ : state) {
    BENCH_CHECK_OK(h.session->Invoke(*txn, h.counter, &Counter::Hit));
  }
  BENCH_CHECK_OK(h.session->Abort(*txn));
}
BENCHMARK(BM_LocalTriggerPosting);

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
