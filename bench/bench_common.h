#ifndef ODE_BENCH_BENCH_COMMON_H_
#define ODE_BENCH_BENCH_COMMON_H_

// Shared fixtures for the benchmark harness (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for results and interpretation).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "odepp/params.h"
#include "odepp/session.h"

namespace ode {
namespace bench {

#define BENCH_CHECK_OK(expr)                                            \
  do {                                                                  \
    ::ode::Status _st = (expr);                                         \
    if (!_st.ok()) {                                                    \
      std::fprintf(stderr, "BENCH FAILED at %s:%d: %s\n", __FILE__,     \
                   __LINE__, _st.ToString().c_str());                   \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

/// A counter object whose Hit() method is the benchmark workhorse.
struct Counter {
  int64_t hits = 0;
  int64_t fires = 0;

  void Hit() { ++hits; }

  void Encode(Encoder& enc) const {
    enc.PutI64(hits);
    enc.PutI64(fires);
  }
  static Result<Counter> Decode(Decoder& dec) {
    Counter c;
    ODE_RETURN_NOT_OK(dec.GetI64(&c.hits));
    ODE_RETURN_NOT_OK(dec.GetI64(&c.fires));
    return c;
  }
};

/// Declares Counter with `num_triggers` perpetual triggers named T0..Tn-1
/// on the given event expression. The action is a no-op (so benchmarks
/// measure trigger machinery, not action work).
inline void DeclareCounter(Schema* schema, int num_triggers,
                           const std::string& expr = "after Hit",
                           CouplingMode coupling = CouplingMode::kImmediate,
                           bool masked = false) {
  auto def = schema->DeclareClass<Counter>("Counter");
  def.Event("after Hit")
      .Event("Poke")
      .Event("Poke2")
      .Event("Never")  // declared but never posted: lets burst benchmarks
                       // advance machines without completing them
      .Method("Hit", &Counter::Hit);
  if (masked) {
    def.Mask("Positive()",
             [](const Counter& c, MaskEvalContext&) -> Result<bool> {
               return c.hits >= 0;
             });
  }
  for (int i = 0; i < num_triggers; ++i) {
    def.Trigger("T" + std::to_string(i), expr,
                [](Counter&, TriggerFireContext&) -> Status {
                  return Status::OK();
                },
                coupling, /*perpetual=*/true);
  }
}

/// A Session over a volatile main-memory store with the Counter schema,
/// one Counter object, and `active` of the declared triggers activated.
struct CounterHarness {
  /// `session_options` lets benchmarks sweep Session knobs (trigger cache
  /// capacities, index buckets); auto_cluster is forced off regardless.
  CounterHarness(int declared, int active,
                 const std::string& expr = "after Hit",
                 CouplingMode coupling = CouplingMode::kImmediate,
                 bool masked = false,
                 Session::Options session_options = Session::Options()) {
    DeclareCounter(&schema, declared, expr, coupling, masked);
    BENCH_CHECK_OK(schema.Freeze());
    Session::Options options = session_options;
    options.auto_cluster = false;
    auto s = Session::Open(StorageKind::kMainMemory, "", &schema, options);
    BENCH_CHECK_OK(s.status());
    session = std::move(s).value();
    BENCH_CHECK_OK(session->WithTransaction([&](Transaction* txn) -> Status {
      auto r = session->New(txn, Counter{});
      ODE_RETURN_NOT_OK(r.status());
      counter = *r;
      for (int i = 0; i < active; ++i) {
        ODE_RETURN_NOT_OK(
            session->Activate(txn, counter, "T" + std::to_string(i))
                .status());
      }
      return Status::OK();
    }));
  }

  Schema schema;
  std::unique_ptr<Session> session;
  PRef<Counter> counter;
};

/// Folds the session's own measurements for the benchmarked window into
/// the benchmark's user counters, so BENCH_*.json records carry cache
/// hit ratios and posting-latency percentiles next to the wall times.
/// `before` is a snapshot taken just before the measured loop.
inline void AddMetricsCounters(benchmark::State& state, Session* session,
                               const MetricsSnapshot& before) {
  MetricsSnapshot delta = session->MetricsSnapshot().Delta(before);
  auto ratio = [&](const char* hits_name, const char* misses_name) {
    double hits = static_cast<double>(delta.CounterValue(hits_name));
    double total = hits + static_cast<double>(delta.CounterValue(misses_name));
    return total == 0 ? 0.0 : hits / total;
  };
  state.counters["state_cache_hit_ratio"] =
      ratio("ode_trigger_state_cache_hits_total",
            "ode_trigger_state_cache_misses_total");
  state.counters["lookup_cache_hit_ratio"] =
      ratio("ode_trigger_lookup_cache_hits_total",
            "ode_trigger_lookup_cache_misses_total");
  HistogramData post = delta.HistogramValue("ode_trigger_post_latency_ns");
  if (post.count > 0) {
    state.counters["post_latency_p50_ns"] = post.Percentile(50);
    state.counters["post_latency_p95_ns"] = post.Percentile(95);
    state.counters["post_latency_p99_ns"] = post.Percentile(99);
    state.counters["post_latency_max_ns"] = static_cast<double>(post.max);
  }
}

}  // namespace bench
}  // namespace ode

#endif  // ODE_BENCH_BENCH_COMMON_H_
