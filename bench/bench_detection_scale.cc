// Experiment E6 (design goal 2: "detection of composite events should be
// efficient"): how detection cost scales.
//
//   * FSM advance is O(1) in the history length; the naive baseline that
//     re-scans the object's whole event history is O(n) per event — the
//     crossover is immediate and the gap grows without bound.
//   * Full-stack PostEvent cost vs the number of active triggers on the
//     object (index lookup + one FSM advance per trigger).
//   * FSM advance cost vs machine size (binary search in the sparse
//     transition list).

#include <benchmark/benchmark.h>

#include "baselines/history_scan_detector.h"
#include "bench_common.h"
#include "common/random.h"
#include "events/event_parser.h"
#include "events/fsm.h"

namespace ode {
namespace bench {
namespace {

constexpr Symbol kSymA = 2, kSymB = 3, kSymC = 4;

CompileInput PatternInput() {
  auto parsed = ParseEventExpr("a, b+, c");
  CompileInput input;
  input.expr = parsed->expr;
  input.alphabet = {kSymA, kSymB, kSymC};
  input.event_symbols = {{"a", kSymA}, {"b", kSymB}, {"c", kSymC}};
  return input;
}

/// FSM: cost of the n-th event is independent of n.
void BM_FsmDetection_AtHistoryLength(benchmark::State& state) {
  size_t history = static_cast<size_t>(state.range(0));
  auto fsm = CompileFsm(PatternInput());
  Random rng(1);
  int32_t s = fsm->start();
  // Pre-play `history` events (irrelevant for the FSM, by construction).
  for (size_t i = 0; i < history; ++i) {
    s = fsm->Move(s, static_cast<Symbol>(kSymA + rng.Uniform(3)));
  }
  size_t i = 0;
  Symbol syms[] = {kSymA, kSymB, kSymC};
  for (auto _ : state) {
    s = fsm->Move(s, syms[i++ % 3]);
    benchmark::DoNotOptimize(s);
  }
  state.counters["history"] = static_cast<double>(history);
}
BENCHMARK(BM_FsmDetection_AtHistoryLength)
    ->Arg(0)->Arg(100)->Arg(1000)->Arg(10000);

/// Baseline: the n-th event costs O(n) — the whole history is re-scanned.
void BM_HistoryScan_AtHistoryLength(benchmark::State& state) {
  size_t history = static_cast<size_t>(state.range(0));
  CompileInput input = PatternInput();
  auto nfa = BuildNfa(input);
  HistoryScanDetector scan(std::move(nfa).value());
  Random rng(1);
  for (size_t i = 0; i < history; ++i) {
    scan.Post(static_cast<Symbol>(kSymA + rng.Uniform(3)));
  }
  size_t i = 0;
  Symbol syms[] = {kSymA, kSymB, kSymC};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan.Post(syms[i++ % 3]));
    state.PauseTiming();
    // Keep the history length fixed so the measurement is "cost of one
    // event at history length H".
    scan.Reset();
    Random replay(1);
    for (size_t j = 0; j < history; ++j) {
      scan.Post(static_cast<Symbol>(kSymA + replay.Uniform(3)));
    }
    state.ResumeTiming();
  }
  state.counters["history"] = static_cast<double>(history);
}
BENCHMARK(BM_HistoryScan_AtHistoryLength)->Arg(0)->Arg(100)->Arg(1000);

/// Full stack: one member-function event posted to an object with N
/// active triggers, inside a long transaction. range(1) sweeps the
/// per-transaction posting caches: 1 = on (state decoded once, advanced
/// in memory, written back at commit), 0 = off (per-event
/// read/decode/encode/write — the pre-caching behavior).
void BM_PostEvent_ActiveTriggers(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool cached = state.range(1) != 0;
  Session::Options opts;
  if (!cached) {
    opts.trigger_state_cache_entries = 0;
    opts.trigger_lookup_cache_entries = 0;
  }
  CounterHarness h(n, n, "after Hit", CouplingMode::kImmediate,
                   /*masked=*/false, opts);
  auto txn = h.session->Begin();
  BENCH_CHECK_OK(txn.status());
  for (auto _ : state) {
    BENCH_CHECK_OK(h.session->Invoke(*txn, h.counter, &Counter::Hit));
  }
  BENCH_CHECK_OK(h.session->Abort(*txn));
  state.counters["triggers"] = n;
  state.counters["fsm_moves"] = static_cast<double>(
      h.session->triggers()->stats().fsm_moves.load());
  state.counters["state_cache_hits"] = static_cast<double>(
      h.session->triggers()->stats().state_cache_hits.load());
}
BENCHMARK(BM_PostEvent_ActiveTriggers)
    ->ArgsProduct({{1, 4, 16, 64}, {0, 1}});

/// FSM advance vs machine size: sequences of length N give N+1 states.
void BM_FsmMove_VsStates(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CompileInput input;
  ExprPtr expr;
  for (int i = 0; i < n; ++i) {
    std::string name = "e" + std::to_string(i);
    Symbol sym = static_cast<Symbol>(kFirstEventSymbol + i);
    input.alphabet.push_back(sym);
    input.event_symbols[name] = sym;
    ExprPtr basic = Basic(name);
    expr = expr == nullptr ? basic : Seq(expr, basic);
  }
  input.expr = expr;
  auto fsm = CompileFsm(input);
  Random rng(2);
  std::vector<Symbol> stream;
  for (int i = 0; i < 4096; ++i) {
    stream.push_back(
        static_cast<Symbol>(kFirstEventSymbol + rng.Uniform(n)));
  }
  int32_t s = fsm->start();
  size_t i = 0;
  for (auto _ : state) {
    s = fsm->Move(s, stream[i++ & 4095]);
    benchmark::DoNotOptimize(s);
  }
  state.counters["states"] = static_cast<double>(fsm->NumStates());
}
BENCHMARK(BM_FsmMove_VsStates)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
