// Experiment E1 (design goals 3–4, §5.3): who pays for triggers?
//
//   * volatile objects: plain C++ calls, zero trigger overhead;
//   * persistent objects of a class with NO declared events/triggers:
//     object load/store cost, but no posting;
//   * persistent objects with declared events but no ACTIVE triggers:
//     one posting that short-circuits on the footnote-3 fast path;
//   * persistent objects with N active triggers: index lookup + N FSM
//     advances (+ write-back of advanced TriggerStates).

#include <algorithm>
#include <chrono>
#include <vector>

#include "bench_common.h"
#include "storage/disk_storage_manager.h"

namespace ode {
namespace bench {
namespace {

/// Baseline: a volatile object — the wrapper machinery must never touch
/// it (design goal 4).
void BM_VolatileCall(benchmark::State& state) {
  Counter counter;
  for (auto _ : state) {
    counter.Hit();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_VolatileCall);

/// A class with no events or triggers declared at all: Invoke does the
/// load/call/store dance but posts nothing (design goal 3: only classes
/// with triggers pay).
void BM_PersistentCall_EventlessClass(benchmark::State& state) {
  Schema schema;
  schema.DeclareClass<Counter>("Counter").Method("Hit", &Counter::Hit);
  BENCH_CHECK_OK(schema.Freeze());
  Session::Options options;
  options.auto_cluster = false;
  auto session =
      Session::Open(StorageKind::kMainMemory, "", &schema, options);
  BENCH_CHECK_OK(session.status());
  PRef<Counter> ref;
  BENCH_CHECK_OK((*session)->WithTransaction([&](Transaction* txn) -> Status {
    auto r = (*session)->New(txn, Counter{});
    ODE_RETURN_NOT_OK(r.status());
    ref = *r;
    return Status::OK();
  }));
  auto txn = (*session)->Begin();
  BENCH_CHECK_OK(txn.status());
  for (auto _ : state) {
    BENCH_CHECK_OK((*session)->Invoke(*txn, ref, &Counter::Hit));
  }
  BENCH_CHECK_OK((*session)->Abort(*txn));
}
BENCHMARK(BM_PersistentCall_EventlessClass);

/// Declared events, zero active triggers: the posting hits the fast path.
void BM_PersistentCall_NoActiveTriggers(benchmark::State& state) {
  CounterHarness h(/*declared=*/4, /*active=*/0);
  auto txn = h.session->Begin();
  BENCH_CHECK_OK(txn.status());
  for (auto _ : state) {
    BENCH_CHECK_OK(h.session->Invoke(*txn, h.counter, &Counter::Hit));
  }
  BENCH_CHECK_OK(h.session->Abort(*txn));
  state.counters["fast_path_skips"] = static_cast<double>(
      h.session->triggers()->stats().fast_path_skips.load());
}
BENCHMARK(BM_PersistentCall_NoActiveTriggers);

/// N active perpetual triggers advancing on every call.
void BM_PersistentCall_ActiveTriggers(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CounterHarness h(/*declared=*/n, /*active=*/n);
  auto txn = h.session->Begin();
  BENCH_CHECK_OK(txn.status());
  for (auto _ : state) {
    BENCH_CHECK_OK(h.session->Invoke(*txn, h.counter, &Counter::Hit));
  }
  BENCH_CHECK_OK(h.session->Abort(*txn));
  state.counters["triggers"] = n;
}
BENCHMARK(BM_PersistentCall_ActiveTriggers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Arg(16);

/// The observability cost gate: the same 4-trigger posting loop with the
/// metrics registry enabled (range(0)=1) vs disabled (range(0)=0). The
/// two variants must stay within a few percent of each other — counters
/// are sharded relaxed atomics and the post-latency histogram samples
/// 1 in 16 postings, so enabling metrics must not distort E1.
void BM_PersistentCall_MetricsToggle(benchmark::State& state) {
  Session::Options opts;
  opts.enable_metrics = state.range(0) != 0;
  CounterHarness h(/*declared=*/4, /*active=*/4, "after Hit",
                   CouplingMode::kImmediate, /*masked=*/false, opts);
  MetricsSnapshot before = h.session->MetricsSnapshot();
  auto txn = h.session->Begin();
  BENCH_CHECK_OK(txn.status());
  for (auto _ : state) {
    BENCH_CHECK_OK(h.session->Invoke(*txn, h.counter, &Counter::Hit));
  }
  BENCH_CHECK_OK(h.session->Abort(*txn));
  state.counters["metrics_enabled"] = opts.enable_metrics ? 1 : 0;
  if (opts.enable_metrics) {
    AddMetricsCounters(state, h.session.get(), before);
  }
}
BENCHMARK(BM_PersistentCall_MetricsToggle)->Arg(0)->Arg(1);

/// The tracing cost gate: the same 4-trigger posting loop with the span
/// tracer at its default knobs (range(0)=1: 4096-slot ring, 1-in-32 txn
/// sampling) vs fully disabled (range(0)=0: trace_span_capacity=0).
/// Unsampled transactions pay one relaxed load plus a mask test per
/// layer, so the two variants must stay within a few percent — the
/// embedded tracing_overhead_pct context (below) is the tracked number.
void BM_PersistentCall_TracingToggle(benchmark::State& state) {
  Session::Options opts;
  if (state.range(0) == 0) opts.trace_span_capacity = 0;
  CounterHarness h(/*declared=*/4, /*active=*/4, "after Hit",
                   CouplingMode::kImmediate, /*masked=*/false, opts);
  auto txn = h.session->Begin();
  BENCH_CHECK_OK(txn.status());
  for (auto _ : state) {
    BENCH_CHECK_OK(h.session->Invoke(*txn, h.counter, &Counter::Hit));
  }
  BENCH_CHECK_OK(h.session->Abort(*txn));
  state.counters["tracing_enabled"] = state.range(0) != 0 ? 1 : 0;
  state.counters["spans_recorded"] =
      static_cast<double>(h.session->tracer()->total_recorded());
}
BENCHMARK(BM_PersistentCall_TracingToggle)->Arg(0)->Arg(1);

/// Same with a masked expression — adds one predicate evaluation (an
/// object load + user lambda) per posting per trigger.
void BM_PersistentCall_MaskedTrigger(benchmark::State& state) {
  CounterHarness h(/*declared=*/1, /*active=*/1, "after Hit & Positive()",
                   CouplingMode::kImmediate, /*masked=*/true);
  auto txn = h.session->Begin();
  BENCH_CHECK_OK(txn.status());
  for (auto _ : state) {
    BENCH_CHECK_OK(h.session->Invoke(*txn, h.counter, &Counter::Hit));
  }
  BENCH_CHECK_OK(h.session->Abort(*txn));
  state.counters["mask_evals"] = static_cast<double>(
      h.session->triggers()->stats().mask_evaluations.load());
}
BENCHMARK(BM_PersistentCall_MaskedTrigger);

/// Event bursts against the per-transaction caches: N active perpetual
/// triggers detecting "Poke, Poke2, Never", 8 alternating Poke/Poke2
/// postings per transaction — every posting advances every machine (the
/// in-progress prefix toggles) but no machine ever completes, so the
/// measurement is pure detection overhead, not action work. range(0) =
/// N triggers; range(1) = 1 enables the posting caches, 0 disables them
/// (the pre-caching per-event read/decode/encode/write path). The
/// reads_per_post counter is the headline number: with caches the bucket
/// and TriggerState reads (and the write-backs) happen once per
/// transaction instead of once per posting.
void BM_PostBurst_CachedStates(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool cached = state.range(1) != 0;
  constexpr int kEventsPerTxn = 8;
  Session::Options opts;
  if (!cached) {
    opts.trigger_state_cache_entries = 0;
    opts.trigger_lookup_cache_entries = 0;
  }
  CounterHarness h(/*declared=*/n, /*active=*/n, "Poke, Poke2, Never",
                   CouplingMode::kImmediate, /*masked=*/false, opts);
  uint64_t posts = 0;
  MetricsSnapshot before = h.session->MetricsSnapshot();
  uint64_t reads_before = h.session->db()->store()->stats().object_reads;
  uint64_t writes_before = h.session->db()->store()->stats().object_writes;
  for (auto _ : state) {
    auto txn = h.session->Begin();
    BENCH_CHECK_OK(txn.status());
    for (int i = 0; i < kEventsPerTxn; ++i) {
      BENCH_CHECK_OK(h.session->PostUserEvent(
          *txn, h.counter, (i % 2) == 0 ? "Poke" : "Poke2"));
      ++posts;
    }
    BENCH_CHECK_OK(h.session->Commit(*txn));
  }
  StorageStats ss = h.session->db()->store()->stats();
  state.counters["triggers"] = n;
  state.counters["reads_per_post"] =
      posts ? static_cast<double>(ss.object_reads - reads_before) / posts : 0;
  state.counters["writes_per_post"] =
      posts ? static_cast<double>(ss.object_writes - writes_before) / posts
            : 0;
  const auto& ts = h.session->triggers()->stats();
  state.counters["state_cache_hits"] =
      static_cast<double>(ts.state_cache_hits.load());
  state.counters["state_writebacks"] =
      static_cast<double>(ts.state_writebacks.load());
  AddMetricsCounters(state, h.session.get(), before);
}
BENCHMARK(BM_PostBurst_CachedStates)
    ->ArgsProduct({{1, 4, 8, 16}, {0, 1}});

/// Runs one canonical posting workload and embeds its DumpMetricsText()
/// numbers in the benchmark JSON context, so every BENCH_*.json carries
/// the session's own measurements (counter totals, latency percentiles)
/// alongside Google Benchmark's wall times.
void EmbedMetricsContext() {
  CounterHarness h(/*declared=*/4, /*active=*/4);
  BENCH_CHECK_OK(h.session->WithTransaction([&](Transaction* txn) -> Status {
    for (int i = 0; i < 1024; ++i) {
      ODE_RETURN_NOT_OK(h.session->Invoke(txn, h.counter, &Counter::Hit));
    }
    return Status::OK();
  }));
  MetricsSnapshot snap = h.session->MetricsSnapshot();
  for (const char* name :
       {"ode_trigger_posts_total", "ode_trigger_fsm_moves_total",
        "ode_trigger_state_writebacks_total",
        "ode_storage_object_reads_total", "ode_txn_commits_total"}) {
    benchmark::AddCustomContext(name,
                                std::to_string(snap.CounterValue(name)));
  }
  HistogramData post = snap.HistogramValue("ode_trigger_post_latency_ns");
  benchmark::AddCustomContext("ode_trigger_post_latency_p50_ns",
                              std::to_string(post.Percentile(50)));
  benchmark::AddCustomContext("ode_trigger_post_latency_p99_ns",
                              std::to_string(post.Percentile(99)));
}

/// Measures the posting path with the span tracer disabled vs at its
/// default knobs (1-in-32 txn sampling) and embeds the relative delta
/// as `tracing_overhead_pct` context in BENCH_posting.json.
/// run_bench.sh fails if the key ever goes missing; the acceptance
/// gate is <= 5% at default sampling. The two configurations run as
/// interleaved rounds so clock-frequency and cache drift hit both
/// sides equally instead of biasing whichever ran second.
void EmbedTracingOverheadContext() {
  Session::Options off_opts;
  off_opts.trace_span_capacity = 0;
  CounterHarness off_h(/*declared=*/4, /*active=*/4, "after Hit",
                       CouplingMode::kImmediate, /*masked=*/false, off_opts);
  CounterHarness on_h(/*declared=*/4, /*active=*/4);  // default tracing
  constexpr int kRounds = 8;
  constexpr int kTxnsPerRound = 16;
  constexpr int kPostsPerTxn = 512;
  auto round_ns = [](CounterHarness& h) -> double {
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < kTxnsPerRound; ++t) {
      BENCH_CHECK_OK(
          h.session->WithTransaction([&](Transaction* txn) -> Status {
            for (int i = 0; i < kPostsPerTxn; ++i) {
              ODE_RETURN_NOT_OK(
                  h.session->Invoke(txn, h.counter, &Counter::Hit));
            }
            return Status::OK();
          }));
    }
    const auto end = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
  };
  round_ns(off_h);  // warmup: caches hot, sampling mask exercised
  round_ns(on_h);
  double off_total = 0, on_total = 0;
  for (int r = 0; r < kRounds; ++r) {
    off_total += round_ns(off_h);
    on_total += round_ns(on_h);
  }
  constexpr double kPosts = 1.0 * kRounds * kTxnsPerRound * kPostsPerTxn;
  const double off = off_total / kPosts;
  const double on = on_total / kPosts;
  const double pct = off > 0 ? (on - off) / off * 100.0 : 0.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", pct);
  benchmark::AddCustomContext("tracing_off_ns_per_post",
                              std::to_string(off));
  benchmark::AddCustomContext("tracing_on_ns_per_post", std::to_string(on));
  benchmark::AddCustomContext("tracing_overhead_pct", buf);
}

/// Measures the posting path with the trigger-containment layer
/// (cascade budgets, failure windows, watchdog branch, admission gauge)
/// off vs on and embeds the relative delta as `containment_overhead_pct`
/// context in BENCH_posting.json. run_bench.sh gates it at <= 5%: the
/// guardrails may only tax the no-fault hot path by branch checks and
/// one shared-budget increment per action. Span tracing is off on BOTH
/// sides so the number isolates containment. Interleaved rounds with a
/// median-of-ratios, as elsewhere, to cancel clock/cache drift.
void EmbedContainmentOverheadContext() {
  Session::Options off_opts;
  off_opts.trace_span_capacity = 0;
  off_opts.trigger_containment = false;
  Session::Options on_opts;
  on_opts.trace_span_capacity = 0;  // defaults otherwise: containment on
  CounterHarness off_h(/*declared=*/4, /*active=*/4, "after Hit",
                       CouplingMode::kImmediate, /*masked=*/false, off_opts);
  CounterHarness on_h(/*declared=*/4, /*active=*/4, "after Hit",
                      CouplingMode::kImmediate, /*masked=*/false, on_opts);
  constexpr int kRounds = 9;
  constexpr int kTxnsPerRound = 16;
  constexpr int kPostsPerTxn = 512;
  auto round_ns = [](CounterHarness& h) -> double {
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < kTxnsPerRound; ++t) {
      BENCH_CHECK_OK(
          h.session->WithTransaction([&](Transaction* txn) -> Status {
            for (int i = 0; i < kPostsPerTxn; ++i) {
              ODE_RETURN_NOT_OK(
                  h.session->Invoke(txn, h.counter, &Counter::Hit));
            }
            return Status::OK();
          }));
    }
    const auto end = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
  };
  round_ns(off_h);  // warmup
  round_ns(on_h);
  std::vector<double> ratios;
  double off_total = 0, on_total = 0;
  for (int r = 0; r < kRounds; ++r) {
    const double off = round_ns(off_h);
    const double on = round_ns(on_h);
    off_total += off;
    on_total += on;
    if (off > 0) ratios.push_back(on / off);
  }
  std::sort(ratios.begin(), ratios.end());
  const double median_ratio =
      ratios.empty() ? 1.0 : ratios[ratios.size() / 2];
  const double pct = (median_ratio - 1.0) * 100.0;
  constexpr double kPosts = 1.0 * kRounds * kTxnsPerRound * kPostsPerTxn;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", pct);
  benchmark::AddCustomContext("containment_off_ns_per_post",
                              std::to_string(off_total / kPosts));
  benchmark::AddCustomContext("containment_on_ns_per_post",
                              std::to_string(on_total / kPosts));
  benchmark::AddCustomContext("containment_overhead_pct", buf);
}

/// Disk-backed posting harness for the page-checksum gate: the same
/// 4-active-trigger Counter, but over a DiskStorageManager (sync off,
/// tracing off) so TriggerState write-backs land on real pages. Each
/// round ends in a Checkpoint — that is where the checksum work lives:
/// CRC32C is stamped when dirty frames are written back and verified
/// when pages are re-read from the medium, so a warm pool with no
/// flushes would measure nothing.
struct DiskPostingRig {
  explicit DiskPostingRig(bool verify)
      : path(std::string("/tmp/ode_bench_posting.db") +
             (verify ? ".ck_on" : ".ck_off")) {
    Remove();
    DeclareCounter(&schema, /*num_triggers=*/4);
    BENCH_CHECK_OK(schema.Freeze());
    DiskStorageManager::Options dopts;
    dopts.sync_commits = false;
    dopts.verify_page_checksums = verify;
    Session::Options options;
    options.auto_cluster = false;
    options.trace_span_capacity = 0;  // isolate the checksum delta
    auto s = Session::OpenWith(
        std::make_unique<DiskStorageManager>(path, dopts), &schema, options);
    BENCH_CHECK_OK(s.status());
    session = std::move(s).value();
    BENCH_CHECK_OK(session->WithTransaction([&](Transaction* txn) -> Status {
      auto r = session->New(txn, Counter{});
      ODE_RETURN_NOT_OK(r.status());
      counter = *r;
      for (int i = 0; i < 4; ++i) {
        ODE_RETURN_NOT_OK(
            session->Activate(txn, counter, "T" + std::to_string(i))
                .status());
      }
      return Status::OK();
    }));
  }
  ~DiskPostingRig() {
    session.reset();
    Remove();
  }
  void Remove() {
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
    std::remove((path + ".flight.json").c_str());
  }
  double RoundNs(int txns, int posts_per_txn) {
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < txns; ++t) {
      BENCH_CHECK_OK(
          session->WithTransaction([&](Transaction* txn) -> Status {
            for (int i = 0; i < posts_per_txn; ++i) {
              ODE_RETURN_NOT_OK(session->Invoke(txn, counter, &Counter::Hit));
            }
            return Status::OK();
          }));
    }
    BENCH_CHECK_OK(session->db()->store()->Checkpoint());
    const auto end = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
  }

  std::string path;
  Schema schema;
  std::unique_ptr<Session> session;
  PRef<Counter> counter;
};

/// Measures the disk-backed posting+checkpoint round with page checksums
/// off vs on (the default) and embeds the delta as
/// `checksum_overhead_pct` context in BENCH_posting.json. run_bench.sh
/// fails if the key goes missing; the acceptance gate is <= 5%.
/// Interleaved rounds + median-of-ratios, as in the commit benchmark's
/// checksum gate: each time-adjacent pair cancels clock and writeback
/// drift, and the median shrugs off single-round fsync stalls.
void EmbedChecksumOverheadContext() {
  constexpr int kRounds = 16;
  constexpr int kTxnsPerRound = 8;
  constexpr int kPostsPerTxn = 128;
  auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return (v.size() % 2) != 0
               ? v[v.size() / 2]
               : 0.5 * (v[v.size() / 2 - 1] + v[v.size() / 2]);
  };
  std::vector<double> off_ns, on_ns, ratios;
  {
    DiskPostingRig off_rig(false);
    DiskPostingRig on_rig(true);
    off_rig.RoundNs(kTxnsPerRound, kPostsPerTxn);  // warmup
    on_rig.RoundNs(kTxnsPerRound, kPostsPerTxn);
    for (int r = 0; r < kRounds; ++r) {
      double o, n;
      if (r % 2 == 0) {
        o = off_rig.RoundNs(kTxnsPerRound, kPostsPerTxn);
        n = on_rig.RoundNs(kTxnsPerRound, kPostsPerTxn);
      } else {
        n = on_rig.RoundNs(kTxnsPerRound, kPostsPerTxn);
        o = off_rig.RoundNs(kTxnsPerRound, kPostsPerTxn);
      }
      off_ns.push_back(o);
      on_ns.push_back(n);
      if (o > 0) ratios.push_back(n / o);
    }
  }
  constexpr double kPosts = 1.0 * kTxnsPerRound * kPostsPerTxn;
  const double off = median(off_ns) / kPosts;
  const double on = median(on_ns) / kPosts;
  const double pct = ratios.empty() ? 0.0 : (median(ratios) - 1.0) * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", pct);
  benchmark::AddCustomContext("checksum_off_ns_per_post",
                              std::to_string(off));
  benchmark::AddCustomContext("checksum_on_ns_per_post", std::to_string(on));
  benchmark::AddCustomContext("checksum_overhead_pct", buf);
}

}  // namespace
}  // namespace bench
}  // namespace ode

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ode::bench::EmbedMetricsContext();
  ode::bench::EmbedTracingOverheadContext();
  ode::bench::EmbedContainmentOverheadContext();
  ode::bench::EmbedChecksumOverheadContext();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
