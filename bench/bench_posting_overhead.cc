// Experiment E1 (design goals 3–4, §5.3): who pays for triggers?
//
//   * volatile objects: plain C++ calls, zero trigger overhead;
//   * persistent objects of a class with NO declared events/triggers:
//     object load/store cost, but no posting;
//   * persistent objects with declared events but no ACTIVE triggers:
//     one posting that short-circuits on the footnote-3 fast path;
//   * persistent objects with N active triggers: index lookup + N FSM
//     advances (+ write-back of advanced TriggerStates).

#include "bench_common.h"

namespace ode {
namespace bench {
namespace {

/// Baseline: a volatile object — the wrapper machinery must never touch
/// it (design goal 4).
void BM_VolatileCall(benchmark::State& state) {
  Counter counter;
  for (auto _ : state) {
    counter.Hit();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_VolatileCall);

/// A class with no events or triggers declared at all: Invoke does the
/// load/call/store dance but posts nothing (design goal 3: only classes
/// with triggers pay).
void BM_PersistentCall_EventlessClass(benchmark::State& state) {
  Schema schema;
  schema.DeclareClass<Counter>("Counter").Method("Hit", &Counter::Hit);
  BENCH_CHECK_OK(schema.Freeze());
  Session::Options options;
  options.auto_cluster = false;
  auto session =
      Session::Open(StorageKind::kMainMemory, "", &schema, options);
  BENCH_CHECK_OK(session.status());
  PRef<Counter> ref;
  BENCH_CHECK_OK((*session)->WithTransaction([&](Transaction* txn) -> Status {
    auto r = (*session)->New(txn, Counter{});
    ODE_RETURN_NOT_OK(r.status());
    ref = *r;
    return Status::OK();
  }));
  auto txn = (*session)->Begin();
  BENCH_CHECK_OK(txn.status());
  for (auto _ : state) {
    BENCH_CHECK_OK((*session)->Invoke(*txn, ref, &Counter::Hit));
  }
  BENCH_CHECK_OK((*session)->Abort(*txn));
}
BENCHMARK(BM_PersistentCall_EventlessClass);

/// Declared events, zero active triggers: the posting hits the fast path.
void BM_PersistentCall_NoActiveTriggers(benchmark::State& state) {
  CounterHarness h(/*declared=*/4, /*active=*/0);
  auto txn = h.session->Begin();
  BENCH_CHECK_OK(txn.status());
  for (auto _ : state) {
    BENCH_CHECK_OK(h.session->Invoke(*txn, h.counter, &Counter::Hit));
  }
  BENCH_CHECK_OK(h.session->Abort(*txn));
  state.counters["fast_path_skips"] = static_cast<double>(
      h.session->triggers()->stats().fast_path_skips.load());
}
BENCHMARK(BM_PersistentCall_NoActiveTriggers);

/// N active perpetual triggers advancing on every call.
void BM_PersistentCall_ActiveTriggers(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CounterHarness h(/*declared=*/n, /*active=*/n);
  auto txn = h.session->Begin();
  BENCH_CHECK_OK(txn.status());
  for (auto _ : state) {
    BENCH_CHECK_OK(h.session->Invoke(*txn, h.counter, &Counter::Hit));
  }
  BENCH_CHECK_OK(h.session->Abort(*txn));
  state.counters["triggers"] = n;
}
BENCHMARK(BM_PersistentCall_ActiveTriggers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Arg(16);

/// Same with a masked expression — adds one predicate evaluation (an
/// object load + user lambda) per posting per trigger.
void BM_PersistentCall_MaskedTrigger(benchmark::State& state) {
  CounterHarness h(/*declared=*/1, /*active=*/1, "after Hit & Positive()",
                   CouplingMode::kImmediate, /*masked=*/true);
  auto txn = h.session->Begin();
  BENCH_CHECK_OK(txn.status());
  for (auto _ : state) {
    BENCH_CHECK_OK(h.session->Invoke(*txn, h.counter, &Counter::Hit));
  }
  BENCH_CHECK_OK(h.session->Abort(*txn));
  state.counters["mask_evals"] = static_cast<double>(
      h.session->triggers()->stats().mask_evaluations.load());
}
BENCHMARK(BM_PersistentCall_MaskedTrigger);

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
