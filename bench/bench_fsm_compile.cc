// Experiment E8 (§5.1.3): the paper compiles every trigger's FSM on every
// program start rather than persisting compiled machines ("we chose to
// compile an FSM every time"). This benchmark measures that startup cost:
// declaring and freezing a schema with N triggers.

#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace ode {
namespace bench {
namespace {

/// A plausible mix of trigger expressions (cycled).
const char* kExpressions[] = {
    "after Hit",
    "after Hit, Poke",
    "after Hit & Positive()",
    "Poke || after Hit",
    "relative((after Hit & Positive()), Poke)",
    "(after Hit, Poke)+",
};

void BM_SchemaFreeze_NTriggers(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  size_t total_states = 0;
  for (auto _ : state) {
    Schema schema;
    auto def = schema.DeclareClass<Counter>("Counter");
    def.Event("after Hit").Event("Poke").Method("Hit", &Counter::Hit);
    def.Mask("Positive()",
             [](const Counter& c, MaskEvalContext&) -> Result<bool> {
               return c.hits >= 0;
             });
    for (int i = 0; i < n; ++i) {
      def.Trigger("T" + std::to_string(i), kExpressions[i % 6],
                  [](Counter&, TriggerFireContext&) -> Status {
                    return Status::OK();
                  },
                  CouplingMode::kImmediate, true);
    }
    BENCH_CHECK_OK(schema.Freeze());
    benchmark::DoNotOptimize(schema);
    total_states = 0;
    for (const TriggerInfo& t :
         schema.RecordByName("Counter")->descriptor->triggers()) {
      total_states += t.fsm.NumStates();
    }
  }
  state.counters["triggers"] = n;
  state.counters["total_fsm_states"] = static_cast<double>(total_states);
}
BENCHMARK(BM_SchemaFreeze_NTriggers)->Arg(1)->Arg(10)->Arg(100)->Arg(500);

/// Session open on an existing database: recovery + priming the active-
/// trigger counts, the other component of program-start cost.
void BM_SessionOpen_WithActiveTriggers(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Schema schema;
  DeclareCounter(&schema, 1);
  BENCH_CHECK_OK(schema.Freeze());
  std::string path = "/tmp/ode_bench_open.db";
  std::remove(path.c_str());
  {
    Session::Options options;
    options.auto_cluster = false;
    auto session =
        Session::Open(StorageKind::kMainMemory, path, &schema, options);
    BENCH_CHECK_OK(session.status());
    BENCH_CHECK_OK(
        (*session)->WithTransaction([&](Transaction* txn) -> Status {
          for (int i = 0; i < n; ++i) {
            auto r = (*session)->New(txn, Counter{});
            ODE_RETURN_NOT_OK(r.status());
            ODE_RETURN_NOT_OK(
                (*session)->Activate(txn, *r, "T0").status());
          }
          return Status::OK();
        }));
    BENCH_CHECK_OK((*session)->Close());
  }
  for (auto _ : state) {
    Session::Options options;
    options.auto_cluster = false;
    auto session =
        Session::Open(StorageKind::kMainMemory, path, &schema, options);
    BENCH_CHECK_OK(session.status());
    benchmark::DoNotOptimize(session);
    BENCH_CHECK_OK((*session)->Close());
  }
  state.counters["active_triggers"] = n;
  std::remove(path.c_str());
}
BENCHMARK(BM_SessionOpen_WithActiveTriggers)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
