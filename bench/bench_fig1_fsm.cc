// Experiment F1 (Figure 1): reproduces the paper's only figure — the
// finite state machine compiled for
//
//   trigger AutoRaiseLimit(float amount) :
//       relative((after Buy & MoreCred()), after PayBill)
//
// The binary first prints the machine (4 states: start, mask state *,
// armed, accept — exactly the shape of Figure 1), then measures the
// compilation pipeline (§5.1.3: FSMs are recompiled at every program
// start, so compile cost is a real startup cost).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "events/event_parser.h"
#include "events/fsm.h"
#include "events/minimize.h"

namespace ode {
namespace {

constexpr Symbol kBigBuy = 2, kAfterPayBill = 3, kAfterBuy = 4;

CompileInput AutoRaiseLimitInput() {
  auto parsed =
      ParseEventExpr("relative((after Buy & MoreCred()), after PayBill)");
  CompileInput input;
  input.expr = parsed->expr;
  input.anchored = parsed->anchored;
  input.alphabet = {kBigBuy, kAfterPayBill, kAfterBuy};
  input.event_symbols = {{"BigBuy", kBigBuy},
                         {"after PayBill", kAfterPayBill},
                         {"after Buy", kAfterBuy}};
  input.mask_ids = {{"MoreCred()", 0}};
  return input;
}

void PrintFigure1() {
  auto fsm = CompileFsm(AutoRaiseLimitInput());
  if (!fsm.ok()) {
    std::fprintf(stderr, "figure 1 compile failed: %s\n",
                 fsm.status().ToString().c_str());
    std::abort();
  }
  std::printf(
      "== Figure 1: AutoRaiseLimit's finite state machine "
      "(paper shape: 4 states, state 1 masked, state 3 accepting) ==\n%s\n",
      fsm->ToTable({{kBigBuy, "BigBuy"},
                    {kAfterPayBill, "after PayBill"},
                    {kAfterBuy, "after Buy"}},
                   {{0, "MoreCred()"}})
          .c_str());
}

void BM_CompileAutoRaiseLimit(benchmark::State& state) {
  CompileInput input = AutoRaiseLimitInput();
  size_t states = 0;
  for (auto _ : state) {
    auto fsm = CompileFsm(input);
    benchmark::DoNotOptimize(fsm);
    states = fsm->NumStates();
  }
  state.counters["fsm_states"] = static_cast<double>(states);
}
BENCHMARK(BM_CompileAutoRaiseLimit);

void BM_ParseAutoRaiseLimit(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = ParseEventExpr(
        "relative((after Buy & MoreCred()), after PayBill)");
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseAutoRaiseLimit);

/// Compile cost vs expression size: a sequence of N basic events over an
/// alphabet of N symbols.
void BM_CompileSequenceOfN(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CompileInput input;
  input.anchored = false;
  ExprPtr expr;
  for (int i = 0; i < n; ++i) {
    std::string name = "e" + std::to_string(i);
    Symbol sym = static_cast<Symbol>(kFirstEventSymbol + i);
    input.alphabet.push_back(sym);
    input.event_symbols[name] = sym;
    ExprPtr basic = Basic(name);
    expr = expr == nullptr ? basic : Seq(expr, basic);
  }
  input.expr = expr;
  size_t states = 0;
  for (auto _ : state) {
    auto fsm = CompileFsm(input);
    benchmark::DoNotOptimize(fsm);
    states = fsm->NumStates();
  }
  state.counters["fsm_states"] = static_cast<double>(states);
  state.SetComplexityN(n);
}
BENCHMARK(BM_CompileSequenceOfN)->RangeMultiplier(2)->Range(2, 64)
    ->Complexity();

/// Compile cost of alternation-heavy expressions: (e0 || e1 || ... ), eN.
void BM_CompileAlternationOfN(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CompileInput input;
  ExprPtr expr;
  for (int i = 0; i < n; ++i) {
    std::string name = "e" + std::to_string(i);
    Symbol sym = static_cast<Symbol>(kFirstEventSymbol + i);
    input.alphabet.push_back(sym);
    input.event_symbols[name] = sym;
    ExprPtr basic = Basic(name);
    expr = expr == nullptr ? basic : Or(expr, basic);
  }
  input.expr = Seq(Star(expr), Basic("e0"));
  size_t states = 0;
  for (auto _ : state) {
    auto fsm = CompileFsm(input);
    benchmark::DoNotOptimize(fsm);
    states = fsm->NumStates();
  }
  state.counters["fsm_states"] = static_cast<double>(states);
}
BENCHMARK(BM_CompileAlternationOfN)->RangeMultiplier(4)->Range(2, 128);

}  // namespace
}  // namespace ode

int main(int argc, char** argv) {
  ode::PrintFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
