// Experiment E7 (§5.6, MM-Ode): the same trigger workload over the
// main-memory (Dali analogue) and disk (EOS analogue) storage managers.
// The two are source-compatible; the disk manager adds page I/O and (when
// sync_commits is on) an fsync per commit.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "storage/disk_storage_manager.h"
#include "storage/mm_storage_manager.h"

namespace ode {
namespace bench {
namespace {

enum class Backend { kMM, kDiskSync, kDiskNoSync };

std::unique_ptr<StorageManager> MakeStore(Backend backend,
                                          const std::string& path) {
  switch (backend) {
    case Backend::kMM:
      return std::make_unique<MMStorageManager>("");
    case Backend::kDiskSync: {
      DiskStorageManager::Options options;
      options.sync_commits = true;
      return std::make_unique<DiskStorageManager>(path, options);
    }
    case Backend::kDiskNoSync: {
      DiskStorageManager::Options options;
      options.sync_commits = false;
      return std::make_unique<DiskStorageManager>(path, options);
    }
  }
  return nullptr;
}

struct BackendHarness {
  explicit BackendHarness(Backend backend) {
    path = ::std::string("/tmp/ode_bench_storage.db");
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
    DeclareCounter(&schema, /*num_triggers=*/1);
    BENCH_CHECK_OK(schema.Freeze());
    Session::Options options;
    options.auto_cluster = false;
    auto s = Session::OpenWith(MakeStore(backend, path), &schema, options);
    BENCH_CHECK_OK(s.status());
    session = std::move(s).value();
    BENCH_CHECK_OK(session->WithTransaction([&](Transaction* txn) -> Status {
      auto r = session->New(txn, Counter{});
      ODE_RETURN_NOT_OK(r.status());
      counter = *r;
      return session->Activate(txn, counter, "T0").status();
    }));
  }
  ~BackendHarness() {
    session.reset();
    std::remove(path.c_str());
    std::remove((path + ".wal").c_str());
  }

  std::string path;
  Schema schema;
  std::unique_ptr<Session> session;
  PRef<Counter> counter;
};

/// One triggered update transaction per iteration.
void TriggeredTxn(benchmark::State& state, Backend backend) {
  BackendHarness h(backend);
  for (auto _ : state) {
    BENCH_CHECK_OK(h.session->WithTransaction([&](Transaction* txn) {
      return h.session->Invoke(txn, h.counter, &Counter::Hit);
    }));
  }
  StorageStats stats = h.session->db()->store()->stats();
  state.counters["page_writes"] = static_cast<double>(stats.page_writes);
  state.counters["wal_records"] = static_cast<double>(stats.wal_records);
}

void BM_TriggeredTxn_MainMemory(benchmark::State& state) {
  TriggeredTxn(state, Backend::kMM);
}
BENCHMARK(BM_TriggeredTxn_MainMemory);

void BM_TriggeredTxn_DiskNoSync(benchmark::State& state) {
  TriggeredTxn(state, Backend::kDiskNoSync);
}
BENCHMARK(BM_TriggeredTxn_DiskNoSync);

void BM_TriggeredTxn_DiskFsync(benchmark::State& state) {
  TriggeredTxn(state, Backend::kDiskSync);
}
BENCHMARK(BM_TriggeredTxn_DiskFsync);

/// Raw storage-manager object writes (no triggers, no session), batched
/// 64 per transaction.
void RawWrites(benchmark::State& state, Backend backend) {
  std::string path = "/tmp/ode_bench_storage_raw.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  auto store = MakeStore(backend, path);
  BENCH_CHECK_OK(store->Open());
  TxnId txn = 1;
  BENCH_CHECK_OK(store->BeginTxn(txn));
  auto oid = store->Allocate(txn, Slice(std::string(128, 'x')));
  BENCH_CHECK_OK(oid.status());
  BENCH_CHECK_OK(store->CommitTxn(txn));
  ++txn;

  std::string payload(128, 'y');
  int in_batch = 0;
  BENCH_CHECK_OK(store->BeginTxn(txn));
  for (auto _ : state) {
    BENCH_CHECK_OK(store->Write(txn, *oid, Slice(payload)));
    if (++in_batch == 64) {
      BENCH_CHECK_OK(store->CommitTxn(txn));
      BENCH_CHECK_OK(store->BeginTxn(++txn));
      in_batch = 0;
    }
  }
  BENCH_CHECK_OK(store->CommitTxn(txn));
  BENCH_CHECK_OK(store->Close());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

void BM_RawWrite_MainMemory(benchmark::State& state) {
  RawWrites(state, Backend::kMM);
}
BENCHMARK(BM_RawWrite_MainMemory);

void BM_RawWrite_DiskNoSync(benchmark::State& state) {
  RawWrites(state, Backend::kDiskNoSync);
}
BENCHMARK(BM_RawWrite_DiskNoSync);

void BM_RawWrite_DiskFsync(benchmark::State& state) {
  RawWrites(state, Backend::kDiskSync);
}
BENCHMARK(BM_RawWrite_DiskFsync);

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
