// Experiment E3 (§6): sparse transition lists vs the dense 2-D array the
// authors "originally planned".
//
// "However, this representation is very space inefficient for sparse
// arrays, so event identifiers had to be reused... It was found to be
// much cleaner to map each event to a unique integer and use a sparse
// array representation of the transition function."
//
// We sweep the alphabet size and report both the per-move latency and the
// resident bytes of: (a) the sparse Transition-list FSM, (b) a dense
// table sized to the class alphabet (the authors' abandoned fallback),
// and (c) a dense table sized to a global event-integer space (what
// uniquely-numbered events would have required).

#include <benchmark/benchmark.h>

#include "baselines/dense_fsm.h"
#include "common/random.h"
#include "events/fsm.h"

namespace ode {
namespace {

constexpr Symbol kGlobalSymbolSpace = 4096;

/// Builds an FSM over an alphabet of n events: (any*, e0, e1, ..., ek)
/// with k = min(n, 6) so state count stays modest while the alphabet (and
/// hence table width) grows.
Fsm MakeFsm(int n) {
  CompileInput input;
  ExprPtr expr;
  int pattern_len = n < 6 ? n : 6;
  for (int i = 0; i < n; ++i) {
    std::string name = "e" + std::to_string(i);
    Symbol sym = static_cast<Symbol>(kFirstEventSymbol + i);
    input.alphabet.push_back(sym);
    input.event_symbols[name] = sym;
    if (i < pattern_len) {
      ExprPtr basic = Basic(name);
      expr = expr == nullptr ? basic : Seq(expr, basic);
    }
  }
  input.expr = expr;
  auto fsm = CompileFsm(input);
  return std::move(fsm).value();
}

std::vector<Symbol> MakeStream(int n, size_t len) {
  Random rng(n);
  std::vector<Symbol> stream;
  stream.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    stream.push_back(
        static_cast<Symbol>(kFirstEventSymbol + rng.Uniform(n)));
  }
  return stream;
}

void BM_SparseMove(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Fsm fsm = MakeFsm(n);
  std::vector<Symbol> stream = MakeStream(n, 4096);
  int32_t s = fsm.start();
  size_t i = 0;
  for (auto _ : state) {
    s = fsm.Move(s, stream[i++ & 4095]);
    benchmark::DoNotOptimize(s);
  }
  state.counters["alphabet"] = n;
  state.counters["bytes"] = static_cast<double>(fsm.MemoryBytes());
  state.counters["states"] = static_cast<double>(fsm.NumStates());
}
BENCHMARK(BM_SparseMove)->RangeMultiplier(4)->Range(4, 256);

void BM_DenseMove_ClassAlphabet(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Fsm fsm = MakeFsm(n);
  DenseFsm dense(fsm, static_cast<Symbol>(kFirstEventSymbol + n));
  std::vector<Symbol> stream = MakeStream(n, 4096);
  int32_t s = fsm.start();
  size_t i = 0;
  for (auto _ : state) {
    s = dense.Move(s, stream[i++ & 4095]);
    benchmark::DoNotOptimize(s);
  }
  state.counters["alphabet"] = n;
  state.counters["bytes"] = static_cast<double>(dense.MemoryBytes());
}
BENCHMARK(BM_DenseMove_ClassAlphabet)->RangeMultiplier(4)->Range(4, 256);

void BM_DenseMove_GlobalSymbolSpace(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Fsm fsm = MakeFsm(n);
  DenseFsm dense(fsm, kGlobalSymbolSpace);
  std::vector<Symbol> stream = MakeStream(n, 4096);
  int32_t s = fsm.start();
  size_t i = 0;
  for (auto _ : state) {
    s = dense.Move(s, stream[i++ & 4095]);
    benchmark::DoNotOptimize(s);
  }
  state.counters["alphabet"] = n;
  state.counters["bytes"] = static_cast<double>(dense.MemoryBytes());
}
BENCHMARK(BM_DenseMove_GlobalSymbolSpace)->RangeMultiplier(4)->Range(4, 256);

}  // namespace
}  // namespace ode

BENCHMARK_MAIN();
