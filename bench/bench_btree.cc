// B+-tree micro-benchmarks: insert/lookup/scan throughput over both
// storage managers, and the fanout trade-off (bigger nodes mean fewer
// levels but more bytes rewritten per update).

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "objstore/btree.h"

namespace ode {
namespace bench {
namespace {

struct TreeHarness {
  explicit TreeHarness(size_t max_keys, int preload) {
    auto opened = Database::Open(StorageKind::kMainMemory, "");
    BENCH_CHECK_OK(opened.status());
    db = std::move(opened).value();
    auto t = db->txns()->Begin();
    BENCH_CHECK_OK(t.status());
    txn = *t;
    auto tr = BTree::Open(db.get(), txn, "bench", max_keys);
    BENCH_CHECK_OK(tr.status());
    tree = std::move(tr).value();
    Random rng(1);
    for (int i = 0; i < preload; ++i) {
      BENCH_CHECK_OK(tree->Put(
          txn, Slice(btree_key::FromU64(rng.Next() % 1000000)), Oid(i + 1)));
    }
  }
  ~TreeHarness() { BENCH_CHECK_OK(db->txns()->Commit(txn)); }

  std::unique_ptr<Database> db;
  Transaction* txn = nullptr;
  std::unique_ptr<BTree> tree;
};

void BM_BTreeInsert(benchmark::State& state) {
  size_t fanout = static_cast<size_t>(state.range(0));
  TreeHarness h(fanout, 0);
  uint64_t i = 0;
  for (auto _ : state) {
    BENCH_CHECK_OK(
        h.tree->Put(h.txn, Slice(btree_key::FromU64(i++)), Oid(i)));
  }
  state.counters["fanout"] = static_cast<double>(fanout);
  state.counters["entries"] = static_cast<double>(i);
}
BENCHMARK(BM_BTreeInsert)->Arg(4)->Arg(32)->Arg(128);

void BM_BTreeLookup(benchmark::State& state) {
  size_t fanout = static_cast<size_t>(state.range(0));
  TreeHarness h(fanout, 20000);
  Random rng(2);
  for (auto _ : state) {
    auto found = h.tree->Lookup(
        h.txn, Slice(btree_key::FromU64(rng.Next() % 1000000)));
    benchmark::DoNotOptimize(found);
  }
  state.counters["fanout"] = static_cast<double>(fanout);
}
BENCHMARK(BM_BTreeLookup)->Arg(4)->Arg(32)->Arg(128);

void BM_BTreeScan1000(benchmark::State& state) {
  TreeHarness h(32, 20000);
  for (auto _ : state) {
    size_t seen = 0;
    BENCH_CHECK_OK(h.tree->Scan(h.txn, Slice(), Slice(),
                                [&](Slice, Oid) {
                                  return ++seen < 1000;
                                }));
    benchmark::DoNotOptimize(seen);
  }
}
BENCHMARK(BM_BTreeScan1000);

}  // namespace
}  // namespace bench
}  // namespace ode

BENCHMARK_MAIN();
