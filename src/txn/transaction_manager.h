#ifndef ODE_TXN_TRANSACTION_MANAGER_H_
#define ODE_TXN_TRANSACTION_MANAGER_H_

#include <functional>
#include <memory>
#include <unordered_map>

#include "common/metrics.h"
#include "common/ordered_mutex.h"
#include "common/thread_annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "common/tracing.h"
#include "storage/lock_manager.h"
#include "storage/storage_manager.h"
#include "txn/transaction.h"

namespace ode {

/// Drives transaction begin/commit/abort across the storage manager and
/// lock manager, and exposes the hook points the trigger runtime needs to
/// implement the ECA coupling modes (paper §4.2, §5.5):
///
///  * pre-commit hook  — runs `end` (deferred) trigger actions and posts
///    `before tcomplete` events, still inside the committing transaction.
///    If it reports kTransactionAborted (a deferred action executed
///    tabort), the commit turns into an abort.
///  * pre-abort hook   — posts `before tabort` events inside the aborting
///    transaction (their effects roll back with it, per §5.5).
///  * post-commit hook — after a successful commit: runs the transaction's
///    `dependent` and `!dependent` action lists in system transactions.
///  * post-abort hook  — after an abort: runs only the `!dependent` list
///    (independent actions survive the abort; dependent ones die with it).
class TransactionManager {
 public:
  using Hook = std::function<Status(Transaction*)>;

  TransactionManager(StorageManager* store, LockManager* locks);

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  /// Starts a transaction. `system` marks trigger-spawned transactions.
  Result<Transaction*> Begin(bool system = false);

  /// Commits. May return kTransactionAborted if a deferred trigger aborted
  /// the transaction (in which case the transaction has been rolled back).
  ///
  /// Safe to call from many threads on distinct transactions: the
  /// storage manager's CommitTxn may block inside its group-commit
  /// pipeline (waiting on a leader's shared fsync) while this
  /// transaction's 2PL locks are still held. Locks are released only
  /// after CommitTxn returns OK — i.e. after the commit is durable and
  /// applied — so a waiter acquiring a released lock always reads the
  /// committed value. The post-commit hook runs on the committing
  /// thread, after release.
  Status Commit(Transaction* txn);

  /// Rolls back. `explicit_request` distinguishes an O++ tabort (which
  /// posts `before tabort` events) from an internal failure path.
  Status Abort(Transaction* txn, bool explicit_request = true);

  /// Outcome of a finished transaction (kActive if still running).
  TxnState Outcome(TxnId id) const;

  void SetPreCommitHook(Hook hook) { pre_commit_ = std::move(hook); }
  void SetPreAbortHook(Hook hook) { pre_abort_ = std::move(hook); }
  void SetPostCommitHook(Hook hook) { post_commit_ = std::move(hook); }
  void SetPostAbortHook(Hook hook) { post_abort_ = std::move(hook); }

  StorageManager* store() { return store_; }
  LockManager* locks() { return locks_; }

  /// Points this manager's counters at `registry` (the owning Database's
  /// registry). Standalone managers use a private registry, keeping the
  /// accessors below per-instance. Call before the first Begin.
  void BindMetrics(MetricsRegistry* registry);

  /// Points this manager at the owning Database's span tracer: sampled
  /// transactions get begin / pre-commit / commit-ack / abort spans.
  void BindTracer(Tracer* tracer) { tracer_ = tracer; }

  uint64_t commits() const { return commits_->value(); }
  uint64_t aborts() const { return aborts_->value(); }

 private:
  Status FinishAbort(Transaction* txn, bool run_pre_hook);

  StorageManager* store_;
  LockManager* locks_;

  Hook pre_commit_, pre_abort_, post_commit_, post_abort_;

  // Leaf-like: never held across storage/lock/trigger calls, so it ranks
  // deeper than TriggerIndex::dir_mu_, whose LoadDirectory queries
  // Outcome() while holding dir_mu_.
  mutable OrderedMutex mu_{lock_rank::kTxnManager, "txn_manager.mu"};
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> live_
      ODE_GUARDED_BY(mu_);
  std::unordered_map<TxnId, TxnState> outcomes_ ODE_GUARDED_BY(mu_);
  TxnId next_id_ ODE_GUARDED_BY(mu_) = 1;

  // Metrics (see BindMetrics).
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  Counter* commits_ = nullptr;
  Counter* aborts_ = nullptr;
  Gauge* active_ = nullptr;
  Histogram* commit_latency_ = nullptr;
  Tracer* tracer_ = nullptr;
};

}  // namespace ode

#endif  // ODE_TXN_TRANSACTION_MANAGER_H_
