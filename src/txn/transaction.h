#ifndef ODE_TXN_TRANSACTION_H_
#define ODE_TXN_TRANSACTION_H_

#include <cstdint>
#include <string>

#include "objstore/oid.h"

namespace ode {

enum class TxnState { kActive, kCommitted, kAborted };

const char* TxnStateToString(TxnState state);

/// A transaction descriptor. Created and owned by the TransactionManager;
/// user code holds a non-owning pointer while the transaction is active.
///
/// `system` transactions (paper §5.5) are "transactions not explicitly
/// requested by the user, but required for trigger processing" — they run
/// the actions of dependent/!dependent triggers after the detecting
/// transaction finishes.
class Transaction {
 public:
  Transaction(TxnId id, bool system) : id_(id), system_(system) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  bool system() const { return system_; }
  TxnState state() const { return state_; }
  bool active() const { return state_ == TxnState::kActive; }

  /// The O++ `tabort` statement: a trigger action (or user code) requests
  /// that this transaction abort. The request is honored by the enclosing
  /// Invoke/Commit machinery, which unwinds with kTransactionAborted.
  void RequestAbort(std::string reason) {
    abort_requested_ = true;
    abort_reason_ = std::move(reason);
  }
  bool abort_requested() const { return abort_requested_; }
  const std::string& abort_reason() const { return abort_reason_; }

  /// Monotonic nanosecond timestamp of Begin, for the begin->commit
  /// latency histogram (0 until the TransactionManager stamps it).
  uint64_t begin_nanos() const { return begin_nanos_; }

  /// Opaque per-transaction scratch slot owned by the trigger runtime.
  /// Set once by the TriggerManager on first use and cleared when the
  /// transaction's trigger context is destroyed (post-commit/post-abort
  /// hooks). A transaction is driven by one thread at a time, so the
  /// slot needs no synchronization; it exists so the event-posting hot
  /// path can reach its context without a map lookup under a lock.
  void* trigger_scratch() const { return trigger_scratch_; }
  void set_trigger_scratch(void* p) { trigger_scratch_ = p; }

 private:
  friend class TransactionManager;

  TxnId id_;
  bool system_;
  uint64_t begin_nanos_ = 0;
  TxnState state_ = TxnState::kActive;
  bool abort_requested_ = false;
  std::string abort_reason_;
  void* trigger_scratch_ = nullptr;
};

}  // namespace ode

#endif  // ODE_TXN_TRANSACTION_H_
