#include "txn/transaction_manager.h"

#include "common/logging.h"

namespace ode {

TransactionManager::TransactionManager(StorageManager* store,
                                       LockManager* locks)
    : store_(store), locks_(locks) {}

Result<Transaction*> TransactionManager::Begin(bool system) {
  std::unique_lock<std::mutex> lock(mu_);
  TxnId id = next_id_++;
  lock.unlock();
  ODE_RETURN_NOT_OK(store_->BeginTxn(id));
  auto txn = std::make_unique<Transaction>(id, system);
  Transaction* raw = txn.get();
  lock.lock();
  live_[id] = std::move(txn);
  return raw;
}

Status TransactionManager::Commit(Transaction* txn) {
  ODE_CHECK(txn != nullptr);
  if (!txn->active()) {
    return Status::Internal("commit of non-active transaction");
  }

  // Deferred trigger work runs inside the transaction; it may tabort.
  if (pre_commit_) {
    Status st = pre_commit_(txn);
    if (st.IsTransactionAborted() || txn->abort_requested()) {
      // Deferred action executed tabort: the whole transaction aborts.
      // before-tabort events are NOT posted here: the abort came from
      // commit processing, after the before-tcomplete boundary.
      Status ast = FinishAbort(txn, /*run_pre_hook=*/false);
      if (!ast.ok()) return ast;
      return st.IsTransactionAborted()
                 ? st
                 : Status::TransactionAborted(txn->abort_reason());
    }
    if (!st.ok()) return st;
  }

  ODE_RETURN_NOT_OK(store_->CommitTxn(txn->id()));
  locks_->ReleaseAll(txn->id());
  txn->state_ = TxnState::kCommitted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    outcomes_[txn->id()] = TxnState::kCommitted;
    ++commits_;
  }

  Status post = Status::OK();
  if (post_commit_) post = post_commit_(txn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_.erase(txn->id());  // destroys *txn
  }
  return post;
}

Status TransactionManager::Abort(Transaction* txn, bool explicit_request) {
  ODE_CHECK(txn != nullptr);
  if (!txn->active()) {
    return Status::Internal("abort of non-active transaction");
  }
  return FinishAbort(txn, /*run_pre_hook=*/explicit_request);
}

Status TransactionManager::FinishAbort(Transaction* txn, bool run_pre_hook) {
  if (run_pre_hook && pre_abort_) {
    // Posts `before tabort` events. Anything they change rolls back with
    // the transaction below; only !dependent entries they queue survive.
    Status st = pre_abort_(txn);
    if (!st.ok() && !st.IsTransactionAborted()) {
      ODE_LOG(kWarn) << "pre-abort hook failed: " << st.ToString();
    }
  }
  ODE_RETURN_NOT_OK(store_->AbortTxn(txn->id()));
  locks_->ReleaseAll(txn->id());
  txn->state_ = TxnState::kAborted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    outcomes_[txn->id()] = TxnState::kAborted;
    ++aborts_;
  }
  Status post = Status::OK();
  if (post_abort_) post = post_abort_(txn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_.erase(txn->id());
  }
  return post;
}

TxnState TransactionManager::Outcome(TxnId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = outcomes_.find(id);
  return it == outcomes_.end() ? TxnState::kActive : it->second;
}

}  // namespace ode
