#include "txn/transaction_manager.h"

#include "common/logging.h"

namespace ode {

TransactionManager::TransactionManager(StorageManager* store,
                                       LockManager* locks)
    : store_(store), locks_(locks) {
  owned_metrics_ = std::make_unique<MetricsRegistry>();
  BindMetrics(owned_metrics_.get());
}

void TransactionManager::BindMetrics(MetricsRegistry* registry) {
  commits_ = registry->GetCounter("ode_txn_commits_total");
  aborts_ = registry->GetCounter("ode_txn_aborts_total");
  active_ = registry->GetGauge("ode_txn_active");
  commit_latency_ = registry->GetHistogram("ode_txn_commit_latency_ns");
}

Result<Transaction*> TransactionManager::Begin(bool system) {
  TxnId id;
  {
    MutexLock lock(&mu_);
    id = next_id_++;
  }
  ODE_RETURN_NOT_OK(store_->BeginTxn(id));
  auto txn = std::make_unique<Transaction>(id, system);
  txn->begin_nanos_ = LatencyTimer::NowNanos();
  if (tracer_ != nullptr && tracer_->Sampled(id)) {
    Span s;
    s.kind = SpanKind::kTxnBegin;
    s.txn = id;
    if (system) s.detail = "system";
    tracer_->Instant(std::move(s));
  }
  Transaction* raw = txn.get();
  {
    MutexLock lock(&mu_);
    live_[id] = std::move(txn);
  }
  active_->Add(1);
  return raw;
}

Status TransactionManager::Commit(Transaction* txn) {
  ODE_CHECK(txn != nullptr);
  if (!txn->active()) {
    return Status::Internal("commit of non-active transaction");
  }

  const bool traced = tracer_ != nullptr && tracer_->Sampled(txn->id());

  // Deferred trigger work runs inside the transaction; it may tabort.
  if (pre_commit_) {
    const uint64_t pre_start = traced ? LatencyTimer::NowNanos() : 0;
    Status st = pre_commit_(txn);
    if (traced) {
      Span s;
      s.kind = SpanKind::kPreCommit;
      s.txn = txn->id();
      if (!st.ok()) s.detail = st.ToString();
      tracer_->Interval(std::move(s), pre_start, LatencyTimer::NowNanos());
    }
    if (st.IsTransactionAborted() || txn->abort_requested()) {
      // Deferred action executed tabort: the whole transaction aborts.
      // before-tabort events are NOT posted here: the abort came from
      // commit processing, after the before-tcomplete boundary.
      Status ast = FinishAbort(txn, /*run_pre_hook=*/false);
      if (!ast.ok()) return ast;
      return st.IsTransactionAborted()
                 ? st
                 : Status::TransactionAborted(txn->abort_reason());
    }
    if (!st.ok()) return st;
  }

  ODE_RETURN_NOT_OK(store_->CommitTxn(txn->id()));
  locks_->ReleaseAll(txn->id());
  txn->state_ = TxnState::kCommitted;
  if (traced) {
    Span s;
    s.kind = SpanKind::kCommitAck;
    s.txn = txn->id();
    tracer_->Instant(std::move(s));
  }
  if (txn->begin_nanos_ != 0 && commit_latency_->ShouldSample()) {
    commit_latency_->Record(LatencyTimer::NowNanos() - txn->begin_nanos_);
  }
  {
    MutexLock lock(&mu_);
    outcomes_[txn->id()] = TxnState::kCommitted;
    commits_->Inc();
    active_->Sub(1);
  }

  Status post = Status::OK();
  if (post_commit_) post = post_commit_(txn);
  {
    MutexLock lock(&mu_);
    live_.erase(txn->id());  // destroys *txn
  }
  return post;
}

Status TransactionManager::Abort(Transaction* txn, bool explicit_request) {
  ODE_CHECK(txn != nullptr);
  if (!txn->active()) {
    return Status::Internal("abort of non-active transaction");
  }
  return FinishAbort(txn, /*run_pre_hook=*/explicit_request);
}

Status TransactionManager::FinishAbort(Transaction* txn, bool run_pre_hook) {
  if (run_pre_hook && pre_abort_) {
    // Posts `before tabort` events. Anything they change rolls back with
    // the transaction below; only !dependent entries they queue survive.
    Status st = pre_abort_(txn);
    if (!st.ok() && !st.IsTransactionAborted()) {
      ODE_LOG(kWarn) << "pre-abort hook failed: " << st.ToString();
    }
  }
  ODE_RETURN_NOT_OK(store_->AbortTxn(txn->id()));
  locks_->ReleaseAll(txn->id());
  txn->state_ = TxnState::kAborted;
  if (tracer_ != nullptr && tracer_->Sampled(txn->id())) {
    Span s;
    s.kind = SpanKind::kTxnAbort;
    s.txn = txn->id();
    s.detail = txn->abort_reason();
    tracer_->Instant(std::move(s));
  }
  {
    MutexLock lock(&mu_);
    outcomes_[txn->id()] = TxnState::kAborted;
    aborts_->Inc();
    active_->Sub(1);
  }
  Status post = Status::OK();
  if (post_abort_) post = post_abort_(txn);
  {
    MutexLock lock(&mu_);
    live_.erase(txn->id());
  }
  return post;
}

TxnState TransactionManager::Outcome(TxnId id) const {
  MutexLock lock(&mu_);
  auto it = outcomes_.find(id);
  return it == outcomes_.end() ? TxnState::kActive : it->second;
}

}  // namespace ode
