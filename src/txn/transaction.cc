#include "txn/transaction.h"

namespace ode {

const char* TxnStateToString(TxnState state) {
  switch (state) {
    case TxnState::kActive:
      return "active";
    case TxnState::kCommitted:
      return "committed";
    case TxnState::kAborted:
      return "aborted";
  }
  return "?";
}

}  // namespace ode
