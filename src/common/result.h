#ifndef ODE_COMMON_RESULT_H_
#define ODE_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace ode {

/// A value-or-Status, in the style of arrow::Result. A `Result<T>` either
/// holds a `T` (and `ok()` is true) or an error `Status`.
template <typename T>
class Result {
 public:
  /// Implicit from value and from error Status, so functions can
  /// `return value;` or `return Status::NotFound(...);` interchangeably.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    ODE_CHECK(!std::get<Status>(rep_).ok())
        << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  T& value() & {
    ODE_CHECK(ok()) << "Result::value on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  const T& value() const& {
    ODE_CHECK(ok()) << "Result::value on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T&& value() && {
    ODE_CHECK(ok()) << "Result::value on error: " << status().ToString();
    return std::move(std::get<T>(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace ode

/// Evaluates `expr` (a Result<T>), propagating its Status on error,
/// otherwise assigning the value to `lhs`.
#define ODE_ASSIGN_OR_RETURN(lhs, expr)          \
  auto ODE_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!ODE_CONCAT_(_res_, __LINE__).ok())        \
    return ODE_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(ODE_CONCAT_(_res_, __LINE__)).value()

#define ODE_CONCAT_IMPL_(a, b) a##b
#define ODE_CONCAT_(a, b) ODE_CONCAT_IMPL_(a, b)

#endif  // ODE_COMMON_RESULT_H_
