#include "common/hash.h"

namespace ode {

uint64_t Hash64(const void* data, size_t size, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

/// Slicing-by-4 lookup tables, built once on first use. table[0] is the
/// classic byte-at-a-time CRC32C table; table[k] advances a byte that
/// sits k positions deeper in the 4-byte word.
struct Crc32cTables {
  uint32_t t[4][256];
  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int j = 0; j < 8; ++j) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xff];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xff];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xff];
    }
  }
};

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  static const Crc32cTables tables;
  const auto* t = tables.t;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  while (size > 0 && (reinterpret_cast<uintptr_t>(p) & 3) != 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xff];
    --size;
  }
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The word-at-a-time kernel folds 4 bytes per step; it relies on the
  // little-endian byte order every supported target uses (the on-disk
  // format already bakes that assumption in).
  while (size >= 4) {
    uint32_t word;
    __builtin_memcpy(&word, p, 4);
    crc ^= word;
    crc = t[3][crc & 0xff] ^ t[2][(crc >> 8) & 0xff] ^
          t[1][(crc >> 16) & 0xff] ^ t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
#endif
  while (size > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xff];
    --size;
  }
  return ~crc;
}

uint64_t MixU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace ode
