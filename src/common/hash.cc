#include "common/hash.h"

namespace ode {

uint64_t Hash64(const void* data, size_t size, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t MixU64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace ode
