#ifndef ODE_COMMON_THREAD_ANNOTATIONS_H_
#define ODE_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (Abseil-style macro spelling).
///
/// These macros let the compiler machine-check the lock discipline that
/// docs/concurrency.md documents in prose: which mutex guards which
/// member (`ODE_GUARDED_BY`), which functions must be called with a lock
/// held (`ODE_REQUIRES` — the `*Locked()` helper convention), and which
/// functions acquire/release a lock for their caller
/// (`ODE_ACQUIRE`/`ODE_RELEASE`). Under Clang the `ODE_THREAD_SAFETY`
/// CMake lane turns violations into hard errors
/// (`-Wthread-safety -Werror=thread-safety`); under other compilers every
/// macro expands to nothing, so the annotations are pure documentation
/// with zero code-generation effect.
///
/// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the
/// semantics of each attribute.

#if defined(__clang__)
#define ODE_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define ODE_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Marks a class as a lockable capability ("mutex" is the diagnostic
/// noun Clang uses when reporting violations).
#define ODE_CAPABILITY(x) ODE_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (our MutexLock family).
#define ODE_SCOPED_CAPABILITY \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member may only be accessed while the named mutex is held.
#define ODE_GUARDED_BY(x) ODE_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member: the pointee (not the pointer) is guarded.
#define ODE_PT_GUARDED_BY(x) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Declares a static acquisition-order edge between two mutexes.
#define ODE_ACQUIRED_BEFORE(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define ODE_ACQUIRED_AFTER(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Function requires the capability held exclusively (not acquired by
/// the function itself) — the `*Locked()` helper annotation.
#define ODE_REQUIRES(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// As ODE_REQUIRES, but shared (reader) mode suffices.
#define ODE_REQUIRES_SHARED(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define ODE_ACQUIRE(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define ODE_ACQUIRE_SHARED(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry).
#define ODE_RELEASE(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define ODE_RELEASE_SHARED(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
/// Releases a capability acquired in either exclusive or shared mode
/// (destructors of guards that serve both).
#define ODE_RELEASE_GENERIC(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `ret`.
#define ODE_TRY_ACQUIRE(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define ODE_TRY_ACQUIRE_SHARED(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention for
/// functions that acquire it themselves).
#define ODE_EXCLUDES(...) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (teaches the analysis
/// a fact it cannot derive).
#define ODE_ASSERT_CAPABILITY(x) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#define ODE_ASSERT_SHARED_CAPABILITY(x) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

/// Function returns a reference to the named capability.
#define ODE_RETURN_CAPABILITY(x) \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Turns the analysis off for one function (or lambda). Used only where
/// the analysis cannot model the code — condition-variable wait
/// predicates (the wait releases and reacquires the mutex behind the
/// analysis's back) and the group-commit leader/follower handoff —
/// always with a comment saying why; the runtime lock-rank validator
/// still covers these paths in debug builds.
#define ODE_NO_THREAD_SAFETY_ANALYSIS \
  ODE_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // ODE_COMMON_THREAD_ANNOTATIONS_H_
