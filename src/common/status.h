#ifndef ODE_COMMON_STATUS_H_
#define ODE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace ode {

/// Error categories used throughout the Ode reproduction. The library does
/// not throw exceptions; every fallible operation returns a `Status` or a
/// `Result<T>` (see result.h), in the style of Arrow/RocksDB.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kCorruption,
  kIOError,
  kTransactionAborted,
  kDeadlock,
  kLockTimeout,
  kNotSupported,
  kInternal,
  kParseError,
  kCascadeOverflow,
};

/// Returns the canonical lowercase name of a status code ("ok", "io error"…).
const char* StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value. OK statuses carry no
/// allocation; error statuses carry a code and a human-readable message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status TransactionAborted(std::string msg) {
    return Status(StatusCode::kTransactionAborted, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status LockTimeout(std::string msg) {
    return Status(StatusCode::kLockTimeout, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  /// A trigger cascade exhausted its firing budget (depth or total action
  /// count) and was cut — see TriggerManager::Options::max_cascade_depth.
  static Status CascadeOverflow(std::string msg) {
    return Status(StatusCode::kCascadeOverflow, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsLockTimeout() const { return code_ == StatusCode::kLockTimeout; }
  bool IsTransactionAborted() const {
    return code_ == StatusCode::kTransactionAborted;
  }
  bool IsCascadeOverflow() const {
    return code_ == StatusCode::kCascadeOverflow;
  }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace ode

/// Propagates a non-OK Status from the current function.
#define ODE_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::ode::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // ODE_COMMON_STATUS_H_
