#ifndef ODE_COMMON_METRICS_H_
#define ODE_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/thread_annotations.h"

namespace ode {

class MetricsRegistry;

namespace metrics_internal {

/// Write-path shard count for counters and histograms. Each shard is one
/// cache line, so concurrent sessions incrementing the same metric from
/// different threads do not bounce a single line between cores.
constexpr size_t kShards = 8;

/// Histogram buckets are powers of two: bucket 0 holds the value 0 and
/// bucket i (1 <= i <= 64) holds values in [2^(i-1), 2^i - 1]. 65 buckets
/// cover the full uint64_t range, so nanosecond latencies never overflow.
constexpr size_t kBuckets = 65;

inline size_t BucketIndex(uint64_t value) {
  return value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
}

/// Inclusive bounds of bucket `i` (see kBuckets).
uint64_t BucketLower(size_t i);
uint64_t BucketUpper(size_t i);

struct alignas(64) Cell {
  std::atomic<uint64_t> v{0};
};

/// Stable per-thread shard assignment. Derived from the address of a
/// zero-initialized thread_local so the lookup compiles to a TLS base
/// load with no dynamic-initialization guard — this sits under every
/// Counter::Inc on the posting hot path, where a guarded thread_local
/// (or an out-of-line call) would dominate the fetch_add itself.
/// Fibonacci hashing spreads the (heavily aligned) per-thread TLS
/// addresses across shards.
inline size_t ShardIndex() {
  static_assert((kShards & (kShards - 1)) == 0, "kShards must be 2^k");
  thread_local char marker;
  const auto p = reinterpret_cast<uintptr_t>(&marker);
  return static_cast<size_t>((p * uint64_t{0x9E3779B97F4A7C15}) >>
                             (64 - std::bit_width(kShards - 1)));
}

}  // namespace metrics_internal

/// Monotonic counter with sharded relaxed-atomic cells. All writes are
/// monitoring-only and impose no ordering; read value() only for
/// reporting, never for synchronization.
class Counter {
 public:
  void Inc(uint64_t n = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    cells_[metrics_internal::ShardIndex()].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// std::atomic-compatible spellings, so code (and tests) written
  /// against the former ad-hoc atomic Stats structs keep compiling.
  uint64_t load() const { return value(); }
  operator uint64_t() const { return value(); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  const std::atomic<bool>* enabled_;
  std::array<metrics_internal::Cell, metrics_internal::kShards> cells_;
};

/// Up/down gauge (single atomic: gauges sit on cold paths).
class Gauge {
 public:
  void Set(int64_t v) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  void Add(int64_t n) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  void Sub(int64_t n) { Add(-n); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  const std::atomic<bool>* enabled_;
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of one histogram, from which p50/p95/p99/max (and
/// any other percentile) are derived. Bucket counts are non-cumulative.
struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, metrics_internal::kBuckets> buckets{};

  /// Estimated value at percentile `p` in [0, 100], interpolated linearly
  /// inside the log2 bucket that holds the rank and clamped to max. 0 if
  /// the histogram is empty.
  double Percentile(double p) const;
  double Mean() const { return count == 0 ? 0.0 : double(sum) / count; }
};

/// Log-bucketed latency/size histogram. Record() is sharded like Counter;
/// ShouldSample() implements optional 1-in-N sampling so sub-microsecond
/// hot paths don't pay two clock reads per operation (see LatencyTimer).
class Histogram {
 public:
  void Record(uint64_t value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    Shard& shard = shards_[metrics_internal::ShardIndex()];
    shard.buckets[metrics_internal::BucketIndex(value)].v.fetch_add(
        1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t cur = shard.max.load(std::memory_order_relaxed);
    while (value > cur &&
           !shard.max.compare_exchange_weak(cur, value,
                                            std::memory_order_relaxed)) {
    }
  }

  /// True if this operation should be timed: the registry is enabled and
  /// this thread's sampling tick hits. With sample_every == 1 this is
  /// just the enabled check.
  bool ShouldSample() {
    if (!enabled_->load(std::memory_order_relaxed)) return false;
    if (sample_mask_ == 0) return true;
    return (Tick() & sample_mask_) == 0;
  }

  uint32_t sample_every() const { return sample_mask_ + 1; }

  HistogramData data() const;

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, uint32_t sample_every)
      : enabled_(enabled),
        sample_mask_(sample_every <= 1 ? 0
                                       : std::bit_ceil(sample_every) - 1) {}

  static uint32_t Tick() {
    thread_local uint32_t tick = 0;
    return tick++;
  }

  struct Shard {
    std::array<metrics_internal::Cell, metrics_internal::kBuckets> buckets;
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };

  const std::atomic<bool>* enabled_;
  const uint32_t sample_mask_;
  std::array<Shard, metrics_internal::kShards> shards_;
};

/// One metric in a snapshot.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;
  int64_t gauge = 0;
  uint32_t sample_every = 1;  // histograms only
  HistogramData histogram;
};

/// Point-in-time view of a whole registry, with delta semantics for
/// before/after measurements.
class MetricsSnapshot {
 public:
  const std::vector<MetricValue>& metrics() const { return metrics_; }

  /// nullptr if no metric with that name exists.
  const MetricValue* Find(const std::string& name) const;

  /// Counter value by name (0 if absent) — convenience for tests/benches.
  uint64_t CounterValue(const std::string& name) const;

  /// Histogram by name (empty if absent).
  HistogramData HistogramValue(const std::string& name) const;

  /// this - earlier: counters and histogram buckets/count/sum subtract
  /// (clamped at 0 for metrics absent in `earlier`); gauges and histogram
  /// max keep the current value. Metrics only present in `earlier` are
  /// dropped.
  MetricsSnapshot Delta(const MetricsSnapshot& earlier) const;

  /// Prometheus-style text exposition (the format DumpMetricsText emits).
  std::string ToText() const;

 private:
  friend class MetricsRegistry;
  std::vector<MetricValue> metrics_;  // sorted by name
};

/// A named collection of counters, gauges, and histograms with one
/// enable/disable switch. Get*() is create-or-get: the first call with a
/// name allocates the metric, later calls return the same object, and
/// pointers stay valid for the registry's lifetime (metrics are never
/// removed). Intended use: resolve pointers once at component
/// construction, then write through them lock-free on hot paths.
///
/// Each Database owns one registry shared by its storage, lock,
/// transaction, and trigger layers (Session::metrics() exposes it);
/// components constructed standalone fall back to a private registry, so
/// per-instance counts never bleed between unrelated instances.
/// MetricsRegistry::Default() is the process-wide registry for code with
/// no natural owner.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry (never destroyed).
  static MetricsRegistry* Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `sample_every` (rounded up to a power of two) makes ShouldSample()
  /// time only 1 in N operations — for hot paths where two clock reads
  /// per op would be measurable. It is fixed at first Get.
  Histogram* GetHistogram(const std::string& name, uint32_t sample_every = 1);

  /// When disabled, every Inc/Add/Record/ShouldSample is a relaxed load
  /// plus branch — the near-zero-cost path. Values recorded while
  /// disabled are simply dropped.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  MetricsSnapshot Snapshot() const;
  std::string DumpText() const { return Snapshot().ToText(); }

 private:
  std::atomic<bool> enabled_{true};
  // Deepest rank in the table: Get* is called from BindMetrics paths
  // that hold the fault env's mu_, and instrument cells returned from
  // here are lock-free atomics, so mu_ never nests under anything else.
  mutable OrderedMutex mu_{lock_rank::kMetrics, "metrics.mu"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      ODE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ ODE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      ODE_GUARDED_BY(mu_);
};

/// Scoped latency recorder: reads the clock only when the histogram
/// samples this operation, records nanoseconds on destruction.
class LatencyTimer {
 public:
  explicit LatencyTimer(Histogram* histogram) {
    if (histogram != nullptr && histogram->ShouldSample()) {
      histogram_ = histogram;
      start_ = NowNanos();
    }
  }
  ~LatencyTimer() {
    if (histogram_ != nullptr) histogram_->Record(NowNanos() - start_);
  }

  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

  /// Monotonic nanoseconds (steady_clock).
  static uint64_t NowNanos();

 private:
  Histogram* histogram_ = nullptr;
  uint64_t start_ = 0;
};

}  // namespace ode

#endif  // ODE_COMMON_METRICS_H_
