#include "common/coding.h"

#include <cstring>

namespace ode {

void Encoder::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void Encoder::PutFloat(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void Encoder::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  buf_.push_back(static_cast<char>(v));
}

void Encoder::PutBytes(Slice s) {
  PutVarint(s.size());
  PutRaw(s.data(), s.size());
}

void Encoder::PutRaw(const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

template <typename T>
Status Decoder::GetFixed(T* v) {
  if (remaining() < sizeof(T)) {
    return Status::Corruption("decoder: truncated fixed-width value");
  }
  T out = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    out |= static_cast<T>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
  }
  pos_ += sizeof(T);
  *v = out;
  return Status::OK();
}

Status Decoder::GetU8(uint8_t* v) { return GetFixed(v); }
Status Decoder::GetU16(uint16_t* v) { return GetFixed(v); }
Status Decoder::GetU32(uint32_t* v) { return GetFixed(v); }
Status Decoder::GetU64(uint64_t* v) { return GetFixed(v); }

Status Decoder::GetI32(int32_t* v) {
  uint32_t u;
  ODE_RETURN_NOT_OK(GetU32(&u));
  *v = static_cast<int32_t>(u);
  return Status::OK();
}

Status Decoder::GetI64(int64_t* v) {
  uint64_t u;
  ODE_RETURN_NOT_OK(GetU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status Decoder::GetBool(bool* v) {
  uint8_t b;
  ODE_RETURN_NOT_OK(GetU8(&b));
  *v = (b != 0);
  return Status::OK();
}

Status Decoder::GetDouble(double* v) {
  uint64_t bits;
  ODE_RETURN_NOT_OK(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status Decoder::GetFloat(float* v) {
  uint32_t bits;
  ODE_RETURN_NOT_OK(GetU32(&bits));
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status Decoder::GetVarint(uint64_t* v) {
  uint64_t out = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) {
      return Status::Corruption("decoder: truncated varint");
    }
    if (shift > 63) {
      return Status::Corruption("decoder: varint too long");
    }
    uint8_t byte = static_cast<unsigned char>(data_[pos_++]);
    out |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *v = out;
  return Status::OK();
}

Status Decoder::GetString(std::string* s) {
  uint64_t len;
  ODE_RETURN_NOT_OK(GetVarint(&len));
  if (remaining() < len) {
    return Status::Corruption("decoder: truncated string");
  }
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status Decoder::GetBytes(std::vector<char>* out) {
  uint64_t len;
  ODE_RETURN_NOT_OK(GetVarint(&len));
  if (remaining() < len) {
    return Status::Corruption("decoder: truncated bytes");
  }
  out->assign(data_.data() + pos_, data_.data() + pos_ + len);
  pos_ += len;
  return Status::OK();
}

Status Decoder::GetRaw(void* out, size_t size) {
  if (remaining() < size) {
    return Status::Corruption("decoder: truncated raw read");
  }
  std::memcpy(out, data_.data() + pos_, size);
  pos_ += size;
  return Status::OK();
}

}  // namespace ode
