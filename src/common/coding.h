#ifndef ODE_COMMON_CODING_H_
#define ODE_COMMON_CODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace ode {

/// Appends primitive values to a byte buffer in a fixed little-endian
/// format. Used to serialize persistent objects, trigger states, catalog
/// entries, and WAL records.
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }
  void PutI32(int32_t v) { PutFixed(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutFixed(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutDouble(double v);
  void PutFloat(float v);

  /// Unsigned LEB128; compact for small values (event numbers, state ids).
  void PutVarint(uint64_t v);

  /// Length-prefixed (varint) byte string.
  void PutString(const std::string& s) { PutBytes(Slice(s)); }
  void PutBytes(Slice s);

  /// Raw bytes with no length prefix (caller knows the size).
  void PutRaw(const void* data, size_t size);

  const std::vector<char>& buffer() const { return buf_; }
  std::vector<char> Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::vector<char> buf_;
};

/// Reads values written by Encoder. All getters return Status so corrupt
/// or truncated images surface as kCorruption rather than UB.
class Decoder {
 public:
  explicit Decoder(Slice data) : data_(data) {}

  Status GetU8(uint8_t* v);
  Status GetU16(uint16_t* v);
  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI32(int32_t* v);
  Status GetI64(int64_t* v);
  Status GetBool(bool* v);
  Status GetDouble(double* v);
  Status GetFloat(float* v);
  Status GetVarint(uint64_t* v);
  Status GetString(std::string* s);
  Status GetBytes(std::vector<char>* out);
  Status GetRaw(void* out, size_t size);

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  Status GetFixed(T* v);

  Slice data_;
  size_t pos_ = 0;
};

}  // namespace ode

#endif  // ODE_COMMON_CODING_H_
