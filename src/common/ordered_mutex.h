#ifndef ODE_COMMON_ORDERED_MUTEX_H_
#define ODE_COMMON_ORDERED_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

/// Ranked, annotated mutexes — the enforcement half of the lock
/// discipline that docs/concurrency.md documents.
///
/// Every mutex in the four layers is an OrderedMutex (or
/// OrderedSharedMutex) carrying a static rank from ode::lock_rank. Two
/// enforcement mechanisms share the one declaration:
///
///  1. Compile time (Clang only): the ODE_CAPABILITY annotation plus the
///     ODE_GUARDED_BY/ODE_REQUIRES sweep lets `-Wthread-safety` prove
///     that guarded members are only touched with the right lock held.
///  2. Run time (debug/sanitizer builds): a thread-local stack of held
///     ranks CHECK-fails the instant any thread acquires a mutex whose
///     rank is not strictly greater than the highest rank it already
///     holds — out-of-order acquisition, duplicate-rank acquisition
///     (which also catches shared→exclusive upgrade attempts and
///     holding two same-rank stripes at once), and self-deadlock all
///     abort with both lock names in the message, *before* blocking.
///
/// The runtime validator is compiled in only when ODE_LOCK_RANK_CHECKS
/// is 1 (CMake turns it on for Debug, ODE_ASAN, ODE_TSAN, ODE_UBSAN and
/// explicit -DODE_RANK_CHECKS=ON builds). In Release builds lock() is a
/// straight inline call to std::mutex::lock() — zero added work.

#if !defined(ODE_LOCK_RANK_CHECKS)
#define ODE_LOCK_RANK_CHECKS 0
#endif

namespace ode {

/// The global acquisition order: a thread may only acquire a mutex whose
/// rank is STRICTLY GREATER than every rank it already holds. Lower rank
/// = outer lock. Gaps are deliberate — new mutexes slot in between
/// without renumbering. docs/concurrency.md carries the full table (one
/// row per mutex: what it guards, what may be acquired under it);
/// keep both in sync.
namespace lock_rank {

// -- Trigger runtime (outermost: held across storage/txn-manager calls
//    in bounded, audited spots) --
inline constexpr uint16_t kTriggerIndexDir = 110;    // TriggerIndex::dir_mu_
inline constexpr uint16_t kTriggerTypes = 120;       // TriggerManager::types_mu_
inline constexpr uint16_t kTriggerCtxShard = 130;    // TriggerManager ctx stripes
inline constexpr uint16_t kTriggerCountShard = 140;  // TriggerManager count stripes
inline constexpr uint16_t kTriggerContainment = 150; // TriggerManager::containment_mu_

// -- Storage commit pipeline (the documented hierarchy
//    commit > wal > apply > state > pool; ws is the workspace-map leaf) --
inline constexpr uint16_t kStorageCommit = 300;      // DiskStorageManager::commit_mu_
inline constexpr uint16_t kStorageWal = 310;         // DiskStorageManager::wal_mu_
inline constexpr uint16_t kStorageApply = 320;       // DiskStorageManager::apply_mu_
inline constexpr uint16_t kStorageState = 330;       // DiskStorageManager::state_mu_
inline constexpr uint16_t kStoragePool = 340;        // DiskStorageManager::pool_mu_
inline constexpr uint16_t kStorageWorkspaces = 350;  // DiskStorageManager::ws_mu_
inline constexpr uint16_t kMmStore = 360;            // MMStorageManager::mu_

// -- Cross-layer services --
inline constexpr uint16_t kLockTable = 400;          // LockManager::mu_
// Deeper than kTriggerIndexDir: TriggerIndex::LoadDirectory checks the
// directory creator's outcome (TransactionManager::Outcome) under
// dir_mu_. The manager's mu_ is leaf-like otherwise (never held across
// calls into any other subsystem).
inline constexpr uint16_t kTxnManager = 420;         // TransactionManager::mu_

// -- Infrastructure leaves (acquirable from under any of the above) --
inline constexpr uint16_t kFaultEnv = 500;           // FaultInjectionEnv::mu_
inline constexpr uint16_t kTriggerTraceRing = 520;   // TriggerTraceRing::mu_
inline constexpr uint16_t kTracer = 530;             // Tracer::mu_
inline constexpr uint16_t kEventRegistry = 540;      // EventRegistry::mu_
inline constexpr uint16_t kMetrics = 560;            // MetricsRegistry::mu_

}  // namespace lock_rank

namespace rank_internal {

/// Validates (then records) acquiring `mu` at `rank` on this thread;
/// CHECK-fails on any rank not strictly above the thread's current top.
/// Called BEFORE blocking on the lock, so a would-deadlock acquisition
/// aborts with a diagnostic instead of hanging.
void NoteAcquire(uint16_t rank, const void* mu, const char* name);
/// Records releasing `mu`; CHECK-fails if this thread never acquired it.
void NoteRelease(const void* mu, const char* name);
/// Number of ranked locks the calling thread currently holds (tests).
size_t HeldCount();

}  // namespace rank_internal

/// std::mutex with a static rank and thread-safety annotations.
class ODE_CAPABILITY("mutex") OrderedMutex {
 public:
  OrderedMutex(uint16_t rank, const char* name) : rank_(rank), name_(name) {}

  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() ODE_ACQUIRE() {
#if ODE_LOCK_RANK_CHECKS
    rank_internal::NoteAcquire(rank_, this, name_);
#endif
    mu_.lock();
  }

  void unlock() ODE_RELEASE() {
    mu_.unlock();
#if ODE_LOCK_RANK_CHECKS
    rank_internal::NoteRelease(this, name_);
#endif
  }

  uint16_t rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const uint16_t rank_;
  const char* const name_;
};

/// std::shared_mutex with a static rank and thread-safety annotations.
/// Shared and exclusive acquisitions use the same rank, so the
/// duplicate-rank check also refuses an in-place shared→exclusive
/// upgrade attempt (which std::shared_mutex would deadlock on).
class ODE_CAPABILITY("shared_mutex") OrderedSharedMutex {
 public:
  OrderedSharedMutex(uint16_t rank, const char* name)
      : rank_(rank), name_(name) {}

  OrderedSharedMutex(const OrderedSharedMutex&) = delete;
  OrderedSharedMutex& operator=(const OrderedSharedMutex&) = delete;

  void lock() ODE_ACQUIRE() {
#if ODE_LOCK_RANK_CHECKS
    rank_internal::NoteAcquire(rank_, this, name_);
#endif
    mu_.lock();
  }

  void unlock() ODE_RELEASE() {
    mu_.unlock();
#if ODE_LOCK_RANK_CHECKS
    rank_internal::NoteRelease(this, name_);
#endif
  }

  void lock_shared() ODE_ACQUIRE_SHARED() {
#if ODE_LOCK_RANK_CHECKS
    rank_internal::NoteAcquire(rank_, this, name_);
#endif
    mu_.lock_shared();
  }

  void unlock_shared() ODE_RELEASE_SHARED() {
    mu_.unlock_shared();
#if ODE_LOCK_RANK_CHECKS
    rank_internal::NoteRelease(this, name_);
#endif
  }

  uint16_t rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const uint16_t rank_;
  const char* const name_;
};

/// RAII exclusive lock on an OrderedMutex. Used instead of
/// std::lock_guard because the standard guards carry no thread-safety
/// annotations, so Clang could not see the acquisition.
class ODE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(OrderedMutex* mu) ODE_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~MutexLock() ODE_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  OrderedMutex* const mu_;
};

/// RAII shared (reader) lock on an OrderedSharedMutex.
class ODE_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(OrderedSharedMutex* mu) ODE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->lock_shared();
  }
  ~ReaderMutexLock() ODE_RELEASE() { mu_->unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  OrderedSharedMutex* const mu_;
};

/// RAII exclusive (writer) lock on an OrderedSharedMutex.
class ODE_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(OrderedSharedMutex* mu) ODE_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~WriterMutexLock() ODE_RELEASE() { mu_->unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  OrderedSharedMutex* const mu_;
};

/// Condition variable over OrderedMutex. std::condition_variable needs a
/// raw std::mutex, so this wraps condition_variable_any with an adapter
/// that routes the wait's internal unlock/relock through the annotated
/// (and rank-tracked) lock()/unlock() — the held-rank stack stays
/// correct across the wait, and a relock that would violate the order
/// (impossible today, but cheap to keep checked) still aborts.
///
/// Wait-with-predicate callers annotate the predicate lambda
/// ODE_NO_THREAD_SAFETY_ANALYSIS: Clang analyzes a lambda body as a
/// free function, so it cannot see that the wait holds the mutex around
/// every predicate call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(OrderedMutex& mu) ODE_REQUIRES(mu) {
    LockAdapter adapter(mu);
    cv_.wait(adapter);
  }

  template <typename Pred>
  void Wait(OrderedMutex& mu, Pred pred) ODE_REQUIRES(mu) {
    LockAdapter adapter(mu);
    cv_.wait(adapter, std::move(pred));
  }

  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(OrderedMutex& mu, std::chrono::duration<Rep, Period> timeout,
               Pred pred) ODE_REQUIRES(mu) {
    LockAdapter adapter(mu);
    return cv_.wait_for(adapter, timeout, std::move(pred));
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(OrderedMutex& mu,
                           std::chrono::time_point<Clock, Duration> deadline)
      ODE_REQUIRES(mu) {
    LockAdapter adapter(mu);
    return cv_.wait_until(adapter, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// BasicLockable view of an OrderedMutex for condition_variable_any.
  /// NO_TSA: these run inside the wait with the capability state Clang
  /// cannot track (released-while-waiting); rank bookkeeping is intact
  /// because they delegate to the tracked lock()/unlock().
  class LockAdapter {
   public:
    explicit LockAdapter(OrderedMutex& mu) : mu_(mu) {}
    void lock() ODE_NO_THREAD_SAFETY_ANALYSIS { mu_.lock(); }
    void unlock() ODE_NO_THREAD_SAFETY_ANALYSIS { mu_.unlock(); }

   private:
    OrderedMutex& mu_;
  };

  std::condition_variable_any cv_;
};

}  // namespace ode

#endif  // ODE_COMMON_ORDERED_MUTEX_H_
