#include "common/tracing.h"

#include <cinttypes>
#include <cstdio>

namespace ode {

const char* SpanKindToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kTxnBegin:
      return "txn-begin";
    case SpanKind::kLockAcquire:
      return "lock-acquire";
    case SpanKind::kEventPosted:
      return "event-posted";
    case SpanKind::kFastPathSkip:
      return "fast-path-skip";
    case SpanKind::kFsmTransition:
      return "fsm-transition";
    case SpanKind::kMaskEval:
      return "mask-eval";
    case SpanKind::kAcceptReached:
      return "accept-reached";
    case SpanKind::kActionScheduled:
      return "action-scheduled";
    case SpanKind::kActionRun:
      return "action-run";
    case SpanKind::kStateWriteBack:
      return "state-writeback";
    case SpanKind::kAbortDiscard:
      return "abort-discard";
    case SpanKind::kPreCommit:
      return "pre-commit";
    case SpanKind::kWalAppend:
      return "wal-append";
    case SpanKind::kFsyncBatch:
      return "fsync-batch";
    case SpanKind::kPageApply:
      return "page-apply";
    case SpanKind::kCommitAck:
      return "commit-ack";
    case SpanKind::kTxnAbort:
      return "txn-abort";
    case SpanKind::kScrub:
      return "scrub";
    case SpanKind::kPageRepair:
      return "page-repair";
    case SpanKind::kCascadeCut:
      return "cascade-cut";
    case SpanKind::kQuarantine:
      return "quarantine";
    case SpanKind::kActionRetry:
      return "action-retry";
  }
  return "unknown";
}

std::string Span::ToString(
    const std::function<std::string(uint32_t)>& symbol_namer) const {
  char buf[256];
  int n = std::snprintf(buf, sizeof(buf), "[%" PRIu64 "] txn %" PRIu64 " %-16s",
                        seq, txn, SpanKindToString(kind));
  std::string out(buf, n > 0 ? static_cast<size_t>(n) : 0);
  auto add = [&out, &buf](int m) {
    out.append(buf, m > 0 ? static_cast<size_t>(m) : 0);
  };
  if (!trigger.IsNull()) {
    add(std::snprintf(buf, sizeof(buf), " trig %" PRIu64, trigger.value()));
  }
  if (!anchor.IsNull()) {
    add(std::snprintf(buf, sizeof(buf), " anchor %" PRIu64, anchor.value()));
  }
  if (symbol != 0) {
    if (symbol_namer) {
      out += " ev ";
      out += symbol_namer(symbol);
    } else {
      add(std::snprintf(buf, sizeof(buf), " ev #%u", symbol));
    }
  }
  switch (kind) {
    case SpanKind::kFsmTransition:
      add(std::snprintf(buf, sizeof(buf), " state %" PRId64 " -> %" PRId64, a,
                        b));
      break;
    case SpanKind::kMaskEval:
      add(std::snprintf(buf, sizeof(buf), " mask#%" PRId64 " = %s", a,
                        b != 0 ? "True" : "False"));
      break;
    case SpanKind::kAcceptReached:
    case SpanKind::kStateWriteBack:
    case SpanKind::kAbortDiscard:
      add(std::snprintf(buf, sizeof(buf), " state %" PRId64, a));
      break;
    case SpanKind::kLockAcquire:
      add(std::snprintf(buf, sizeof(buf), " waited %" PRId64 " ns", b));
      break;
    case SpanKind::kFsyncBatch:
      add(std::snprintf(buf, sizeof(buf), " batch #%" PRId64 " size %" PRId64,
                        a, b));
      break;
    case SpanKind::kCascadeCut:
      add(std::snprintf(buf, sizeof(buf),
                        " depth %" PRId64 " actions %" PRId64, a, b));
      break;
    case SpanKind::kQuarantine:
      add(std::snprintf(buf, sizeof(buf), " failures %" PRId64, a));
      break;
    case SpanKind::kActionRetry:
      add(std::snprintf(buf, sizeof(buf), " attempt %" PRId64, a));
      break;
    default:
      break;
  }
  if (!instant()) {
    add(std::snprintf(buf, sizeof(buf), " dur %" PRIu64 " ns",
                      end_ns - start_ns));
  }
  if (!detail.empty()) {
    out += " (";
    out += detail;
    out += ')';
  }
  return out;
}

namespace {

uint32_t SampleMask(uint32_t sample_every) {
  return sample_every <= 1 ? 0 : std::bit_ceil(sample_every) - 1;
}

/// JSON string escaping (control chars, quote, backslash).
void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

Tracer::Tracer() : Tracer(Options{}) {}

Tracer::Tracer(const Options& options) {
  BindMetrics(nullptr);
  Configure(options);
}

void Tracer::Configure(const Options& options) {
  MutexLock lock(&mu_);
  capacity_ = options.span_capacity == 0 ? 1 : options.span_capacity;
  enabled_.store(options.span_capacity > 0, std::memory_order_relaxed);
  sample_mask_ = SampleMask(options.sample_every_n_txns);
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
}

void Tracer::BindMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    registry = owned_metrics_.get();
  } else {
    owned_metrics_.reset();
  }
  spans_recorded_ = registry->GetCounter("ode_trace_spans_recorded_total");
  spans_dropped_ = registry->GetCounter("ode_trace_spans_dropped_total");
  flight_dumps_ = registry->GetCounter("ode_flight_recorder_dumps_total");
}

void Tracer::SetSymbolNamer(std::function<std::string(uint32_t)> namer) {
  MutexLock lock(&mu_);
  symbol_namer_ = std::move(namer);
}

size_t Tracer::span_capacity() const {
  MutexLock lock(&mu_);
  return capacity_;
}

void Tracer::Instant(Span span) {
  uint64_t now = LatencyTimer::NowNanos();
  span.start_ns = now;
  span.end_ns = now;
  Record(std::move(span));
}

void Tracer::Interval(Span span, uint64_t start_ns, uint64_t end_ns) {
  span.start_ns = start_ns;
  span.end_ns = end_ns < start_ns ? start_ns : end_ns;
  Record(std::move(span));
}

void Tracer::Record(Span span) {
  bool dropped;
  {
    MutexLock lock(&mu_);
    span.seq = seq_++;
    dropped = ring_.size() >= capacity_;
    if (!dropped) {
      ring_.push_back(std::move(span));
    } else {
      ring_[next_] = std::move(span);
    }
    next_ = (next_ + 1) % capacity_;
  }
  spans_recorded_->Inc();
  if (dropped) spans_dropped_->Inc();
}

std::vector<Span> Tracer::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_ is the oldest surviving span once the ring has wrapped.
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::vector<Span> Tracer::TxnSpans(TxnId txn) const {
  std::vector<Span> all = Snapshot();
  std::vector<Span> out;
  for (Span& s : all) {
    if (s.txn == txn) out.push_back(std::move(s));
  }
  return out;
}

uint64_t Tracer::total_recorded() const {
  MutexLock lock(&mu_);
  return seq_;
}

uint64_t Tracer::total_dropped() const {
  MutexLock lock(&mu_);
  return seq_ > ring_.size() ? seq_ - ring_.size() : 0;
}

void Tracer::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  next_ = 0;
  // seq_ keeps counting: sequence numbers stay unique across Clear().
}

std::string Tracer::DumpTimeline(TxnId txn) const {
  std::function<std::string(uint32_t)> namer;
  {
    MutexLock lock(&mu_);
    namer = symbol_namer_;
  }
  std::vector<Span> spans = TxnSpans(txn);
  char header[128];
  int n = std::snprintf(header, sizeof(header),
                        "timeline txn %" PRIu64 ": %zu span(s)\n", txn,
                        spans.size());
  std::string out(header, n > 0 ? static_cast<size_t>(n) : 0);
  if (spans.empty()) {
    out += "  (no spans recorded — transaction not sampled, or already "
           "overwritten by wraparound)\n";
    return out;
  }
  uint64_t t0 = spans.front().start_ns;
  for (const Span& s : spans) {
    char off[48];
    std::snprintf(off, sizeof(off), "  +%10.3f us  ",
                  static_cast<double>(s.start_ns - t0) / 1000.0);
    out += off;
    out += s.ToString(namer);
    out += '\n';
  }
  return out;
}

std::string Tracer::ToChromeTraceJson() const {
  std::function<std::string(uint32_t)> namer;
  {
    MutexLock lock(&mu_);
    namer = symbol_namer_;
  }
  std::vector<Span> spans = Snapshot();
  uint64_t t0 = 0;
  for (const Span& s : spans) {
    if (t0 == 0 || s.start_ns < t0) t0 = s.start_ns;
  }
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const Span& s : spans) {
    if (!first) out += ',';
    first = false;
    // Times are microseconds (Chrome's unit) relative to the oldest
    // span; tid = transaction id, so each transaction gets a row.
    double ts = static_cast<double>(s.start_ns - t0) / 1000.0;
    out += "{\"name\":\"";
    out += SpanKindToString(s.kind);
    out += '"';
    if (s.instant()) {
      std::snprintf(buf, sizeof(buf),
                    ",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f", ts);
    } else {
      std::snprintf(buf, sizeof(buf), ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f",
                    ts, static_cast<double>(s.end_ns - s.start_ns) / 1000.0);
    }
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  ",\"pid\":1,\"tid\":%" PRIu64 ",\"cat\":\"ode\",\"args\":{"
                  "\"seq\":%" PRIu64,
                  s.txn, s.seq);
    out += buf;
    if (!s.trigger.IsNull()) {
      std::snprintf(buf, sizeof(buf), ",\"trigger\":%" PRIu64,
                    s.trigger.value());
      out += buf;
    }
    if (!s.anchor.IsNull()) {
      std::snprintf(buf, sizeof(buf), ",\"anchor\":%" PRIu64,
                    s.anchor.value());
      out += buf;
    }
    if (s.symbol != 0) {
      out += ",\"event\":\"";
      AppendJsonEscaped(&out, namer ? namer(s.symbol)
                                    : "#" + std::to_string(s.symbol));
      out += '"';
    }
    std::snprintf(buf, sizeof(buf), ",\"a\":%" PRId64 ",\"b\":%" PRId64, s.a,
                  s.b);
    out += buf;
    if (!s.detail.empty()) {
      out += ",\"detail\":\"";
      AppendJsonEscaped(&out, s.detail);
      out += '"';
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool Tracer::DumpToFile(const std::string& path, const std::string& reason) {
  // Chrome's JSON object form tolerates extra top-level keys, so the
  // dump stays loadable in chrome://tracing while carrying its cause.
  std::string json = ToChromeTraceJson();
  std::string why = ",\"odeFlightRecorder\":{\"reason\":\"";
  AppendJsonEscaped(&why, reason);
  why += "\"}}";
  json.replace(json.size() - 1, 1, why);
  // Plain stdio on purpose: this runs when the store is wedged, in
  // WAL-salvage mode, or from a fault-injection crash point — paths
  // where the Env itself may be refusing or failing writes.
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) return false;
  flight_dumps_->Inc();
  return true;
}

}  // namespace ode
