#include "common/ordered_mutex.h"

#include <vector>

#include "common/logging.h"

namespace ode {
namespace rank_internal {
namespace {

struct Held {
  uint16_t rank;
  const void* mu;
  const char* name;
};

/// The held-rank stack. Thread-local (each thread validates only its own
/// acquisition order — that is the whole deadlock argument), built
/// lazily on a thread's first ranked acquisition. Strictly increasing in
/// rank by construction: every push is checked against the back, and a
/// non-LIFO release (erasing from the middle) preserves sortedness.
thread_local std::vector<Held> tls_held;

}  // namespace

void NoteAcquire(uint16_t rank, const void* mu, const char* name) {
  if (!tls_held.empty()) {
    const Held& top = tls_held.back();
    ODE_CHECK(rank > top.rank)
        << "lock-rank violation: thread acquiring '" << name << "' (rank "
        << rank << ") while already holding '" << top.name << "' (rank "
        << top.rank << "); acquisition order must be strictly increasing "
        << "in rank — see docs/concurrency.md for the rank table"
        << (rank == top.rank && mu == top.mu
                ? " [same mutex: recursive lock or shared->exclusive "
                  "upgrade attempt]"
                : "");
  }
  tls_held.push_back(Held{rank, mu, name});
}

void NoteRelease(const void* mu, const char* name) {
  // Search newest-first: releases are almost always LIFO, but e.g. a
  // scoped lock outliving a manually unlocked one is legal and must
  // still resolve to the right entry.
  for (size_t i = tls_held.size(); i > 0; --i) {
    if (tls_held[i - 1].mu == mu) {
      tls_held.erase(tls_held.begin() + static_cast<long>(i - 1));
      return;
    }
  }
  ODE_CHECK(false) << "lock-rank bookkeeping: thread releasing '" << name
                   << "' which it does not hold";
}

size_t HeldCount() { return tls_held.size(); }

}  // namespace rank_internal
}  // namespace ode
