#ifndef ODE_COMMON_SLICE_H_
#define ODE_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

namespace ode {

/// A non-owning view of a byte range, RocksDB-style. Used at storage-layer
/// boundaries where copying object images would be wasteful.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const std::vector<char>& v)  // NOLINT
      : data_(v.data()), size_(v.size()) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  std::string ToString() const { return std::string(data_, size_); }
  std::vector<char> ToVector() const {
    return std::vector<char>(data_, data_ + size_);
  }

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace ode

#endif  // ODE_COMMON_SLICE_H_
