#ifndef ODE_COMMON_LOGGING_H_
#define ODE_COMMON_LOGGING_H_

#include <optional>
#include <sstream>
#include <string>

namespace ode {

/// kSilence is a threshold only — nothing logs *at* that level; setting
/// it as the minimum suppresses all output (used by tests that provoke
/// storage failures on purpose).
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kSilence = 4,
};

/// Sets the minimum level that LogMessage emits to stderr. Defaults to
/// kWarn so library internals are quiet in tests and benches.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// The ODE_LOG_LEVEL parse table, case-insensitive:
///   debug | info | warn/warning | error | off/none/silence
/// nullopt for anything else (including empty) — the caller decides
/// whether to warn or keep the current level.
std::optional<LogLevel> ParseLogLevel(const std::string& text);

/// Applies the ODE_LOG_LEVEL environment variable (see ParseLogLevel)
/// if set; an unrecognized value leaves the level unchanged and prints
/// one warning. Runs its logic once per process no matter how often it
/// is called — Session::Open calls it, so `ODE_LOG_LEVEL=debug ./app`
/// works without code changes, while an explicit SetLogLevel made
/// before the first Open still wins over an *unset* variable.
void InitLogLevelFromEnv();

namespace internal {

/// Stream-style log sink; flushes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction. Used by
/// ODE_CHECK for invariant violations (programming errors, not runtime
/// failures — those return Status).
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ode

#define ODE_LOG(level)                                              \
  ::ode::internal::LogMessage(::ode::LogLevel::level, __FILE__, __LINE__)

#define ODE_CHECK(cond)                                             \
  if (cond) {                                                       \
  } else                                                            \
    ::ode::internal::FatalMessage(__FILE__, __LINE__, #cond)

#ifdef NDEBUG
#define ODE_DCHECK(cond) ODE_CHECK(true || (cond))
#else
#define ODE_DCHECK(cond) ODE_CHECK(cond)
#endif

#endif  // ODE_COMMON_LOGGING_H_
