#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace ode {

namespace metrics_internal {

uint64_t BucketLower(size_t i) {
  if (i == 0) return 0;
  return uint64_t{1} << (i - 1);
}

uint64_t BucketUpper(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return ~uint64_t{0};
  return (uint64_t{1} << i) - 1;
}

}  // namespace metrics_internal

double HistogramData::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested percentile, 1-based (nearest-rank flavor).
  const double rank = p / 100.0 * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= rank) {
      // Interpolate inside [lower, upper] by where the rank falls among
      // this bucket's entries.
      const double lower = static_cast<double>(metrics_internal::BucketLower(i));
      const double upper = static_cast<double>(metrics_internal::BucketUpper(i));
      const double within =
          (rank - static_cast<double>(before)) / static_cast<double>(buckets[i]);
      double est = lower + (upper - lower) * std::clamp(within, 0.0, 1.0);
      // Never report beyond the observed maximum.
      est = std::min(est, static_cast<double>(max));
      return est;
    }
  }
  return static_cast<double>(max);
}

HistogramData Histogram::data() const {
  HistogramData d;
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < metrics_internal::kBuckets; ++i) {
      const uint64_t n = shard.buckets[i].v.load(std::memory_order_relaxed);
      d.buckets[i] += n;
      d.count += n;
    }
    d.sum += shard.sum.load(std::memory_order_relaxed);
    d.max = std::max(d.max, shard.max.load(std::memory_order_relaxed));
  }
  return d;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter(&enabled_));
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge(&enabled_));
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         uint32_t sample_every) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(&enabled_, sample_every));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  MutexLock lock(&mu_);
  // std::map iteration is name-sorted; merge the three kinds into one
  // sorted vector.
  for (const auto& [name, counter] : counters_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kCounter;
    v.counter = counter->value();
    snap.metrics_.push_back(std::move(v));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kGauge;
    v.gauge = gauge->value();
    snap.metrics_.push_back(std::move(v));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kHistogram;
    v.sample_every = histogram->sample_every();
    v.histogram = histogram->data();
    snap.metrics_.push_back(std::move(v));
  }
  std::sort(snap.metrics_.begin(), snap.metrics_.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snap;
}

const MetricValue* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricValue& m : metrics_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  const MetricValue* m = Find(name);
  return m != nullptr && m->kind == MetricValue::Kind::kCounter ? m->counter
                                                                : 0;
}

HistogramData MetricsSnapshot::HistogramValue(const std::string& name) const {
  const MetricValue* m = Find(name);
  return m != nullptr && m->kind == MetricValue::Kind::kHistogram
             ? m->histogram
             : HistogramData{};
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& earlier) const {
  auto sub = [](uint64_t now, uint64_t then) {
    return now >= then ? now - then : 0;
  };
  MetricsSnapshot out;
  for (const MetricValue& cur : metrics_) {
    const MetricValue* old = earlier.Find(cur.name);
    MetricValue v = cur;
    if (old != nullptr && old->kind == cur.kind) {
      switch (cur.kind) {
        case MetricValue::Kind::kCounter:
          v.counter = sub(cur.counter, old->counter);
          break;
        case MetricValue::Kind::kGauge:
          // Gauges are level values, not totals: keep the current level.
          break;
        case MetricValue::Kind::kHistogram:
          v.histogram.count = sub(cur.histogram.count, old->histogram.count);
          v.histogram.sum = sub(cur.histogram.sum, old->histogram.sum);
          for (size_t i = 0; i < v.histogram.buckets.size(); ++i) {
            v.histogram.buckets[i] =
                sub(cur.histogram.buckets[i], old->histogram.buckets[i]);
          }
          // max is not invertible from two snapshots; report the current.
          break;
      }
    }
    out.metrics_.push_back(std::move(v));
  }
  return out;
}

namespace {

// Splits a full series name `family{k="v",...}` into the family and the
// raw label body (no braces; empty when the series is unlabeled).
void SplitSeriesName(const std::string& name, std::string* family,
                     std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *family = name;
    labels->clear();
    return;
  }
  *family = name.substr(0, brace);
  const size_t close = name.rfind('}');
  const size_t len = close != std::string::npos && close > brace
                         ? close - brace - 1
                         : std::string::npos;
  *labels = name.substr(brace + 1, len);
}

// Escapes label VALUES per the Prometheus text exposition format:
// backslash, double quote, and newline become \\, \", and \n. A value
// is delimited by the quote after '=' and the quote before ',' (or end
// of body); a quote anywhere else inside a value is literal data and
// gets escaped rather than ending the value.
std::string EscapeLabelBody(const std::string& body) {
  std::string out;
  out.reserve(body.size());
  size_t i = 0;
  while (i < body.size()) {
    const char c = body[i];
    if (c == '=' && i + 1 < body.size() && body[i + 1] == '"') {
      out += "=\"";
      i += 2;
      while (i < body.size()) {
        const char v = body[i];
        const bool closing =
            v == '"' && (i + 1 == body.size() || body[i + 1] == ',');
        if (closing) break;
        if (v == '\\') {
          out += "\\\\";
        } else if (v == '"') {
          out += "\\\"";
        } else if (v == '\n') {
          out += "\\n";
        } else {
          out += v;
        }
        ++i;
      }
      if (i < body.size()) {
        out += '"';
        ++i;  // consume the closing quote
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToText() const {
  // Group series by metric family (the name up to any '{') so each
  // family gets exactly one `# TYPE` line with all its series beneath
  // it, as the exposition format requires. Sorted-name iteration alone
  // is not enough: "foobar" sorts between "foo" and "foo{...}" ('{' >
  // any identifier character), which would split the foo family.
  std::map<std::string, std::vector<const MetricValue*>> families;
  std::string family, labels;
  for (const MetricValue& m : metrics_) {
    SplitSeriesName(m.name, &family, &labels);
    families[family].push_back(&m);
  }

  std::string out;
  char line[256];
  auto append = [&out, &line](int n) {
    out.append(line, n > 0 ? static_cast<size_t>(n) : 0);
  };
  for (const auto& [fam, series] : families) {
    const char* type = "untyped";
    switch (series.front()->kind) {
      case MetricValue::Kind::kCounter:
        type = "counter";
        break;
      case MetricValue::Kind::kGauge:
        type = "gauge";
        break;
      case MetricValue::Kind::kHistogram:
        type = "histogram";
        break;
    }
    append(std::snprintf(line, sizeof(line), "# TYPE %s %s\n", fam.c_str(),
                         type));
    for (const MetricValue* mp : series) {
      const MetricValue& m = *mp;
      SplitSeriesName(m.name, &family, &labels);
      const std::string escaped = EscapeLabelBody(labels);
      const std::string series_name =
          escaped.empty() ? fam : fam + "{" + escaped + "}";
      switch (m.kind) {
        case MetricValue::Kind::kCounter:
          out += series_name;
          append(std::snprintf(line, sizeof(line), " %" PRIu64 "\n",
                               m.counter));
          break;
        case MetricValue::Kind::kGauge:
          out += series_name;
          append(std::snprintf(line, sizeof(line), " %" PRId64 "\n",
                               m.gauge));
          break;
        case MetricValue::Kind::kHistogram: {
          const HistogramData& h = m.histogram;
          if (m.sample_every > 1) {
            append(std::snprintf(line, sizeof(line),
                                 "# sampled 1 in %u operations\n",
                                 m.sample_every));
          }
          append(std::snprintf(
              line, sizeof(line),
              "# p50 %.0f p95 %.0f p99 %.0f max %" PRIu64 "\n",
              h.Percentile(50), h.Percentile(95), h.Percentile(99), h.max));
          // A labeled histogram folds its own labels in front of `le`.
          const std::string bucket_prefix =
              fam + "_bucket{" + (escaped.empty() ? "" : escaped + ",");
          const std::string suffix_labels =
              escaped.empty() ? "" : "{" + escaped + "}";
          uint64_t cumulative = 0;
          for (size_t i = 0; i < h.buckets.size(); ++i) {
            if (h.buckets[i] == 0) continue;
            cumulative += h.buckets[i];
            out += bucket_prefix;
            append(std::snprintf(line, sizeof(line),
                                 "le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                                 metrics_internal::BucketUpper(i),
                                 cumulative));
          }
          out += bucket_prefix;
          append(std::snprintf(line, sizeof(line),
                               "le=\"+Inf\"} %" PRIu64 "\n", h.count));
          out += fam + "_sum" + suffix_labels;
          append(std::snprintf(line, sizeof(line), " %" PRIu64 "\n", h.sum));
          out += fam + "_count" + suffix_labels;
          append(std::snprintf(line, sizeof(line), " %" PRIu64 "\n",
                               h.count));
          break;
        }
      }
    }
  }
  return out;
}

uint64_t LatencyTimer::NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace ode
