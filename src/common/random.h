#ifndef ODE_COMMON_RANDOM_H_
#define ODE_COMMON_RANDOM_H_

#include <cstdint>

namespace ode {

/// Small deterministic PRNG (xorshift128+). Tests and benchmarks use this
/// instead of std::mt19937 so workloads are reproducible across platforms
/// and cheap to seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x5eed) {
    s0_ = seed ^ 0x9e3779b97f4a7c15ull;
    s1_ = (seed << 1) | 1;
    // Warm up so small seeds diverge quickly.
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability p (0..1).
  bool Bernoulli(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t s0_, s1_;
};

}  // namespace ode

#endif  // ODE_COMMON_RANDOM_H_
