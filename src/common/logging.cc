#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace ode {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kSilence:
      return "SILENCE";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

std::optional<LogLevel> ParseLogLevel(const std::string& text) {
  std::string value;
  value.reserve(text.size());
  for (char c : text) {
    value += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (value == "debug") return LogLevel::kDebug;
  if (value == "info") return LogLevel::kInfo;
  if (value == "warn" || value == "warning") return LogLevel::kWarn;
  if (value == "error") return LogLevel::kError;
  if (value == "silence" || value == "off" || value == "none") {
    return LogLevel::kSilence;
  }
  return std::nullopt;
}

void InitLogLevelFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* raw = std::getenv("ODE_LOG_LEVEL");
    if (raw == nullptr || raw[0] == '\0') return;
    std::optional<LogLevel> parsed = ParseLogLevel(raw);
    if (parsed.has_value()) {
      SetLogLevel(*parsed);
    } else {
      // Once per process by construction (call_once): a typo'd level
      // should not spam every Open.
      std::fprintf(stderr,
                   "[WARN] unrecognized ODE_LOG_LEVEL '%s' "
                   "(expected debug|info|warn|error|off)\n",
                   raw);
    }
  });
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_log_level.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] check failed: "
          << condition << " ";
}

FatalMessage::~FatalMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace ode
