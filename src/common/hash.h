#ifndef ODE_COMMON_HASH_H_
#define ODE_COMMON_HASH_H_

#include <cstdint>
#include <cstddef>

namespace ode {

/// 64-bit FNV-1a over an arbitrary byte range. Used by the persistent
/// trigger index buckets and by WAL record checksums.
uint64_t Hash64(const void* data, size_t size, uint64_t seed = 14695981039346656037ull);

/// Mixes a 64-bit value (splitmix64 finalizer); good for integer keys
/// such as Oids.
uint64_t MixU64(uint64_t x);

}  // namespace ode

#endif  // ODE_COMMON_HASH_H_
