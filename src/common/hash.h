#ifndef ODE_COMMON_HASH_H_
#define ODE_COMMON_HASH_H_

#include <cstdint>
#include <cstddef>

namespace ode {

/// 64-bit FNV-1a over an arbitrary byte range. Used by the persistent
/// trigger index buckets and by WAL record checksums.
uint64_t Hash64(const void* data, size_t size, uint64_t seed = 14695981039346656037ull);

/// Mixes a 64-bit value (splitmix64 finalizer); good for integer keys
/// such as Oids.
uint64_t MixU64(uint64_t x);

/// CRC32C (Castagnoli, polynomial 0x1EDC6F41) over a byte range —
/// the page-checksum algorithm (software slicing-by-4 tables; no CPU
/// intrinsics). `seed` lets a checksum be computed over disjoint
/// ranges: pass the previous call's result to continue. Unlike FNV-1a
/// (Hash64), CRC32C guarantees detection of any single-bit flip and any
/// burst error up to 32 bits, which is why the storage layer uses it
/// for media-corruption defense rather than reusing Hash64.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

}  // namespace ode

#endif  // ODE_COMMON_HASH_H_
