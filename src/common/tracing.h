#ifndef ODE_COMMON_TRACING_H_
#define ODE_COMMON_TRACING_H_

#include <bit>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/ordered_mutex.h"
#include "common/thread_annotations.h"
#include "objstore/oid.h"

namespace ode {

/// What one Span describes. Kinds are ordered roughly along a
/// transaction's lifecycle; DumpTimeline renders them in recording
/// (sequence) order, which for a single transaction is causal order.
enum class SpanKind : uint8_t {
  kTxnBegin,         // transaction minted
  kLockAcquire,      // 2PL lock granted; b = nanoseconds blocked (0 =
                     //   granted without waiting), detail = mode
  kEventPosted,      // PostEvent entered: symbol posted to anchor
  kFastPathSkip,     // footnote-3 short-circuit: no active triggers
  kFsmTransition,    // a machine moved: a = from state, b = to state;
                     //   detail = hex parameter bindings (if any)
  kMaskEval,         // mask pseudo-event resolved: a = ordinal,
                     //   b = 1 (True) / 0 (False)
  kAcceptReached,    // machine entered an accept state (a = state)
  kActionScheduled,  // non-immediate action queued (detail = coupling)
  kActionRun,        // action body executed (interval; detail = coupling)
  kStateWriteBack,   // dirty cached TriggerState written back (a = state)
  kAbortDiscard,     // txn aborted: cached FSM advance thrown away
  kPreCommit,        // deferred actions + tcomplete + write-back (interval)
  kWalAppend,        // this txn's records appended to the WAL (interval)
  kFsyncBatch,       // the group-commit fsync this txn rode (interval;
                     //   a = batch ticket id, b = batch size)
  kPageApply,        // workspace pages applied to the store (interval)
  kCommitAck,        // commit acknowledged to the caller
  kTxnAbort,         // transaction rolled back
  kScrub,            // integrity sweep over the page file (interval;
                     //   a = pages scanned, b = bad pages found)
  kPageRepair,       // corrupt page rebuilt from WAL redo (a = page id)
  kCascadeCut,       // trigger cascade hit its firing budget and was cut
                     //   (a = chain depth, b = actions spent; detail = why)
  kQuarantine,       // trigger auto-deactivated after consecutive failures
                     //   (a = failure count; detail = reason + provenance)
  kActionRetry,      // detached action txn aborted retryably and will be
                     //   re-run (a = attempt number; detail = status)
};

const char* SpanKindToString(SpanKind kind);

/// One structured span. Instant spans have end_ns == start_ns; interval
/// spans cover [start_ns, end_ns]. `seq` is assigned under the tracer
/// mutex, so for spans recorded by one transaction's thread (and across
/// the commit pipeline's happens-before edges) sequence order is causal
/// order even when start_ns ties at clock resolution.
struct Span {
  uint64_t seq = 0;
  SpanKind kind = SpanKind::kTxnBegin;
  TxnId txn = kNoTxn;
  uint64_t start_ns = 0;  // LatencyTimer::NowNanos() timebase
  uint64_t end_ns = 0;
  Oid trigger;            // TriggerState oid; null when not applicable
  Oid anchor;
  uint32_t symbol = 0;    // event symbol (0 when not applicable)
  int64_t a = 0;
  int64_t b = 0;
  std::string detail;     // kind-specific free text (see SpanKind)

  bool instant() const { return end_ns == start_ns; }
  /// One-line rendering used by Tracer::DumpTimeline.
  std::string ToString(const std::function<std::string(uint32_t)>&
                           symbol_namer = nullptr) const;
};

/// Per-database span store: a bounded, always-on flight recorder plus
/// the sampling gate deciding which transactions get full timelines.
///
/// Concurrency: Record/Snapshot take a mutex; the mutex is a strict
/// leaf in the lock order (no callback ever runs under it), so
/// recording is safe from under the lock manager's table mutex, the
/// WAL/apply stage mutexes, and the trigger manager's stripes. The
/// hot-path cost for unsampled transactions is `Sampled()` — one
/// relaxed load plus a mask test.
///
/// Sampling: transaction `t` is sampled iff tracing is enabled and
/// `(t & (bit_ceil(sample_every) - 1)) == 0`. The mask form keeps the
/// check branch-cheap and makes sampling deterministic per txn id, so
/// every layer agrees on whether a transaction is traced without
/// coordination. System (trigger-spawned) transactions inherit their
/// own ids and sample on the same rule.
class Tracer {
 public:
  struct Options {
    size_t span_capacity = 4096;       // ring slots (0 = disable)
    uint32_t sample_every_n_txns = 32; // rounded up to a power of two
  };

  Tracer();
  explicit Tracer(const Options& options);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Re-applies knobs (Session construction time). Clears the ring.
  void Configure(const Options& options);

  /// Points the recorded/dropped/dump counters at `registry`.
  void BindMetrics(MetricsRegistry* registry);

  /// Symbol -> "Class::event" resolver for rendering (the trigger
  /// layer's EventRegistry; tracing itself must not depend on it).
  void SetSymbolNamer(std::function<std::string(uint32_t)> namer);

  /// True if spans for this transaction should be recorded. Callers
  /// gate span construction on this so unsampled paths pay only the
  /// check.
  bool Sampled(TxnId txn) const {
    if (!enabled_.load(std::memory_order_relaxed)) return false;
    return (txn & sample_mask_) == 0;
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  uint32_t sample_every() const { return sample_mask_ + 1; }
  size_t span_capacity() const;

  /// Records an instant span (end == start == now).
  void Instant(Span span);
  /// Records an interval span [start_ns, end_ns] captured by the caller.
  void Interval(Span span, uint64_t start_ns, uint64_t end_ns);
  /// Low-level record: span.start_ns/end_ns already set.
  void Record(Span span);

  /// All surviving spans, oldest first (true chronological order across
  /// ring wraparound).
  std::vector<Span> Snapshot() const;
  /// Surviving spans for one transaction, oldest first.
  std::vector<Span> TxnSpans(TxnId txn) const;
  /// Total spans ever recorded / overwritten by wraparound.
  uint64_t total_recorded() const;
  uint64_t total_dropped() const;

  void Clear();

  /// Human-readable per-transaction timeline: one line per span with
  /// +offset microseconds from the transaction's first span.
  std::string DumpTimeline(TxnId txn) const;

  /// Whole ring as Chrome trace_event JSON (chrome://tracing, Perfetto).
  /// Interval spans become "X" complete events, instants become "i"
  /// thread-scoped instant events; tid = transaction id.
  std::string ToChromeTraceJson() const;

  /// Flight-recorder dump: writes ToChromeTraceJson() to `path` with a
  /// leading "powered-down why" comment key. Uses plain stdio, not the
  /// Env, so it works while the store is wedged or crash-injected.
  /// Returns false if the file could not be written.
  bool DumpToFile(const std::string& path, const std::string& reason);

 private:
  std::atomic<bool> enabled_{true};
  uint32_t sample_mask_ = 31;

  // Deep rank: Instant/Interval are called with WAL, lock-table, or
  // trigger locks held; the tracer never calls out while holding mu_
  // (symbol_namer_ is copied out before invocation).
  mutable OrderedMutex mu_{lock_rank::kTracer, "tracer.mu"};
  size_t capacity_ ODE_GUARDED_BY(mu_) = 4096;
  std::vector<Span> ring_ ODE_GUARDED_BY(mu_);
  size_t next_ ODE_GUARDED_BY(mu_) = 0;   // ring_ slot for the next span
  uint64_t seq_ ODE_GUARDED_BY(mu_) = 0;  // == total recorded
  std::function<std::string(uint32_t)> symbol_namer_ ODE_GUARDED_BY(mu_);

  // Metrics (see BindMetrics).
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  Counter* spans_recorded_ = nullptr;
  Counter* spans_dropped_ = nullptr;
  Counter* flight_dumps_ = nullptr;
};

}  // namespace ode

#endif  // ODE_COMMON_TRACING_H_
