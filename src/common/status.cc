#include "common/status.h"

namespace ode {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kTransactionAborted:
      return "transaction aborted";
    case StatusCode::kDeadlock:
      return "deadlock";
    case StatusCode::kLockTimeout:
      return "lock timeout";
    case StatusCode::kNotSupported:
      return "not supported";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kCascadeOverflow:
      return "cascade overflow";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ode
