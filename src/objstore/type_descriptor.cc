#include "objstore/type_descriptor.h"

namespace ode {

const char* CouplingModeToString(CouplingMode mode) {
  switch (mode) {
    case CouplingMode::kImmediate:
      return "immediate";
    case CouplingMode::kDeferred:
      return "end";
    case CouplingMode::kDependent:
      return "dependent";
    case CouplingMode::kIndependent:
      return "!dependent";
  }
  return "?";
}

bool TypeDescriptor::IsSubtypeOf(const TypeDescriptor* other) const {
  for (const TypeDescriptor* t = this; t != nullptr; t = t->base_) {
    if (t == other) return true;
  }
  return false;
}

std::vector<EventDecl> TypeDescriptor::AllEvents() const {
  std::vector<EventDecl> out;
  if (base_ != nullptr) out = base_->AllEvents();
  out.insert(out.end(), events_.begin(), events_.end());
  return out;
}

const EventDecl* TypeDescriptor::FindEvent(const std::string& name) const {
  for (const EventDecl& e : events_) {
    if (e.name == name) return &e;
  }
  return base_ != nullptr ? base_->FindEvent(name) : nullptr;
}

const TriggerInfo* TypeDescriptor::FindTrigger(
    const std::string& name, const TypeDescriptor** defining_type) const {
  for (const TriggerInfo& t : triggers_) {
    if (t.name == name) {
      if (defining_type != nullptr) *defining_type = this;
      return &t;
    }
  }
  return base_ != nullptr ? base_->FindTrigger(name, defining_type)
                          : nullptr;
}

}  // namespace ode
