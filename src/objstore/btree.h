#ifndef ODE_OBJSTORE_BTREE_H_
#define ODE_OBJSTORE_BTREE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "objstore/database.h"

namespace ode {

/// A persistent B+-tree mapping byte-string keys to Oids — the index
/// structure disk-based Ode offers (the paper notes MM-Ode ships "full
/// Ode functionality (except for B-trees which do not exist in Dali)",
/// §5.6). Here the tree's nodes are ordinary persistent objects, so it
/// works over either storage manager and inherits transactionality
/// (locking, rollback, recovery) from the Database layer for free.
///
/// Values live in the leaves; internal nodes hold separator keys.
/// Inserts split full nodes preemptively on the way down. Deletes remove
/// the entry and collapse nodes that become empty, but do not rebalance
/// underfull nodes (a common simplification: the tree stays correct,
/// merely not height-minimal after heavy deletion).
///
/// Keys are compared lexicographically as byte strings; use the
/// BTreeKey helpers below for order-preserving integer encodings.
class BTree {
 public:
  /// Opens the tree registered under `name` in the database, creating it
  /// on first use. `max_keys` (>= 3) fixes the node fanout at creation;
  /// an existing tree keeps its original fanout.
  static Result<std::unique_ptr<BTree>> Open(Database* db, Transaction* txn,
                                             const std::string& name,
                                             size_t max_keys = 32);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts a new key; kAlreadyExists if present.
  Status Insert(Transaction* txn, Slice key, Oid value);

  /// Inserts or replaces.
  Status Put(Transaction* txn, Slice key, Oid value);

  /// kNotFound if absent.
  Result<Oid> Lookup(Transaction* txn, Slice key);

  /// Removes the key; kNotFound if absent.
  Status Delete(Transaction* txn, Slice key);

  /// In-order scan of keys in [lower, upper); an empty `upper` means "to
  /// the end", an empty `lower` "from the beginning". The callback
  /// returns false to stop early.
  Status Scan(Transaction* txn, Slice lower, Slice upper,
              const std::function<bool(Slice key, Oid value)>& fn);

  /// Number of entries.
  Result<uint64_t> Size(Transaction* txn);

  /// Validates the structural invariants (sorted keys, separator
  /// consistency, uniform leaf depth); for tests.
  Status CheckStructure(Transaction* txn);

 private:
  struct Node {
    bool leaf = true;
    std::vector<std::string> keys;
    std::vector<Oid> values;    // leaf: parallel to keys
    std::vector<Oid> children;  // internal: keys.size() + 1 entries
  };

  struct Meta {
    Oid root;
    uint64_t size = 0;
    uint64_t max_keys = 32;
  };

  BTree(Database* db, std::string name) : db_(db), name_(std::move(name)) {}

  Result<Meta> LoadMeta(Transaction* txn);
  Status StoreMeta(Transaction* txn, const Meta& meta);
  Result<Node> LoadNode(Transaction* txn, Oid oid, bool for_update);
  Result<Oid> NewNode(Transaction* txn, const Node& node);
  Status StoreNode(Transaction* txn, Oid oid, const Node& node);

  /// Splits full child `idx` of `parent` (both already loaded; caller
  /// stores the parent). The child must be full.
  Status SplitChild(Transaction* txn, Node* parent, size_t idx,
                    Oid child_oid, Node child, uint64_t max_keys);

  Status InsertImpl(Transaction* txn, Slice key, Oid value, bool replace);

  Status ScanNode(Transaction* txn, Oid node_oid, Slice lower, Slice upper,
                  const std::function<bool(Slice, Oid)>& fn, bool* keep_going);

  Status CheckNode(Transaction* txn, Oid node_oid, const std::string* lo,
                   const std::string* hi, int depth, int* leaf_depth);

  Database* db_;
  std::string name_;
  Oid meta_oid_;
};

namespace btree_key {

/// Order-preserving big-endian encoding of an unsigned integer.
std::string FromU64(uint64_t v);

/// Order-preserving encoding of a signed integer (offset-binary).
std::string FromI64(int64_t v);

}  // namespace btree_key

}  // namespace ode

#endif  // ODE_OBJSTORE_BTREE_H_
