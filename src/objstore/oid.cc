#include "objstore/oid.h"

namespace ode {

std::string Oid::ToString() const {
  if (IsNull()) return "oid(null)";
  return "oid(" + std::to_string(value_) + ")";
}

}  // namespace ode
