#include "objstore/database.h"

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"
#include "storage/disk_storage_manager.h"
#include "storage/mm_storage_manager.h"

namespace ode {

namespace {

constexpr const char* kMetatypeRoot = "ode.metatypes";
constexpr const char* kClusterRootPrefix = "ode.cluster.";
// Key inside the metatype directory that stores the next id to assign.
constexpr const char* kNextIdKey = "";

/// Pseudo-oid used to serialize updates to a named root's directory
/// object before its real oid is known. High bit set to stay clear of
/// real oids.
Oid RootLockOid(const std::string& name) {
  return Oid(Hash64(name.data(), name.size()) | (1ull << 63));
}

}  // namespace

Database::Database(std::unique_ptr<StorageManager> store)
    : metrics_(std::make_unique<MetricsRegistry>()),
      tracer_(std::make_unique<Tracer>()),
      store_(std::move(store)) {
  txns_ = std::make_unique<TransactionManager>(store_.get(), &locks_);
  tracer_->BindMetrics(metrics_.get());
  // Rebind every component from its private fallback registry to the
  // database-wide one, so one snapshot covers all four layers, and hand
  // each layer the shared tracer so one snapshot yields full timelines.
  store_->BindMetrics(metrics_.get());
  locks_.BindMetrics(metrics_.get());
  txns_->BindMetrics(metrics_.get());
  store_->BindTracer(tracer_.get());
  locks_.BindTracer(tracer_.get());
  txns_->BindTracer(tracer_.get());
}

Result<std::unique_ptr<Database>> Database::Open(StorageKind kind,
                                                 const std::string& path) {
  std::unique_ptr<StorageManager> store;
  if (kind == StorageKind::kDisk) {
    if (path.empty()) {
      return Status::InvalidArgument("disk database needs a path");
    }
    store = std::make_unique<DiskStorageManager>(path);
  } else {
    store = std::make_unique<MMStorageManager>(path);
  }
  return OpenWith(std::move(store));
}

Result<std::unique_ptr<Database>> Database::OpenWith(
    std::unique_ptr<StorageManager> store) {
  ODE_RETURN_NOT_OK(store->Open());
  std::unique_ptr<Database> db(new Database(std::move(store)));
  db->open_ = true;
  return db;
}

Database::~Database() {
  if (open_) {
    Status st = Close();
    if (!st.ok()) {
      ODE_LOG(kError) << "database close failed: " << st.ToString();
    }
  }
}

Status Database::Close() {
  if (!open_) return Status::OK();
  open_ = false;
  return store_->Close();
}

Result<Oid> Database::NewObject(Transaction* txn, Slice image) {
  ODE_ASSIGN_OR_RETURN(Oid oid, store_->Allocate(txn->id(), image));
  // The creator implicitly owns the new object exclusively.
  ODE_RETURN_NOT_OK(locks_.Acquire(txn->id(), oid, LockMode::kExclusive));
  return oid;
}

Status Database::ReadObject(Transaction* txn, Oid oid,
                            std::vector<char>* out) {
  ODE_RETURN_NOT_OK(locks_.Acquire(txn->id(), oid, LockMode::kShared));
  return store_->Read(txn->id(), oid, out);
}

Status Database::ReadObjectForUpdate(Transaction* txn, Oid oid,
                                     std::vector<char>* out) {
  ODE_RETURN_NOT_OK(locks_.Acquire(txn->id(), oid, LockMode::kExclusive));
  return store_->Read(txn->id(), oid, out);
}

Status Database::WriteObject(Transaction* txn, Oid oid, Slice image) {
  ODE_RETURN_NOT_OK(locks_.Acquire(txn->id(), oid, LockMode::kExclusive));
  return store_->Write(txn->id(), oid, image);
}

Status Database::FreeObject(Transaction* txn, Oid oid) {
  ODE_RETURN_NOT_OK(locks_.Acquire(txn->id(), oid, LockMode::kExclusive));
  return store_->Free(txn->id(), oid);
}

bool Database::ObjectExists(Transaction* txn, Oid oid) {
  return store_->Exists(txn->id(), oid);
}

Status Database::SetRoot(Transaction* txn, const std::string& name,
                         Oid oid) {
  ODE_RETURN_NOT_OK(
      locks_.Acquire(txn->id(), RootLockOid(name), LockMode::kExclusive));
  return store_->SetRoot(txn->id(), name, oid);
}

Result<Oid> Database::GetRoot(Transaction* txn, const std::string& name) {
  ODE_RETURN_NOT_OK(
      locks_.Acquire(txn->id(), RootLockOid(name), LockMode::kShared));
  return store_->GetRoot(txn->id(), name);
}

Status Database::ReadDirectory(Transaction* txn,
                               const std::string& root_name,
                               std::map<std::string, uint64_t>* out) {
  out->clear();
  auto root = GetRoot(txn, root_name);
  if (!root.ok()) {
    return root.status().IsNotFound() ? Status::OK() : root.status();
  }
  std::vector<char> image;
  ODE_RETURN_NOT_OK(ReadObject(txn, root.value(), &image));
  Decoder dec(image);
  uint64_t n;
  ODE_RETURN_NOT_OK(dec.GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string key;
    uint64_t value;
    ODE_RETURN_NOT_OK(dec.GetString(&key));
    ODE_RETURN_NOT_OK(dec.GetU64(&value));
    (*out)[key] = value;
  }
  return Status::OK();
}

Status Database::UpdateDirectory(
    Transaction* txn, const std::string& root_name,
    const std::function<void(std::map<std::string, uint64_t>*)>& mutate) {
  // Exclusive lock on the root's pseudo-oid serializes the read-modify-
  // write across transactions.
  ODE_RETURN_NOT_OK(locks_.Acquire(txn->id(), RootLockOid(root_name),
                                   LockMode::kExclusive));
  std::map<std::string, uint64_t> dir;
  ODE_RETURN_NOT_OK(ReadDirectory(txn, root_name, &dir));
  mutate(&dir);
  Encoder enc;
  enc.PutVarint(dir.size());
  for (const auto& [key, value] : dir) {
    enc.PutString(key);
    enc.PutU64(value);
  }
  auto root = store_->GetRoot(txn->id(), root_name);
  if (root.ok()) {
    return WriteObject(txn, root.value(), Slice(enc.buffer()));
  }
  if (!root.status().IsNotFound()) return root.status();
  ODE_ASSIGN_OR_RETURN(Oid oid, NewObject(txn, Slice(enc.buffer())));
  return store_->SetRoot(txn->id(), root_name, oid);
}

Result<uint32_t> Database::MetatypeId(Transaction* txn,
                                      const std::string& type_name) {
  ODE_CHECK(type_name != kNextIdKey);
  std::map<std::string, uint64_t> dir;
  // Fast path: already assigned (shared lock only).
  ODE_RETURN_NOT_OK(ReadDirectory(txn, kMetatypeRoot, &dir));
  auto it = dir.find(type_name);
  if (it != dir.end()) return static_cast<uint32_t>(it->second);

  uint32_t assigned = 0;
  ODE_RETURN_NOT_OK(UpdateDirectory(
      txn, kMetatypeRoot, [&](std::map<std::string, uint64_t>* d) {
        auto existing = d->find(type_name);
        if (existing != d->end()) {
          assigned = static_cast<uint32_t>(existing->second);
          return;
        }
        uint64_t next = 1;
        auto next_it = d->find(kNextIdKey);
        if (next_it != d->end()) next = next_it->second;
        assigned = static_cast<uint32_t>(next);
        (*d)[type_name] = next;
        (*d)[kNextIdKey] = next + 1;
      }));
  return assigned;
}

Result<std::string> Database::MetatypeName(Transaction* txn, uint32_t id) {
  std::map<std::string, uint64_t> dir;
  ODE_RETURN_NOT_OK(ReadDirectory(txn, kMetatypeRoot, &dir));
  for (const auto& [name, value] : dir) {
    if (name != kNextIdKey && value == id) return name;
  }
  return Status::NotFound("no metatype with id " + std::to_string(id));
}

namespace {
constexpr const char* kVersionRoot = "ode.versions";
}  // namespace

Status Database::RecordVersion(Transaction* txn, Oid child, Oid parent) {
  return UpdateDirectory(txn, kVersionRoot,
                         [&](std::map<std::string, uint64_t>* d) {
                           (*d)[child.ToString()] = parent.value();
                         });
}

Result<Oid> Database::VersionParent(Transaction* txn, Oid oid) {
  std::map<std::string, uint64_t> dir;
  ODE_RETURN_NOT_OK(ReadDirectory(txn, kVersionRoot, &dir));
  auto it = dir.find(oid.ToString());
  if (it == dir.end()) {
    return Status::NotFound("no version parent for " + oid.ToString());
  }
  return Oid(it->second);
}

Status Database::AddToCluster(Transaction* txn, const std::string& cluster,
                              Oid oid) {
  return UpdateDirectory(txn, kClusterRootPrefix + cluster,
                         [&](std::map<std::string, uint64_t>* d) {
                           (*d)[oid.ToString()] = oid.value();
                         });
}

Status Database::RemoveFromCluster(Transaction* txn,
                                   const std::string& cluster, Oid oid) {
  return UpdateDirectory(txn, kClusterRootPrefix + cluster,
                         [&](std::map<std::string, uint64_t>* d) {
                           d->erase(oid.ToString());
                         });
}

Result<std::vector<Oid>> Database::ClusterContents(
    Transaction* txn, const std::string& cluster) {
  std::map<std::string, uint64_t> dir;
  ODE_RETURN_NOT_OK(ReadDirectory(txn, kClusterRootPrefix + cluster, &dir));
  std::vector<Oid> out;
  out.reserve(dir.size());
  for (const auto& [key, value] : dir) {
    (void)key;
    out.push_back(Oid(value));
  }
  return out;
}

}  // namespace ode
