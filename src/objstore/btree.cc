#include "objstore/btree.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"

namespace ode {

namespace {

constexpr const char* kRootPrefix = "ode.btree.";

/// Routing: first child index i with key < keys[i]; keys.size() if none.
/// Child i holds keys in [keys[i-1], keys[i]) with unbounded ends.
size_t RouteIndex(const std::vector<std::string>& keys,
                  const std::string& key) {
  return static_cast<size_t>(
      std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
}

}  // namespace

namespace btree_key {

std::string FromU64(uint64_t v) {
  std::string out(8, '\0');
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((v >> (8 * (7 - i))) & 0xff);
  }
  return out;
}

std::string FromI64(int64_t v) {
  // Offset-binary: flip the sign bit so negative numbers order first.
  return FromU64(static_cast<uint64_t>(v) ^ (1ull << 63));
}

}  // namespace btree_key

Result<std::unique_ptr<BTree>> BTree::Open(Database* db, Transaction* txn,
                                           const std::string& name,
                                           size_t max_keys) {
  if (max_keys < 3) {
    return Status::InvalidArgument("btree max_keys must be >= 3");
  }
  std::unique_ptr<BTree> tree(new BTree(db, name));
  auto root = db->GetRoot(txn, kRootPrefix + name);
  if (root.ok()) {
    tree->meta_oid_ = root.value();
    return tree;
  }
  if (!root.status().IsNotFound()) return root.status();

  // First use: an empty leaf as root.
  Node empty;
  empty.leaf = true;
  ODE_ASSIGN_OR_RETURN(Oid root_oid, tree->NewNode(txn, empty));
  Meta meta;
  meta.root = root_oid;
  meta.size = 0;
  meta.max_keys = max_keys;
  Encoder enc;
  enc.PutU64(meta.root.value());
  enc.PutU64(meta.size);
  enc.PutU64(meta.max_keys);
  ODE_ASSIGN_OR_RETURN(Oid meta_oid, db->NewObject(txn, Slice(enc.buffer())));
  ODE_RETURN_NOT_OK(db->SetRoot(txn, kRootPrefix + name, meta_oid));
  tree->meta_oid_ = meta_oid;
  return tree;
}

Result<BTree::Meta> BTree::LoadMeta(Transaction* txn) {
  std::vector<char> image;
  ODE_RETURN_NOT_OK(db_->ReadObjectForUpdate(txn, meta_oid_, &image));
  Decoder dec(image);
  Meta meta;
  uint64_t root;
  ODE_RETURN_NOT_OK(dec.GetU64(&root));
  meta.root = Oid(root);
  ODE_RETURN_NOT_OK(dec.GetU64(&meta.size));
  ODE_RETURN_NOT_OK(dec.GetU64(&meta.max_keys));
  return meta;
}

Status BTree::StoreMeta(Transaction* txn, const Meta& meta) {
  Encoder enc;
  enc.PutU64(meta.root.value());
  enc.PutU64(meta.size);
  enc.PutU64(meta.max_keys);
  return db_->WriteObject(txn, meta_oid_, Slice(enc.buffer()));
}

Result<BTree::Node> BTree::LoadNode(Transaction* txn, Oid oid,
                                    bool for_update) {
  std::vector<char> image;
  if (for_update) {
    ODE_RETURN_NOT_OK(db_->ReadObjectForUpdate(txn, oid, &image));
  } else {
    ODE_RETURN_NOT_OK(db_->ReadObject(txn, oid, &image));
  }
  Decoder dec(image);
  Node node;
  uint8_t leaf;
  ODE_RETURN_NOT_OK(dec.GetU8(&leaf));
  node.leaf = leaf != 0;
  uint64_t nkeys;
  ODE_RETURN_NOT_OK(dec.GetVarint(&nkeys));
  if (nkeys > dec.remaining()) {
    return Status::Corruption("btree node: key count exceeds image");
  }
  node.keys.resize(nkeys);
  for (uint64_t i = 0; i < nkeys; ++i) {
    ODE_RETURN_NOT_OK(dec.GetString(&node.keys[i]));
  }
  if (node.leaf) {
    node.values.resize(nkeys);
    for (uint64_t i = 0; i < nkeys; ++i) {
      uint64_t v;
      ODE_RETURN_NOT_OK(dec.GetU64(&v));
      node.values[i] = Oid(v);
    }
  } else {
    node.children.resize(nkeys + 1);
    for (uint64_t i = 0; i <= nkeys; ++i) {
      uint64_t c;
      ODE_RETURN_NOT_OK(dec.GetU64(&c));
      node.children[i] = Oid(c);
    }
  }
  return node;
}

namespace {
std::vector<char> EncodeNodeImpl(bool leaf,
                                 const std::vector<std::string>& keys,
                                 const std::vector<Oid>& values,
                                 const std::vector<Oid>& children) {
  Encoder enc;
  enc.PutU8(leaf ? 1 : 0);
  enc.PutVarint(keys.size());
  for (const std::string& k : keys) enc.PutString(k);
  if (leaf) {
    for (Oid v : values) enc.PutU64(v.value());
  } else {
    for (Oid c : children) enc.PutU64(c.value());
  }
  return enc.Release();
}
}  // namespace

Result<Oid> BTree::NewNode(Transaction* txn, const Node& node) {
  return db_->NewObject(
      txn, Slice(EncodeNodeImpl(node.leaf, node.keys, node.values,
                                node.children)));
}

Status BTree::StoreNode(Transaction* txn, Oid oid, const Node& node) {
  return db_->WriteObject(
      txn, oid,
      Slice(EncodeNodeImpl(node.leaf, node.keys, node.values,
                           node.children)));
}

Status BTree::SplitChild(Transaction* txn, Node* parent, size_t idx,
                         Oid child_oid, Node child, uint64_t max_keys) {
  (void)max_keys;
  size_t mid = child.keys.size() / 2;
  Node right;
  right.leaf = child.leaf;
  std::string separator;
  if (child.leaf) {
    // B+ leaf split: the separator is copied, not moved.
    separator = child.keys[mid];
    right.keys.assign(child.keys.begin() + mid, child.keys.end());
    right.values.assign(child.values.begin() + mid, child.values.end());
    child.keys.resize(mid);
    child.values.resize(mid);
  } else {
    // Internal split: the middle key moves up.
    separator = child.keys[mid];
    right.keys.assign(child.keys.begin() + mid + 1, child.keys.end());
    right.children.assign(child.children.begin() + mid + 1,
                          child.children.end());
    child.keys.resize(mid);
    child.children.resize(mid + 1);
  }
  ODE_ASSIGN_OR_RETURN(Oid right_oid, NewNode(txn, right));
  ODE_RETURN_NOT_OK(StoreNode(txn, child_oid, child));
  parent->keys.insert(parent->keys.begin() + idx, separator);
  parent->children.insert(parent->children.begin() + idx + 1, right_oid);
  return Status::OK();
}

Status BTree::InsertImpl(Transaction* txn, Slice key, Oid value,
                         bool replace) {
  ODE_ASSIGN_OR_RETURN(Meta meta, LoadMeta(txn));
  std::string k = key.ToString();

  ODE_ASSIGN_OR_RETURN(Node root, LoadNode(txn, meta.root, true));
  Oid node_oid = meta.root;
  Node node = std::move(root);

  // Preemptive root split keeps the descent single-pass.
  if (node.keys.size() >= meta.max_keys) {
    Node new_root;
    new_root.leaf = false;
    new_root.children.push_back(node_oid);
    ODE_RETURN_NOT_OK(
        SplitChild(txn, &new_root, 0, node_oid, std::move(node),
                   meta.max_keys));
    ODE_ASSIGN_OR_RETURN(Oid new_root_oid, NewNode(txn, new_root));
    meta.root = new_root_oid;
    // Persist the new root right away: the descent may exit early
    // (duplicate key) and must not leave the halved old root reachable.
    ODE_RETURN_NOT_OK(StoreMeta(txn, meta));
    node_oid = new_root_oid;
    node = std::move(new_root);
  }

  while (!node.leaf) {
    size_t idx = RouteIndex(node.keys, k);
    Oid child_oid = node.children[idx];
    ODE_ASSIGN_OR_RETURN(Node child, LoadNode(txn, child_oid, true));
    if (child.keys.size() >= meta.max_keys) {
      ODE_RETURN_NOT_OK(
          SplitChild(txn, &node, idx, child_oid, std::move(child),
                     meta.max_keys));
      ODE_RETURN_NOT_OK(StoreNode(txn, node_oid, node));
      // Re-route between the two halves.
      if (!(k < node.keys[idx])) ++idx;
      child_oid = node.children[idx];
      ODE_ASSIGN_OR_RETURN(child, LoadNode(txn, child_oid, true));
    }
    node_oid = child_oid;
    node = std::move(child);
  }

  auto it = std::lower_bound(node.keys.begin(), node.keys.end(), k);
  size_t pos = static_cast<size_t>(it - node.keys.begin());
  if (it != node.keys.end() && *it == k) {
    if (!replace) {
      return Status::AlreadyExists("btree key already present");
    }
    node.values[pos] = value;
    ODE_RETURN_NOT_OK(StoreNode(txn, node_oid, node));
    return StoreMeta(txn, meta);  // root may have changed
  }
  node.keys.insert(it, k);
  node.values.insert(node.values.begin() + pos, value);
  ODE_RETURN_NOT_OK(StoreNode(txn, node_oid, node));
  ++meta.size;
  return StoreMeta(txn, meta);
}

Status BTree::Insert(Transaction* txn, Slice key, Oid value) {
  return InsertImpl(txn, key, value, /*replace=*/false);
}

Status BTree::Put(Transaction* txn, Slice key, Oid value) {
  return InsertImpl(txn, key, value, /*replace=*/true);
}

Result<Oid> BTree::Lookup(Transaction* txn, Slice key) {
  ODE_ASSIGN_OR_RETURN(Meta meta, LoadMeta(txn));
  std::string k = key.ToString();
  Oid node_oid = meta.root;
  while (true) {
    ODE_ASSIGN_OR_RETURN(Node node, LoadNode(txn, node_oid, false));
    if (node.leaf) {
      auto it = std::lower_bound(node.keys.begin(), node.keys.end(), k);
      if (it != node.keys.end() && *it == k) {
        return node.values[static_cast<size_t>(it - node.keys.begin())];
      }
      return Status::NotFound("btree key not found");
    }
    node_oid = node.children[RouteIndex(node.keys, k)];
  }
}

Status BTree::Delete(Transaction* txn, Slice key) {
  ODE_ASSIGN_OR_RETURN(Meta meta, LoadMeta(txn));
  std::string k = key.ToString();

  struct Frame {
    Oid oid;
    Node node;
    size_t child_idx = 0;
  };
  std::vector<Frame> path;
  Oid node_oid = meta.root;
  Node node;
  while (true) {
    ODE_ASSIGN_OR_RETURN(node, LoadNode(txn, node_oid, true));
    if (node.leaf) break;
    size_t idx = RouteIndex(node.keys, k);
    path.push_back(Frame{node_oid, std::move(node), idx});
    node_oid = path.back().node.children[idx];
  }

  auto it = std::lower_bound(node.keys.begin(), node.keys.end(), k);
  if (it == node.keys.end() || *it != k) {
    return Status::NotFound("btree key not found");
  }
  size_t pos = static_cast<size_t>(it - node.keys.begin());
  node.keys.erase(it);
  node.values.erase(node.values.begin() + pos);
  --meta.size;

  if (!node.keys.empty() || path.empty()) {
    ODE_RETURN_NOT_OK(StoreNode(txn, node_oid, node));
    return StoreMeta(txn, meta);
  }

  // The leaf is empty: free it and collapse upward.
  ODE_RETURN_NOT_OK(db_->FreeObject(txn, node_oid));
  while (!path.empty()) {
    Frame frame = std::move(path.back());
    path.pop_back();
    size_t idx = frame.child_idx;
    frame.node.children.erase(frame.node.children.begin() + idx);
    if (!frame.node.keys.empty()) {
      frame.node.keys.erase(frame.node.keys.begin() +
                            (idx > 0 ? idx - 1 : 0));
    }
    if (frame.node.children.empty()) {
      // This internal node is now empty too: free and keep collapsing.
      ODE_RETURN_NOT_OK(db_->FreeObject(txn, frame.oid));
      if (path.empty()) {
        // The root vanished: restart with a fresh empty leaf.
        Node empty;
        empty.leaf = true;
        ODE_ASSIGN_OR_RETURN(Oid fresh, NewNode(txn, empty));
        meta.root = fresh;
      }
      continue;
    }
    if (path.empty() && frame.node.keys.empty() &&
        frame.node.children.size() == 1) {
      // Root with a single child: the child becomes the root.
      meta.root = frame.node.children[0];
      ODE_RETURN_NOT_OK(db_->FreeObject(txn, frame.oid));
    } else {
      ODE_RETURN_NOT_OK(StoreNode(txn, frame.oid, frame.node));
    }
    break;
  }
  return StoreMeta(txn, meta);
}

Status BTree::ScanNode(Transaction* txn, Oid node_oid, Slice lower,
                       Slice upper,
                       const std::function<bool(Slice, Oid)>& fn,
                       bool* keep_going) {
  ODE_ASSIGN_OR_RETURN(Node node, LoadNode(txn, node_oid, false));
  std::string lo = lower.ToString(), hi = upper.ToString();
  if (node.leaf) {
    for (size_t i = 0; i < node.keys.size() && *keep_going; ++i) {
      if (!lo.empty() && node.keys[i] < lo) continue;
      if (!hi.empty() && !(node.keys[i] < hi)) break;
      if (!fn(Slice(node.keys[i]), node.values[i])) *keep_going = false;
    }
    return Status::OK();
  }
  for (size_t i = 0; i < node.children.size() && *keep_going; ++i) {
    // Child i covers [keys[i-1], keys[i]).
    if (i > 0 && !hi.empty() && !(node.keys[i - 1] < hi)) break;
    if (i < node.keys.size() && !lo.empty() && node.keys[i] < lo) continue;
    ODE_RETURN_NOT_OK(
        ScanNode(txn, node.children[i], lower, upper, fn, keep_going));
  }
  return Status::OK();
}

Status BTree::Scan(Transaction* txn, Slice lower, Slice upper,
                   const std::function<bool(Slice, Oid)>& fn) {
  ODE_ASSIGN_OR_RETURN(Meta meta, LoadMeta(txn));
  bool keep_going = true;
  return ScanNode(txn, meta.root, lower, upper, fn, &keep_going);
}

Result<uint64_t> BTree::Size(Transaction* txn) {
  ODE_ASSIGN_OR_RETURN(Meta meta, LoadMeta(txn));
  return meta.size;
}

Status BTree::CheckNode(Transaction* txn, Oid node_oid,
                        const std::string* lo, const std::string* hi,
                        int depth, int* leaf_depth) {
  ODE_ASSIGN_OR_RETURN(Node node, LoadNode(txn, node_oid, false));
  if (!std::is_sorted(node.keys.begin(), node.keys.end())) {
    return Status::Corruption("btree node keys not sorted");
  }
  for (const std::string& k : node.keys) {
    if (lo != nullptr && k < *lo) {
      return Status::Corruption("btree key below subtree lower bound");
    }
    if (hi != nullptr && !(k < *hi)) {
      return Status::Corruption("btree key above subtree upper bound");
    }
  }
  if (node.leaf) {
    if (node.keys.size() != node.values.size()) {
      return Status::Corruption("btree leaf keys/values mismatch");
    }
    if (*leaf_depth < 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("btree leaves at different depths");
    }
    return Status::OK();
  }
  if (node.children.size() != node.keys.size() + 1) {
    return Status::Corruption("btree internal children/keys mismatch");
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    const std::string* child_lo = i == 0 ? lo : &node.keys[i - 1];
    const std::string* child_hi =
        i == node.keys.size() ? hi : &node.keys[i];
    ODE_RETURN_NOT_OK(CheckNode(txn, node.children[i], child_lo, child_hi,
                                depth + 1, leaf_depth));
  }
  return Status::OK();
}

Status BTree::CheckStructure(Transaction* txn) {
  ODE_ASSIGN_OR_RETURN(Meta meta, LoadMeta(txn));
  int leaf_depth = -1;
  return CheckNode(txn, meta.root, nullptr, nullptr, 0, &leaf_depth);
}

}  // namespace ode
