#ifndef ODE_OBJSTORE_TYPE_DESCRIPTOR_H_
#define ODE_OBJSTORE_TYPE_DESCRIPTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "events/event_expr.h"
#include "events/fsm.h"

namespace ode {

class MaskEvalContext;
class TriggerFireContext;

/// Kinds of basic events a class may declare (paper §5.2, §5.5). Member
/// function events are posted automatically by the wrapper machinery; user
/// events are posted explicitly; transaction events are posted by commit /
/// abort processing to objects that touched the transaction.
enum class EventKind : uint8_t {
  kBeforeMember,
  kAfterMember,
  kUser,
  kBeforeTComplete,
  kBeforeTAbort,
};

/// One entry of a class's `event` declaration. `name` is the normalized
/// spelling used in event expressions ("after Buy", "BigBuy",
/// "before tcomplete"); `symbol` is the run-time interned integer
/// (paper §5.2's eventRep).
struct EventDecl {
  EventKind kind;
  std::string name;
  Symbol symbol = 0;
};

/// ECA coupling modes (paper §4.2).
enum class CouplingMode : uint8_t {
  kImmediate,    // fire as soon as the composite event is detected
  kDeferred,     // `end`: fire just before the detecting txn commits
  kDependent,    // separate txn, commits only if the detecting txn does
  kIndependent,  // `!dependent`: separate txn, no commit dependency
};

const char* CouplingModeToString(CouplingMode mode);

/// Everything the runtime needs about one trigger of a class — the
/// paper's TriggerInfo container (§5.4.4): the shared FSM, the action
/// thunk, perpetual flag, and coupling mode, plus the mask predicates the
/// FSM's mask states evaluate. Stored in the defining class's
/// TypeDescriptor and shared by every activation.
struct TriggerInfo {
  std::string name;
  uint32_t triggernum = 0;  // index within the defining class
  ExprPtr expr;
  bool anchored = false;
  Fsm fsm;
  CouplingMode coupling = CouplingMode::kImmediate;
  bool perpetual = false;
  /// Runs the trigger's action. The context exposes the anchor object,
  /// the trigger parameters, and tabort.
  std::function<Status(TriggerFireContext&)> action;
  /// Mask predicates indexed by the mask ids used in the FSM.
  std::vector<std::function<Result<bool>(MaskEvalContext&)>> masks;
  std::unordered_map<std::string, int32_t> mask_ids;
};

/// Run-time type descriptor — the paper's compiler-generated `type_X`
/// object (§5.2): class identity, base class, declared events, and the
/// TriggerInfo array. Built once per process by schema registration
/// (mirroring the paper's decision to recompile FSMs on every program
/// start, §5.1.3); the per-database persistent metatype id is managed by
/// Database::MetatypeId.
class TypeDescriptor {
 public:
  TypeDescriptor(std::string name, const TypeDescriptor* base)
      : name_(std::move(name)), base_(base) {}

  TypeDescriptor(const TypeDescriptor&) = delete;
  TypeDescriptor& operator=(const TypeDescriptor&) = delete;

  const std::string& name() const { return name_; }
  const TypeDescriptor* base() const { return base_; }

  /// True if this class is `other` or derives (transitively) from it.
  bool IsSubtypeOf(const TypeDescriptor* other) const;

  void AddEvent(EventDecl decl) { events_.push_back(std::move(decl)); }
  void AddTrigger(TriggerInfo info) { triggers_.push_back(std::move(info)); }

  /// Events declared by this class only.
  const std::vector<EventDecl>& own_events() const { return events_; }

  /// Events visible to this class's triggers: its own plus all inherited
  /// ones (base classes first). This set is the FSM alphabet source.
  std::vector<EventDecl> AllEvents() const;

  /// Finds an event by normalized name in this class or a base class.
  const EventDecl* FindEvent(const std::string& name) const;

  const std::vector<TriggerInfo>& triggers() const { return triggers_; }
  std::vector<TriggerInfo>& mutable_triggers() { return triggers_; }

  /// Finds a trigger by name in this class or a base class; sets
  /// `defining_type` to the class that declared it.
  const TriggerInfo* FindTrigger(const std::string& name,
                                 const TypeDescriptor** defining_type) const;

 private:
  std::string name_;
  const TypeDescriptor* base_;
  std::vector<EventDecl> events_;
  std::vector<TriggerInfo> triggers_;
};

}  // namespace ode

#endif  // ODE_OBJSTORE_TYPE_DESCRIPTOR_H_
