#ifndef ODE_OBJSTORE_OID_H_
#define ODE_OBJSTORE_OID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace ode {

/// Identifier of a persistent object — the paper's "pointer to a persistent
/// object". Oids are logical (a monotonically assigned 64-bit id, not a
/// physical address); the storage managers map them to physical locations,
/// which lets an object move between pages without invalidating references
/// held in other objects or in trigger state.
class Oid {
 public:
  constexpr Oid() : value_(0) {}
  constexpr explicit Oid(uint64_t value) : value_(value) {}

  /// The null persistent pointer.
  static constexpr Oid Null() { return Oid(0); }

  constexpr uint64_t value() const { return value_; }
  constexpr bool IsNull() const { return value_ == 0; }

  friend constexpr bool operator==(Oid a, Oid b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Oid a, Oid b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(Oid a, Oid b) { return a.value_ < b.value_; }

  std::string ToString() const;

 private:
  uint64_t value_;
};

struct OidHash {
  size_t operator()(Oid oid) const {
    return std::hash<uint64_t>()(oid.value());
  }
};

/// Identifier of a transaction. Id 0 is reserved as "no transaction".
using TxnId = uint64_t;
inline constexpr TxnId kNoTxn = 0;

}  // namespace ode

#endif  // ODE_OBJSTORE_OID_H_
