#ifndef ODE_OBJSTORE_DATABASE_H_
#define ODE_OBJSTORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/tracing.h"
#include "objstore/oid.h"
#include "objstore/type_descriptor.h"
#include "storage/lock_manager.h"
#include "storage/storage_manager.h"
#include "txn/transaction_manager.h"

namespace ode {

/// Which storage manager backs a database: the disk-based EOS analogue
/// (regular Ode) or the main-memory Dali analogue (MM-Ode). The two are
/// fully source-compatible, as in the paper (§5.6).
enum class StorageKind { kDisk, kMainMemory };

/// The Ode object manager's database: object access with strict 2PL over
/// a storage manager, persistent named roots, per-database metatype ids,
/// and clusters (named persistent collections used for iteration).
///
/// Object images are opaque byte strings at this layer; typed access,
/// wrapper-function event posting, and triggers live in odepp/ above.
class Database {
 public:
  /// Opens (creating if needed) a database. `path` may be empty for a
  /// volatile main-memory database.
  static Result<std::unique_ptr<Database>> Open(StorageKind kind,
                                                const std::string& path);

  /// As Open, but with a caller-built storage manager (tests use this to
  /// inject non-default options).
  static Result<std::unique_ptr<Database>> OpenWith(
      std::unique_ptr<StorageManager> store);

  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  Status Close();

  // --- object access (all acquire strict-2PL locks for `txn`) ---

  /// pnew: allocates a persistent object holding `image`.
  Result<Oid> NewObject(Transaction* txn, Slice image);

  /// Reads under a shared lock.
  Status ReadObject(Transaction* txn, Oid oid, std::vector<char>* out);

  /// Reads under an exclusive lock — used when the caller intends to
  /// write the object back (e.g. advancing a trigger FSM: the paper notes
  /// such accesses "require acquisition of a write lock", §5.1.3).
  Status ReadObjectForUpdate(Transaction* txn, Oid oid,
                             std::vector<char>* out);

  /// Writes under an exclusive lock.
  Status WriteObject(Transaction* txn, Oid oid, Slice image);

  /// pdelete: frees under an exclusive lock.
  Status FreeObject(Transaction* txn, Oid oid);

  bool ObjectExists(Transaction* txn, Oid oid);

  // --- persistent named roots ---

  Status SetRoot(Transaction* txn, const std::string& name, Oid oid);
  Result<Oid> GetRoot(Transaction* txn, const std::string& name);

  // --- per-database metatypes (paper: "Each database has its own
  // metatype object for each type that exists in that database") ---

  /// Returns the database-local id for the named type, assigning and
  /// persisting a fresh one on first use.
  Result<uint32_t> MetatypeId(Transaction* txn, const std::string& type_name);

  /// Reverse lookup of MetatypeId.
  Result<std::string> MetatypeName(Transaction* txn, uint32_t id);

  // --- object versions (O++ supports "persistent and versioned
  // objects", §2; a version chain links each version to its parent) ---

  /// Records that `child` is a new version derived from `parent`.
  Status RecordVersion(Transaction* txn, Oid child, Oid parent);

  /// The version `oid` was derived from; kNotFound for unversioned
  /// objects / chain heads.
  Result<Oid> VersionParent(Transaction* txn, Oid oid);

  // --- clusters (named persistent object collections) ---

  Status AddToCluster(Transaction* txn, const std::string& cluster, Oid oid);
  Status RemoveFromCluster(Transaction* txn, const std::string& cluster,
                           Oid oid);
  Result<std::vector<Oid>> ClusterContents(Transaction* txn,
                                           const std::string& cluster);

  StorageManager* store() { return store_.get(); }
  LockManager* locks() { return &locks_; }
  TransactionManager* txns() { return txns_.get(); }
  /// The database-wide metrics registry: storage, lock, transaction, and
  /// trigger metrics all land here (one reporting surface per database).
  MetricsRegistry* metrics() { return metrics_.get(); }
  /// The database-wide span tracer / flight recorder: every layer records
  /// its spans here, so one snapshot yields a full transaction timeline.
  Tracer* tracer() { return tracer_.get(); }

 private:
  explicit Database(std::unique_ptr<StorageManager> store);

  /// Loads (or creates) the persistent object behind `root_name` that
  /// holds a serialized string->u64 map, applies `mutate`, stores it
  /// back. Used for the metatype catalog and the cluster directory.
  Status UpdateDirectory(
      Transaction* txn, const std::string& root_name,
      const std::function<void(std::map<std::string, uint64_t>*)>& mutate);
  Status ReadDirectory(Transaction* txn, const std::string& root_name,
                       std::map<std::string, uint64_t>* out);

  /// Declared first so the registry outlives every component whose
  /// counters point into it; the tracer likewise precedes every layer
  /// that records spans through it.
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<StorageManager> store_;
  LockManager locks_;
  std::unique_ptr<TransactionManager> txns_;
  bool open_ = false;
};

}  // namespace ode

#endif  // ODE_OBJSTORE_DATABASE_H_
