#ifndef ODE_BASELINES_DENSE_FSM_H_
#define ODE_BASELINES_DENSE_FSM_H_

#include <cstdint>
#include <vector>

#include "events/fsm.h"

namespace ode {

/// The transition representation the authors "originally planned" (§6): a
/// dense two-dimensional array indexed by (state, event integer). It was
/// abandoned because with globally-unique event integers the array is
/// extremely sparse; benchmark E3 reproduces the trade-off (dense lookup
/// is an array index; sparse saves the memory).
///
/// `width` is the size of the event-integer space the table must cover —
/// pass the class-local alphabet size to model per-class renumbering (the
/// authors' fallback that broke under multiple inheritance), or the whole
/// global symbol range to model unique integers.
class DenseFsm {
 public:
  DenseFsm(const Fsm& fsm, Symbol width);

  /// Two array indexes; out-of-width or missing symbols keep the state.
  int32_t Move(int32_t state, Symbol symbol) const {
    if (state < 0 || symbol >= width_) return state;
    return table_[static_cast<size_t>(state) * width_ + symbol];
  }

  bool Accepting(int32_t state) const {
    return state >= 0 && accept_[static_cast<size_t>(state)];
  }

  size_t MemoryBytes() const {
    return table_.size() * sizeof(int32_t) + accept_.size();
  }

  Symbol width() const { return width_; }

 private:
  Symbol width_;
  std::vector<int32_t> table_;  // states x width, row-major
  std::vector<char> accept_;
};

}  // namespace ode

#endif  // ODE_BASELINES_DENSE_FSM_H_
