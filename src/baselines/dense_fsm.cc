#include "baselines/dense_fsm.h"

#include "common/logging.h"

namespace ode {

DenseFsm::DenseFsm(const Fsm& fsm, Symbol width) : width_(width) {
  const auto& states = fsm.states();
  table_.assign(states.size() * width, 0);
  accept_.assign(states.size(), 0);
  for (size_t s = 0; s < states.size(); ++s) {
    accept_[s] = states[s].accept ? 1 : 0;
    int32_t state = static_cast<int32_t>(s);
    for (Symbol sym = 0; sym < width; ++sym) {
      table_[s * width + sym] = fsm.Move(state, sym);
    }
  }
}

}  // namespace ode
