#include "baselines/string_event_rep.h"

#include "common/hash.h"

namespace ode {

size_t StringEventRepHash::operator()(const StringEventRep& e) const {
  uint64_t h = Hash64(e.class_name.data(), e.class_name.size());
  h = Hash64(e.prototype.data(), e.prototype.size(), h);
  h = Hash64(e.position.data(), e.position.size(), h);
  return static_cast<size_t>(h);
}

uint32_t StringEventTable::Intern(const StringEventRep& rep) {
  auto it = table_.find(rep);
  if (it != table_.end()) return it->second;
  uint32_t id = next_++;
  table_.emplace(rep, id);
  return id;
}

uint32_t StringEventTable::Lookup(const StringEventRep& rep) const {
  auto it = table_.find(rep);
  return it == table_.end() ? 0 : it->second;
}

}  // namespace ode
