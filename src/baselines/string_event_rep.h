#ifndef ODE_BASELINES_STRING_EVENT_REP_H_
#define ODE_BASELINES_STRING_EVENT_REP_H_

#include <cstdint>
#include <string>
#include <unordered_map>

namespace ode {

/// Sentinel-style event representation (paper §7): an event is "a triple
/// of strings: the class name, the member function prototype, and the
/// string 'begin' (before) or 'end' (after)". Posting an event requires
/// building and hashing/comparing the triple, versus Ode's single interned
/// integer — benchmark E2 measures the difference the paper claims
/// ("significantly lower event posting overhead").
struct StringEventRep {
  std::string class_name;
  std::string prototype;  // e.g. "void Buy(Merchant*, float)"
  std::string position;   // "begin" or "end"

  friend bool operator==(const StringEventRep& a, const StringEventRep& b) {
    return a.class_name == b.class_name && a.prototype == b.prototype &&
           a.position == b.position;
  }
};

struct StringEventRepHash {
  size_t operator()(const StringEventRep& e) const;
};

/// Event table keyed by string triples: the lookup a Sentinel-style
/// runtime performs on every posting to identify the event.
class StringEventTable {
 public:
  /// Registers the triple; returns its id.
  uint32_t Intern(const StringEventRep& rep);

  /// The per-posting lookup: resolves a triple to its id (0 if unknown).
  uint32_t Lookup(const StringEventRep& rep) const;

  size_t size() const { return table_.size(); }

 private:
  std::unordered_map<StringEventRep, uint32_t, StringEventRepHash> table_;
  uint32_t next_ = 1;
};

}  // namespace ode

#endif  // ODE_BASELINES_STRING_EVENT_REP_H_
