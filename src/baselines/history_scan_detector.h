#ifndef ODE_BASELINES_HISTORY_SCAN_DETECTOR_H_
#define ODE_BASELINES_HISTORY_SCAN_DETECTOR_H_

#include <vector>

#include "events/nfa.h"

namespace ode {

/// Naive composite-event detection baseline for benchmark E6: keep the
/// object's whole event history and, on each posting, re-simulate the
/// expression's NFA over it from the start — O(history) per event versus
/// the compiled FSM's O(1) state advance (paper design goal 2: "detection
/// of composite events should be efficient").
class HistoryScanDetector {
 public:
  explicit HistoryScanDetector(Nfa nfa) : nfa_(std::move(nfa)) {}

  /// Appends the event and returns whether the expression is satisfied
  /// at this position.
  bool Post(Symbol symbol) {
    history_.push_back(symbol);
    std::vector<std::vector<bool>> no_masks(history_.size());
    std::vector<bool> accepts = SimulateNfa(nfa_, history_, no_masks);
    return !accepts.empty() && accepts.back();
  }

  void Reset() { history_.clear(); }
  size_t history_size() const { return history_.size(); }

 private:
  Nfa nfa_;
  std::vector<Symbol> history_;
};

}  // namespace ode

#endif  // ODE_BASELINES_HISTORY_SCAN_DETECTOR_H_
