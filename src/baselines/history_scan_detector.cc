#include "baselines/history_scan_detector.h"

// Header-only implementation; this file anchors the target in the build.
