#ifndef ODE_TRIGGER_PROVENANCE_H_
#define ODE_TRIGGER_PROVENANCE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/tracing.h"
#include "objstore/oid.h"

namespace ode {

/// One FSM advance on the road to (or towards) an accept state: which
/// basic event moved the machine, from where to where, in which
/// transaction, and what the mask pseudo-events said along the way.
struct FiringStep {
  uint64_t seq = 0;        // tracer sequence number of the transition
  TxnId txn = kNoTxn;      // transaction that posted the basic event
  uint32_t symbol = 0;     // the basic event
  int64_t from_state = 0;
  int64_t to_state = 0;
  /// Mask pseudo-events resolved for this machine immediately before the
  /// transition, as (ordinal, verdict) pairs.
  std::vector<std::pair<int64_t, bool>> masks;
  /// Hex-encoded activation-parameter bindings carried by the machine
  /// at this transition (empty if the trigger takes no parameters).
  std::string params;
};

/// The reconstructed causal chain behind one trigger firing — the answer
/// to the paper's "why did this perpetual trigger fire?". For a trigger
/// over `relative(a, b, c)` the steps are exactly the a, b, c postings
/// (possibly from different transactions) that drove the mask FSM to its
/// accept state; for a machine still in flight (`fired == false`) they
/// are the progress so far since the last firing.
struct FiringExplanation {
  Oid trigger;
  bool fired = false;
  TxnId firing_txn = kNoTxn;   // txn whose posting completed the chain
  int64_t accept_state = 0;
  std::vector<FiringStep> steps;

  /// Multi-line human-readable rendering.
  std::string ToString(const std::function<std::string(uint32_t)>&
                           symbol_namer = nullptr) const;
};

/// Reconstructs the most recent firing (or in-flight progress) of
/// `trigger` from a span snapshot (`Tracer::Snapshot()`). A perpetual
/// trigger fires repeatedly; the chain returned covers the transitions
/// since its previous accept, so each call explains the latest firing
/// only. Returns NotFound if the snapshot holds no FSM activity for the
/// trigger — not yet activated, never advanced, its spans already
/// overwritten by ring wraparound, or its transactions unsampled.
Result<FiringExplanation> ExplainFiring(const std::vector<Span>& spans,
                                        Oid trigger);

}  // namespace ode

#endif  // ODE_TRIGGER_PROVENANCE_H_
