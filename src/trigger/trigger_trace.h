#ifndef ODE_TRIGGER_TRIGGER_TRACE_H_
#define ODE_TRIGGER_TRIGGER_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/ordered_mutex.h"
#include "common/thread_annotations.h"
#include "events/event_expr.h"
#include "objstore/oid.h"
#include "objstore/type_descriptor.h"

namespace ode {

/// One step of a trigger's lifecycle, as recorded by TriggerTraceRing.
/// The a/b fields are overloaded per kind (see the accessors and
/// docs/observability.md for the schema).
struct TraceEvent {
  enum class Kind : uint8_t {
    kEventPosted,      // PostEvent entered: symbol posted to anchor
    kFastPathSkip,     // footnote-3 short-circuit: no active triggers
    kFsmTransition,    // one machine moved: a = from state, b = to state
    kMaskEvaluated,    // mask pseudo-event resolved: a = mask ordinal,
                       //   b = 1 (True) / 0 (False)
    kAcceptReached,    // machine entered an accept state (a = state)
    kActionScheduled,  // non-immediate action queued under `coupling`
    kActionRan,        // action body executed under `coupling`
    kStateWriteBack,   // dirty cached TriggerState written back
    kAbortDiscard,     // txn aborted: dirty cached state discarded
    kCommitBatch,      // txn committed: a = group-commit batch id (low
                       //   bits), b = batch size (1 = committed alone)
  };

  uint64_t seq = 0;  // monotonically increasing per ring
  Kind kind = Kind::kEventPosted;
  CouplingMode coupling = CouplingMode::kImmediate;
  TxnId txn = kNoTxn;
  Oid trigger;  // TriggerState oid; null for local triggers / posts
  Oid anchor;
  Symbol symbol = 0;  // event being processed (0 when not applicable)
  int32_t a = 0;
  int32_t b = 0;

  int32_t from_state() const { return a; }
  int32_t to_state() const { return b; }
  bool mask_result() const { return b != 0; }
  int32_t batch_id() const { return a; }
  int32_t batch_size() const { return b; }

  /// One-line rendering, e.g.
  ///   [12] txn 3 fsm-transition trig 41 anchor 17 ev CredCard::Buy 0 -> 2
  std::string ToString() const;
};

const char* TraceEventKindToString(TraceEvent::Kind kind);

/// Bounded ring of TraceEvents answering "why did/didn't this trigger
/// fire": when full, the oldest entry is overwritten. Recording takes a
/// mutex — the ring is an opt-in debugging aid (capacity 0 = off, the
/// default; callers null-check the ring pointer before building events),
/// so the posting hot path pays only a pointer test when tracing is off.
class TriggerTraceRing {
 public:
  explicit TriggerTraceRing(size_t capacity);

  void Record(TraceEvent event);

  /// Points the `ode_trigger_trace_dropped_total` counter at `registry`
  /// (the owning Database's); a standalone ring counts into a private
  /// registry. Each wraparound overwrite increments it.
  void BindMetrics(MetricsRegistry* registry);

  size_t capacity() const { return capacity_; }

  /// Events in recording order (oldest surviving entry first).
  std::vector<TraceEvent> Events() const;

  /// Total events ever recorded, including overwritten ones.
  uint64_t total_recorded() const;

  /// Events overwritten by wraparound since construction (Clear() does
  /// not reset it — those events were surfaced, not lost).
  uint64_t total_dropped() const;

  void Clear();

  /// Human-readable dump, one ToString() line per event, with a header
  /// noting how many events were dropped by wraparound.
  std::string Dump() const;

 private:
  const size_t capacity_;
  // Deep rank: Record() is called from trigger paths that may hold
  // stripe or containment locks; never calls out while held.
  mutable OrderedMutex mu_{lock_rank::kTriggerTraceRing,
                           "trigger_trace.mu"};
  std::vector<TraceEvent> ring_ ODE_GUARDED_BY(mu_);
  size_t next_ ODE_GUARDED_BY(mu_) = 0;       // ring_ slot for next event
  uint64_t seq_ ODE_GUARDED_BY(mu_) = 0;      // == total recorded
  uint64_t dropped_ ODE_GUARDED_BY(mu_) = 0;  // overwritten by wraparound

  // Metrics (see BindMetrics).
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  Counter* dropped_metric_ = nullptr;
};

}  // namespace ode

#endif  // ODE_TRIGGER_TRIGGER_TRACE_H_
