#include "trigger/provenance.h"

#include <cinttypes>
#include <cstdio>

namespace ode {

std::string FiringExplanation::ToString(
    const std::function<std::string(uint32_t)>& symbol_namer) const {
  char buf[192];
  std::string out;
  if (fired) {
    std::snprintf(buf, sizeof(buf),
                  "trigger %" PRIu64 " FIRED in txn %" PRIu64
                  " (accept state %" PRId64 "), driven by %zu event(s):\n",
                  trigger.value(), firing_txn, accept_state, steps.size());
  } else {
    std::snprintf(buf, sizeof(buf),
                  "trigger %" PRIu64
                  " has not fired; machine advanced by %zu event(s):\n",
                  trigger.value(), steps.size());
  }
  out += buf;
  for (size_t i = 0; i < steps.size(); ++i) {
    const FiringStep& s = steps[i];
    std::snprintf(buf, sizeof(buf), "  %zu. txn %" PRIu64 " ev ", i + 1,
                  s.txn);
    out += buf;
    if (symbol_namer) {
      out += symbol_namer(s.symbol);
    } else {
      std::snprintf(buf, sizeof(buf), "#%u", s.symbol);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), " state %" PRId64 " -> %" PRId64,
                  s.from_state, s.to_state);
    out += buf;
    for (const auto& [ordinal, verdict] : s.masks) {
      std::snprintf(buf, sizeof(buf), " [mask#%" PRId64 "=%s]", ordinal,
                    verdict ? "True" : "False");
      out += buf;
    }
    if (!s.params.empty()) {
      out += " params=";
      out += s.params;
    }
    out += '\n';
  }
  return out;
}

Result<FiringExplanation> ExplainFiring(const std::vector<Span>& spans,
                                        Oid trigger) {
  // One pass over the (oldest-first) snapshot, keeping only this
  // trigger's FSM activity. Masks are recorded immediately before the
  // transition they gate (PostEvent resolves the mask pseudo-event and
  // then moves the machine), so pending mask spans attach to the next
  // transition of the same machine. Accept spans mark chain boundaries.
  // Note an accept state can be absorbing (relative(a,b,c) stays
  // satisfied once its history exists), in which case a perpetual
  // trigger re-fires on later events with no new transitions — the
  // chain behind the latest firing is then still the run of
  // transitions that originally drove the machine into accept.
  std::vector<FiringStep> steps;
  std::vector<std::pair<int64_t, bool>> pending_masks;
  // steps.size() at each accept, paired with the accept span itself.
  std::vector<std::pair<size_t, Span>> accepts;
  for (const Span& s : spans) {
    if (s.trigger != trigger) continue;
    switch (s.kind) {
      case SpanKind::kMaskEval:
        pending_masks.emplace_back(s.a, s.b != 0);
        break;
      case SpanKind::kFsmTransition: {
        FiringStep step;
        step.seq = s.seq;
        step.txn = s.txn;
        step.symbol = s.symbol;
        step.from_state = s.a;
        step.to_state = s.b;
        step.masks = std::move(pending_masks);
        pending_masks.clear();
        step.params = s.detail;
        steps.push_back(std::move(step));
        break;
      }
      case SpanKind::kAcceptReached:
        accepts.emplace_back(steps.size(), s);
        break;
      default:
        break;
    }
  }
  if (steps.empty() && accepts.empty()) {
    return Status::NotFound("no FSM activity recorded for trigger " +
                            trigger.ToString() +
                            " (not sampled, or overwritten by wraparound)");
  }
  FiringExplanation out;
  out.trigger = trigger;
  if (!accepts.empty()) {
    const auto& [end, accept_span] = accepts.back();
    out.fired = true;
    out.firing_txn = accept_span.txn;
    out.accept_state = accept_span.a;
    // Start the chain at the most recent prior accept that actually has
    // transitions between it and this firing. Accepts with the same step
    // count are re-fires from an absorbing accept state, not new chains.
    size_t begin = 0;
    for (size_t k = accepts.size() - 1; k-- > 0;) {
      if (accepts[k].first < end) {
        begin = accepts[k].first;
        break;
      }
    }
    out.steps.assign(steps.begin() + begin, steps.begin() + end);
  } else {
    out.steps = std::move(steps);
  }
  return out;
}

}  // namespace ode
