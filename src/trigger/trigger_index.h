#ifndef ODE_TRIGGER_TRIGGER_INDEX_H_
#define ODE_TRIGGER_TRIGGER_INDEX_H_

#include <string>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "objstore/database.h"
#include "objstore/oid.h"

namespace ode {

/// The persistent "index that maps an object to all the triggers active on
/// that object" (paper §5.4.1), used on every event posting. Implemented
/// as a fixed-fanout persistent hash table: a directory object holds the
/// bucket Oids; each bucket holds (object oid -> list of TriggerState
/// oids) entries. One posting touches exactly one bucket.
///
/// Storing the index in the database (not transient memory) is what gives
/// Ode *global* composite events — trigger progress made by one program
/// is visible to the next (§7, contrast with Sentinel).
class TriggerIndex {
 public:
  /// `buckets` fixes the fanout when the index is first created in a
  /// database; an existing index keeps its original fanout.
  TriggerIndex(Database* db, size_t buckets = 64)
      : db_(db), default_buckets_(buckets) {}

  TriggerIndex(const TriggerIndex&) = delete;
  TriggerIndex& operator=(const TriggerIndex&) = delete;

  /// Adds the mapping obj -> trig (a TriggerState Oid).
  Status Insert(Transaction* txn, Oid obj, Oid trig);

  /// Removes the mapping; kNotFound if absent.
  Status Remove(Transaction* txn, Oid obj, Oid trig);

  /// All TriggerState Oids active on obj (empty vector if none).
  Result<std::vector<Oid>> Lookup(Transaction* txn, Oid obj);

  /// Scans the whole index: (object, trigger-state) pairs. Used to prime
  /// the in-memory has-active-triggers counts at session start (the
  /// paper's footnote 3 fast path).
  Status ForEach(Transaction* txn,
                 const std::function<void(Oid obj, Oid trig)>& fn);

 private:
  struct Bucket {
    // obj -> trigger-state oids
    std::vector<std::pair<Oid, std::vector<Oid>>> entries;
  };

  Result<std::vector<Oid>> LoadDirectory(Transaction* txn, bool create);
  Result<Bucket> LoadBucket(Transaction* txn, Oid bucket_oid);
  Status StoreBucket(Transaction* txn, Oid bucket_oid, const Bucket& bucket);

  Database* db_;
  size_t default_buckets_;

  // The directory (the bucket-Oid array) is immutable once the creating
  // transaction commits — the fanout is fixed for the database's
  // lifetime — so it is cached process-wide after the first committed
  // load, saving a root probe plus an object read on every index
  // operation. The cache is only populated once the creating transaction
  // (if it ran in this process) is known to have committed, so an
  // aborted first-use never leaves a stale directory behind.
  //
  // Outermost trigger-layer rank: LoadDirectory queries the transaction
  // manager's Outcome() (rank kTxnManager) while holding dir_mu_.
  mutable OrderedMutex dir_mu_{lock_rank::kTriggerIndexDir,
                               "trigger_index.dir_mu"};
  std::vector<Oid> cached_dir_ ODE_GUARDED_BY(dir_mu_);
  TxnId creator_txn_ ODE_GUARDED_BY(dir_mu_) = 0;
};

}  // namespace ode

#endif  // ODE_TRIGGER_TRIGGER_INDEX_H_
