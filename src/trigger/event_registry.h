#ifndef ODE_TRIGGER_EVENT_REGISTRY_H_
#define ODE_TRIGGER_EVENT_REGISTRY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ordered_mutex.h"
#include "common/thread_annotations.h"
#include "events/event_expr.h"

namespace ode {

/// Run-time interning of basic events to globally-unique small integers —
/// the paper's eventRep mechanism (§5.2). "Because of separate
/// compilation, unique integers cannot be assigned at compile time...
/// the assignment of unique integers to represent events is made at
/// run-time. The eventRep constructor examines a table to see if another
/// eventRep with the same parameters has been constructed" — here the
/// parameters are (defining type name, event name), and the table is this
/// registry.
///
/// Events declared in a base class keep the base class's symbol in
/// derived classes, so one FSM transition matches the event regardless of
/// the dynamic type of the posting object.
class EventRegistry {
 public:
  EventRegistry() = default;

  EventRegistry(const EventRegistry&) = delete;
  EventRegistry& operator=(const EventRegistry&) = delete;

  /// Process-wide registry (the paper's single static table).
  static EventRegistry& Global();

  /// Returns the unique symbol for (type, event), assigning the next
  /// integer on first sight — the eventRep constructor.
  Symbol Intern(const std::string& type_name, const std::string& event_name);

  /// Looks up without interning; returns 0 (an invalid symbol) if absent.
  Symbol Find(const std::string& type_name,
              const std::string& event_name) const;

  /// Human-readable "Type::event" name of a symbol (for FSM printing).
  std::string NameOf(Symbol symbol) const;

  size_t size() const;

 private:
  // Deep rank: interning happens under type-registration and posting
  // paths but never calls back out while holding mu_.
  mutable OrderedMutex mu_{lock_rank::kEventRegistry, "event_registry.mu"};
  std::unordered_map<std::string, Symbol> table_ ODE_GUARDED_BY(mu_);
  // index: symbol - kFirstEventSymbol
  std::vector<std::string> names_ ODE_GUARDED_BY(mu_);
  Symbol next_ ODE_GUARDED_BY(mu_) = kFirstEventSymbol;
};

}  // namespace ode

#endif  // ODE_TRIGGER_EVENT_REGISTRY_H_
