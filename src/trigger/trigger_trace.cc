#include "trigger/trigger_trace.h"

#include <cinttypes>
#include <cstdio>

#include "trigger/event_registry.h"

namespace ode {

const char* TraceEventKindToString(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kEventPosted:
      return "event-posted";
    case TraceEvent::Kind::kFastPathSkip:
      return "fast-path-skip";
    case TraceEvent::Kind::kFsmTransition:
      return "fsm-transition";
    case TraceEvent::Kind::kMaskEvaluated:
      return "mask-evaluated";
    case TraceEvent::Kind::kAcceptReached:
      return "accept-reached";
    case TraceEvent::Kind::kActionScheduled:
      return "action-scheduled";
    case TraceEvent::Kind::kActionRan:
      return "action-ran";
    case TraceEvent::Kind::kStateWriteBack:
      return "state-writeback";
    case TraceEvent::Kind::kAbortDiscard:
      return "abort-discard";
    case TraceEvent::Kind::kCommitBatch:
      return "commit-batch";
  }
  return "unknown";
}

std::string TraceEvent::ToString() const {
  char buf[256];
  int n = std::snprintf(buf, sizeof(buf),
                        "[%" PRIu64 "] txn %" PRIu64 " %-15s", seq, txn,
                        TraceEventKindToString(kind));
  std::string out(buf, n > 0 ? static_cast<size_t>(n) : 0);
  auto add = [&out, &buf](int m) {
    out.append(buf, m > 0 ? static_cast<size_t>(m) : 0);
  };
  if (!trigger.IsNull()) {
    add(std::snprintf(buf, sizeof(buf), " trig %" PRIu64, trigger.value()));
  }
  if (!anchor.IsNull()) {
    add(std::snprintf(buf, sizeof(buf), " anchor %" PRIu64, anchor.value()));
  }
  if (symbol != 0 || kind == Kind::kEventPosted) {
    add(std::snprintf(buf, sizeof(buf), " ev %s",
                      EventRegistry::Global().NameOf(symbol).c_str()));
  }
  switch (kind) {
    case Kind::kFsmTransition:
      add(std::snprintf(buf, sizeof(buf), " state %d -> %d", a, b));
      break;
    case Kind::kMaskEvaluated:
      add(std::snprintf(buf, sizeof(buf), " mask#%d = %s", a,
                        b != 0 ? "True" : "False"));
      break;
    case Kind::kAcceptReached:
      add(std::snprintf(buf, sizeof(buf), " state %d", a));
      break;
    case Kind::kActionScheduled:
    case Kind::kActionRan:
      add(std::snprintf(buf, sizeof(buf), " coupling %s",
                        CouplingModeToString(coupling)));
      break;
    case Kind::kCommitBatch:
      add(std::snprintf(buf, sizeof(buf), " batch #%d size %d", a, b));
      break;
    default:
      break;
  }
  return out;
}

TriggerTraceRing::TriggerTraceRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
  BindMetrics(nullptr);
}

void TriggerTraceRing::BindMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    registry = owned_metrics_.get();
  } else {
    owned_metrics_.reset();
  }
  dropped_metric_ = registry->GetCounter("ode_trigger_trace_dropped_total");
}

void TriggerTraceRing::Record(TraceEvent event) {
  bool overwrote;
  {
    MutexLock lock(&mu_);
    event.seq = seq_++;
    overwrote = ring_.size() >= capacity_;
    if (!overwrote) {
      ring_.push_back(event);
    } else {
      ring_[next_] = event;
      ++dropped_;
    }
    next_ = (next_ + 1) % capacity_;
  }
  if (overwrote) dropped_metric_->Inc();
}

std::vector<TraceEvent> TriggerTraceRing::Events() const {
  MutexLock lock(&mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_ is the oldest entry once the ring has wrapped.
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

uint64_t TriggerTraceRing::total_recorded() const {
  MutexLock lock(&mu_);
  return seq_;
}

uint64_t TriggerTraceRing::total_dropped() const {
  MutexLock lock(&mu_);
  return dropped_;
}

void TriggerTraceRing::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  next_ = 0;
  // seq_ keeps counting: sequence numbers stay unique across Clear().
}

std::string TriggerTraceRing::Dump() const {
  // One critical section for both the events and the totals: taking the
  // lock twice (Events() then seq_) could report a total that includes
  // events recorded between the two, making shown/recorded/dropped
  // disagree with each other.
  std::vector<TraceEvent> events;
  uint64_t total, dropped;
  {
    MutexLock lock(&mu_);
    events.reserve(ring_.size());
    if (ring_.size() < capacity_) {
      events = ring_;
    } else {
      for (size_t i = 0; i < ring_.size(); ++i) {
        events.push_back(ring_[(next_ + i) % capacity_]);
      }
    }
    total = seq_;
    dropped = dropped_;
  }
  char header[128];
  int n = std::snprintf(header, sizeof(header),
                        "trigger trace: %zu event(s) shown, %" PRIu64
                        " recorded (%" PRIu64 " dropped)\n",
                        events.size(), total, dropped);
  std::string out(header, n > 0 ? static_cast<size_t>(n) : 0);
  for (const TraceEvent& e : events) {
    out += e.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace ode
