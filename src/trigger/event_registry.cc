#include "trigger/event_registry.h"

namespace ode {

EventRegistry& EventRegistry::Global() {
  // Function-local static reference; never destroyed (see style guide on
  // static storage duration objects).
  static EventRegistry& instance = *new EventRegistry();
  return instance;
}

Symbol EventRegistry::Intern(const std::string& type_name,
                             const std::string& event_name) {
  std::string key = type_name + "::" + event_name;
  MutexLock lock(&mu_);
  auto it = table_.find(key);
  if (it != table_.end()) return it->second;
  Symbol symbol = next_++;
  table_.emplace(std::move(key), symbol);
  names_.push_back(type_name + "::" + event_name);
  return symbol;
}

Symbol EventRegistry::Find(const std::string& type_name,
                           const std::string& event_name) const {
  MutexLock lock(&mu_);
  auto it = table_.find(type_name + "::" + event_name);
  return it == table_.end() ? 0 : it->second;
}

std::string EventRegistry::NameOf(Symbol symbol) const {
  MutexLock lock(&mu_);
  if (symbol < kFirstEventSymbol ||
      symbol - kFirstEventSymbol >= names_.size()) {
    return "ev" + std::to_string(symbol);
  }
  return names_[symbol - kFirstEventSymbol];
}

size_t EventRegistry::size() const {
  MutexLock lock(&mu_);
  return names_.size();
}

}  // namespace ode
