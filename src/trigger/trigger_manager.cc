#include "trigger/trigger_manager.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"
#include "trigger/event_registry.h"

namespace ode {

namespace {

/// Trigger-ring kinds and span kinds correspond one-to-one except for
/// kCommitBatch, which the storage layer records itself (as kFsyncBatch,
/// with the real batch interval); returns false for kinds the span
/// tracer skips.
bool SpanKindFor(TraceEvent::Kind kind, SpanKind* out) {
  switch (kind) {
    case TraceEvent::Kind::kEventPosted:
      *out = SpanKind::kEventPosted;
      return true;
    case TraceEvent::Kind::kFastPathSkip:
      *out = SpanKind::kFastPathSkip;
      return true;
    case TraceEvent::Kind::kFsmTransition:
      *out = SpanKind::kFsmTransition;
      return true;
    case TraceEvent::Kind::kMaskEvaluated:
      *out = SpanKind::kMaskEval;
      return true;
    case TraceEvent::Kind::kAcceptReached:
      *out = SpanKind::kAcceptReached;
      return true;
    case TraceEvent::Kind::kActionScheduled:
      *out = SpanKind::kActionScheduled;
      return true;
    case TraceEvent::Kind::kActionRan:
      *out = SpanKind::kActionRun;
      return true;
    case TraceEvent::Kind::kStateWriteBack:
      *out = SpanKind::kStateWriteBack;
      return true;
    case TraceEvent::Kind::kAbortDiscard:
      *out = SpanKind::kAbortDiscard;
      return true;
    case TraceEvent::Kind::kCommitBatch:
      return false;
  }
  return false;
}

std::string HexEncode(const std::vector<char>& bytes) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (char c : bytes) {
    unsigned char b = static_cast<unsigned char>(c);
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

}  // namespace

TriggerManager::Stats TriggerManager::MakeStats(MetricsRegistry* registry) {
  return Stats{
      *registry->GetCounter("ode_trigger_posts_total"),
      *registry->GetCounter("ode_trigger_fast_path_skips_total"),
      *registry->GetCounter("ode_trigger_fsm_moves_total"),
      *registry->GetCounter("ode_trigger_mask_evals_total"),
      *registry->GetCounter("ode_trigger_fires_total"),
      *registry->GetCounter("ode_trigger_activations_total"),
      *registry->GetCounter("ode_trigger_deactivations_total"),
      *registry->GetCounter("ode_trigger_state_cache_hits_total"),
      *registry->GetCounter("ode_trigger_state_cache_misses_total"),
      *registry->GetCounter("ode_trigger_lookup_cache_hits_total"),
      *registry->GetCounter("ode_trigger_lookup_cache_misses_total"),
      *registry->GetCounter("ode_trigger_state_writebacks_total"),
  };
}

TriggerManager::TriggerManager(Database* db, Options options)
    : db_(db),
      options_(options),
      index_(db, options.index_buckets),
      stats_(MakeStats(db->metrics())) {
  MetricsRegistry* metrics = db_->metrics();
  // Latencies are sampled: a posting (and a perpetual trigger's no-op
  // fire) is ~hundreds of ns, so two clock reads per operation would be
  // a measurable fraction of what they measure (experiment E1's
  // MetricsToggle variant keeps this honest).
  post_latency_ =
      metrics->GetHistogram("ode_trigger_post_latency_ns", /*sample=*/16);
  action_latency_[static_cast<int>(CouplingMode::kImmediate)] =
      metrics->GetHistogram("ode_trigger_action_latency_ns_immediate",
                            /*sample=*/16);
  action_latency_[static_cast<int>(CouplingMode::kDeferred)] =
      metrics->GetHistogram("ode_trigger_action_latency_ns_deferred",
                            /*sample=*/16);
  action_latency_[static_cast<int>(CouplingMode::kDependent)] =
      metrics->GetHistogram("ode_trigger_action_latency_ns_dependent",
                            /*sample=*/16);
  action_latency_[static_cast<int>(CouplingMode::kIndependent)] =
      metrics->GetHistogram("ode_trigger_action_latency_ns_independent",
                            /*sample=*/16);
  if (options_.trace_capacity > 0) {
    trace_ = std::make_unique<TriggerTraceRing>(options_.trace_capacity);
    trace_->BindMetrics(metrics);
  }
  tracer_ = db_->tracer();
  // Give the tracer readable event names for timelines and exports
  // (common/ cannot depend on the trigger layer's EventRegistry).
  tracer_->SetSymbolNamer(
      [](uint32_t symbol) { return EventRegistry::Global().NameOf(symbol); });
  size_t stripes = std::max<size_t>(1, options_.lock_stripes);
  count_shards_.reserve(stripes);
  ctx_shards_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    count_shards_.push_back(std::make_unique<CountShard>());
    ctx_shards_.push_back(std::make_unique<CtxShard>());
  }
  TransactionManager* txns = db_->txns();
  txns->SetPreCommitHook([this](Transaction* t) { return PreCommit(t); });
  txns->SetPreAbortHook([this](Transaction* t) { return PreAbort(t); });
  txns->SetPostCommitHook([this](Transaction* t) { return PostCommit(t); });
  txns->SetPostAbortHook([this](Transaction* t) { return PostAbort(t); });
}

void TriggerManager::TraceSpan(TraceEvent::Kind kind, TxnId txn, Oid trigger,
                               Oid anchor, Symbol symbol, int32_t a, int32_t b,
                               CouplingMode coupling,
                               const std::vector<char>* params,
                               uint64_t start_ns) {
  SpanKind span_kind;
  if (!SpanKindFor(kind, &span_kind)) return;
  Span s;
  s.kind = span_kind;
  s.txn = txn;
  s.trigger = trigger;
  s.anchor = anchor;
  s.symbol = symbol;
  s.a = a;
  s.b = b;
  if (params != nullptr && !params->empty()) {
    s.detail = HexEncode(*params);
  } else if (kind == TraceEvent::Kind::kActionScheduled ||
             kind == TraceEvent::Kind::kActionRan) {
    s.detail = CouplingModeToString(coupling);
  }
  if (start_ns != 0) {
    tracer_->Interval(std::move(s), start_ns, LatencyTimer::NowNanos());
  } else {
    tracer_->Instant(std::move(s));
  }
}

void TriggerManager::RegisterType(const TypeDescriptor* type) {
  std::lock_guard<std::mutex> lock(types_mu_);
  types_[type->name()] = type;
}

const TypeDescriptor* TriggerManager::FindType(const std::string& name) const {
  std::lock_guard<std::mutex> lock(types_mu_);
  auto it = types_.find(name);
  return it == types_.end() ? nullptr : it->second;
}

TriggerManager::TxnCtx* TriggerManager::GetCtx(Transaction* txn) {
  // Fast path: the context pointer is cached in the transaction itself,
  // so repeated posts skip both the stripe lock and the hash lookup.
  if (void* scratch = txn->trigger_scratch()) {
    return static_cast<TxnCtx*>(scratch);
  }
  CtxShard& shard = CtxShardFor(txn->id());
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.contexts[txn->id()];
  if (slot == nullptr) slot = std::make_unique<TxnCtx>();
  txn->set_trigger_scratch(slot.get());
  return slot.get();
}

Status TriggerManager::PrimeActiveCounts(Transaction* txn) {
  std::unordered_map<Oid, int64_t, OidHash> counts;
  ODE_RETURN_NOT_OK(index_.ForEach(txn, [&](Oid obj, Oid trig) {
    (void)trig;
    ++counts[obj];
  }));
  for (auto& shard : count_shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->counts.clear();
  }
  for (const auto& [obj, count] : counts) {
    CountShard& shard = CountShardFor(obj);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.counts[obj] = count;
  }
  return Status::OK();
}

int64_t TriggerManager::CommittedCount(Oid obj) {
  CountShard& shard = CountShardFor(obj);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.counts.find(obj);
  return it == shard.counts.end() ? 0 : it->second;
}

int64_t TriggerManager::ActiveCount(Transaction* txn, Oid obj) {
  int64_t count = CommittedCount(obj);
  TxnCtx* ctx = GetCtx(txn);
  auto dit = ctx->count_delta.find(obj);
  if (dit != ctx->count_delta.end()) count += dit->second;
  auto lit = ctx->local_counts.find(obj);
  if (lit != ctx->local_counts.end()) count += lit->second;
  return count;
}

Result<const TypeDescriptor*> TriggerManager::ResolveMetatype(
    Transaction* txn, uint32_t metatype_id) {
  {
    std::lock_guard<std::mutex> lock(types_mu_);
    auto it = metatype_cache_.find(metatype_id);
    if (it != metatype_cache_.end()) return it->second;
  }
  ODE_ASSIGN_OR_RETURN(std::string name, db_->MetatypeName(txn, metatype_id));
  const TypeDescriptor* type = FindType(name);
  if (type == nullptr) {
    return Status::NotFound("type '" + name +
                            "' has persistent triggers but is not "
                            "registered in this program");
  }
  std::lock_guard<std::mutex> lock(types_mu_);
  metatype_cache_.emplace(metatype_id, type);
  return type;
}

Result<std::vector<Oid>> TriggerManager::CachedLookup(Transaction* txn,
                                                      TxnCtx* ctx, Oid obj) {
  if (options_.lookup_cache_capacity > 0) {
    auto it = ctx->lookup_cache.find(obj);
    if (it != ctx->lookup_cache.end()) {
      stats_.lookup_cache_hits.Inc();
      return it->second;
    }
  }
  stats_.lookup_cache_misses.Inc();
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> ids, index_.Lookup(txn, obj));
  if (options_.lookup_cache_capacity > 0) {
    if (ctx->lookup_cache.size() >= options_.lookup_cache_capacity) {
      ctx->lookup_cache.erase(ctx->lookup_cache.begin());
    }
    ctx->lookup_cache.emplace(obj, ids);
  }
  return ids;
}

Result<TriggerId> TriggerManager::Activate(Transaction* txn, Oid obj,
                                           const TypeDescriptor* obj_type,
                                           const std::string& trigger_name,
                                           Slice params) {
  return ActivateGroup(txn, {obj}, obj_type, trigger_name, params);
}

Result<TriggerId> TriggerManager::ActivateGroup(
    Transaction* txn, const std::vector<Oid>& anchors,
    const TypeDescriptor* obj_type, const std::string& trigger_name,
    Slice params) {
  if (anchors.empty()) {
    return Status::InvalidArgument("trigger needs at least one anchor");
  }
  const TypeDescriptor* defining = nullptr;
  const TriggerInfo* info = obj_type->FindTrigger(trigger_name, &defining);
  if (info == nullptr) {
    return Status::NotFound("class " + obj_type->name() +
                            " has no trigger '" + trigger_name + "'");
  }
  ODE_ASSIGN_OR_RETURN(uint32_t metatype_id,
                       db_->MetatypeId(txn, defining->name()));
  {
    std::lock_guard<std::mutex> lock(types_mu_);
    metatype_cache_.emplace(metatype_id, defining);
  }

  TriggerState state;
  state.triggernum = info->triggernum;
  state.trigobj = anchors.front();
  state.statenum = info->fsm.start();
  state.trigobjtype = metatype_id;
  state.params = params.ToVector();
  state.anchors = anchors;

  ODE_ASSIGN_OR_RETURN(Oid id, db_->NewObject(txn, Slice(state.Encode())));
  TxnCtx* ctx = GetCtx(txn);
  for (Oid anchor : anchors) {
    ODE_RETURN_NOT_OK(index_.Insert(txn, anchor, id));
    ++ctx->count_delta[anchor];
    // The cached lookup (if any) no longer reflects the index bucket.
    InvalidateLookup(ctx, anchor);
  }
  stats_.activations.Inc();
  return id;
}

Result<uint64_t> TriggerManager::ActivateLocal(
    Transaction* txn, Oid obj, const TypeDescriptor* obj_type,
    const std::string& trigger_name, Slice params) {
  const TypeDescriptor* defining = nullptr;
  const TriggerInfo* info = obj_type->FindTrigger(trigger_name, &defining);
  if (info == nullptr) {
    return Status::NotFound("class " + obj_type->name() +
                            " has no trigger '" + trigger_name + "'");
  }
  TxnCtx* ctx = GetCtx(txn);
  LocalTrigger local;
  local.id = ctx->next_local_id++;
  local.obj = obj;
  local.type = defining;
  local.triggernum = info->triggernum;
  local.statenum = info->fsm.start();
  local.params = params.ToVector();
  ctx->local_triggers.push_back(std::move(local));
  ++ctx->local_counts[obj];
  stats_.activations.Inc();
  return ctx->local_triggers.back().id;
}

Status TriggerManager::DeactivateLocal(Transaction* txn, uint64_t local_id) {
  TxnCtx* ctx = GetCtx(txn);
  for (LocalTrigger& local : ctx->local_triggers) {
    if (local.id == local_id && !local.dead) {
      local.dead = true;
      --ctx->local_counts[local.obj];
      stats_.deactivations.Inc();
      return Status::OK();
    }
  }
  return Status::NotFound("no local trigger with id " +
                          std::to_string(local_id));
}

Status TriggerManager::Deactivate(Transaction* txn, TriggerId id) {
  TxnCtx* ctx = GetCtx(txn);
  auto it = ctx->state_cache.find(id);
  if (it != ctx->state_cache.end()) {
    if (it->second.deleted) {
      return Status::NotFound("trigger already deactivated");
    }
    // Deactivate from the cached copy — no storage round-trip needed.
    TriggerState state = it->second.state;
    return DeactivateInternal(txn, id, state);
  }
  std::vector<char> image;
  ODE_RETURN_NOT_OK(db_->ReadObjectForUpdate(txn, id, &image));
  ODE_ASSIGN_OR_RETURN(TriggerState state, TriggerState::Decode(image));
  return DeactivateInternal(txn, id, state);
}

Status TriggerManager::DeactivateInternal(Transaction* txn, TriggerId id,
                                          const TriggerState& state) {
  TxnCtx* ctx = GetCtx(txn);
  for (Oid anchor : state.anchors) {
    ODE_RETURN_NOT_OK(index_.Remove(txn, anchor, id));
    --ctx->count_delta[anchor];
    InvalidateLookup(ctx, anchor);
  }
  // Mark any cached copy dead so pre-commit write-back skips it (the
  // persistent object is freed below).
  auto it = ctx->state_cache.find(id);
  if (it != ctx->state_cache.end()) {
    it->second.deleted = true;
    it->second.dirty = false;
  }
  ODE_RETURN_NOT_OK(db_->FreeObject(txn, id));
  stats_.deactivations.Inc();
  return Status::OK();
}

Status TriggerManager::DeactivateAll(Transaction* txn, Oid obj) {
  TxnCtx* ctx = GetCtx(txn);
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> ids, CachedLookup(txn, ctx, obj));
  for (Oid id : ids) {
    ODE_RETURN_NOT_OK(Deactivate(txn, id));
  }
  return Status::OK();
}

bool TriggerManager::IsActive(Transaction* txn, TriggerId id) {
  TxnCtx* ctx = GetCtx(txn);
  auto it = ctx->state_cache.find(id);
  if (it != ctx->state_cache.end()) return !it->second.deleted;
  return db_->ObjectExists(txn, id);
}

Result<std::vector<TriggerManager::ActiveTrigger>> TriggerManager::ListActive(
    Transaction* txn, Oid obj) {
  TxnCtx* ctx = GetCtx(txn);
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> ids, CachedLookup(txn, ctx, obj));
  std::vector<ActiveTrigger> out;
  out.reserve(ids.size());
  for (Oid id : ids) {
    // Prefer the transaction's cached (possibly advanced, uncommitted)
    // copy over the stored image.
    TriggerState state;
    const TypeDescriptor* defining = nullptr;
    auto cit = ctx->state_cache.find(id);
    if (cit != ctx->state_cache.end()) {
      if (cit->second.deleted) continue;
      state = cit->second.state;
      defining = cit->second.defining;
    } else {
      std::vector<char> image;
      ODE_RETURN_NOT_OK(db_->ReadObject(txn, id, &image));
      ODE_ASSIGN_OR_RETURN(state, TriggerState::Decode(image));
    }
    if (defining == nullptr) {
      ODE_ASSIGN_OR_RETURN(defining, ResolveMetatype(txn, state.trigobjtype));
    }
    const TriggerInfo& info = defining->triggers()[state.triggernum];
    ActiveTrigger entry;
    entry.id = id;
    entry.trigger_name = info.name;
    entry.defining_class = defining->name();
    entry.statenum = state.statenum;
    entry.accepting = info.fsm.Accepting(state.statenum);
    entry.dead = state.statenum == Fsm::kDeadState;
    entry.anchors = state.anchors;
    out.push_back(std::move(entry));
  }
  return out;
}

Status TriggerManager::EvictOneCachedState(Transaction* txn, TxnCtx* ctx) {
  auto victim = ctx->state_cache.begin();
  if (victim == ctx->state_cache.end()) return Status::OK();
  if (victim->second.dirty && !victim->second.deleted) {
    ODE_RETURN_NOT_OK(db_->WriteObject(txn, victim->first,
                                       Slice(victim->second.state.Encode())));
    stats_.state_writebacks.Inc();
    Trace(TraceEvent::Kind::kStateWriteBack, txn->id(), victim->first,
          victim->second.state.trigobj, 0, victim->second.state.statenum);
  }
  ctx->state_cache.erase(victim);
  return Status::OK();
}

Status TriggerManager::FlushCachedStates(Transaction* txn, TxnCtx* ctx) {
  Encoder enc;
  for (auto& [id, cached] : ctx->state_cache) {
    if (!cached.dirty || cached.deleted) continue;
    enc.Clear();
    cached.state.EncodeTo(enc);
    ODE_RETURN_NOT_OK(db_->WriteObject(txn, id, Slice(enc.buffer())));
    cached.dirty = false;
    stats_.state_writebacks.Inc();
    Trace(TraceEvent::Kind::kStateWriteBack, txn->id(), id,
          cached.state.trigobj, 0, cached.state.statenum);
  }
  return Status::OK();
}

Status TriggerManager::PostEvent(Transaction* txn, Oid obj,
                                 const TypeDescriptor* obj_type,
                                 Symbol symbol, Slice event_args) {
  (void)obj_type;  // passed for API parity with the paper's PostEvent
  LatencyTimer post_timer(post_latency_);
  stats_.posts.Inc();
  Trace(TraceEvent::Kind::kEventPosted, txn->id(), Oid(), obj, symbol);
  TxnCtx* ctx = GetCtx(txn);
  // Footnote 3: "If the object has no active triggers, no lookup is
  // required since the persistent object's control information will
  // indicate that."
  //
  // Committed counts come from this object's count stripe (locked);
  // count_delta/local_counts belong to this transaction's context, which
  // only this thread mutates — no cross-thread unlocked reads remain.
  int64_t active = CommittedCount(obj);
  bool have_persistent = active != 0 || ctx->count_delta.count(obj) != 0;
  auto dit = ctx->count_delta.find(obj);
  if (dit != ctx->count_delta.end()) active += dit->second;
  auto lit = ctx->local_counts.find(obj);
  if (lit != ctx->local_counts.end()) active += lit->second;
  if (active == 0) {
    stats_.fast_path_skips.Inc();
    Trace(TraceEvent::Kind::kFastPathSkip, txn->id(), Oid(), obj, symbol);
    return Status::OK();
  }

  std::vector<char> args = event_args.ToVector();

  struct Ready {
    const TypeDescriptor* type;
    const TriggerInfo* info;
    TriggerId id;          // null for local triggers
    uint64_t local_id = 0; // 0 for persistent triggers
    TriggerState state;    // persistent: full state; local: synthesized
  };
  std::vector<Ready> ready;

  // Batched monitoring counts: one sharded fetch_add per metric per
  // posting (flushed below) instead of one per trigger machine.
  uint64_t cache_hits = 0, cache_misses = 0, moves = 0, mask_evals = 0;

  // --- persistent triggers: cached index lookup + FSM advance (§5.4.5).
  std::vector<Oid> trig_ids;
  if (have_persistent) {
    ODE_ASSIGN_OR_RETURN(trig_ids, CachedLookup(txn, ctx, obj));
  }

  for (Oid trig_id : trig_ids) {
    // First touch in this transaction: read under the write lock
    // (§5.1.3: triggers turn read access into write access — the lock
    // must be exclusive even though the advance is deferred), decode,
    // and cache. Later events reuse the decoded copy: no storage read,
    // no decode, no per-event write-back.
    TriggerState uncached_state;
    TriggerState* state = nullptr;
    const TypeDescriptor* defining = nullptr;
    CachedState* cached = nullptr;
    auto cit = ctx->state_cache.find(trig_id);
    if (cit != ctx->state_cache.end()) {
      if (cit->second.deleted) continue;  // deactivated earlier in txn
      ++cache_hits;
      cached = &cit->second;
      state = &cached->state;
      defining = cached->defining;
    } else {
      ++cache_misses;
      std::vector<char> image;
      ODE_RETURN_NOT_OK(db_->ReadObjectForUpdate(txn, trig_id, &image));
      ODE_ASSIGN_OR_RETURN(uncached_state, TriggerState::Decode(image));
      ODE_ASSIGN_OR_RETURN(defining,
                           ResolveMetatype(txn, uncached_state.trigobjtype));
      if (options_.state_cache_capacity > 0) {
        if (ctx->state_cache.size() >= options_.state_cache_capacity) {
          ODE_RETURN_NOT_OK(EvictOneCachedState(txn, ctx));
        }
        CachedState entry;
        entry.state = std::move(uncached_state);
        entry.defining = defining;
        cached = &ctx->state_cache[trig_id];
        *cached = std::move(entry);
        state = &cached->state;
      } else {
        state = &uncached_state;
      }
    }
    if (state->triggernum >= defining->triggers().size()) {
      return Status::Corruption("trigger number out of range for " +
                                defining->name());
    }
    const TriggerInfo& info = defining->triggers()[state->triggernum];

    // Step (a): follow the transition, if any (unknown events ignored).
    int32_t next = info.fsm.Move(state->statenum, symbol);
    ++moves;

    // Step (b): evaluate masks until the machine quiesces.
    MaskEvalContext mask_ctx(txn, db_, state->trigobj, state->params,
                             state->anchors, args);
    int evaluations = 0;
    auto resolved = info.fsm.ResolveMasks(
        next,
        [&](int32_t mask_id) -> Result<bool> {
          if (mask_id < 0 ||
              static_cast<size_t>(mask_id) >= info.masks.size() ||
              !info.masks[mask_id]) {
            return Status::Internal("trigger " + info.name +
                                    ": no mask function " +
                                    std::to_string(mask_id));
          }
          Result<bool> verdict = info.masks[mask_id](mask_ctx);
          if (verdict.ok()) {
            Trace(TraceEvent::Kind::kMaskEvaluated, txn->id(), trig_id,
                  state->trigobj, symbol, mask_id, verdict.value() ? 1 : 0);
          }
          return verdict;
        },
        &evaluations);
    if (!resolved.ok()) return resolved.status();
    mask_evals += static_cast<uint64_t>(evaluations);
    next = resolved.value();

    if (next != state->statenum) {
      Trace(TraceEvent::Kind::kFsmTransition, txn->id(), trig_id,
            state->trigobj, symbol, state->statenum, next,
            CouplingMode::kImmediate, &state->params);
      state->statenum = next;
      if (cached != nullptr) {
        // Deferred write-back: encoded and written once at pre-commit.
        cached->dirty = true;
      } else {
        ODE_RETURN_NOT_OK(
            db_->WriteObject(txn, trig_id, Slice(state->Encode())));
      }
    }

    // Step (c): accept check. Firing is delayed until every trigger has
    // seen the event, "to prevent the action of one trigger from
    // affecting the mask of another trigger" (§5.4.5).
    if (info.fsm.Accepting(next)) {
      Trace(TraceEvent::Kind::kAcceptReached, txn->id(), trig_id,
            state->trigobj, symbol, next, 0, CouplingMode::kImmediate,
            &state->params);
      ready.push_back(Ready{defining, &info, trig_id, 0, *state});
    }
  }

  // --- local triggers: in-memory advance, no locks, no writes (§8).
  // Index-based iteration: mask evaluation must not mutate the list
  // (masks are side-effect-free predicates), but indexing stays valid
  // even if the vector reallocates.
  for (size_t i = 0; i < ctx->local_triggers.size(); ++i) {
    if (ctx->local_triggers[i].dead || ctx->local_triggers[i].obj != obj) {
      continue;
    }
    const TriggerInfo& info =
        ctx->local_triggers[i].type->triggers()[ctx->local_triggers[i]
                                                    .triggernum];
    int32_t next = info.fsm.Move(ctx->local_triggers[i].statenum, symbol);
    ++moves;
    std::vector<Oid> anchors{ctx->local_triggers[i].obj};
    std::vector<char> params = ctx->local_triggers[i].params;
    MaskEvalContext mask_ctx(txn, db_, anchors.front(), params, anchors,
                             args);
    int evaluations = 0;
    auto resolved = info.fsm.ResolveMasks(
        next,
        [&](int32_t mask_id) -> Result<bool> {
          if (mask_id < 0 ||
              static_cast<size_t>(mask_id) >= info.masks.size()) {
            return Status::Internal("local trigger: no mask function");
          }
          return info.masks[mask_id](mask_ctx);
        },
        &evaluations);
    if (!resolved.ok()) return resolved.status();
    mask_evals += static_cast<uint64_t>(evaluations);
    LocalTrigger& local = ctx->local_triggers[i];
    if (resolved.value() != local.statenum) {
      // Local triggers have no TriggerState oid: trigger stays null.
      Trace(TraceEvent::Kind::kFsmTransition, txn->id(), Oid(), local.obj,
            symbol, local.statenum, resolved.value());
    }
    local.statenum = resolved.value();

    if (info.fsm.Accepting(local.statenum)) {
      Trace(TraceEvent::Kind::kAcceptReached, txn->id(), Oid(), local.obj,
            symbol, local.statenum);
      Ready r;
      r.type = local.type;
      r.info = &info;
      r.id = TriggerId();  // null: transient
      r.local_id = local.id;
      r.state.triggernum = local.triggernum;
      r.state.trigobj = local.obj;
      r.state.params = local.params;
      r.state.anchors = {local.obj};
      ready.push_back(std::move(r));
    }
  }

  if (cache_hits != 0) stats_.state_cache_hits.Inc(cache_hits);
  if (cache_misses != 0) stats_.state_cache_misses.Inc(cache_misses);
  if (moves != 0) stats_.fsm_moves.Inc(moves);
  if (mask_evals != 0) stats_.mask_evaluations.Inc(mask_evals);

  if (ready.empty()) return Status::OK();

  stats_.fires.Inc(ready.size());
  for (Ready& r : ready) {
    PendingAction action;
    action.type = r.type;
    action.triggernum = r.state.triggernum;
    action.anchor = r.state.trigobj;
    action.trigger_id = r.id;
    action.params = r.state.params;
    action.anchors = r.state.anchors;
    action.event_args = args;

    // Once-only triggers deactivate when they fire (§5.4.5c).
    auto deactivate_once_only = [&]() -> Status {
      if (r.info->perpetual) return Status::OK();
      if (r.local_id != 0) return DeactivateLocal(txn, r.local_id);
      return DeactivateInternal(txn, r.id, r.state);
    };

    switch (r.info->coupling) {
      case CouplingMode::kImmediate: {
        if (++ctx->fire_depth > kMaxFireDepth) {
          --ctx->fire_depth;
          return Status::Internal("immediate trigger cascade exceeded depth " +
                                  std::to_string(kMaxFireDepth));
        }
        Status st = RunAction(txn, action);
        --ctx->fire_depth;
        // The paper fires the action and then deactivates (§5.4.5c);
        // on tabort the whole transaction rolls back anyway.
        if (st.ok()) {
          ODE_RETURN_NOT_OK(deactivate_once_only());
        }
        if (!st.ok()) return st;
        break;
      }
      case CouplingMode::kDeferred:
        Trace(TraceEvent::Kind::kActionScheduled, txn->id(), r.id,
              action.anchor, symbol, 0, 0, CouplingMode::kDeferred);
        ctx->end_list.push_back(std::move(action));
        ODE_RETURN_NOT_OK(deactivate_once_only());
        break;
      case CouplingMode::kDependent:
        Trace(TraceEvent::Kind::kActionScheduled, txn->id(), r.id,
              action.anchor, symbol, 0, 0, CouplingMode::kDependent);
        ctx->dependent_list.push_back(std::move(action));
        ODE_RETURN_NOT_OK(deactivate_once_only());
        break;
      case CouplingMode::kIndependent:
        Trace(TraceEvent::Kind::kActionScheduled, txn->id(), r.id,
              action.anchor, symbol, 0, 0, CouplingMode::kIndependent);
        ctx->independent_list.push_back(std::move(action));
        ODE_RETURN_NOT_OK(deactivate_once_only());
        break;
    }
  }
  return Status::OK();
}

Status TriggerManager::RunAction(Transaction* txn,
                                 const PendingAction& action) {
  const TriggerInfo& info = action.type->triggers()[action.triggernum];
  TriggerFireContext fire_ctx(txn, db_, this, action.anchor,
                              action.trigger_id, action.params,
                              action.anchors, action.event_args);
  if (!info.action) {
    return Status::Internal("trigger " + info.name + " has no action");
  }
  TxnCtx* ctx = GetCtx(txn);
  ++ctx->processing_depth;
  const uint64_t span_start =
      tracer_ != nullptr && tracer_->Sampled(txn->id())
          ? LatencyTimer::NowNanos()
          : 0;
  Status st;
  {
    LatencyTimer timer(action_latency_[static_cast<int>(info.coupling)]);
    st = info.action(fire_ctx);
  }
  --ctx->processing_depth;
  if (st.ok()) {
    Trace(TraceEvent::Kind::kActionRan, txn->id(), action.trigger_id,
          action.anchor, 0, 0, 0, info.coupling, nullptr, span_start);
  }
  ODE_RETURN_NOT_OK(st);
  if (txn->abort_requested()) {
    return Status::TransactionAborted(txn->abort_reason());
  }
  return Status::OK();
}

bool TriggerManager::InAction(Transaction* txn) {
  return GetCtx(txn)->processing_depth > 0;
}

void TriggerManager::NoteAccess(Transaction* txn, Oid obj,
                                const TypeDescriptor* obj_type) {
  // Interested iff the class (or a base) declares a transaction event.
  bool interested = false;
  for (const TypeDescriptor* t = obj_type; t != nullptr; t = t->base()) {
    for (const EventDecl& e : t->own_events()) {
      if (e.kind == EventKind::kBeforeTComplete ||
          e.kind == EventKind::kBeforeTAbort) {
        interested = true;
      }
    }
  }
  if (!interested) return;
  TxnCtx* ctx = GetCtx(txn);
  for (const auto& [oid, type] : ctx->txn_event_objects) {
    (void)type;
    if (oid == obj) return;  // already listed
  }
  ctx->txn_event_objects.emplace_back(obj, obj_type);
}

Status TriggerManager::PostTxnEvent(Transaction* txn, EventKind kind) {
  TxnCtx* ctx = GetCtx(txn);
  // Snapshot: posting may run actions that access more objects.
  auto objects = ctx->txn_event_objects;
  const char* name =
      kind == EventKind::kBeforeTComplete ? "before tcomplete"
                                          : "before tabort";
  for (const auto& [obj, type] : objects) {
    const EventDecl* decl = type->FindEvent(name);
    if (decl == nullptr) continue;
    ODE_RETURN_NOT_OK(PostEvent(txn, obj, type, decl->symbol));
  }
  return Status::OK();
}

Status TriggerManager::PreCommit(Transaction* txn) {
  TxnCtx* ctx = GetCtx(txn);
  bool posted_tcomplete = false;
  int rounds = 0;
  // "Immediately before posting before tcomplete events, commit
  // processing scans the end list and executes the relevant actions"
  // (§5.5). Deferred actions may queue further deferred actions; drain to
  // a fixpoint (bounded).
  while (true) {
    if (++rounds > kMaxDeferredRounds) {
      return Status::Internal("deferred trigger cascade did not quiesce");
    }
    if (!ctx->end_list.empty()) {
      std::vector<PendingAction> batch = std::move(ctx->end_list);
      ctx->end_list.clear();
      for (const PendingAction& a : batch) {
        ODE_RETURN_NOT_OK(RunAction(txn, a));
      }
      continue;
    }
    if (!posted_tcomplete) {
      posted_tcomplete = true;
      ODE_RETURN_NOT_OK(PostTxnEvent(txn, EventKind::kBeforeTComplete));
      if (txn->abort_requested()) {
        return Status::TransactionAborted(txn->abort_reason());
      }
      continue;
    }
    break;
  }
  // All trigger processing has quiesced: write the dirty cached
  // TriggerStates back, once each, while the transaction (and its
  // exclusive locks, held since first touch) is still live. An abort
  // never reaches this point — its dirty states die with the context.
  return FlushCachedStates(txn, ctx);
}

Status TriggerManager::PreAbort(Transaction* txn) {
  // Post `before tabort`. Effects roll back with the transaction; only
  // !dependent queue entries survive (they run in PostAbort).
  Status st = PostTxnEvent(txn, EventKind::kBeforeTAbort);
  if (!st.ok() && !st.IsTransactionAborted()) return st;
  return Status::OK();
}

Status TriggerManager::PostCommit(Transaction* txn) {
  if (trace_ != nullptr) {
    // Runs on the committing thread, so this is the batch that carried
    // *this* transaction's kCommit record (zero for stores that do not
    // batch commits, e.g. main-memory).
    StorageManager::CommitBatchInfo info = db_->store()->LastCommitBatch();
    if (info.batch_id != 0) {
      Trace(TraceEvent::Kind::kCommitBatch, txn->id(), Oid(), Oid(),
            /*symbol=*/0, static_cast<int32_t>(info.batch_id),
            static_cast<int32_t>(info.batch_size));
    }
  }
  std::vector<PendingAction> dependent, independent;
  std::unique_ptr<TxnCtx> ctx;
  {
    CtxShard& shard = CtxShardFor(txn->id());
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.contexts.find(txn->id());
    if (it != shard.contexts.end()) {
      ctx = std::move(it->second);
      shard.contexts.erase(it);  // also deallocates local triggers
    }
  }
  txn->set_trigger_scratch(nullptr);
  if (ctx != nullptr) {
    for (const auto& [oid, delta] : ctx->count_delta) {
      if (delta == 0) continue;
      CountShard& shard = CountShardFor(oid);
      std::lock_guard<std::mutex> lock(shard.mu);
      int64_t& slot = shard.counts[oid];
      slot += delta;
      if (slot <= 0) shard.counts.erase(oid);
    }
    dependent = std::move(ctx->dependent_list);
    independent = std::move(ctx->independent_list);
  }
  ODE_RETURN_NOT_OK(RunDetached(dependent, "dependent"));
  return RunDetached(independent, "!dependent");
}

Status TriggerManager::PostAbort(Transaction* txn) {
  std::vector<PendingAction> independent;
  std::unique_ptr<TxnCtx> ctx;
  {
    CtxShard& shard = CtxShardFor(txn->id());
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.contexts.find(txn->id());
    if (it != shard.contexts.end()) {
      // count_delta discarded: activations/deactivations rolled back.
      // Dirty cached TriggerStates are discarded with the context — they
      // were never written back, so the store still holds the
      // pre-transaction images.
      ctx = std::move(it->second);
      shard.contexts.erase(it);
    }
  }
  txn->set_trigger_scratch(nullptr);
  if (ctx != nullptr) {
    // Record the discards while the context is still alive: these are
    // the FSM advances that roll back with the transaction.
    for (const auto& [id, cached] : ctx->state_cache) {
      if (cached.dirty && !cached.deleted) {
        Trace(TraceEvent::Kind::kAbortDiscard, txn->id(), id,
              cached.state.trigobj, 0, cached.state.statenum);
      }
    }
    independent = std::move(ctx->independent_list);
  }
  // "The function handling transaction abort ... checks if the
  // !dependent list is non-empty after finishing all the tasks it
  // normally performs for roll-back" (§5.5).
  return RunDetached(independent, "!dependent");
}

Status TriggerManager::RunDetached(const std::vector<PendingAction>& actions,
                                   const char* what) {
  if (actions.empty()) return Status::OK();
  // One system transaction scans the whole list (§5.5).
  ODE_ASSIGN_OR_RETURN(Transaction * txn,
                       db_->txns()->Begin(/*system=*/true));
  for (const PendingAction& a : actions) {
    Status st = RunAction(txn, a);
    if (!st.ok()) {
      ODE_LOG(kWarn) << what << " trigger action failed: " << st.ToString();
      Status ast = db_->txns()->Abort(txn, /*explicit_request=*/false);
      if (!ast.ok()) return ast;
      return Status::OK();
    }
  }
  return db_->txns()->Commit(txn);
}

}  // namespace ode
