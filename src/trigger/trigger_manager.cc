#include "trigger/trigger_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/coding.h"
#include "common/logging.h"
#include "trigger/event_registry.h"
#include "trigger/provenance.h"

namespace ode {

namespace {

/// Trigger-ring kinds and span kinds correspond one-to-one except for
/// kCommitBatch, which the storage layer records itself (as kFsyncBatch,
/// with the real batch interval); returns false for kinds the span
/// tracer skips.
bool SpanKindFor(TraceEvent::Kind kind, SpanKind* out) {
  switch (kind) {
    case TraceEvent::Kind::kEventPosted:
      *out = SpanKind::kEventPosted;
      return true;
    case TraceEvent::Kind::kFastPathSkip:
      *out = SpanKind::kFastPathSkip;
      return true;
    case TraceEvent::Kind::kFsmTransition:
      *out = SpanKind::kFsmTransition;
      return true;
    case TraceEvent::Kind::kMaskEvaluated:
      *out = SpanKind::kMaskEval;
      return true;
    case TraceEvent::Kind::kAcceptReached:
      *out = SpanKind::kAcceptReached;
      return true;
    case TraceEvent::Kind::kActionScheduled:
      *out = SpanKind::kActionScheduled;
      return true;
    case TraceEvent::Kind::kActionRan:
      *out = SpanKind::kActionRun;
      return true;
    case TraceEvent::Kind::kStateWriteBack:
      *out = SpanKind::kStateWriteBack;
      return true;
    case TraceEvent::Kind::kAbortDiscard:
      *out = SpanKind::kAbortDiscard;
      return true;
    case TraceEvent::Kind::kCommitBatch:
      return false;
  }
  return false;
}

std::string HexEncode(const std::vector<char>& bytes) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (char c : bytes) {
    unsigned char b = static_cast<unsigned char>(c);
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
  return out;
}

}  // namespace

TriggerManager::Stats TriggerManager::MakeStats(MetricsRegistry* registry) {
  return Stats{
      *registry->GetCounter("ode_trigger_posts_total"),
      *registry->GetCounter("ode_trigger_fast_path_skips_total"),
      *registry->GetCounter("ode_trigger_fsm_moves_total"),
      *registry->GetCounter("ode_trigger_mask_evals_total"),
      *registry->GetCounter("ode_trigger_fires_total"),
      *registry->GetCounter("ode_trigger_activations_total"),
      *registry->GetCounter("ode_trigger_deactivations_total"),
      *registry->GetCounter("ode_trigger_state_cache_hits_total"),
      *registry->GetCounter("ode_trigger_state_cache_misses_total"),
      *registry->GetCounter("ode_trigger_lookup_cache_hits_total"),
      *registry->GetCounter("ode_trigger_lookup_cache_misses_total"),
      *registry->GetCounter("ode_trigger_state_writebacks_total"),
      *registry->GetCounter("ode_cascade_overflows_total"),
      *registry->GetCounter("ode_action_retries_total"),
      *registry->GetCounter("ode_action_retries_exhausted_total"),
      *registry->GetCounter("ode_trigger_actions_shed_total"),
  };
}

TriggerManager::TriggerManager(Database* db, Options options)
    : db_(db),
      options_(options),
      index_(db, options.index_buckets),
      stats_(MakeStats(db->metrics())) {
  MetricsRegistry* metrics = db_->metrics();
  // Latencies are sampled: a posting (and a perpetual trigger's no-op
  // fire) is ~hundreds of ns, so two clock reads per operation would be
  // a measurable fraction of what they measure (experiment E1's
  // MetricsToggle variant keeps this honest).
  post_latency_ =
      metrics->GetHistogram("ode_trigger_post_latency_ns", /*sample=*/16);
  action_latency_[static_cast<int>(CouplingMode::kImmediate)] =
      metrics->GetHistogram("ode_trigger_action_latency_ns_immediate",
                            /*sample=*/16);
  action_latency_[static_cast<int>(CouplingMode::kDeferred)] =
      metrics->GetHistogram("ode_trigger_action_latency_ns_deferred",
                            /*sample=*/16);
  action_latency_[static_cast<int>(CouplingMode::kDependent)] =
      metrics->GetHistogram("ode_trigger_action_latency_ns_dependent",
                            /*sample=*/16);
  action_latency_[static_cast<int>(CouplingMode::kIndependent)] =
      metrics->GetHistogram("ode_trigger_action_latency_ns_independent",
                            /*sample=*/16);
  if (options_.trace_capacity > 0) {
    trace_ = std::make_unique<TriggerTraceRing>(options_.trace_capacity);
    trace_->BindMetrics(metrics);
  }
  quarantined_gauge_ = metrics->GetGauge("ode_trigger_quarantined");
  deadletter_gauge_ = metrics->GetGauge("ode_deadletter_depth");
  inflight_gauge_ = metrics->GetGauge("ode_system_actions_inflight");
  tracer_ = db_->tracer();
  // Give the tracer readable event names for timelines and exports
  // (common/ cannot depend on the trigger layer's EventRegistry).
  tracer_->SetSymbolNamer(
      [](uint32_t symbol) { return EventRegistry::Global().NameOf(symbol); });
  size_t stripes = std::max<size_t>(1, options_.lock_stripes);
  count_shards_.reserve(stripes);
  ctx_shards_.reserve(stripes);
  for (size_t i = 0; i < stripes; ++i) {
    count_shards_.push_back(std::make_unique<CountShard>());
    ctx_shards_.push_back(std::make_unique<CtxShard>());
  }
  TransactionManager* txns = db_->txns();
  txns->SetPreCommitHook([this](Transaction* t) { return PreCommit(t); });
  txns->SetPreAbortHook([this](Transaction* t) { return PreAbort(t); });
  txns->SetPostCommitHook([this](Transaction* t) { return PostCommit(t); });
  txns->SetPostAbortHook([this](Transaction* t) { return PostAbort(t); });
}

void TriggerManager::TraceSpan(TraceEvent::Kind kind, TxnId txn, Oid trigger,
                               Oid anchor, Symbol symbol, int32_t a, int32_t b,
                               CouplingMode coupling,
                               const std::vector<char>* params,
                               uint64_t start_ns) {
  SpanKind span_kind;
  if (!SpanKindFor(kind, &span_kind)) return;
  Span s;
  s.kind = span_kind;
  s.txn = txn;
  s.trigger = trigger;
  s.anchor = anchor;
  s.symbol = symbol;
  s.a = a;
  s.b = b;
  if (params != nullptr && !params->empty()) {
    s.detail = HexEncode(*params);
  } else if (kind == TraceEvent::Kind::kActionScheduled ||
             kind == TraceEvent::Kind::kActionRan) {
    s.detail = CouplingModeToString(coupling);
  }
  if (start_ns != 0) {
    tracer_->Interval(std::move(s), start_ns, LatencyTimer::NowNanos());
  } else {
    tracer_->Instant(std::move(s));
  }
}

void TriggerManager::RegisterType(const TypeDescriptor* type) {
  MutexLock lock(&types_mu_);
  types_[type->name()] = type;
}

const TypeDescriptor* TriggerManager::FindType(const std::string& name) const {
  MutexLock lock(&types_mu_);
  auto it = types_.find(name);
  return it == types_.end() ? nullptr : it->second;
}

TriggerManager::TxnCtx* TriggerManager::GetCtx(Transaction* txn) {
  // Fast path: the context pointer is cached in the transaction itself,
  // so repeated posts skip both the stripe lock and the hash lookup.
  if (void* scratch = txn->trigger_scratch()) {
    return static_cast<TxnCtx*>(scratch);
  }
  CtxShard& shard = CtxShardFor(txn->id());
  MutexLock lock(&shard.mu);
  auto& slot = shard.contexts[txn->id()];
  if (slot == nullptr) slot = std::make_unique<TxnCtx>();
  txn->set_trigger_scratch(slot.get());
  return slot.get();
}

Status TriggerManager::PrimeActiveCounts(Transaction* txn) {
  std::unordered_map<Oid, int64_t, OidHash> counts;
  ODE_RETURN_NOT_OK(index_.ForEach(txn, [&](Oid obj, Oid trig) {
    (void)trig;
    ++counts[obj];
  }));
  for (auto& shard : count_shards_) {
    MutexLock lock(&shard->mu);
    shard->counts.clear();
  }
  for (const auto& [obj, count] : counts) {
    CountShard& shard = CountShardFor(obj);
    MutexLock lock(&shard.mu);
    shard.counts[obj] = count;
  }
  if (options_.containment) {
    ODE_RETURN_NOT_OK(LoadContainmentState(txn));
  }
  return Status::OK();
}

int64_t TriggerManager::CommittedCount(Oid obj) {
  CountShard& shard = CountShardFor(obj);
  MutexLock lock(&shard.mu);
  auto it = shard.counts.find(obj);
  return it == shard.counts.end() ? 0 : it->second;
}

int64_t TriggerManager::ActiveCount(Transaction* txn, Oid obj) {
  int64_t count = CommittedCount(obj);
  TxnCtx* ctx = GetCtx(txn);
  auto dit = ctx->count_delta.find(obj);
  if (dit != ctx->count_delta.end()) count += dit->second;
  auto lit = ctx->local_counts.find(obj);
  if (lit != ctx->local_counts.end()) count += lit->second;
  return count;
}

Result<const TypeDescriptor*> TriggerManager::ResolveMetatype(
    Transaction* txn, uint32_t metatype_id) {
  {
    MutexLock lock(&types_mu_);
    auto it = metatype_cache_.find(metatype_id);
    if (it != metatype_cache_.end()) return it->second;
  }
  ODE_ASSIGN_OR_RETURN(std::string name, db_->MetatypeName(txn, metatype_id));
  const TypeDescriptor* type = FindType(name);
  if (type == nullptr) {
    return Status::NotFound("type '" + name +
                            "' has persistent triggers but is not "
                            "registered in this program");
  }
  MutexLock lock(&types_mu_);
  metatype_cache_.emplace(metatype_id, type);
  return type;
}

Result<std::vector<Oid>> TriggerManager::CachedLookup(Transaction* txn,
                                                      TxnCtx* ctx, Oid obj) {
  if (options_.lookup_cache_capacity > 0) {
    auto it = ctx->lookup_cache.find(obj);
    if (it != ctx->lookup_cache.end()) {
      stats_.lookup_cache_hits.Inc();
      return it->second;
    }
  }
  stats_.lookup_cache_misses.Inc();
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> ids, index_.Lookup(txn, obj));
  if (options_.lookup_cache_capacity > 0) {
    if (ctx->lookup_cache.size() >= options_.lookup_cache_capacity) {
      ctx->lookup_cache.erase(ctx->lookup_cache.begin());
    }
    ctx->lookup_cache.emplace(obj, ids);
  }
  return ids;
}

Result<TriggerId> TriggerManager::Activate(Transaction* txn, Oid obj,
                                           const TypeDescriptor* obj_type,
                                           const std::string& trigger_name,
                                           Slice params) {
  return ActivateGroup(txn, {obj}, obj_type, trigger_name, params);
}

Result<TriggerId> TriggerManager::ActivateGroup(
    Transaction* txn, const std::vector<Oid>& anchors,
    const TypeDescriptor* obj_type, const std::string& trigger_name,
    Slice params) {
  if (anchors.empty()) {
    return Status::InvalidArgument("trigger needs at least one anchor");
  }
  const TypeDescriptor* defining = nullptr;
  const TriggerInfo* info = obj_type->FindTrigger(trigger_name, &defining);
  if (info == nullptr) {
    return Status::NotFound("class " + obj_type->name() +
                            " has no trigger '" + trigger_name + "'");
  }
  ODE_ASSIGN_OR_RETURN(uint32_t metatype_id,
                       db_->MetatypeId(txn, defining->name()));
  {
    MutexLock lock(&types_mu_);
    metatype_cache_.emplace(metatype_id, defining);
  }

  TriggerState state;
  state.triggernum = info->triggernum;
  state.trigobj = anchors.front();
  state.statenum = info->fsm.start();
  state.trigobjtype = metatype_id;
  state.params = params.ToVector();
  state.anchors = anchors;

  ODE_ASSIGN_OR_RETURN(Oid id, db_->NewObject(txn, Slice(state.Encode())));
  TxnCtx* ctx = GetCtx(txn);
  for (Oid anchor : anchors) {
    ODE_RETURN_NOT_OK(index_.Insert(txn, anchor, id));
    ++ctx->count_delta[anchor];
    // The cached lookup (if any) no longer reflects the index bucket.
    InvalidateLookup(ctx, anchor);
  }
  // An explicit re-activation re-arms a quarantined trigger: matching
  // quarantine-table entries are erased in this same transaction.
  if (options_.containment &&
      quarantine_set_size_.load(std::memory_order_relaxed) != 0) {
    ODE_RETURN_NOT_OK(ClearQuarantineMatches(txn, ctx, anchors,
                                             defining->name(), info->name));
  }
  stats_.activations.Inc();
  return id;
}

Result<uint64_t> TriggerManager::ActivateLocal(
    Transaction* txn, Oid obj, const TypeDescriptor* obj_type,
    const std::string& trigger_name, Slice params) {
  const TypeDescriptor* defining = nullptr;
  const TriggerInfo* info = obj_type->FindTrigger(trigger_name, &defining);
  if (info == nullptr) {
    return Status::NotFound("class " + obj_type->name() +
                            " has no trigger '" + trigger_name + "'");
  }
  TxnCtx* ctx = GetCtx(txn);
  LocalTrigger local;
  local.id = ctx->next_local_id++;
  local.obj = obj;
  local.type = defining;
  local.triggernum = info->triggernum;
  local.statenum = info->fsm.start();
  local.params = params.ToVector();
  ctx->local_triggers.push_back(std::move(local));
  ++ctx->local_counts[obj];
  stats_.activations.Inc();
  return ctx->local_triggers.back().id;
}

Status TriggerManager::DeactivateLocal(Transaction* txn, uint64_t local_id) {
  TxnCtx* ctx = GetCtx(txn);
  for (LocalTrigger& local : ctx->local_triggers) {
    if (local.id == local_id && !local.dead) {
      local.dead = true;
      --ctx->local_counts[local.obj];
      stats_.deactivations.Inc();
      return Status::OK();
    }
  }
  return Status::NotFound("no local trigger with id " +
                          std::to_string(local_id));
}

Status TriggerManager::Deactivate(Transaction* txn, TriggerId id) {
  TxnCtx* ctx = GetCtx(txn);
  auto it = ctx->state_cache.find(id);
  if (it != ctx->state_cache.end()) {
    if (it->second.deleted) {
      return Status::NotFound("trigger already deactivated");
    }
    // Deactivate from the cached copy — no storage round-trip needed.
    TriggerState state = it->second.state;
    return DeactivateInternal(txn, id, state);
  }
  std::vector<char> image;
  ODE_RETURN_NOT_OK(db_->ReadObjectForUpdate(txn, id, &image));
  ODE_ASSIGN_OR_RETURN(TriggerState state, TriggerState::Decode(image));
  return DeactivateInternal(txn, id, state);
}

Status TriggerManager::DeactivateInternal(Transaction* txn, TriggerId id,
                                          const TriggerState& state) {
  TxnCtx* ctx = GetCtx(txn);
  for (Oid anchor : state.anchors) {
    ODE_RETURN_NOT_OK(index_.Remove(txn, anchor, id));
    --ctx->count_delta[anchor];
    InvalidateLookup(ctx, anchor);
  }
  // Mark any cached copy dead so pre-commit write-back skips it (the
  // persistent object is freed below).
  auto it = ctx->state_cache.find(id);
  if (it != ctx->state_cache.end()) {
    it->second.deleted = true;
    it->second.dirty = false;
  }
  ODE_RETURN_NOT_OK(db_->FreeObject(txn, id));
  stats_.deactivations.Inc();
  return Status::OK();
}

Status TriggerManager::DeactivateAll(Transaction* txn, Oid obj) {
  TxnCtx* ctx = GetCtx(txn);
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> ids, CachedLookup(txn, ctx, obj));
  for (Oid id : ids) {
    ODE_RETURN_NOT_OK(Deactivate(txn, id));
  }
  return Status::OK();
}

bool TriggerManager::IsActive(Transaction* txn, TriggerId id) {
  TxnCtx* ctx = GetCtx(txn);
  auto it = ctx->state_cache.find(id);
  if (it != ctx->state_cache.end()) return !it->second.deleted;
  return db_->ObjectExists(txn, id);
}

Result<std::vector<TriggerManager::ActiveTrigger>> TriggerManager::ListActive(
    Transaction* txn, Oid obj) {
  TxnCtx* ctx = GetCtx(txn);
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> ids, CachedLookup(txn, ctx, obj));
  std::vector<ActiveTrigger> out;
  out.reserve(ids.size());
  for (Oid id : ids) {
    // Prefer the transaction's cached (possibly advanced, uncommitted)
    // copy over the stored image.
    TriggerState state;
    const TypeDescriptor* defining = nullptr;
    auto cit = ctx->state_cache.find(id);
    if (cit != ctx->state_cache.end()) {
      if (cit->second.deleted) continue;
      state = cit->second.state;
      defining = cit->second.defining;
    } else {
      std::vector<char> image;
      ODE_RETURN_NOT_OK(db_->ReadObject(txn, id, &image));
      ODE_ASSIGN_OR_RETURN(state, TriggerState::Decode(image));
    }
    if (defining == nullptr) {
      ODE_ASSIGN_OR_RETURN(defining, ResolveMetatype(txn, state.trigobjtype));
    }
    const TriggerInfo& info = defining->triggers()[state.triggernum];
    ActiveTrigger entry;
    entry.id = id;
    entry.trigger_name = info.name;
    entry.defining_class = defining->name();
    entry.statenum = state.statenum;
    entry.accepting = info.fsm.Accepting(state.statenum);
    entry.dead = state.statenum == Fsm::kDeadState;
    entry.anchors = state.anchors;
    out.push_back(std::move(entry));
  }
  return out;
}

Status TriggerManager::EvictOneCachedState(Transaction* txn, TxnCtx* ctx) {
  auto victim = ctx->state_cache.begin();
  if (victim == ctx->state_cache.end()) return Status::OK();
  if (victim->second.dirty && !victim->second.deleted) {
    ODE_RETURN_NOT_OK(db_->WriteObject(txn, victim->first,
                                       Slice(victim->second.state.Encode())));
    stats_.state_writebacks.Inc();
    Trace(TraceEvent::Kind::kStateWriteBack, txn->id(), victim->first,
          victim->second.state.trigobj, 0, victim->second.state.statenum);
  }
  ctx->state_cache.erase(victim);
  return Status::OK();
}

Status TriggerManager::FlushCachedStates(Transaction* txn, TxnCtx* ctx) {
  Encoder enc;
  for (auto& [id, cached] : ctx->state_cache) {
    if (!cached.dirty || cached.deleted) continue;
    enc.Clear();
    cached.state.EncodeTo(enc);
    ODE_RETURN_NOT_OK(db_->WriteObject(txn, id, Slice(enc.buffer())));
    cached.dirty = false;
    stats_.state_writebacks.Inc();
    Trace(TraceEvent::Kind::kStateWriteBack, txn->id(), id,
          cached.state.trigobj, 0, cached.state.statenum);
  }
  return Status::OK();
}

Status TriggerManager::PostEvent(Transaction* txn, Oid obj,
                                 const TypeDescriptor* obj_type,
                                 Symbol symbol, Slice event_args) {
  (void)obj_type;  // passed for API parity with the paper's PostEvent
  LatencyTimer post_timer(post_latency_);
  stats_.posts.Inc();
  Trace(TraceEvent::Kind::kEventPosted, txn->id(), Oid(), obj, symbol);
  TxnCtx* ctx = GetCtx(txn);
  // Footnote 3: "If the object has no active triggers, no lookup is
  // required since the persistent object's control information will
  // indicate that."
  //
  // Committed counts come from this object's count stripe (locked);
  // count_delta/local_counts belong to this transaction's context, which
  // only this thread mutates — no cross-thread unlocked reads remain.
  int64_t active = CommittedCount(obj);
  bool have_persistent = active != 0 || ctx->count_delta.count(obj) != 0;
  auto dit = ctx->count_delta.find(obj);
  if (dit != ctx->count_delta.end()) active += dit->second;
  auto lit = ctx->local_counts.find(obj);
  if (lit != ctx->local_counts.end()) active += lit->second;
  if (active == 0) {
    stats_.fast_path_skips.Inc();
    Trace(TraceEvent::Kind::kFastPathSkip, txn->id(), Oid(), obj, symbol);
    return Status::OK();
  }

  std::vector<char> args = event_args.ToVector();

  struct Ready {
    const TypeDescriptor* type;
    const TriggerInfo* info;
    TriggerId id;          // null for local triggers
    uint64_t local_id = 0; // 0 for persistent triggers
    TriggerState state;    // persistent: full state; local: synthesized
  };
  std::vector<Ready> ready;

  // Batched monitoring counts: one sharded fetch_add per metric per
  // posting (flushed below) instead of one per trigger machine.
  uint64_t cache_hits = 0, cache_misses = 0, moves = 0, mask_evals = 0;

  // --- persistent triggers: cached index lookup + FSM advance (§5.4.5).
  std::vector<Oid> trig_ids;
  if (have_persistent) {
    ODE_ASSIGN_OR_RETURN(trig_ids, CachedLookup(txn, ctx, obj));
  }

  for (Oid trig_id : trig_ids) {
    // First touch in this transaction: read under the write lock
    // (§5.1.3: triggers turn read access into write access — the lock
    // must be exclusive even though the advance is deferred), decode,
    // and cache. Later events reuse the decoded copy: no storage read,
    // no decode, no per-event write-back.
    TriggerState uncached_state;
    TriggerState* state = nullptr;
    const TypeDescriptor* defining = nullptr;
    CachedState* cached = nullptr;
    auto cit = ctx->state_cache.find(trig_id);
    if (cit != ctx->state_cache.end()) {
      if (cit->second.deleted) continue;  // deactivated earlier in txn
      ++cache_hits;
      cached = &cit->second;
      state = &cached->state;
      defining = cached->defining;
    } else {
      ++cache_misses;
      std::vector<char> image;
      ODE_RETURN_NOT_OK(db_->ReadObjectForUpdate(txn, trig_id, &image));
      ODE_ASSIGN_OR_RETURN(uncached_state, TriggerState::Decode(image));
      ODE_ASSIGN_OR_RETURN(defining,
                           ResolveMetatype(txn, uncached_state.trigobjtype));
      if (options_.state_cache_capacity > 0) {
        if (ctx->state_cache.size() >= options_.state_cache_capacity) {
          ODE_RETURN_NOT_OK(EvictOneCachedState(txn, ctx));
        }
        CachedState entry;
        entry.state = std::move(uncached_state);
        entry.defining = defining;
        cached = &ctx->state_cache[trig_id];
        *cached = std::move(entry);
        state = &cached->state;
      } else {
        state = &uncached_state;
      }
    }
    if (state->triggernum >= defining->triggers().size()) {
      return Status::Corruption("trigger number out of range for " +
                                defining->name());
    }
    const TriggerInfo& info = defining->triggers()[state->triggernum];

    // Step (a): follow the transition, if any (unknown events ignored).
    int32_t next = info.fsm.Move(state->statenum, symbol);
    ++moves;

    // Step (b): evaluate masks until the machine quiesces.
    MaskEvalContext mask_ctx(txn, db_, state->trigobj, state->params,
                             state->anchors, args);
    int evaluations = 0;
    auto resolved = info.fsm.ResolveMasks(
        next,
        [&](int32_t mask_id) -> Result<bool> {
          if (mask_id < 0 ||
              static_cast<size_t>(mask_id) >= info.masks.size() ||
              !info.masks[mask_id]) {
            return Status::Internal("trigger " + info.name +
                                    ": no mask function " +
                                    std::to_string(mask_id));
          }
          Result<bool> verdict = info.masks[mask_id](mask_ctx);
          if (verdict.ok()) {
            Trace(TraceEvent::Kind::kMaskEvaluated, txn->id(), trig_id,
                  state->trigobj, symbol, mask_id, verdict.value() ? 1 : 0);
          }
          return verdict;
        },
        &evaluations);
    if (!resolved.ok()) return resolved.status();
    mask_evals += static_cast<uint64_t>(evaluations);
    next = resolved.value();

    if (next != state->statenum) {
      Trace(TraceEvent::Kind::kFsmTransition, txn->id(), trig_id,
            state->trigobj, symbol, state->statenum, next,
            CouplingMode::kImmediate, &state->params);
      state->statenum = next;
      if (cached != nullptr) {
        // Deferred write-back: encoded and written once at pre-commit.
        cached->dirty = true;
      } else {
        ODE_RETURN_NOT_OK(
            db_->WriteObject(txn, trig_id, Slice(state->Encode())));
      }
    }

    // Step (c): accept check. Firing is delayed until every trigger has
    // seen the event, "to prevent the action of one trigger from
    // affecting the mask of another trigger" (§5.4.5).
    if (info.fsm.Accepting(next)) {
      Trace(TraceEvent::Kind::kAcceptReached, txn->id(), trig_id,
            state->trigobj, symbol, next, 0, CouplingMode::kImmediate,
            &state->params);
      ready.push_back(Ready{defining, &info, trig_id, 0, *state});
    }
  }

  // --- local triggers: in-memory advance, no locks, no writes (§8).
  // Index-based iteration: mask evaluation must not mutate the list
  // (masks are side-effect-free predicates), but indexing stays valid
  // even if the vector reallocates.
  for (size_t i = 0; i < ctx->local_triggers.size(); ++i) {
    if (ctx->local_triggers[i].dead || ctx->local_triggers[i].obj != obj) {
      continue;
    }
    const TriggerInfo& info =
        ctx->local_triggers[i].type->triggers()[ctx->local_triggers[i]
                                                    .triggernum];
    int32_t next = info.fsm.Move(ctx->local_triggers[i].statenum, symbol);
    ++moves;
    std::vector<Oid> anchors{ctx->local_triggers[i].obj};
    std::vector<char> params = ctx->local_triggers[i].params;
    MaskEvalContext mask_ctx(txn, db_, anchors.front(), params, anchors,
                             args);
    int evaluations = 0;
    auto resolved = info.fsm.ResolveMasks(
        next,
        [&](int32_t mask_id) -> Result<bool> {
          if (mask_id < 0 ||
              static_cast<size_t>(mask_id) >= info.masks.size()) {
            return Status::Internal("local trigger: no mask function");
          }
          return info.masks[mask_id](mask_ctx);
        },
        &evaluations);
    if (!resolved.ok()) return resolved.status();
    mask_evals += static_cast<uint64_t>(evaluations);
    LocalTrigger& local = ctx->local_triggers[i];
    if (resolved.value() != local.statenum) {
      // Local triggers have no TriggerState oid: trigger stays null.
      Trace(TraceEvent::Kind::kFsmTransition, txn->id(), Oid(), local.obj,
            symbol, local.statenum, resolved.value());
    }
    local.statenum = resolved.value();

    if (info.fsm.Accepting(local.statenum)) {
      Trace(TraceEvent::Kind::kAcceptReached, txn->id(), Oid(), local.obj,
            symbol, local.statenum);
      Ready r;
      r.type = local.type;
      r.info = &info;
      r.id = TriggerId();  // null: transient
      r.local_id = local.id;
      r.state.triggernum = local.triggernum;
      r.state.trigobj = local.obj;
      r.state.params = local.params;
      r.state.anchors = {local.obj};
      ready.push_back(std::move(r));
    }
  }

  if (cache_hits != 0) stats_.state_cache_hits.Inc(cache_hits);
  if (cache_misses != 0) stats_.state_cache_misses.Inc(cache_misses);
  if (moves != 0) stats_.fsm_moves.Inc(moves);
  if (mask_evals != 0) stats_.mask_evaluations.Inc(mask_evals);

  if (ready.empty()) return Status::OK();

  stats_.fires.Inc(ready.size());
  for (Ready& r : ready) {
    PendingAction action;
    action.type = r.type;
    action.triggernum = r.state.triggernum;
    action.anchor = r.state.trigobj;
    action.trigger_id = r.id;
    action.params = r.state.params;
    action.anchors = r.state.anchors;
    action.event_args = args;

    // Once-only triggers deactivate when they fire (§5.4.5c).
    auto deactivate_once_only = [&]() -> Status {
      if (r.info->perpetual) return Status::OK();
      if (r.local_id != 0) return DeactivateLocal(txn, r.local_id);
      return DeactivateInternal(txn, r.id, r.state);
    };

    switch (r.info->coupling) {
      case CouplingMode::kImmediate: {
        const int depth_limit =
            options_.containment ? static_cast<int>(options_.max_cascade_depth)
                                 : kMaxFireDepth;
        if (++ctx->fire_depth > depth_limit) {
          --ctx->fire_depth;
          if (options_.containment) {
            RecordCascadeCut(
                ctx->budget != nullptr ? ctx->budget->root : txn->id(),
                action, ctx->fire_depth,
                ctx->budget != nullptr ? ctx->budget->actions : 0,
                "immediate re-posting depth limit");
          }
          return Status::CascadeOverflow(
              "immediate trigger cascade exceeded depth " +
              std::to_string(depth_limit));
        }
        Status st = RunAction(txn, action);
        --ctx->fire_depth;
        // The paper fires the action and then deactivates (§5.4.5c);
        // on tabort the whole transaction rolls back anyway.
        if (st.ok()) {
          ODE_RETURN_NOT_OK(deactivate_once_only());
        }
        if (!st.ok()) return st;
        break;
      }
      case CouplingMode::kDeferred:
        Trace(TraceEvent::Kind::kActionScheduled, txn->id(), r.id,
              action.anchor, symbol, 0, 0, CouplingMode::kDeferred);
        ctx->end_list.push_back(std::move(action));
        ODE_RETURN_NOT_OK(deactivate_once_only());
        break;
      case CouplingMode::kDependent:
        Trace(TraceEvent::Kind::kActionScheduled, txn->id(), r.id,
              action.anchor, symbol, 0, 0, CouplingMode::kDependent);
        ctx->dependent_list.push_back(std::move(action));
        ODE_RETURN_NOT_OK(deactivate_once_only());
        break;
      case CouplingMode::kIndependent:
        Trace(TraceEvent::Kind::kActionScheduled, txn->id(), r.id,
              action.anchor, symbol, 0, 0, CouplingMode::kIndependent);
        ctx->independent_list.push_back(std::move(action));
        ODE_RETURN_NOT_OK(deactivate_once_only());
        break;
    }
  }
  return Status::OK();
}

Status TriggerManager::RunAction(Transaction* txn,
                                 const PendingAction& action) {
  const TriggerInfo& info = action.type->triggers()[action.triggernum];
  TriggerFireContext fire_ctx(txn, db_, this, action.anchor,
                              action.trigger_id, action.params,
                              action.anchors, action.event_args);
  if (!info.action) {
    return Status::Internal("trigger " + info.name + " has no action");
  }
  TxnCtx* ctx = GetCtx(txn);
  if (options_.containment && options_.max_cascade_actions > 0) {
    // Charge the cascade's shared action budget before running. The
    // budget follows the chain: created at the root, handed to every
    // system transaction the chain spawns (see RunDetached). Only
    // cascade links are charged — actions fired from inside another
    // action, or from a detached chain transaction. A depth-0
    // immediate/deferred action is flat fan-out bounded by the user's
    // own transaction, not a runaway.
    if (ctx->budget == nullptr) {
      ctx->budget = std::make_shared<CascadeBudget>();
      ctx->budget->root = txn->id();
    }
    if ((ctx->processing_depth > 0 || ctx->detach_depth > 0) &&
        ++ctx->budget->actions > options_.max_cascade_actions) {
      RecordCascadeCut(ctx->budget->root, action, ctx->detach_depth,
                       ctx->budget->actions - 1,
                       "cascade action budget exhausted");
      return Status::CascadeOverflow(
          "cascade rooted at txn " + std::to_string(ctx->budget->root) +
          " exceeded " + std::to_string(options_.max_cascade_actions) +
          " actions");
    }
  }
  ++ctx->processing_depth;
  const uint64_t span_start =
      tracer_ != nullptr && tracer_->Sampled(txn->id())
          ? LatencyTimer::NowNanos()
          : 0;
  const uint64_t watchdog_start =
      options_.containment && options_.action_timeout_us > 0
          ? LatencyTimer::NowNanos()
          : 0;
  Status st;
  {
    LatencyTimer timer(action_latency_[static_cast<int>(info.coupling)]);
    st = info.action(fire_ctx);
  }
  --ctx->processing_depth;
  if (st.ok()) {
    Trace(TraceEvent::Kind::kActionRan, txn->id(), action.trigger_id,
          action.anchor, 0, 0, 0, info.coupling, nullptr, span_start);
  }
  // Watchdog: an overrunning action counts toward quarantine even when
  // it succeeds — it cannot be interrupted, only contained next time.
  bool overran = false;
  if (watchdog_start != 0) {
    const uint64_t ran_us =
        (LatencyTimer::NowNanos() - watchdog_start) / 1000;
    if (ran_us > options_.action_timeout_us) {
      overran = true;
      NoteActionFailure(action, "action-timeout",
                        "ran " + std::to_string(ran_us) + "us against a " +
                            std::to_string(options_.action_timeout_us) +
                            "us deadline");
    }
  }
  if (options_.containment && !overran && st.ok() &&
      !txn->abort_requested()) {
    NoteActionSuccess(action.trigger_id);
  }
  ODE_RETURN_NOT_OK(st);
  if (txn->abort_requested()) {
    return Status::TransactionAborted(txn->abort_reason());
  }
  return Status::OK();
}

bool TriggerManager::InAction(Transaction* txn) {
  return GetCtx(txn)->processing_depth > 0;
}

void TriggerManager::NoteAccess(Transaction* txn, Oid obj,
                                const TypeDescriptor* obj_type) {
  // Interested iff the class (or a base) declares a transaction event.
  bool interested = false;
  for (const TypeDescriptor* t = obj_type; t != nullptr; t = t->base()) {
    for (const EventDecl& e : t->own_events()) {
      if (e.kind == EventKind::kBeforeTComplete ||
          e.kind == EventKind::kBeforeTAbort) {
        interested = true;
      }
    }
  }
  if (!interested) return;
  TxnCtx* ctx = GetCtx(txn);
  for (const auto& [oid, type] : ctx->txn_event_objects) {
    (void)type;
    if (oid == obj) return;  // already listed
  }
  ctx->txn_event_objects.emplace_back(obj, obj_type);
}

Status TriggerManager::PostTxnEvent(Transaction* txn, EventKind kind) {
  TxnCtx* ctx = GetCtx(txn);
  // Snapshot: posting may run actions that access more objects.
  auto objects = ctx->txn_event_objects;
  const char* name =
      kind == EventKind::kBeforeTComplete ? "before tcomplete"
                                          : "before tabort";
  for (const auto& [obj, type] : objects) {
    const EventDecl* decl = type->FindEvent(name);
    if (decl == nullptr) continue;
    ODE_RETURN_NOT_OK(PostEvent(txn, obj, type, decl->symbol));
  }
  return Status::OK();
}

Status TriggerManager::PreCommit(Transaction* txn) {
  TxnCtx* ctx = GetCtx(txn);
  bool posted_tcomplete = false;
  int rounds = 0;
  // "Immediately before posting before tcomplete events, commit
  // processing scans the end list and executes the relevant actions"
  // (§5.5). Deferred actions may queue further deferred actions; drain to
  // a fixpoint (bounded).
  while (true) {
    if (++rounds > kMaxDeferredRounds) {
      return Status::CascadeOverflow(
          "deferred trigger cascade did not quiesce after " +
          std::to_string(kMaxDeferredRounds) + " rounds");
    }
    if (!ctx->end_list.empty()) {
      std::vector<PendingAction> batch = std::move(ctx->end_list);
      ctx->end_list.clear();
      for (const PendingAction& a : batch) {
        ODE_RETURN_NOT_OK(RunAction(txn, a));
      }
      continue;
    }
    if (!posted_tcomplete) {
      posted_tcomplete = true;
      ODE_RETURN_NOT_OK(PostTxnEvent(txn, EventKind::kBeforeTComplete));
      if (txn->abort_requested()) {
        return Status::TransactionAborted(txn->abort_reason());
      }
      continue;
    }
    break;
  }
  // All trigger processing has quiesced: write the dirty cached
  // TriggerStates back, once each, while the transaction (and its
  // exclusive locks, held since first touch) is still live. An abort
  // never reaches this point — its dirty states die with the context.
  return FlushCachedStates(txn, ctx);
}

Status TriggerManager::PreAbort(Transaction* txn) {
  // Post `before tabort`. Effects roll back with the transaction; only
  // !dependent queue entries survive (they run in PostAbort).
  Status st = PostTxnEvent(txn, EventKind::kBeforeTAbort);
  if (!st.ok() && !st.IsTransactionAborted()) return st;
  return Status::OK();
}

Status TriggerManager::PostCommit(Transaction* txn) {
  if (trace_ != nullptr) {
    // Runs on the committing thread, so this is the batch that carried
    // *this* transaction's kCommit record (zero for stores that do not
    // batch commits, e.g. main-memory).
    StorageManager::CommitBatchInfo info = db_->store()->LastCommitBatch();
    if (info.batch_id != 0) {
      Trace(TraceEvent::Kind::kCommitBatch, txn->id(), Oid(), Oid(),
            /*symbol=*/0, static_cast<int32_t>(info.batch_id),
            static_cast<int32_t>(info.batch_size));
    }
  }
  std::vector<PendingAction> dependent, independent;
  std::vector<Oid> unquarantined;
  std::shared_ptr<CascadeBudget> budget;
  int depth = 1;
  std::unique_ptr<TxnCtx> ctx;
  {
    CtxShard& shard = CtxShardFor(txn->id());
    MutexLock lock(&shard.mu);
    auto it = shard.contexts.find(txn->id());
    if (it != shard.contexts.end()) {
      ctx = std::move(it->second);
      shard.contexts.erase(it);  // also deallocates local triggers
    }
  }
  txn->set_trigger_scratch(nullptr);
  if (ctx != nullptr) {
    for (const auto& [oid, delta] : ctx->count_delta) {
      if (delta == 0) continue;
      CountShard& shard = CountShardFor(oid);
      MutexLock lock(&shard.mu);
      int64_t& slot = shard.counts[oid];
      slot += delta;
      if (slot <= 0) shard.counts.erase(oid);
    }
    dependent = std::move(ctx->dependent_list);
    independent = std::move(ctx->independent_list);
    unquarantined = std::move(ctx->unquarantined);
    budget = std::move(ctx->budget);
    depth = ctx->detach_depth + 1;
  }
  if (!unquarantined.empty()) ApplyUnquarantine(unquarantined);
  // A root that ran no action of its own (dependent-only triggers) has
  // no budget yet; create it here so the chain is attributed to the
  // user's root transaction, not the first system transaction.
  if (budget == nullptr && options_.containment &&
      (!dependent.empty() || !independent.empty())) {
    budget = std::make_shared<CascadeBudget>();
    budget->root = txn->id();
  }
  Status dep_st =
      RunDetached(std::move(dependent), "dependent", budget, depth);
  Status ind_st =
      dep_st.ok()
          ? RunDetached(std::move(independent), "!dependent", budget, depth)
          : Status::OK();
  // Safe point: the transaction's locks are gone and no action is on the
  // stack, so staged quarantines/dead letters can be persisted now.
  DrainContainment();
  return dep_st.ok() ? ind_st : dep_st;
}

Status TriggerManager::PostAbort(Transaction* txn) {
  std::vector<PendingAction> independent;
  std::shared_ptr<CascadeBudget> budget;
  int depth = 1;
  std::unique_ptr<TxnCtx> ctx;
  {
    CtxShard& shard = CtxShardFor(txn->id());
    MutexLock lock(&shard.mu);
    auto it = shard.contexts.find(txn->id());
    if (it != shard.contexts.end()) {
      // count_delta discarded: activations/deactivations rolled back.
      // Dirty cached TriggerStates are discarded with the context — they
      // were never written back, so the store still holds the
      // pre-transaction images.
      ctx = std::move(it->second);
      shard.contexts.erase(it);
    }
  }
  txn->set_trigger_scratch(nullptr);
  if (ctx != nullptr) {
    // Record the discards while the context is still alive: these are
    // the FSM advances that roll back with the transaction.
    for (const auto& [id, cached] : ctx->state_cache) {
      if (cached.dirty && !cached.deleted) {
        Trace(TraceEvent::Kind::kAbortDiscard, txn->id(), id,
              cached.state.trigobj, 0, cached.state.statenum);
      }
    }
    independent = std::move(ctx->independent_list);
    // ctx->unquarantined is discarded: the table erase rolled back.
    budget = std::move(ctx->budget);
    depth = ctx->detach_depth + 1;
  }
  // "The function handling transaction abort ... checks if the
  // !dependent list is non-empty after finishing all the tasks it
  // normally performs for roll-back" (§5.5).
  if (budget == nullptr && options_.containment && !independent.empty()) {
    budget = std::make_shared<CascadeBudget>();
    budget->root = txn->id();
  }
  Status st = RunDetached(std::move(independent), "!dependent", budget, depth);
  DrainContainment();
  return st;
}

Status TriggerManager::RunDetached(std::vector<PendingAction> actions,
                                   const char* what,
                                   std::shared_ptr<CascadeBudget> budget,
                                   int depth) {
  if (actions.empty()) return Status::OK();
  const bool independent = what[0] == '!';
  if (options_.containment) {
    // Firings queued before their trigger was quarantined are diverted
    // to the dead-letter ring instead of running a known-poisoned action.
    if (quarantine_set_size_.load(std::memory_order_relaxed) != 0) {
      std::vector<PendingAction> diverted;
      {
        MutexLock lock(&containment_mu_);
        auto keep_end = std::stable_partition(
            actions.begin(), actions.end(), [&](const PendingAction& a) {
              return a.trigger_id.IsNull() ||
                     quarantined_or_pending_.count(a.trigger_id) == 0;
            });
        diverted.assign(std::make_move_iterator(keep_end),
                        std::make_move_iterator(actions.end()));
        actions.erase(keep_end, actions.end());
      }
      for (const PendingAction& a : diverted) {
        EnqueueDeadLetter(a, what, "trigger quarantined");
      }
      if (actions.empty()) return Status::OK();
    }
    // Cascade depth budget: a runaway re-posting chain ends here, with
    // the offending batch preserved for inspection.
    if (depth > static_cast<int>(options_.max_cascade_depth)) {
      const std::string why = "detached cascade depth budget (" +
                              std::to_string(options_.max_cascade_depth) +
                              ") exhausted";
      for (const PendingAction& a : actions) {
        RecordCascadeCut(budget != nullptr ? budget->root : kNoTxn, a,
                         depth, budget != nullptr ? budget->actions : 0,
                         why);
        EnqueueDeadLetter(a, what, why);
      }
      return Status::OK();
    }
    // Admission backpressure: only !dependent batches are sheddable —
    // they are fire-and-forget by construction. Dependent actions are
    // part of their root transaction's committed semantics and always
    // admitted.
    if (independent && options_.max_inflight_system_actions > 0 &&
        inflight_actions_.load(std::memory_order_relaxed) >=
            static_cast<int64_t>(options_.max_inflight_system_actions)) {
      stats_.actions_shed.Inc(actions.size());
      for (const PendingAction& a : actions) {
        EnqueueDeadLetter(a, what,
                          "shed: system-action pipeline at high-water mark");
      }
      return Status::OK();
    }
  }

  const uint32_t attempts =
      options_.containment
          ? std::max<uint32_t>(1, options_.action_retry_attempts)
          : 1;
  Random jitter(reinterpret_cast<uintptr_t>(actions.data()) ^
                (static_cast<uint64_t>(depth) << 32) ^ actions.size());
  Status last;
  const PendingAction* culprit = nullptr;
  for (uint32_t attempt = 1; attempt <= attempts; ++attempt) {
    culprit = nullptr;
    // One system transaction scans the whole list (§5.5).
    ODE_ASSIGN_OR_RETURN(Transaction * txn,
                         db_->txns()->Begin(/*system=*/true));
    const TxnId tid = txn->id();
    inflight_actions_.fetch_add(1, std::memory_order_relaxed);
    if (inflight_gauge_ != nullptr) inflight_gauge_->Add(1);
    {
      // Hand the cascade's shared budget and chain position to this
      // link, so re-postings it makes are charged to the same root.
      TxnCtx* ctx = GetCtx(txn);
      ctx->budget = budget;
      ctx->detach_depth = depth;
    }
    Status st;
    for (const PendingAction& a : actions) {
      st = RunAction(txn, a);
      if (!st.ok()) {
        culprit = &a;
        break;
      }
    }
    bool txn_gone = false;
    if (st.ok()) {
      st = db_->txns()->Commit(txn);
      // Commit's kTransactionAborted path (a deferred action tabort'ed
      // during commit processing) has already destroyed the transaction;
      // other commit failures leave it live with locks held.
      txn_gone = !st.ok() && st.IsTransactionAborted();
    }
    inflight_actions_.fetch_sub(1, std::memory_order_relaxed);
    if (inflight_gauge_ != nullptr) inflight_gauge_->Sub(1);
    if (st.ok()) return Status::OK();
    if (!txn_gone) {
      Status ast = db_->txns()->Abort(txn, /*explicit_request=*/false);
      if (!ast.ok()) return ast;
    }
    last = st;
    if (!options_.containment) {
      // Pre-containment behavior: warn and drop the batch.
      ODE_LOG(kWarn) << what << " trigger action failed: " << st.ToString();
      return Status::OK();
    }
    const bool retryable = st.IsDeadlock() || st.IsLockTimeout();
    if (!retryable || attempt == attempts) break;
    stats_.action_retries.Inc();
    if (tracer_ != nullptr && tracer_->enabled()) {
      Span s;
      s.kind = SpanKind::kActionRetry;
      s.txn = tid;
      s.trigger = culprit != nullptr ? culprit->trigger_id : TriggerId();
      s.anchor = culprit != nullptr ? culprit->anchor : Oid();
      s.a = static_cast<int64_t>(attempt);
      s.detail = st.ToString();
      tracer_->Instant(std::move(s));
    }
    SleepBackoff(attempt, &jitter);
  }

  // Terminal failure: the batch is preserved in the dead-letter ring,
  // and (for non-contention failures) the culprit's window advances.
  if (last.IsDeadlock() || last.IsLockTimeout()) {
    stats_.action_retries_exhausted.Inc();
  } else if (culprit != nullptr && !last.IsCascadeOverflow()) {
    // Overflow was already charged by RecordCascadeCut at the cut site.
    NoteActionFailure(*culprit, "action-failure", last.ToString());
  }
  ODE_LOG(kWarn) << what << " trigger batch failed terminally: "
                 << last.ToString();
  for (const PendingAction& a : actions) {
    EnqueueDeadLetter(a, what, last.ToString());
  }
  return Status::OK();
}

// ------------------------------------------------------------ containment

namespace {
constexpr const char* kQuarantineRoot = "ode.quarantine";
constexpr const char* kQuarantineHeader = "__odeqt";
constexpr const char* kDeadLetterRoot = "ode.deadletter";
constexpr const char* kDeadLetterHeader = "__odedl";
}  // namespace

void TriggerManager::NoteActionSuccess(TriggerId id) {
  if (id.IsNull()) return;
  if (failure_window_count_.load(std::memory_order_relaxed) == 0) return;
  MutexLock lock(&containment_mu_);
  auto it = failure_windows_.find(id);
  if (it == failure_windows_.end() || it->second.sticky) return;
  failure_windows_.erase(it);
  failure_window_count_.store(failure_windows_.size(),
                              std::memory_order_relaxed);
}

void TriggerManager::NoteActionFailure(const PendingAction& action,
                                       const char* why,
                                       const std::string& detail) {
  if (!options_.containment || options_.failure_threshold == 0) return;
  // Local triggers die with their transaction; nothing to quarantine.
  if (action.trigger_id.IsNull()) return;
  MutexLock lock(&containment_mu_);
  if (quarantined_or_pending_.count(action.trigger_id) != 0) return;
  FailureWindow& window = failure_windows_[action.trigger_id];
  ++window.count;
  if (std::strcmp(why, "cascade-overflow") == 0) window.sticky = true;
  if (window.count < options_.failure_threshold) {
    failure_window_count_.store(failure_windows_.size(),
                                std::memory_order_relaxed);
    return;
  }
  // Threshold reached: stage the quarantine for the next safe point.
  const TriggerInfo& info = action.type->triggers()[action.triggernum];
  PendingQuarantine q;
  q.id = action.trigger_id;
  q.anchor = action.anchor;
  q.trigger_name = info.name;
  q.defining_class = action.type->name();
  q.failures = window.count;
  q.reason = std::string(why) + ": " + detail;
  failure_windows_.erase(action.trigger_id);
  failure_window_count_.store(failure_windows_.size(),
                              std::memory_order_relaxed);
  quarantined_or_pending_.insert(action.trigger_id);
  quarantine_set_size_.store(quarantined_or_pending_.size(),
                             std::memory_order_relaxed);
  pending_quarantine_.push_back(std::move(q));
  containment_pending_.store(true, std::memory_order_relaxed);
}

void TriggerManager::RecordCascadeCut(TxnId root, const PendingAction& action,
                                      int depth, uint64_t actions_spent,
                                      const std::string& why) {
  stats_.cascade_overflows.Inc();
  if (tracer_ != nullptr && tracer_->enabled()) {
    // Deliberately unsampled: a cut cascade is an anomaly worth a flight-
    // recorder slot no matter which transaction rooted it.
    Span s;
    s.kind = SpanKind::kCascadeCut;
    s.txn = root;
    s.trigger = action.trigger_id;
    s.anchor = action.anchor;
    s.a = depth;
    s.b = static_cast<int64_t>(actions_spent);
    s.detail = why;
    tracer_->Instant(std::move(s));
  }
  NoteActionFailure(action, "cascade-overflow", why);
}

void TriggerManager::EnqueueDeadLetter(const PendingAction& action,
                                       const char* what,
                                       const std::string& reason) {
  if (!options_.containment || options_.dead_letter_capacity == 0) return;
  const TriggerInfo& info = action.type->triggers()[action.triggernum];
  DeadLetter dl;
  dl.trigger = action.trigger_id;
  dl.anchor = action.anchor;
  dl.trigger_name = info.name;
  dl.coupling = what;
  dl.reason = reason;
  MutexLock lock(&containment_mu_);
  pending_dead_letters_.push_back(std::move(dl));
  containment_pending_.store(true, std::memory_order_relaxed);
}

void TriggerManager::SleepBackoff(uint32_t attempt, Random* jitter) {
  uint64_t backoff_us = static_cast<uint64_t>(options_.action_retry_backoff_us)
                        << (attempt - 1);
  backoff_us = std::min<uint64_t>(backoff_us, 100000);  // 100ms cap
  backoff_us += jitter->Uniform(backoff_us / 2 + 1);
  if (backoff_us == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
}

void TriggerManager::DrainContainment() {
  if (!options_.containment) return;
  if (!containment_pending_.load(std::memory_order_relaxed)) return;
  // The drain's own commit re-enters the post-commit hook (and thus this
  // function); the guard makes that re-entry a no-op.
  thread_local bool draining = false;
  if (draining) return;
  std::vector<PendingQuarantine> quarantines;
  std::vector<DeadLetter> letters;
  {
    MutexLock lock(&containment_mu_);
    quarantines.swap(pending_quarantine_);
    letters.swap(pending_dead_letters_);
    containment_pending_.store(false, std::memory_order_relaxed);
  }
  if (quarantines.empty() && letters.empty()) return;
  draining = true;
  size_t table_size = SIZE_MAX, ring_size = SIZE_MAX;
  Status st;
  Random jitter(reinterpret_cast<uintptr_t>(&quarantines) ^
                0x9e3779b97f4a7c15ULL);
  for (uint32_t attempt = 1;; ++attempt) {
    st = ApplyContainment(quarantines, letters, &table_size, &ring_size);
    if (st.ok() || !(st.IsDeadlock() || st.IsLockTimeout()) ||
        attempt > options_.action_retry_attempts) {
      break;
    }
    SleepBackoff(attempt, &jitter);
  }
  draining = false;
  if (!st.ok()) {
    // Re-stage and retry at the next safe point; nothing is lost.
    ODE_LOG(kWarn) << "containment write deferred: " << st.ToString();
    MutexLock lock(&containment_mu_);
    pending_quarantine_.insert(pending_quarantine_.begin(),
                               std::make_move_iterator(quarantines.begin()),
                               std::make_move_iterator(quarantines.end()));
    pending_dead_letters_.insert(pending_dead_letters_.begin(),
                                 std::make_move_iterator(letters.begin()),
                                 std::make_move_iterator(letters.end()));
    containment_pending_.store(true, std::memory_order_relaxed);
    return;
  }
  if (table_size != SIZE_MAX) {
    if (quarantined_gauge_ != nullptr) {
      quarantined_gauge_->Set(static_cast<int64_t>(table_size));
    }
  }
  if (ring_size != SIZE_MAX && deadletter_gauge_ != nullptr) {
    deadletter_gauge_->Set(static_cast<int64_t>(ring_size));
  }
  for (const PendingQuarantine& q : quarantines) {
    ODE_LOG(kWarn) << "trigger " << q.defining_class << "::"
                   << q.trigger_name << " on " << q.anchor.ToString()
                   << " quarantined after " << q.failures
                   << " consecutive failures (" << q.reason << ")";
    RecordQuarantineSpan(q);
  }
}

Status TriggerManager::ApplyContainment(
    const std::vector<PendingQuarantine>& quarantines,
    const std::vector<DeadLetter>& letters, size_t* table_size,
    size_t* ring_size) {
  ODE_ASSIGN_OR_RETURN(Transaction * txn,
                       db_->txns()->Begin(/*system=*/true));
  auto body = [&]() -> Status {
    if (!quarantines.empty()) {
      Oid holder;
      ODE_ASSIGN_OR_RETURN(
          std::vector<QuarantinedTrigger> table,
          ReadQuarantineTable(txn, &holder, /*for_update=*/true));
      for (const PendingQuarantine& q : quarantines) {
        // Deactivate the poisoned trigger (unless a user transaction got
        // there first); the table entry records it either way.
        std::vector<char> image;
        Status rst = db_->ReadObjectForUpdate(txn, q.id, &image);
        if (rst.ok()) {
          ODE_ASSIGN_OR_RETURN(TriggerState state,
                               TriggerState::Decode(image));
          ODE_RETURN_NOT_OK(DeactivateInternal(txn, q.id, state));
        } else if (!rst.IsNotFound()) {
          return rst;
        }
        QuarantinedTrigger entry;
        entry.id = q.id;
        entry.anchor = q.anchor;
        entry.trigger_name = q.trigger_name;
        entry.defining_class = q.defining_class;
        entry.failures = q.failures;
        entry.reason = q.reason;
        table.push_back(std::move(entry));
      }
      ODE_RETURN_NOT_OK(WriteQuarantineTable(txn, holder, table));
      *table_size = table.size();
    }
    if (!letters.empty()) {
      Oid holder;
      ODE_ASSIGN_OR_RETURN(
          DeadLetterRing ring,
          ReadDeadLetterRing(txn, &holder, /*for_update=*/true));
      for (const DeadLetter& dl : letters) {
        ring.entries.push_back(dl);
        ring.entries.back().seq = ring.next_seq++;
      }
      if (ring.entries.size() > options_.dead_letter_capacity) {
        ring.entries.erase(
            ring.entries.begin(),
            ring.entries.end() - options_.dead_letter_capacity);
      }
      ODE_RETURN_NOT_OK(WriteDeadLetterRing(txn, holder, ring));
      *ring_size = ring.entries.size();
    }
    return Status::OK();
  };
  Status st = body();
  if (st.ok()) {
    st = db_->txns()->Commit(txn);
    // kTransactionAborted from Commit means the txn is already gone.
    if (st.ok() || st.IsTransactionAborted()) return st;
  }
  Status ast = db_->txns()->Abort(txn, /*explicit_request=*/false);
  if (!ast.ok()) {
    ODE_LOG(kWarn) << "containment abort failed: " << ast.ToString();
  }
  return st;
}

void TriggerManager::RecordQuarantineSpan(const PendingQuarantine& q) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  Span s;
  s.kind = SpanKind::kQuarantine;
  s.trigger = q.id;
  s.anchor = q.anchor;
  s.a = static_cast<int64_t>(q.failures);
  s.detail = q.defining_class + "::" + q.trigger_name + " " + q.reason;
  // Attach the causal chain behind the trigger's last firing — the
  // "why was this trigger even running" answer — while the ring still
  // holds it.
  auto expl = ode::ExplainFiring(tracer_->Snapshot(), q.id);
  if (expl.ok()) {
    std::string chain = expl->ToString();
    if (chain.size() > 2048) chain.resize(2048);
    s.detail += "\n" + chain;
  }
  tracer_->Instant(std::move(s));
}

Status TriggerManager::ClearQuarantineMatches(
    Transaction* txn, TxnCtx* ctx, const std::vector<Oid>& anchors,
    const std::string& defining_class, const std::string& trigger_name) {
  Oid holder;
  ODE_ASSIGN_OR_RETURN(
      std::vector<QuarantinedTrigger> table,
      ReadQuarantineTable(txn, &holder, /*for_update=*/true));
  bool changed = false;
  for (auto it = table.begin(); it != table.end();) {
    if (it->trigger_name == trigger_name &&
        it->defining_class == defining_class &&
        std::find(anchors.begin(), anchors.end(), it->anchor) !=
            anchors.end()) {
      ctx->unquarantined.push_back(it->id);
      it = table.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  if (!changed) return Status::OK();
  return WriteQuarantineTable(txn, holder, table);
}

void TriggerManager::ApplyUnquarantine(const std::vector<Oid>& ids) {
  size_t removed = 0;
  {
    MutexLock lock(&containment_mu_);
    for (Oid id : ids) {
      removed += quarantined_or_pending_.erase(id);
      failure_windows_.erase(id);
    }
    failure_window_count_.store(failure_windows_.size(),
                                std::memory_order_relaxed);
    quarantine_set_size_.store(quarantined_or_pending_.size(),
                               std::memory_order_relaxed);
  }
  if (removed != 0 && quarantined_gauge_ != nullptr) {
    quarantined_gauge_->Sub(static_cast<int64_t>(removed));
  }
}

Status TriggerManager::LoadContainmentState(Transaction* txn) {
  Oid holder;
  ODE_ASSIGN_OR_RETURN(
      std::vector<QuarantinedTrigger> table,
      ReadQuarantineTable(txn, &holder, /*for_update=*/false));
  {
    MutexLock lock(&containment_mu_);
    failure_windows_.clear();
    quarantined_or_pending_.clear();
    for (const QuarantinedTrigger& entry : table) {
      quarantined_or_pending_.insert(entry.id);
    }
    failure_window_count_.store(0, std::memory_order_relaxed);
    quarantine_set_size_.store(quarantined_or_pending_.size(),
                               std::memory_order_relaxed);
  }
  if (quarantined_gauge_ != nullptr) {
    quarantined_gauge_->Set(static_cast<int64_t>(table.size()));
  }
  Oid dl_holder;
  ODE_ASSIGN_OR_RETURN(
      DeadLetterRing ring,
      ReadDeadLetterRing(txn, &dl_holder, /*for_update=*/false));
  if (deadletter_gauge_ != nullptr) {
    deadletter_gauge_->Set(static_cast<int64_t>(ring.entries.size()));
  }
  return Status::OK();
}

Result<std::vector<TriggerManager::QuarantinedTrigger>>
TriggerManager::ListQuarantined(Transaction* txn) {
  Oid holder;
  return ReadQuarantineTable(txn, &holder, /*for_update=*/false);
}

Result<std::vector<TriggerManager::DeadLetter>> TriggerManager::DeadLetters(
    Transaction* txn) {
  Oid holder;
  ODE_ASSIGN_OR_RETURN(
      DeadLetterRing ring,
      ReadDeadLetterRing(txn, &holder, /*for_update=*/false));
  return std::move(ring.entries);
}

Result<std::vector<TriggerManager::QuarantinedTrigger>>
TriggerManager::ReadQuarantineTable(Transaction* txn, Oid* holder,
                                    bool for_update) {
  std::vector<QuarantinedTrigger> table;
  auto root = db_->GetRoot(txn, kQuarantineRoot);
  if (!root.ok()) {
    if (root.status().IsNotFound()) {
      *holder = Oid::Null();
      return table;
    }
    return root.status();
  }
  *holder = root.value();
  std::vector<char> image;
  ODE_RETURN_NOT_OK(for_update
                        ? db_->ReadObjectForUpdate(txn, *holder, &image)
                        : db_->ReadObject(txn, *holder, &image));
  Decoder dec(image);
  std::string header;
  ODE_RETURN_NOT_OK(dec.GetString(&header));
  if (header != kQuarantineHeader) {
    return Status::Corruption("quarantine table: bad header");
  }
  uint64_t n;
  ODE_RETURN_NOT_OK(dec.GetVarint(&n));
  if (n * 20 > dec.remaining()) {
    return Status::Corruption("quarantine table: bad entry count");
  }
  table.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    QuarantinedTrigger entry;
    uint64_t id, anchor;
    ODE_RETURN_NOT_OK(dec.GetU64(&id));
    ODE_RETURN_NOT_OK(dec.GetU64(&anchor));
    entry.id = Oid(id);
    entry.anchor = Oid(anchor);
    ODE_RETURN_NOT_OK(dec.GetString(&entry.trigger_name));
    ODE_RETURN_NOT_OK(dec.GetString(&entry.defining_class));
    ODE_RETURN_NOT_OK(dec.GetU32(&entry.failures));
    ODE_RETURN_NOT_OK(dec.GetString(&entry.reason));
    table.push_back(std::move(entry));
  }
  return table;
}

Status TriggerManager::WriteQuarantineTable(
    Transaction* txn, Oid holder,
    const std::vector<QuarantinedTrigger>& table) {
  Encoder enc;
  enc.PutString(kQuarantineHeader);
  enc.PutVarint(table.size());
  for (const QuarantinedTrigger& entry : table) {
    enc.PutU64(entry.id.value());
    enc.PutU64(entry.anchor.value());
    enc.PutString(entry.trigger_name);
    enc.PutString(entry.defining_class);
    enc.PutU32(entry.failures);
    enc.PutString(entry.reason);
  }
  if (holder.IsNull()) {
    ODE_ASSIGN_OR_RETURN(Oid oid, db_->NewObject(txn, Slice(enc.buffer())));
    return db_->SetRoot(txn, kQuarantineRoot, oid);
  }
  return db_->WriteObject(txn, holder, Slice(enc.buffer()));
}

Result<TriggerManager::DeadLetterRing> TriggerManager::ReadDeadLetterRing(
    Transaction* txn, Oid* holder, bool for_update) {
  DeadLetterRing ring;
  auto root = db_->GetRoot(txn, kDeadLetterRoot);
  if (!root.ok()) {
    if (root.status().IsNotFound()) {
      *holder = Oid::Null();
      return ring;
    }
    return root.status();
  }
  *holder = root.value();
  std::vector<char> image;
  ODE_RETURN_NOT_OK(for_update
                        ? db_->ReadObjectForUpdate(txn, *holder, &image)
                        : db_->ReadObject(txn, *holder, &image));
  Decoder dec(image);
  std::string header;
  ODE_RETURN_NOT_OK(dec.GetString(&header));
  if (header != kDeadLetterHeader) {
    return Status::Corruption("dead-letter ring: bad header");
  }
  ODE_RETURN_NOT_OK(dec.GetU64(&ring.next_seq));
  uint64_t n;
  ODE_RETURN_NOT_OK(dec.GetVarint(&n));
  if (n * 27 > dec.remaining()) {
    return Status::Corruption("dead-letter ring: bad entry count");
  }
  ring.entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DeadLetter dl;
    uint64_t trigger, anchor;
    ODE_RETURN_NOT_OK(dec.GetU64(&dl.seq));
    ODE_RETURN_NOT_OK(dec.GetU64(&trigger));
    ODE_RETURN_NOT_OK(dec.GetU64(&anchor));
    dl.trigger = Oid(trigger);
    dl.anchor = Oid(anchor);
    ODE_RETURN_NOT_OK(dec.GetString(&dl.trigger_name));
    ODE_RETURN_NOT_OK(dec.GetString(&dl.coupling));
    ODE_RETURN_NOT_OK(dec.GetString(&dl.reason));
    ring.entries.push_back(std::move(dl));
  }
  return ring;
}

Status TriggerManager::WriteDeadLetterRing(Transaction* txn, Oid holder,
                                           const DeadLetterRing& ring) {
  Encoder enc;
  enc.PutString(kDeadLetterHeader);
  enc.PutU64(ring.next_seq);
  enc.PutVarint(ring.entries.size());
  for (const DeadLetter& dl : ring.entries) {
    enc.PutU64(dl.seq);
    enc.PutU64(dl.trigger.value());
    enc.PutU64(dl.anchor.value());
    enc.PutString(dl.trigger_name);
    enc.PutString(dl.coupling);
    enc.PutString(dl.reason);
  }
  if (holder.IsNull()) {
    ODE_ASSIGN_OR_RETURN(Oid oid, db_->NewObject(txn, Slice(enc.buffer())));
    return db_->SetRoot(txn, kDeadLetterRoot, oid);
  }
  return db_->WriteObject(txn, holder, Slice(enc.buffer()));
}

}  // namespace ode
