#ifndef ODE_TRIGGER_TRIGGER_MANAGER_H_
#define ODE_TRIGGER_TRIGGER_MANAGER_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/ordered_mutex.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "objstore/database.h"
#include "objstore/type_descriptor.h"
#include "trigger/trigger_index.h"
#include "trigger/trigger_state.h"
#include "trigger/trigger_trace.h"

namespace ode {

class TriggerManager;

/// Context passed to mask predicates. Masks run inside the detecting
/// transaction, against the anchor object's current state and the
/// trigger's activation parameters.
class MaskEvalContext {
 public:
  MaskEvalContext(Transaction* txn, Database* db, Oid anchor,
                  const std::vector<char>& params,
                  const std::vector<Oid>& anchors,
                  const std::vector<char>& event_args)
      : txn_(txn),
        db_(db),
        anchor_(anchor),
        params_(params),
        anchors_(anchors),
        event_args_(event_args) {}

  Transaction* txn() const { return txn_; }
  Database* db() const { return db_; }
  Oid anchor() const { return anchor_; }
  /// The encoded activation parameters of the trigger being evaluated.
  const std::vector<char>& params() const { return params_; }
  /// All anchor objects (== {anchor()} except for inter-object triggers).
  const std::vector<Oid>& anchors() const { return anchors_; }
  /// Encoded arguments of the member-function invocation that posted the
  /// current event (§8 future work: "allowing each member function event
  /// to look at the parameters passed to the corresponding member
  /// function, at least in masks"). Empty for user/transaction events or
  /// non-encodable argument types. Decode with UnpackParams.
  const std::vector<char>& event_args() const { return event_args_; }

 private:
  Transaction* txn_;
  Database* db_;
  Oid anchor_;
  const std::vector<char>& params_;
  const std::vector<Oid>& anchors_;
  const std::vector<char>& event_args_;
};

/// Context passed to trigger actions. For immediate/deferred coupling the
/// transaction is the detecting one; for dependent/!dependent it is a
/// fresh system transaction (paper §5.5).
class TriggerFireContext {
 public:
  TriggerFireContext(Transaction* txn, Database* db, TriggerManager* mgr,
                     Oid anchor, TriggerId trigger_id,
                     const std::vector<char>& params,
                     const std::vector<Oid>& anchors,
                     const std::vector<char>& event_args)
      : txn_(txn),
        db_(db),
        mgr_(mgr),
        anchor_(anchor),
        trigger_id_(trigger_id),
        params_(params),
        anchors_(anchors),
        event_args_(event_args) {}

  Transaction* txn() const { return txn_; }
  Database* db() const { return db_; }
  TriggerManager* triggers() const { return mgr_; }
  Oid anchor() const { return anchor_; }
  /// Null for transient (local) triggers, which have no persistent state.
  TriggerId trigger_id() const { return trigger_id_; }
  const std::vector<char>& params() const { return params_; }
  /// All anchor objects (== {anchor()} except for inter-object triggers).
  const std::vector<Oid>& anchors() const { return anchors_; }
  /// Encoded arguments of the invocation that completed the event (see
  /// MaskEvalContext::event_args).
  const std::vector<char>& event_args() const { return event_args_; }

  /// The O++ `tabort` statement: requests abort of the transaction the
  /// action runs in. The surrounding machinery unwinds with
  /// kTransactionAborted and rolls the transaction back.
  void Tabort(std::string reason = "tabort in trigger action") {
    txn_->RequestAbort(std::move(reason));
  }

 private:
  Transaction* txn_;
  Database* db_;
  TriggerManager* mgr_;
  Oid anchor_;
  TriggerId trigger_id_;
  const std::vector<char>& params_;
  const std::vector<Oid>& anchors_;
  const std::vector<char>& event_args_;
};

/// Run-time trigger processing (paper §5.4–§5.5): activation and
/// deactivation, the PostEvent algorithm, coupling-mode scheduling via
/// transaction hooks, transaction events, and the footnote-3 fast path
/// (objects without active triggers skip the index lookup entirely).
///
/// One TriggerManager serves one Database; it registers itself as the
/// database's transaction hooks at construction.
///
/// Posting hot path (see docs/architecture.md "Posting hot path"): each
/// transaction keeps a decoded-TriggerState cache (first touch decodes
/// once, later events advance the in-memory copy, dirty states are
/// written back once at pre-commit and discarded on abort) and an
/// index-lookup cache (one bucket load per anchor object per txn,
/// invalidated by Activate/Deactivate). Shared state — committed
/// active-trigger counts and the per-transaction context map — is
/// striped across `Options::lock_stripes` mutexes so concurrent sessions
/// posting to disjoint objects don't serialize on one lock.
class TriggerManager {
 public:
  struct Options {
    /// Bucket fanout of the persistent object->triggers index when it is
    /// first created in a database.
    size_t index_buckets = 64;
    /// Max decoded TriggerStates cached per transaction; 0 disables the
    /// cache (every event re-reads, re-decodes and re-writes its states,
    /// the pre-caching behavior). Eviction writes dirty victims back.
    size_t state_cache_capacity = 1024;
    /// Max object->trigger-oids index lookups cached per transaction;
    /// 0 disables (every posting reloads the index bucket).
    size_t lookup_cache_capacity = 1024;
    /// Stripe count for the committed-count and txn-context locks.
    size_t lock_stripes = 16;
    /// Capacity of the trigger-lifecycle trace ring; 0 (the default)
    /// disables tracing — the hot path then pays one null-pointer test
    /// per would-be trace point.
    size_t trace_capacity = 0;
    /// Master switch for the trigger-runtime containment layer: cascade
    /// budgets, poisoned-trigger quarantine, detached-action retry, and
    /// overload shedding. Off restores the pre-containment behavior
    /// (unbounded budgets except kMaxFireDepth/kMaxDeferredRounds, failed
    /// detached batches warned and dropped).
    bool containment = true;
    /// Maximum trigger-cascade depth per root transaction: immediate
    /// re-posting depth within a transaction, and the length of the
    /// dependent/!dependent re-posting chain across the system
    /// transactions it spawns. Exceeding it cuts the cascade with
    /// kCascadeOverflow.
    size_t max_cascade_depth = 32;
    /// Maximum trigger actions run on behalf of one root transaction
    /// (summed across the whole detached chain).
    size_t max_cascade_actions = 4096;
    /// Consecutive failures (detached action error/tabort, cascade
    /// overflow, watchdog timeout) after which a trigger is quarantined:
    /// auto-deactivated into a persisted table, re-armable by Activate.
    uint32_t failure_threshold = 3;
    /// Soft per-action deadline in microseconds (0 = no watchdog). An
    /// action that overruns counts one failure toward quarantine; it is
    /// not interrupted (actions are arbitrary C++).
    uint64_t action_timeout_us = 0;
    /// Attempts per detached (dependent/!dependent) action batch whose
    /// system transaction aborts with kDeadlock or kLockTimeout.
    uint32_t action_retry_attempts = 3;
    /// Backoff before the first retry; doubles per attempt (plus jitter,
    /// capped at 100ms).
    uint32_t action_retry_backoff_us = 100;
    /// Capacity of the persisted dead-letter ring holding actions that
    /// were cut, shed, quarantined, or failed terminally.
    size_t dead_letter_capacity = 64;
    /// Admission high-water mark: new !dependent batches are shed to the
    /// dead-letter ring while this many detached system-action batches
    /// are already in flight.
    size_t max_inflight_system_actions = 8;
  };

  /// Monitoring counters, backed by the database's MetricsRegistry (the
  /// fields alias registry counters, so `stats().posts` and the
  /// `ode_trigger_posts_total` metric are the same cell). Counters sit on
  /// the posting hot path and synchronize nothing; read them only for
  /// reporting. `.load()` and implicit uint64_t conversion keep old
  /// atomic-style call sites compiling.
  struct Stats {
    Counter& posts;            // PostEvent calls
    Counter& fast_path_skips;  // short-circuited posts
    Counter& fsm_moves;
    Counter& mask_evaluations;
    Counter& fires;
    Counter& activations;
    Counter& deactivations;
    // Posting-path cache effectiveness (see Options).
    Counter& state_cache_hits;
    Counter& state_cache_misses;
    Counter& lookup_cache_hits;
    Counter& lookup_cache_misses;
    Counter& state_writebacks;  // deferred encode+writes
    // Containment (see Options::containment).
    Counter& cascade_overflows;         // firing budgets hit (cuts)
    Counter& action_retries;            // detached batches re-run
    Counter& action_retries_exhausted;  // gave up after the last attempt
    Counter& actions_shed;              // !dependent actions dropped at
                                        //   the admission high-water mark
  };

  explicit TriggerManager(Database* db, Options options);
  explicit TriggerManager(Database* db, size_t index_buckets = 64)
      : TriggerManager(db, MakeOptions(index_buckets)) {}

  TriggerManager(const TriggerManager&) = delete;
  TriggerManager& operator=(const TriggerManager&) = delete;

  /// Registers a class's type descriptor (the schema layer calls this for
  /// every class once its triggers are compiled).
  void RegisterType(const TypeDescriptor* type);
  const TypeDescriptor* FindType(const std::string& name) const;

  /// Loads the object->active-trigger counts from the persistent index,
  /// priming the fast path. Call once after opening the database.
  Status PrimeActiveCounts(Transaction* txn);

  /// Activates trigger `trigger_name` (searched in `obj_type` and its
  /// bases) on `obj` with the encoded parameters; returns the TriggerId.
  /// Mirrors the generated static activation function of §5.4.1.
  Result<TriggerId> Activate(Transaction* txn, Oid obj,
                             const TypeDescriptor* obj_type,
                             const std::string& trigger_name, Slice params);

  /// Inter-object trigger activation (§8 future work): one machine fed
  /// by the events of every object in `anchors` (all of which must be
  /// instances of the trigger's defining class or a subtype). The first
  /// anchor is the primary one seen by typed actions and masks.
  Result<TriggerId> ActivateGroup(Transaction* txn,
                                  const std::vector<Oid>& anchors,
                                  const TypeDescriptor* obj_type,
                                  const std::string& trigger_name,
                                  Slice params);

  /// Transient ("local rule", §8) activation: the trigger lives only in
  /// this transaction's memory — no persistent TriggerState, no index
  /// entry, no write locks — and is deallocated at end of transaction.
  /// Returns a transaction-local id.
  Result<uint64_t> ActivateLocal(Transaction* txn, Oid obj,
                                 const TypeDescriptor* obj_type,
                                 const std::string& trigger_name,
                                 Slice params);

  Status DeactivateLocal(Transaction* txn, uint64_t local_id);

  /// Deactivates a trigger: removes its TriggerState and index entry.
  Status Deactivate(Transaction* txn, TriggerId id);

  /// Deactivates every trigger anchored at `obj` (used by pdelete).
  Status DeactivateAll(Transaction* txn, Oid obj);

  /// True if the TriggerState still exists (not yet deactivated).
  bool IsActive(Transaction* txn, TriggerId id);

  /// Description of one active trigger, for introspection/monitoring.
  struct ActiveTrigger {
    TriggerId id;
    std::string trigger_name;
    std::string defining_class;
    int32_t statenum = 0;
    bool accepting = false;
    bool dead = false;  // anchored machine that failed
    std::vector<Oid> anchors;
  };

  /// Lists the persistent triggers active on `obj`, with their current
  /// FSM states.
  Result<std::vector<ActiveTrigger>> ListActive(Transaction* txn, Oid obj);

  /// A trigger auto-deactivated by the containment layer after
  /// Options::failure_threshold consecutive failures. The entry persists
  /// (and survives recovery) until the trigger is re-armed by an explicit
  /// Activate of the same trigger on the same anchor.
  struct QuarantinedTrigger {
    TriggerId id;          // the deactivated TriggerState's oid
    Oid anchor;
    std::string trigger_name;
    std::string defining_class;
    uint32_t failures = 0;
    std::string reason;    // last failure, e.g. "action-failure: ..."
  };

  /// A detached action the containment layer refused to run (cascade cut,
  /// overload shed, quarantined trigger) or gave up on (retry exhausted,
  /// terminal failure). Kept in a persisted bounded ring, oldest evicted
  /// first; `seq` is a monotone id that survives eviction and recovery.
  struct DeadLetter {
    uint64_t seq = 0;
    TriggerId trigger;     // null for transient (local) triggers
    Oid anchor;
    std::string trigger_name;
    std::string coupling;  // "dependent" or "!dependent"
    std::string reason;
  };

  /// The persisted quarantine table (empty if nothing is quarantined).
  Result<std::vector<QuarantinedTrigger>> ListQuarantined(Transaction* txn);

  /// The persisted dead-letter ring, oldest first.
  Result<std::vector<DeadLetter>> DeadLetters(Transaction* txn);

  /// Posts a basic event to an object — the PostEvent of §5.4.5. Advances
  /// every active trigger's FSM (masks resolved as pseudo-events), then
  /// fires/queues the triggers whose machines reached an accept state.
  /// `event_args` carries the posting invocation's encoded arguments (may
  /// be empty). Returns kTransactionAborted if an immediate action
  /// executed tabort.
  Status PostEvent(Transaction* txn, Oid obj,
                   const TypeDescriptor* obj_type, Symbol symbol,
                   Slice event_args = Slice());

  /// Notes that `txn` accessed `obj` (first access adds the object to the
  /// "transaction event object" list if its class declared interest in
  /// transaction events, §5.5).
  void NoteAccess(Transaction* txn, Oid obj, const TypeDescriptor* obj_type);

  /// Number of active triggers on obj as seen by txn (committed count
  /// plus the transaction's own activations/deactivations).
  int64_t ActiveCount(Transaction* txn, Oid obj);

  /// True while a trigger action of this transaction is on the stack.
  /// The Session uses this to auto-abort only at the outermost level when
  /// an action executed tabort.
  bool InAction(Transaction* txn);

  const Stats& stats() const { return stats_; }
  Database* db() { return db_; }

  /// The lifecycle trace ring, or nullptr when Options::trace_capacity
  /// is 0.
  TriggerTraceRing* trace() { return trace_.get(); }

 private:
  /// An action whose execution was deferred or detached.
  struct PendingAction {
    const TypeDescriptor* type = nullptr;
    uint32_t triggernum = 0;
    Oid anchor;
    TriggerId trigger_id;  // null for local triggers
    std::vector<char> params;
    std::vector<Oid> anchors;
    std::vector<char> event_args;
  };

  /// A transient trigger activation (paper §8 "local rules").
  struct LocalTrigger {
    uint64_t id = 0;
    Oid obj;
    const TypeDescriptor* type = nullptr;
    uint32_t triggernum = 0;
    int32_t statenum = 0;
    std::vector<char> params;
    bool dead = false;
  };

  /// A TriggerState decoded once for this transaction. Events advance
  /// the in-memory copy and set `dirty`; the encode+write round-trip
  /// happens once, at pre-commit (or at eviction), instead of per event.
  /// The exclusive lock was taken when the entry was created (first
  /// touch — §5.1.3: triggers turn read access into write access), so
  /// the cached copy can never be stale: no other transaction can touch
  /// the object until we commit or abort.
  struct CachedState {
    TriggerState state;
    const TypeDescriptor* defining = nullptr;  // resolved metatype
    bool dirty = false;
    bool deleted = false;  // deactivated in this txn; skip write-back
  };

  /// Firing budget shared by every transaction in one cascade: the root
  /// transaction and the chain of system transactions its triggers spawn.
  /// The chain runs sequentially on one thread (RunDetached commits one
  /// link before the next begins), so plain fields suffice.
  struct CascadeBudget {
    TxnId root = kNoTxn;   // the user transaction that rooted the cascade
    uint64_t actions = 0;  // actions run so far across the whole chain
  };

  /// A quarantine staged by failure accounting, waiting for a safe point
  /// (no locks held, no transaction on the stack) to be persisted.
  struct PendingQuarantine {
    TriggerId id;
    Oid anchor;
    std::string trigger_name;
    std::string defining_class;
    uint32_t failures = 0;
    std::string reason;
  };

  /// Persisted dead-letter ring image: a monotone sequence counter plus
  /// the surviving entries, oldest first.
  struct DeadLetterRing {
    uint64_t next_seq = 1;
    std::vector<DeadLetter> entries;
  };

  /// Per-transaction trigger context (discarded at txn end — which is
  /// also what deallocates local triggers, as the paper prescribes).
  /// Owned by the ctx-shard map; reached lock-free through the owning
  /// Transaction's trigger_scratch() slot. Only the transaction's own
  /// thread may touch a context's fields.
  struct TxnCtx {
    std::vector<PendingAction> end_list;
    std::vector<PendingAction> dependent_list;
    std::vector<PendingAction> independent_list;
    /// Objects (with their types) to post transaction events to.
    std::vector<std::pair<Oid, const TypeDescriptor*>> txn_event_objects;
    std::unordered_map<Oid, int64_t, OidHash> count_delta;
    std::vector<LocalTrigger> local_triggers;
    std::unordered_map<Oid, int64_t, OidHash> local_counts;
    /// Decoded-TriggerState cache, keyed by TriggerState oid.
    std::unordered_map<Oid, CachedState, OidHash> state_cache;
    /// anchor object -> TriggerState oids, as returned by the index.
    std::unordered_map<Oid, std::vector<Oid>, OidHash> lookup_cache;
    uint64_t next_local_id = 1;
    int fire_depth = 0;
    int processing_depth = 0;  // any trigger action on the stack
    /// The cascade this transaction belongs to (created lazily by the
    /// first action; inherited by the system transactions it spawns).
    std::shared_ptr<CascadeBudget> budget;
    /// 0 for user transactions; a system transaction's position in the
    /// detached chain (its spawned lists run at detach_depth + 1).
    int detach_depth = 0;
    /// Quarantine-table ids erased by re-activation in this transaction;
    /// applied to the in-memory quarantine set if the commit sticks.
    std::vector<Oid> unquarantined;
  };

  /// A stripe of the committed object->active-trigger-count map. All
  /// stripes share one rank: stripe locks are never nested (each Oid
  /// maps to exactly one stripe), and the validator's duplicate-rank
  /// check enforces exactly that.
  struct CountShard {
    OrderedMutex mu{lock_rank::kTriggerCountShard, "trigger.count_shard"};
    std::unordered_map<Oid, int64_t, OidHash> counts ODE_GUARDED_BY(mu);
  };

  /// A stripe of the per-transaction context map. The mutex guards the
  /// map structure only; the pointed-to TxnCtx objects are single-owner
  /// (see TxnCtx).
  struct CtxShard {
    OrderedMutex mu{lock_rank::kTriggerCtxShard, "trigger.ctx_shard"};
    std::unordered_map<TxnId, std::unique_ptr<TxnCtx>> contexts
        ODE_GUARDED_BY(mu);
  };

  static Options MakeOptions(size_t index_buckets) {
    Options o;
    o.index_buckets = index_buckets;
    return o;
  }

  /// Resolves the Stats counter references out of `registry`.
  static Stats MakeStats(MetricsRegistry* registry);

  /// Records a lifecycle event if tracing is on (one pointer test plus
  /// the tracer's sampling check when off). a/b are overloaded per kind —
  /// see TraceEvent. The same call feeds both surfaces: the flat
  /// TriggerTraceRing (when Options::trace_capacity > 0) and, for
  /// sampled transactions, the database-wide span tracer. `params` (the
  /// machine's activation-parameter bindings) and `start_ns` (a span
  /// start time, making the span an interval) only affect the tracer.
  void Trace(TraceEvent::Kind kind, TxnId txn, Oid trigger, Oid anchor,
             Symbol symbol, int32_t a = 0, int32_t b = 0,
             CouplingMode coupling = CouplingMode::kImmediate,
             const std::vector<char>* params = nullptr,
             uint64_t start_ns = 0) {
    if (trace_ != nullptr) {
      TraceEvent e;
      e.kind = kind;
      e.coupling = coupling;
      e.txn = txn;
      e.trigger = trigger;
      e.anchor = anchor;
      e.symbol = symbol;
      e.a = a;
      e.b = b;
      trace_->Record(e);
    }
    if (tracer_ != nullptr && tracer_->Sampled(txn)) {
      TraceSpan(kind, txn, trigger, anchor, symbol, a, b, coupling, params,
                start_ns);
    }
  }

  /// Slow half of Trace(): builds and records the Span (out of line so
  /// the unsampled hot path stays a branch).
  void TraceSpan(TraceEvent::Kind kind, TxnId txn, Oid trigger, Oid anchor,
                 Symbol symbol, int32_t a, int32_t b, CouplingMode coupling,
                 const std::vector<char>* params, uint64_t start_ns);

  CountShard& CountShardFor(Oid obj) {
    return *count_shards_[OidHash{}(obj) % count_shards_.size()];
  }
  CtxShard& CtxShardFor(TxnId id) {
    return *ctx_shards_[id % ctx_shards_.size()];
  }

  TxnCtx* GetCtx(Transaction* txn);

  /// Committed active-trigger count for obj (0 if none).
  int64_t CommittedCount(Oid obj);

  /// Index lookup through the per-transaction cache.
  Result<std::vector<Oid>> CachedLookup(Transaction* txn, TxnCtx* ctx,
                                        Oid obj);

  /// Drops the cached lookup for an object whose trigger set changed
  /// (Activate/Deactivate in this transaction).
  void InvalidateLookup(TxnCtx* ctx, Oid obj) {
    ctx->lookup_cache.erase(obj);
  }

  /// Encodes and writes every dirty, live cached TriggerState. Runs at
  /// the end of pre-commit; aborts skip it, so dirty states are simply
  /// discarded with the context.
  Status FlushCachedStates(Transaction* txn, TxnCtx* ctx);

  /// Makes room in the state cache by writing back and dropping one
  /// entry (called when the cache is at capacity).
  Status EvictOneCachedState(Transaction* txn, TxnCtx* ctx);

  Result<const TypeDescriptor*> ResolveMetatype(Transaction* txn,
                                                uint32_t metatype_id);

  Status RunAction(Transaction* txn, const PendingAction& action);

  /// Removes state + index entry; used by Deactivate and once-only fire.
  Status DeactivateInternal(Transaction* txn, TriggerId id,
                            const TriggerState& state);

  // Transaction hooks.
  Status PreCommit(Transaction* txn);
  Status PreAbort(Transaction* txn);
  Status PostCommit(Transaction* txn);
  Status PostAbort(Transaction* txn);

  /// Posts the given transaction event to every interested object.
  Status PostTxnEvent(Transaction* txn, EventKind kind);

  /// Runs a list of pending actions in one fresh system transaction at
  /// position `depth` of the cascade owning `budget` (either may be
  /// null/default for legacy callers). With containment on this is where
  /// depth cuts, overload shedding, quarantine diversion, and
  /// deadlock/timeout retry happen; a batch that cannot be run or
  /// retried lands in the dead-letter ring instead of being lost.
  Status RunDetached(std::vector<PendingAction> actions, const char* what,
                     std::shared_ptr<CascadeBudget> budget, int depth);

  // --- containment (see Options::containment) ---

  /// Clears a trigger's failure window after a clean action run. One
  /// relaxed load when no window is open anywhere.
  void NoteActionSuccess(TriggerId id);

  /// Advances the trigger's consecutive-failure window; at
  /// Options::failure_threshold the trigger is staged for quarantine
  /// (persisted at the next DrainContainment safe point).
  void NoteActionFailure(const PendingAction& action, const char* why,
                         const std::string& detail);

  /// Records a cascade cut: counter, flight-recorder span, and one
  /// failure against the offending trigger.
  void RecordCascadeCut(TxnId root, const PendingAction& action, int depth,
                        uint64_t actions_spent, const std::string& why);

  /// Stages one action for the persisted dead-letter ring.
  void EnqueueDeadLetter(const PendingAction& action, const char* what,
                         const std::string& reason);

  /// Persists staged quarantines and dead letters in a fresh system
  /// transaction (retried on deadlock, re-staged on failure). Runs at
  /// safe points — after post-commit/post-abort hook work — and is
  /// reentrancy-guarded, since its own commit re-enters the hooks.
  void DrainContainment();
  Status ApplyContainment(const std::vector<PendingQuarantine>& quarantines,
                          const std::vector<DeadLetter>& letters,
                          size_t* table_size, size_t* ring_size);

  /// Emits the kQuarantine span, with the firing provenance of the
  /// quarantined trigger (ExplainFiring) attached as detail.
  void RecordQuarantineSpan(const PendingQuarantine& q);

  /// Removes re-activated triggers from the quarantine table (matched by
  /// anchor + defining class + trigger name); the erased ids land in
  /// ctx->unquarantined for post-commit set maintenance.
  Status ClearQuarantineMatches(Transaction* txn, TxnCtx* ctx,
                                const std::vector<Oid>& anchors,
                                const std::string& defining_class,
                                const std::string& trigger_name);

  /// Applies a committed unquarantine to the in-memory set and gauges.
  void ApplyUnquarantine(const std::vector<Oid>& ids);

  /// Primes the in-memory quarantine set and gauges from the persisted
  /// tables (PrimeActiveCounts tail).
  Status LoadContainmentState(Transaction* txn);

  Result<std::vector<QuarantinedTrigger>> ReadQuarantineTable(
      Transaction* txn, Oid* holder, bool for_update);
  Status WriteQuarantineTable(Transaction* txn, Oid holder,
                              const std::vector<QuarantinedTrigger>& table);
  Result<DeadLetterRing> ReadDeadLetterRing(Transaction* txn, Oid* holder,
                                            bool for_update);
  Status WriteDeadLetterRing(Transaction* txn, Oid holder,
                             const DeadLetterRing& ring);

  /// Exponential backoff with jitter before retry `attempt` (1-based).
  void SleepBackoff(uint32_t attempt, Random* jitter);

  Database* db_;
  Options options_;
  TriggerIndex index_;

  /// Guards the type registry and metatype cache only (cold paths: type
  /// registration and first-time metatype resolution).
  mutable OrderedMutex types_mu_{lock_rank::kTriggerTypes,
                                 "trigger.types_mu"};
  std::unordered_map<std::string, const TypeDescriptor*> types_
      ODE_GUARDED_BY(types_mu_);
  std::unordered_map<uint32_t, const TypeDescriptor*> metatype_cache_
      ODE_GUARDED_BY(types_mu_);

  /// Striped replacements for the former single `mu_`: committed counts
  /// keyed by anchor Oid, transaction contexts keyed by TxnId. Sessions
  /// posting to disjoint objects touch disjoint stripes.
  std::vector<std::unique_ptr<CountShard>> count_shards_;
  std::vector<std::unique_ptr<CtxShard>> ctx_shards_;

  Stats stats_;
  Histogram* post_latency_ = nullptr;
  /// Indexed by CouplingMode.
  Histogram* action_latency_[4] = {nullptr, nullptr, nullptr, nullptr};
  std::unique_ptr<TriggerTraceRing> trace_;
  Tracer* tracer_ = nullptr;  // the owning Database's span tracer

  // --- containment state ---
  //
  // containment_mu_ is a leaf lock guarding the failure windows, the
  // quarantine set, and the staging queues. The atomics alongside it
  // mirror emptiness so the hot paths (action success, detached
  // dispatch, activation) pay one relaxed load when containment has
  // nothing to say.
  OrderedMutex containment_mu_{lock_rank::kTriggerContainment,
                               "trigger.containment_mu"};
  /// Consecutive-failure window per trigger. `sticky` marks windows
  /// advanced by a cascade overflow: a runaway trigger's intermediate
  /// links succeed by construction, so those successes must not clear
  /// the overflow evidence.
  struct FailureWindow {
    uint32_t count = 0;
    bool sticky = false;
  };
  std::unordered_map<Oid, FailureWindow, OidHash> failure_windows_
      ODE_GUARDED_BY(containment_mu_);
  /// Triggers quarantined (persisted) or staged for quarantine.
  std::unordered_set<Oid, OidHash> quarantined_or_pending_
      ODE_GUARDED_BY(containment_mu_);
  std::vector<PendingQuarantine> pending_quarantine_
      ODE_GUARDED_BY(containment_mu_);
  std::vector<DeadLetter> pending_dead_letters_
      ODE_GUARDED_BY(containment_mu_);
  std::atomic<size_t> failure_window_count_{0};
  std::atomic<size_t> quarantine_set_size_{0};
  std::atomic<bool> containment_pending_{false};
  /// Detached system-action batches currently executing (admission gauge).
  std::atomic<int64_t> inflight_actions_{0};
  Gauge* quarantined_gauge_ = nullptr;  // ode_trigger_quarantined
  Gauge* deadletter_gauge_ = nullptr;   // ode_deadletter_depth
  Gauge* inflight_gauge_ = nullptr;     // ode_system_actions_inflight

  static constexpr int kMaxFireDepth = 32;
  static constexpr int kMaxDeferredRounds = 64;
};

}  // namespace ode

#endif  // ODE_TRIGGER_TRIGGER_MANAGER_H_
