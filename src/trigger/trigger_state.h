#ifndef ODE_TRIGGER_TRIGGER_STATE_H_
#define ODE_TRIGGER_TRIGGER_STATE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "objstore/oid.h"

namespace ode {

class Encoder;

/// Handle to an activated trigger: the Oid of its persistent TriggerState
/// record — exactly the paper's `typedef persistent TriggerState*
/// TriggerId` (§5.4.1).
using TriggerId = Oid;

/// The persistent per-activation record of §5.4.1:
///
///   persistent struct TriggerState {
///     unsigned int triggernum;   // which trigger of the class
///     persistent void *trigobj;  // the anchor object
///     int statenum;              // current FSM state
///     persistent metatype *trigobjtype;  // class that DEFINED the trigger
///   };
///
/// plus the trigger's activation parameters (the paper subclasses
/// TriggerState per trigger, e.g. CredCardAutoRaiseLimitStruct with its
/// `amount` field; we carry the encoded parameters inline).
///
/// Stored as an ordinary persistent object, so transaction rollback of
/// FSM advancement (§5.5) is ordinary object rollback.
struct TriggerState {
  uint32_t triggernum = 0;
  Oid trigobj;
  int32_t statenum = 0;
  /// Database-local metatype id of the defining class (needed because of
  /// inheritance: an object can have active triggers from several bases).
  uint32_t trigobjtype = 0;
  std::vector<char> params;
  /// Anchor objects. Ordinary (intra-object) triggers have exactly
  /// {trigobj}; *inter-object* triggers (the paper's §8 future work:
  /// "triggers like 'if AT&T goes below 60 and the price of gold
  /// stabilizes...'") list every anchor whose events feed this machine.
  std::vector<Oid> anchors;

  std::vector<char> Encode() const;
  /// Appends the encoding to `enc` — lets the pre-commit write-back loop
  /// reuse one Encoder across all dirty states.
  void EncodeTo(Encoder& enc) const;
  static Result<TriggerState> Decode(Slice image);
};

}  // namespace ode

#endif  // ODE_TRIGGER_TRIGGER_STATE_H_
