#include "trigger/trigger_state.h"

#include "common/coding.h"

namespace ode {

std::vector<char> TriggerState::Encode() const {
  Encoder enc;
  EncodeTo(enc);
  return enc.Release();
}

void TriggerState::EncodeTo(Encoder& enc) const {
  enc.PutU32(triggernum);
  enc.PutU64(trigobj.value());
  enc.PutI32(statenum);
  enc.PutU32(trigobjtype);
  enc.PutBytes(params);
  enc.PutVarint(anchors.size());
  for (Oid a : anchors) enc.PutU64(a.value());
}

Result<TriggerState> TriggerState::Decode(Slice image) {
  Decoder dec(image);
  TriggerState out;
  uint64_t obj;
  ODE_RETURN_NOT_OK(dec.GetU32(&out.triggernum));
  ODE_RETURN_NOT_OK(dec.GetU64(&obj));
  out.trigobj = Oid(obj);
  ODE_RETURN_NOT_OK(dec.GetI32(&out.statenum));
  ODE_RETURN_NOT_OK(dec.GetU32(&out.trigobjtype));
  ODE_RETURN_NOT_OK(dec.GetBytes(&out.params));
  uint64_t nanchors;
  ODE_RETURN_NOT_OK(dec.GetVarint(&nanchors));
  if (nanchors * 8 > dec.remaining()) {
    return Status::Corruption("trigger state: anchor count exceeds image");
  }
  out.anchors.reserve(nanchors);
  for (uint64_t i = 0; i < nanchors; ++i) {
    uint64_t a;
    ODE_RETURN_NOT_OK(dec.GetU64(&a));
    out.anchors.push_back(Oid(a));
  }
  if (out.anchors.empty()) out.anchors.push_back(out.trigobj);
  return out;
}

}  // namespace ode
