#include "trigger/trigger_index.h"

#include <algorithm>

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"

namespace ode {

namespace {
constexpr const char* kIndexRoot = "ode.trigger_index";
}  // namespace

Result<std::vector<Oid>> TriggerIndex::LoadDirectory(Transaction* txn,
                                                     bool create) {
  {
    MutexLock lock(&dir_mu_);
    if (!cached_dir_.empty()) return cached_dir_;
  }
  auto root = db_->GetRoot(txn, kIndexRoot);
  if (root.ok()) {
    std::vector<char> image;
    ODE_RETURN_NOT_OK(db_->ReadObject(txn, root.value(), &image));
    Decoder dec(image);
    uint64_t n;
    ODE_RETURN_NOT_OK(dec.GetVarint(&n));
    std::vector<Oid> buckets;
    buckets.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t oid;
      ODE_RETURN_NOT_OK(dec.GetU64(&oid));
      buckets.push_back(Oid(oid));
    }
    // Cache only directories whose creation is durable: either it
    // pre-existed this process, or its creating transaction committed.
    // (A load by the still-active creating transaction must not poison
    // the cache — the creation could yet roll back.)
    MutexLock lock(&dir_mu_);
    if (creator_txn_ == 0 ||
        db_->txns()->Outcome(creator_txn_) == TxnState::kCommitted) {
      cached_dir_ = buckets;
    }
    return buckets;
  }
  if (!root.status().IsNotFound() || !create) return root.status();

  // First use in this database: create the directory and empty buckets.
  std::vector<Oid> buckets;
  buckets.reserve(default_buckets_);
  Bucket empty;
  for (size_t i = 0; i < default_buckets_; ++i) {
    Encoder enc;
    enc.PutVarint(0);
    ODE_ASSIGN_OR_RETURN(Oid b, db_->NewObject(txn, Slice(enc.buffer())));
    buckets.push_back(b);
  }
  Encoder dir;
  dir.PutVarint(buckets.size());
  for (Oid b : buckets) dir.PutU64(b.value());
  ODE_ASSIGN_OR_RETURN(Oid dir_oid, db_->NewObject(txn, Slice(dir.buffer())));
  ODE_RETURN_NOT_OK(db_->SetRoot(txn, kIndexRoot, dir_oid));
  {
    MutexLock lock(&dir_mu_);
    creator_txn_ = txn->id();
  }
  return buckets;
}

Result<TriggerIndex::Bucket> TriggerIndex::LoadBucket(Transaction* txn,
                                                      Oid bucket_oid) {
  std::vector<char> image;
  ODE_RETURN_NOT_OK(db_->ReadObject(txn, bucket_oid, &image));
  Decoder dec(image);
  Bucket bucket;
  uint64_t n;
  ODE_RETURN_NOT_OK(dec.GetVarint(&n));
  if (n * 9 > dec.remaining()) {
    return Status::Corruption("trigger index bucket: bad entry count");
  }
  bucket.entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t obj;
    uint64_t ntrigs;
    ODE_RETURN_NOT_OK(dec.GetU64(&obj));
    ODE_RETURN_NOT_OK(dec.GetVarint(&ntrigs));
    if (ntrigs * 8 > dec.remaining()) {
      return Status::Corruption("trigger index bucket: bad trigger count");
    }
    std::vector<Oid> trigs;
    trigs.reserve(ntrigs);
    for (uint64_t j = 0; j < ntrigs; ++j) {
      uint64_t t;
      ODE_RETURN_NOT_OK(dec.GetU64(&t));
      trigs.push_back(Oid(t));
    }
    bucket.entries.emplace_back(Oid(obj), std::move(trigs));
  }
  return bucket;
}

Status TriggerIndex::StoreBucket(Transaction* txn, Oid bucket_oid,
                                 const Bucket& bucket) {
  Encoder enc;
  enc.PutVarint(bucket.entries.size());
  for (const auto& [obj, trigs] : bucket.entries) {
    enc.PutU64(obj.value());
    enc.PutVarint(trigs.size());
    for (Oid t : trigs) enc.PutU64(t.value());
  }
  return db_->WriteObject(txn, bucket_oid, Slice(enc.buffer()));
}

Status TriggerIndex::Insert(Transaction* txn, Oid obj, Oid trig) {
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> buckets,
                       LoadDirectory(txn, /*create=*/true));
  Oid bucket_oid = buckets[MixU64(obj.value()) % buckets.size()];
  ODE_ASSIGN_OR_RETURN(Bucket bucket, LoadBucket(txn, bucket_oid));
  for (auto& [entry_obj, trigs] : bucket.entries) {
    if (entry_obj == obj) {
      if (std::find(trigs.begin(), trigs.end(), trig) != trigs.end()) {
        return Status::AlreadyExists("trigger already indexed");
      }
      trigs.push_back(trig);
      return StoreBucket(txn, bucket_oid, bucket);
    }
  }
  bucket.entries.emplace_back(obj, std::vector<Oid>{trig});
  return StoreBucket(txn, bucket_oid, bucket);
}

Status TriggerIndex::Remove(Transaction* txn, Oid obj, Oid trig) {
  ODE_ASSIGN_OR_RETURN(std::vector<Oid> buckets,
                       LoadDirectory(txn, /*create=*/true));
  Oid bucket_oid = buckets[MixU64(obj.value()) % buckets.size()];
  ODE_ASSIGN_OR_RETURN(Bucket bucket, LoadBucket(txn, bucket_oid));
  for (auto it = bucket.entries.begin(); it != bucket.entries.end(); ++it) {
    if (it->first != obj) continue;
    auto tit = std::find(it->second.begin(), it->second.end(), trig);
    if (tit == it->second.end()) break;
    it->second.erase(tit);
    if (it->second.empty()) bucket.entries.erase(it);
    return StoreBucket(txn, bucket_oid, bucket);
  }
  return Status::NotFound("trigger not in index");
}

Result<std::vector<Oid>> TriggerIndex::Lookup(Transaction* txn, Oid obj) {
  auto buckets = LoadDirectory(txn, /*create=*/false);
  if (!buckets.ok()) {
    if (buckets.status().IsNotFound()) return std::vector<Oid>{};
    return buckets.status();
  }
  Oid bucket_oid =
      buckets.value()[MixU64(obj.value()) % buckets.value().size()];
  ODE_ASSIGN_OR_RETURN(Bucket bucket, LoadBucket(txn, bucket_oid));
  for (const auto& [entry_obj, trigs] : bucket.entries) {
    if (entry_obj == obj) return trigs;
  }
  return std::vector<Oid>{};
}

Status TriggerIndex::ForEach(
    Transaction* txn, const std::function<void(Oid obj, Oid trig)>& fn) {
  auto buckets = LoadDirectory(txn, /*create=*/false);
  if (!buckets.ok()) {
    return buckets.status().IsNotFound() ? Status::OK() : buckets.status();
  }
  for (Oid bucket_oid : buckets.value()) {
    ODE_ASSIGN_OR_RETURN(Bucket bucket, LoadBucket(txn, bucket_oid));
    for (const auto& [obj, trigs] : bucket.entries) {
      for (Oid t : trigs) fn(obj, t);
    }
  }
  return Status::OK();
}

}  // namespace ode
