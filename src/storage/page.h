#ifndef ODE_STORAGE_PAGE_H_
#define ODE_STORAGE_PAGE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace ode {

inline constexpr size_t kPageSize = 4096;

/// Size of the fixed page header. Bytes [8..12) hold a CRC32C over the
/// rest of the page (stamped on every write-back, verified on every
/// buffer-pool read), so a flipped bit on the medium is detected instead
/// of being decoded into a bogus object image.
inline constexpr size_t kPageHeaderSize = 12;

/// A slotted data page, as used by the disk storage manager (the EOS
/// analogue). Records grow from the top (after the header); the slot
/// directory grows from the bottom. Each record carries the owning Oid so
/// the oid -> (page, slot) index can be rebuilt by scanning pages on open.
///
/// Layout:
///   [0..4)   page id
///   [4..6)   slot count
///   [6..8)   free pointer (offset of first unused byte in the record area)
///   [8..12)  CRC32C of the page with this field skipped
///   [12..)   records, each: oid (8 bytes) + payload
///   ...      free space
///   [end)    slot directory, 4 bytes per slot: offset (2) + length (2);
///            offset 0xffff marks a dead slot. `length` covers payload only.
class Page {
 public:
  static constexpr uint16_t kDeadSlot = 0xffff;
  /// Largest payload a single record can hold on an empty page.
  static constexpr size_t kMaxPayload = kPageSize - kPageHeaderSize -
                                        4 /*slot entry*/ - 8 /*oid*/;

  Page() : data_(kPageSize, 0) {}

  /// Initializes an empty page with the given id.
  void Format(uint32_t page_id);

  /// Wraps existing on-disk bytes (must be kPageSize long).
  void Load(const char* bytes);

  uint32_t page_id() const { return ReadU32(0); }
  uint16_t slot_count() const { return ReadU16(4); }

  /// Recomputes the CRC32C over the page (header fields + records + slot
  /// directory, the checksum field itself skipped) and stores it at
  /// [8..12). Call immediately before writing the page to disk.
  void UpdateChecksum();

  /// True if the stored checksum matches the page contents. A freshly
  /// Format()ted page verifies only after UpdateChecksum().
  bool VerifyChecksum() const;

  uint32_t stored_checksum() const { return ReadU32(8); }

  /// Validates the slot directory against the page bounds: slot count and
  /// free pointer in range, every live slot's record fully inside
  /// [header, directory). A page that passes can be read (ForEach/Read)
  /// without any out-of-bounds access even if its contents are garbage;
  /// a page that fails must not be handed to the record accessors.
  Status ValidateStructure() const;

  /// Bytes available for one more record (accounts for a new slot entry).
  size_t FreeSpaceForInsert() const;

  /// Inserts a record; returns the slot index. Compacts first if the free
  /// region is fragmented. Fails with kInternal if it genuinely cannot fit.
  Result<uint16_t> Insert(uint64_t oid, Slice payload);

  /// Reads a record's payload (copied out) and owning oid.
  Status Read(uint16_t slot, uint64_t* oid, std::vector<char>* payload) const;

  /// Updates a record's payload in place if it fits (possibly after
  /// compaction); returns kNotSupported if the page cannot hold it so the
  /// caller can relocate the record to another page. On kNotSupported the
  /// slot has been deleted (the caller was about to reinsert elsewhere).
  Status Update(uint16_t slot, Slice payload);

  Status Delete(uint16_t slot);

  bool SlotLive(uint16_t slot) const;

  /// Calls fn(slot, oid, payload) for every live record.
  void ForEach(
      const std::function<void(uint16_t, uint64_t, Slice)>& fn) const;

  const char* data() const { return data_.data(); }
  char* mutable_data() { return data_.data(); }

 private:
  uint16_t SlotOffset(uint16_t slot) const {
    return static_cast<uint16_t>(kPageSize - 4 * (slot + 1));
  }
  uint16_t ReadU16(size_t off) const;
  uint32_t ReadU32(size_t off) const;
  uint64_t ReadU64(size_t off) const;
  void WriteU16(size_t off, uint16_t v);
  void WriteU32(size_t off, uint32_t v);
  void WriteU64(size_t off, uint64_t v);
  uint16_t free_ptr() const { return ReadU16(6); }
  void set_free_ptr(uint16_t v) { WriteU16(6, v); }
  void set_slot_count(uint16_t v) { WriteU16(4, v); }

  /// Moves all live records to the top of the record area, erasing holes.
  void Compact();

  std::vector<char> data_;
};

/// CRC32C of an arbitrary kPageSize buffer with the checksum field at
/// [8..12) skipped — the same rule Page::UpdateChecksum applies. Shared
/// with the overflow-page and file-header paths, which stamp raw buffers
/// rather than going through Page's record accessors.
uint32_t PageChecksum(const char* page_bytes);

}  // namespace ode

#endif  // ODE_STORAGE_PAGE_H_
