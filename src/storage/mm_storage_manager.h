#ifndef ODE_STORAGE_MM_STORAGE_MANAGER_H_
#define ODE_STORAGE_MM_STORAGE_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/ordered_mutex.h"
#include "common/thread_annotations.h"
#include "storage/storage_manager.h"

namespace ode {

/// Main-memory storage manager — the Dali analogue backing MM-Ode. All
/// committed objects live in a hash table; durability comes from explicit
/// checkpoints (Checkpoint()/Close() write a snapshot file that Open()
/// reloads). Pass an empty path for a purely volatile store.
class MMStorageManager final : public StorageManager {
 public:
  /// `path`: snapshot file, or "" for volatile operation.
  explicit MMStorageManager(std::string path = "");

  MMStorageManager(const MMStorageManager&) = delete;
  MMStorageManager& operator=(const MMStorageManager&) = delete;

  Status Open() override;
  Status Close() override;

  Result<Oid> Allocate(TxnId txn, Slice data) override;
  Status Read(TxnId txn, Oid oid, std::vector<char>* out) override;
  Status Write(TxnId txn, Oid oid, Slice data) override;
  Status Free(TxnId txn, Oid oid) override;
  bool Exists(TxnId txn, Oid oid) override;

  Status SetRoot(TxnId txn, const std::string& name, Oid oid) override;
  Result<Oid> GetRoot(TxnId txn, const std::string& name) override;

  Status BeginTxn(TxnId txn) override;
  Status CommitTxn(TxnId txn) override;
  Status AbortTxn(TxnId txn) override;

  Status Checkpoint() override;

  StorageStats stats() const override;

  void BindMetrics(MetricsRegistry* registry) override;

 private:
  using Workspace = storage_internal::TxnWorkspace;

  Workspace* FindWorkspace(TxnId txn) ODE_REQUIRES(mu_);
  Status CheckpointLocked() ODE_REQUIRES(mu_);

  std::string path_;

  mutable OrderedMutex mu_{lock_rank::kMmStore, "mm.mu"};
  bool open_ ODE_GUARDED_BY(mu_) = false;
  std::unordered_map<Oid, std::vector<char>, OidHash> objects_
      ODE_GUARDED_BY(mu_);
  std::map<std::string, Oid> roots_ ODE_GUARDED_BY(mu_);
  std::unordered_map<TxnId, Workspace> workspaces_ ODE_GUARDED_BY(mu_);
  uint64_t next_oid_ ODE_GUARDED_BY(mu_) = 1;

  // Metrics (see StorageManager::BindMetrics).
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  Counter* object_reads_ = nullptr;
  Counter* object_writes_ = nullptr;
  Histogram* read_latency_ = nullptr;
  Histogram* write_latency_ = nullptr;
};

}  // namespace ode

#endif  // ODE_STORAGE_MM_STORAGE_MANAGER_H_
