#include "storage/mm_storage_manager.h"

#include <cstdio>

#include "common/coding.h"
#include "common/logging.h"

namespace ode {

namespace {
constexpr uint32_t kSnapshotMagic = 0x0de0da11;  // "Ode over Dali"
}  // namespace

MMStorageManager::MMStorageManager(std::string path)
    : path_(std::move(path)) {
  owned_metrics_ = std::make_unique<MetricsRegistry>();
  BindMetrics(owned_metrics_.get());
}

void MMStorageManager::BindMetrics(MetricsRegistry* registry) {
  object_reads_ = registry->GetCounter("ode_storage_object_reads_total");
  object_writes_ = registry->GetCounter("ode_storage_object_writes_total");
  // MM reads/writes are hash-table probes (~100ns): sample so the clock
  // reads don't dominate what they measure.
  read_latency_ =
      registry->GetHistogram("ode_storage_read_latency_ns", /*sample=*/64);
  write_latency_ =
      registry->GetHistogram("ode_storage_write_latency_ns", /*sample=*/64);
}

Status MMStorageManager::Open() {
  MutexLock lock(&mu_);
  if (open_) return Status::Internal("mm store already open");
  objects_.clear();
  roots_.clear();
  workspaces_.clear();
  next_oid_ = 1;
  if (!path_.empty()) {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    if (f != nullptr) {
      std::fseek(f, 0, SEEK_END);
      long size = std::ftell(f);
      std::fseek(f, 0, SEEK_SET);
      std::vector<char> buf(static_cast<size_t>(size));
      size_t nread = size > 0 ? std::fread(buf.data(), 1, buf.size(), f) : 0;
      std::fclose(f);
      if (nread != buf.size()) {
        return Status::IOError("mm store: short read of snapshot " + path_);
      }
      Decoder dec(buf);
      uint32_t magic;
      ODE_RETURN_NOT_OK(dec.GetU32(&magic));
      if (magic != kSnapshotMagic) {
        return Status::Corruption("mm store: bad snapshot magic in " + path_);
      }
      ODE_RETURN_NOT_OK(dec.GetU64(&next_oid_));
      uint64_t nobjects;
      ODE_RETURN_NOT_OK(dec.GetVarint(&nobjects));
      for (uint64_t i = 0; i < nobjects; ++i) {
        uint64_t oid;
        std::vector<char> image;
        ODE_RETURN_NOT_OK(dec.GetU64(&oid));
        ODE_RETURN_NOT_OK(dec.GetBytes(&image));
        objects_.emplace(Oid(oid), std::move(image));
      }
      uint64_t nroots;
      ODE_RETURN_NOT_OK(dec.GetVarint(&nroots));
      for (uint64_t i = 0; i < nroots; ++i) {
        std::string name;
        uint64_t oid;
        ODE_RETURN_NOT_OK(dec.GetString(&name));
        ODE_RETURN_NOT_OK(dec.GetU64(&oid));
        roots_[name] = Oid(oid);
      }
    }
  }
  open_ = true;
  return Status::OK();
}

Status MMStorageManager::Close() {
  MutexLock lock(&mu_);
  if (!open_) return Status::OK();
  Status st = path_.empty() ? Status::OK() : CheckpointLocked();
  open_ = false;
  return st;
}

MMStorageManager::Workspace* MMStorageManager::FindWorkspace(TxnId txn) {
  auto it = workspaces_.find(txn);
  return it == workspaces_.end() ? nullptr : &it->second;
}

Result<Oid> MMStorageManager::Allocate(TxnId txn, Slice data) {
  MutexLock lock(&mu_);
  Workspace* ws = FindWorkspace(txn);
  if (ws == nullptr) return Status::Internal("mm store: unknown txn");
  Oid oid(next_oid_++);
  Workspace::Entry entry;
  entry.image = data.ToVector();
  ws->entries[oid] = std::move(entry);
  ws->allocated.push_back(oid);
  return oid;
}

Status MMStorageManager::Read(TxnId txn, Oid oid, std::vector<char>* out) {
  LatencyTimer timer(read_latency_);
  MutexLock lock(&mu_);
  object_reads_->Inc();
  if (Workspace* ws = FindWorkspace(txn)) {
    auto it = ws->entries.find(oid);
    if (it != ws->entries.end()) {
      if (it->second.freed) {
        return Status::NotFound("object freed in this transaction");
      }
      *out = it->second.image;
      return Status::OK();
    }
  }
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::NotFound("no object " + oid.ToString());
  }
  *out = it->second;
  return Status::OK();
}

Status MMStorageManager::Write(TxnId txn, Oid oid, Slice data) {
  LatencyTimer timer(write_latency_);
  MutexLock lock(&mu_);
  object_writes_->Inc();
  Workspace* ws = FindWorkspace(txn);
  if (ws == nullptr) return Status::Internal("mm store: unknown txn");
  auto it = ws->entries.find(oid);
  if (it != ws->entries.end()) {
    if (it->second.freed) {
      return Status::NotFound("object freed in this transaction");
    }
    it->second.image = data.ToVector();
    return Status::OK();
  }
  if (objects_.find(oid) == objects_.end()) {
    return Status::NotFound("no object " + oid.ToString());
  }
  Workspace::Entry entry;
  entry.image = data.ToVector();
  ws->entries[oid] = std::move(entry);
  return Status::OK();
}

Status MMStorageManager::Free(TxnId txn, Oid oid) {
  MutexLock lock(&mu_);
  Workspace* ws = FindWorkspace(txn);
  if (ws == nullptr) return Status::Internal("mm store: unknown txn");
  auto it = ws->entries.find(oid);
  if (it != ws->entries.end()) {
    if (it->second.freed) {
      return Status::NotFound("object already freed in this transaction");
    }
    it->second.freed = true;
    it->second.image.clear();
    return Status::OK();
  }
  if (objects_.find(oid) == objects_.end()) {
    return Status::NotFound("no object " + oid.ToString());
  }
  Workspace::Entry entry;
  entry.freed = true;
  ws->entries[oid] = std::move(entry);
  return Status::OK();
}

bool MMStorageManager::Exists(TxnId txn, Oid oid) {
  MutexLock lock(&mu_);
  if (Workspace* ws = FindWorkspace(txn)) {
    auto it = ws->entries.find(oid);
    if (it != ws->entries.end()) return !it->second.freed;
  }
  return objects_.find(oid) != objects_.end();
}

Status MMStorageManager::SetRoot(TxnId txn, const std::string& name,
                                 Oid oid) {
  MutexLock lock(&mu_);
  Workspace* ws = FindWorkspace(txn);
  if (ws == nullptr) return Status::Internal("mm store: unknown txn");
  ws->root_updates[name] = oid;
  return Status::OK();
}

Result<Oid> MMStorageManager::GetRoot(TxnId txn, const std::string& name) {
  MutexLock lock(&mu_);
  if (Workspace* ws = FindWorkspace(txn)) {
    auto it = ws->root_updates.find(name);
    if (it != ws->root_updates.end()) return it->second;
  }
  auto it = roots_.find(name);
  if (it == roots_.end()) return Status::NotFound("no root '" + name + "'");
  return it->second;
}

Status MMStorageManager::BeginTxn(TxnId txn) {
  MutexLock lock(&mu_);
  if (!open_) return Status::Internal("mm store not open");
  auto [it, inserted] = workspaces_.try_emplace(txn);
  (void)it;
  if (!inserted) return Status::Internal("mm store: txn already begun");
  return Status::OK();
}

Status MMStorageManager::CommitTxn(TxnId txn) {
  MutexLock lock(&mu_);
  auto it = workspaces_.find(txn);
  if (it == workspaces_.end()) {
    return Status::Internal("mm store: commit of unknown txn");
  }
  for (auto& [oid, entry] : it->second.entries) {
    if (entry.freed) {
      objects_.erase(oid);
    } else {
      objects_[oid] = std::move(entry.image);
    }
  }
  for (const auto& [name, oid] : it->second.root_updates) {
    if (oid.IsNull()) {
      roots_.erase(name);
    } else {
      roots_[name] = oid;
    }
  }
  workspaces_.erase(it);
  return Status::OK();
}

Status MMStorageManager::AbortTxn(TxnId txn) {
  MutexLock lock(&mu_);
  // Dropping the workspace is the whole rollback — this is what makes
  // trigger-state rollback (paper §5.5) automatic.
  workspaces_.erase(txn);
  return Status::OK();
}

Status MMStorageManager::Checkpoint() {
  MutexLock lock(&mu_);
  if (path_.empty()) return Status::OK();
  return CheckpointLocked();
}

Status MMStorageManager::CheckpointLocked() {
  Encoder enc;
  enc.PutU32(kSnapshotMagic);
  enc.PutU64(next_oid_);
  enc.PutVarint(objects_.size());
  for (const auto& [oid, image] : objects_) {
    enc.PutU64(oid.value());
    enc.PutBytes(image);
  }
  enc.PutVarint(roots_.size());
  for (const auto& [name, oid] : roots_) {
    enc.PutString(name);
    enc.PutU64(oid.value());
  }
  std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IOError("mm store: cannot write " + tmp);
  size_t n = std::fwrite(enc.buffer().data(), 1, enc.size(), f);
  int flush_err = std::fflush(f);
  std::fclose(f);
  if (n != enc.size() || flush_err != 0) {
    return Status::IOError("mm store: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IOError("mm store: rename failed for " + path_);
  }
  return Status::OK();
}

StorageStats MMStorageManager::stats() const {
  MutexLock lock(&mu_);
  StorageStats s;
  s.objects = objects_.size();
  for (const auto& [oid, image] : objects_) {
    (void)oid;
    s.bytes += image.size();
  }
  s.object_reads = object_reads_->value();
  s.object_writes = object_writes_->value();
  return s;
}

}  // namespace ode
