#ifndef ODE_STORAGE_WAL_H_
#define ODE_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "objstore/oid.h"
#include "storage/env.h"

namespace ode {

/// One logical write-ahead-log record. The disk storage manager uses a
/// redo-only discipline (no-steal): a transaction's records are appended
/// and fsynced as a batch ending in kCommit before any page is touched, so
/// recovery only ever redoes committed transactions.
struct WalRecord {
  enum class Type : uint8_t {
    kBegin = 1,
    kCommit = 2,
    kAbort = 3,
    kUpsert = 4,   // oid + image
    kFree = 5,     // oid
    kSetRoot = 6,  // name + oid (null oid = erase)
  };

  Type type = Type::kBegin;
  TxnId txn = kNoTxn;
  Oid oid;
  std::string name;         // kSetRoot only
  std::vector<char> image;  // kUpsert only
};

/// Append-only log file with per-record checksums, routed through an Env
/// so tests can inject faults at every I/O boundary. ReadAll
/// distinguishes a torn tail (benign: the crash interrupted the last
/// append) from mid-file corruption followed by intact records (committed
/// history would be silently lost — reported as kCorruption so the store
/// can refuse to truncate it).
class Wal {
 public:
  /// `env` defaults to Env::Default(); `retry` (not owned, may be null)
  /// wraps appends/syncs in the store's transient-error retry policy.
  explicit Wal(std::string path, Env* env = nullptr,
               const IoRetryPolicy* retry = nullptr);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens for appending, creating the file if absent.
  Status Open();
  Status Close();

  /// Appends one record (buffered; durable only after Sync()).
  Status Append(const WalRecord& record);

  /// Flushes buffered records and fsyncs the file.
  Status Sync();

  /// Reads every intact record from the start of the file into `out`.
  /// A torn/corrupt tail is discarded silently (OK), mirroring crash
  /// recovery. If the broken record is followed by intact records,
  /// returns kCorruption with the intact *prefix* still in `out`, so the
  /// caller can salvage what precedes the damage.
  Status ReadAll(std::vector<WalRecord>* out) const;

  /// Empties the log (after a checkpoint made its contents redundant).
  Status Truncate();

  uint64_t records_appended() const {
    return records_appended_.load(std::memory_order_relaxed);
  }

 private:
  // Lock-rank exemption: the Wal has no mutex of its own. All mutating
  // calls are externally serialized by the disk storage manager's
  // wal_mu_ (rank kStorageWal); records_appended_ below is the only
  // member read off that lock.
  std::string path_;
  Env* env_;
  const IoRetryPolicy* retry_;
  std::unique_ptr<WritableFile> file_;
  // Relaxed: appended under the storage manager's WAL-order lock, but
  // read by stats() off the lock (a monotonic counter — staleness is
  // harmless, no ordering is implied).
  std::atomic<uint64_t> records_appended_{0};
};

}  // namespace ode

#endif  // ODE_STORAGE_WAL_H_
