#include "storage/wal.h"

#include <cstring>

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"

namespace ode {

namespace {

constexpr size_t kFrameHeader = 12;  // u32 length + u64 checksum

/// True if `buf[pos..]` contains a complete, checksum-valid frame whose
/// body starts with a plausible record type. Used to tell a torn tail
/// (nothing intact follows the damage) from mid-file corruption (intact
/// committed records follow it). A false positive — record *image* bytes
/// that happen to frame-decode — only makes recovery more conservative
/// (salvage mode instead of a truncated tail), never less safe.
bool IntactFrameAt(const std::vector<char>& buf, size_t pos) {
  if (pos + kFrameHeader > buf.size()) return false;
  uint32_t len;
  uint64_t checksum;
  std::memcpy(&len, buf.data() + pos, 4);
  std::memcpy(&checksum, buf.data() + pos + 4, 8);
  if (len == 0 || pos + kFrameHeader + len > buf.size()) return false;
  const char* body = buf.data() + pos + kFrameHeader;
  uint8_t type = static_cast<uint8_t>(body[0]);
  if (type < static_cast<uint8_t>(WalRecord::Type::kBegin) ||
      type > static_cast<uint8_t>(WalRecord::Type::kSetRoot)) {
    return false;
  }
  return Hash64(body, len) == checksum;
}

bool AnyIntactFrameAfter(const std::vector<char>& buf, size_t pos) {
  for (size_t c = pos + 1; c + kFrameHeader < buf.size(); ++c) {
    if (IntactFrameAt(buf, c)) return true;
  }
  return false;
}

}  // namespace

Wal::Wal(std::string path, Env* env, const IoRetryPolicy* retry)
    : path_(std::move(path)),
      env_(env != nullptr ? env : Env::Default()),
      retry_(retry) {}

Wal::~Wal() = default;

Status Wal::Open() {
  return RetryIo(retry_, "wal open",
                 [&] { return env_->NewWritableFile(path_, &file_); });
}

Status Wal::Close() {
  if (file_ != nullptr) {
    Status st = Sync();
    Status cst = file_->Close();
    file_.reset();
    return st.ok() ? cst : st;
  }
  return Status::OK();
}

Status Wal::Append(const WalRecord& record) {
  if (file_ == nullptr) return Status::Internal("wal not open");
  Encoder body;
  body.PutU8(static_cast<uint8_t>(record.type));
  body.PutU64(record.txn);
  body.PutU64(record.oid.value());
  body.PutString(record.name);
  body.PutBytes(record.image);

  Encoder framed;
  framed.PutU32(static_cast<uint32_t>(body.size()));
  framed.PutU64(Hash64(body.buffer().data(), body.size()));
  framed.PutRaw(body.buffer().data(), body.size());
  ODE_RETURN_NOT_OK(RetryIo(retry_, "wal append", [&] {
    return file_->Append(Slice(framed.buffer().data(), framed.size()));
  }));
  records_appended_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Wal::Sync() {
  if (file_ == nullptr) return Status::Internal("wal not open");
  return RetryIo(retry_, "wal sync", [&] { return file_->Sync(); });
}

Status Wal::ReadAll(std::vector<WalRecord>* out) const {
  out->clear();
  std::string data;
  Status rst = env_->ReadFileToString(path_, &data);
  if (rst.IsNotFound()) return Status::OK();  // no log yet
  ODE_RETURN_NOT_OK(rst);
  std::vector<char> buf(data.begin(), data.end());

  size_t pos = 0;
  while (pos + kFrameHeader <= buf.size()) {
    uint32_t len;
    uint64_t checksum;
    std::memcpy(&len, buf.data() + pos, 4);
    std::memcpy(&checksum, buf.data() + pos + 4, 8);
    bool broken = pos + kFrameHeader + len > buf.size();  // torn frame
    const char* body = buf.data() + pos + kFrameHeader;
    if (!broken && Hash64(body, len) != checksum) broken = true;
    WalRecord rec;
    if (!broken) {
      Decoder dec(Slice(body, len));
      uint8_t type;
      uint64_t txn, oid;
      if (dec.GetU8(&type).ok() && dec.GetU64(&txn).ok() &&
          dec.GetU64(&oid).ok() && dec.GetString(&rec.name).ok() &&
          dec.GetBytes(&rec.image).ok()) {
        rec.type = static_cast<WalRecord::Type>(type);
        rec.txn = txn;
        rec.oid = Oid(oid);
      } else {
        broken = true;
      }
    }
    if (broken) {
      if (AnyIntactFrameAfter(buf, pos)) {
        return Status::Corruption(
            "wal: corrupt record at offset " + std::to_string(pos) +
            " is followed by intact records; refusing to discard "
            "committed history (" + path_ + ")");
      }
      break;  // torn tail: the crash interrupted the last append
    }
    out->push_back(std::move(rec));
    pos += kFrameHeader + len;
  }
  return Status::OK();
}

Status Wal::Truncate() {
  if (file_ != nullptr) {
    Status cst = file_->Close();
    file_.reset();
    if (!cst.ok()) {
      ODE_LOG(kWarn) << "wal: close before truncate failed: "
                     << cst.ToString();
    }
  }
  ODE_RETURN_NOT_OK(RetryIo(
      retry_, "wal truncate", [&] { return env_->TruncateFile(path_, 0); }));
  return Open();
}

}  // namespace ode
