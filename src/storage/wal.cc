#include "storage/wal.h"

#include <unistd.h>

#include "common/coding.h"
#include "common/hash.h"
#include "common/logging.h"

namespace ode {

Wal::Wal(std::string path) : path_(std::move(path)) {}

Wal::~Wal() {
  if (file_ != nullptr) std::fclose(file_);
}

Status Wal::Open() {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("wal: cannot open " + path_);
  }
  return Status::OK();
}

Status Wal::Close() {
  if (file_ != nullptr) {
    Status st = Sync();
    std::fclose(file_);
    file_ = nullptr;
    return st;
  }
  return Status::OK();
}

Status Wal::Append(const WalRecord& record) {
  if (file_ == nullptr) return Status::Internal("wal not open");
  Encoder body;
  body.PutU8(static_cast<uint8_t>(record.type));
  body.PutU64(record.txn);
  body.PutU64(record.oid.value());
  body.PutString(record.name);
  body.PutBytes(record.image);

  Encoder framed;
  framed.PutU32(static_cast<uint32_t>(body.size()));
  framed.PutU64(Hash64(body.buffer().data(), body.size()));
  framed.PutRaw(body.buffer().data(), body.size());
  size_t n = std::fwrite(framed.buffer().data(), 1, framed.size(), file_);
  if (n != framed.size()) return Status::IOError("wal: short append");
  ++records_appended_;
  return Status::OK();
}

Status Wal::Sync() {
  if (file_ == nullptr) return Status::Internal("wal not open");
  if (std::fflush(file_) != 0) return Status::IOError("wal: fflush failed");
  if (fsync(fileno(file_)) != 0) return Status::IOError("wal: fsync failed");
  return Status::OK();
}

Status Wal::ReadAll(std::vector<WalRecord>* out) const {
  out->clear();
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return Status::OK();  // no log yet
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> buf(static_cast<size_t>(size));
  size_t nread = size > 0 ? std::fread(buf.data(), 1, buf.size(), f) : 0;
  std::fclose(f);
  if (nread != buf.size()) return Status::IOError("wal: read failed");

  size_t pos = 0;
  while (pos + 12 <= buf.size()) {
    Decoder frame(Slice(buf.data() + pos, buf.size() - pos));
    uint32_t len;
    uint64_t checksum;
    if (!frame.GetU32(&len).ok() || !frame.GetU64(&checksum).ok()) break;
    if (pos + 12 + len > buf.size()) break;  // torn tail
    const char* body = buf.data() + pos + 12;
    if (Hash64(body, len) != checksum) break;  // corrupt tail
    Decoder dec(Slice(body, len));
    WalRecord rec;
    uint8_t type;
    uint64_t txn, oid;
    if (!dec.GetU8(&type).ok() || !dec.GetU64(&txn).ok() ||
        !dec.GetU64(&oid).ok() || !dec.GetString(&rec.name).ok() ||
        !dec.GetBytes(&rec.image).ok()) {
      break;
    }
    rec.type = static_cast<WalRecord::Type>(type);
    rec.txn = txn;
    rec.oid = Oid(oid);
    out->push_back(std::move(rec));
    pos += 12 + len;
  }
  return Status::OK();
}

Status Wal::Truncate() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) return Status::IOError("wal: truncate failed");
  std::fclose(f);
  return Open();
}

}  // namespace ode
