#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"

namespace ode {

namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

class PosixWritableFile final : public WritableFile {
 public:
  explicit PosixWritableFile(std::FILE* file) : file_(file) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(Slice data) override {
    if (file_ == nullptr) return Status::Internal("file closed");
    size_t n = std::fwrite(data.data(), 1, data.size(), file_);
    if (n != data.size()) {
      return Status::IOError(ErrnoMessage("short append"));
    }
    return Status::OK();
  }

  Status Flush() override {
    if (file_ == nullptr) return Status::Internal("file closed");
    if (std::fflush(file_) != 0) {
      return Status::IOError(ErrnoMessage("fflush failed"));
    }
    return Status::OK();
  }

  Status Sync() override {
    ODE_RETURN_NOT_OK(Flush());
    if (fsync(fileno(file_)) != 0) {
      return Status::IOError(ErrnoMessage("fsync failed"));
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) return Status::IOError(ErrnoMessage("fclose failed"));
    return Status::OK();
  }

 private:
  std::FILE* file_;
};

class PosixRandomRWFile final : public RandomRWFile {
 public:
  explicit PosixRandomRWFile(int fd) : fd_(fd) {}

  ~PosixRandomRWFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status ReadAt(uint64_t offset, size_t n, char* scratch) override {
    if (fd_ < 0) return Status::Internal("file closed");
    // pread may legally return short (page cache pressure, NFS, signals);
    // a short transfer is resumed where it stopped and EINTR is retried —
    // neither is an I/O error. Only got == 0 before `n` bytes (true EOF)
    // and real errno failures surface.
    size_t done = 0;
    while (done < n) {
      ssize_t got = pread(fd_, scratch + done, n - done,
                          static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pread at offset " +
                                            std::to_string(offset + done)));
      }
      if (got == 0) {
        return Status::IOError("short pread at offset " +
                               std::to_string(offset + done) +
                               " (unexpected EOF)");
      }
      done += static_cast<size_t>(got);
    }
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, Slice data) override {
    if (fd_ < 0) return Status::Internal("file closed");
    size_t done = 0;
    while (done < data.size()) {
      ssize_t put = pwrite(fd_, data.data() + done, data.size() - done,
                           static_cast<off_t>(offset + done));
      if (put < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pwrite at offset " +
                                            std::to_string(offset + done)));
      }
      done += static_cast<size_t>(put);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::Internal("file closed");
    if (fsync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fsync failed"));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Status::IOError(ErrnoMessage("close failed"));
    return Status::OK();
  }

  Result<uint64_t> Size() const override {
    if (fd_ < 0) return Status::Internal("file closed");
    struct stat st;
    if (fstat(fd_, &st) != 0) {
      return Status::IOError(ErrnoMessage("fstat failed"));
    }
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    if (f == nullptr) {
      return Status::IOError(ErrnoMessage("cannot open " + path));
    }
    *out = std::make_unique<PosixWritableFile>(f);
    return Status::OK();
  }

  Status NewRandomRWFile(const std::string& path,
                         std::unique_ptr<RandomRWFile>* out) override {
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open " + path));
    }
    *out = std::make_unique<PosixRandomRWFile>(fd);
    return Status::OK();
  }

  Status ReadFileToString(const std::string& path,
                          std::string* out) override {
    out->clear();
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::NotFound("no such file: " + path);
    }
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size > 0) {
      out->resize(static_cast<size_t>(size));
      size_t got = std::fread(out->data(), 1, out->size(), f);
      if (got != out->size()) {
        std::fclose(f);
        return Status::IOError("short read of " + path);
      }
    }
    std::fclose(f);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError(
          ErrnoMessage("rename " + from + " -> " + to + " failed"));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Status::IOError(ErrnoMessage("remove " + path + " failed"));
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Status::IOError(ErrnoMessage("truncate " + path + " failed"));
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Status::IOError(ErrnoMessage("stat " + path + " failed"));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  void SleepMicros(uint64_t micros) override {
    if (micros > 0) ::usleep(static_cast<useconds_t>(micros));
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // never destroyed
  return env;
}

Status RetryIo(const IoRetryPolicy* policy, const char* what,
               const std::function<Status()>& op) {
  Status st = op();
  if (st.ok() || policy == nullptr || policy->attempts == 0 ||
      st.code() != StatusCode::kIOError) {
    return st;
  }
  uint64_t backoff = policy->backoff_us;
  for (uint32_t attempt = 0; attempt < policy->attempts; ++attempt) {
    if (policy->retries != nullptr) policy->retries->Inc();
    if (policy->env != nullptr) policy->env->SleepMicros(backoff);
    backoff *= 2;
    st = op();
    if (st.ok() || st.code() != StatusCode::kIOError) return st;
  }
  if (policy->exhausted != nullptr) policy->exhausted->Inc();
  ODE_LOG(kWarn) << "I/O retries exhausted for " << what << " after "
                 << policy->attempts << " attempt(s): " << st.ToString();
  return st;
}

}  // namespace ode
