#include "storage/disk_storage_manager.h"

#include <chrono>
#include <cstring>

#include "common/coding.h"
#include "common/logging.h"

namespace ode {

namespace {

constexpr uint32_t kFileMagic = 0x0de0e0e5;  // "Ode over EOS"
constexpr uint64_t kRootsOid = 1;
constexpr uint16_t kOverflowMarker = 0xffff;  // in a page's slot-count field

// Record payload prefix written by the storage manager.
constexpr char kInlineFlag = 0;
constexpr char kOverflowFlag = 1;

// Overflow page layout offsets (see disk_storage_manager.h).
constexpr size_t kOvfNextOff = 8;
constexpr size_t kOvfLenOff = 12;
constexpr size_t kOvfDataOff = 16;
constexpr size_t kOvfCapacity = kPageSize - kOvfDataOff;

Status ReadPageFrom(RandomRWFile* file, const IoRetryPolicy* retry,
                    uint32_t page_id, char* buf) {
  return RetryIo(retry, "page read", [&] {
    return file->ReadAt(static_cast<uint64_t>(page_id) * kPageSize, kPageSize,
                        buf);
  });
}

Status WritePageTo(RandomRWFile* file, const IoRetryPolicy* retry,
                   uint32_t page_id, const char* buf) {
  return RetryIo(retry, "page write", [&] {
    return file->WriteAt(static_cast<uint64_t>(page_id) * kPageSize,
                         Slice(buf, kPageSize));
  });
}

}  // namespace

// ---------------------------------------------------------------- BufferPool

BufferPool::BufferPool(RandomRWFile* file, size_t capacity,
                       const IoRetryPolicy* retry)
    : file_(file), capacity_(capacity == 0 ? 1 : capacity), retry_(retry) {}

BufferPool::Frame* BufferPool::Touch(uint32_t page_id) {
  auto it = index_.find(page_id);
  if (it == index_.end()) return nullptr;
  frames_.splice(frames_.begin(), frames_, it->second);
  index_[page_id] = frames_.begin();
  return &frames_.front();
}

Status BufferPool::WriteFrame(const Frame& frame) {
  writes_.fetch_add(1, std::memory_order_relaxed);
  return WritePageTo(file_, retry_, frame.page_id, frame.page.data());
}

Status BufferPool::EvictIfFull() {
  while (frames_.size() >= capacity_) {
    Frame& victim = frames_.back();
    if (victim.dirty) {
      ODE_RETURN_NOT_OK(WriteFrame(victim));
    }
    index_.erase(victim.page_id);
    frames_.pop_back();
  }
  return Status::OK();
}

Status BufferPool::Get(uint32_t page_id, Page** out) {
  if (Frame* f = Touch(page_id)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    *out = &f->page;
    return Status::OK();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  ODE_RETURN_NOT_OK(EvictIfFull());
  Frame frame;
  frame.page_id = page_id;
  reads_.fetch_add(1, std::memory_order_relaxed);
  ODE_RETURN_NOT_OK(
      ReadPageFrom(file_, retry_, page_id, frame.page.mutable_data()));
  frames_.push_front(std::move(frame));
  index_[page_id] = frames_.begin();
  *out = &frames_.front().page;
  return Status::OK();
}

Status BufferPool::Create(uint32_t page_id, Page** out) {
  if (Frame* f = Touch(page_id)) {
    f->page.Format(page_id);
    f->dirty = true;
    *out = &f->page;
    return Status::OK();
  }
  ODE_RETURN_NOT_OK(EvictIfFull());
  Frame frame;
  frame.page_id = page_id;
  frame.page.Format(page_id);
  frame.dirty = true;
  frames_.push_front(std::move(frame));
  index_[page_id] = frames_.begin();
  *out = &frames_.front().page;
  return Status::OK();
}

void BufferPool::MarkDirty(uint32_t page_id) {
  if (Frame* f = Touch(page_id)) f->dirty = true;
}

void BufferPool::Discard(uint32_t page_id) {
  auto it = index_.find(page_id);
  if (it == index_.end()) return;
  frames_.erase(it->second);
  index_.erase(it);
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.dirty) {
      ODE_RETURN_NOT_OK(WriteFrame(f));
      f.dirty = false;
    }
  }
  return Status::OK();
}

// ------------------------------------------------------- DiskStorageManager

DiskStorageManager::DiskStorageManager(std::string path, Options options)
    : path_(std::move(path)), options_(options) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  retry_policy_.env = env_;
  retry_policy_.attempts = options_.io_retry_attempts;
  retry_policy_.backoff_us = options_.io_retry_backoff_us;
  owned_metrics_ = std::make_unique<MetricsRegistry>();
  BindMetrics(owned_metrics_.get());
}

void DiskStorageManager::BindMetrics(MetricsRegistry* registry) {
  object_reads_ = registry->GetCounter("ode_storage_object_reads_total");
  object_writes_ = registry->GetCounter("ode_storage_object_writes_total");
  wal_records_ = registry->GetCounter("ode_wal_records_total");
  salvage_gauge_ = registry->GetGauge("ode_wal_salvage_mode");
  read_latency_ = registry->GetHistogram("ode_storage_read_latency_ns");
  write_latency_ = registry->GetHistogram("ode_storage_write_latency_ns");
  wal_append_latency_ = registry->GetHistogram("ode_wal_append_latency_ns");
  wal_fsync_latency_ = registry->GetHistogram("ode_wal_fsync_latency_ns");
  batch_size_hist_ = registry->GetHistogram("ode_group_commit_batch_size");
  leader_wait_latency_ =
      registry->GetHistogram("ode_commit_leader_wait_latency_ns");
  commit_fsyncs_ = registry->GetCounter("ode_commit_fsyncs_total");
  commit_fsyncs_saved_ =
      registry->GetCounter("ode_commit_fsyncs_saved_total");
  // Updated in place: the Wal and BufferPool hold &retry_policy_, so a
  // registry rebind (Database adoption) reaches them without a reopen.
  retry_policy_.retries = registry->GetCounter("ode_io_retries_total");
  retry_policy_.exhausted = registry->GetCounter("ode_io_retry_exhausted_total");
  env_->BindMetrics(registry);
}

void DiskStorageManager::BindTracer(Tracer* tracer) {
  tracer_ = tracer;
  // Open() ran before the Database could wire the tracer; if it left the
  // store in salvage mode, the flight recorder still owes its dump.
  if (tracer_ != nullptr && salvage_.load(std::memory_order_acquire)) {
    DumpFlightRecorder("wal-salvage: mid-file WAL corruption at open");
  }
}

void DiskStorageManager::DumpFlightRecorder(const std::string& reason) {
  if (tracer_ == nullptr) return;
  const std::string path = path_ + ".flight.json";
  if (tracer_->DumpToFile(path, reason)) {
    ODE_LOG(kError) << "disk store: flight recorder dumped to " << path
                    << " (" << reason << ")";
  } else {
    ODE_LOG(kError) << "disk store: flight recorder dump to " << path
                    << " failed";
  }
}

DiskStorageManager::~DiskStorageManager() {
  if (open_) {
    Status st = Close();
    if (!st.ok()) {
      ODE_LOG(kError) << "disk store close failed: " << st.ToString();
    }
  }
  // The env outlives this manager, but the registry BindMetrics pointed
  // it at does not.
  env_->BindMetrics(nullptr);
}

Status DiskStorageManager::ReadPage(uint32_t page_id, char* buf) {
  return ReadPageFrom(file_.get(), &retry_policy_, page_id, buf);
}

Status DiskStorageManager::WritePage(uint32_t page_id, const char* buf) {
  return WritePageTo(file_.get(), &retry_policy_, page_id, buf);
}

Status DiskStorageManager::Open() {
  // Nothing else can be running (open_ is false), but take the full
  // exclusive stack anyway so a misuse shows up as a deadlock in tests
  // rather than a silent race.
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  std::unique_lock<std::shared_mutex> state(state_mu_);
  std::lock_guard<std::mutex> ws_lock(ws_mu_);
  if (open_) return Status::Internal("disk store already open");
  if (!options_.sync_commits) {
    ODE_LOG(kWarn) << "disk store " << path_
                   << " opened with sync_commits=false: commits are NOT "
                      "durable across crashes (benchmarks only)";
  }
  ODE_RETURN_NOT_OK(RetryIo(&retry_policy_, "data file open", [&] {
    return env_->NewRandomRWFile(path_, &file_);
  }));

  ODE_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  pool_ = std::make_unique<BufferPool>(file_.get(),
                                       options_.buffer_pool_pages,
                                       &retry_policy_);
  wal_ = std::make_unique<Wal>(path_ + ".wal", env_, &retry_policy_);

  index_.clear();
  space_map_.clear();
  free_pages_.clear();
  roots_.clear();
  workspaces_.clear();
  next_oid_ = 2;
  page_count_ = 1;
  wedged_ = false;
  salvage_ = false;

  if (size == 0) {
    ODE_RETURN_NOT_OK(WriteHeader());
  } else {
    char header[kPageSize];
    ODE_RETURN_NOT_OK(ReadPage(0, header));
    uint32_t magic;
    std::memcpy(&magic, header, 4);
    if (magic != kFileMagic) {
      return Status::Corruption("bad file magic in " + path_);
    }
    std::memcpy(&page_count_, header + 4, 4);
    uint64_t stored_next_oid;
    std::memcpy(&stored_next_oid, header + 8, 8);
    next_oid_.store(stored_next_oid, std::memory_order_relaxed);
    ODE_RETURN_NOT_OK(ScanAndRebuild());
  }
  // Load the roots directory (object with reserved oid 1) before WAL
  // replay, so replayed kSetRoot records layer on top of it.
  std::vector<char> image;
  Status st = ReadCommitted(Oid(kRootsOid), &image);
  if (st.ok()) {
    Decoder dec(image);
    uint64_t n;
    ODE_RETURN_NOT_OK(dec.GetVarint(&n));
    for (uint64_t i = 0; i < n; ++i) {
      std::string name;
      uint64_t oid;
      ODE_RETURN_NOT_OK(dec.GetString(&name));
      ODE_RETURN_NOT_OK(dec.GetU64(&oid));
      roots_[name] = Oid(oid);
    }
  } else if (!st.IsNotFound()) {
    return st;
  }

  ODE_RETURN_NOT_OK(wal_->Open());
  ODE_RETURN_NOT_OK(ReplayWal());

  open_ = true;
  if (salvage_) {
    salvage_gauge_->Set(1);
    ODE_LOG(kError) << "disk store " << path_
                    << " opened in READ-ONLY salvage mode: the WAL is "
                       "corrupt mid-file; the intact prefix was replayed "
                       "and the log is preserved for repair";
    return Status::OK();
  }
  salvage_gauge_->Set(0);
  // Make recovery results durable and shorten the next recovery.
  return CheckpointLocked();
}

Status DiskStorageManager::Close() {
  std::unique_lock<std::mutex> commit_lock(commit_mu_);
  if (!open_) return Status::OK();
  // Let in-flight batches finish applying before we take the state lock
  // and truncate the WAL they are recorded in.
  DrainCommitPipelineLocked();
  std::unique_lock<std::shared_mutex> state(state_mu_);
  Status st = Status::OK();
  if (!wedged_ && !salvage_) {
    st = CheckpointLocked();
  }
  // A wedged or salvaged store must NOT checkpoint: the WAL is the only
  // trustworthy copy of recent history and truncating it would lose it.
  Status wst = wal_ != nullptr ? wal_->Close() : Status::OK();
  if (file_ != nullptr) {
    Status fst = file_->Close();
    if (st.ok() && wst.ok()) wst = fst;
  }
  file_.reset();
  open_ = false;
  return st.ok() ? wst : st;
}

Status DiskStorageManager::CheckWritable() const {
  if (!open_.load(std::memory_order_acquire)) {
    return Status::Internal("disk store not open");
  }
  if (wedged_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "disk store wedged by a mid-commit I/O failure; reopen to recover");
  }
  if (salvage_.load(std::memory_order_acquire)) {
    return Status::Corruption(
        "disk store is in read-only WAL-salvage mode (corrupt log " +
        path_ + ".wal)");
  }
  return Status::OK();
}

Status DiskStorageManager::ScanAndRebuild() {
  uint64_t max_oid = 1;
  for (uint32_t p = 1; p < page_count_; ++p) {
    char buf[kPageSize];
    ODE_RETURN_NOT_OK(ReadPage(p, buf));
    uint16_t slot_count;
    std::memcpy(&slot_count, buf + 4, 2);
    if (slot_count == kOverflowMarker) continue;  // overflow page, in use
    Page page;
    page.Load(buf);
    bool any = false;
    page.ForEach([&](uint16_t slot, uint64_t oid, Slice) {
      index_[oid] = Loc{p, slot};
      if (oid > max_oid) max_oid = oid;
      any = true;
    });
    if (any) {
      space_map_[p] = page.FreeSpaceForInsert();
    } else {
      free_pages_.push_back(p);
    }
  }
  if (max_oid + 1 > next_oid_) next_oid_ = max_oid + 1;
  return Status::OK();
}

Status DiskStorageManager::ReplayWal() {
  std::vector<WalRecord> records;
  Status read_status = wal_->ReadAll(&records);
  if (read_status.code() == StatusCode::kCorruption) {
    // Mid-file damage with intact records beyond it: replay the intact
    // prefix below, then serve it read-only (salvage mode). Truncating
    // the log here would silently drop committed transactions.
    salvage_ = true;
  } else if (!read_status.ok()) {
    return read_status;
  }
  // Pass 1: which transactions committed?
  std::unordered_map<TxnId, bool> committed;
  for (const WalRecord& r : records) {
    if (r.type == WalRecord::Type::kCommit) committed[r.txn] = true;
  }
  // Pass 2: redo committed operations in log order (idempotent).
  bool roots_changed = false;
  for (const WalRecord& r : records) {
    if (!committed.count(r.txn)) continue;
    switch (r.type) {
      case WalRecord::Type::kUpsert: {
        ODE_RETURN_NOT_OK(ApplyUpsert(r.oid, Slice(r.image)));
        if (r.oid.value() >= next_oid_) next_oid_ = r.oid.value() + 1;
        break;
      }
      case WalRecord::Type::kFree: {
        Status st = ApplyFree(r.oid);
        if (!st.ok() && !st.IsNotFound()) return st;
        break;
      }
      case WalRecord::Type::kSetRoot: {
        if (r.oid.IsNull()) {
          roots_.erase(r.name);
        } else {
          roots_[r.name] = r.oid;
        }
        roots_changed = true;
        break;
      }
      default:
        break;
    }
  }
  // Replayed root updates must also reach the persistent roots object,
  // because Open() checkpoints (truncating the WAL) right after this.
  if (roots_changed) {
    ODE_RETURN_NOT_OK(ApplyRoots());
  }
  return Status::OK();
}

Status DiskStorageManager::WriteHeader() {
  char buf[kPageSize];
  std::memset(buf, 0, sizeof(buf));
  std::memcpy(buf, &kFileMagic, 4);
  std::memcpy(buf + 4, &page_count_, 4);
  const uint64_t next_oid = next_oid_.load(std::memory_order_relaxed);
  std::memcpy(buf + 8, &next_oid, 8);
  return WritePage(0, buf);
}

uint32_t DiskStorageManager::AllocPage() {
  if (!free_pages_.empty()) {
    uint32_t p = free_pages_.back();
    free_pages_.pop_back();
    return p;
  }
  return page_count_++;
}

void DiskStorageManager::ReleasePage(uint32_t page_id) {
  space_map_.erase(page_id);
  pool_->Discard(page_id);
  // Rewrite as a formatted empty page so a rebuild scan sees it as free.
  Page empty;
  empty.Format(page_id);
  Page* frame;
  Status st = pool_->Create(page_id, &frame);
  if (!st.ok()) {
    ODE_LOG(kError) << "release page failed: " << st.ToString();
    return;
  }
  free_pages_.push_back(page_id);
}

// --------------------------------------------------------- overflow chains

Status DiskStorageManager::WriteOverflowChain(Slice image,
                                              uint32_t* first_page) {
  size_t remaining = image.size();
  size_t offset = 0;
  uint32_t prev = 0;
  *first_page = 0;
  while (remaining > 0 || offset == 0) {
    uint32_t page_id = AllocPage();
    Page* page;
    ODE_RETURN_NOT_OK(pool_->Create(page_id, &page));
    char* d = page->mutable_data();
    uint16_t marker = kOverflowMarker;
    std::memcpy(d + 4, &marker, 2);
    uint32_t chunk = static_cast<uint32_t>(
        remaining < kOvfCapacity ? remaining : kOvfCapacity);
    uint32_t zero = 0;
    std::memcpy(d + kOvfNextOff, &zero, 4);
    std::memcpy(d + kOvfLenOff, &chunk, 4);
    if (chunk > 0) {
      std::memcpy(d + kOvfDataOff, image.data() + offset, chunk);
    }
    pool_->MarkDirty(page_id);
    if (prev == 0) {
      *first_page = page_id;
    } else {
      Page* prev_page;
      ODE_RETURN_NOT_OK(pool_->Get(prev, &prev_page));
      std::memcpy(prev_page->mutable_data() + kOvfNextOff, &page_id, 4);
      pool_->MarkDirty(prev);
    }
    prev = page_id;
    offset += chunk;
    remaining -= chunk;
    if (remaining == 0) break;
  }
  return Status::OK();
}

Status DiskStorageManager::ReadOverflowChain(uint32_t first_page,
                                             uint64_t total_len,
                                             std::vector<char>* out) {
  out->clear();
  out->reserve(total_len);
  uint32_t page_id = first_page;
  while (page_id != 0) {
    Page* page;
    ODE_RETURN_NOT_OK(pool_->Get(page_id, &page));
    const char* d = page->data();
    uint32_t next, len;
    std::memcpy(&next, d + kOvfNextOff, 4);
    std::memcpy(&len, d + kOvfLenOff, 4);
    out->insert(out->end(), d + kOvfDataOff, d + kOvfDataOff + len);
    page_id = next;
  }
  if (out->size() != total_len) {
    return Status::Corruption("overflow chain length mismatch");
  }
  return Status::OK();
}

Status DiskStorageManager::FreeOverflowChain(uint32_t first_page) {
  uint32_t page_id = first_page;
  while (page_id != 0) {
    Page* page;
    ODE_RETURN_NOT_OK(pool_->Get(page_id, &page));
    uint32_t next;
    std::memcpy(&next, page->data() + kOvfNextOff, 4);
    ReleasePage(page_id);
    page_id = next;
  }
  return Status::OK();
}

// -------------------------------------------------- committed-state access

Status DiskStorageManager::ReadCommitted(Oid oid, std::vector<char>* out) {
  auto it = index_.find(oid.value());
  if (it == index_.end()) {
    return Status::NotFound("no object " + oid.ToString());
  }
  Page* page;
  ODE_RETURN_NOT_OK(pool_->Get(it->second.page, &page));
  uint64_t stored_oid;
  std::vector<char> payload;
  ODE_RETURN_NOT_OK(page->Read(it->second.slot, &stored_oid, &payload));
  if (stored_oid != oid.value()) {
    return Status::Corruption("slot oid mismatch for " + oid.ToString());
  }
  if (payload.empty()) return Status::Corruption("empty record payload");
  if (payload[0] == kInlineFlag) {
    out->assign(payload.begin() + 1, payload.end());
    return Status::OK();
  }
  Decoder dec(Slice(payload.data() + 1, payload.size() - 1));
  uint32_t first_page;
  uint64_t total_len;
  ODE_RETURN_NOT_OK(dec.GetU32(&first_page));
  ODE_RETURN_NOT_OK(dec.GetU64(&total_len));
  return ReadOverflowChain(first_page, total_len, out);
}

Status DiskStorageManager::InsertRecord(Oid oid, Slice image) {
  std::vector<char> payload;
  if (image.size() <= options_.inline_limit) {
    payload.reserve(image.size() + 1);
    payload.push_back(kInlineFlag);
    payload.insert(payload.end(), image.data(), image.data() + image.size());
  } else {
    uint32_t first_page;
    ODE_RETURN_NOT_OK(WriteOverflowChain(image, &first_page));
    Encoder enc;
    enc.PutU8(static_cast<uint8_t>(kOverflowFlag));
    enc.PutU32(first_page);
    enc.PutU64(image.size());
    payload = enc.Release();
  }

  // First fit over pages with known free space.
  for (auto& [page_id, free] : space_map_) {
    if (free < payload.size() + 16) continue;
    Page* page;
    ODE_RETURN_NOT_OK(pool_->Get(page_id, &page));
    auto slot = page->Insert(oid.value(), Slice(payload));
    if (slot.ok()) {
      pool_->MarkDirty(page_id);
      index_[oid.value()] = Loc{page_id, slot.value()};
      free = page->FreeSpaceForInsert();
      return Status::OK();
    }
  }
  // No page fits: take a fresh one.
  uint32_t page_id = AllocPage();
  Page* page;
  ODE_RETURN_NOT_OK(pool_->Create(page_id, &page));
  ODE_ASSIGN_OR_RETURN(uint16_t slot, page->Insert(oid.value(), Slice(payload)));
  pool_->MarkDirty(page_id);
  index_[oid.value()] = Loc{page_id, slot};
  space_map_[page_id] = page->FreeSpaceForInsert();
  return Status::OK();
}

Status DiskStorageManager::ApplyUpsert(Oid oid, Slice image) {
  auto it = index_.find(oid.value());
  if (it == index_.end()) {
    return InsertRecord(oid, image);
  }
  Loc loc = it->second;
  Page* page;
  ODE_RETURN_NOT_OK(pool_->Get(loc.page, &page));
  uint64_t stored_oid;
  std::vector<char> old_payload;
  ODE_RETURN_NOT_OK(page->Read(loc.slot, &stored_oid, &old_payload));
  if (!old_payload.empty() && old_payload[0] == kOverflowFlag) {
    Decoder dec(Slice(old_payload.data() + 1, old_payload.size() - 1));
    uint32_t first_page;
    uint64_t total_len;
    ODE_RETURN_NOT_OK(dec.GetU32(&first_page));
    ODE_RETURN_NOT_OK(dec.GetU64(&total_len));
    ODE_RETURN_NOT_OK(FreeOverflowChain(first_page));
    // The slot may have moved pages if FreeOverflowChain touched loc.page?
    // It cannot: overflow pages are distinct from slotted pages.
    ODE_RETURN_NOT_OK(pool_->Get(loc.page, &page));
  }
  if (image.size() <= options_.inline_limit) {
    std::vector<char> payload;
    payload.reserve(image.size() + 1);
    payload.push_back(kInlineFlag);
    payload.insert(payload.end(), image.data(), image.data() + image.size());
    Status st = page->Update(loc.slot, Slice(payload));
    if (st.ok()) {
      pool_->MarkDirty(loc.page);
      space_map_[loc.page] = page->FreeSpaceForInsert();
      return Status::OK();
    }
    if (st.code() != StatusCode::kNotSupported) return st;
    // Did not fit: the slot is gone (see Page::Update contract); relocate.
    pool_->MarkDirty(loc.page);
    space_map_[loc.page] = page->FreeSpaceForInsert();
    index_.erase(oid.value());
    return InsertRecord(oid, image);
  }
  // New image goes to overflow: replace the record wholesale.
  ODE_RETURN_NOT_OK(page->Delete(loc.slot));
  pool_->MarkDirty(loc.page);
  space_map_[loc.page] = page->FreeSpaceForInsert();
  index_.erase(oid.value());
  return InsertRecord(oid, image);
}

Status DiskStorageManager::ApplyFree(Oid oid) {
  auto it = index_.find(oid.value());
  if (it == index_.end()) {
    return Status::NotFound("no object " + oid.ToString());
  }
  Loc loc = it->second;
  Page* page;
  ODE_RETURN_NOT_OK(pool_->Get(loc.page, &page));
  uint64_t stored_oid;
  std::vector<char> payload;
  ODE_RETURN_NOT_OK(page->Read(loc.slot, &stored_oid, &payload));
  if (!payload.empty() && payload[0] == kOverflowFlag) {
    Decoder dec(Slice(payload.data() + 1, payload.size() - 1));
    uint32_t first_page;
    uint64_t total_len;
    ODE_RETURN_NOT_OK(dec.GetU32(&first_page));
    ODE_RETURN_NOT_OK(dec.GetU64(&total_len));
    ODE_RETURN_NOT_OK(FreeOverflowChain(first_page));
    ODE_RETURN_NOT_OK(pool_->Get(loc.page, &page));
  }
  ODE_RETURN_NOT_OK(page->Delete(loc.slot));
  pool_->MarkDirty(loc.page);
  index_.erase(oid.value());
  space_map_[loc.page] = page->FreeSpaceForInsert();
  return Status::OK();
}

Status DiskStorageManager::ApplyRoots() {
  Encoder enc;
  enc.PutVarint(roots_.size());
  for (const auto& [name, oid] : roots_) {
    enc.PutString(name);
    enc.PutU64(oid.value());
  }
  return ApplyUpsert(Oid(kRootsOid), Slice(enc.buffer()));
}

// ----------------------------------------------------------- public methods

DiskStorageManager::Workspace* DiskStorageManager::FindWorkspace(TxnId txn) {
  std::lock_guard<std::mutex> lock(ws_mu_);
  auto it = workspaces_.find(txn);
  // Stable across other transactions' begin/commit: unordered_map never
  // invalidates pointers to other nodes.
  return it == workspaces_.end() ? nullptr : &it->second;
}

Result<Oid> DiskStorageManager::Allocate(TxnId txn, Slice data) {
  ODE_RETURN_NOT_OK(CheckWritable());
  Workspace* ws = FindWorkspace(txn);
  if (ws == nullptr) return Status::Internal("disk store: unknown txn");
  Oid oid(next_oid_.fetch_add(1, std::memory_order_relaxed));
  Workspace::Entry entry;
  entry.image = data.ToVector();
  ws->entries[oid] = std::move(entry);
  ws->allocated.push_back(oid);
  return oid;
}

Status DiskStorageManager::Read(TxnId txn, Oid oid, std::vector<char>* out) {
  LatencyTimer timer(read_latency_);
  if (wedged_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "disk store wedged by a mid-commit I/O failure; reopen to recover");
  }
  object_reads_->Inc();
  if (Workspace* ws = FindWorkspace(txn)) {
    auto it = ws->entries.find(oid);
    if (it != ws->entries.end()) {
      if (it->second.freed) {
        return Status::NotFound("object freed in this transaction");
      }
      *out = it->second.image;
      return Status::OK();
    }
  }
  // Fast lane: committed reads share state_mu_, so they only ever wait
  // for page application — never for a WAL fsync. pool_mu_ serializes
  // the buffer pool's LRU bookkeeping among concurrent readers.
  std::shared_lock<std::shared_mutex> state(state_mu_);
  std::lock_guard<std::mutex> pool_lock(pool_mu_);
  return ReadCommitted(oid, out);
}

Status DiskStorageManager::Write(TxnId txn, Oid oid, Slice data) {
  LatencyTimer timer(write_latency_);
  ODE_RETURN_NOT_OK(CheckWritable());
  object_writes_->Inc();
  Workspace* ws = FindWorkspace(txn);
  if (ws == nullptr) return Status::Internal("disk store: unknown txn");
  auto it = ws->entries.find(oid);
  if (it != ws->entries.end()) {
    if (it->second.freed) {
      return Status::NotFound("object freed in this transaction");
    }
    it->second.image = data.ToVector();
    return Status::OK();
  }
  {
    std::shared_lock<std::shared_mutex> state(state_mu_);
    if (index_.find(oid.value()) == index_.end()) {
      return Status::NotFound("no object " + oid.ToString());
    }
  }
  Workspace::Entry entry;
  entry.image = data.ToVector();
  ws->entries[oid] = std::move(entry);
  return Status::OK();
}

Status DiskStorageManager::Free(TxnId txn, Oid oid) {
  ODE_RETURN_NOT_OK(CheckWritable());
  Workspace* ws = FindWorkspace(txn);
  if (ws == nullptr) return Status::Internal("disk store: unknown txn");
  auto it = ws->entries.find(oid);
  if (it != ws->entries.end()) {
    if (it->second.freed) {
      return Status::NotFound("object already freed in this transaction");
    }
    it->second.freed = true;
    it->second.image.clear();
    return Status::OK();
  }
  {
    std::shared_lock<std::shared_mutex> state(state_mu_);
    if (index_.find(oid.value()) == index_.end()) {
      return Status::NotFound("no object " + oid.ToString());
    }
  }
  Workspace::Entry entry;
  entry.freed = true;
  ws->entries[oid] = std::move(entry);
  return Status::OK();
}

bool DiskStorageManager::Exists(TxnId txn, Oid oid) {
  if (Workspace* ws = FindWorkspace(txn)) {
    auto it = ws->entries.find(oid);
    if (it != ws->entries.end()) return !it->second.freed;
  }
  std::shared_lock<std::shared_mutex> state(state_mu_);
  return index_.find(oid.value()) != index_.end();
}

Status DiskStorageManager::SetRoot(TxnId txn, const std::string& name,
                                   Oid oid) {
  ODE_RETURN_NOT_OK(CheckWritable());
  Workspace* ws = FindWorkspace(txn);
  if (ws == nullptr) return Status::Internal("disk store: unknown txn");
  ws->root_updates[name] = oid;
  return Status::OK();
}

Result<Oid> DiskStorageManager::GetRoot(TxnId txn, const std::string& name) {
  if (wedged_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "disk store wedged by a mid-commit I/O failure; reopen to recover");
  }
  if (Workspace* ws = FindWorkspace(txn)) {
    auto it = ws->root_updates.find(name);
    if (it != ws->root_updates.end()) return it->second;
  }
  std::shared_lock<std::shared_mutex> state(state_mu_);
  auto it = roots_.find(name);
  if (it == roots_.end()) return Status::NotFound("no root '" + name + "'");
  return it->second;
}

Status DiskStorageManager::BeginTxn(TxnId txn) {
  // Deliberately off every state lock: starting a transaction must not
  // wait behind an in-flight group fsync.
  if (!open_.load(std::memory_order_acquire)) {
    return Status::Internal("disk store not open");
  }
  if (wedged_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "disk store wedged by a mid-commit I/O failure; reopen to recover");
  }
  std::lock_guard<std::mutex> lock(ws_mu_);
  auto [it, inserted] = workspaces_.try_emplace(txn);
  (void)it;
  if (!inserted) return Status::Internal("disk store: txn already begun");
  return Status::OK();
}

namespace {
// Batch info for the last successful commit on this thread (see
// StorageManager::LastCommitBatch).
thread_local StorageManager::CommitBatchInfo tls_last_commit_batch;
}  // namespace

StorageManager::CommitBatchInfo DiskStorageManager::LastCommitBatch() const {
  return tls_last_commit_batch;
}

Status DiskStorageManager::AppendBatchWal(
    const std::vector<CommitRequest*>& batch) {
  // WAL first: each member keeps its own kBegin..kCommit frame, so the
  // recovery protocol is unchanged — it redoes exactly the transactions
  // whose kCommit record survived, batched or not.
  const uint64_t records_before = wal_->records_appended();
  // Span bookkeeping for sampled members: per-member append intervals
  // now, one shared fsync-batch span after the group fsync below.
  std::vector<std::pair<TxnId, std::pair<uint64_t, uint64_t>>> traced_appends;
  {
    LatencyTimer append_timer(wal_append_latency_);
    for (const CommitRequest* req : batch) {
      const bool traced = tracer_ != nullptr && tracer_->Sampled(req->txn);
      const uint64_t append_start = traced ? LatencyTimer::NowNanos() : 0;
      WalRecord begin{WalRecord::Type::kBegin, req->txn, Oid(), "", {}};
      ODE_RETURN_NOT_OK(wal_->Append(begin));
      for (const auto& [oid, entry] : req->ws->entries) {
        WalRecord r;
        r.txn = req->txn;
        r.oid = oid;
        if (entry.freed) {
          r.type = WalRecord::Type::kFree;
        } else {
          r.type = WalRecord::Type::kUpsert;
          r.image = entry.image;
        }
        ODE_RETURN_NOT_OK(wal_->Append(r));
      }
      for (const auto& [name, oid] : req->ws->root_updates) {
        WalRecord r;
        r.type = WalRecord::Type::kSetRoot;
        r.txn = req->txn;
        r.oid = oid;
        r.name = name;
        ODE_RETURN_NOT_OK(wal_->Append(r));
      }
      WalRecord commit{WalRecord::Type::kCommit, req->txn, Oid(), "", {}};
      ODE_RETURN_NOT_OK(wal_->Append(commit));
      if (traced) {
        traced_appends.emplace_back(
            req->txn,
            std::make_pair(append_start, LatencyTimer::NowNanos()));
      }
    }
  }
  wal_records_->Inc(wal_->records_appended() - records_before);
  for (const auto& [txn, window] : traced_appends) {
    Span s;
    s.kind = SpanKind::kWalAppend;
    s.txn = txn;
    tracer_->Interval(std::move(s), window.first, window.second);
  }
  if (options_.sync_commits) {
    // The one fsync the whole group pays. Only after it returns may any
    // member be acked.
    const uint64_t fsync_start =
        traced_appends.empty() ? 0 : LatencyTimer::NowNanos();
    LatencyTimer fsync_timer(wal_fsync_latency_);
    ODE_RETURN_NOT_OK(wal_->Sync());
    commit_fsyncs_->Inc();
    commit_fsyncs_saved_->Inc(static_cast<uint64_t>(batch.size() - 1));
    if (!traced_appends.empty()) {
      // Every sampled member gets the SAME batch span (one fsync, many
      // riders): a = the batch ticket id, b = how many rode it.
      const uint64_t fsync_end = LatencyTimer::NowNanos();
      for (const auto& [txn, window] : traced_appends) {
        (void)window;
        Span s;
        s.kind = SpanKind::kFsyncBatch;
        s.txn = txn;
        s.a = static_cast<int64_t>(batch.front()->batch_id);
        s.b = static_cast<int64_t>(batch.size());
        tracer_->Interval(std::move(s), fsync_start, fsync_end);
      }
    }
  }
  return Status::OK();
}

Status DiskStorageManager::ApplyWorkspacePages(Workspace& ws) {
  // Applies to pages in the buffer pool (flushed lazily). Caller holds
  // state_mu_ exclusive.
  for (const auto& [oid, entry] : ws.entries) {
    if (entry.freed) {
      Status st = ApplyFree(oid);
      if (!st.ok() && !st.IsNotFound()) return st;
    } else {
      ODE_RETURN_NOT_OK(ApplyUpsert(oid, Slice(entry.image)));
    }
  }
  if (!ws.root_updates.empty()) {
    for (const auto& [name, oid] : ws.root_updates) {
      if (oid.IsNull()) {
        roots_.erase(name);
      } else {
        roots_[name] = oid;
      }
    }
    ODE_RETURN_NOT_OK(ApplyRoots());
  }
  return Status::OK();
}

void DiskStorageManager::DrainCommitPipelineLocked() {
  // commit_mu_ is held, so no new batch can be numbered; wait until the
  // last numbered batch has finished applying its pages.
  std::unique_lock<std::mutex> apply_lock(apply_mu_);
  apply_cv_.wait(apply_lock,
                 [this] { return applied_seq_ + 1 == next_batch_seq_; });
}

Status DiskStorageManager::CommitThroughQueue(TxnId txn, Workspace* ws) {
  CommitRequest req;
  req.txn = txn;
  req.ws = ws;

  std::unique_lock<std::mutex> lock(commit_mu_);
  commit_queue_.push_back(&req);
  commit_cv_.notify_all();  // a lingering leader recounts its batch
  {
    // Time parked in the commit queue (for followers: until their whole
    // batch is durable and applied).
    LatencyTimer wait_timer(leader_wait_latency_);
    commit_cv_.wait(lock, [&] {
      return req.done ||
             (!commit_queue_.empty() && commit_queue_.front() == &req);
    });
  }
  if (req.done) {
    // A leader carried this transaction: its kCommit is fsynced and its
    // pages are applied (or the whole group failed together).
    if (req.status.ok()) {
      tls_last_commit_batch =
          CommitBatchInfo{req.batch_id, req.batch_size, /*leader=*/false};
    }
    return req.status;
  }

  // This thread is the leader-elect. Do NOT form the batch yet: wait
  // until the WAL stage is free, so that committers arriving while the
  // previous batch fsyncs pile up in the queue and get claimed together
  // — that accumulation window is where batching comes from. No batch
  // can be numbered while this (unformed) request is the queue front,
  // so next_batch_seq_ is stable with commit_mu_ released; formed
  // batches never need commit_mu_ to finish their WAL stage, so this
  // wait cannot deadlock with a drain holding commit_mu_.
  const uint64_t prev_formed = next_batch_seq_ - 1;
  lock.unlock();
  {
    std::unique_lock<std::mutex> wal_lock(wal_mu_);
    wal_cv_.wait(wal_lock, [&] { return wal_seq_ >= prev_formed; });
  }
  lock.lock();

  // Optionally linger so more committers can join; the queue front
  // stays this request throughout, so no second leader can emerge while
  // wait_for has commit_mu_ released.
  const size_t max_txns =
      options_.group_commit
          ? std::max<size_t>(1, options_.commit_batch_max_txns)
          : 1;
  if (options_.group_commit && options_.commit_batch_max_wait_us > 0 &&
      commit_queue_.size() < max_txns) {
    commit_cv_.wait_for(
        lock, std::chrono::microseconds(options_.commit_batch_max_wait_us),
        [&] { return commit_queue_.size() >= max_txns; });
  }
  // Claim the batch and its sequence number, then get off commit_mu_ so
  // the next leader-elect can start accumulating its own batch.
  std::vector<CommitRequest*> batch;
  while (!commit_queue_.empty() && batch.size() < max_txns) {
    batch.push_back(commit_queue_.front());
    commit_queue_.pop_front();
  }
  const uint64_t batch_seq = next_batch_seq_++;
  for (CommitRequest* r : batch) {
    r->batch_id = batch_seq;
    r->batch_size = static_cast<uint32_t>(batch.size());
  }
  if (batch_size_hist_->ShouldSample()) {
    batch_size_hist_->Record(batch.size());
  }
  if (!commit_queue_.empty()) commit_cv_.notify_all();  // next leader
  lock.unlock();

  // WAL ticket: batches append + fsync strictly in sequence order. The
  // wedge check must happen under the ticket — after a failed batch left
  // a partial frame, appending behind the tear would turn a torn tail
  // (discarded by recovery) into mid-file corruption (salvage mode).
  Status st;
  {
    std::unique_lock<std::mutex> wal_lock(wal_mu_);
    wal_cv_.wait(wal_lock, [&] { return wal_seq_ + 1 == batch_seq; });
    st = CheckWritable();
    if (st.ok()) st = AppendBatchWal(batch);
    if (!st.ok() && !wedged_.load(std::memory_order_acquire)) {
      wedged_.store(true, std::memory_order_release);
      ODE_LOG(kError) << "disk store: group commit batch " << batch_seq
                      << " (" << batch.size()
                      << " txn(s)) failed in the WAL; store wedged until "
                         "reopen: "
                      << st.ToString();
      DumpFlightRecorder("wedged: WAL stage failed for commit batch " +
                         std::to_string(batch_seq) + ": " + st.ToString());
    }
    wal_seq_ = batch_seq;
  }
  wal_cv_.notify_all();

  // Apply ticket: pages strictly in WAL order. Upserts are last-writer-
  // wins, so batch N+1 (already fsyncing on its own leader's thread)
  // must not reach a page before batch N.
  {
    std::unique_lock<std::mutex> apply_lock(apply_mu_);
    apply_cv_.wait(apply_lock, [&] { return applied_seq_ + 1 == batch_seq; });
  }
  if (st.ok()) {
    std::unique_lock<std::shared_mutex> state(state_mu_);
    for (CommitRequest* r : batch) {
      const bool traced = tracer_ != nullptr && tracer_->Sampled(r->txn);
      const uint64_t apply_start = traced ? LatencyTimer::NowNanos() : 0;
      st = ApplyWorkspacePages(*r->ws);
      if (traced && st.ok()) {
        Span s;
        s.kind = SpanKind::kPageApply;
        s.txn = r->txn;
        s.a = static_cast<int64_t>(r->ws->entries.size());
        tracer_->Interval(std::move(s), apply_start, LatencyTimer::NowNanos());
      }
      if (!st.ok()) break;
    }
    if (!st.ok()) {
      // Pages and WAL may now disagree about a half-applied batch; only
      // WAL recovery at the next Open can reconcile them.
      wedged_.store(true, std::memory_order_release);
      ODE_LOG(kError) << "disk store: group commit batch " << batch_seq
                      << " failed applying pages; store wedged until reopen: "
                      << st.ToString();
      DumpFlightRecorder("wedged: page apply failed for commit batch " +
                         std::to_string(batch_seq) + ": " + st.ToString());
    }
  }
  {
    std::lock_guard<std::mutex> apply_lock(apply_mu_);
    applied_seq_ = batch_seq;
  }
  apply_cv_.notify_all();

  // Ack the group with its shared outcome. Followers wake only here —
  // after the fsync covering their kCommit AND page application — so a
  // caller releasing its 2PL locks gets read-your-writes.
  lock.lock();
  for (CommitRequest* r : batch) {
    if (r == &req) continue;
    r->status = st;
    r->done = true;
  }
  lock.unlock();
  commit_cv_.notify_all();
  if (st.ok()) {
    tls_last_commit_batch = CommitBatchInfo{
        batch_seq, static_cast<uint32_t>(batch.size()), /*leader=*/true};
  }
  return st;
}

Status DiskStorageManager::CommitTxn(TxnId txn) {
  Workspace* ws = FindWorkspace(txn);
  if (ws == nullptr) {
    return Status::Internal("disk store: commit of unknown txn");
  }
  const bool read_only = ws->entries.empty() && ws->root_updates.empty();
  if (!read_only) {
    ODE_RETURN_NOT_OK(CheckWritable());
    // On failure the workspace is kept (the caller may still AbortTxn),
    // matching the pre-group-commit contract.
    ODE_RETURN_NOT_OK(CommitThroughQueue(txn, ws));
  }
  std::lock_guard<std::mutex> lock(ws_mu_);
  workspaces_.erase(txn);
  return Status::OK();
}

Status DiskStorageManager::AbortTxn(TxnId txn) {
  std::lock_guard<std::mutex> lock(ws_mu_);
  // Allowed even wedged/salvaged: no-steal keeps aborts purely in-memory.
  workspaces_.erase(txn);
  return Status::OK();
}

Status DiskStorageManager::Checkpoint() {
  std::unique_lock<std::mutex> commit_lock(commit_mu_);
  ODE_RETURN_NOT_OK(CheckWritable());
  DrainCommitPipelineLocked();
  // A draining batch may have wedged the store; checkpointing now would
  // persist half-applied state and then truncate the log.
  ODE_RETURN_NOT_OK(CheckWritable());
  std::unique_lock<std::shared_mutex> state(state_mu_);
  return CheckpointLocked();
}

void DiskStorageManager::SimulateCrash() {
  std::unique_lock<std::mutex> commit_lock(commit_mu_);
  DrainCommitPipelineLocked();
  std::unique_lock<std::shared_mutex> state(state_mu_);
  std::lock_guard<std::mutex> ws_lock(ws_mu_);
  pool_.reset();  // dirty frames are dropped, not written
  wal_.reset();
  file_.reset();
  workspaces_.clear();
  wedged_ = false;
  salvage_ = false;
  open_ = false;
}

bool DiskStorageManager::salvage_mode() const {
  return salvage_.load(std::memory_order_acquire);
}

bool DiskStorageManager::wedged() const {
  return wedged_.load(std::memory_order_acquire);
}

Status DiskStorageManager::CheckpointLocked() {
  ODE_RETURN_NOT_OK(pool_->FlushAll());
  ODE_RETURN_NOT_OK(WriteHeader());
  ODE_RETURN_NOT_OK(RetryIo(&retry_policy_, "data file sync",
                            [&] { return file_->Sync(); }));
  return wal_->Truncate();
}

StorageStats DiskStorageManager::stats() const {
  std::shared_lock<std::shared_mutex> state(state_mu_);
  StorageStats s;
  s.objects = index_.size();
  s.pages = page_count_;
  if (pool_ != nullptr) {
    s.page_reads = pool_->reads();
    s.page_writes = pool_->writes();
    s.buffer_hits = pool_->hits();
    s.buffer_misses = pool_->misses();
  }
  if (wal_ != nullptr) s.wal_records = wal_->records_appended();
  s.object_reads = object_reads_->value();
  s.object_writes = object_writes_->value();
  return s;
}

}  // namespace ode
