#include "storage/disk_storage_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/coding.h"
#include "common/logging.h"

namespace ode {

namespace {

constexpr uint32_t kFileMagic = 0x0de0e0e5;  // "Ode over EOS"
constexpr uint64_t kRootsOid = 1;
constexpr uint16_t kOverflowMarker = 0xffff;  // in a page's slot-count field

// Record payload prefix written by the storage manager.
constexpr char kInlineFlag = 0;
constexpr char kOverflowFlag = 1;

// Overflow page layout offsets. Bytes [8..12) hold the page CRC32C
// (shared with slotted pages — PageChecksum skips that range), so the
// chain link and length start at 12.
constexpr size_t kOvfNextOff = 12;
constexpr size_t kOvfLenOff = 16;
constexpr size_t kOvfDataOff = 20;
constexpr size_t kOvfCapacity = kPageSize - kOvfDataOff;

// CRC check over a raw kPageSize buffer (any page flavor).
bool RawPageChecksumOk(const char* buf) {
  uint32_t stored;
  std::memcpy(&stored, buf + 8, 4);
  return stored == PageChecksum(buf);
}

Status ReadPageFrom(RandomRWFile* file, const IoRetryPolicy* retry,
                    uint32_t page_id, char* buf) {
  return RetryIo(retry, "page read", [&] {
    return file->ReadAt(static_cast<uint64_t>(page_id) * kPageSize, kPageSize,
                        buf);
  });
}

Status WritePageTo(RandomRWFile* file, const IoRetryPolicy* retry,
                   uint32_t page_id, const char* buf) {
  return RetryIo(retry, "page write", [&] {
    return file->WriteAt(static_cast<uint64_t>(page_id) * kPageSize,
                         Slice(buf, kPageSize));
  });
}

}  // namespace

// ---------------------------------------------------------------- BufferPool

BufferPool::BufferPool(RandomRWFile* file, size_t capacity,
                       const IoRetryPolicy* retry, bool verify_checksums)
    : file_(file),
      capacity_(capacity == 0 ? 1 : capacity),
      retry_(retry),
      verify_(verify_checksums) {}

BufferPool::Frame* BufferPool::Touch(uint32_t page_id) {
  auto it = index_.find(page_id);
  if (it == index_.end()) return nullptr;
  frames_.splice(frames_.begin(), frames_, it->second);
  index_[page_id] = frames_.begin();
  return &frames_.front();
}

Status BufferPool::WriteFrame(Frame& frame) {
  writes_.fetch_add(1, std::memory_order_relaxed);
  if (verify_) frame.page.UpdateChecksum();
  return WritePageTo(file_, retry_, frame.page_id, frame.page.data());
}

Status BufferPool::EvictIfFull() {
  while (frames_.size() >= capacity_) {
    Frame& victim = frames_.back();
    if (victim.dirty) {
      ODE_RETURN_NOT_OK(WriteFrame(victim));
    }
    index_.erase(victim.page_id);
    frames_.pop_back();
  }
  return Status::OK();
}

Status BufferPool::Get(uint32_t page_id, Page** out) {
  if (Frame* f = Touch(page_id)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    *out = &f->page;
    return Status::OK();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  ODE_RETURN_NOT_OK(EvictIfFull());
  Frame frame;
  frame.page_id = page_id;
  reads_.fetch_add(1, std::memory_order_relaxed);
  ODE_RETURN_NOT_OK(
      ReadPageFrom(file_, retry_, page_id, frame.page.mutable_data()));
  // Verify BEFORE caching: a frame that fails never enters the pool, so
  // a transient garbage read is not sticky — the next Get re-reads disk.
  if (verify_) {
    if (!frame.page.VerifyChecksum()) {
      return Status::Corruption("page " + std::to_string(page_id) +
                                ": checksum mismatch");
    }
    if (frame.page.page_id() != page_id) {
      return Status::Corruption("page " + std::to_string(page_id) +
                                ": stamped id " +
                                std::to_string(frame.page.page_id()) +
                                " (misdirected write?)");
    }
  }
  // Structural validation is unconditional — it is what keeps a
  // malformed slot directory from ever indexing outside the page buffer.
  // Overflow pages (0xffff in the slot-count field) have no directory.
  if (frame.page.slot_count() != kOverflowMarker) {
    ODE_RETURN_NOT_OK(frame.page.ValidateStructure());
  }
  frames_.push_front(std::move(frame));
  index_[page_id] = frames_.begin();
  *out = &frames_.front().page;
  return Status::OK();
}

Status BufferPool::Create(uint32_t page_id, Page** out) {
  if (Frame* f = Touch(page_id)) {
    f->page.Format(page_id);
    f->dirty = true;
    *out = &f->page;
    return Status::OK();
  }
  ODE_RETURN_NOT_OK(EvictIfFull());
  Frame frame;
  frame.page_id = page_id;
  frame.page.Format(page_id);
  frame.dirty = true;
  frames_.push_front(std::move(frame));
  index_[page_id] = frames_.begin();
  *out = &frames_.front().page;
  return Status::OK();
}

void BufferPool::MarkDirty(uint32_t page_id) {
  if (Frame* f = Touch(page_id)) f->dirty = true;
}

void BufferPool::Discard(uint32_t page_id) {
  auto it = index_.find(page_id);
  if (it == index_.end()) return;
  frames_.erase(it->second);
  index_.erase(it);
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.dirty) {
      ODE_RETURN_NOT_OK(WriteFrame(f));
      f.dirty = false;
    }
  }
  return Status::OK();
}

// ------------------------------------------------------- DiskStorageManager

DiskStorageManager::DiskStorageManager(std::string path, Options options)
    : path_(std::move(path)), options_(options) {
  env_ = options_.env != nullptr ? options_.env : Env::Default();
  retry_policy_.env = env_;
  retry_policy_.attempts = options_.io_retry_attempts;
  retry_policy_.backoff_us = options_.io_retry_backoff_us;
  owned_metrics_ = std::make_unique<MetricsRegistry>();
  BindMetrics(owned_metrics_.get());
}

void DiskStorageManager::BindMetrics(MetricsRegistry* registry) {
  object_reads_ = registry->GetCounter("ode_storage_object_reads_total");
  object_writes_ = registry->GetCounter("ode_storage_object_writes_total");
  wal_records_ = registry->GetCounter("ode_wal_records_total");
  salvage_gauge_ = registry->GetGauge("ode_wal_salvage_mode");
  read_latency_ = registry->GetHistogram("ode_storage_read_latency_ns");
  write_latency_ = registry->GetHistogram("ode_storage_write_latency_ns");
  wal_append_latency_ = registry->GetHistogram("ode_wal_append_latency_ns");
  wal_fsync_latency_ = registry->GetHistogram("ode_wal_fsync_latency_ns");
  batch_size_hist_ = registry->GetHistogram("ode_group_commit_batch_size");
  leader_wait_latency_ =
      registry->GetHistogram("ode_commit_leader_wait_latency_ns");
  commit_fsyncs_ = registry->GetCounter("ode_commit_fsyncs_total");
  commit_fsyncs_saved_ =
      registry->GetCounter("ode_commit_fsyncs_saved_total");
  quarantined_gauge_ = registry->GetGauge("ode_quarantined_pages");
  scrub_pages_ = registry->GetCounter("ode_scrub_pages_total");
  scrub_repaired_ = registry->GetCounter("ode_scrub_repaired_total");
  scrub_lost_ = registry->GetCounter("ode_scrub_lost_objects_total");
  // Updated in place: the Wal and BufferPool hold &retry_policy_, so a
  // registry rebind (Database adoption) reaches them without a reopen.
  retry_policy_.retries = registry->GetCounter("ode_io_retries_total");
  retry_policy_.exhausted = registry->GetCounter("ode_io_retry_exhausted_total");
  env_->BindMetrics(registry);
}

void DiskStorageManager::BindTracer(Tracer* tracer) {
  tracer_ = tracer;
  // Open() ran before the Database could wire the tracer; if it left the
  // store in salvage mode, the flight recorder still owes its dump.
  if (tracer_ != nullptr && salvage_.load(std::memory_order_acquire)) {
    DumpFlightRecorder("wal-salvage: mid-file WAL corruption at open");
  }
}

void DiskStorageManager::DumpFlightRecorder(const std::string& reason) {
  if (tracer_ == nullptr) return;
  const std::string path = path_ + ".flight.json";
  if (tracer_->DumpToFile(path, reason)) {
    ODE_LOG(kError) << "disk store: flight recorder dumped to " << path
                    << " (" << reason << ")";
  } else {
    ODE_LOG(kError) << "disk store: flight recorder dump to " << path
                    << " failed";
  }
}

DiskStorageManager::~DiskStorageManager() {
  if (open_) {
    Status st = Close();
    if (!st.ok()) {
      ODE_LOG(kError) << "disk store close failed: " << st.ToString();
    }
  }
  // The env outlives this manager, but the registry BindMetrics pointed
  // it at does not.
  env_->BindMetrics(nullptr);
}

Status DiskStorageManager::ReadPage(uint32_t page_id, char* buf) {
  return ReadPageFrom(file_.get(), &retry_policy_, page_id, buf);
}

Status DiskStorageManager::WritePage(uint32_t page_id, const char* buf) {
  return WritePageTo(file_.get(), &retry_policy_, page_id, buf);
}

Status DiskStorageManager::Open() {
  // Nothing else can be running (open_ is false), but take the full
  // exclusive stack anyway so a misuse shows up as a deadlock in tests
  // rather than a silent race.
  MutexLock commit_lock(&commit_mu_);
  WriterMutexLock state(&state_mu_);
  MutexLock ws_lock(&ws_mu_);
  if (open_.load(std::memory_order_relaxed)) {
    return Status::Internal("disk store already open");
  }
  if (!options_.sync_commits) {
    ODE_LOG(kWarn) << "disk store " << path_
                   << " opened with sync_commits=false: commits are NOT "
                      "durable across crashes (benchmarks only)";
  }
  ODE_RETURN_NOT_OK(RetryIo(&retry_policy_, "data file open", [&] {
    return env_->NewRandomRWFile(path_, &file_);
  }));

  ODE_ASSIGN_OR_RETURN(uint64_t size, file_->Size());
  pool_ = std::make_unique<BufferPool>(file_.get(),
                                       options_.buffer_pool_pages,
                                       &retry_policy_,
                                       options_.verify_page_checksums);
  wal_ = std::make_unique<Wal>(path_ + ".wal", env_, &retry_policy_);

  index_.clear();
  space_map_.clear();
  free_pages_.clear();
  roots_.clear();
  workspaces_.clear();
  quarantined_pages_.clear();
  lost_oids_.clear();
  quarantine_oids_.clear();
  unknown_losses_ = false;
  roots_lost_ = false;
  // Relaxed: these resets happen-before the open_ release-store below,
  // whose pairing acquire-loads (CheckWritable/BeginTxn/...) make them
  // visible to every thread that observes the store as open.
  next_oid_.store(2, std::memory_order_relaxed);
  page_count_ = 1;
  wedged_.store(false, std::memory_order_relaxed);
  salvage_.store(false, std::memory_order_relaxed);

  bool header_salvaged = false;
  if (size == 0) {
    ODE_RETURN_NOT_OK(WriteHeader());
  } else {
    char header[kPageSize];
    ODE_RETURN_NOT_OK(ReadPage(0, header));
    uint32_t magic;
    std::memcpy(&magic, header, 4);
    if (magic != kFileMagic) {
      return Status::Corruption("bad file magic in " + path_);
    }
    if (!options_.verify_page_checksums || RawPageChecksumOk(header)) {
      std::memcpy(&page_count_, header + 4, 4);
      uint64_t stored_next_oid;
      std::memcpy(&stored_next_oid, header + 12, 8);
      next_oid_.store(stored_next_oid, std::memory_order_relaxed);
    } else {
      // Header-salvage path: the magic is intact but the header page is
      // corrupt, so page_count_/next_oid_ cannot be trusted. The page
      // count is re-derived from the file size (pages are written
      // whole); next_oid_ is re-derived from the page scan + WAL replay
      // below. Caveat: if the highest-numbered object was freed, its oid
      // can be re-minted — the WAL window is the only protection.
      header_salvaged = true;
      page_count_ = static_cast<uint32_t>(size / kPageSize);
      if (page_count_ == 0) page_count_ = 1;
      ODE_LOG(kError) << "disk store " << path_
                      << ": file header checksum mismatch; salvaging page "
                         "count from the file size ("
                      << page_count_ << " page(s)) and next oid from a scan";
    }
    ODE_RETURN_NOT_OK(ScanAndRebuild());
  }
  // Load the roots directory (object with reserved oid 1) before WAL
  // replay, so replayed kSetRoot records layer on top of it.
  std::vector<char> image;
  Status st = ReadCommitted(Oid(kRootsOid), &image);
  if (st.ok()) {
    Decoder dec(image);
    uint64_t n;
    ODE_RETURN_NOT_OK(dec.GetVarint(&n));
    for (uint64_t i = 0; i < n; ++i) {
      std::string name;
      uint64_t oid;
      ODE_RETURN_NOT_OK(dec.GetString(&name));
      ODE_RETURN_NOT_OK(dec.GetU64(&oid));
      roots_[name] = Oid(oid);
    }
  } else if (st.code() == StatusCode::kCorruption &&
             (lost_oids_.count(kRootsOid) != 0 || unknown_losses_ ||
              !quarantined_pages_.empty())) {
    // The roots directory itself sat on a corrupt page. WAL replay below
    // can restore the recently-updated names; anything older is gone, so
    // every miss in GetRoot must stay suspect.
    roots_lost_ = true;
    ODE_LOG(kError) << "disk store " << path_
                    << ": roots directory lost to a corrupt page; names "
                       "outside the WAL window are unrecoverable";
  } else if (!st.IsNotFound()) {
    return st;
  }

  ODE_RETURN_NOT_OK(wal_->Open());
  ODE_RETURN_NOT_OK(ReplayWal());
  ReconcileQuarantineLocked();

  // Release: publishes every reset above to the acquire-loads in
  // CheckWritable/Read/GetRoot/BeginTxn/VerifyIntegrity.
  open_.store(true, std::memory_order_release);
  if (header_salvaged && !salvage_.load(std::memory_order_relaxed)) {
    // The rewritten header (checkpoint below) makes the salvage stick.
    ODE_LOG(kWarn) << "disk store " << path_
                   << ": salvaged header will be rewritten by checkpoint";
  }
  if (!quarantined_pages_.empty() || unknown_losses_) {
    ODE_LOG(kError) << "disk store " << path_ << " opened DEGRADED: "
                    << quarantined_pages_.size()
                    << " quarantined page(s), " << lost_oids_.size()
                    << " known-lost object(s)"
                    << (unknown_losses_ ? ", losses not fully enumerable"
                                        : "");
  }
  if (salvage_.load(std::memory_order_relaxed)) {
    salvage_gauge_->Set(1);
    ODE_LOG(kError) << "disk store " << path_
                    << " opened in READ-ONLY salvage mode: the WAL is "
                       "corrupt mid-file; the intact prefix was replayed "
                       "and the log is preserved for repair";
    return Status::OK();
  }
  salvage_gauge_->Set(0);
  // Make recovery results durable and shorten the next recovery.
  return CheckpointLocked();
}

Status DiskStorageManager::Close() {
  MutexLock commit_lock(&commit_mu_);
  if (!open_.load(std::memory_order_relaxed)) return Status::OK();
  // Let in-flight batches finish applying before we take the state lock
  // and truncate the WAL they are recorded in.
  DrainCommitPipelineLocked();
  WriterMutexLock state(&state_mu_);
  Status st = Status::OK();
  if (!wedged_.load(std::memory_order_relaxed) &&
      !salvage_.load(std::memory_order_relaxed)) {
    st = CheckpointLocked();
  }
  // A wedged or salvaged store must NOT checkpoint: the WAL is the only
  // trustworthy copy of recent history and truncating it would lose it.
  Status wst = wal_ != nullptr ? wal_->Close() : Status::OK();
  if (file_ != nullptr) {
    Status fst = file_->Close();
    if (st.ok() && wst.ok()) wst = fst;
  }
  file_.reset();
  open_.store(false, std::memory_order_release);
  return st.ok() ? wst : st;
}

Status DiskStorageManager::CheckWritable() const {
  // Acquire: pairs with the release-store of open_ at the end of Open()
  // (publishing the recovered state) and in Close()/SimulateCrash.
  if (!open_.load(std::memory_order_acquire)) {
    return Status::Internal("disk store not open");
  }
  // Acquire: pairs with the release-store in CommitThroughQueue's WAL
  // and page-apply failure paths, so a thread that observes the wedge
  // also observes the error logged before it.
  if (wedged_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "disk store wedged by a mid-commit I/O failure; reopen to recover");
  }
  // Acquire: pairs with the relaxed store in ReplayWal, published by
  // open_'s release-store (salvage_ is only ever set during Open, with
  // every lock held exclusive).
  if (salvage_.load(std::memory_order_acquire)) {
    return Status::Corruption(
        "disk store is in read-only WAL-salvage mode (corrupt log " +
        path_ + ".wal)");
  }
  return Status::OK();
}

Status DiskStorageManager::ScanAndRebuild() {
  uint64_t max_oid = 1;
  // Healthy overflow pages: id -> (next link, chunk length), collected in
  // the single pass so chains can be verified without re-reading disk.
  std::unordered_map<uint32_t, std::pair<uint32_t, uint32_t>> ovf;
  std::unordered_set<uint32_t> bad_ovf;
  // Overflow references found in healthy slotted records.
  struct OvfRef {
    uint64_t oid;
    uint32_t first;
    uint64_t len;
  };
  std::vector<OvfRef> ovf_refs;
  for (uint32_t p = 1; p < page_count_; ++p) {
    char buf[kPageSize];
    ODE_RETURN_NOT_OK(ReadPage(p, buf));
    const bool crc_ok =
        !options_.verify_page_checksums || RawPageChecksumOk(buf);
    uint16_t slot_count;
    std::memcpy(&slot_count, buf + 4, 2);
    if (slot_count == kOverflowMarker) {
      if (!crc_ok) {
        // Ownership is resolved by the chain walk below; the walk that
        // dead-ends here names the lost object.
        quarantined_pages_.insert(p);
        bad_ovf.insert(p);
        continue;
      }
      uint32_t next, len;
      std::memcpy(&next, buf + kOvfNextOff, 4);
      std::memcpy(&len, buf + kOvfLenOff, 4);
      ovf[p] = {next, len};
      continue;
    }
    Page page;
    page.Load(buf);
    Status structure = page.ValidateStructure();
    if (!crc_ok || !structure.ok()) {
      quarantined_pages_.insert(p);
      if (structure.ok()) {
        // CRC failed but the directory still parses: enumerate what
        // lived here, best-effort — a flipped bit may have landed in an
        // oid field, which is why AbsentOidStatus stays conservative
        // while any page is quarantined.
        std::vector<uint64_t>& named = quarantine_oids_[p];
        page.ForEach([&](uint16_t, uint64_t oid, Slice) {
          named.push_back(oid);
          lost_oids_.insert(oid);
          // Bumping from an untrusted oid only wastes id space; NOT
          // bumping could re-mint a real object's id.
          if (oid > max_oid) max_oid = oid;
        });
      } else {
        unknown_losses_ = true;
      }
      ODE_LOG(kError) << "disk store " << path_ << ": page " << p
                      << " failed verification ("
                      << (crc_ok ? structure.ToString() : "checksum mismatch")
                      << "); quarantined pending WAL repair";
      continue;
    }
    bool any = false;
    page.ForEach([&](uint16_t slot, uint64_t oid, Slice payload) {
      index_[oid] = Loc{p, slot};
      if (oid > max_oid) max_oid = oid;
      any = true;
      if (!payload.empty() && payload[0] == kOverflowFlag) {
        Decoder dec(Slice(payload.data() + 1, payload.size() - 1));
        uint32_t first;
        uint64_t total;
        if (dec.GetU32(&first).ok() && dec.GetU64(&total).ok()) {
          ovf_refs.push_back(OvfRef{oid, first, total});
        }
      }
    });
    if (any) {
      space_map_[p] = page.FreeSpaceForInsert();
    } else {
      free_pages_.push_back(p);
    }
  }
  // Verify every overflow chain end-to-end. A chain that dead-ends in a
  // quarantined page (or loops, or totals the wrong length) means the
  // object's committed image is gone: drop its healthy slotted record,
  // reclaim the surviving chain prefix, and mark it lost — WAL replay
  // may still resurrect it.
  for (const OvfRef& ref : ovf_refs) {
    std::vector<uint32_t> walk;
    std::unordered_set<uint32_t> seen;
    uint64_t got = 0;
    uint32_t bad_page = 0;
    bool broken = false;
    uint32_t q = ref.first;
    while (q != 0) {
      auto it = ovf.find(q);
      if (it == ovf.end() || !seen.insert(q).second) {
        broken = true;
        if (bad_ovf.count(q) != 0) bad_page = q;
        break;
      }
      walk.push_back(q);
      got += it->second.second;
      q = it->second.first;
    }
    if (!broken && got != ref.len) broken = true;
    if (!broken) continue;
    auto iit = index_.find(ref.oid);
    if (iit != index_.end()) {
      Page* pg;
      ODE_RETURN_NOT_OK(pool_->Get(iit->second.page, &pg));
      (void)pg->Delete(iit->second.slot);
      pool_->MarkDirty(iit->second.page);
      space_map_[iit->second.page] = pg->FreeSpaceForInsert();
      index_.erase(iit);
    }
    for (uint32_t w : walk) {
      ovf.erase(w);
      ReleasePage(w);
    }
    lost_oids_.insert(ref.oid);
    if (bad_page != 0) quarantine_oids_[bad_page].push_back(ref.oid);
    ODE_LOG(kError) << "disk store " << path_ << ": object " << ref.oid
                    << " lost its overflow chain (first page " << ref.first
                    << "); marked lost pending WAL repair";
  }
  // Relaxed: Open() is single-threaded (exclusive locks held); the
  // open_ release-store publishes the final value.
  if (max_oid + 1 > next_oid_.load(std::memory_order_relaxed)) {
    next_oid_.store(max_oid + 1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status DiskStorageManager::ReplayWal() {
  std::vector<WalRecord> records;
  Status read_status = wal_->ReadAll(&records);
  if (read_status.code() == StatusCode::kCorruption) {
    // Mid-file damage with intact records beyond it: replay the intact
    // prefix below, then serve it read-only (salvage mode). Truncating
    // the log here would silently drop committed transactions.
    // Relaxed: only runs during Open (exclusive locks held); published
    // by open_'s release-store, read by CheckWritable/salvage_mode.
    salvage_.store(true, std::memory_order_relaxed);
  } else if (!read_status.ok()) {
    return read_status;
  }
  // Pass 1: which transactions committed?
  std::unordered_map<TxnId, bool> committed;
  for (const WalRecord& r : records) {
    if (r.type == WalRecord::Type::kCommit) committed[r.txn] = true;
  }
  // Pass 2: redo committed operations in log order (idempotent).
  bool roots_changed = false;
  for (const WalRecord& r : records) {
    if (!committed.count(r.txn)) continue;
    switch (r.type) {
      case WalRecord::Type::kUpsert: {
        ODE_RETURN_NOT_OK(ApplyUpsert(r.oid, Slice(r.image)));
        // Relaxed: replay runs during Open, single-threaded.
        if (r.oid.value() >= next_oid_.load(std::memory_order_relaxed)) {
          next_oid_.store(r.oid.value() + 1, std::memory_order_relaxed);
        }
        break;
      }
      case WalRecord::Type::kFree: {
        Status st = ApplyFree(r.oid);
        if (!st.ok() && !st.IsNotFound()) return st;
        break;
      }
      case WalRecord::Type::kSetRoot: {
        if (r.oid.IsNull()) {
          roots_.erase(r.name);
        } else {
          roots_[r.name] = r.oid;
        }
        roots_changed = true;
        break;
      }
      default:
        break;
    }
  }
  // Replayed root updates must also reach the persistent roots object,
  // because Open() checkpoints (truncating the WAL) right after this.
  if (roots_changed) {
    ODE_RETURN_NOT_OK(ApplyRoots());
  }
  return Status::OK();
}

Status DiskStorageManager::WriteHeader() {
  // Header layout: magic [0..4), page count [4..8), CRC32C [8..12) —
  // the same offset every page flavor uses — next oid [12..20).
  char buf[kPageSize];
  std::memset(buf, 0, sizeof(buf));
  std::memcpy(buf, &kFileMagic, 4);
  std::memcpy(buf + 4, &page_count_, 4);
  const uint64_t next_oid = next_oid_.load(std::memory_order_relaxed);
  std::memcpy(buf + 12, &next_oid, 8);
  // Always stamped (one CRC per checkpoint is free) even when the
  // verify knob is off, so turning verification back on later does not
  // instantly salvage-open over a stale header checksum.
  const uint32_t crc = PageChecksum(buf);
  std::memcpy(buf + 8, &crc, 4);
  return WritePage(0, buf);
}

uint32_t DiskStorageManager::AllocPage() {
  if (!free_pages_.empty()) {
    uint32_t p = free_pages_.back();
    free_pages_.pop_back();
    return p;
  }
  return page_count_++;
}

void DiskStorageManager::ReleasePage(uint32_t page_id) {
  space_map_.erase(page_id);
  pool_->Discard(page_id);
  // Rewrite as a formatted empty page so a rebuild scan sees it as free.
  Page empty;
  empty.Format(page_id);
  Page* frame;
  Status st = pool_->Create(page_id, &frame);
  if (!st.ok()) {
    ODE_LOG(kError) << "release page failed: " << st.ToString();
    return;
  }
  free_pages_.push_back(page_id);
}

// --------------------------------------------------------- overflow chains

Status DiskStorageManager::WriteOverflowChain(Slice image,
                                              uint32_t* first_page) {
  size_t remaining = image.size();
  size_t offset = 0;
  uint32_t prev = 0;
  *first_page = 0;
  while (remaining > 0 || offset == 0) {
    uint32_t page_id = AllocPage();
    Page* page;
    ODE_RETURN_NOT_OK(pool_->Create(page_id, &page));
    char* d = page->mutable_data();
    uint16_t marker = kOverflowMarker;
    std::memcpy(d + 4, &marker, 2);
    uint32_t chunk = static_cast<uint32_t>(
        remaining < kOvfCapacity ? remaining : kOvfCapacity);
    uint32_t zero = 0;
    std::memcpy(d + kOvfNextOff, &zero, 4);
    std::memcpy(d + kOvfLenOff, &chunk, 4);
    if (chunk > 0) {
      std::memcpy(d + kOvfDataOff, image.data() + offset, chunk);
    }
    pool_->MarkDirty(page_id);
    if (prev == 0) {
      *first_page = page_id;
    } else {
      Page* prev_page;
      ODE_RETURN_NOT_OK(pool_->Get(prev, &prev_page));
      std::memcpy(prev_page->mutable_data() + kOvfNextOff, &page_id, 4);
      pool_->MarkDirty(prev);
    }
    prev = page_id;
    offset += chunk;
    remaining -= chunk;
    if (remaining == 0) break;
  }
  return Status::OK();
}

Status DiskStorageManager::ReadOverflowChain(uint32_t first_page,
                                             uint64_t total_len,
                                             std::vector<char>* out) {
  out->clear();
  out->reserve(total_len);
  uint32_t page_id = first_page;
  while (page_id != 0) {
    Page* page;
    ODE_RETURN_NOT_OK(pool_->Get(page_id, &page));
    const char* d = page->data();
    uint32_t next, len;
    std::memcpy(&next, d + kOvfNextOff, 4);
    std::memcpy(&len, d + kOvfLenOff, 4);
    out->insert(out->end(), d + kOvfDataOff, d + kOvfDataOff + len);
    page_id = next;
  }
  if (out->size() != total_len) {
    return Status::Corruption("overflow chain length mismatch");
  }
  return Status::OK();
}

Status DiskStorageManager::FreeOverflowChain(uint32_t first_page) {
  uint32_t page_id = first_page;
  while (page_id != 0) {
    Page* page;
    ODE_RETURN_NOT_OK(pool_->Get(page_id, &page));
    uint32_t next;
    std::memcpy(&next, page->data() + kOvfNextOff, 4);
    ReleasePage(page_id);
    page_id = next;
  }
  return Status::OK();
}

// -------------------------------------------------- committed-state access

Status DiskStorageManager::AbsentOidStatus(Oid oid) const {
  if (lost_oids_.count(oid.value()) != 0) {
    return Status::Corruption("object " + oid.ToString() +
                              " was lost to a quarantined page");
  }
  if (unknown_losses_ || !quarantined_pages_.empty()) {
    // The lost-object enumeration from a corrupt page cannot be trusted
    // (the corruption may have hit an oid field), so while anything is
    // quarantined a miss must not be reported as a clean "never
    // existed" — that would be exactly the silent wrong answer page
    // checksums exist to prevent.
    return Status::Corruption(
        "object " + oid.ToString() +
        " not found, but the store is degraded (quarantined pages); it "
        "may be among the lost");
  }
  return Status::NotFound("no object " + oid.ToString());
}

Status DiskStorageManager::ReadCommitted(Oid oid, std::vector<char>* out) {
  auto it = index_.find(oid.value());
  if (it == index_.end()) {
    return AbsentOidStatus(oid);
  }
  Page* page;
  ODE_RETURN_NOT_OK(pool_->Get(it->second.page, &page));
  uint64_t stored_oid;
  std::vector<char> payload;
  ODE_RETURN_NOT_OK(page->Read(it->second.slot, &stored_oid, &payload));
  if (stored_oid != oid.value()) {
    return Status::Corruption("slot oid mismatch for " + oid.ToString());
  }
  if (payload.empty()) return Status::Corruption("empty record payload");
  if (payload[0] == kInlineFlag) {
    out->assign(payload.begin() + 1, payload.end());
    return Status::OK();
  }
  Decoder dec(Slice(payload.data() + 1, payload.size() - 1));
  uint32_t first_page;
  uint64_t total_len;
  ODE_RETURN_NOT_OK(dec.GetU32(&first_page));
  ODE_RETURN_NOT_OK(dec.GetU64(&total_len));
  return ReadOverflowChain(first_page, total_len, out);
}

Status DiskStorageManager::InsertRecord(Oid oid, Slice image) {
  std::vector<char> payload;
  if (image.size() <= options_.inline_limit) {
    payload.reserve(image.size() + 1);
    payload.push_back(kInlineFlag);
    payload.insert(payload.end(), image.data(), image.data() + image.size());
  } else {
    uint32_t first_page;
    ODE_RETURN_NOT_OK(WriteOverflowChain(image, &first_page));
    Encoder enc;
    enc.PutU8(static_cast<uint8_t>(kOverflowFlag));
    enc.PutU32(first_page);
    enc.PutU64(image.size());
    payload = enc.Release();
  }

  // First fit over pages with known free space.
  for (auto& [page_id, free] : space_map_) {
    if (free < payload.size() + 16) continue;
    Page* page;
    ODE_RETURN_NOT_OK(pool_->Get(page_id, &page));
    auto slot = page->Insert(oid.value(), Slice(payload));
    if (slot.ok()) {
      pool_->MarkDirty(page_id);
      index_[oid.value()] = Loc{page_id, slot.value()};
      free = page->FreeSpaceForInsert();
      return Status::OK();
    }
  }
  // No page fits: take a fresh one.
  uint32_t page_id = AllocPage();
  Page* page;
  ODE_RETURN_NOT_OK(pool_->Create(page_id, &page));
  ODE_ASSIGN_OR_RETURN(uint16_t slot, page->Insert(oid.value(), Slice(payload)));
  pool_->MarkDirty(page_id);
  index_[oid.value()] = Loc{page_id, slot};
  space_map_[page_id] = page->FreeSpaceForInsert();
  return Status::OK();
}

Status DiskStorageManager::ApplyUpsert(Oid oid, Slice image) {
  // A committed upsert of a lost object IS its repair: the WAL replay
  // (or a fresh application-level write) supersedes the unreadable page.
  lost_oids_.erase(oid.value());
  auto it = index_.find(oid.value());
  if (it == index_.end()) {
    return InsertRecord(oid, image);
  }
  Loc loc = it->second;
  Page* page;
  ODE_RETURN_NOT_OK(pool_->Get(loc.page, &page));
  uint64_t stored_oid;
  std::vector<char> old_payload;
  ODE_RETURN_NOT_OK(page->Read(loc.slot, &stored_oid, &old_payload));
  if (!old_payload.empty() && old_payload[0] == kOverflowFlag) {
    Decoder dec(Slice(old_payload.data() + 1, old_payload.size() - 1));
    uint32_t first_page;
    uint64_t total_len;
    ODE_RETURN_NOT_OK(dec.GetU32(&first_page));
    ODE_RETURN_NOT_OK(dec.GetU64(&total_len));
    ODE_RETURN_NOT_OK(FreeOverflowChain(first_page));
    // The slot may have moved pages if FreeOverflowChain touched loc.page?
    // It cannot: overflow pages are distinct from slotted pages.
    ODE_RETURN_NOT_OK(pool_->Get(loc.page, &page));
  }
  if (image.size() <= options_.inline_limit) {
    std::vector<char> payload;
    payload.reserve(image.size() + 1);
    payload.push_back(kInlineFlag);
    payload.insert(payload.end(), image.data(), image.data() + image.size());
    Status st = page->Update(loc.slot, Slice(payload));
    if (st.ok()) {
      pool_->MarkDirty(loc.page);
      space_map_[loc.page] = page->FreeSpaceForInsert();
      return Status::OK();
    }
    if (st.code() != StatusCode::kNotSupported) return st;
    // Did not fit: the slot is gone (see Page::Update contract); relocate.
    pool_->MarkDirty(loc.page);
    space_map_[loc.page] = page->FreeSpaceForInsert();
    index_.erase(oid.value());
    return InsertRecord(oid, image);
  }
  // New image goes to overflow: replace the record wholesale.
  ODE_RETURN_NOT_OK(page->Delete(loc.slot));
  pool_->MarkDirty(loc.page);
  space_map_[loc.page] = page->FreeSpaceForInsert();
  index_.erase(oid.value());
  return InsertRecord(oid, image);
}

Status DiskStorageManager::ApplyFree(Oid oid) {
  auto it = index_.find(oid.value());
  if (it == index_.end()) {
    // Freeing a lost object resolves it: the caller (WAL replay or an
    // application explicitly dropping the casualty) declared it gone.
    if (lost_oids_.erase(oid.value()) > 0) return Status::OK();
    return Status::NotFound("no object " + oid.ToString());
  }
  Loc loc = it->second;
  Page* page;
  ODE_RETURN_NOT_OK(pool_->Get(loc.page, &page));
  uint64_t stored_oid;
  std::vector<char> payload;
  ODE_RETURN_NOT_OK(page->Read(loc.slot, &stored_oid, &payload));
  if (!payload.empty() && payload[0] == kOverflowFlag) {
    Decoder dec(Slice(payload.data() + 1, payload.size() - 1));
    uint32_t first_page;
    uint64_t total_len;
    ODE_RETURN_NOT_OK(dec.GetU32(&first_page));
    ODE_RETURN_NOT_OK(dec.GetU64(&total_len));
    ODE_RETURN_NOT_OK(FreeOverflowChain(first_page));
    ODE_RETURN_NOT_OK(pool_->Get(loc.page, &page));
  }
  ODE_RETURN_NOT_OK(page->Delete(loc.slot));
  pool_->MarkDirty(loc.page);
  index_.erase(oid.value());
  space_map_[loc.page] = page->FreeSpaceForInsert();
  return Status::OK();
}

Status DiskStorageManager::ApplyRoots() {
  Encoder enc;
  enc.PutVarint(roots_.size());
  for (const auto& [name, oid] : roots_) {
    enc.PutString(name);
    enc.PutU64(oid.value());
  }
  return ApplyUpsert(Oid(kRootsOid), Slice(enc.buffer()));
}

// ----------------------------------------------------------- public methods

DiskStorageManager::Workspace* DiskStorageManager::FindWorkspace(TxnId txn) {
  MutexLock lock(&ws_mu_);
  auto it = workspaces_.find(txn);
  // Stable across other transactions' begin/commit: unordered_map never
  // invalidates pointers to other nodes.
  return it == workspaces_.end() ? nullptr : &it->second;
}

Result<Oid> DiskStorageManager::Allocate(TxnId txn, Slice data) {
  ODE_RETURN_NOT_OK(CheckWritable());
  Workspace* ws = FindWorkspace(txn);
  if (ws == nullptr) return Status::Internal("disk store: unknown txn");
  Oid oid(next_oid_.fetch_add(1, std::memory_order_relaxed));
  Workspace::Entry entry;
  entry.image = data.ToVector();
  ws->entries[oid] = std::move(entry);
  ws->allocated.push_back(oid);
  return oid;
}

Status DiskStorageManager::Read(TxnId txn, Oid oid, std::vector<char>* out) {
  LatencyTimer timer(read_latency_);
  // Acquire: pairs with the wedge release-stores in CommitThroughQueue.
  if (wedged_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "disk store wedged by a mid-commit I/O failure; reopen to recover");
  }
  object_reads_->Inc();
  if (Workspace* ws = FindWorkspace(txn)) {
    auto it = ws->entries.find(oid);
    if (it != ws->entries.end()) {
      if (it->second.freed) {
        return Status::NotFound("object freed in this transaction");
      }
      *out = it->second.image;
      return Status::OK();
    }
  }
  // Fast lane: committed reads share state_mu_, so they only ever wait
  // for page application — never for a WAL fsync. pool_mu_ serializes
  // the buffer pool's LRU bookkeeping among concurrent readers.
  ReaderMutexLock state(&state_mu_);
  MutexLock pool_lock(&pool_mu_);
  return ReadCommitted(oid, out);
}

Status DiskStorageManager::Write(TxnId txn, Oid oid, Slice data) {
  LatencyTimer timer(write_latency_);
  ODE_RETURN_NOT_OK(CheckWritable());
  object_writes_->Inc();
  Workspace* ws = FindWorkspace(txn);
  if (ws == nullptr) return Status::Internal("disk store: unknown txn");
  auto it = ws->entries.find(oid);
  if (it != ws->entries.end()) {
    if (it->second.freed) {
      return Status::NotFound("object freed in this transaction");
    }
    it->second.image = data.ToVector();
    return Status::OK();
  }
  {
    ReaderMutexLock state(&state_mu_);
    if (index_.find(oid.value()) == index_.end() &&
        lost_oids_.count(oid.value()) == 0) {
      // A known-lost oid stays writable: committing a fresh image is the
      // application-level repair path.
      return AbsentOidStatus(oid);
    }
  }
  Workspace::Entry entry;
  entry.image = data.ToVector();
  ws->entries[oid] = std::move(entry);
  return Status::OK();
}

Status DiskStorageManager::Free(TxnId txn, Oid oid) {
  ODE_RETURN_NOT_OK(CheckWritable());
  Workspace* ws = FindWorkspace(txn);
  if (ws == nullptr) return Status::Internal("disk store: unknown txn");
  auto it = ws->entries.find(oid);
  if (it != ws->entries.end()) {
    if (it->second.freed) {
      return Status::NotFound("object already freed in this transaction");
    }
    it->second.freed = true;
    it->second.image.clear();
    return Status::OK();
  }
  {
    ReaderMutexLock state(&state_mu_);
    if (index_.find(oid.value()) == index_.end() &&
        lost_oids_.count(oid.value()) == 0) {
      // Freeing a known-lost oid is allowed too: it lets the
      // application explicitly discard the casualty.
      return AbsentOidStatus(oid);
    }
  }
  Workspace::Entry entry;
  entry.freed = true;
  ws->entries[oid] = std::move(entry);
  return Status::OK();
}

bool DiskStorageManager::Exists(TxnId txn, Oid oid) {
  if (Workspace* ws = FindWorkspace(txn)) {
    auto it = ws->entries.find(oid);
    if (it != ws->entries.end()) return !it->second.freed;
  }
  ReaderMutexLock state(&state_mu_);
  // A lost object still exists — it is unreadable, not absent. Reads of
  // it fail with kCorruption rather than pretending it was never there.
  return index_.find(oid.value()) != index_.end() ||
         lost_oids_.count(oid.value()) != 0;
}

Status DiskStorageManager::SetRoot(TxnId txn, const std::string& name,
                                   Oid oid) {
  ODE_RETURN_NOT_OK(CheckWritable());
  Workspace* ws = FindWorkspace(txn);
  if (ws == nullptr) return Status::Internal("disk store: unknown txn");
  ws->root_updates[name] = oid;
  return Status::OK();
}

Result<Oid> DiskStorageManager::GetRoot(TxnId txn, const std::string& name) {
  if (wedged_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "disk store wedged by a mid-commit I/O failure; reopen to recover");
  }
  if (Workspace* ws = FindWorkspace(txn)) {
    auto it = ws->root_updates.find(name);
    if (it != ws->root_updates.end()) return it->second;
  }
  ReaderMutexLock state_lk(&state_mu_);
  auto it = roots_.find(name);
  if (it == roots_.end()) {
    if (roots_lost_) {
      return Status::Corruption(
          "root '" + name +
          "' not found, but the roots directory was lost to a corrupt "
          "page; the name may be among the casualties");
    }
    return Status::NotFound("no root '" + name + "'");
  }
  return it->second;
}

Status DiskStorageManager::BeginTxn(TxnId txn) {
  // Deliberately off every state lock: starting a transaction must not
  // wait behind an in-flight group fsync.
  if (!open_.load(std::memory_order_acquire)) {
    return Status::Internal("disk store not open");
  }
  if (wedged_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "disk store wedged by a mid-commit I/O failure; reopen to recover");
  }
  MutexLock lock(&ws_mu_);
  auto [it, inserted] = workspaces_.try_emplace(txn);
  (void)it;
  if (!inserted) return Status::Internal("disk store: txn already begun");
  return Status::OK();
}

namespace {
// Batch info for the last successful commit on this thread (see
// StorageManager::LastCommitBatch).
thread_local StorageManager::CommitBatchInfo tls_last_commit_batch;
}  // namespace

StorageManager::CommitBatchInfo DiskStorageManager::LastCommitBatch() const {
  return tls_last_commit_batch;
}

Status DiskStorageManager::AppendBatchWal(
    const std::vector<CommitRequest*>& batch) {
  // WAL first: each member keeps its own kBegin..kCommit frame, so the
  // recovery protocol is unchanged — it redoes exactly the transactions
  // whose kCommit record survived, batched or not.
  const uint64_t records_before = wal_->records_appended();
  // Span bookkeeping for sampled members: per-member append intervals
  // now, one shared fsync-batch span after the group fsync below.
  std::vector<std::pair<TxnId, std::pair<uint64_t, uint64_t>>> traced_appends;
  {
    LatencyTimer append_timer(wal_append_latency_);
    for (const CommitRequest* req : batch) {
      const bool traced = tracer_ != nullptr && tracer_->Sampled(req->txn);
      const uint64_t append_start = traced ? LatencyTimer::NowNanos() : 0;
      WalRecord begin{WalRecord::Type::kBegin, req->txn, Oid(), "", {}};
      ODE_RETURN_NOT_OK(wal_->Append(begin));
      for (const auto& [oid, entry] : req->ws->entries) {
        WalRecord r;
        r.txn = req->txn;
        r.oid = oid;
        if (entry.freed) {
          r.type = WalRecord::Type::kFree;
        } else {
          r.type = WalRecord::Type::kUpsert;
          r.image = entry.image;
        }
        ODE_RETURN_NOT_OK(wal_->Append(r));
      }
      for (const auto& [name, oid] : req->ws->root_updates) {
        WalRecord r;
        r.type = WalRecord::Type::kSetRoot;
        r.txn = req->txn;
        r.oid = oid;
        r.name = name;
        ODE_RETURN_NOT_OK(wal_->Append(r));
      }
      WalRecord commit{WalRecord::Type::kCommit, req->txn, Oid(), "", {}};
      ODE_RETURN_NOT_OK(wal_->Append(commit));
      if (traced) {
        traced_appends.emplace_back(
            req->txn,
            std::make_pair(append_start, LatencyTimer::NowNanos()));
      }
    }
  }
  wal_records_->Inc(wal_->records_appended() - records_before);
  for (const auto& [txn, window] : traced_appends) {
    Span s;
    s.kind = SpanKind::kWalAppend;
    s.txn = txn;
    tracer_->Interval(std::move(s), window.first, window.second);
  }
  if (options_.sync_commits) {
    // The one fsync the whole group pays. Only after it returns may any
    // member be acked.
    const uint64_t fsync_start =
        traced_appends.empty() ? 0 : LatencyTimer::NowNanos();
    LatencyTimer fsync_timer(wal_fsync_latency_);
    ODE_RETURN_NOT_OK(wal_->Sync());
    commit_fsyncs_->Inc();
    commit_fsyncs_saved_->Inc(static_cast<uint64_t>(batch.size() - 1));
    if (!traced_appends.empty()) {
      // Every sampled member gets the SAME batch span (one fsync, many
      // riders): a = the batch ticket id, b = how many rode it.
      const uint64_t fsync_end = LatencyTimer::NowNanos();
      for (const auto& [txn, window] : traced_appends) {
        (void)window;
        Span s;
        s.kind = SpanKind::kFsyncBatch;
        s.txn = txn;
        s.a = static_cast<int64_t>(batch.front()->batch_id);
        s.b = static_cast<int64_t>(batch.size());
        tracer_->Interval(std::move(s), fsync_start, fsync_end);
      }
    }
  }
  return Status::OK();
}

Status DiskStorageManager::ApplyWorkspacePages(Workspace& ws) {
  // Applies to pages in the buffer pool (flushed lazily). Caller holds
  // state_mu_ exclusive.
  for (const auto& [oid, entry] : ws.entries) {
    if (entry.freed) {
      Status st = ApplyFree(oid);
      if (!st.ok() && !st.IsNotFound()) return st;
    } else {
      ODE_RETURN_NOT_OK(ApplyUpsert(oid, Slice(entry.image)));
    }
  }
  if (!ws.root_updates.empty()) {
    for (const auto& [name, oid] : ws.root_updates) {
      if (oid.IsNull()) {
        roots_.erase(name);
      } else {
        roots_[name] = oid;
      }
    }
    ODE_RETURN_NOT_OK(ApplyRoots());
  }
  return Status::OK();
}

void DiskStorageManager::DrainCommitPipelineLocked() {
  // commit_mu_ is held, so no new batch can be numbered; wait until the
  // last numbered batch has finished applying its pages.
  MutexLock apply_lock(&apply_mu_);
  apply_cv_.Wait(apply_mu_, [this]() ODE_NO_THREAD_SAFETY_ANALYSIS {
    return applied_seq_ + 1 == next_batch_seq_;
  });
}

Status DiskStorageManager::CommitThroughQueue(TxnId txn, Workspace* ws) {
  CommitRequest req;
  req.txn = txn;
  req.ws = ws;

  commit_mu_.lock();
  commit_queue_.push_back(&req);
  commit_cv_.NotifyAll();  // a lingering leader recounts its batch
  {
    // Time parked in the commit queue (for followers: until their whole
    // batch is durable and applied).
    LatencyTimer wait_timer(leader_wait_latency_);
    commit_cv_.Wait(commit_mu_, [&]() ODE_NO_THREAD_SAFETY_ANALYSIS {
      return req.done ||
             (!commit_queue_.empty() && commit_queue_.front() == &req);
    });
  }
  if (req.done) {
    // A leader carried this transaction: its kCommit is fsynced and its
    // pages are applied (or the whole group failed together).
    const Status follower_status = req.status;
    const CommitBatchInfo follower_info{req.batch_id, req.batch_size,
                                        /*leader=*/false};
    commit_mu_.unlock();
    if (follower_status.ok()) tls_last_commit_batch = follower_info;
    return follower_status;
  }

  // This thread is the leader-elect. Do NOT form the batch yet: wait
  // until the WAL stage is free, so that committers arriving while the
  // previous batch fsyncs pile up in the queue and get claimed together
  // — that accumulation window is where batching comes from. No batch
  // can be numbered while this (unformed) request is the queue front,
  // so next_batch_seq_ is stable with commit_mu_ released; formed
  // batches never need commit_mu_ to finish their WAL stage, so this
  // wait cannot deadlock with a drain holding commit_mu_.
  const uint64_t prev_formed = next_batch_seq_ - 1;
  commit_mu_.unlock();
  {
    MutexLock wal_lock(&wal_mu_);
    wal_cv_.Wait(wal_mu_, [&]() ODE_NO_THREAD_SAFETY_ANALYSIS {
      return wal_seq_ >= prev_formed;
    });
  }
  commit_mu_.lock();

  // Optionally linger so more committers can join; the queue front
  // stays this request throughout, so no second leader can emerge while
  // wait_for has commit_mu_ released.
  const size_t max_txns =
      options_.group_commit
          ? std::max<size_t>(1, options_.commit_batch_max_txns)
          : 1;
  if (options_.group_commit && options_.commit_batch_max_wait_us > 0 &&
      commit_queue_.size() < max_txns) {
    commit_cv_.WaitFor(
        commit_mu_,
        std::chrono::microseconds(options_.commit_batch_max_wait_us),
        [&]() ODE_NO_THREAD_SAFETY_ANALYSIS {
          return commit_queue_.size() >= max_txns;
        });
  }
  // Claim the batch and its sequence number, then get off commit_mu_ so
  // the next leader-elect can start accumulating its own batch.
  std::vector<CommitRequest*> batch;
  while (!commit_queue_.empty() && batch.size() < max_txns) {
    batch.push_back(commit_queue_.front());
    commit_queue_.pop_front();
  }
  const uint64_t batch_seq = next_batch_seq_++;
  for (CommitRequest* r : batch) {
    r->batch_id = batch_seq;
    r->batch_size = static_cast<uint32_t>(batch.size());
  }
  if (batch_size_hist_->ShouldSample()) {
    batch_size_hist_->Record(batch.size());
  }
  if (!commit_queue_.empty()) commit_cv_.NotifyAll();  // next leader
  commit_mu_.unlock();

  // WAL ticket: batches append + fsync strictly in sequence order. The
  // wedge check must happen under the ticket — after a failed batch left
  // a partial frame, appending behind the tear would turn a torn tail
  // (discarded by recovery) into mid-file corruption (salvage mode).
  Status st;
  {
    MutexLock wal_lock(&wal_mu_);
    wal_cv_.Wait(wal_mu_, [&]() ODE_NO_THREAD_SAFETY_ANALYSIS {
      return wal_seq_ + 1 == batch_seq;
    });
    st = CheckWritable();
    if (st.ok()) st = AppendBatchWal(batch);
    if (!st.ok() && !wedged_.load(std::memory_order_acquire)) {
      // Release: publishes the torn WAL tail to the acquire loads in
      // CheckWritable/Read/GetRoot/BeginTxn before they observe wedged_.
      wedged_.store(true, std::memory_order_release);
      ODE_LOG(kError) << "disk store: group commit batch " << batch_seq
                      << " (" << batch.size()
                      << " txn(s)) failed in the WAL; store wedged until "
                         "reopen: "
                      << st.ToString();
      DumpFlightRecorder("wedged: WAL stage failed for commit batch " +
                         std::to_string(batch_seq) + ": " + st.ToString());
    }
    wal_seq_ = batch_seq;
  }
  wal_cv_.NotifyAll();

  // Apply ticket: pages strictly in WAL order. Upserts are last-writer-
  // wins, so batch N+1 (already fsyncing on its own leader's thread)
  // must not reach a page before batch N.
  {
    MutexLock apply_lock(&apply_mu_);
    apply_cv_.Wait(apply_mu_, [&]() ODE_NO_THREAD_SAFETY_ANALYSIS {
      return applied_seq_ + 1 == batch_seq;
    });
  }
  if (st.ok()) {
    WriterMutexLock state(&state_mu_);
    for (CommitRequest* r : batch) {
      const bool traced = tracer_ != nullptr && tracer_->Sampled(r->txn);
      const uint64_t apply_start = traced ? LatencyTimer::NowNanos() : 0;
      st = ApplyWorkspacePages(*r->ws);
      if (traced && st.ok()) {
        Span s;
        s.kind = SpanKind::kPageApply;
        s.txn = r->txn;
        s.a = static_cast<int64_t>(r->ws->entries.size());
        tracer_->Interval(std::move(s), apply_start, LatencyTimer::NowNanos());
      }
      if (!st.ok()) break;
    }
    if (!st.ok()) {
      // Pages and WAL may now disagree about a half-applied batch; only
      // WAL recovery at the next Open can reconcile them. Release: pairs
      // with the acquire loads in CheckWritable/Read/GetRoot/BeginTxn.
      wedged_.store(true, std::memory_order_release);
      ODE_LOG(kError) << "disk store: group commit batch " << batch_seq
                      << " failed applying pages; store wedged until reopen: "
                      << st.ToString();
      DumpFlightRecorder("wedged: page apply failed for commit batch " +
                         std::to_string(batch_seq) + ": " + st.ToString());
    }
  }
  {
    MutexLock apply_lock(&apply_mu_);
    applied_seq_ = batch_seq;
  }
  apply_cv_.NotifyAll();

  // Ack the group with its shared outcome. Followers wake only here —
  // after the fsync covering their kCommit AND page application — so a
  // caller releasing its 2PL locks gets read-your-writes.
  commit_mu_.lock();
  for (CommitRequest* r : batch) {
    if (r == &req) continue;
    r->status = st;
    r->done = true;
  }
  commit_mu_.unlock();
  commit_cv_.NotifyAll();
  if (st.ok()) {
    tls_last_commit_batch = CommitBatchInfo{
        batch_seq, static_cast<uint32_t>(batch.size()), /*leader=*/true};
  }
  return st;
}

Status DiskStorageManager::CommitTxn(TxnId txn) {
  Workspace* ws = FindWorkspace(txn);
  if (ws == nullptr) {
    return Status::Internal("disk store: commit of unknown txn");
  }
  const bool read_only = ws->entries.empty() && ws->root_updates.empty();
  if (!read_only) {
    ODE_RETURN_NOT_OK(CheckWritable());
    // On failure the workspace is kept (the caller may still AbortTxn),
    // matching the pre-group-commit contract.
    ODE_RETURN_NOT_OK(CommitThroughQueue(txn, ws));
  }
  MutexLock lock(&ws_mu_);
  workspaces_.erase(txn);
  return Status::OK();
}

Status DiskStorageManager::AbortTxn(TxnId txn) {
  MutexLock lock(&ws_mu_);
  // Allowed even wedged/salvaged: no-steal keeps aborts purely in-memory.
  workspaces_.erase(txn);
  return Status::OK();
}

Status DiskStorageManager::Checkpoint() {
  MutexLock commit_lock(&commit_mu_);
  ODE_RETURN_NOT_OK(CheckWritable());
  DrainCommitPipelineLocked();
  // A draining batch may have wedged the store; checkpointing now would
  // persist half-applied state and then truncate the log.
  ODE_RETURN_NOT_OK(CheckWritable());
  WriterMutexLock state(&state_mu_);
  return CheckpointLocked();
}

void DiskStorageManager::SimulateCrash() {
  MutexLock commit_lock(&commit_mu_);
  DrainCommitPipelineLocked();
  WriterMutexLock state(&state_mu_);
  MutexLock ws_lock(&ws_mu_);
  pool_.reset();  // dirty frames are dropped, not written
  wal_.reset();
  file_.reset();
  workspaces_.clear();
  quarantined_pages_.clear();
  lost_oids_.clear();
  quarantine_oids_.clear();
  unknown_losses_ = false;
  roots_lost_ = false;
  // Relaxed: the release store on open_ below orders these for any
  // thread that later observes the store closed via its acquire load.
  wedged_.store(false, std::memory_order_relaxed);
  salvage_.store(false, std::memory_order_relaxed);
  open_.store(false, std::memory_order_release);
}

bool DiskStorageManager::degraded() const {
  ReaderMutexLock state(&state_mu_);
  return !quarantined_pages_.empty() || unknown_losses_;
}

std::vector<Oid> DiskStorageManager::LostObjects() const {
  ReaderMutexLock state(&state_mu_);
  std::vector<Oid> out;
  out.reserve(lost_oids_.size());
  for (uint64_t oid : lost_oids_) out.emplace_back(oid);
  std::sort(out.begin(), out.end(),
            [](Oid a, Oid b) { return a.value() < b.value(); });
  return out;
}

bool DiskStorageManager::salvage_mode() const {
  return salvage_.load(std::memory_order_acquire);
}

bool DiskStorageManager::wedged() const {
  return wedged_.load(std::memory_order_acquire);
}

void DiskStorageManager::ReformatCorruptPage(uint32_t page_id) {
  space_map_.erase(page_id);
  pool_->Discard(page_id);
  Page* frame;
  Status st = pool_->Create(page_id, &frame);
  if (!st.ok()) {
    ODE_LOG(kError) << "reformat of corrupt page " << page_id
                    << " failed: " << st.ToString();
    return;
  }
  // The page may already be on the free list (a corrupted free page is
  // "repaired" by the reformat alone).
  if (std::find(free_pages_.begin(), free_pages_.end(), page_id) ==
      free_pages_.end()) {
    free_pages_.push_back(page_id);
  }
}

void DiskStorageManager::ReconcileQuarantineLocked() {
  for (auto it = quarantine_oids_.begin(); it != quarantine_oids_.end();) {
    bool resolved = true;
    for (uint64_t oid : it->second) {
      if (lost_oids_.count(oid) != 0) {
        resolved = false;
        break;
      }
    }
    if (!resolved) {
      ++it;
      continue;
    }
    // Every object enumerated from this page has been re-homed by WAL
    // redo (or explicitly freed): nothing committed lives here anymore,
    // so the page can rejoin the free list.
    ReformatCorruptPage(it->first);
    quarantined_pages_.erase(it->first);
    scrub_repaired_->Inc();
    if (tracer_ != nullptr && tracer_->enabled()) {
      Span s;
      s.kind = SpanKind::kPageRepair;
      s.a = static_cast<int64_t>(it->first);
      tracer_->Instant(std::move(s));
    }
    ODE_LOG(kWarn) << "disk store " << path_ << ": quarantined page "
                   << it->first << " fully repaired from WAL redo";
    it = quarantine_oids_.erase(it);
  }
  quarantined_gauge_->Set(
      static_cast<int64_t>(quarantined_pages_.size()));
}

Result<ScrubReport> DiskStorageManager::VerifyIntegrity() {
  MutexLock commit_lock(&commit_mu_);
  // Acquire: pairs with the release store at the end of Open().
  if (!open_.load(std::memory_order_acquire)) {
    return Status::Internal("disk store not open");
  }
  // Acquire: pairs with the wedge release-stores in CommitThroughQueue.
  if (wedged_.load(std::memory_order_acquire)) {
    return Status::IOError(
        "disk store wedged by a mid-commit I/O failure; reopen to recover");
  }
  DrainCommitPipelineLocked();
  WriterMutexLock state(&state_mu_);
  const uint64_t scrub_start = LatencyTimer::NowNanos();
  // In salvage mode the WAL is the only trustworthy copy of recent
  // history and the data file must not be mutated: scan and quarantine
  // only, never rewrite.
  const bool read_only = salvage_.load(std::memory_order_acquire);

  ScrubReport report;
  // Stamp and flush dirty frames first, so the raw sweep compares the
  // medium against current state instead of flagging pages that are
  // simply newer in memory.
  if (!read_only) ODE_RETURN_NOT_OK(pool_->FlushAll());

  // Pass 1: sweep the medium for pages that fail checksum or structural
  // verification. Corrupt frames are discarded from the pool so nothing
  // downstream serves the stale copy.
  std::unordered_set<uint32_t> bad;
  for (uint32_t p = 1; p < page_count_; ++p) {
    if (quarantined_pages_.count(p) != 0) continue;  // already known bad
    char buf[kPageSize];
    ODE_RETURN_NOT_OK(ReadPage(p, buf));
    ++report.pages_scanned;
    scrub_pages_->Inc();
    bool ok = !options_.verify_page_checksums || RawPageChecksumOk(buf);
    if (ok) {
      uint16_t slot_count;
      std::memcpy(&slot_count, buf + 4, 2);
      if (slot_count != kOverflowMarker) {
        Page pg;
        pg.Load(buf);
        ok = pg.ValidateStructure().ok();
      }
    }
    if (!ok) {
      bad.insert(p);
      ++report.bad_pages;
      pool_->Discard(p);
      // Pull the page out of the allocation structures immediately: the
      // repair path below re-homes victim images via ApplyUpsert, which
      // must never place them on a still-corrupt page. Repaired pages
      // rejoin the free list when ReformatCorruptPage runs.
      space_map_.erase(p);
      free_pages_.erase(std::remove(free_pages_.begin(), free_pages_.end(),
                                    static_cast<uint32_t>(p)),
                        free_pages_.end());
    }
  }

  if (!bad.empty()) {
    // Attribute each bad page to the committed objects it carries. At
    // runtime the oid index is authoritative, so — unlike the open-time
    // scan — this enumeration is exact and losses are never "unknown".
    struct Victim {
      uint64_t oid = 0;
      uint32_t home_page = 0;
      uint16_t slot = 0;
      bool home_bad = false;               // slotted record itself gone
      std::vector<uint32_t> chain_healthy; // reclaimable chain prefix
    };
    std::unordered_map<uint32_t, std::vector<Victim>> affected;
    for (const auto& [oid, loc] : index_) {
      if (bad.count(loc.page) != 0) {
        affected[loc.page].push_back(
            Victim{oid, loc.page, loc.slot, /*home_bad=*/true, {}});
        continue;
      }
      Page* pg;
      ODE_RETURN_NOT_OK(pool_->Get(loc.page, &pg));
      uint64_t stored_oid;
      std::vector<char> payload;
      ODE_RETURN_NOT_OK(pg->Read(loc.slot, &stored_oid, &payload));
      if (payload.empty() || payload[0] != kOverflowFlag) continue;
      Decoder dec(Slice(payload.data() + 1, payload.size() - 1));
      uint32_t q;
      uint64_t total;
      ODE_RETURN_NOT_OK(dec.GetU32(&q));
      ODE_RETURN_NOT_OK(dec.GetU64(&total));
      // Walk the chain raw; a bad link attributes the object to that
      // page and ends the walk (pages past it are unreachable anyway).
      Victim v{oid, loc.page, loc.slot, /*home_bad=*/false, {}};
      std::unordered_set<uint32_t> seen;
      uint32_t bad_link = 0;
      while (q != 0 && q < page_count_ && seen.insert(q).second) {
        if (bad.count(q) != 0) {
          bad_link = q;
          break;
        }
        v.chain_healthy.push_back(q);
        char link[kPageSize];
        ODE_RETURN_NOT_OK(ReadPage(q, link));
        std::memcpy(&q, link + kOvfNextOff, 4);
      }
      if (bad_link != 0) affected[bad_link].push_back(std::move(v));
    }

    // Last committed image per oid still covered by the log. Empty after
    // a checkpoint truncated it — then nothing is repairable.
    std::unordered_map<uint64_t, const WalRecord*> redo;
    std::vector<WalRecord> records;
    Status wal_status = wal_->ReadAll(&records);
    if (wal_status.ok()) {
      std::unordered_map<TxnId, bool> committed;
      for (const WalRecord& r : records) {
        if (r.type == WalRecord::Type::kCommit) committed[r.txn] = true;
      }
      for (const WalRecord& r : records) {
        if (!committed.count(r.txn)) continue;
        if (r.type == WalRecord::Type::kUpsert) {
          redo[r.oid.value()] = &r;
        } else if (r.type == WalRecord::Type::kFree) {
          redo.erase(r.oid.value());
        }
      }
    }

    for (uint32_t p : bad) {
      std::vector<Victim> victims;
      auto ait = affected.find(p);
      if (ait != affected.end()) victims = std::move(ait->second);
      bool all_repaired = true;
      std::vector<uint64_t> named;
      for (Victim& v : victims) {
        named.push_back(v.oid);
        if (!read_only) {
          // Detach the casualty: drop its healthy slotted record (the
          // chain behind it is gone), reclaim the surviving chain
          // prefix, and unhook it from the index.
          if (!v.home_bad) {
            Page* pg;
            ODE_RETURN_NOT_OK(pool_->Get(v.home_page, &pg));
            (void)pg->Delete(v.slot);
            pool_->MarkDirty(v.home_page);
            space_map_[v.home_page] = pg->FreeSpaceForInsert();
          }
          for (uint32_t w : v.chain_healthy) ReleasePage(w);
        }
        index_.erase(v.oid);
        auto rit = redo.find(v.oid);
        if (!read_only && rit != redo.end()) {
          // WAL redo still covers this object: reinsert its last
          // committed image on a healthy page.
          ODE_RETURN_NOT_OK(ApplyUpsert(Oid(v.oid), Slice(rit->second->image)));
          if (tracer_ != nullptr && tracer_->enabled()) {
            Span s;
            s.kind = SpanKind::kPageRepair;
            s.a = static_cast<int64_t>(p);
            tracer_->Instant(std::move(s));
          }
        } else {
          all_repaired = false;
          lost_oids_.insert(v.oid);
          scrub_lost_->Inc();
          ODE_LOG(kError) << "disk store " << path_ << ": object " << v.oid
                          << " on corrupt page " << p
                          << " is not covered by the WAL; marked lost";
        }
      }
      if (all_repaired && !read_only) {
        // Every object re-homed (or the page carried none — a free or
        // orphaned page): reformat it and put it back in service.
        ReformatCorruptPage(p);
        ++report.repaired_pages;
        scrub_repaired_->Inc();
        ODE_LOG(kWarn) << "disk store " << path_ << ": corrupt page " << p
                       << " repaired"
                       << (victims.empty() ? " (no committed objects on it)"
                                           : " from WAL redo");
      } else {
        quarantined_pages_.insert(p);
        quarantine_oids_[p] = std::move(named);
        space_map_.erase(p);
        free_pages_.erase(
            std::remove(free_pages_.begin(), free_pages_.end(), p),
            free_pages_.end());
      }
    }
    // Make the repairs durable now: a later checkpoint truncates the WAL
    // images they came from.
    if (!read_only) {
      ODE_RETURN_NOT_OK(pool_->FlushAll());
      ODE_RETURN_NOT_OK(RetryIo(&retry_policy_, "data file sync",
                                [&] { return file_->Sync(); }));
    }
  }

  report.quarantined_pages = quarantined_pages_.size();
  report.unknown_losses = unknown_losses_;
  std::vector<uint64_t> lost(lost_oids_.begin(), lost_oids_.end());
  std::sort(lost.begin(), lost.end());
  report.lost_oids.reserve(lost.size());
  for (uint64_t oid : lost) report.lost_oids.emplace_back(oid);
  quarantined_gauge_->Set(
      static_cast<int64_t>(quarantined_pages_.size()));
  if (tracer_ != nullptr && tracer_->enabled()) {
    Span s;
    s.kind = SpanKind::kScrub;
    s.a = static_cast<int64_t>(report.pages_scanned);
    s.b = static_cast<int64_t>(report.bad_pages);
    tracer_->Interval(std::move(s), scrub_start, LatencyTimer::NowNanos());
  }
  return report;
}

Status DiskStorageManager::CheckpointLocked() {
  ODE_RETURN_NOT_OK(pool_->FlushAll());
  ODE_RETURN_NOT_OK(WriteHeader());
  ODE_RETURN_NOT_OK(RetryIo(&retry_policy_, "data file sync",
                            [&] { return file_->Sync(); }));
  return wal_->Truncate();
}

StorageStats DiskStorageManager::stats() const {
  ReaderMutexLock state(&state_mu_);
  StorageStats s;
  s.objects = index_.size();
  s.pages = page_count_;
  if (pool_ != nullptr) {
    s.page_reads = pool_->reads();
    s.page_writes = pool_->writes();
    s.buffer_hits = pool_->hits();
    s.buffer_misses = pool_->misses();
  }
  if (wal_ != nullptr) s.wal_records = wal_->records_appended();
  s.object_reads = object_reads_->value();
  s.object_writes = object_writes_->value();
  return s;
}

}  // namespace ode
