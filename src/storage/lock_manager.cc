#include "storage/lock_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace ode {

LockManager::LockManager(Options options) : options_(options) {
  owned_metrics_ = std::make_unique<MetricsRegistry>();
  BindMetrics(owned_metrics_.get());
}

void LockManager::BindMetrics(MetricsRegistry* registry) {
  conflicts_ = registry->GetCounter("ode_lock_conflicts_total");
  deadlocks_ = registry->GetCounter("ode_lock_deadlocks_total");
  timeouts_ = registry->GetCounter("ode_lock_timeouts_total");
  wait_ns_total_ = registry->GetCounter("ode_lock_wait_ns_total");
  wait_latency_ = registry->GetHistogram("ode_lock_wait_latency_ns");
}

bool LockManager::GrantableLocked(const LockState& state,
                                  const Waiter& waiter) const {
  if (waiter.upgrade) {
    // Upgrade S->X: grantable only as the sole holder.
    return state.holders.size() == 1 &&
           state.holders.count(waiter.txn) == 1;
  }
  if (state.holders.empty()) {
    // FIFO fairness: only the front of the queue may take an empty lock.
    return state.queue.empty() || state.queue.front().txn == waiter.txn;
  }
  if (waiter.mode == LockMode::kExclusive) return false;
  // Shared request: every holder must be shared, and no exclusive request
  // may be queued ahead of us (else writers starve).
  for (const auto& [txn, mode] : state.holders) {
    (void)txn;
    if (mode == LockMode::kExclusive) return false;
  }
  for (const Waiter& w : state.queue) {
    if (w.txn == waiter.txn) break;
    if (w.mode == LockMode::kExclusive) return false;
  }
  return true;
}

void LockManager::CollectBlockersLocked(
    TxnId txn, Oid oid, std::unordered_set<TxnId>* out) const {
  auto it = table_.find(oid);
  if (it == table_.end()) return;
  for (const auto& [holder, mode] : it->second.holders) {
    (void)mode;
    if (holder != txn) out->insert(holder);
  }
  // Also wait for exclusive requests queued ahead of us (they will be
  // granted first under FIFO).
  for (const Waiter& w : it->second.queue) {
    if (w.txn == txn) break;
    if (w.mode == LockMode::kExclusive) out->insert(w.txn);
  }
}

bool LockManager::WouldDeadlockLocked(TxnId start, Oid oid,
                                      TxnId* closing_blocker) const {
  // DFS over the wait-for graph, one direct blocker of `start` at a
  // time, so that when a path leads back to `start` the edge that closed
  // the cycle (start -> oid -> blocker) is known and can be reported.
  std::unordered_set<TxnId> blockers;
  CollectBlockersLocked(start, oid, &blockers);
  for (TxnId blocker : blockers) {
    std::unordered_set<TxnId> visited;
    std::deque<TxnId> stack{blocker};
    while (!stack.empty()) {
      TxnId t = stack.back();
      stack.pop_back();
      if (t == start) {
        if (closing_blocker != nullptr) *closing_blocker = blocker;
        return true;
      }
      if (!visited.insert(t).second) continue;
      auto wit = waiting_on_.find(t);
      if (wit == waiting_on_.end()) continue;
      std::unordered_set<TxnId> next;
      CollectBlockersLocked(t, wit->second, &next);
      for (TxnId n : next) stack.push_back(n);
    }
  }
  return false;
}

std::string LockManager::DeadlockMessage(TxnId victim, Oid oid,
                                         TxnId blocker) {
  return "wait-for cycle: victim txn " + std::to_string(victim) +
         " waits for " + oid.ToString() + " held by txn " +
         std::to_string(blocker);
}

Status LockManager::Acquire(TxnId txn, Oid oid, LockMode mode) {
  MutexLock lock(&mu_);
  LockState& state = table_[oid];

  auto holder = state.holders.find(txn);
  bool upgrade = false;
  if (holder != state.holders.end()) {
    if (holder->second == LockMode::kExclusive ||
        mode == LockMode::kShared) {
      return Status::OK();  // already strong enough
    }
    upgrade = true;
  }

  Waiter waiter{txn, mode, upgrade};
  if (GrantableLocked(state, waiter)) {
    state.holders[txn] = mode;
    held_[txn].insert(oid);
    if (tracer_ != nullptr && tracer_->Sampled(txn)) {
      Span s;
      s.kind = SpanKind::kLockAcquire;
      s.txn = txn;
      s.anchor = oid;
      s.detail = mode == LockMode::kExclusive ? "X" : "S";
      tracer_->Instant(std::move(s));  // b = 0: granted without waiting
    }
    return Status::OK();
  }

  conflicts_->Inc();
  TxnId blocker = 0;
  if (WouldDeadlockLocked(txn, oid, &blocker)) {
    deadlocks_->Inc();
    return Status::Deadlock(DeadlockMessage(txn, oid, blocker));
  }

  // Upgraders jump the queue (ahead of plain requests, behind other
  // upgraders) so a sole reader wanting X is not stuck behind new readers.
  if (upgrade) {
    auto pos = state.queue.begin();
    while (pos != state.queue.end() && pos->upgrade) ++pos;
    state.queue.insert(pos, waiter);
  } else {
    state.queue.push_back(waiter);
  }
  waiting_on_[txn] = oid;

  const uint64_t wait_start = LatencyTimer::NowNanos();
  auto deadline = std::chrono::steady_clock::now() + options_.timeout;
  Status result = Status::OK();
  while (true) {
    // Re-check grantability; our queue entry still exists.
    LockState& st = table_[oid];
    if (GrantableLocked(st, waiter)) {
      st.holders[txn] = mode;
      held_[txn].insert(oid);
      break;
    }
    if (WouldDeadlockLocked(txn, oid, &blocker)) {
      deadlocks_->Inc();
      result = Status::Deadlock(DeadlockMessage(txn, oid, blocker));
      break;
    }
    if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
      timeouts_->Inc();
      result = Status::LockTimeout("waiting for " + oid.ToString());
      break;
    }
  }
  const uint64_t waited = LatencyTimer::NowNanos() - wait_start;
  wait_ns_total_->Inc(waited);
  wait_latency_->Record(waited);
  if (tracer_ != nullptr && tracer_->Sampled(txn)) {
    Span s;
    s.kind = SpanKind::kLockAcquire;
    s.txn = txn;
    s.anchor = oid;
    s.b = static_cast<int64_t>(waited);
    s.detail = mode == LockMode::kExclusive ? "X" : "S";
    if (!result.ok()) s.detail += result.IsDeadlock() ? " deadlock" : " timeout";
    tracer_->Interval(std::move(s), wait_start, wait_start + waited);
  }

  waiting_on_.erase(txn);
  LockState& st = table_[oid];
  auto qit = std::find_if(st.queue.begin(), st.queue.end(),
                          [&](const Waiter& w) { return w.txn == txn; });
  if (qit != st.queue.end()) st.queue.erase(qit);
  // Our departure (grant or failure) may unblock others.
  cv_.NotifyAll();
  return result;
}

void LockManager::ReleaseAll(TxnId txn) {
  MutexLock lock(&mu_);
  auto it = held_.find(txn);
  if (it == held_.end()) return;
  for (Oid oid : it->second) {
    auto tit = table_.find(oid);
    if (tit == table_.end()) continue;
    tit->second.holders.erase(txn);
    if (tit->second.holders.empty() && tit->second.queue.empty()) {
      table_.erase(tit);
    }
  }
  held_.erase(it);
  cv_.NotifyAll();
}

bool LockManager::Holds(TxnId txn, Oid oid, LockMode mode) const {
  MutexLock lock(&mu_);
  auto it = table_.find(oid);
  if (it == table_.end()) return false;
  auto hit = it->second.holders.find(txn);
  if (hit == it->second.holders.end()) return false;
  return mode == LockMode::kShared ||
         hit->second == LockMode::kExclusive;
}

size_t LockManager::LocksHeld(TxnId txn) const {
  MutexLock lock(&mu_);
  auto it = held_.find(txn);
  return it == held_.end() ? 0 : it->second.size();
}

}  // namespace ode
